// PMSB switch-side marking (Algorithm 1 of the paper).
//
// Mark iff (1) port occupancy >= port threshold AND (2) the packet's queue
// occupancy >= its weight share of the port threshold (Eq. 6). The thin
// adapter delegates to the pure functions in core/pmsb_algorithm.hpp.
#pragma once

#include "core/pmsb_algorithm.hpp"
#include "ecn/marking.hpp"

namespace pmsb::ecn {

class PmsbMarking final : public MarkingScheme {
 public:
  /// `filter_scale` scales the per-queue filter threshold (1.0 = Eq. 6
  /// verbatim); exposed for the aggressiveness ablation of §III.
  explicit PmsbMarking(std::uint64_t port_threshold_bytes, double filter_scale = 1.0)
      : port_threshold_(port_threshold_bytes), filter_scale_(filter_scale) {}

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    return core::pmsb_should_mark(snap.port_bytes, port_threshold_, snap.queue_bytes,
                                  snap.weight, snap.weight_sum, filter_scale_);
  }

  [[nodiscard]] std::string name() const override { return "PMSB"; }

  [[nodiscard]] std::uint64_t port_threshold() const { return port_threshold_; }
  [[nodiscard]] double filter_scale() const { return filter_scale_; }

 private:
  std::uint64_t port_threshold_;
  double filter_scale_;
};

}  // namespace pmsb::ecn
