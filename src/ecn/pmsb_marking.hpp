// PMSB switch-side marking (Algorithm 1 of the paper).
//
// Mark iff (1) port occupancy >= port threshold AND (2) the packet's queue
// occupancy >= its weight share of the port threshold (Eq. 6). The thin
// adapter delegates to the pure functions in core/pmsb_algorithm.hpp.
#pragma once

#include "core/pmsb_algorithm.hpp"
#include "ecn/marking.hpp"

namespace pmsb::ecn {

class PmsbMarking final : public MarkingScheme {
 public:
  /// `filter_scale` scales the per-queue filter threshold (1.0 = Eq. 6
  /// verbatim); exposed for the aggressiveness ablation of §III.
  explicit PmsbMarking(std::uint64_t port_threshold_bytes, double filter_scale = 1.0)
      : port_threshold_(port_threshold_bytes), filter_scale_(filter_scale) {}

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    ++evals_;
    const bool mark = core::pmsb_should_mark(snap.port_bytes, port_threshold_,
                                             snap.queue_bytes, snap.weight,
                                             snap.weight_sum, filter_scale_);
    if (snap.port_bytes >= port_threshold_) {
      ++port_over_threshold_;
      // Selective blindness in action: the port qualified but the per-queue
      // filter spared this packet (paper Algorithm 1 lines 5-9).
      if (!mark) ++suppressed_by_blindness_;
    }
    return mark;
  }

  [[nodiscard]] std::string name() const override { return "PMSB"; }

  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) override {
    registry.bind_counter("ecn.threshold_evals", labels, &evals_, "evals");
    registry.bind_counter("ecn.port_over_threshold", labels, &port_over_threshold_,
                          "evals");
    registry.bind_counter("ecn.mark_suppressed_blindness", labels,
                          &suppressed_by_blindness_, "packets");
  }

  [[nodiscard]] std::uint64_t port_threshold() const { return port_threshold_; }
  [[nodiscard]] double filter_scale() const { return filter_scale_; }
  /// Evaluations where the port was over threshold but the queue filter
  /// spared the packet — the direct count of the paper's blindness.
  [[nodiscard]] std::uint64_t suppressed_by_blindness() const {
    return suppressed_by_blindness_;
  }

 private:
  std::uint64_t port_threshold_;
  double filter_scale_;
  std::uint64_t evals_ = 0;
  std::uint64_t port_over_threshold_ = 0;
  std::uint64_t suppressed_by_blindness_ = 0;
};

}  // namespace pmsb::ecn
