// Shared histogram bucket edges for sojourn-time instruments (TCN, CoDel).
//
// Roughly logarithmic from 1 us to 10 ms — sojourn in a datacenter switch
// spans serialization time (~1 us at 10G) to a full drop-tail buffer
// (~1.2 ms at the default 1024 MTU budget), with the +inf bucket catching
// pathologies. Keeping one edge set makes TCN and CoDel histograms directly
// comparable in the run manifest.
#pragma once

#include <vector>

namespace pmsb::ecn {

[[nodiscard]] inline std::vector<double> sojourn_bucket_bounds_us() {
  return {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000};
}

}  // namespace pmsb::ecn
