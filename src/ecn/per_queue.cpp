#include "ecn/per_queue.hpp"

#include <cmath>
#include <numeric>

namespace pmsb::ecn {

std::vector<std::uint64_t> PerQueueMarking::fractional_thresholds(
    const std::vector<double>& weights, std::uint64_t k_bytes) {
  const double weight_sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  std::vector<std::uint64_t> thresholds;
  thresholds.reserve(weights.size());
  for (double w : weights) {
    thresholds.push_back(static_cast<std::uint64_t>(
        std::llround(w / weight_sum * static_cast<double>(k_bytes))));
  }
  return thresholds;
}

}  // namespace pmsb::ecn
