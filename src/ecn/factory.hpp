// Marking scheme factory: builds a scheme plus its mark-point from a
// declarative config so benches can sweep schemes uniformly.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ecn/marking.hpp"
#include "sim/units.hpp"

namespace pmsb::ecn {

enum class MarkingKind {
  kNone,
  kPerQueueStandard,
  kPerQueueFractional,
  kPerPort,
  kMqEcn,
  kTcn,
  kPmsb,
  kRed,
  kPerPool,
  kCodel,
};

struct MarkingConfig {
  MarkingKind kind = MarkingKind::kPmsb;
  MarkPoint point = MarkPoint::kEnqueue;  ///< TCN always marks at dequeue

  std::uint64_t threshold_bytes = 0;  ///< K / port threshold (scheme-dependent)
  std::vector<double> weights;        ///< queue weights (fractional, MQ-ECN, PMSB)

  // MQ-ECN specific
  sim::RateBps capacity = sim::gbps(10);
  sim::TimeNs rtt = sim::microseconds(100);
  double lambda = 1.0;
  double beta = 0.75;
  std::uint32_t quantum_base = sim::kDefaultMtuBytes;

  // TCN specific
  sim::TimeNs sojourn_threshold = 0;

  // PMSB specific
  double filter_scale = 1.0;

  // RED specific (threshold_bytes doubles as min_threshold)
  std::uint64_t red_max_threshold_bytes = 0;
  double red_max_probability = 1.0;

  // CoDel specific
  sim::TimeNs codel_target = 0;    ///< 0 = sojourn_threshold / 4
  sim::TimeNs codel_interval = 0;  ///< 0 = 10x target
};

std::string marking_kind_name(MarkingKind kind);
MarkingKind parse_marking_kind(const std::string& name);
std::unique_ptr<MarkingScheme> make_marking(const MarkingConfig& config);

/// The mark point a config effectively uses (TCN forces dequeue).
MarkPoint effective_mark_point(const MarkingConfig& config);

}  // namespace pmsb::ecn
