// ECN marking scheme interface.
//
// A MarkingScheme decides, per packet, whether the switch sets the CE
// codepoint. The owning Port invokes it at enqueue and/or dequeue time
// (configurable per scheme capability) with a snapshot of the buffer state.
//
// Buffer-length convention: the snapshot always INCLUDES the packet being
// judged — at enqueue the lengths are "after insertion", at dequeue "before
// removal" — so a threshold of K bytes trips on the packet that pushes the
// occupancy to K, matching the instantaneous-queue-length semantics of
// DCTCP-style RED marking.
#pragma once

#include <cstdint>
#include <string>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::ecn {

using net::Packet;
using sim::TimeNs;

/// Where in the switch pipeline the marking decision runs.
enum class MarkPoint : std::uint8_t {
  kEnqueue,  ///< on packet arrival (classic RED/ECN position)
  kDequeue,  ///< on packet departure (accelerates congestion feedback, §II)
};

/// Snapshot of one port's buffer state at decision time.
struct PortSnapshot {
  std::uint64_t port_bytes = 0;      ///< total bytes buffered at the port
  std::size_t port_packets = 0;      ///< total packets buffered at the port
  std::uint64_t queue_bytes = 0;     ///< bytes in the judged packet's queue
  std::size_t queue_packets = 0;     ///< packets in the judged packet's queue
  std::size_t queue = 0;             ///< queue index of the judged packet
  double weight = 1.0;               ///< weight of that queue
  double weight_sum = 1.0;           ///< sum of all queue weights at the port
  std::size_t num_queues = 1;
  // Shared service-pool state (valid only when has_pool).
  bool has_pool = false;
  std::uint64_t pool_bytes = 0;      ///< occupancy of the shared buffer pool
};

class MarkingScheme {
 public:
  virtual ~MarkingScheme() = default;
  MarkingScheme() = default;
  MarkingScheme(const MarkingScheme&) = delete;
  MarkingScheme& operator=(const MarkingScheme&) = delete;

  /// Returns true if `pkt` should carry CE. Called once per packet per
  /// configured mark point.
  [[nodiscard]] virtual bool should_mark(const PortSnapshot& snap, const Packet& pkt,
                                         MarkPoint point, TimeNs now) = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  // --- Capability flags (paper Table I) ---
  /// Works with round-based schedulers (WRR/DWRR).
  [[nodiscard]] virtual bool supports_round_based() const { return true; }
  /// Works with generic schedulers (WFQ/SP) — MQ-ECN does not.
  [[nodiscard]] virtual bool supports_generic() const { return true; }
  /// Dequeue marking delivers congestion information early — TCN does not.
  [[nodiscard]] virtual bool early_notification() const { return true; }
  /// Needs changes inside the switch (everything except plain per-port used
  /// by PMSB(e) end hosts).
  [[nodiscard]] virtual bool requires_switch_modification() const { return true; }

  /// Registers this scheme's internal instruments (threshold evaluations,
  /// blindness suppressions, sojourn histograms, ...) under `labels`.
  /// Default: the scheme has nothing beyond what the Port already counts.
  virtual void bind_metrics(telemetry::MetricsRegistry& registry,
                            const telemetry::Labels& labels) {
    (void)registry;
    (void)labels;
  }

  // --- Hooks driven by the owning Port ---
  /// A scheduling round completed (round-based schedulers only).
  virtual void on_round_complete(TimeNs now) { (void)now; }
  /// A packet arrived at the port; `port_was_empty` is the state before it.
  virtual void on_port_activity(TimeNs now, bool port_was_empty) {
    (void)now;
    (void)port_was_empty;
  }
};

}  // namespace pmsb::ecn
