// CoDel (Nichols & Jacobson, 2012) in ECN-marking mode — an additional
// sojourn-time AQM baseline next to TCN.
//
// Where TCN marks every packet whose sojourn exceeds a fixed T_k, CoDel
// enters a marking phase only after sojourn has stayed above `target` for a
// full `interval`, then marks at an increasing rate (interval / sqrt(count))
// until sojourn drops back below target. State is kept per queue. Like TCN
// it is duration-based, so it only acts at dequeue and cannot deliver
// congestion information early (same Table-I row as TCN).
#pragma once

#include <cmath>
#include <vector>

#include "ecn/marking.hpp"
#include "ecn/sojourn_buckets.hpp"
#include "sim/units.hpp"

namespace pmsb::ecn {

struct CodelConfig {
  TimeNs target = sim::microseconds(20);    ///< acceptable standing sojourn
  TimeNs interval = sim::microseconds(200); ///< sliding window (~worst RTT)
  std::size_t num_queues = 1;
};

class CodelMarking final : public MarkingScheme {
 public:
  explicit CodelMarking(CodelConfig config)
      : cfg_(config), state_(config.num_queues) {}

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet& pkt,
                                 MarkPoint point, TimeNs now) override {
    if (point != MarkPoint::kDequeue) return false;
    ++evals_;
    QueueState& st = state_.at(snap.queue % state_.size());
    const TimeNs sojourn = now - pkt.enqueue_time;
    if (sojourn_hist_ != nullptr) {
      sojourn_hist_->observe(sim::to_microseconds(sojourn));
    }
    if (sojourn < cfg_.target || snap.queue_bytes < sim::kDefaultMtuBytes) {
      // Below target: leave the marking phase.
      st.first_above = kNever;
      st.marking = false;
      return false;
    }
    if (st.first_above == kNever) {
      st.first_above = now + cfg_.interval;
      return false;
    }
    if (!st.marking) {
      if (now < st.first_above) return false;
      // Sojourn stayed above target for a whole interval: start marking.
      st.marking = true;
      // Resume from the previous rate if we were marking recently.
      st.count = (st.count > 2 && now - st.mark_next < 8 * cfg_.interval)
                     ? st.count - 2
                     : 1;
      st.mark_next = now + control_law(st.count);
      return true;
    }
    if (now >= st.mark_next) {
      ++st.count;
      st.mark_next += control_law(st.count);
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string name() const override { return "CoDel"; }
  [[nodiscard]] bool early_notification() const override { return false; }

  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) override {
    registry.bind_counter("ecn.threshold_evals", labels, &evals_, "evals");
    sojourn_hist_ =
        &registry.histogram("ecn.sojourn_us", sojourn_bucket_bounds_us(), labels, "us");
  }

  [[nodiscard]] std::uint64_t mark_count(std::size_t queue) const {
    return state_.at(queue).count;
  }

 private:
  static constexpr TimeNs kNever = -1;

  [[nodiscard]] TimeNs control_law(std::uint64_t count) const {
    return static_cast<TimeNs>(static_cast<double>(cfg_.interval) /
                               std::sqrt(static_cast<double>(count)));
  }

  struct QueueState {
    TimeNs first_above = kNever;
    bool marking = false;
    std::uint64_t count = 0;
    TimeNs mark_next = 0;
  };

  CodelConfig cfg_;
  std::vector<QueueState> state_;
  std::uint64_t evals_ = 0;
  telemetry::Histogram* sojourn_hist_ = nullptr;  ///< set when bound
};

}  // namespace pmsb::ecn
