// RED marking (Floyd & Jacobson 1993) — the scheme DCTCP's "special
// parameter setting" (§II.A of the PMSB paper) degenerates from.
//
// Probability ramps linearly from 0 at min_th to max_p at max_th against
// the (typically EWMA-averaged) queue occupancy in the snapshot; above
// max_th every packet is marked. The classic inter-mark `count` correction
// spreads marks evenly. DCTCP's setting is min_th == max_th == K with
// max_p = 1, which this class also supports.
#pragma once

#include <cstdint>

#include "ecn/marking.hpp"

namespace pmsb::ecn {

struct RedConfig {
  std::uint64_t min_threshold_bytes = 0;
  std::uint64_t max_threshold_bytes = 0;
  double max_probability = 1.0;
  std::uint64_t prng_seed = 0x9e3779b97f4a7c15ull;  ///< deterministic runs
};

class RedMarking final : public MarkingScheme {
 public:
  explicit RedMarking(RedConfig config) : cfg_(config), state_(config.prng_seed) {
    if (cfg_.max_threshold_bytes < cfg_.min_threshold_bytes) {
      throw std::invalid_argument("RED: max_threshold < min_threshold");
    }
  }

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    const std::uint64_t q = snap.queue_bytes;
    if (q < cfg_.min_threshold_bytes) {
      count_ = -1;
      return false;
    }
    if (q >= cfg_.max_threshold_bytes) {
      count_ = 0;
      return true;
    }
    ++count_;
    const double span = static_cast<double>(cfg_.max_threshold_bytes -
                                            cfg_.min_threshold_bytes);
    const double pb = cfg_.max_probability *
                      static_cast<double>(q - cfg_.min_threshold_bytes) / span;
    // Floyd's uniformisation: p_a = p_b / (1 - count * p_b).
    const double denom = 1.0 - static_cast<double>(count_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : pb / denom;
    if (next_uniform() < pa) {
      count_ = 0;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string name() const override { return "RED"; }
  [[nodiscard]] bool requires_switch_modification() const override { return false; }

 private:
  /// xorshift64* — tiny deterministic PRNG, no <random> state to drag in.
  double next_uniform() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    const std::uint64_t x = state_ * 0x2545F4914F6CDD1Dull;
    return static_cast<double>(x >> 11) * (1.0 / 9007199254740992.0);
  }

  RedConfig cfg_;
  std::uint64_t state_;
  std::int64_t count_ = -1;
};

}  // namespace pmsb::ecn
