// TCN marking (Bai et al., CoNEXT 2016; paper §II.C Eq. 4).
//
// A packet is marked at DEQUEUE time if its sojourn time in the switch
// exceeds T_k = RTT * lambda. Duration-based by construction: congestion is
// only observed after a packet has experienced it, so TCN cannot deliver
// congestion information early (paper Fig. 5 / Table I).
#pragma once

#include "ecn/marking.hpp"
#include "ecn/sojourn_buckets.hpp"

namespace pmsb::ecn {

class TcnMarking final : public MarkingScheme {
 public:
  explicit TcnMarking(TimeNs sojourn_threshold) : threshold_(sojourn_threshold) {}

  [[nodiscard]] bool should_mark(const PortSnapshot&, const Packet& pkt, MarkPoint point,
                                 TimeNs now) override {
    if (point != MarkPoint::kDequeue) return false;  // sojourn unknown before dequeue
    ++evals_;
    const TimeNs sojourn = now - pkt.enqueue_time;
    if (sojourn_hist_ != nullptr) {
      sojourn_hist_->observe(sim::to_microseconds(sojourn));
    }
    return sojourn > threshold_;
  }

  [[nodiscard]] std::string name() const override { return "TCN"; }

  [[nodiscard]] bool early_notification() const override { return false; }

  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) override {
    registry.bind_counter("ecn.threshold_evals", labels, &evals_, "evals");
    sojourn_hist_ =
        &registry.histogram("ecn.sojourn_us", sojourn_bucket_bounds_us(), labels, "us");
  }

  [[nodiscard]] TimeNs sojourn_threshold() const { return threshold_; }

 private:
  TimeNs threshold_;
  std::uint64_t evals_ = 0;
  telemetry::Histogram* sojourn_hist_ = nullptr;  ///< set when bound
};

}  // namespace pmsb::ecn
