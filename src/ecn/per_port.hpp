// Per-port ECN marking (§II.B): one threshold over the whole port buffer.
//
// Achieves both high throughput and low latency, but violates weighted fair
// sharing — packets of an un-congested queue get marked because of other
// queues' occupancy (paper Fig. 3). This is also the switch-side behaviour
// PMSB(e) runs against: the selective blindness then happens at end hosts.
#pragma once

#include "ecn/marking.hpp"

namespace pmsb::ecn {

class PerPortMarking final : public MarkingScheme {
 public:
  explicit PerPortMarking(std::uint64_t port_threshold_bytes)
      : threshold_(port_threshold_bytes) {}

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    ++evals_;
    return snap.port_bytes >= threshold_;
  }

  [[nodiscard]] std::string name() const override { return "PerPort"; }

  /// Plain per-port marking is what commodity chips already do.
  [[nodiscard]] bool requires_switch_modification() const override { return false; }

  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) override {
    registry.bind_counter("ecn.threshold_evals", labels, &evals_, "evals");
  }

  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

 private:
  std::uint64_t threshold_;
  std::uint64_t evals_ = 0;
};

/// Marking disabled (plain drop-tail port).
class NoMarking final : public MarkingScheme {
 public:
  [[nodiscard]] bool should_mark(const PortSnapshot&, const Packet&, MarkPoint,
                                 TimeNs) override {
    return false;
  }
  [[nodiscard]] std::string name() const override { return "None"; }
  [[nodiscard]] bool requires_switch_modification() const override { return false; }
};

}  // namespace pmsb::ecn
