// MQ-ECN marking (Bai et al., NSDI 2016; paper §II.C Eq. 3).
//
// Each queue's threshold adapts to its current drain rate:
//     K_i = min(quantum_i / T_round, C) * RTT * lambda
// where T_round, the time one scheduling round takes, is estimated as an
// EWMA of round-completion samples reported by the (round-based) scheduler.
// After the port has been idle longer than T_idle the estimate resets, which
// restores the standard threshold so a fresh flow ramps at full speed.
//
// MQ-ECN only works where "round" is defined, i.e. WRR/DWRR — the reason the
// paper excludes it from the WFQ evaluation (Table I, §VI.B).
#pragma once

#include <algorithm>
#include <vector>

#include "ecn/marking.hpp"
#include "sim/units.hpp"

namespace pmsb::ecn {

struct MqEcnConfig {
  std::vector<double> quantum_bytes;  ///< per-queue quantum (w_i * quantum base)
  sim::RateBps capacity = sim::gbps(10);
  TimeNs rtt = sim::microseconds(100);
  double lambda = 1.0;
  double beta = 0.75;                        ///< EWMA smoothing (paper §VI)
  TimeNs t_idle = sim::microseconds_f(1.2);  ///< idle reset; paper: one MTU time
};

class MqEcnMarking final : public MarkingScheme {
 public:
  explicit MqEcnMarking(MqEcnConfig config) : cfg_(std::move(config)) {
    if (cfg_.quantum_bytes.empty()) {
      throw std::invalid_argument("MqEcnMarking: quantum_bytes must not be empty");
    }
  }

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs now) override {
    last_activity_ = now;
    return static_cast<double>(snap.queue_bytes) >= threshold_bytes(snap.queue);
  }

  [[nodiscard]] std::string name() const override { return "MQ-ECN"; }

  [[nodiscard]] bool supports_generic() const override { return false; }

  void on_round_complete(TimeNs now) override {
    if (round_start_valid_) {
      const TimeNs sample = now - round_start_;
      t_round_ = cfg_.beta * t_round_ + (1.0 - cfg_.beta) * static_cast<double>(sample);
    }
    round_start_ = now;
    round_start_valid_ = true;
    last_activity_ = now;
  }

  void on_port_activity(TimeNs now, bool port_was_empty) override {
    if (port_was_empty && now - last_activity_ > cfg_.t_idle) {
      // Long idle: forget the round estimate so K_i snaps back to standard.
      t_round_ = 0.0;
      round_start_valid_ = false;
    }
    last_activity_ = now;
  }

  /// Eq. 3, in bytes. With no round estimate the standard threshold applies.
  [[nodiscard]] double threshold_bytes(std::size_t queue) const {
    const double c_bytes_per_ns = static_cast<double>(cfg_.capacity) / 8.0 * 1e-9;
    const double k_standard =
        c_bytes_per_ns * static_cast<double>(cfg_.rtt) * cfg_.lambda;
    if (t_round_ <= 0.0) return k_standard;
    const double drain_bytes_per_ns =
        std::min(cfg_.quantum_bytes.at(queue) / t_round_, c_bytes_per_ns);
    return drain_bytes_per_ns * static_cast<double>(cfg_.rtt) * cfg_.lambda;
  }

  [[nodiscard]] double t_round_estimate() const { return t_round_; }

 private:
  MqEcnConfig cfg_;
  double t_round_ = 0.0;  // EWMA of round duration, in ns
  TimeNs round_start_ = 0;
  bool round_start_valid_ = false;
  TimeNs last_activity_ = 0;
};

}  // namespace pmsb::ecn
