// Per-queue ECN marking (§II.B of the paper).
//
// Each queue has an independent threshold. Two standard configurations:
//  - "standard": every queue gets K = C*RTT*lambda. High throughput, but
//    latency grows with the number of active queues (paper Fig. 1).
//  - "fractional": K_i = w_i/sum(w) * K. Low latency, but throughput loss
//    when few queues are active (paper Fig. 2).
#pragma once

#include <vector>

#include "ecn/marking.hpp"
#include "sim/units.hpp"

namespace pmsb::ecn {

class PerQueueMarking final : public MarkingScheme {
 public:
  /// `thresholds_bytes[q]` is queue q's marking threshold.
  explicit PerQueueMarking(std::vector<std::uint64_t> thresholds_bytes)
      : thresholds_(std::move(thresholds_bytes)) {}

  /// Standard configuration: all queues share the same threshold.
  static std::vector<std::uint64_t> standard_thresholds(std::size_t num_queues,
                                                        std::uint64_t k_bytes) {
    return std::vector<std::uint64_t>(num_queues, k_bytes);
  }

  /// Fractional configuration (Eq. 2): split `k_bytes` by weight.
  static std::vector<std::uint64_t> fractional_thresholds(
      const std::vector<double>& weights, std::uint64_t k_bytes);

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    return snap.queue_bytes >= thresholds_.at(snap.queue);
  }

  [[nodiscard]] std::string name() const override { return "PerQueue"; }

  [[nodiscard]] std::uint64_t threshold(std::size_t q) const { return thresholds_.at(q); }

 private:
  std::vector<std::uint64_t> thresholds_;
};

}  // namespace pmsb::ecn
