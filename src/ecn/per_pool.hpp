// Per-service-pool ECN marking (§II.B).
//
// Marks when the SHARED buffer pool's occupancy exceeds the threshold.
// Queues on *different* ports interfere through the pool, so this violates
// weighted fair sharing even across ports — the paper's §II.B conjecture,
// demonstrated by bench_pool_isolation.
#pragma once

#include "ecn/marking.hpp"

namespace pmsb::ecn {

class PerPoolMarking final : public MarkingScheme {
 public:
  explicit PerPoolMarking(std::uint64_t pool_threshold_bytes)
      : threshold_(pool_threshold_bytes) {}

  [[nodiscard]] bool should_mark(const PortSnapshot& snap, const Packet&, MarkPoint,
                                 TimeNs) override {
    // Without a pool this degenerates to per-port marking.
    const std::uint64_t occupancy = snap.has_pool ? snap.pool_bytes : snap.port_bytes;
    return occupancy >= threshold_;
  }

  [[nodiscard]] std::string name() const override { return "PerPool"; }
  [[nodiscard]] bool requires_switch_modification() const override { return false; }
  [[nodiscard]] std::uint64_t threshold() const { return threshold_; }

 private:
  std::uint64_t threshold_;
};

}  // namespace pmsb::ecn
