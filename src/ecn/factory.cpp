#include "ecn/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "ecn/codel.hpp"
#include "ecn/mq_ecn.hpp"
#include "ecn/per_pool.hpp"
#include "ecn/per_port.hpp"
#include "ecn/per_queue.hpp"
#include "ecn/pmsb_marking.hpp"
#include "ecn/red.hpp"
#include "ecn/tcn.hpp"

namespace pmsb::ecn {

std::string marking_kind_name(MarkingKind kind) {
  switch (kind) {
    case MarkingKind::kNone: return "None";
    case MarkingKind::kPerQueueStandard: return "PerQueue-Std";
    case MarkingKind::kPerQueueFractional: return "PerQueue-Frac";
    case MarkingKind::kPerPort: return "PerPort";
    case MarkingKind::kMqEcn: return "MQ-ECN";
    case MarkingKind::kTcn: return "TCN";
    case MarkingKind::kPmsb: return "PMSB";
    case MarkingKind::kRed: return "RED";
    case MarkingKind::kPerPool: return "PerPool";
    case MarkingKind::kCodel: return "CoDel";
  }
  return "?";
}

MarkingKind parse_marking_kind(const std::string& name) {
  std::string up(name.size(), '\0');
  std::transform(name.begin(), name.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (up == "NONE") return MarkingKind::kNone;
  if (up == "PERQUEUE-STD" || up == "PERQUEUE") return MarkingKind::kPerQueueStandard;
  if (up == "PERQUEUE-FRAC") return MarkingKind::kPerQueueFractional;
  if (up == "PERPORT") return MarkingKind::kPerPort;
  if (up == "MQ-ECN" || up == "MQECN") return MarkingKind::kMqEcn;
  if (up == "TCN") return MarkingKind::kTcn;
  if (up == "PMSB") return MarkingKind::kPmsb;
  if (up == "RED") return MarkingKind::kRed;
  if (up == "PERPOOL") return MarkingKind::kPerPool;
  if (up == "CODEL") return MarkingKind::kCodel;
  throw std::invalid_argument("unknown marking scheme: " + name);
}

MarkPoint effective_mark_point(const MarkingConfig& config) {
  // Duration-based schemes can only judge a packet once its sojourn is
  // known, i.e. at dequeue.
  if (config.kind == MarkingKind::kTcn || config.kind == MarkingKind::kCodel) {
    return MarkPoint::kDequeue;
  }
  return config.point;
}

std::unique_ptr<MarkingScheme> make_marking(const MarkingConfig& config) {
  switch (config.kind) {
    case MarkingKind::kNone:
      return std::make_unique<NoMarking>();
    case MarkingKind::kPerQueueStandard: {
      const std::size_t n = std::max<std::size_t>(1, config.weights.size());
      return std::make_unique<PerQueueMarking>(
          PerQueueMarking::standard_thresholds(n, config.threshold_bytes));
    }
    case MarkingKind::kPerQueueFractional: {
      if (config.weights.empty()) {
        throw std::invalid_argument("PerQueue-Frac needs queue weights");
      }
      return std::make_unique<PerQueueMarking>(
          PerQueueMarking::fractional_thresholds(config.weights, config.threshold_bytes));
    }
    case MarkingKind::kPerPort:
      return std::make_unique<PerPortMarking>(config.threshold_bytes);
    case MarkingKind::kMqEcn: {
      if (config.weights.empty()) {
        throw std::invalid_argument("MQ-ECN needs queue weights");
      }
      MqEcnConfig mc;
      mc.quantum_bytes.reserve(config.weights.size());
      for (double w : config.weights) mc.quantum_bytes.push_back(w * config.quantum_base);
      mc.capacity = config.capacity;
      mc.rtt = config.rtt;
      mc.lambda = config.lambda;
      mc.beta = config.beta;
      mc.t_idle = sim::serialization_delay(config.quantum_base, config.capacity);
      return std::make_unique<MqEcnMarking>(std::move(mc));
    }
    case MarkingKind::kTcn:
      return std::make_unique<TcnMarking>(config.sojourn_threshold);
    case MarkingKind::kPmsb:
      return std::make_unique<PmsbMarking>(config.threshold_bytes, config.filter_scale);
    case MarkingKind::kRed: {
      RedConfig rc;
      rc.min_threshold_bytes = config.threshold_bytes;
      rc.max_threshold_bytes = config.red_max_threshold_bytes != 0
                                   ? config.red_max_threshold_bytes
                                   : config.threshold_bytes;
      rc.max_probability = config.red_max_probability;
      return std::make_unique<RedMarking>(rc);
    }
    case MarkingKind::kPerPool:
      return std::make_unique<PerPoolMarking>(config.threshold_bytes);
    case MarkingKind::kCodel: {
      CodelConfig cc;
      cc.target = config.codel_target != 0 ? config.codel_target
                                           : config.sojourn_threshold / 4;
      cc.interval = config.codel_interval != 0 ? config.codel_interval
                                               : 10 * cc.target;
      cc.num_queues = std::max<std::size_t>(1, config.weights.size());
      return std::make_unique<CodelMarking>(cc);
    }
  }
  throw std::invalid_argument("make_marking: bad kind");
}

}  // namespace pmsb::ecn
