#include "regress/bench_json.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "regress/bench_runner.hpp"
#include "telemetry/process_stats.hpp"
#include "telemetry/run_report.hpp"

namespace pmsb::regress {

BenchRecord make_bench_record(const std::string& name,
                              const std::vector<double>& wall_s,
                              std::uint64_t events) {
  BenchRecord r;
  r.name = name;
  r.reps = static_cast<int>(wall_s.size());
  r.wall_s_median = median(wall_s);
  r.wall_s_mad = mad(wall_s, r.wall_s_median);
  r.events = events;
  std::vector<double> eps;
  eps.reserve(wall_s.size());
  for (const double w : wall_s) {
    eps.push_back(w > 0.0 ? static_cast<double>(events) / w : 0.0);
  }
  r.events_per_s_median = median(eps);
  r.events_per_s_mad = mad(eps, r.events_per_s_median);
  return r;
}

std::string bench_report_json(const BenchReport& report) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmsb.bench/1");
  w.key("tool").value(report.tool);
  w.key("git").value(telemetry::build_git_describe());
  w.key("scale").value(report.scale);
  w.key("peak_rss_bytes")
      .value(static_cast<double>(telemetry::peak_rss_bytes()));
  w.key("benchmarks").begin_array();
  for (const BenchRecord& b : report.benchmarks) {
    w.begin_object();
    w.key("name").value(b.name);
    w.key("reps").value(static_cast<std::int64_t>(b.reps));
    w.key("wall_s_median").value(b.wall_s_median);
    w.key("wall_s_mad").value(b.wall_s_mad);
    w.key("events").value(b.events);
    w.key("events_per_s_median").value(b.events_per_s_median);
    w.key("events_per_s_mad").value(b.events_per_s_mad);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool maybe_write_bench_json(const BenchReport& report) {
  const char* path = std::getenv("PMSB_BENCH_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  std::ofstream out(path);
  if (!out) throw std::runtime_error(std::string("cannot open ") + path);
  out << bench_report_json(report) << '\n';
  if (!out.good()) throw std::runtime_error(std::string("write failed: ") + path);
  std::printf("wrote %s (%zu benchmarks)\n", path, report.benchmarks.size());
  return true;
}

}  // namespace pmsb::regress
