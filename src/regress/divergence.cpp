#include "regress/divergence.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "regress/baseline.hpp"

namespace pmsb::regress {

namespace {

/// Sorted names of entities whose sub-digest differs between the baseline
/// map and the current digest — including one-sided entities.
std::vector<std::string> diverged_entities(const CellBaseline& base,
                                           const RunDigest& current) {
  const std::map<std::string, std::string> cur = current.sub_digest_hex();
  std::set<std::string> out;
  for (const auto& [name, hex] : base.sub_digests) {
    const auto it = cur.find(name);
    if (it == cur.end() || it->second != hex) out.insert(name);
  }
  for (const auto& [name, hex] : cur) {
    if (!base.sub_digests.count(name)) out.insert(name);
  }
  return {out.begin(), out.end()};
}

}  // namespace

DivergenceReport find_divergence(const CellBaseline& base, const RunDigest& current,
                                 const std::function<void(RunDigest&)>& rerun) {
  DivergenceReport rep;
  rep.base_events = base.event_count;
  rep.cur_events = current.count();
  if (base.digest == current.total().hex() && base.event_count == current.count()) {
    return rep;
  }
  rep.diverged = true;
  rep.entities = diverged_entities(base, current);

  // Bracket the first diverging stream position: walk the current run's
  // checkpoints in order against the baseline's (keyed by index). lo = the
  // last index where both sides agree; hi = the first common index where
  // they differ. Checkpoint ladders may have different intervals after
  // compaction, so only common indices are comparable.
  std::map<std::uint64_t, std::string> base_ckpt;
  for (const auto& [index, hex] : base.checkpoints) base_ckpt[index] = hex;
  std::uint64_t lo = 0;
  std::uint64_t hi = std::max(base.event_count, current.count());
  for (const RunDigest::Checkpoint& c : current.checkpoints()) {
    const auto it = base_ckpt.find(c.index);
    if (it == base_ckpt.end()) continue;
    if (it->second == c.hash.hex()) {
      lo = std::max(lo, c.index);
    } else {
      hi = std::min(hi, c.index);
      break;
    }
  }
  if (hi < lo) hi = lo;  // degenerate ladders (shouldn't happen, stay sane)
  rep.window_lo = lo;
  rep.window_hi = hi;

  if (rerun) {
    RunDigest replay(current.checkpoint_interval());
    // hi == lo means the mismatch is past every common checkpoint (e.g. in
    // the final stats); journal to the end of the stream.
    const std::uint64_t jhi = hi > lo ? hi : std::max(rep.base_events, rep.cur_events);
    replay.arm_journal(lo, jhi == lo ? lo + 1 : jhi);
    rerun(replay);
    const std::set<std::string> bad(rep.entities.begin(), rep.entities.end());
    for (const RunDigest::JournalRecord& r : replay.journal()) {
      const std::string& name = r.entity < replay.num_entities()
                                    ? replay.entity_name(r.entity)
                                    : std::string();
      if (bad.empty() || bad.count(name)) {
        rep.event_located = true;
        rep.first_event = r;
        rep.first_entity_name = name;
        break;
      }
    }
  }
  return rep;
}

std::string DivergenceReport::summary() const {
  if (!diverged) return "";
  std::ostringstream os;
  os << "digest mismatch: events " << base_events << " (baseline) vs " << cur_events
     << " (current), divergence window [" << window_lo << ", " << window_hi << ")\n";
  if (!entities.empty()) {
    os << "diverged entities:";
    for (const std::string& e : entities) os << ' ' << e;
    os << '\n';
  }
  if (event_located) {
    os << "first diverging event: #" << first_event.index << " t=" << first_event.time
       << "ns entity=" << first_entity_name << " kind="
       << event_kind_name(first_event.kind) << " a=" << first_event.a
       << " b=" << first_event.b << '\n';
  } else {
    os << "first diverging event: not localized (no journaled event in window)\n";
  }
  return os.str();
}

}  // namespace pmsb::regress
