// Noise-aware perf measurement for the regression plane.
//
// measure_scenario() runs one cell N warmup + M timed repetitions (digest
// OFF, so the hash cost never pollutes the throughput sample) and reports
// median + MAD of wall-clock and events/sec. compare_perf() applies a
// tolerance that widens with the observed noise on BOTH sides: a regression
// is flagged only when the current median falls below the baseline median by
// more than max(rel_tolerance * base_median, mad_multiplier * (base_mad +
// cur_mad)). Median/MAD instead of mean/stddev because CI machines produce
// heavy-tailed timing outliers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmsb::experiments {
class Options;
}

namespace pmsb::regress {

struct CellPerf;

/// Median of `v` (by copy; v may be unsorted). 0 for empty input.
[[nodiscard]] double median(std::vector<double> v);

/// Median absolute deviation from `med`. 0 for empty input.
[[nodiscard]] double mad(const std::vector<double>& v, double med);

struct BenchConfig {
  int warmup = 1;
  int reps = 3;
};

/// Raw + derived perf sample of one cell.
struct Measurement {
  std::vector<double> wall_s;        ///< one entry per timed rep
  std::vector<double> events_per_s;  ///< one entry per timed rep
  std::uint64_t events = 0;          ///< kernel events of one run
  double wall_s_median = 0.0;
  double wall_s_mad = 0.0;
  double events_per_s_median = 0.0;
  double events_per_s_mad = 0.0;
  double peak_rss_bytes = 0.0;

  /// Computes the medians/MADs from the raw rep vectors.
  void finalize();
  /// The CellPerf record this measurement pins in a baseline.
  [[nodiscard]] CellPerf to_cell_perf() const;
};

/// Runs the scenario `opts` describes (via sweep::run_scenario, quiet)
/// config.warmup + config.reps times and returns the timed sample. Throws
/// whatever the scenario throws.
[[nodiscard]] Measurement measure_scenario(const experiments::Options& opts,
                                           const BenchConfig& config);

struct PerfVerdict {
  bool ok = true;
  double ratio = 1.0;   ///< current events/s median over baseline median
  std::string detail;   ///< human-readable explanation either way
};

/// Compares current against baseline events/sec. `rel_tolerance` is the
/// fractional slowdown always allowed; `mad_multiplier` scales the combined
/// noise allowance. A baseline with reps == 0 compares ok (perf not pinned).
[[nodiscard]] PerfVerdict compare_perf(const CellPerf& base, const Measurement& cur,
                                       double rel_tolerance, double mad_multiplier);

}  // namespace pmsb::regress
