#include "regress/baseline.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/json_reader.hpp"
#include "telemetry/run_report.hpp"

namespace pmsb::regress {

namespace {

using telemetry::JsonWriter;
using telemetry::json::Value;

std::uint64_t as_u64(const Value& v, const std::string& what) {
  if (!v.is_number()) throw std::runtime_error("baseline: " + what + " not a number");
  // raw_number keeps integers above 2^53 exact.
  return std::strtoull(v.raw_number.c_str(), nullptr, 10);
}

double as_f64(const Value& v, const std::string& what) {
  if (!v.is_number()) throw std::runtime_error("baseline: " + what + " not a number");
  return v.number;
}

std::string as_str(const Value& v, const std::string& what) {
  if (!v.is_string()) throw std::runtime_error("baseline: " + what + " not a string");
  return v.string;
}

}  // namespace

const CellBaseline* Baseline::find(const std::string& name) const {
  for (const CellBaseline& c : cells) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

std::string baseline_json(const Baseline& baseline) {
  std::vector<const CellBaseline*> cells;
  cells.reserve(baseline.cells.size());
  for (const CellBaseline& c : baseline.cells) cells.push_back(&c);
  std::sort(cells.begin(), cells.end(),
            [](const CellBaseline* a, const CellBaseline* b) { return a->name < b->name; });

  JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmsb.baseline/1");
  w.key("git").value(baseline.git);
  w.key("warmup").value(static_cast<std::int64_t>(baseline.warmup));
  w.key("reps").value(static_cast<std::int64_t>(baseline.reps));
  w.key("cells").begin_array();
  for (const CellBaseline* c : cells) {
    w.begin_object();
    w.key("name").value(c->name);
    w.key("config").begin_object();
    for (const auto& [k, v] : c->config) w.key(k).value(v);
    w.end_object();
    w.key("digest").value(c->digest);
    w.key("event_count").value(c->event_count);
    w.key("sub_digests").begin_object();
    for (const auto& [k, v] : c->sub_digests) w.key(k).value(v);
    w.end_object();
    w.key("checkpoint_interval").value(c->checkpoint_interval);
    w.key("checkpoints").begin_array();
    for (const auto& [index, hex] : c->checkpoints) {
      w.begin_object();
      w.key("i").value(index);
      w.key("h").value(hex);
      w.end_object();
    }
    w.end_array();
    w.key("perf").begin_object();
    w.key("wall_s_median").value(c->perf.wall_s_median);
    w.key("wall_s_mad").value(c->perf.wall_s_mad);
    w.key("events_per_s_median").value(c->perf.events_per_s_median);
    w.key("events_per_s_mad").value(c->perf.events_per_s_mad);
    w.key("peak_rss_bytes").value(c->perf.peak_rss_bytes);
    w.key("events").value(c->perf.events);
    w.key("reps").value(static_cast<std::int64_t>(c->perf.reps));
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_baseline(const std::string& path, const Baseline& baseline) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_baseline: cannot open " + path);
  out << baseline_json(baseline) << '\n';
  if (!out.good()) throw std::runtime_error("write_baseline: write failed: " + path);
}

Baseline parse_baseline(const std::string& text, const std::string& origin) {
  Value doc;
  try {
    doc = telemetry::json::parse(text);
  } catch (const std::exception& e) {
    throw std::runtime_error("baseline " + origin + ": " + e.what());
  }
  const std::string schema = as_str(doc.at("schema"), "schema");
  if (schema != "pmsb.baseline/1") {
    throw std::runtime_error("baseline " + origin + ": unexpected schema '" + schema +
                             "'");
  }
  Baseline b;
  b.git = as_str(doc.at("git"), "git");
  b.warmup = static_cast<int>(as_u64(doc.at("warmup"), "warmup"));
  b.reps = static_cast<int>(as_u64(doc.at("reps"), "reps"));
  const Value& cells = doc.at("cells");
  if (!cells.is_array()) throw std::runtime_error("baseline " + origin + ": cells");
  for (const Value& cv : cells.array) {
    CellBaseline c;
    c.name = as_str(cv.at("name"), "cell name");
    for (const auto& [k, v] : cv.at("config").object) {
      c.config[k] = as_str(v, "config." + k);
    }
    c.digest = as_str(cv.at("digest"), "digest");
    c.event_count = as_u64(cv.at("event_count"), "event_count");
    for (const auto& [k, v] : cv.at("sub_digests").object) {
      c.sub_digests[k] = as_str(v, "sub_digests." + k);
    }
    c.checkpoint_interval = as_u64(cv.at("checkpoint_interval"), "checkpoint_interval");
    for (const Value& ck : cv.at("checkpoints").array) {
      c.checkpoints.emplace_back(as_u64(ck.at("i"), "checkpoint index"),
                                 as_str(ck.at("h"), "checkpoint hash"));
    }
    const Value& p = cv.at("perf");
    c.perf.wall_s_median = as_f64(p.at("wall_s_median"), "perf.wall_s_median");
    c.perf.wall_s_mad = as_f64(p.at("wall_s_mad"), "perf.wall_s_mad");
    c.perf.events_per_s_median =
        as_f64(p.at("events_per_s_median"), "perf.events_per_s_median");
    c.perf.events_per_s_mad = as_f64(p.at("events_per_s_mad"), "perf.events_per_s_mad");
    c.perf.peak_rss_bytes = as_f64(p.at("peak_rss_bytes"), "perf.peak_rss_bytes");
    c.perf.events = as_u64(p.at("events"), "perf.events");
    c.perf.reps = static_cast<int>(as_u64(p.at("reps"), "perf.reps"));
    b.cells.push_back(std::move(c));
  }
  return b;
}

Baseline read_baseline(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_baseline: cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse_baseline(ss.str(), path);
}

}  // namespace pmsb::regress
