// Baseline store for the regression plane, schema `pmsb.baseline/1`.
//
// A baseline pins, for every cell of the regression matrix, the run digest
// (total + per-entity sub-digests + stream checkpoints) and a perf sample
// (median/MAD wall-clock and events/sec over N reps, peak RSS). Written via
// telemetry::JsonWriter, read back through the strict telemetry/json_reader
// — the same round-trip discipline as run manifests.
//
//   {
//     "schema": "pmsb.baseline/1", "git": "...", "warmup": N, "reps": M,
//     "cells": [
//       {"name": "...", "config": {"key": "value", ...},
//        "digest": "<32 hex>", "event_count": N,
//        "sub_digests": {"entity": "<32 hex>", ...},
//        "checkpoint_interval": I,
//        "checkpoints": [{"i": N, "h": "<32 hex>"}, ...],
//        "perf": {"wall_s_median": W, "wall_s_mad": D,
//                 "events_per_s_median": E, "events_per_s_mad": F,
//                 "peak_rss_bytes": R, "events": N, "reps": M}}
//     ]
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace pmsb::regress {

/// Perf sample for one cell. reps == 0 means perf was not recorded (digest
/// only) and perf comparison is skipped for the cell.
struct CellPerf {
  double wall_s_median = 0.0;
  double wall_s_mad = 0.0;
  double events_per_s_median = 0.0;
  double events_per_s_mad = 0.0;
  double peak_rss_bytes = 0.0;
  std::uint64_t events = 0;  ///< kernel events executed by one run
  int reps = 0;
};

struct CellBaseline {
  std::string name;
  std::map<std::string, std::string> config;
  std::string digest;  ///< RunDigest::total().hex()
  std::uint64_t event_count = 0;
  std::map<std::string, std::string> sub_digests;  ///< entity -> hex
  std::uint64_t checkpoint_interval = 0;           ///< final (post-compaction)
  std::vector<std::pair<std::uint64_t, std::string>> checkpoints;  ///< (index, hex)
  CellPerf perf;
};

struct Baseline {
  std::string git;
  int warmup = 0;
  int reps = 0;
  std::vector<CellBaseline> cells;  ///< serialized sorted by name

  [[nodiscard]] const CellBaseline* find(const std::string& name) const;
};

[[nodiscard]] std::string baseline_json(const Baseline& baseline);

/// Writes baseline_json() to `path`; throws std::runtime_error on I/O error.
void write_baseline(const std::string& path, const Baseline& baseline);

/// Parses `text` as pmsb.baseline/1. `origin` names the source in error
/// messages. Throws std::runtime_error on malformed JSON, a wrong schema
/// string, or a document shape drift.
[[nodiscard]] Baseline parse_baseline(const std::string& text,
                                      const std::string& origin);

/// Reads and parses the baseline at `path`.
[[nodiscard]] Baseline read_baseline(const std::string& path);

}  // namespace pmsb::regress
