#include "regress/bench_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "regress/baseline.hpp"
#include "sweep/scenario_run.hpp"
#include "telemetry/process_stats.hpp"

namespace pmsb::regress {

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double mad(const std::vector<double>& v, double med) {
  if (v.empty()) return 0.0;
  std::vector<double> dev;
  dev.reserve(v.size());
  for (const double x : v) dev.push_back(std::fabs(x - med));
  return median(std::move(dev));
}

void Measurement::finalize() {
  wall_s_median = median(wall_s);
  wall_s_mad = mad(wall_s, wall_s_median);
  events_per_s_median = median(events_per_s);
  events_per_s_mad = mad(events_per_s, events_per_s_median);
}

CellPerf Measurement::to_cell_perf() const {
  CellPerf p;
  p.wall_s_median = wall_s_median;
  p.wall_s_mad = wall_s_mad;
  p.events_per_s_median = events_per_s_median;
  p.events_per_s_mad = events_per_s_mad;
  p.peak_rss_bytes = peak_rss_bytes;
  p.events = events;
  p.reps = static_cast<int>(wall_s.size());
  return p;
}

Measurement measure_scenario(const experiments::Options& opts,
                             const BenchConfig& config) {
  sweep::SweepPoint point;
  point.opts = opts;

  Measurement m;
  const int total = std::max(0, config.warmup) + std::max(1, config.reps);
  for (int rep = 0; rep < total; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    sweep::RunRecord rec = sweep::run_scenario(point, /*quiet=*/true);
    const auto t1 = std::chrono::steady_clock::now();
    if (!rec.ok) {
      // run_scenario throws on scenario errors; ok=false here would mean a
      // contract change upstream — surface it loudly.
      throw std::runtime_error("measure_scenario: run not ok: " + rec.error);
    }
    if (rep < std::max(0, config.warmup)) continue;
    const double wall =
        std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0).count();
    std::uint64_t events = 0;
    const auto it = rec.results.find("sim.events_executed");
    if (it != rec.results.end()) events = static_cast<std::uint64_t>(it->second);
    m.events = events;
    m.wall_s.push_back(wall);
    m.events_per_s.push_back(wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
  }
  m.peak_rss_bytes = static_cast<double>(telemetry::peak_rss_bytes());
  m.finalize();
  return m;
}

PerfVerdict compare_perf(const CellPerf& base, const Measurement& cur,
                         double rel_tolerance, double mad_multiplier) {
  PerfVerdict v;
  if (base.reps == 0) {
    v.detail = "baseline has no perf sample; comparison skipped";
    return v;
  }
  const double base_eps = base.events_per_s_median;
  const double cur_eps = cur.events_per_s_median;
  v.ratio = base_eps > 0.0 ? cur_eps / base_eps : 1.0;
  const double allowance = std::max(rel_tolerance * base_eps,
                                    mad_multiplier * (base.events_per_s_mad +
                                                      cur.events_per_s_mad));
  const double shortfall = base_eps - cur_eps;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "events/s %.3g -> %.3g (ratio %.3f, allowance %.3g)", base_eps,
                cur_eps, v.ratio, allowance);
  v.detail = buf;
  if (shortfall > allowance) {
    v.ok = false;
    v.detail += " — REGRESSION beyond tolerance";
  }
  return v;
}

}  // namespace pmsb::regress
