// The pinned scenario matrix the regression plane records and checks.
//
// Cells are chosen to be FAST (the whole matrix runs in seconds) while still
// crossing the subsystems that matter for determinism: both topologies, DCTCP
// and the per-queue/TCN marking variants, enqueue vs dequeue marking, an SP
// scheduler, and a fault-plane (bleach) cell so the digest covers the fault
// path too. Names are stable identifiers — baselines key cells by name, so
// renaming a cell orphans its baseline entry.
#pragma once

#include <string>
#include <vector>

#include "experiments/options.hpp"

namespace pmsb::regress {

struct RegressCell {
  std::string name;
  experiments::Options opts;
};

/// The default matrix (see header comment). Deterministic order.
[[nodiscard]] std::vector<RegressCell> default_matrix();

/// Subset of the default matrix by comma-separated cell names; empty `names`
/// returns the full matrix. Throws std::invalid_argument on unknown names.
[[nodiscard]] std::vector<RegressCell> select_cells(const std::string& names);

}  // namespace pmsb::regress
