// Machine-readable bench reports, schema `pmsb.bench/1`.
//
// Both hand-rolled benches (bench_micro_engine, the Fig.16-21 FCT grid) and
// the regression plane emit this shape, so CI can upload one artifact format
// (`BENCH_engine.json`, `BENCH_fct_grid.json`) and trend it across PRs:
//
//   {
//     "schema": "pmsb.bench/1", "tool": "...", "git": "...", "scale": "...",
//     "peak_rss_bytes": R,
//     "benchmarks": [
//       {"name": "...", "reps": M, "wall_s_median": W, "wall_s_mad": D,
//        "events": N, "events_per_s_median": E, "events_per_s_mad": F}
//     ]
//   }
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pmsb::regress {

struct BenchRecord {
  std::string name;
  int reps = 0;
  double wall_s_median = 0.0;
  double wall_s_mad = 0.0;
  std::uint64_t events = 0;  ///< work units of ONE rep (kernel events, flows, ...)
  double events_per_s_median = 0.0;
  double events_per_s_mad = 0.0;
};

struct BenchReport {
  std::string tool;
  std::string scale;  ///< "full" | "quick" (PMSB_BENCH_SCALE)
  std::vector<BenchRecord> benchmarks;
};

/// Builds a BenchRecord from per-rep wall-clock samples of a workload that
/// executes `events` units per rep.
[[nodiscard]] BenchRecord make_bench_record(const std::string& name,
                                            const std::vector<double>& wall_s,
                                            std::uint64_t events);

[[nodiscard]] std::string bench_report_json(const BenchReport& report);

/// When the PMSB_BENCH_JSON environment variable names a path, writes
/// bench_report_json() there and returns true. Returns false (and does
/// nothing) when the variable is unset or empty.
bool maybe_write_bench_json(const BenchReport& report);

}  // namespace pmsb::regress
