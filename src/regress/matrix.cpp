#include "regress/matrix.hpp"

#include <initializer_list>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace pmsb::regress {

namespace {

RegressCell cell(std::string name,
                 std::initializer_list<std::pair<const char*, const char*>> kv) {
  RegressCell c;
  c.name = std::move(name);
  for (const auto& [k, v] : kv) c.opts.set(k, v);
  return c;
}

}  // namespace

std::vector<RegressCell> default_matrix() {
  std::vector<RegressCell> cells;
  cells.push_back(cell("dumbbell-pmsb-dwrr",
                       {{"topology", "dumbbell"},
                        {"scheme", "pmsb"},
                        {"scheduler", "dwrr"},
                        {"queues", "2"},
                        {"flows_per_queue", "1,4"},
                        {"duration_ms", "20"},
                        {"seed", "1"}}));
  cells.push_back(cell("dumbbell-tcn-wfq-deq",
                       {{"topology", "dumbbell"},
                        {"scheme", "tcn"},
                        {"scheduler", "wfq"},
                        {"mark_point", "dequeue"},
                        {"queues", "2"},
                        {"flows_per_queue", "2,2"},
                        {"duration_ms", "20"},
                        {"seed", "2"}}));
  cells.push_back(cell("dumbbell-perqueue-sp",
                       {{"topology", "dumbbell"},
                        {"scheme", "perqueue-std"},
                        {"scheduler", "sp"},
                        {"queues", "2"},
                        {"flows_per_queue", "1,1"},
                        {"duration_ms", "20"},
                        {"seed", "1"}}));
  cells.push_back(cell("dumbbell-pmsb-bleach",
                       {{"topology", "dumbbell"},
                        {"scheme", "pmsb"},
                        {"scheduler", "dwrr"},
                        {"queues", "2"},
                        {"flows_per_queue", "2,2"},
                        {"bleach", "0.5"},
                        {"duration_ms", "20"},
                        {"seed", "3"}}));
  cells.push_back(cell("leafspine-pmsb-low",
                       {{"topology", "leafspine"},
                        {"scheme", "pmsb"},
                        {"scheduler", "dwrr"},
                        {"flows", "80"},
                        {"load", "0.3"},
                        {"seed", "7"}}));
  cells.push_back(cell("leafspine-mqecn",
                       {{"topology", "leafspine"},
                        {"scheme", "mqecn"},
                        {"scheduler", "dwrr"},
                        {"flows", "60"},
                        {"load", "0.5"},
                        {"seed", "3"}}));
  return cells;
}

std::vector<RegressCell> select_cells(const std::string& names) {
  std::vector<RegressCell> all = default_matrix();
  if (names.empty()) return all;

  std::set<std::string> want;
  std::stringstream ss(names);
  std::string tok;
  while (std::getline(ss, tok, ',')) {
    if (!tok.empty()) want.insert(tok);
  }
  std::vector<RegressCell> out;
  for (RegressCell& c : all) {
    if (want.erase(c.name)) out.push_back(std::move(c));
  }
  if (!want.empty()) {
    throw std::invalid_argument("unknown regression cell '" + *want.begin() + "'");
  }
  return out;
}

}  // namespace pmsb::regress
