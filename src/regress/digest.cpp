#include "regress/digest.hpp"

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace pmsb::regress {

namespace {

// FNV 128-bit prime: 2^88 + 2^8 + 0x3b.
constexpr std::uint64_t kPrimeHi = 0x0000000001000000ull;
constexpr std::uint64_t kPrimeLo = 0x000000000000013bull;

/// 64x64 -> high 64 bits, via 32-bit halves (portable).
std::uint64_t mul_hi64(std::uint64_t x, std::uint64_t y) {
  const std::uint64_t a = x >> 32, b = x & 0xffffffffull;
  const std::uint64_t c = y >> 32, d = y & 0xffffffffull;
  const std::uint64_t bd = b * d;
  const std::uint64_t ad = a * d;
  const std::uint64_t bc = b * c;
  const std::uint64_t mid = (bd >> 32) + (ad & 0xffffffffull) + (bc & 0xffffffffull);
  return a * c + (ad >> 32) + (bc >> 32) + (mid >> 32);
}

}  // namespace

void Hash128::multiply_prime() {
  // (hi:lo) * (kPrimeHi:kPrimeLo) mod 2^128:
  //   low limb  = lo * kPrimeLo
  //   high limb = hi * kPrimeLo + lo * kPrimeHi + carry(lo * kPrimeLo)
  const std::uint64_t new_hi =
      hi_ * kPrimeLo + lo_ * kPrimeHi + mul_hi64(lo_, kPrimeLo);
  lo_ = lo_ * kPrimeLo;
  hi_ = new_hi;
}

void Hash128::update_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) update_byte(p[i]);
}

std::string Hash128::hex() const {
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(hi_),
                static_cast<unsigned long long>(lo_));
  return buf;
}

std::uint64_t fnv1a64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x00000100000001b3ull;
  }
  return h;
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kMark: return "mark";
    case EventKind::kDrop: return "drop";
    case EventKind::kSend: return "send";
    case EventKind::kAck: return "ack";
    case EventKind::kStat: return "stat";
  }
  return "?";
}

RunDigest::RunDigest(std::uint64_t checkpoint_interval)
    : interval_(checkpoint_interval == 0 ? kDefaultInterval : checkpoint_interval) {}

EntityId RunDigest::register_entity(const std::string& name) {
  for (const Entity& e : entities_) {
    if (e.name == name) {
      throw std::invalid_argument("RunDigest: duplicate entity '" + name + "'");
    }
  }
  entities_.push_back({name, Hash128{}});
  return static_cast<EntityId>(entities_.size() - 1);
}

void RunDigest::stat_f(EntityId entity, const std::string& key, double value) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  event(entity, EventKind::kStat, 0, fnv1a64(key), bits);
}

void RunDigest::arm_journal(std::uint64_t lo, std::uint64_t hi, std::size_t cap) {
  journal_lo_ = lo;
  journal_hi_ = hi;
  journal_cap_ = cap;
  journal_.clear();
}

void RunDigest::take_checkpoint() {
  checkpoints_.push_back({count_, stream_});
  // Compaction keeps memory bounded on arbitrarily long runs while staying a
  // pure function of the event stream: once full, drop every other entry and
  // double the interval — surviving indices are exactly the multiples of the
  // new interval.
  constexpr std::size_t kMaxCheckpoints = 4096;
  if (checkpoints_.size() >= kMaxCheckpoints) {
    std::vector<Checkpoint> kept;
    kept.reserve(checkpoints_.size() / 2 + 1);
    for (std::size_t i = 1; i < checkpoints_.size(); i += 2) {
      kept.push_back(checkpoints_[i]);
    }
    checkpoints_ = std::move(kept);
    interval_ *= 2;
  }
}

Hash128 RunDigest::total() const {
  Hash128 t = stream_;
  t.update_u64(count_);
  // Sub-digests fold in name order, so two runs that registered entities in
  // different orders (but produced the same per-entity streams) still agree.
  const auto subs = sub_digest_hex();
  for (const auto& [name, hex] : subs) {
    t.update_string(name);
    t.update_string(hex);
  }
  return t;
}

std::map<std::string, std::string> RunDigest::sub_digest_hex() const {
  std::map<std::string, std::string> out;
  for (const Entity& e : entities_) out[e.name] = e.hash.hex();
  return out;
}

}  // namespace pmsb::regress
