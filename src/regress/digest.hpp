// Deterministic run digests for the regression plane.
//
// A RunDigest consumes the canonical event stream of one simulation run —
// enqueue/dequeue/mark/drop at switch ports, send on links and transports,
// ack at senders, plus final per-entity stats — and folds it into an
// order-sensitive streaming 128-bit hash (FNV-1a with the 128-bit prime,
// implemented in-repo on 64-bit limbs; no dependencies). Two runs of the
// same scenario + seed must produce byte-identical digests; any behavioral
// divergence, however small, flips the hash.
//
// Localization: every event also folds into a per-entity sub-digest (one
// per port, per link, per flow), so a mismatch names the entity that
// diverged instead of "something differs". Periodic checkpoints of the
// stream hash (with deterministic compaction, so memory stays bounded on
// long runs) bracket WHERE in the event stream the first divergence lies;
// the divergence finder then re-runs the cell with a windowed journal armed
// and reports the first event inside that window (time, entity, kind).
//
// Cost contract: components hold a RunDigest* that defaults to null — the
// hot path pays exactly one predictable branch when digests are off (the
// same idiom as Port::set_tracer).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmsb::regress {

/// Streaming FNV-1a 128-bit hash on two 64-bit limbs (portable: no
/// __int128). hash = (hash XOR byte) * kPrime per byte, mod 2^128.
class Hash128 {
 public:
  void update_byte(std::uint8_t b) {
    lo_ ^= b;
    multiply_prime();
  }

  /// Folds a 64-bit word in little-endian byte order.
  void update_u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      update_byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  void update_bytes(const void* data, std::size_t n);
  void update_string(const std::string& s) { update_bytes(s.data(), s.size()); }

  [[nodiscard]] std::uint64_t hi() const { return hi_; }
  [[nodiscard]] std::uint64_t lo() const { return lo_; }
  /// 32 lowercase hex characters (hi then lo).
  [[nodiscard]] std::string hex() const;

  friend bool operator==(const Hash128& a, const Hash128& b) {
    return a.hi_ == b.hi_ && a.lo_ == b.lo_;
  }
  friend bool operator!=(const Hash128& a, const Hash128& b) { return !(a == b); }

 private:
  void multiply_prime();

  // FNV-1a 128 offset basis.
  std::uint64_t hi_ = 0x6c62272e07bb0142ull;
  std::uint64_t lo_ = 0x62b821756295c58dull;
};

/// 64-bit FNV-1a over a string — used to fold stat KEYS into the event
/// stream as a single word.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& s);

/// Canonical event kinds the digest recognizes. The numeric values are part
/// of the digest definition — append, never renumber.
enum class EventKind : std::uint8_t {
  kEnqueue = 0,
  kDequeue = 1,
  kMark = 2,
  kDrop = 3,
  kSend = 4,
  kAck = 5,
  kStat = 6,
};

[[nodiscard]] const char* event_kind_name(EventKind kind);

/// Index of a registered entity (port, link, flow) inside one RunDigest.
using EntityId = std::uint32_t;

class RunDigest {
 public:
  /// A stream-hash checkpoint taken after `index` events.
  struct Checkpoint {
    std::uint64_t index = 0;
    Hash128 hash;
  };

  /// One journaled event (only recorded inside an armed window).
  struct JournalRecord {
    std::uint64_t index = 0;   ///< 0-based position in the event stream
    std::int64_t time = 0;     ///< simulated time (ns)
    EntityId entity = 0;
    EventKind kind = EventKind::kEnqueue;
    std::uint64_t a = 0;
    std::uint64_t b = 0;
  };

  /// `checkpoint_interval` events between stream-hash checkpoints. When the
  /// checkpoint vector would exceed a fixed cap, every other entry is
  /// dropped and the interval doubles — deterministic for a given stream.
  explicit RunDigest(std::uint64_t checkpoint_interval = kDefaultInterval);

  /// Interns `name` and returns its id. Names must be unique per digest.
  EntityId register_entity(const std::string& name);

  /// Folds one event. Hot path: inlined, no allocation outside checkpoint /
  /// journal maintenance.
  void event(EntityId entity, EventKind kind, std::int64_t time, std::uint64_t a,
             std::uint64_t b) {
    const std::uint64_t words[4] = {
        static_cast<std::uint64_t>(kind), static_cast<std::uint64_t>(time), a, b};
    stream_.update_u64(entity);
    Hash128& sub = entities_[entity].hash;
    for (const std::uint64_t w : words) {
      stream_.update_u64(w);
      sub.update_u64(w);
    }
    const std::uint64_t index = count_++;
    if (journal_cap_ != 0 && index >= journal_lo_ && index < journal_hi_ &&
        journal_.size() < journal_cap_) {
      journal_.push_back({index, time, entity, kind, a, b});
    }
    if (++since_checkpoint_ == interval_) {
      since_checkpoint_ = 0;
      take_checkpoint();
    }
  }

  /// Folds a final per-entity statistic as a kStat event (time 0, a = the
  /// FNV-64 of the key, b = the value). Feed these AFTER the run so the two
  /// sides of a comparison agree on stream position.
  void stat(EntityId entity, const std::string& key, std::uint64_t value) {
    event(entity, EventKind::kStat, 0, fnv1a64(key), value);
  }
  void stat_f(EntityId entity, const std::string& key, double value);

  /// Records raw events with stream index in [lo, hi) — at most `cap` of
  /// them — for divergence localization. Arm before the run starts.
  void arm_journal(std::uint64_t lo, std::uint64_t hi, std::size_t cap = 1 << 16);

  /// The combined digest: stream hash + event count + every sub-digest in
  /// entity-name order (so registration order cannot matter).
  [[nodiscard]] Hash128 total() const;

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] const Hash128& stream() const { return stream_; }
  [[nodiscard]] std::uint64_t checkpoint_interval() const { return interval_; }
  [[nodiscard]] const std::vector<Checkpoint>& checkpoints() const {
    return checkpoints_;
  }
  [[nodiscard]] const std::vector<JournalRecord>& journal() const { return journal_; }

  [[nodiscard]] std::size_t num_entities() const { return entities_.size(); }
  [[nodiscard]] const std::string& entity_name(EntityId id) const {
    return entities_.at(id).name;
  }
  [[nodiscard]] const Hash128& sub_digest(EntityId id) const {
    return entities_.at(id).hash;
  }
  /// Entity name -> sub-digest hex, for baselines and mismatch reports.
  [[nodiscard]] std::map<std::string, std::string> sub_digest_hex() const;

  static constexpr std::uint64_t kDefaultInterval = 1024;

 private:
  struct Entity {
    std::string name;
    Hash128 hash;
  };

  void take_checkpoint();

  Hash128 stream_;
  std::uint64_t count_ = 0;
  std::vector<Entity> entities_;

  std::uint64_t interval_;
  std::uint64_t since_checkpoint_ = 0;
  std::vector<Checkpoint> checkpoints_;

  std::uint64_t journal_lo_ = 0;
  std::uint64_t journal_hi_ = 0;
  std::size_t journal_cap_ = 0;
  std::vector<JournalRecord> journal_;
};

}  // namespace pmsb::regress
