// Divergence localization for digest mismatches.
//
// When a cell's total digest differs from its baseline, find_divergence()
// (1) names the entities whose sub-digests drifted, (2) brackets the first
// diverging stream position by comparing the baseline's checkpoint ladder
// against the current run's, and (3) re-runs the cell once with a windowed
// journal armed over that bracket, reporting the first journaled event whose
// entity is in the diverged set — time, entity, event kind, payload.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "regress/digest.hpp"

namespace pmsb::regress {

struct CellBaseline;

struct DivergenceReport {
  bool diverged = false;

  /// The checkpoint bracket [window_lo, window_hi) in stream indices.
  std::uint64_t window_lo = 0;
  std::uint64_t window_hi = 0;
  std::uint64_t base_events = 0;
  std::uint64_t cur_events = 0;

  /// Entity names whose sub-digest differs (sorted). Also lists entities
  /// present on only one side.
  std::vector<std::string> entities;

  /// True when the re-run journal pinpointed a concrete first event.
  bool event_located = false;
  RunDigest::JournalRecord first_event;
  std::string first_entity_name;

  /// Multi-line human-readable report ("" when !diverged).
  [[nodiscard]] std::string summary() const;
};

/// Compares `current` against `base`; on mismatch calls `rerun` with a fresh
/// journal-armed RunDigest (the caller re-executes the cell feeding it) to
/// locate the first diverging event. `rerun` may be a no-op for diff-only
/// callers — the report then carries the window and entity set without a
/// pinpointed event.
[[nodiscard]] DivergenceReport find_divergence(
    const CellBaseline& base, const RunDigest& current,
    const std::function<void(RunDigest&)>& rerun);

}  // namespace pmsb::regress
