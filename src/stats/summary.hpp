// Order statistics over a sample set: mean, percentiles, min/max.
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

namespace pmsb::stats {

class Summary {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }

  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const {
    if (samples_.empty()) return 0.0;
    return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
           static_cast<double>(samples_.size());
  }

  /// p in [0, 100]; nearest-rank with linear interpolation.
  [[nodiscard]] double percentile(double p) const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    if (samples_.size() == 1) return samples_[0];
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const auto hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
  }

  [[nodiscard]] double min() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return samples_.front();
  }

  [[nodiscard]] double max() const {
    if (samples_.empty()) return 0.0;
    ensure_sorted();
    return samples_.back();
  }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace pmsb::stats
