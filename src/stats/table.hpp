// Fixed-width console tables for the benchmark harnesses, so every bench
// prints paper-style rows that are easy to eyeball and to grep.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace pmsb::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }

  void print(std::FILE* out = stdout) const {
    print_row(out, headers_);
    std::string rule;
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      rule += std::string(static_cast<std::size_t>(width_), '-');
      rule += (i + 1 < headers_.size()) ? "-+-" : "";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(out, row);
  }

 private:
  void print_row(std::FILE* out, const std::vector<std::string>& cells) const {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      char buf[128];
      std::snprintf(buf, sizeof(buf), "%-*s", width_, cells[i].c_str());
      line += buf;
      line += (i + 1 < cells.size()) ? " | " : "";
    }
    std::fprintf(out, "%s\n", line.c_str());
  }

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

}  // namespace pmsb::stats
