// Periodic throughput sampling.
//
// ThroughputMeter polls a byte counter (e.g. DctcpSender::bytes_acked or a
// queue's served bytes) on a fixed interval and records per-interval rates,
// producing the throughput-vs-time series of the paper's Figs. 3, 8, 13-15.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace pmsb::stats {

class ThroughputMeter {
 public:
  struct Sample {
    sim::TimeNs time = 0;   ///< end of the interval
    double gbps = 0.0;
  };

  /// Starts sampling `byte_counter` every `interval` from `start`.
  ThroughputMeter(sim::Simulator& simulator, std::function<std::uint64_t()> byte_counter,
                  sim::TimeNs interval, std::string label = {})
      : sim_(simulator),
        counter_(std::move(byte_counter)),
        interval_(interval),
        label_(std::move(label)) {
    last_bytes_ = counter_();
    schedule_next();
  }

  ThroughputMeter(const ThroughputMeter&) = delete;
  ThroughputMeter& operator=(const ThroughputMeter&) = delete;

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] const std::string& label() const { return label_; }

  /// Mean rate over the samples in [from, to] (Gbps).
  [[nodiscard]] double mean_gbps(sim::TimeNs from = 0,
                                 sim::TimeNs to = sim::kTimeNever) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
      if (s.time < from || s.time > to) continue;
      sum += s.gbps;
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

 private:
  void schedule_next() {
    sim_.schedule_in(interval_, [this] {
      const std::uint64_t bytes = counter_();
      const double gbps =
          static_cast<double>(bytes - last_bytes_) * 8.0 / static_cast<double>(interval_);
      last_bytes_ = bytes;
      samples_.push_back({sim_.now(), gbps});
      schedule_next();
    });
  }

  sim::Simulator& sim_;
  std::function<std::uint64_t()> counter_;
  sim::TimeNs interval_;
  std::string label_;
  std::uint64_t last_bytes_ = 0;
  std::vector<Sample> samples_;
};

}  // namespace pmsb::stats
