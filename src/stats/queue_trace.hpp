// Periodic buffer-occupancy tracing for the paper's Figs. 4, 5, 11, 12.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.hpp"

namespace pmsb::stats {

class QueueTracer {
 public:
  struct Sample {
    sim::TimeNs time = 0;
    std::uint64_t bytes = 0;
  };

  /// Samples `occupancy_bytes` every `interval`.
  QueueTracer(sim::Simulator& simulator, std::function<std::uint64_t()> occupancy_bytes,
              sim::TimeNs interval)
      : sim_(simulator), occupancy_(std::move(occupancy_bytes)), interval_(interval) {
    schedule_next();
  }

  QueueTracer(const QueueTracer&) = delete;
  QueueTracer& operator=(const QueueTracer&) = delete;

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }

  [[nodiscard]] std::uint64_t peak_bytes() const {
    std::uint64_t peak = 0;
    for (const auto& s : samples_) peak = std::max(peak, s.bytes);
    return peak;
  }

  /// Mean occupancy over [from, to].
  [[nodiscard]] double mean_bytes(sim::TimeNs from = 0,
                                  sim::TimeNs to = sim::kTimeNever) const {
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& s : samples_) {
      if (s.time < from || s.time > to) continue;
      sum += static_cast<double>(s.bytes);
      ++n;
    }
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  }

 private:
  void schedule_next() {
    sim_.schedule_in(interval_, [this] {
      samples_.push_back({sim_.now(), occupancy_()});
      schedule_next();
    });
  }

  sim::Simulator& sim_;
  std::function<std::uint64_t()> occupancy_;
  sim::TimeNs interval_;
  std::vector<Sample> samples_;
};

}  // namespace pmsb::stats
