// CSV export of measurement series so results can be re-plotted outside
// the simulator (gnuplot / matplotlib / spreadsheets).
#pragma once

#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "stats/fct.hpp"
#include "stats/queue_trace.hpp"
#include "stats/throughput.hpp"

namespace pmsb::stats {

class CsvWriter {
 public:
  explicit CsvWriter(const std::string& path) : out_(path) {
    if (!out_) throw std::runtime_error("CsvWriter: cannot open " + path);
  }

  void row(const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      out_ << escape(cells[i]);
      if (i + 1 < cells.size()) out_ << ',';
    }
    out_ << '\n';
  }

 private:
  static std::string escape(const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  }

  std::ofstream out_;
};

/// One row per completed flow. `pattern` names the workload family that
/// produced the flow; `deadline_us`/`deadline_met` are empty for flows with
/// no deadline, and `group`/`stage` are empty for flows outside any
/// coflow/RPC group — so coflow and RPC results stay analyzable offline.
inline void write_fct_csv(const std::string& path, const FctCollector& fct) {
  CsvWriter csv(path);
  csv.row({"flow", "bytes", "bin", "start_us", "fct_us", "service", "pattern",
           "deadline_us", "deadline_met", "group", "stage"});
  for (const auto& r : fct.records()) {
    csv.row({std::to_string(r.flow), std::to_string(r.bytes),
             size_bin_name(size_bin(r.bytes)),
             std::to_string(sim::to_microseconds(r.start)),
             std::to_string(sim::to_microseconds(r.fct)),
             std::to_string(static_cast<int>(r.service)), pattern_tag_name(r.pattern),
             r.deadline == 0 ? "" : std::to_string(sim::to_microseconds(r.deadline)),
             r.deadline == 0 ? "" : (r.deadline_met ? "1" : "0"),
             r.group == kNoGroupId ? "" : std::to_string(r.group),
             r.group == kNoGroupId ? "" : std::to_string(r.stage)});
  }
}

/// One row per occupancy sample: time_us, bytes.
inline void write_trace_csv(const std::string& path, const QueueTracer& tracer) {
  CsvWriter csv(path);
  csv.row({"time_us", "bytes"});
  for (const auto& s : tracer.samples()) {
    csv.row({std::to_string(sim::to_microseconds(s.time)), std::to_string(s.bytes)});
  }
}

/// One row per throughput sample: time_us, gbps.
inline void write_throughput_csv(const std::string& path, const ThroughputMeter& meter) {
  CsvWriter csv(path);
  csv.row({"time_us", "gbps"});
  for (const auto& s : meter.samples()) {
    csv.row({std::to_string(sim::to_microseconds(s.time)), std::to_string(s.gbps)});
  }
}

}  // namespace pmsb::stats
