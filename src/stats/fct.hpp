// Flow-completion-time collection with the paper's size bins.
//
// §VI.B: small flows are < 100 KB, large flows are > 10 MB; everything in
// between is "medium" (whose trends the paper folds into the overall
// average).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace pmsb::stats {

enum class SizeBin { kSmall, kMedium, kLarge };

inline constexpr std::uint64_t kSmallFlowMaxBytes = 100 * 1000;       // 100 KB
inline constexpr std::uint64_t kLargeFlowMinBytes = 10 * 1000 * 1000;  // 10 MB

[[nodiscard]] constexpr SizeBin size_bin(std::uint64_t bytes) {
  if (bytes < kSmallFlowMaxBytes) return SizeBin::kSmall;
  if (bytes > kLargeFlowMinBytes) return SizeBin::kLarge;
  return SizeBin::kMedium;
}

[[nodiscard]] inline const char* size_bin_name(SizeBin bin) {
  switch (bin) {
    case SizeBin::kSmall: return "small";
    case SizeBin::kMedium: return "medium";
    case SizeBin::kLarge: return "large";
  }
  return "?";
}

struct FctRecord {
  net::FlowId flow = 0;
  std::uint64_t bytes = 0;
  sim::TimeNs start = 0;
  sim::TimeNs fct = 0;
  net::ServiceId service = 0;
};

class FctCollector {
 public:
  void record(const FctRecord& rec) { records_.push_back(rec); }

  [[nodiscard]] std::size_t count() const { return records_.size(); }
  [[nodiscard]] const std::vector<FctRecord>& records() const { return records_; }

  /// FCTs (in microseconds) for one bin; pass std::nullopt-like "all" via
  /// `overall`.
  [[nodiscard]] Summary fct_us(SizeBin bin) const {
    Summary s;
    for (const auto& r : records_) {
      if (size_bin(r.bytes) == bin) s.add(sim::to_microseconds(r.fct));
    }
    return s;
  }

  [[nodiscard]] Summary overall_fct_us() const {
    Summary s;
    for (const auto& r : records_) s.add(sim::to_microseconds(r.fct));
    return s;
  }

  /// The ideal (un-contended) FCT of a flow: one base RTT plus wire
  /// serialization of the payload (with header inflation) at line rate.
  [[nodiscard]] static sim::TimeNs ideal_fct(std::uint64_t bytes, sim::RateBps rate,
                                             sim::TimeNs base_rtt,
                                             std::uint32_t mss = sim::kDefaultMssBytes) {
    const std::uint64_t segments = (bytes + mss - 1) / std::max<std::uint32_t>(mss, 1);
    const std::uint64_t wire_bytes = bytes + segments * sim::kHeaderBytes;
    return base_rtt + sim::serialization_delay(wire_bytes, rate);
  }

  /// FCT slowdown (measured / ideal) per size bin — the normalised metric
  /// common in the FCT literature; 1.0 = the flow ran as if alone.
  [[nodiscard]] Summary slowdown(SizeBin bin, sim::RateBps rate,
                                 sim::TimeNs base_rtt) const {
    Summary s;
    for (const auto& r : records_) {
      if (size_bin(r.bytes) != bin) continue;
      const auto ideal = ideal_fct(r.bytes, rate, base_rtt);
      s.add(static_cast<double>(r.fct) / static_cast<double>(ideal));
    }
    return s;
  }

 private:
  std::vector<FctRecord> records_;
};

}  // namespace pmsb::stats
