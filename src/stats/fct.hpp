// Flow-completion-time collection with the paper's size bins.
//
// §VI.B: small flows are < 100 KB, large flows are > 10 MB; everything in
// between is "medium" (whose trends the paper folds into the overall
// average).
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"
#include "stats/summary.hpp"

namespace pmsb::stats {

/// Which workload family produced a flow. Defined in the base stats layer so
/// per-flow records can carry it without a stats -> workload dependency; the
/// workload generators set it, the FCT CSV and sweep reports consume it.
enum class PatternTag : std::uint8_t {
  kPoisson,
  kTrace,
  kCoflow,
  kRpc,
  kPermutation,
  kIncast,
  kAllToAll,
};

[[nodiscard]] inline const char* pattern_tag_name(PatternTag tag) {
  switch (tag) {
    case PatternTag::kPoisson: return "poisson";
    case PatternTag::kTrace: return "trace";
    case PatternTag::kCoflow: return "coflow";
    case PatternTag::kRpc: return "rpc";
    case PatternTag::kPermutation: return "permutation";
    case PatternTag::kIncast: return "incast";
    case PatternTag::kAllToAll: return "all_to_all";
  }
  return "?";
}

/// Inverse of pattern_tag_name(); returns false on an unknown name.
[[nodiscard]] inline bool parse_pattern_tag(const std::string& name, PatternTag* out) {
  for (PatternTag tag :
       {PatternTag::kPoisson, PatternTag::kTrace, PatternTag::kCoflow, PatternTag::kRpc,
        PatternTag::kPermutation, PatternTag::kIncast, PatternTag::kAllToAll}) {
    if (name == pattern_tag_name(tag)) {
      *out = tag;
      return true;
    }
  }
  return false;
}

/// Sentinel group id for flows that belong to no coflow/RPC group.
inline constexpr std::uint32_t kNoGroupId = 0xffffffffu;

enum class SizeBin { kSmall, kMedium, kLarge };

inline constexpr std::uint64_t kSmallFlowMaxBytes = 100 * 1000;       // 100 KB
inline constexpr std::uint64_t kLargeFlowMinBytes = 10 * 1000 * 1000;  // 10 MB

[[nodiscard]] constexpr SizeBin size_bin(std::uint64_t bytes) {
  if (bytes < kSmallFlowMaxBytes) return SizeBin::kSmall;
  if (bytes > kLargeFlowMinBytes) return SizeBin::kLarge;
  return SizeBin::kMedium;
}

[[nodiscard]] inline const char* size_bin_name(SizeBin bin) {
  switch (bin) {
    case SizeBin::kSmall: return "small";
    case SizeBin::kMedium: return "medium";
    case SizeBin::kLarge: return "large";
  }
  return "?";
}

struct FctRecord {
  net::FlowId flow = 0;
  std::uint64_t bytes = 0;
  sim::TimeNs start = 0;
  sim::TimeNs fct = 0;
  net::ServiceId service = 0;
  PatternTag pattern = PatternTag::kPoisson;
  sim::TimeNs deadline = 0;    ///< absolute completion deadline; 0 = none
  bool deadline_met = true;    ///< only meaningful when deadline != 0
  std::uint32_t group = kNoGroupId;  ///< coflow/RPC group; kNoGroupId = standalone
  std::uint16_t stage = 0;     ///< coflow stage (barrier index)
};

/// Deadline outcome across the flows that carried one (deadline != 0).
struct DeadlineStats {
  std::size_t total = 0;
  std::size_t missed = 0;
  [[nodiscard]] double miss_fraction() const {
    return total == 0 ? 0.0 : static_cast<double>(missed) / static_cast<double>(total);
  }
};

class FctCollector {
 public:
  void record(const FctRecord& rec) { records_.push_back(rec); }

  [[nodiscard]] std::size_t count() const { return records_.size(); }
  [[nodiscard]] const std::vector<FctRecord>& records() const { return records_; }

  /// FCTs (in microseconds) for one bin; pass std::nullopt-like "all" via
  /// `overall`.
  [[nodiscard]] Summary fct_us(SizeBin bin) const {
    Summary s;
    for (const auto& r : records_) {
      if (size_bin(r.bytes) == bin) s.add(sim::to_microseconds(r.fct));
    }
    return s;
  }

  [[nodiscard]] Summary overall_fct_us() const {
    Summary s;
    for (const auto& r : records_) s.add(sim::to_microseconds(r.fct));
    return s;
  }

  /// Deadline outcome over every completed flow that carried a deadline.
  [[nodiscard]] DeadlineStats deadline_stats() const {
    DeadlineStats ds;
    for (const auto& r : records_) {
      if (r.deadline == 0) continue;
      ++ds.total;
      if (!r.deadline_met) ++ds.missed;
    }
    return ds;
  }

  /// Coflow completion times (microseconds) over completed groups: for each
  /// group id, the span from its earliest flow start to its latest flow
  /// finish. Only groups whose every generated flow completed would be fully
  /// meaningful; a truncated run reports the span over completed flows.
  [[nodiscard]] Summary group_ct_us() const {
    struct Span {
      sim::TimeNs start;
      sim::TimeNs end;
    };
    std::map<std::uint32_t, Span> spans;
    for (const auto& r : records_) {
      if (r.group == kNoGroupId) continue;
      const sim::TimeNs end = r.start + r.fct;
      auto [it, fresh] = spans.try_emplace(r.group, Span{r.start, end});
      if (!fresh) {
        it->second.start = std::min(it->second.start, r.start);
        it->second.end = std::max(it->second.end, end);
      }
    }
    Summary s;
    for (const auto& [id, span] : spans) {
      s.add(sim::to_microseconds(span.end - span.start));
    }
    return s;
  }

  /// The ideal (un-contended) FCT of a flow: one base RTT plus wire
  /// serialization of the payload (with header inflation) at line rate.
  [[nodiscard]] static sim::TimeNs ideal_fct(std::uint64_t bytes, sim::RateBps rate,
                                             sim::TimeNs base_rtt,
                                             std::uint32_t mss = sim::kDefaultMssBytes) {
    const std::uint64_t segments = (bytes + mss - 1) / std::max<std::uint32_t>(mss, 1);
    const std::uint64_t wire_bytes = bytes + segments * sim::kHeaderBytes;
    return base_rtt + sim::serialization_delay(wire_bytes, rate);
  }

  /// FCT slowdown (measured / ideal) per size bin — the normalised metric
  /// common in the FCT literature; 1.0 = the flow ran as if alone.
  [[nodiscard]] Summary slowdown(SizeBin bin, sim::RateBps rate,
                                 sim::TimeNs base_rtt) const {
    Summary s;
    for (const auto& r : records_) {
      if (size_bin(r.bytes) != bin) continue;
      const auto ideal = ideal_fct(r.bytes, rate, base_rtt);
      s.add(static_cast<double>(r.fct) / static_cast<double>(ideal));
    }
    return s;
  }

 private:
  std::vector<FctRecord> records_;
};

}  // namespace pmsb::stats
