// NDJSON flow traces — schema pmsb.flow_trace/1.
//
// A trace lets real or synthesized production workloads drive the fabric
// (`trace_file=` at the CLI), and lets any run emit a replayable recording
// of itself (`trace_export=`): the export writes each flow's *realized*
// start time, so replaying a coflow run reproduces the barrier-released
// timing as plain timed flows, and replaying a Poisson run is bit-identical
// by digest.
//
// Format: line 1 is a header object
//   {"flows":N,"hosts":H,"schema":"pmsb.flow_trace/1"}
// followed by exactly N lines, one JSON object per flow:
//   required  src, dst, size_bytes, start_time_ns
//   optional  service, pattern, deadline_ns, group, stage
// The reader is strict in the manifest-reader tradition: unknown keys,
// wrong types, out-of-range hosts, src == dst, or a flow-count mismatch
// all fail loudly with the offending line number.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "workload/traffic_gen.hpp"

namespace pmsb::workload {

struct FlowTrace {
  std::size_t num_hosts = 0;
  std::vector<FlowSpec> flows;
};

inline constexpr const char* kFlowTraceSchema = "pmsb.flow_trace/1";

/// Serializes one flow trace (header + one line per flow). Optional fields
/// are omitted at their defaults (no deadline, no group). Throws
/// std::runtime_error when the file cannot be written.
void write_flow_trace(const std::string& path, std::size_t num_hosts,
                      const std::vector<FlowSpec>& flows);

/// Parses and validates a pmsb.flow_trace/1 file. Throws std::runtime_error
/// (with the line number) on any schema violation. Flows with no `pattern`
/// field are tagged stats::PatternTag::kTrace.
[[nodiscard]] FlowTrace read_flow_trace(const std::string& path);

}  // namespace pmsb::workload
