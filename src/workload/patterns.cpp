#include "workload/patterns.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace pmsb::workload {

std::vector<FlowSpec> permutation_pattern(std::size_t num_hosts, std::uint64_t bytes,
                                          sim::TimeNs start, std::uint8_t num_services,
                                          sim::Rng& rng) {
  if (num_hosts < 2) throw std::invalid_argument("permutation: need >= 2 hosts");
  std::vector<std::size_t> perm(num_hosts);
  std::iota(perm.begin(), perm.end(), 0);
  // Sattolo's algorithm yields a single cycle: a derangement by construction.
  for (std::size_t i = num_hosts - 1; i > 0; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i], perm[j]);
  }
  std::vector<FlowSpec> flows;
  flows.reserve(num_hosts);
  for (std::size_t src = 0; src < num_hosts; ++src) {
    FlowSpec spec;
    spec.src = static_cast<net::HostId>(src);
    spec.dst = static_cast<net::HostId>(perm[src]);
    spec.service = static_cast<net::ServiceId>(src % num_services);
    spec.bytes = bytes;
    spec.start = start;
    spec.pattern = stats::PatternTag::kPermutation;
    flows.push_back(spec);
  }
  return flows;
}

std::vector<FlowSpec> incast_pattern(std::size_t num_hosts, net::HostId aggregator,
                                     std::size_t fan_in, std::uint64_t bytes,
                                     sim::TimeNs start, std::uint8_t num_services) {
  if (num_hosts < 2) throw std::invalid_argument("incast: need >= 2 hosts");
  if (aggregator >= num_hosts) throw std::invalid_argument("incast: bad aggregator");
  std::vector<FlowSpec> flows;
  flows.reserve(fan_in);
  std::size_t src = 0;
  for (std::size_t i = 0; i < fan_in; ++i) {
    while (src % num_hosts == aggregator) ++src;
    FlowSpec spec;
    spec.src = static_cast<net::HostId>(src % num_hosts);
    spec.dst = aggregator;
    spec.service = static_cast<net::ServiceId>(i % num_services);
    spec.bytes = bytes;
    spec.start = start;
    spec.pattern = stats::PatternTag::kIncast;
    flows.push_back(spec);
    ++src;
  }
  return flows;
}

std::vector<FlowSpec> all_to_all_pattern(std::size_t num_hosts, std::uint64_t bytes,
                                         sim::TimeNs start, sim::TimeNs jitter,
                                         std::uint8_t num_services, sim::Rng& rng) {
  std::vector<FlowSpec> flows;
  flows.reserve(num_hosts * (num_hosts - 1));
  std::size_t i = 0;
  for (std::size_t src = 0; src < num_hosts; ++src) {
    for (std::size_t dst = 0; dst < num_hosts; ++dst) {
      if (src == dst) continue;
      FlowSpec spec;
      spec.src = static_cast<net::HostId>(src);
      spec.dst = static_cast<net::HostId>(dst);
      spec.service = static_cast<net::ServiceId>(i++ % num_services);
      spec.bytes = bytes;
      spec.start = start + (jitter > 0 ? rng.uniform_int(0, jitter - 1) : 0);
      spec.pattern = stats::PatternTag::kAllToAll;
      flows.push_back(spec);
    }
  }
  return flows;
}

}  // namespace pmsb::workload
