// Grouped workloads: coflow/shuffle stages with barrier semantics and RPC
// fan-out with deadlines.
//
// A coflow is the Varys/Orchestra abstraction: a set of flows that share a
// semantic barrier — the job advances only when the whole set finishes, so
// the metric that matters is the coflow completion time (CCT), not any
// individual FCT. The generator here builds M mappers × R reducers shuffle
// stages; stage s+1's mappers are stage s's reducers and its flows start
// only once every stage-s flow of the group completes (GroupTracker owns
// that bookkeeping, the scenario wires it to completion callbacks).
//
// The RPC pattern is partition-aggregate with a deadline: `fanout` servers
// send their response shard to the initiator at RPC start, and every shard
// carries an absolute deadline so the D2TCP path (cfg.d2tcp_enabled) has
// real deadline pressure to react to. The headline result is the
// deadline-miss fraction.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::workload {

struct GroupInfo {
  std::uint32_t id = 0;
  stats::PatternTag pattern = stats::PatternTag::kCoflow;
  sim::TimeNs start = 0;     ///< group arrival; stage-0 flows start here
  sim::TimeNs deadline = 0;  ///< absolute; 0 = none
  std::uint16_t num_stages = 1;
};

/// A flow list plus optional group structure. Plain generators fill `flows`
/// only; group-aware generators also fill `groups`, and every flow of a
/// group carries (group, stage) in its spec.
struct Workload {
  std::vector<FlowSpec> flows;
  std::vector<GroupInfo> groups;
};

struct CoflowConfig {
  std::size_t num_hosts = 48;
  std::size_t num_coflows = 20;
  std::size_t num_mappers = 4;
  std::size_t num_reducers = 4;
  std::uint16_t num_stages = 1;
  /// Coflow arrivals are Poisson with this mean gap.
  double mean_interarrival_us = 1000.0;
  std::uint8_t num_services = 8;
  sim::TimeNs start_after = 0;
};

/// Generates `cfg.num_coflows` shuffle coflows; each stage is a full M×R
/// bipartite transfer with per-flow sizes from `dist`. Draws from named
/// sub-streams of `rng` ("coflow.arrival" / "coflow.size" /
/// "coflow.endpoints") without advancing it.
Workload generate_coflows(const CoflowConfig& cfg, const FlowSizeDistribution& dist,
                          sim::Rng& rng);

struct RpcConfig {
  std::size_t num_hosts = 48;
  std::size_t num_rpcs = 100;
  std::size_t fanout = 8;
  std::uint64_t response_bytes = 20'000;  ///< per responder shard
  /// Completion deadline relative to RPC start; 0 disables deadlines.
  sim::TimeNs deadline = sim::microseconds(2000);
  /// RPC arrivals are Poisson with this mean gap.
  double mean_interarrival_us = 500.0;
  std::uint8_t num_services = 8;
  sim::TimeNs start_after = 0;
};

/// Generates `cfg.num_rpcs` fan-out RPCs: a uniformly chosen initiator and
/// `fanout` distinct responders, each sending `response_bytes` back to the
/// initiator at RPC start (incast shape). Draws from named sub-streams of
/// `rng` ("rpc.arrival" / "rpc.endpoints") without advancing it.
Workload generate_rpc_fanout(const RpcConfig& cfg, sim::Rng& rng);

/// Barrier bookkeeping for grouped workloads. Pure accounting over flow
/// indices — no simulator dependency — so it is unit-testable and the
/// scenario just feeds it completion events and starts whatever it releases.
class GroupTracker {
 public:
  explicit GroupTracker(const Workload& workload);

  /// True when flow `i` must not start at its spec time: it sits behind a
  /// stage barrier (stage > 0) and is released by on_flow_complete().
  [[nodiscard]] bool deferred(std::size_t flow_index) const;

  /// Records flow `flow_index` finishing at `now`. Returns the indices of
  /// flows released by a stage barrier crossing (possibly none). When the
  /// flow's group fully completes, its completion time is recorded.
  std::vector<std::size_t> on_flow_complete(std::size_t flow_index, sim::TimeNs now);

  struct GroupResult {
    std::uint32_t id = 0;
    stats::PatternTag pattern = stats::PatternTag::kCoflow;
    sim::TimeNs start = 0;
    sim::TimeNs deadline = 0;   ///< absolute; 0 = none
    sim::TimeNs completion = 0; ///< absolute finish of the last flow
    bool complete = false;
    [[nodiscard]] sim::TimeNs ct() const { return completion - start; }
    [[nodiscard]] bool deadline_met() const {
      return deadline == 0 || (complete && completion <= deadline);
    }
  };
  [[nodiscard]] const std::vector<GroupResult>& groups() const { return results_; }
  [[nodiscard]] std::size_t groups_completed() const;

 private:
  struct Stage {
    std::vector<std::size_t> flows;
    std::size_t pending = 0;
  };
  struct Group {
    std::vector<Stage> stages;
    std::size_t pending_total = 0;
  };
  struct FlowPos {
    std::uint32_t group_slot = stats::kNoGroupId;  ///< index into groups_
    std::uint16_t stage = 0;
  };

  std::vector<Group> groups_;
  std::vector<GroupResult> results_;
  std::vector<FlowPos> flow_pos_;
};

}  // namespace pmsb::workload
