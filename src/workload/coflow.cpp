#include "workload/coflow.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

namespace pmsb::workload {

namespace {

/// Draws `count` distinct hosts, none of which appear in `exclude`.
std::vector<net::HostId> sample_distinct(std::size_t num_hosts, std::size_t count,
                                         const std::vector<net::HostId>& exclude,
                                         sim::Rng& rng) {
  std::vector<net::HostId> picked;
  picked.reserve(count);
  while (picked.size() < count) {
    const auto h = static_cast<net::HostId>(
        rng.uniform_int(0, static_cast<std::int64_t>(num_hosts) - 1));
    if (std::find(picked.begin(), picked.end(), h) != picked.end()) continue;
    if (std::find(exclude.begin(), exclude.end(), h) != exclude.end()) continue;
    picked.push_back(h);
  }
  return picked;
}

}  // namespace

Workload generate_coflows(const CoflowConfig& cfg, const FlowSizeDistribution& dist,
                          sim::Rng& rng) {
  if (cfg.num_mappers == 0 || cfg.num_reducers == 0) {
    throw std::invalid_argument("coflow: need >= 1 mapper and reducer");
  }
  if (cfg.num_stages == 0) throw std::invalid_argument("coflow: need >= 1 stage");
  // Consecutive stages need disjoint mapper/reducer sets (src != dst).
  if (cfg.num_mappers + cfg.num_reducers > cfg.num_hosts) {
    throw std::invalid_argument("coflow: mappers + reducers exceed host count");
  }

  sim::Rng arrival = rng.fork("coflow.arrival");
  sim::Rng size = rng.fork("coflow.size");
  sim::Rng endpoints = rng.fork("coflow.endpoints");

  Workload wl;
  wl.flows.reserve(cfg.num_coflows * cfg.num_stages * cfg.num_mappers *
                   cfg.num_reducers);
  double t = static_cast<double>(cfg.start_after);
  std::size_t flow_counter = 0;
  for (std::size_t c = 0; c < cfg.num_coflows; ++c) {
    t += arrival.exponential(cfg.mean_interarrival_us * 1000.0);
    GroupInfo group;
    group.id = static_cast<std::uint32_t>(c);
    group.pattern = stats::PatternTag::kCoflow;
    group.start = static_cast<sim::TimeNs>(t);
    group.num_stages = cfg.num_stages;
    wl.groups.push_back(group);

    // Stage 0 mappers; each subsequent stage's mappers are the previous
    // stage's reducers — the shuffle output feeds the next round.
    std::vector<net::HostId> mappers =
        sample_distinct(cfg.num_hosts, cfg.num_mappers, {}, endpoints);
    for (std::uint16_t s = 0; s < cfg.num_stages; ++s) {
      const std::vector<net::HostId> reducers =
          sample_distinct(cfg.num_hosts, cfg.num_reducers, mappers, endpoints);
      for (const net::HostId m : mappers) {
        for (const net::HostId r : reducers) {
          FlowSpec spec;
          spec.src = m;
          spec.dst = r;
          spec.service =
              static_cast<net::ServiceId>(flow_counter++ % cfg.num_services);
          spec.bytes = dist.sample(size);
          spec.start = group.start;  // stage > 0 realizes at the barrier
          spec.pattern = stats::PatternTag::kCoflow;
          spec.group = group.id;
          spec.stage = s;
          wl.flows.push_back(spec);
        }
      }
      mappers = reducers;
    }
  }
  return wl;
}

Workload generate_rpc_fanout(const RpcConfig& cfg, sim::Rng& rng) {
  if (cfg.fanout == 0) throw std::invalid_argument("rpc: need fanout >= 1");
  if (cfg.fanout + 1 > cfg.num_hosts) {
    throw std::invalid_argument("rpc: fanout + initiator exceed host count");
  }

  sim::Rng arrival = rng.fork("rpc.arrival");
  sim::Rng endpoints = rng.fork("rpc.endpoints");

  Workload wl;
  wl.flows.reserve(cfg.num_rpcs * cfg.fanout);
  double t = static_cast<double>(cfg.start_after);
  std::size_t flow_counter = 0;
  for (std::size_t i = 0; i < cfg.num_rpcs; ++i) {
    t += arrival.exponential(cfg.mean_interarrival_us * 1000.0);
    const auto start = static_cast<sim::TimeNs>(t);
    const auto initiator = static_cast<net::HostId>(
        endpoints.uniform_int(0, static_cast<std::int64_t>(cfg.num_hosts) - 1));
    GroupInfo group;
    group.id = static_cast<std::uint32_t>(i);
    group.pattern = stats::PatternTag::kRpc;
    group.start = start;
    group.deadline = cfg.deadline > 0 ? start + cfg.deadline : 0;
    group.num_stages = 1;
    wl.groups.push_back(group);

    const std::vector<net::HostId> responders =
        sample_distinct(cfg.num_hosts, cfg.fanout, {initiator}, endpoints);
    for (const net::HostId r : responders) {
      FlowSpec spec;
      spec.src = r;
      spec.dst = initiator;
      spec.service = static_cast<net::ServiceId>(flow_counter++ % cfg.num_services);
      spec.bytes = cfg.response_bytes;
      spec.start = start;
      spec.deadline = group.deadline;
      spec.pattern = stats::PatternTag::kRpc;
      spec.group = group.id;
      spec.stage = 0;
      wl.flows.push_back(spec);
    }
  }
  return wl;
}

GroupTracker::GroupTracker(const Workload& workload) {
  std::map<std::uint32_t, std::uint32_t> slot_of;  // group id -> groups_ index
  for (const GroupInfo& info : workload.groups) {
    if (slot_of.count(info.id) > 0) {
      throw std::invalid_argument("GroupTracker: duplicate group id " +
                                  std::to_string(info.id));
    }
    slot_of[info.id] = static_cast<std::uint32_t>(groups_.size());
    Group g;
    g.stages.resize(std::max<std::uint16_t>(info.num_stages, 1));
    groups_.push_back(std::move(g));
    GroupResult result;
    result.id = info.id;
    result.pattern = info.pattern;
    result.start = info.start;
    result.deadline = info.deadline;
    results_.push_back(result);
  }

  flow_pos_.resize(workload.flows.size());
  for (std::size_t i = 0; i < workload.flows.size(); ++i) {
    const FlowSpec& spec = workload.flows[i];
    if (spec.group == stats::kNoGroupId) continue;
    const auto it = slot_of.find(spec.group);
    if (it == slot_of.end()) {
      throw std::invalid_argument("GroupTracker: flow references unknown group " +
                                  std::to_string(spec.group));
    }
    Group& g = groups_[it->second];
    if (spec.stage >= g.stages.size()) {
      throw std::invalid_argument("GroupTracker: flow stage out of range");
    }
    g.stages[spec.stage].flows.push_back(i);
    ++g.stages[spec.stage].pending;
    ++g.pending_total;
    flow_pos_[i] = {it->second, spec.stage};
  }
}

bool GroupTracker::deferred(std::size_t flow_index) const {
  const FlowPos& pos = flow_pos_.at(flow_index);
  return pos.group_slot != stats::kNoGroupId && pos.stage > 0;
}

std::vector<std::size_t> GroupTracker::on_flow_complete(std::size_t flow_index,
                                                        sim::TimeNs now) {
  const FlowPos& pos = flow_pos_.at(flow_index);
  if (pos.group_slot == stats::kNoGroupId) return {};
  Group& g = groups_[pos.group_slot];
  Stage& stage = g.stages[pos.stage];
  if (stage.pending == 0) {
    throw std::logic_error("GroupTracker: completion after stage already drained");
  }
  --stage.pending;
  --g.pending_total;
  if (g.pending_total == 0) {
    GroupResult& result = results_[pos.group_slot];
    result.complete = true;
    result.completion = now;
  }
  if (stage.pending == 0 && pos.stage + 1u < g.stages.size()) {
    return g.stages[pos.stage + 1].flows;
  }
  return {};
}

std::size_t GroupTracker::groups_completed() const {
  std::size_t n = 0;
  for (const GroupResult& r : results_) n += r.complete ? 1 : 0;
  return n;
}

}  // namespace pmsb::workload
