#include "workload/traffic_gen.hpp"

#include <stdexcept>

namespace pmsb::workload {

double poisson_arrival_rate(const TrafficConfig& cfg, const FlowSizeDistribution& dist) {
  const double aggregate_bps =
      cfg.load * static_cast<double>(cfg.num_hosts) * static_cast<double>(cfg.edge_rate);
  return aggregate_bps / (8.0 * dist.mean_bytes());
}

std::vector<FlowSpec> generate_poisson_traffic(const TrafficConfig& cfg,
                                               const FlowSizeDistribution& dist,
                                               sim::Rng& rng) {
  if (cfg.num_hosts < 2) throw std::invalid_argument("traffic: need >= 2 hosts");
  if (cfg.load <= 0.0) throw std::invalid_argument("traffic: load must be > 0");

  const double rate_per_sec = poisson_arrival_rate(cfg, dist);
  const double mean_interarrival_ns = 1e9 / rate_per_sec;

  // Named sub-streams per draw dimension: a change to how one dimension
  // samples (or a new family forked off the same seed) leaves the others'
  // sequences untouched. Pinned by the digest-identity test in
  // test_workload.cpp — do not reorder or rename.
  sim::Rng arrival = rng.fork("poisson.arrival");
  sim::Rng size = rng.fork("poisson.size");
  sim::Rng endpoints = rng.fork("poisson.endpoints");

  std::vector<FlowSpec> flows;
  flows.reserve(cfg.num_flows);
  double t = static_cast<double>(cfg.start_after);
  for (std::size_t i = 0; i < cfg.num_flows; ++i) {
    t += arrival.exponential(mean_interarrival_ns);
    FlowSpec spec;
    spec.start = static_cast<sim::TimeNs>(t);
    spec.bytes = dist.sample(size);
    spec.service = static_cast<net::ServiceId>(i % cfg.num_services);
    spec.src = static_cast<net::HostId>(
        endpoints.uniform_int(0, static_cast<std::int64_t>(cfg.num_hosts) - 1));
    do {
      spec.dst = static_cast<net::HostId>(
          endpoints.uniform_int(0, static_cast<std::int64_t>(cfg.num_hosts) - 1));
    } while (spec.dst == spec.src ||
             (!cfg.rack_local_allowed &&
              spec.dst / cfg.hosts_per_rack == spec.src / cfg.hosts_per_rack));
    flows.push_back(spec);
  }
  return flows;
}

}  // namespace pmsb::workload
