// Synthetic traffic patterns beyond the Poisson mix: permutation matrices,
// incast (partition-aggregate) bursts, and all-to-all shuffles — the
// standard datacenter evaluation patterns.
#pragma once

#include <vector>

#include "sim/rng.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::workload {

/// Permutation: every host sends one flow to a distinct peer (a random
/// derangement), all starting at `start`.
std::vector<FlowSpec> permutation_pattern(std::size_t num_hosts, std::uint64_t bytes,
                                          sim::TimeNs start, std::uint8_t num_services,
                                          sim::Rng& rng);

/// Incast: `fan_in` servers (all hosts except the aggregator, cycled) send a
/// synchronized `bytes` response to `aggregator` at `start`.
std::vector<FlowSpec> incast_pattern(std::size_t num_hosts, net::HostId aggregator,
                                     std::size_t fan_in, std::uint64_t bytes,
                                     sim::TimeNs start, std::uint8_t num_services);

/// All-to-all shuffle: every ordered pair (src != dst) exchanges one flow of
/// `bytes`, with starts jittered uniformly in [start, start + jitter).
std::vector<FlowSpec> all_to_all_pattern(std::size_t num_hosts, std::uint64_t bytes,
                                         sim::TimeNs start, sim::TimeNs jitter,
                                         std::uint8_t num_services, sim::Rng& rng);

}  // namespace pmsb::workload
