#include "workload/flow_trace.hpp"

#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "telemetry/json_reader.hpp"

namespace pmsb::workload {

namespace {

using telemetry::json::Value;

[[noreturn]] void fail(const std::string& path, std::size_t line,
                       const std::string& what) {
  throw std::runtime_error("flow_trace: " + path + ":" + std::to_string(line) + ": " +
                           what);
}

/// A JSON number token that is a non-negative integer (no '.', 'e', '-'),
/// parsed via the raw token so 64-bit values survive.
std::uint64_t u64_field(const Value& obj, const std::string& key,
                        const std::string& path, std::size_t line) {
  const Value& v = obj.object.at(key);
  if (!v.is_number() ||
      v.raw_number.find_first_not_of("0123456789") != std::string::npos) {
    fail(path, line, "field '" + key + "' must be a non-negative integer");
  }
  try {
    return std::stoull(v.raw_number);
  } catch (const std::exception&) {
    fail(path, line, "field '" + key + "' out of range");
  }
}

void check_keys(const Value& obj, const std::vector<std::string>& required,
                const std::vector<std::string>& optional, const std::string& path,
                std::size_t line) {
  for (const std::string& key : required) {
    if (obj.object.count(key) == 0) fail(path, line, "missing field '" + key + "'");
  }
  for (const auto& [key, value] : obj.object) {
    bool known = false;
    for (const std::string& k : required) known = known || k == key;
    for (const std::string& k : optional) known = known || k == key;
    if (!known) fail(path, line, "unknown field '" + key + "'");
  }
}

}  // namespace

void write_flow_trace(const std::string& path, std::size_t num_hosts,
                      const std::vector<FlowSpec>& flows) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("flow_trace: cannot open " + path);
  // Keys in sorted order, matching the JSON writers elsewhere, so a trace
  // round-trips byte-stably through telemetry::json.
  out << "{\"flows\":" << flows.size() << ",\"hosts\":" << num_hosts
      << ",\"schema\":\"" << kFlowTraceSchema << "\"}\n";
  for (const FlowSpec& f : flows) {
    out << '{';
    if (f.deadline > 0) out << "\"deadline_ns\":" << f.deadline << ',';
    out << "\"dst\":" << static_cast<std::uint64_t>(f.dst) << ',';
    if (f.group != stats::kNoGroupId) out << "\"group\":" << f.group << ',';
    out << "\"pattern\":\"" << stats::pattern_tag_name(f.pattern) << "\","
        << "\"service\":" << static_cast<unsigned>(f.service) << ','
        << "\"size_bytes\":" << f.bytes << ','
        << "\"src\":" << static_cast<std::uint64_t>(f.src) << ',';
    if (f.group != stats::kNoGroupId) out << "\"stage\":" << f.stage << ',';
    out << "\"start_time_ns\":" << f.start << "}\n";
  }
  if (!out) throw std::runtime_error("flow_trace: write failed for " + path);
}

FlowTrace read_flow_trace(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("flow_trace: cannot open " + path);

  std::string line;
  std::size_t line_no = 0;
  if (!std::getline(in, line)) fail(path, 1, "empty file (missing header)");
  ++line_no;
  Value header;
  try {
    header = telemetry::json::parse(line);
  } catch (const std::exception& e) {
    fail(path, line_no, e.what());
  }
  if (!header.is_object()) fail(path, line_no, "header must be an object");
  check_keys(header, {"flows", "hosts", "schema"}, {}, path, line_no);
  const Value& schema = header.object.at("schema");
  if (!schema.is_string() || schema.string != kFlowTraceSchema) {
    fail(path, line_no, std::string("expected schema ") + kFlowTraceSchema);
  }
  FlowTrace trace;
  trace.num_hosts = static_cast<std::size_t>(u64_field(header, "hosts", path, line_no));
  if (trace.num_hosts < 2) fail(path, line_no, "hosts must be >= 2");
  const std::uint64_t declared_flows = u64_field(header, "flows", path, line_no);

  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) fail(path, line_no, "blank line inside trace");
    Value obj;
    try {
      obj = telemetry::json::parse(line);
    } catch (const std::exception& e) {
      fail(path, line_no, e.what());
    }
    if (!obj.is_object()) fail(path, line_no, "flow line must be an object");
    check_keys(obj, {"src", "dst", "size_bytes", "start_time_ns"},
               {"service", "pattern", "deadline_ns", "group", "stage"}, path, line_no);

    FlowSpec spec;
    const std::uint64_t src = u64_field(obj, "src", path, line_no);
    const std::uint64_t dst = u64_field(obj, "dst", path, line_no);
    if (src >= trace.num_hosts) fail(path, line_no, "src out of range");
    if (dst >= trace.num_hosts) fail(path, line_no, "dst out of range");
    if (src == dst) fail(path, line_no, "src == dst");
    spec.src = static_cast<net::HostId>(src);
    spec.dst = static_cast<net::HostId>(dst);
    spec.bytes = u64_field(obj, "size_bytes", path, line_no);
    if (spec.bytes == 0) fail(path, line_no, "size_bytes must be > 0");
    const std::uint64_t start = u64_field(obj, "start_time_ns", path, line_no);
    if (start > static_cast<std::uint64_t>(std::numeric_limits<sim::TimeNs>::max())) {
      fail(path, line_no, "start_time_ns out of range");
    }
    spec.start = static_cast<sim::TimeNs>(start);

    spec.pattern = stats::PatternTag::kTrace;
    if (obj.object.count("pattern") > 0) {
      const Value& p = obj.object.at("pattern");
      if (!p.is_string() || !stats::parse_pattern_tag(p.string, &spec.pattern)) {
        fail(path, line_no, "unknown pattern '" + p.string + "'");
      }
    }
    if (obj.object.count("service") > 0) {
      const std::uint64_t service = u64_field(obj, "service", path, line_no);
      if (service > 255) fail(path, line_no, "service out of range");
      spec.service = static_cast<net::ServiceId>(service);
    }
    if (obj.object.count("deadline_ns") > 0) {
      const std::uint64_t deadline = u64_field(obj, "deadline_ns", path, line_no);
      if (deadline == 0 ||
          deadline > static_cast<std::uint64_t>(std::numeric_limits<sim::TimeNs>::max())) {
        fail(path, line_no, "deadline_ns out of range");
      }
      spec.deadline = static_cast<sim::TimeNs>(deadline);
    }
    if (obj.object.count("group") > 0) {
      const std::uint64_t group = u64_field(obj, "group", path, line_no);
      if (group >= stats::kNoGroupId) fail(path, line_no, "group out of range");
      spec.group = static_cast<std::uint32_t>(group);
    }
    if (obj.object.count("stage") > 0) {
      if (obj.object.count("group") == 0) {
        fail(path, line_no, "stage without group");
      }
      const std::uint64_t stage = u64_field(obj, "stage", path, line_no);
      if (stage > std::numeric_limits<std::uint16_t>::max()) {
        fail(path, line_no, "stage out of range");
      }
      spec.stage = static_cast<std::uint16_t>(stage);
    }
    trace.flows.push_back(spec);
  }

  if (trace.flows.size() != declared_flows) {
    std::ostringstream why;
    why << "header declares " << declared_flows << " flows but file holds "
        << trace.flows.size();
    fail(path, line_no, why.str());
  }
  return trace;
}

}  // namespace pmsb::workload
