#include "workload/size_dist.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmsb::workload {

FlowSizeDistribution::FlowSizeDistribution(std::string name, std::vector<CdfPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  if (points_.size() < 2) {
    throw std::invalid_argument("FlowSizeDistribution: need >= 2 CDF points");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].bytes <= points_[i - 1].bytes ||
        points_[i].prob < points_[i - 1].prob) {
      throw std::invalid_argument("FlowSizeDistribution: CDF not monotone");
    }
  }
  if (points_.front().prob < 0.0 || points_.back().prob != 1.0) {
    throw std::invalid_argument("FlowSizeDistribution: CDF must end at 1.0");
  }
}

std::uint64_t FlowSizeDistribution::sample(sim::Rng& rng) const {
  return quantile(rng.uniform());
}

std::uint64_t FlowSizeDistribution::quantile(double u) const {
  if (u <= points_.front().prob) return points_.front().bytes;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (u <= points_[i].prob) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double span = hi.prob - lo.prob;
      const double frac = span <= 0.0 ? 1.0 : (u - lo.prob) / span;
      return lo.bytes + static_cast<std::uint64_t>(
                            frac * static_cast<double>(hi.bytes - lo.bytes));
    }
  }
  return points_.back().bytes;
}

double FlowSizeDistribution::mean_bytes() const {
  // First segment: mass points_.front().prob sits at the first point.
  double mean = points_.front().prob * static_cast<double>(points_.front().bytes);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const auto& lo = points_[i - 1];
    const auto& hi = points_[i];
    const double mass = hi.prob - lo.prob;
    mean += mass * 0.5 * (static_cast<double>(lo.bytes) + static_cast<double>(hi.bytes));
  }
  return mean;
}

double FlowSizeDistribution::cdf(std::uint64_t bytes) const {
  if (bytes <= points_.front().bytes) {
    return bytes == points_.front().bytes ? points_.front().prob : 0.0;
  }
  if (bytes >= points_.back().bytes) return 1.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (bytes <= points_[i].bytes) {
      const auto& lo = points_[i - 1];
      const auto& hi = points_[i];
      const double frac = static_cast<double>(bytes - lo.bytes) /
                          static_cast<double>(hi.bytes - lo.bytes);
      return lo.prob + frac * (hi.prob - lo.prob);
    }
  }
  return 1.0;
}

FlowSizeDistribution FlowSizeDistribution::paper_mix() {
  // 60% < 100 KB, 30% in [100 KB, 10 MB], 10% in (10 MB, 30 MB] — exactly
  // the proportions of §VI.B.
  return FlowSizeDistribution("paper-mix", {
                                               {2'000, 0.0},
                                               {30'000, 0.35},
                                               {100'000, 0.60},
                                               {1'000'000, 0.78},
                                               {10'000'000, 0.90},
                                               {30'000'000, 1.0},
                                           });
}

FlowSizeDistribution FlowSizeDistribution::web_search() {
  // DCTCP-paper web-search shape (Alizadeh et al. Fig. 4, as tabulated in
  // the MQ-ECN/TCN simulation releases).
  return FlowSizeDistribution("web-search", {
                                                {6'000, 0.0},
                                                {10'000, 0.15},
                                                {20'000, 0.20},
                                                {30'000, 0.30},
                                                {50'000, 0.40},
                                                {80'000, 0.53},
                                                {200'000, 0.60},
                                                {1'000'000, 0.70},
                                                {2'000'000, 0.80},
                                                {5'000'000, 0.90},
                                                {10'000'000, 0.97},
                                                {30'000'000, 1.0},
                                            });
}

FlowSizeDistribution FlowSizeDistribution::data_mining(std::uint64_t tail_cap_bytes) {
  std::vector<CdfPoint> pts = {
      {100, 0.0},       {1'000, 0.50},      {2'000, 0.60},
      {10'000, 0.70},   {100'000, 0.80},    {1'000'000, 0.90},
      {10'000'000, 0.95},
  };
  pts.push_back({std::max<std::uint64_t>(tail_cap_bytes, 20'000'000), 1.0});
  return FlowSizeDistribution("data-mining", std::move(pts));
}

FlowSizeDistribution FlowSizeDistribution::fixed(std::uint64_t bytes) {
  return FlowSizeDistribution("fixed", {{bytes, 0.0}, {bytes + 1, 1.0}});
}

FlowSizeDistribution FlowSizeDistribution::by_name(const std::string& name) {
  if (name == "paper-mix") return paper_mix();
  if (name == "web-search") return web_search();
  if (name == "data-mining") return data_mining();
  throw std::invalid_argument("unknown flow size distribution: " + name);
}

}  // namespace pmsb::workload
