// Flow-size distributions for workload generation.
//
// A FlowSizeDistribution is a piecewise-linear CDF sampled by inverse
// transform. Three presets:
//  - paper_mix: matches the only two knobs the PMSB paper specifies for its
//    large-scale workload — 60% small (<100 KB) and 10% large (>10 MB).
//  - web_search: the DCTCP-paper web-search workload shape used throughout
//    the MQ-ECN / TCN literature.
//  - data_mining: the VL2-style heavy-tailed workload (tail capped so quick
//    simulation runs stay bounded; the cap is configurable).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hpp"

namespace pmsb::workload {

class FlowSizeDistribution {
 public:
  struct CdfPoint {
    std::uint64_t bytes;
    double prob;  ///< P(size <= bytes)
  };

  /// Points must be strictly increasing in both fields and end at prob 1.0.
  FlowSizeDistribution(std::string name, std::vector<CdfPoint> points);

  /// Inverse-CDF sample: quantile(u) with u drawn uniform in [0, 1).
  [[nodiscard]] std::uint64_t sample(sim::Rng& rng) const;

  /// Deterministic inverse CDF: the smallest size s with cdf(s) >= u, linear
  /// between knots. u <= first knot's prob returns the first knot's bytes;
  /// u >= 1 returns the last knot's bytes; u exactly at a knot returns that
  /// knot's bytes.
  [[nodiscard]] std::uint64_t quantile(double u) const;

  /// Expected flow size (exact for the piecewise-linear CDF).
  [[nodiscard]] double mean_bytes() const;

  /// P(size <= bytes).
  [[nodiscard]] double cdf(std::uint64_t bytes) const;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<CdfPoint>& points() const { return points_; }

  // --- Presets ---
  static FlowSizeDistribution paper_mix();
  static FlowSizeDistribution web_search();
  static FlowSizeDistribution data_mining(std::uint64_t tail_cap_bytes = 100'000'000);
  static FlowSizeDistribution fixed(std::uint64_t bytes);
  static FlowSizeDistribution by_name(const std::string& name);

 private:
  std::string name_;
  std::vector<CdfPoint> points_;
};

}  // namespace pmsb::workload
