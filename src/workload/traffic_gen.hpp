// Poisson traffic generation (§VI.B).
//
// Flow arrivals form a Poisson process whose rate is chosen so that the
// offered load equals `load` × the aggregate edge capacity:
//     lambda = load * num_hosts * edge_rate / (8 * mean_flow_size)
// Source and destination hosts are drawn uniformly (src != dst), and flows
// are classified round-robin into `num_services` services — the paper's
// "48x47 communications classified into 8 services evenly".
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"
#include "stats/fct.hpp"
#include "workload/size_dist.hpp"

namespace pmsb::workload {

struct FlowSpec {
  net::HostId src = 0;
  net::HostId dst = 0;
  net::ServiceId service = 0;
  std::uint64_t bytes = 0;
  sim::TimeNs start = 0;
  /// Absolute completion deadline (D2TCP); 0 = none.
  sim::TimeNs deadline = 0;
  /// Which workload family produced this flow; lands in FCT records.
  stats::PatternTag pattern = stats::PatternTag::kPoisson;
  /// Coflow/RPC group id; stats::kNoGroupId = standalone flow.
  std::uint32_t group = stats::kNoGroupId;
  /// Coflow stage index. Stage > 0 flows start only once every stage-1
  /// flow of their group has completed (the shuffle barrier).
  std::uint16_t stage = 0;
};

struct TrafficConfig {
  std::size_t num_hosts = 48;
  double load = 0.5;                      ///< fraction of aggregate edge capacity
  sim::RateBps edge_rate = sim::gbps(10);
  std::size_t num_flows = 1000;
  std::uint8_t num_services = 8;
  sim::TimeNs start_after = 0;            ///< arrivals begin after this time
  bool rack_local_allowed = true;         ///< if false, src and dst differ by rack
  std::size_t hosts_per_rack = 12;        ///< used when rack_local_allowed == false
};

/// Generates `cfg.num_flows` flow specs. Deterministic given `rng`'s seed.
/// Arrival times, flow sizes, and endpoint choices draw from independent
/// named sub-streams forked off `rng` ("poisson.arrival" / "poisson.size" /
/// "poisson.endpoints"), so adding a draw to one dimension — or adding a new
/// workload family sharing the seed — cannot perturb the others. `rng`
/// itself is not advanced.
std::vector<FlowSpec> generate_poisson_traffic(const TrafficConfig& cfg,
                                               const FlowSizeDistribution& dist,
                                               sim::Rng& rng);

/// The Poisson arrival rate (flows/second) implied by a traffic config.
double poisson_arrival_rate(const TrafficConfig& cfg, const FlowSizeDistribution& dist);

}  // namespace pmsb::workload
