// The standard fabric invariants, packaged as InvariantChecker checks.
//
// Header-only on purpose: these helpers reach into switchlib and transport
// accessors, and pmsb_faults links only net/sim/telemetry. Everything here
// is inline reads of existing counters, so including this header creates no
// library-level dependency cycle.
//
// Invariants provided:
//  - switch port accounting: enqueued == dequeued + buffered; port byte
//    backlog == sum of per-queue backlogs; drop reasons sum to the drop
//    total; CE marks never exceed admitted packets
//  - packet conservation: every packet handed to a Host is, at any instant
//    between events, in exactly one of {delivered, dropped (port or fault),
//    NIC backlog, link flight, port buffer, fault delay stage} — the ledger
//    sums all of them and demands exact equality
//  - flow liveness: a started, incomplete flow with bytes in flight must
//    have its retransmission timer armed (otherwise it can never finish)
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "faults/fault_plan.hpp"
#include "faults/invariants.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "switchlib/switch.hpp"
#include "transport/dctcp.hpp"

namespace pmsb::faults {

/// Per-port accounting checks for every port of `sw`. The switch must
/// outlive the checker.
inline void add_switch_checks(InvariantChecker& checker, switchlib::Switch& sw) {
  checker.add_check("port_accounting", [&sw](InvariantChecker::Context& ctx) {
    for (std::size_t i = 0; i < sw.num_ports(); ++i) {
      const switchlib::Port& port = sw.port(i);
      const switchlib::PortStats& stats = port.stats();
      const std::string entity = sw.name() + " port " + std::to_string(i);

      if (stats.enqueued_packets !=
          stats.dequeued_packets + port.buffered_packets()) {
        std::ostringstream why;
        why << "enqueued=" << stats.enqueued_packets
            << " != dequeued=" << stats.dequeued_packets
            << " + buffered=" << port.buffered_packets();
        ctx.violate(entity, why.str());
      }

      std::uint64_t queue_sum = 0;
      for (std::size_t q = 0; q < port.scheduler().num_queues(); ++q) {
        queue_sum += port.queue_bytes(q);
      }
      if (queue_sum != port.buffered_bytes()) {
        std::ostringstream why;
        why << "port backlog " << port.buffered_bytes()
            << "B != sum of queue backlogs " << queue_sum << "B";
        ctx.violate(entity, why.str());
      }

      std::uint64_t reason_sum = 0;
      for (const std::uint64_t n : stats.dropped_by_reason) reason_sum += n;
      if (reason_sum != stats.dropped_packets) {
        std::ostringstream why;
        why << "drop reasons sum to " << reason_sum << " but dropped_packets="
            << stats.dropped_packets;
        ctx.violate(entity, why.str());
      }

      if (stats.marked_enqueue + stats.marked_dequeue > stats.enqueued_packets) {
        std::ostringstream why;
        why << "CE marks " << (stats.marked_enqueue + stats.marked_dequeue)
            << " exceed admitted packets " << stats.enqueued_packets;
        ctx.violate(entity, why.str());
      }
    }
  });
}

/// The global packet-conservation ledger. Register every entity that can
/// hold or terminate a packet, then call register_check(). All registered
/// entities must outlive the checker.
class ConservationLedger {
 public:
  void add_host(const net::Host* host) { hosts_.push_back(host); }
  void add_switch(const switchlib::Switch* sw) { switches_.push_back(sw); }
  void add_link(const net::Link* link) { links_.push_back(link); }
  void set_fault_plan(const FaultPlan* plan) { plan_ = plan; }
  /// Test-only: a constant offset added to the injected side, used to
  /// deliberately break the invariant and prove the checker catches it.
  void skew_injected_for_test(std::uint64_t skew) { test_skew_ = skew; }

  [[nodiscard]] std::uint64_t injected() const {
    std::uint64_t n = test_skew_;
    for (const net::Host* host : hosts_) n += host->sent_packets();
    return n;
  }

  void register_check(InvariantChecker& checker) const {
    checker.add_check("packet_conservation", [this](InvariantChecker::Context& ctx) {
      std::uint64_t delivered = 0;
      std::uint64_t dropped = 0;
      std::uint64_t in_flight = 0;
      for (const net::Host* host : hosts_) {
        delivered += host->delivered_packets() + host->dropped_no_handler();
        in_flight += host->nic_backlog_packets();
      }
      for (const switchlib::Switch* sw : switches_) {
        for (std::size_t i = 0; i < sw->num_ports(); ++i) {
          dropped += sw->port(i).stats().dropped_packets;
          in_flight += sw->port(i).buffered_packets();
        }
      }
      for (const net::Link* link : links_) in_flight += link->packets_in_flight();
      if (plan_ != nullptr) {
        dropped += plan_->dropped();
        in_flight += plan_->delayed_in_flight();
      }
      const std::uint64_t sent = injected();
      if (sent != delivered + dropped + in_flight) {
        std::ostringstream why;
        why << "injected=" << sent << " != delivered=" << delivered
            << " + dropped=" << dropped << " + in_flight=" << in_flight
            << " (sum " << (delivered + dropped + in_flight) << ")";
        ctx.violate("fabric", why.str());
      }
    });
  }

 private:
  std::vector<const net::Host*> hosts_;
  std::vector<const switchlib::Switch*> switches_;
  std::vector<const net::Link*> links_;
  const FaultPlan* plan_ = nullptr;
  std::uint64_t test_skew_ = 0;
};

/// Flow liveness: every started, incomplete flow with bytes in flight must
/// hold an armed retransmission timer, otherwise a lost tail would hang the
/// run. `senders` is evaluated at check time so flows created later are
/// still covered.
inline void add_flow_liveness_check(
    InvariantChecker& checker,
    std::function<std::vector<const transport::DctcpSender*>()> senders) {
  checker.add_check(
      "flow_liveness", [senders = std::move(senders)](InvariantChecker::Context& ctx) {
        for (const transport::DctcpSender* sender : senders()) {
          if (sender->started() && !sender->complete() &&
              sender->bytes_inflight() > 0 && !sender->rto_armed()) {
            std::ostringstream why;
            why << "inflight=" << sender->bytes_inflight()
                << "B acked=" << sender->bytes_acked()
                << "B but RTO timer not armed";
            ctx.violate("flow " + std::to_string(sender->flow_id()), why.str());
          }
        }
      });
}

}  // namespace pmsb::faults
