// Wall-clock deadline for a single simulation run.
//
// The Watchdog bounds *simulated* time and the event count; a pathological
// cell can still burn unbounded *host* time (an event storm that advances
// simulated time slowly, a scheme parameterization that makes every packet
// expensive). A Deadline samples the host monotonic clock from inside the
// simulator's event loop — the same periodic-tick pattern the Watchdog
// uses — and, once the wall budget is exhausted, throws DeadlineExceeded
// out of Simulator::run(). A sweep worker catches it and fails only that
// cell with the diagnostic in the sweep report; sibling cells proceed.
//
// Limits, shared with the Watchdog: the tick is a simulation event, so a
// loop that never advances simulated time never reaches the next tick.
// Pair with `watchdog_events=` to bound same-instant event explosions.
//
// THE BLIND SPOT (see blind_spot_note()): a single callback that never
// *returns* — an infinite loop inside one event, a deadlocked wait — starves
// the event loop itself. No tick ever dispatches, so neither the Deadline
// nor the Watchdog can fire, and in-process the cell wedges forever. The
// sweep's `isolate=1` mode closes this: the CellSupervisor parent enforces
// the same `cell_timeout_s` budget from *outside* the process and hard-kills
// a child the Deadline could not interrupt.
#pragma once

#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::faults {

/// Thrown from the event loop when a Deadline expires. what() carries the
/// structured diagnostic (limit, phase, simulated time, executed events).
struct DeadlineExceeded : std::runtime_error {
  DeadlineExceeded(const std::string& what, double limit, double elapsed)
      : std::runtime_error(what), limit_s(limit), elapsed_s(elapsed) {}

  double limit_s;    ///< configured wall budget
  double elapsed_s;  ///< measured wall seconds when the deadline fired
};

class Deadline {
 public:
  /// The wall clock starts at construction; `limit_s` is the host-seconds
  /// budget (> 0), `period` the simulated-time sampling cadence (> 0).
  Deadline(sim::Simulator& simulator, double limit_s,
           sim::TimeNs period = sim::microseconds(500));
  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  /// Arms the periodic check. Like the watchdog tick, it stops rescheduling
  /// when the event queue is otherwise empty.
  void start();

  [[nodiscard]] bool expired() const { return expired_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  /// Wall seconds since construction.
  [[nodiscard]] double elapsed_s() const;

  void bind_metrics(telemetry::MetricsRegistry& registry);

  /// One-line statement of the enforcement limitation, for CLIs and docs:
  /// the deadline dispatches as a sim event, so a callback that never
  /// returns is never interrupted. Kept in code (not just comments) so the
  /// CLI can print it whenever cell_timeout_s is used without isolate=1.
  [[nodiscard]] static const char* blind_spot_note();

 private:
  void tick();

  sim::Simulator& sim_;
  double limit_s_;
  sim::TimeNs period_;
  std::chrono::steady_clock::time_point start_wall_ =
      std::chrono::steady_clock::now();
  std::uint64_t samples_ = 0;
  bool started_ = false;
  bool expired_ = false;
};

}  // namespace pmsb::faults
