// Stall and runaway detection for simulation runs.
//
// A Watchdog periodically samples a progress counter (typically total bytes
// acked across all flows) and the simulator's executed-event count. It trips
// when either
//   - progress has not advanced for `horizon` of simulation time while work
//     is still outstanding (a stalled run: e.g. a link that never came back
//     up and a transport with no retransmission path), or
//   - the executed-event count exceeds `max_events` (an event explosion:
//     e.g. a retransmit storm or a scheduling loop).
// Tripping records a forensic diagnostic (entity, time, counters, heap
// stats) and stops the simulator so the caller regains control instead of
// spinning forever; a sweep turns the diagnostic into a failed cell.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::faults {

struct WatchdogConfig {
  /// Trip if progress() is flat for this long while done() is false.
  /// <= 0 disables stall detection.
  sim::TimeNs stall_horizon = 0;
  /// Trip when the simulator has executed more events than this.
  /// 0 disables the budget.
  std::uint64_t max_events = 0;
  /// Sampling cadence; must be positive and should be well below
  /// stall_horizon for timely detection.
  sim::TimeNs period = sim::milliseconds(1);
};

class Watchdog {
 public:
  /// `progress` returns a monotone measure of useful work (bytes acked);
  /// `done` returns true when the run has legitimately finished (so an
  /// idle tail after completion is not a stall). `forensics` (optional)
  /// contributes extra lines to the trip diagnostic.
  Watchdog(sim::Simulator& simulator, WatchdogConfig config,
           std::function<std::uint64_t()> progress, std::function<bool()> done,
           std::function<std::string()> forensics = {});
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Begins periodic sampling. Like the invariant checker, the tick stops
  /// rescheduling when the event queue is otherwise empty.
  void start();

  [[nodiscard]] bool tripped() const { return tripped_; }
  /// Why the watchdog fired: entity, simulation time, counters, forensics.
  [[nodiscard]] const std::string& diagnostic() const { return diagnostic_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

  void bind_metrics(telemetry::MetricsRegistry& registry);

 private:
  void tick();
  void trip(const std::string& reason);

  sim::Simulator& sim_;
  WatchdogConfig config_;
  std::function<std::uint64_t()> progress_;
  std::function<bool()> done_;
  std::function<std::string()> forensics_;

  std::uint64_t last_progress_ = 0;
  sim::TimeNs last_advance_ = 0;
  std::uint64_t samples_ = 0;
  bool started_ = false;
  bool tripped_ = false;
  std::string diagnostic_;
};

}  // namespace pmsb::faults
