#include "faults/deadline.hpp"

#include <sstream>

namespace pmsb::faults {

Deadline::Deadline(sim::Simulator& simulator, double limit_s, sim::TimeNs period)
    : sim_(simulator), limit_s_(limit_s), period_(period) {
  if (limit_s_ <= 0.0) {
    throw std::invalid_argument("Deadline: limit must be positive");
  }
  if (period_ <= 0) {
    throw std::invalid_argument("Deadline: period must be positive");
  }
}

void Deadline::start() {
  if (started_) throw std::logic_error("Deadline::start called twice");
  started_ = true;
  sim_.schedule_in(period_, [this] { tick(); });
}

double Deadline::elapsed_s() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_wall_)
      .count();
}

void Deadline::tick() {
  ++samples_;
  const double elapsed = elapsed_s();
  if (elapsed >= limit_s_) {
    expired_ = true;
    std::ostringstream why;
    // The limit, not the measured elapsed time, goes into what(): the
    // message lands in sweep-report `error` fields that should stay as
    // reproducible as a wall-clock failure can be. wall_ms in the record
    // carries the measurement.
    why << "[cell_timeout] wall-clock limit " << limit_s_
        << "s exceeded (phase=run, sim_time=" << sim::to_microseconds(sim_.now())
        << "us, executed_events=" << sim_.executed_events() << ")";
    throw DeadlineExceeded(why.str(), limit_s_, elapsed);
  }
  if (sim_.pending_events() == 0) return;
  sim_.schedule_in(period_, [this] { tick(); });
}

const char* Deadline::blind_spot_note() {
  return "cell_timeout_s is enforced from inside the event loop: a callback "
         "that never returns is never interrupted. Use isolate=1 for a "
         "hard (out-of-process) kill.";
}

void Deadline::bind_metrics(telemetry::MetricsRegistry& registry) {
  registry.counter_fn("deadline.samples", {}, [this] { return samples_; },
                      "samples");
  registry.gauge_fn("deadline.expired", {},
                    [this] { return expired_ ? 1.0 : 0.0; }, "bool");
}

}  // namespace pmsb::faults
