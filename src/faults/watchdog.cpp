#include "faults/watchdog.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace pmsb::faults {

Watchdog::Watchdog(sim::Simulator& simulator, WatchdogConfig config,
                   std::function<std::uint64_t()> progress,
                   std::function<bool()> done,
                   std::function<std::string()> forensics)
    : sim_(simulator), config_(config), progress_(std::move(progress)),
      done_(std::move(done)), forensics_(std::move(forensics)) {
  if (!progress_ || !done_) {
    throw std::invalid_argument("Watchdog: progress and done probes are required");
  }
  if (config_.period <= 0) {
    throw std::invalid_argument("Watchdog: period must be positive");
  }
}

void Watchdog::start() {
  if (started_) throw std::logic_error("Watchdog::start called twice");
  started_ = true;
  last_progress_ = progress_();
  last_advance_ = sim_.now();
  sim_.schedule_in(config_.period, [this] { tick(); });
}

void Watchdog::tick() {
  if (tripped_) return;
  ++samples_;

  if (config_.max_events > 0 && sim_.executed_events() > config_.max_events) {
    std::ostringstream why;
    why << "event budget exceeded: executed=" << sim_.executed_events()
        << " budget=" << config_.max_events;
    trip(why.str());
    return;
  }

  const std::uint64_t now_progress = progress_();
  if (now_progress != last_progress_) {
    last_progress_ = now_progress;
    last_advance_ = sim_.now();
  } else if (config_.stall_horizon > 0 && !done_() &&
             sim_.now() - last_advance_ >= config_.stall_horizon) {
    std::ostringstream why;
    why << "no progress for " << (sim_.now() - last_advance_)
        << "ns (horizon=" << config_.stall_horizon
        << "ns, progress=" << now_progress << ")";
    trip(why.str());
    return;
  }

  if (sim_.pending_events() == 0) return;
  sim_.schedule_in(config_.period, [this] { tick(); });
}

void Watchdog::trip(const std::string& reason) {
  tripped_ = true;
  std::ostringstream out;
  out << "[watchdog] entity=simulation t=" << sim_.now() << "ns: " << reason
      << "; executed_events=" << sim_.executed_events()
      << " pending_events=" << sim_.pending_events()
      << " max_heap_depth=" << sim_.max_heap_depth();
  if (forensics_) {
    const std::string extra = forensics_();
    if (!extra.empty()) out << "\n" << extra;
  }
  diagnostic_ = out.str();
  // Stop the run so the caller regains control; the diagnostic tells it why.
  sim_.stop();
}

void Watchdog::bind_metrics(telemetry::MetricsRegistry& registry) {
  registry.counter_fn("watchdog.samples", {}, [this] { return samples_; },
                      "samples");
  registry.gauge_fn("watchdog.tripped", {},
                    [this] { return tripped_ ? 1.0 : 0.0; }, "bool");
}

}  // namespace pmsb::faults
