#include "faults/invariants.hpp"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace pmsb::faults {

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "[invariant " << check << "] entity=" << entity << " t=" << time
      << "ns: " << detail;
  return out.str();
}

void InvariantChecker::Context::violate(const std::string& entity,
                                        const std::string& detail) {
  Violation v;
  v.check = check_;
  v.entity = entity;
  v.time = owner_.sim_.now();
  v.detail = detail;
  owner_.record(std::move(v));
}

void InvariantChecker::record(Violation v) {
  ++total_violations_;
  if (violations_.size() < max_recorded_) violations_.push_back(std::move(v));
}

void InvariantChecker::check_now() {
  ++evaluations_;
  for (auto& check : checks_) {
    Context ctx(*this, check.name);
    check.fn(ctx);
  }
}

void InvariantChecker::start_periodic(sim::TimeNs period) {
  if (period <= 0) {
    throw std::invalid_argument("InvariantChecker: period must be positive");
  }
  if (periodic_started_) {
    throw std::logic_error("InvariantChecker: periodic evaluation already started");
  }
  periodic_started_ = true;
  sim_.schedule_in(period, [this, period] { tick(period); });
}

void InvariantChecker::tick(sim::TimeNs period) {
  check_now();
  // Checks are read-only, so if nothing else is pending the run is done:
  // stop ticking rather than keep the sim alive forever.
  if (sim_.pending_events() == 0) return;
  sim_.schedule_in(period, [this, period] { tick(period); });
}

std::string InvariantChecker::summary(std::size_t max_lines) const {
  std::ostringstream out;
  out << total_violations_ << " invariant violation(s)";
  const std::size_t shown =
      violations_.size() < max_lines ? violations_.size() : max_lines;
  for (std::size_t i = 0; i < shown; ++i) {
    out << "\n  " << violations_[i].to_string();
  }
  if (total_violations_ > shown) {
    out << "\n  ... and " << (total_violations_ - shown) << " more";
  }
  return out.str();
}

void InvariantChecker::bind_metrics(telemetry::MetricsRegistry& registry) {
  registry.counter_fn("invariants.evaluations", {},
                      [this] { return evaluations_; }, "checks");
  registry.counter_fn("invariants.violations", {},
                      [this] { return total_violations_; }, "violations");
}

}  // namespace pmsb::faults
