// Runtime invariant checking for simulation runs.
//
// An InvariantChecker holds named predicate checks over live simulation
// state and evaluates them at a configurable cadence (plus once on demand
// via check_now). Checks are read-only observers: they may inspect any
// entity but must not mutate it, so enabling the checker never changes a
// run's packet-level behaviour — only its event count.
//
// A failing check reports a structured Violation (check name, entity,
// simulation time, human-readable counter detail) instead of asserting, so
// a sweep cell can fail in isolation with a diagnostic while sibling cells
// keep running. The standard fabric checks (conservation ledger, per-port
// byte accounting, CE-vs-data sanity, flow liveness) live in
// faults/standard_checks.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::faults {

/// One invariant failure, with enough context to debug it post-mortem.
struct Violation {
  std::string check;    ///< name of the failing check
  std::string entity;   ///< entity it concerns ("spine0 port 2", "flow 7")
  sim::TimeNs time = 0; ///< simulation time of detection
  std::string detail;   ///< counter values / expected-vs-actual text

  [[nodiscard]] std::string to_string() const;
};

class InvariantChecker {
 public:
  /// Handed to each check; call violate() for every failure found.
  class Context {
   public:
    Context(InvariantChecker& owner, std::string check)
        : owner_(owner), check_(std::move(check)) {}

    void violate(const std::string& entity, const std::string& detail);

   private:
    InvariantChecker& owner_;
    std::string check_;
  };

  using Check = std::function<void(Context&)>;

  explicit InvariantChecker(sim::Simulator& simulator) : sim_(simulator) {}
  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  void add_check(std::string name, Check check) {
    checks_.push_back({std::move(name), std::move(check)});
  }
  [[nodiscard]] std::size_t num_checks() const { return checks_.size(); }

  /// Runs every check once at the current simulation time.
  void check_now();

  /// Schedules periodic evaluation every `period`. The tick does not
  /// reschedule once the event queue is otherwise empty, so a run still
  /// terminates when traffic drains.
  void start_periodic(sim::TimeNs period);

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }
  [[nodiscard]] std::uint64_t evaluations() const { return evaluations_; }
  [[nodiscard]] bool clean() const { return violations_.empty(); }

  /// Caps stored violations (default 64) — a systemically broken invariant
  /// would otherwise flood memory; the count keeps incrementing regardless.
  void set_max_recorded(std::size_t n) { max_recorded_ = n; }
  [[nodiscard]] std::uint64_t total_violations() const { return total_violations_; }

  /// First-N violations joined for exception messages / forensic dumps.
  [[nodiscard]] std::string summary(std::size_t max_lines = 8) const;

  /// Exposes evaluation and violation counts as probe instruments.
  void bind_metrics(telemetry::MetricsRegistry& registry);

 private:
  struct NamedCheck {
    std::string name;
    Check fn;
  };

  void record(Violation v);
  void tick(sim::TimeNs period);

  friend class Context;

  sim::Simulator& sim_;
  std::vector<NamedCheck> checks_;
  std::vector<Violation> violations_;
  std::size_t max_recorded_ = 64;
  std::uint64_t total_violations_ = 0;
  std::uint64_t evaluations_ = 0;
  bool periodic_started_ = false;
};

}  // namespace pmsb::faults
