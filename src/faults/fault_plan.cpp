#include "faults/fault_plan.hpp"

#include <stdexcept>
#include <utility>

#include "sim/units.hpp"

namespace pmsb::faults {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(text.substr(start));
      return parts;
    }
    parts.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

[[noreturn]] void bad_clause(const std::string& clause, const std::string& why) {
  throw std::invalid_argument("faults: bad clause '" + clause + "': " + why);
}

double parse_probability(const std::string& clause, const std::string& text) {
  std::size_t consumed = 0;
  double p = 0.0;
  try {
    p = std::stod(text, &consumed);
  } catch (const std::exception&) {
    bad_clause(clause, "expected probability, got '" + text + "'");
  }
  if (consumed != text.size() || p < 0.0 || p > 1.0) {
    bad_clause(clause, "probability '" + text + "' not in [0,1]");
  }
  return p;
}

// "A->B" (loss/delay) or "A-B" (flap). Empty side or '*' means wildcard.
void parse_endpoints(const std::string& clause, const std::string& text,
                     const std::string& sep, FaultSpec& out) {
  const std::size_t pos = text.find(sep);
  if (pos == std::string::npos) {
    bad_clause(clause, "expected '" + sep + "' between endpoints in '" + text + "'");
  }
  out.a = text.substr(0, pos);
  out.b = text.substr(pos + sep.size());
  if (out.a.empty()) out.a = "*";
  if (out.b.empty()) out.b = "*";
}

bool matches(const std::string& pattern, const std::string& name) {
  return pattern == "*" || pattern == name;
}

}  // namespace

std::vector<FaultSpec> parse_fault_spec(const std::string& spec) {
  std::vector<FaultSpec> out;
  for (const std::string& clause : split(spec, ';')) {
    if (clause.empty()) continue;
    const std::vector<std::string> fields = split(clause, ':');
    if (fields.size() != 3) {
      bad_clause(clause, "expected kind:endpoints:params");
    }
    const std::string& kind = fields[0];
    FaultSpec fs;
    if (kind == "link") {
      fs.kind = FaultSpec::Kind::kLinkFlap;
      parse_endpoints(clause, fields[1], "-", fs);
      if (fs.a == "*" || fs.b == "*") {
        bad_clause(clause, "link flap endpoints cannot be wildcards");
      }
      // down@T1..T2 with T2 optional ("down@50ms.." or "down@50ms").
      const std::string& params = fields[2];
      if (params.rfind("down@", 0) != 0) {
        bad_clause(clause, "expected down@T1..T2, got '" + params + "'");
      }
      const std::string window = params.substr(5);
      const std::size_t dots = window.find("..");
      const std::string t1 = dots == std::string::npos ? window : window.substr(0, dots);
      const std::string t2 = dots == std::string::npos ? "" : window.substr(dots + 2);
      try {
        fs.down_at = sim::parse_duration_ns(t1);
        fs.up_at = t2.empty() ? sim::kTimeNever : sim::parse_duration_ns(t2);
      } catch (const std::invalid_argument& e) {
        bad_clause(clause, e.what());
      }
      if (fs.up_at <= fs.down_at) {
        bad_clause(clause, "up time must be after down time");
      }
    } else if (kind == "loss") {
      fs.kind = FaultSpec::Kind::kLoss;
      parse_endpoints(clause, fields[1], "->", fs);
      fs.probability = parse_probability(clause, fields[2]);
    } else if (kind == "delay") {
      fs.kind = FaultSpec::Kind::kDelay;
      parse_endpoints(clause, fields[1], "->", fs);
      const std::string& params = fields[2];
      const std::size_t plus = params.find('+');
      try {
        fs.delay = sim::parse_duration_ns(
            plus == std::string::npos ? params : params.substr(0, plus));
        if (plus != std::string::npos) {
          fs.jitter = sim::parse_duration_ns(params.substr(plus + 1));
        }
      } catch (const std::invalid_argument& e) {
        bad_clause(clause, e.what());
      }
    } else if (kind == "bleach") {
      fs.kind = FaultSpec::Kind::kBleach;
      fs.a = fields[1].empty() ? "*" : fields[1];
      fs.b = "*";
      fs.probability = parse_probability(clause, fields[2]);
    } else {
      bad_clause(clause, "unknown kind '" + kind + "'");
    }
    out.push_back(std::move(fs));
  }
  return out;
}

void FaultPlan::add_spec_string(const std::string& spec) {
  for (FaultSpec& fs : parse_fault_spec(spec)) specs_.push_back(std::move(fs));
}

FaultPlan::Point& FaultPlan::ensure_point(sim::Simulator& simulator,
                                          const LinkRef& ref,
                                          std::uint64_t seed) {
  for (auto& point : points_) {
    if (point->src == ref.src && point->dst == ref.dst) return *point;
  }
  auto point = std::make_unique<Point>();
  point->src = ref.src;
  point->dst = ref.dst;
  // Each interposition point gets its own RNG stream so adding a fault on
  // one link does not perturb loss decisions on another.
  const std::uint64_t stream =
      seed ^ (std::hash<std::string>{}(ref.src + "\x1f" + ref.dst) | 1);
  point->node = std::make_unique<net::FaultInjector>(
      simulator, ref.link->destination(), stream,
      "fault(" + ref.src + "->" + ref.dst + ")");
  ref.link->set_destination(point->node.get());
  points_.push_back(std::move(point));
  return *points_.back();
}

void FaultPlan::install(sim::Simulator& simulator,
                        const std::vector<LinkRef>& links,
                        std::uint64_t seed) {
  if (installed_) {
    throw std::logic_error("FaultPlan::install called twice");
  }
  installed_ = true;
  for (const FaultSpec& spec : specs_) {
    std::size_t matched = 0;
    for (const LinkRef& ref : links) {
      if (ref.link == nullptr) continue;
      bool hit = false;
      switch (spec.kind) {
        case FaultSpec::Kind::kLinkFlap:
          // A-B names the bidirectional pair: interpose both directions.
          hit = (spec.a == ref.src && spec.b == ref.dst) ||
                (spec.a == ref.dst && spec.b == ref.src);
          break;
        case FaultSpec::Kind::kLoss:
        case FaultSpec::Kind::kDelay:
          hit = matches(spec.a, ref.src) && matches(spec.b, ref.dst);
          break;
        case FaultSpec::Kind::kBleach:
          // Bleaching strips CE marks on every egress of the named node.
          hit = matches(spec.a, ref.src);
          break;
      }
      if (!hit) continue;
      ++matched;
      Point& point = ensure_point(simulator, ref, seed);
      net::FaultInjector* injector = point.node.get();
      switch (spec.kind) {
        case FaultSpec::Kind::kLinkFlap:
          simulator.schedule_at(spec.down_at, [injector] { injector->set_down(true); });
          if (spec.up_at != sim::kTimeNever) {
            simulator.schedule_at(spec.up_at, [injector] { injector->set_down(false); });
          }
          break;
        case FaultSpec::Kind::kLoss:
          injector->set_drop_rate(spec.probability);
          break;
        case FaultSpec::Kind::kDelay:
          injector->set_extra_delay(spec.delay, spec.jitter);
          break;
        case FaultSpec::Kind::kBleach:
          injector->set_bleach_rate(spec.probability);
          break;
      }
    }
    if (matched == 0) {
      throw std::invalid_argument(
          "faults: spec matched no link in this topology (endpoints '" +
          spec.a + "' / '" + spec.b + "')");
    }
  }
}

net::FaultInjector* FaultPlan::point_between(const std::string& src,
                                             const std::string& dst) {
  for (auto& point : points_) {
    if (point->src == src && point->dst == dst) return point->node.get();
  }
  return nullptr;
}

std::uint64_t FaultPlan::dropped() const {
  std::uint64_t total = 0;
  for (const auto& point : points_) total += point->node->dropped();
  return total;
}

std::uint64_t FaultPlan::bleached() const {
  std::uint64_t total = 0;
  for (const auto& point : points_) total += point->node->bleached();
  return total;
}

std::uint64_t FaultPlan::forwarded() const {
  std::uint64_t total = 0;
  for (const auto& point : points_) total += point->node->forwarded();
  return total;
}

std::uint64_t FaultPlan::delayed_in_flight() const {
  std::uint64_t total = 0;
  for (const auto& point : points_) total += point->node->delayed_in_flight();
  return total;
}

void FaultPlan::bind_metrics(telemetry::MetricsRegistry& registry) const {
  for (const auto& point : points_) {
    point->node->bind_metrics(registry, {{"link", point->src + "->" + point->dst}});
  }
}

}  // namespace pmsb::faults
