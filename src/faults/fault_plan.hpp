// Scripted failure timelines for a simulated fabric.
//
// A FaultPlan turns a compact option string into timed fault events wired
// into a scenario's links. The grammar (clauses joined by ';'):
//
//   link:A-B:down@T1..T2     both directions of the A<->B link go down at T1
//                            and come back at T2 (omit T2 for "forever");
//                            packets in flight on a downed link are dropped
//                            and counted
//   loss:A->B:P              unidirectional random loss with probability P
//   delay:A->B:D[+J]         unidirectional extra delay D with uniform
//                            jitter in [0, J) (reorders when J is large)
//   bleach:A:P               every CE-marked packet leaving node A has its
//                            mark cleared with probability P (ECN bleaching)
//
// Node names are the scenario's (h0, leaf0, spine1, sender0, switch, ...);
// either side of '->' may be '*' (or empty) to match every node. Durations
// accept ns/us/ms/s suffixes (bare numbers are ns).
//
// install() interposes one plan-owned FaultInjector per matching directed
// link (Link::set_destination) and schedules the flap timeline on the
// Simulator. The plan must outlive the run; the injectors' counters feed
// the telemetry registry and the conservation invariants.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/fault_injector.hpp"
#include "net/link.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::faults {

/// A directed link of the scenario topology, named by its endpoints.
/// Scenarios expose one per Link so the fault plane can match clauses
/// against the fabric ("leaf0" -> "spine1").
struct LinkRef {
  std::string src;
  std::string dst;
  net::Link* link = nullptr;
};

/// One parsed fault clause.
struct FaultSpec {
  enum class Kind : std::uint8_t { kLinkFlap, kLoss, kDelay, kBleach };

  Kind kind = Kind::kLoss;
  std::string a;  ///< source endpoint; "*" matches every node
  std::string b;  ///< destination endpoint (flap: the other side of the pair)
  double probability = 0.0;          ///< loss / bleach
  sim::TimeNs down_at = 0;           ///< flap: link goes down
  sim::TimeNs up_at = sim::kTimeNever;  ///< flap: link comes back (kTimeNever = stays down)
  sim::TimeNs delay = 0;             ///< delay: fixed component
  sim::TimeNs jitter = 0;            ///< delay: uniform jitter bound
};

/// Parses the full `faults=` option string; throws std::invalid_argument
/// with the offending clause on malformed input.
[[nodiscard]] std::vector<FaultSpec> parse_fault_spec(const std::string& spec);

class FaultPlan {
 public:
  FaultPlan() = default;
  FaultPlan(const FaultPlan&) = delete;
  FaultPlan& operator=(const FaultPlan&) = delete;

  void add(const FaultSpec& spec) { specs_.push_back(spec); }
  /// Parses `spec` and adds every clause.
  void add_spec_string(const std::string& spec);

  [[nodiscard]] const std::vector<FaultSpec>& specs() const { return specs_; }
  [[nodiscard]] bool empty() const { return specs_.empty(); }

  /// Interposes injectors on every link a spec matches and schedules the
  /// flap timeline. Call exactly once, after the topology is built and
  /// before the run. Throws std::invalid_argument if a spec matches no
  /// link (a typo would otherwise silently run the healthy fabric) or on a
  /// second call.
  void install(sim::Simulator& simulator, const std::vector<LinkRef>& links,
               std::uint64_t seed = 0xfa17);

  [[nodiscard]] bool installed() const { return installed_; }
  [[nodiscard]] std::size_t num_points() const { return points_.size(); }

  /// The injector interposed on src->dst, or nullptr (for tests).
  [[nodiscard]] net::FaultInjector* point_between(const std::string& src,
                                                  const std::string& dst);

  // --- Aggregates over every interposed injector ---
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t bleached() const;
  [[nodiscard]] std::uint64_t forwarded() const;
  [[nodiscard]] std::uint64_t delayed_in_flight() const;

  /// Registers every injector's instruments, labelled `link=<src>-><dst>`.
  void bind_metrics(telemetry::MetricsRegistry& registry) const;

 private:
  struct Point {
    std::string src;
    std::string dst;
    std::unique_ptr<net::FaultInjector> node;
  };

  Point& ensure_point(sim::Simulator& simulator, const LinkRef& ref,
                      std::uint64_t seed);

  std::vector<FaultSpec> specs_;
  std::vector<std::unique_ptr<Point>> points_;
  bool installed_ = false;
};

}  // namespace pmsb::faults
