// The paper's two algorithms as pure, side-effect-free functions.
//
// Algorithm 1 (PMSB, switch side): mark a packet iff the port buffer exceeds
// the per-port threshold AND the packet's queue exceeds its per-queue filter
// threshold (Eq. 6). The second condition is the "selective blindness": a
// packet from an un-congested queue is spared even though the port qualifies.
//
// Algorithm 2 (PMSB(e), end-host side): on receiving an ECN-marked ACK, the
// sender ignores the mark if its current RTT is below the RTT threshold —
// a small RTT proves the flow's own path is not congested, so the mark was
// caused by other queues sharing the port.
//
// Keeping these as free functions makes the marking scheme and the transport
// thin adapters and lets unit tests enumerate the full truth tables.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace pmsb::core {

/// Eq. 6: per-queue filter threshold, the queue's weight share of the port
/// threshold. `filter_scale` (default 1.0) is an ablation knob: <1 makes the
/// blindness more aggressive (more marks accepted, risking false positives),
/// >1 more conservative (risking false negatives) — the trade-off of §III.
[[nodiscard]] constexpr double pmsb_queue_threshold(double weight, double weight_sum,
                                                    std::uint64_t port_threshold_bytes,
                                                    double filter_scale = 1.0) {
  return weight / weight_sum * static_cast<double>(port_threshold_bytes) * filter_scale;
}

/// Algorithm 1 (PMSB). Lengths and thresholds are in bytes.
[[nodiscard]] constexpr bool pmsb_should_mark(std::uint64_t port_length,
                                              std::uint64_t port_threshold,
                                              std::uint64_t queue_length,
                                              double weight, double weight_sum,
                                              double filter_scale = 1.0) {
  if (port_length < port_threshold) return false;  // lines 1-3
  const double queue_threshold =
      pmsb_queue_threshold(weight, weight_sum, port_threshold, filter_scale);  // line 4
  return static_cast<double>(queue_length) >= queue_threshold;  // lines 5-9
}

/// Algorithm 2 (PMSB(e)). Returns true if the sender should IGNORE the
/// congestion signal carried by the current ACK.
[[nodiscard]] constexpr bool pmsbe_ignore_mark(bool is_mark, sim::TimeNs cur_rtt,
                                               sim::TimeNs rtt_threshold) {
  if (!is_mark) return true;                 // lines 1-3: nothing to react to
  if (cur_rtt < rtt_threshold) return true;  // lines 4-6: selective blindness
  return false;                              // lines 7-8: accept the back-off
}

}  // namespace pmsb::core
