// ECN threshold math from the paper (§II Eq. 1-2, §IV Eq. 5-12, Thm. IV.1).
//
// All functions work in bytes and nanoseconds; helpers convert from the
// paper's packet-count units at the call site.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace pmsb::core {

/// Eq. 1 / Eq. 5: the standard (per-port) ECN marking threshold
/// K = C * RTT * lambda, in bytes.
[[nodiscard]] inline std::uint64_t standard_threshold_bytes(sim::RateBps capacity,
                                                            sim::TimeNs rtt,
                                                            double lambda) {
  const double bytes =
      static_cast<double>(capacity) / 8.0 * sim::to_seconds(rtt) * lambda;
  return static_cast<std::uint64_t>(std::llround(bytes));
}

/// Eq. 2: fractional per-queue threshold K_i = w_i / sum(w) * C * RTT * lambda.
[[nodiscard]] inline std::uint64_t fractional_threshold_bytes(sim::RateBps capacity,
                                                              sim::TimeNs rtt,
                                                              double lambda,
                                                              double weight,
                                                              double weight_sum) {
  return static_cast<std::uint64_t>(std::llround(
      weight / weight_sum *
      static_cast<double>(standard_threshold_bytes(capacity, rtt, lambda))));
}

/// gamma_i = w_i / sum_j w_j (the queue's guaranteed bandwidth share).
[[nodiscard]] constexpr double bandwidth_share(double weight, double weight_sum) {
  return weight / weight_sum;
}

/// Theorem IV.1: the per-queue marking threshold must exceed
/// gamma_i * C * RTT / 7 to avoid throughput loss. Returns that lower bound
/// in bytes (exclusive bound: k_i must be strictly greater).
[[nodiscard]] inline double theorem41_min_queue_threshold_bytes(sim::RateBps capacity,
                                                                sim::TimeNs rtt,
                                                                double weight,
                                                                double weight_sum) {
  const double cxrtt = static_cast<double>(sim::bdp_bytes(capacity, rtt));
  return bandwidth_share(weight, weight_sum) * cxrtt / 7.0;
}

/// Port threshold recommended by §VI: the sum of all queues' Theorem IV.1
/// lower bounds, i.e. C * RTT / 7 (in bytes), independent of the weights.
[[nodiscard]] inline double recommended_port_threshold_bytes(sim::RateBps capacity,
                                                             sim::TimeNs rtt) {
  return static_cast<double>(sim::bdp_bytes(capacity, rtt)) / 7.0;
}

// --- Steady-state analysis helpers (Eq. 7-11), used by unit tests and the
// --- threshold-bound ablation bench to check the derivation numerically.

/// Eq. 8: maximum length of queue i, Q_i^max = k_i + n_i (bytes; n_i flows
/// each overshoot by one segment of `mss` bytes).
[[nodiscard]] constexpr double q_max_bytes(double k_bytes, double n_flows, double mss) {
  return k_bytes + n_flows * mss;
}

/// Eq. 9: oscillation amplitude
/// A_i = 1/2 * sqrt(2 * n_i * (gamma_i * C * RTT + k_i)) in segments; here in
/// bytes with every term expressed in bytes (amplitude scales with sqrt(mss)).
[[nodiscard]] inline double oscillation_amplitude_bytes(double n_flows, double gamma,
                                                        double cxrtt_bytes,
                                                        double k_bytes, double mss) {
  // Work in segments as the paper does, then convert back to bytes.
  const double cxrtt_seg = cxrtt_bytes / mss;
  const double k_seg = k_bytes / mss;
  const double amp_seg = 0.5 * std::sqrt(2.0 * n_flows * (gamma * cxrtt_seg + k_seg));
  return amp_seg * mss;
}

/// Q_i^min = Q_i^max - A_i (bytes).
[[nodiscard]] inline double q_min_bytes(double k_bytes, double n_flows, double gamma,
                                        double cxrtt_bytes, double mss) {
  return q_max_bytes(k_bytes, n_flows, mss) -
         oscillation_amplitude_bytes(n_flows, gamma, cxrtt_bytes, k_bytes, mss);
}

/// Eq. 11: the flow count that minimises Q_i^min,
/// n_i = (gamma_i * C * RTT + k_i) / 8 (in segments).
[[nodiscard]] inline double worst_case_flow_count(double gamma, double cxrtt_bytes,
                                                  double k_bytes, double mss) {
  return (gamma * cxrtt_bytes / mss + k_bytes / mss) / 8.0;
}

/// Eq. 10: lower bound of Q_i^min over all n_i:
/// Q_i^- = 7/8 * k_i - gamma_i * C * RTT / 8 (bytes).
[[nodiscard]] constexpr double q_min_lower_bound_bytes(double k_bytes, double gamma,
                                                       double cxrtt_bytes) {
  return 7.0 / 8.0 * k_bytes - gamma * cxrtt_bytes / 8.0;
}

}  // namespace pmsb::core
