#include "telemetry/profiler.hpp"

#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "telemetry/run_report.hpp"

namespace pmsb::telemetry {

namespace {

[[nodiscard]] std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Sim-time deltas between consecutive dispatches span same-timestamp ties
// (0 ns) up to second-scale timers; decade buckets cover that whole range.
[[nodiscard]] std::vector<double> delta_bounds() {
  return {0.0, 1.0, 10.0, 100.0, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9};
}

}  // namespace

Profiler::Profiler() : sim_delta_ns_(delta_bounds()) {}

Profiler::~Profiler() { detach(); }

Profiler::KindId Profiler::intern(const std::string& name) {
  const auto it = kind_index_.find(name);
  if (it != kind_index_.end()) return it->second;
  const auto id = static_cast<KindId>(kinds_.size());
  kinds_.push_back(KindStats{name, 0, 0, 0});
  kind_index_.emplace(name, id);
  return id;
}

void Profiler::attach(sim::Simulator& simulator) {
  detach();
  sim_ = &simulator;
  sim_->set_dispatch_hook(this);
}

void Profiler::detach() {
  if (sim_ != nullptr && sim_->dispatch_hook() == this) {
    sim_->set_dispatch_hook(nullptr);
  }
  sim_ = nullptr;
}

void Profiler::scope_begin(KindId kind) {
  stack_.push_back(ScopeFrame{kind, wall_now_ns(), 0});
}

void Profiler::scope_end() {
  if (stack_.empty()) {
    throw std::logic_error("Profiler::scope_end without matching scope_begin");
  }
  const ScopeFrame frame = stack_.back();
  stack_.pop_back();
  const auto elapsed =
      static_cast<std::uint64_t>(wall_now_ns() - frame.start_ns);
  KindStats& k = kinds_[frame.kind];
  ++k.count;
  k.total_wall_ns += elapsed;
  // Self-time excludes whatever nested scopes already claimed; clamp against
  // clock granularity making children appear longer than the parent.
  k.self_wall_ns += elapsed >= frame.child_ns ? elapsed - frame.child_ns : 0;
  if (!stack_.empty()) stack_.back().child_ns += elapsed;
}

void Profiler::begin_dispatch(sim::TimeNs /*now*/, sim::TimeNs delta) {
  ++dispatches_;
  sim_delta_ns_.observe(static_cast<double>(delta));
  dispatch_start_ns_ = wall_now_ns();
}

void Profiler::end_dispatch() {
  dispatch_wall_ns_ +=
      static_cast<std::uint64_t>(wall_now_ns() - dispatch_start_ns_);
}

std::string Profiler::to_json() const {
  // Keys are emitted sorted at every level so the document is a fixed point
  // of telemetry::json round-tripping (json::Value stores objects in a
  // sorted map). Adding a field? Keep it in alphabetical order.
  JsonWriter w;
  w.begin_object();
  w.key("kernel").begin_object();
  w.key("dispatch_wall_ns").value(dispatch_wall_ns_);
  w.key("dispatches").value(dispatches_);
  w.key("events_cancelled").value(events_cancelled_);
  w.key("events_scheduled").value(events_scheduled_);
  w.key("max_heap_depth")
      .value(static_cast<std::uint64_t>(sim_ != nullptr ? sim_->max_heap_depth() : 0));
  w.key("packet_ids_allocated")
      .value(sim_ != nullptr ? sim_->packet_ids_allocated() : 0);
  w.key("queue_backend")
      .value(sim_ != nullptr ? sim::queue_backend_name(sim_->queue_backend())
                             : "heap");
  w.key("queue_compactions")
      .value(sim_ != nullptr ? sim_->queue_compactions() : 0);
  w.key("sim_delta_ns").begin_object();
  w.key("buckets").begin_array();
  for (std::size_t i = 0; i < sim_delta_ns_.num_buckets(); ++i) {
    w.begin_object();
    w.key("count").value(sim_delta_ns_.bucket_count(i));
    const double le = sim_delta_ns_.upper_bound(i);
    if (std::isinf(le)) {
      w.key("le").value("inf");
    } else {
      w.key("le").value(static_cast<std::uint64_t>(le));
    }
    w.end_object();
  }
  w.end_array();
  w.key("count").value(sim_delta_ns_.count());
  w.key("sum").value(static_cast<std::uint64_t>(sim_delta_ns_.sum()));
  w.end_object();  // sim_delta_ns
  w.end_object();  // kernel
  w.key("schema").value("pmsb.profile/1");
  w.key("scopes").begin_array();
  // kind_index_ is already sorted by name.
  for (const auto& [name, id] : kind_index_) {
    const KindStats& k = kinds_[id];
    w.begin_object();
    w.key("count").value(k.count);
    w.key("name").value(name);
    w.key("self_wall_ns").value(k.self_wall_ns);
    w.key("total_wall_ns").value(k.total_wall_ns);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

bool maybe_write_profile_json(const Profiler& profiler) {
  const char* path = std::getenv("PMSB_PROFILE_JSON");
  if (path == nullptr || path[0] == '\0') return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw std::runtime_error(std::string("cannot write profile JSON: ") + path);
  }
  out << profiler.to_json() << "\n";
  return true;
}

}  // namespace pmsb::telemetry
