#include "telemetry/json_reader.hpp"

#include <cstdio>
#include <cstdlib>

namespace pmsb::telemetry::json {

namespace {

/// Recursive-descent parser over a complete text. Keeps a depth counter so
/// hostile or corrupted inputs cannot overflow the native stack.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 256;

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("json: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') return;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xf0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3f));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
  }

  /// The 4 hex digits of a \uXXXX escape (the "\u" already consumed).
  unsigned parse_hex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("invalid \\u escape digit");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = parse_hex4();
          if (code >= 0xdc00 && code <= 0xdfff) {
            fail("lone low surrogate in \\u escape");
          }
          if (code >= 0xd800 && code <= 0xdbff) {
            // High surrogate: must pair with \uDC00..\uDFFF to form one
            // supplementary-plane code point (RFC 8259 section 7).
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned low = parse_hex4();
            if (low < 0xdc00 || low > 0xdfff) {
              fail("high surrogate not followed by low surrogate");
            }
            code = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
          }
          append_utf8(out, code);
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    Value v;
    v.kind = Value::Kind::kNumber;
    v.raw_number = text_.substr(start, pos_ - start);
    char* end = nullptr;
    v.number = std::strtod(v.raw_number.c_str(), &end);
    if (end == v.raw_number.c_str() || *end != '\0') fail("malformed number");
    return v;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': {
        v.kind = Value::Kind::kObject;
        ++pos_;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          break;
        }
        while (true) {
          skip_ws();
          std::string key = parse_string();
          skip_ws();
          expect(':');
          v.object[std::move(key)] = parse_value();
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect('}');
          break;
        }
        break;
      }
      case '[': {
        v.kind = Value::Kind::kArray;
        ++pos_;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          break;
        }
        while (true) {
          v.array.push_back(parse_value());
          skip_ws();
          if (peek() == ',') {
            ++pos_;
            continue;
          }
          expect(']');
          break;
        }
        break;
      }
      case '"':
        v.kind = Value::Kind::kString;
        v.string = parse_string();
        break;
      case 't':
        if (!consume_literal("true")) fail("invalid literal");
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        break;
      case 'f':
        if (!consume_literal("false")) fail("invalid literal");
        v.kind = Value::Kind::kBool;
        v.boolean = false;
        break;
      case 'n':
        if (!consume_literal("null")) fail("invalid literal");
        v.kind = Value::Kind::kNull;
        break;
      default:
        v = parse_number();
        break;
    }
    --depth_;
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

const Value& Value::at(const std::string& key) const {
  const Value* v = find(key);
  if (v == nullptr) throw ParseError("json: missing key '" + key + "'");
  return *v;
}

Value parse(const std::string& text) { return Parser(text).parse_document(); }

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_value(std::string& out, const Value& v) {
  switch (v.kind) {
    case Value::Kind::kNull:
      out += "null";
      break;
    case Value::Kind::kBool:
      out += v.boolean ? "true" : "false";
      break;
    case Value::Kind::kNumber:
      if (!v.raw_number.empty()) {
        out += v.raw_number;
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", v.number);
        out += buf;
      }
      break;
    case Value::Kind::kString:
      append_escaped(out, v.string);
      break;
    case Value::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Value& e : v.array) {
        if (!first) out += ',';
        first = false;
        append_value(out, e);
      }
      out += ']';
      break;
    }
    case Value::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.object) {
        if (!first) out += ',';
        first = false;
        append_escaped(out, k);
        out += ':';
        append_value(out, e);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

std::string to_json(const Value& value) {
  std::string out;
  append_value(out, value);
  return out;
}

}  // namespace pmsb::telemetry::json
