#include "telemetry/manifest_reader.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/json_reader.hpp"

namespace pmsb::telemetry {

namespace {

[[noreturn]] void fail(const std::string& origin, const std::string& what) {
  throw std::runtime_error("run manifest " + origin + ": " + what);
}

std::map<std::string, std::string> string_map(const json::Value& root,
                                              const char* key,
                                              const std::string& origin) {
  std::map<std::string, std::string> out;
  const json::Value* section = root.find(key);
  if (section == nullptr) return out;  // tolerated: old writers may omit it
  if (!section->is_object()) fail(origin, std::string(key) + " is not an object");
  for (const auto& [k, v] : section->object) {
    if (!v.is_string()) fail(origin, std::string(key) + "." + k + " is not a string");
    out[k] = v.string;
  }
  return out;
}

}  // namespace

double ManifestData::info_number(const std::string& key, double fallback) const {
  const auto it = info.find(key);
  if (it == info.end()) return fallback;
  const char* begin = it->second.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin || *end != '\0') return fallback;
  return value;
}

ManifestData parse_run_manifest(const std::string& text, const std::string& origin) {
  json::Value root;
  try {
    root = json::parse(text);
  } catch (const json::ParseError& e) {
    fail(origin, e.what());
  }
  if (!root.is_object()) fail(origin, "document is not an object");

  ManifestData out;
  const json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    fail(origin, "missing schema string");
  }
  out.schema = schema->string;
  if (const json::Value* tool = root.find("tool"); tool != nullptr && tool->is_string()) {
    out.tool = tool->string;
  }
  if (const json::Value* seed = root.find("seed")) {
    if (!seed->is_number()) fail(origin, "seed is not a number");
    out.seed = std::strtoull(seed->raw_number.c_str(), nullptr, 10);
  }
  if (const json::Value* v = root.find("wall_clock_s")) {
    if (!v->is_number()) fail(origin, "wall_clock_s is not a number");
    out.wall_clock_s = v->number;
  }
  if (const json::Value* v = root.find("sim_time_us")) {
    if (!v->is_number()) fail(origin, "sim_time_us is not a number");
    out.sim_time_us = v->number;
  }
  if (const json::Value* v = root.find("peak_rss_bytes")) {
    if (!v->is_number()) fail(origin, "peak_rss_bytes is not a number");
    out.peak_rss_bytes = v->number;
  }
  if (const json::Value* v = root.find("utime_s")) {
    if (!v->is_number()) fail(origin, "utime_s is not a number");
    out.utime_s = v->number;
  }
  if (const json::Value* v = root.find("stime_s")) {
    if (!v->is_number()) fail(origin, "stime_s is not a number");
    out.stime_s = v->number;
  }
  if (const json::Value* v = root.find("major_page_faults")) {
    if (!v->is_number()) fail(origin, "major_page_faults is not a number");
    out.major_page_faults = v->number;
  }
  out.config = string_map(root, "config", origin);
  out.info = string_map(root, "info", origin);
  if (const json::Value* results = root.find("results")) {
    if (!results->is_object()) fail(origin, "results is not an object");
    for (const auto& [k, v] : results->object) {
      if (!v.is_number()) fail(origin, "results." + k + " is not a number");
      out.results[k] = v.number;
    }
  }
  return out;
}

ManifestData read_run_manifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) fail(path, "read failed");
  return parse_run_manifest(buf.str(), path);
}

}  // namespace pmsb::telemetry
