#include "telemetry/run_report.hpp"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "telemetry/process_stats.hpp"

namespace pmsb::telemetry {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* build_git_describe() {
#ifdef PMSB_GIT_DESCRIBE
  return PMSB_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

void JsonWriter::before_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!items_.empty()) {
    if (items_.back() > 0) out_ += ',';
    ++items_.back();
  }
}

void JsonWriter::raw_string(const std::string& s) {
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  items_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  items_.push_back(0);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  if (!items_.empty()) {
    if (items_.back() > 0) out_ += ',';
    ++items_.back();
  }
  raw_string(k);
  out_ += ':';
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  before_value();
  raw_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v) {
  before_value();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  before_value();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::raw_value(const std::string& json) {
  before_value();
  out_ += json;
  return *this;
}

RunManifest::RunManifest(std::string tool)
    : tool_(std::move(tool)), wall_start_ns_(wall_now_ns()) {}

std::string RunManifest::to_json(const MetricsRegistry* registry) const {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmsb.run_manifest/1");
  w.key("tool").value(tool_);
  w.key("git").value(build_git_describe());
  w.key("seed").value(seed_);
  const double wall_s =
      static_cast<double>(wall_now_ns() - wall_start_ns_) * 1e-9;
  w.key("wall_clock_s").value(wall_s);
  w.key("sim_time_us").value(sim_time_us_);
  w.key("peak_rss_bytes").value(peak_rss_bytes());
  const ProcessUsage usage = process_usage();
  w.key("utime_s").value(usage.utime_s);
  w.key("stime_s").value(usage.stime_s);
  w.key("major_page_faults").value(usage.major_page_faults);

  if (!profile_json_.empty()) {
    w.key("profile").raw_value(profile_json_);
  }

  w.key("config").begin_object();
  for (const auto& [k, v] : config_) w.key(k).value(v);
  w.end_object();

  w.key("info").begin_object();
  for (const auto& [k, v] : info_) w.key(k).value(v);
  w.end_object();

  w.key("results").begin_object();
  for (const auto& [k, v] : results_) w.key(k).value(v);
  w.end_object();

  w.key("metrics").begin_array();
  if (registry != nullptr) {
    for (const auto& snap : registry->collect_sorted()) {
      w.begin_object();
      w.key("name").value(snap.name);
      w.key("kind").value(instrument_kind_name(snap.kind));
      if (!snap.unit.empty()) w.key("unit").value(snap.unit);
      w.key("labels").begin_object();
      for (const auto& [k, v] : snap.labels) w.key(k).value(v);
      w.end_object();
      if (snap.kind == InstrumentKind::kHistogram && snap.histogram != nullptr) {
        const Histogram& h = *snap.histogram;
        w.key("count").value(h.count());
        w.key("sum").value(h.sum());
        w.key("buckets").begin_array();
        for (std::size_t i = 0; i < h.num_buckets(); ++i) {
          w.begin_object();
          w.key("le");
          if (i + 1 == h.num_buckets()) {
            w.value("inf");
          } else {
            w.value(h.upper_bound(i));
          }
          w.key("count").value(h.bucket_count(i));
          w.end_object();
        }
        w.end_array();
      } else {
        w.key("value").value(snap.value);
      }
      w.end_object();
    }
  }
  w.end_array();

  w.end_object();
  return w.str();
}

void RunManifest::write(const std::string& path, const MetricsRegistry* registry) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("RunManifest::write: cannot open " + path);
  out << to_json(registry) << '\n';
}

}  // namespace pmsb::telemetry
