// Unified metrics layer for dcnsim: named Counter / Gauge / Histogram
// instruments with labels, collected by a MetricsRegistry.
//
// Design rules (same discipline as sim/logging.hpp):
//  - the steady-state path of an owned Counter is a single integer add —
//    no strings, no locks, no formatting, no branches. The kernel is
//    single-threaded, so a plain (relaxed) add is exactly as strong as the
//    hardware needs;
//  - all naming/label work happens once at registration time; the handle a
//    component holds is a stable pointer into the registry;
//  - components that already keep their own cheap counters (PortStats,
//    SenderStats) are exposed through *bound* instruments: the registry
//    reads the existing cell at collection time, so the hot path pays
//    nothing at all and the exported value can never drift from the legacy
//    struct;
//  - values that are a pure function of live state (queue backlog, cwnd,
//    heap depth) are *probe* instruments: a callback evaluated only when a
//    sampler or manifest writer collects.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pmsb::sim {
class Simulator;
}

namespace pmsb::telemetry {

/// Label set attached to an instrument, e.g. {{"switch","leaf0"},{"port","2"}}.
/// Stored sorted by key; (name, labels) identifies an instrument uniquely.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical identity string: `name{k1=v1,k2=v2}` with keys sorted.
[[nodiscard]] std::string instrument_key(const std::string& name, const Labels& labels);

/// Monotone event count. Owned by the registry; the holder increments.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-written value (set/add), e.g. an occupancy or a rate.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double d) { value_ += d; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram. `upper_bounds` must be strictly increasing; an
/// implicit +inf bucket is appended. A value lands in the FIRST bucket whose
/// upper bound is >= the value (inclusive upper edges), so observe(bound)
/// counts in that bound's own bucket.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) {
    ++count_;
    sum_ += v;
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++buckets_[i];
  }

  /// Number of buckets including the +inf overflow bucket.
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  /// Upper bound of bucket `i`; the last bucket reports +inf.
  [[nodiscard]] double upper_bound(std::size_t i) const;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const { return buckets_.at(i); }
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1 (overflow)
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* instrument_kind_name(InstrumentKind kind);

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- Owned instruments (registry holds the cell) ---
  /// Registers (or looks up) a counter. Re-registering the same
  /// (name, labels) returns the SAME instrument; a kind clash throws.
  Counter& counter(const std::string& name, const Labels& labels = {},
                   const std::string& unit = "");
  Gauge& gauge(const std::string& name, const Labels& labels = {},
               const std::string& unit = "");
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds,
                       const Labels& labels = {}, const std::string& unit = "");

  // --- Bound / probe instruments (value read at collection time) ---
  /// Exposes an externally owned cell as a counter (e.g. a PortStats field).
  /// The cell must outlive the registry. Duplicate registration throws: two
  /// sources for one instrument would be a bug.
  void bind_counter(const std::string& name, const Labels& labels,
                    const std::uint64_t* cell, const std::string& unit = "");
  /// Counter whose value is computed on demand (e.g. a sum over flows).
  void counter_fn(const std::string& name, const Labels& labels,
                  std::function<std::uint64_t()> fn, const std::string& unit = "");
  /// Gauge whose value is computed on demand (e.g. live queue backlog).
  void gauge_fn(const std::string& name, const Labels& labels,
                std::function<double()> fn, const std::string& unit = "");

  // --- Collection ---
  struct Snapshot {
    std::string name;
    Labels labels;
    std::string unit;
    InstrumentKind kind = InstrumentKind::kCounter;
    double value = 0.0;                  ///< counter/gauge value
    const Histogram* histogram = nullptr;  ///< non-null for histograms
  };

  /// Evaluates every instrument (including probes) in registration order.
  [[nodiscard]] std::vector<Snapshot> collect() const;

  /// collect(), sorted by canonical instrument key. Exports (manifest JSON,
  /// CSV) use this so two runs that register instruments in a different
  /// order still serialize identically — a requirement for the regression
  /// plane's byte-stable artifacts.
  [[nodiscard]] std::vector<Snapshot> collect_sorted() const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool has(const std::string& name, const Labels& labels = {}) const;
  /// Current value of a counter/gauge instrument; throws if absent or a
  /// histogram. Intended for tests and report glue, not hot paths.
  [[nodiscard]] double value(const std::string& name, const Labels& labels = {}) const;
  /// Histogram lookup; throws if absent or not a histogram.
  [[nodiscard]] const Histogram& histogram_at(const std::string& name,
                                              const Labels& labels = {}) const;

 private:
  struct Entry {
    std::string name;
    Labels labels;
    std::string unit;
    InstrumentKind kind = InstrumentKind::kCounter;
    // Exactly one of the following value sources is active.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
    const std::uint64_t* bound_u64 = nullptr;
    std::function<std::uint64_t()> fn_u64;
    std::function<double()> fn_f64;

    [[nodiscard]] double current_value() const;
  };

  Entry& emplace(const std::string& name, const Labels& labels,
                 const std::string& unit, InstrumentKind kind);
  [[nodiscard]] const Entry* find(const std::string& name, const Labels& labels) const;

  std::deque<Entry> entries_;  // deque: stable addresses for returned handles
  std::unordered_map<std::string, std::size_t> index_;
};

/// Publishes the simulation kernel's own counters (events executed /
/// cancelled, max heap depth, pending events, and — when the build enables
/// PMSB_PROFILE_DISPATCH — wall-clock nanoseconds spent in event callbacks)
/// as probe instruments. The simulator must outlive the registry.
void bind_simulator_metrics(MetricsRegistry& registry, const sim::Simulator& simulator);

}  // namespace pmsb::telemetry
