// Minimal JSON reader — the counterpart of JsonWriter (run_report.hpp).
//
// The telemetry plane writes pmsb.run_manifest/1 and pmsb.sweep_report/1
// documents; resumable sweeps need to read them back. parse() builds a
// Value tree from a complete JSON text. Scope matches what our writers
// emit: objects, arrays, strings (with the writer's escape set plus \uXXXX),
// numbers, booleans, null. Object keys are stored in a sorted map — our
// writers emit keys from sorted maps, so no information is lost.
//
// Numbers keep their raw token alongside the double so 64-bit integers
// (seeds) survive values above 2^53.
#pragma once

#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace pmsb::telemetry::json {

/// Thrown by parse() with a byte offset and what was expected there.
class ParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Value {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string raw_number;  ///< untouched numeric token (64-bit-int safe)
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  [[nodiscard]] bool is_null() const { return kind == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }

  /// Member lookup on an object; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(const std::string& key) const;
  /// Member lookup that throws ParseError when absent or not an object.
  [[nodiscard]] const Value& at(const std::string& key) const;
};

/// Parses `text` as one JSON document (trailing whitespace allowed, trailing
/// garbage is an error). Throws ParseError on malformed or truncated input.
[[nodiscard]] Value parse(const std::string& text);

/// Serializes a Value back to JSON text with JsonWriter's escape set, keys
/// in sorted-map order, and numbers re-emitted from their raw token. A
/// document written with sorted keys (pmsb.profile/1) satisfies
/// to_json(parse(text)) == text — the byte-stability the regression tests
/// rely on for profile round-trips.
[[nodiscard]] std::string to_json(const Value& value);

}  // namespace pmsb::telemetry::json
