#include "telemetry/metrics.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/simulator.hpp"

namespace pmsb::telemetry {

std::string instrument_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name;
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

const char* instrument_kind_name(InstrumentKind kind) {
  switch (kind) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must be strictly increasing");
    }
  }
}

double Histogram::upper_bound(std::size_t i) const {
  if (i >= buckets_.size()) throw std::out_of_range("Histogram::upper_bound");
  if (i == bounds_.size()) return std::numeric_limits<double>::infinity();
  return bounds_[i];
}

double MetricsRegistry::Entry::current_value() const {
  if (counter) return static_cast<double>(counter->value());
  if (gauge) return gauge->value();
  if (bound_u64 != nullptr) return static_cast<double>(*bound_u64);
  if (fn_u64) return static_cast<double>(fn_u64());
  if (fn_f64) return fn_f64();
  return 0.0;  // histogram entries carry no scalar value
}

MetricsRegistry::Entry& MetricsRegistry::emplace(const std::string& name,
                                                 const Labels& labels,
                                                 const std::string& unit,
                                                 InstrumentKind kind) {
  const std::string key = instrument_key(name, labels);
  if (index_.count(key) != 0) {
    throw std::invalid_argument("MetricsRegistry: duplicate instrument " + key);
  }
  entries_.push_back({});
  Entry& e = entries_.back();
  e.name = name;
  e.labels = labels;
  std::sort(e.labels.begin(), e.labels.end());
  e.unit = unit;
  e.kind = kind;
  index_[key] = entries_.size() - 1;
  return e;
}

const MetricsRegistry::Entry* MetricsRegistry::find(const std::string& name,
                                                    const Labels& labels) const {
  const auto it = index_.find(instrument_key(name, labels));
  if (it == index_.end()) return nullptr;
  return &entries_[it->second];
}

Counter& MetricsRegistry::counter(const std::string& name, const Labels& labels,
                                  const std::string& unit) {
  if (const Entry* e = find(name, labels)) {
    if (e->kind != InstrumentKind::kCounter || !e->counter) {
      throw std::invalid_argument("MetricsRegistry: " + instrument_key(name, labels) +
                                  " exists with a different kind");
    }
    return *e->counter;
  }
  Entry& e = emplace(name, labels, unit, InstrumentKind::kCounter);
  e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                              const std::string& unit) {
  if (const Entry* e = find(name, labels)) {
    if (e->kind != InstrumentKind::kGauge || !e->gauge) {
      throw std::invalid_argument("MetricsRegistry: " + instrument_key(name, labels) +
                                  " exists with a different kind");
    }
    return *e->gauge;
  }
  Entry& e = emplace(name, labels, unit, InstrumentKind::kGauge);
  e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds,
                                      const Labels& labels, const std::string& unit) {
  if (const Entry* e = find(name, labels)) {
    if (e->kind != InstrumentKind::kHistogram) {
      throw std::invalid_argument("MetricsRegistry: " + instrument_key(name, labels) +
                                  " exists with a different kind");
    }
    return *e->hist;
  }
  Entry& e = emplace(name, labels, unit, InstrumentKind::kHistogram);
  e.hist = std::make_unique<Histogram>(std::move(upper_bounds));
  return *e.hist;
}

void MetricsRegistry::bind_counter(const std::string& name, const Labels& labels,
                                   const std::uint64_t* cell, const std::string& unit) {
  if (cell == nullptr) {
    throw std::invalid_argument("MetricsRegistry::bind_counter: null cell");
  }
  Entry& e = emplace(name, labels, unit, InstrumentKind::kCounter);
  e.bound_u64 = cell;
}

void MetricsRegistry::counter_fn(const std::string& name, const Labels& labels,
                                 std::function<std::uint64_t()> fn,
                                 const std::string& unit) {
  Entry& e = emplace(name, labels, unit, InstrumentKind::kCounter);
  e.fn_u64 = std::move(fn);
}

void MetricsRegistry::gauge_fn(const std::string& name, const Labels& labels,
                               std::function<double()> fn, const std::string& unit) {
  Entry& e = emplace(name, labels, unit, InstrumentKind::kGauge);
  e.fn_f64 = std::move(fn);
}

std::vector<MetricsRegistry::Snapshot> MetricsRegistry::collect() const {
  std::vector<Snapshot> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) {
    Snapshot s;
    s.name = e.name;
    s.labels = e.labels;
    s.unit = e.unit;
    s.kind = e.kind;
    s.value = e.current_value();
    s.histogram = e.hist.get();
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<MetricsRegistry::Snapshot> MetricsRegistry::collect_sorted() const {
  auto out = collect();
  std::sort(out.begin(), out.end(), [](const Snapshot& a, const Snapshot& b) {
    return instrument_key(a.name, a.labels) < instrument_key(b.name, b.labels);
  });
  return out;
}

bool MetricsRegistry::has(const std::string& name, const Labels& labels) const {
  return find(name, labels) != nullptr;
}

double MetricsRegistry::value(const std::string& name, const Labels& labels) const {
  const Entry* e = find(name, labels);
  if (e == nullptr) {
    throw std::out_of_range("MetricsRegistry: no instrument " +
                            instrument_key(name, labels));
  }
  if (e->kind == InstrumentKind::kHistogram) {
    throw std::invalid_argument("MetricsRegistry::value: " +
                                instrument_key(name, labels) + " is a histogram");
  }
  return e->current_value();
}

const Histogram& MetricsRegistry::histogram_at(const std::string& name,
                                               const Labels& labels) const {
  const Entry* e = find(name, labels);
  if (e == nullptr || e->kind != InstrumentKind::kHistogram) {
    throw std::out_of_range("MetricsRegistry: no histogram " +
                            instrument_key(name, labels));
  }
  return *e->hist;
}

void bind_simulator_metrics(MetricsRegistry& registry, const sim::Simulator& simulator) {
  const sim::Simulator* s = &simulator;
  registry.counter_fn("sim.events_executed", {}, [s] { return s->executed_events(); },
                      "events");
  registry.counter_fn("sim.events_cancelled", {}, [s] { return s->cancelled_events(); },
                      "events");
  registry.gauge_fn("sim.pending_events", {},
                    [s] { return static_cast<double>(s->pending_events()); }, "events");
  registry.gauge_fn("sim.max_heap_depth", {},
                    [s] { return static_cast<double>(s->max_heap_depth()); }, "events");
  registry.counter_fn("sim.dispatch_wall_ns", {}, [s] { return s->dispatch_wall_ns(); },
                      "ns");
}

}  // namespace pmsb::telemetry
