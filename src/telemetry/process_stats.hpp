// Best-effort process-level resource probes.
//
// peak_rss_bytes() reads VmHWM from /proc/self/status on Linux (the
// high-water mark of resident set size, in bytes). On platforms without
// procfs it returns 0 — callers treat 0 as "unknown", never as "no memory".
#pragma once

#include <cstdint>

namespace pmsb::telemetry {

/// Peak resident set size of this process in bytes, or 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

/// CPU-time and paging figures from getrusage(RUSAGE_SELF). All zero on
/// platforms without getrusage — callers treat zeros as "unknown".
struct ProcessUsage {
  double utime_s = 0.0;              ///< user CPU seconds
  double stime_s = 0.0;              ///< system CPU seconds
  std::uint64_t major_page_faults = 0;  ///< faults that hit backing store
};

[[nodiscard]] ProcessUsage process_usage();

}  // namespace pmsb::telemetry
