// Best-effort process-level resource probes.
//
// peak_rss_bytes() reads VmHWM from /proc/self/status on Linux (the
// high-water mark of resident set size, in bytes). On platforms without
// procfs it returns 0 — callers treat 0 as "unknown", never as "no memory".
#pragma once

#include <cstdint>

namespace pmsb::telemetry {

/// Peak resident set size of this process in bytes, or 0 when unavailable.
[[nodiscard]] std::uint64_t peak_rss_bytes();

}  // namespace pmsb::telemetry
