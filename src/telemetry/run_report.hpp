// Machine-readable run manifest: one JSON document per simulation run.
//
// A RunManifest captures everything needed to compare two runs of the same
// experiment — the full config echo, the seed, the build's git describe
// string, wall-clock and simulated duration, scalar results (FCT summaries),
// and a dump of every instrument in a MetricsRegistry. pmsbsim writes one
// when `metrics_json=` is given; benches write them under
// PMSB_BENCH_MANIFEST_DIR so the BENCH_*.json trajectory has a stable
// schema to track.
//
// Schema (`pmsb.run_manifest/1`):
//   {
//     "schema": "pmsb.run_manifest/1",
//     "tool": "...", "git": "...", "seed": N,
//     "wall_clock_s": W, "sim_time_us": T, "peak_rss_bytes": R,
//     "utime_s": U, "stime_s": S, "major_page_faults": F,
//     "profile": { ... pmsb.profile/1, only when set_profile_json() ... },
//     "config":  { "key": "value", ... },
//     "info":    { "key": "value", ... },
//     "results": { "key": number, ... },
//     "metrics": [
//       {"name": "...", "kind": "counter|gauge", "unit": "...",
//        "labels": {...}, "value": number},
//       {"name": "...", "kind": "histogram", "unit": "...", "labels": {...},
//        "count": N, "sum": S, "buckets": [{"le": bound|"inf", "count": N}]}
//     ]
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/metrics.hpp"

namespace pmsb::telemetry {

/// Minimal streaming JSON writer (objects, arrays, strings, numbers) with
/// correct escaping. Non-finite numbers are emitted as null.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();
  JsonWriter& key(const std::string& k);
  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(bool v);
  /// Splices a pre-serialized JSON document in value position, verbatim.
  /// The caller vouches that `json` is well-formed (used to embed a
  /// pmsb.profile/1 document inside a manifest without re-parsing it).
  JsonWriter& raw_value(const std::string& json);

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void before_value();
  void raw_string(const std::string& s);

  std::string out_;
  // One frame per open container: counts emitted items for comma placement.
  std::vector<std::size_t> items_;
  bool pending_key_ = false;
};

/// The git describe string baked into this build ("unknown" outside git).
[[nodiscard]] const char* build_git_describe();

class RunManifest {
 public:
  /// Starts the wall-clock timer at construction.
  explicit RunManifest(std::string tool);

  void set_seed(std::uint64_t seed) { seed_ = seed; }
  /// Config echo (typically Options::values()): what the run was asked to do.
  void set_config(const std::map<std::string, std::string>& kv) { config_ = kv; }
  void set_config_value(const std::string& key, const std::string& value) {
    config_[key] = value;
  }
  /// Free-form string facts (topology, scheme name, scale mode, ...).
  void set_info(const std::string& key, const std::string& value) {
    info_[key] = value;
  }
  /// Scalar results (FCT means/percentiles, throughputs, ...).
  void set_result(const std::string& key, double value) { results_[key] = value; }
  void set_sim_time_us(double t) { sim_time_us_ = t; }
  /// Embeds a pre-serialized pmsb.profile/1 document under a top-level
  /// "profile" key (empty string = no profile section).
  void set_profile_json(std::string json) { profile_json_ = std::move(json); }

  /// Serializes the manifest; `registry` may be null (no metrics section).
  [[nodiscard]] std::string to_json(const MetricsRegistry* registry) const;

  /// Writes to_json() to `path`; throws on I/O failure.
  void write(const std::string& path, const MetricsRegistry* registry) const;

 private:
  std::string tool_;
  std::uint64_t seed_ = 0;
  double sim_time_us_ = 0.0;
  std::map<std::string, std::string> config_;
  std::map<std::string, std::string> info_;
  std::map<std::string, double> results_;
  std::string profile_json_;
  std::int64_t wall_start_ns_;
};

}  // namespace pmsb::telemetry
