// Per-event-kind kernel profiler with scoped component timers.
//
// A Profiler answers the question the regress plane's bench numbers cannot:
// WHERE do the events/second go? It plugs into the kernel as a
// sim::DispatchHook (wall-clock + sim-time-delta histogram per dispatch,
// schedule/cancel churn) and into components as named RAII scopes
// (ProfileScope) whose self-time excludes nested scopes, so "port.handle"
// and the "sched.*.dequeue" it calls are attributed separately.
//
// Cost contract (same as Port::set_tracer / set_digest): everything is OFF
// by default and costs exactly one null check per instrumented call site.
// A component holds a `Profiler*` (nullptr when off) plus KindIds interned
// once at set_profiler() time — the hot path never touches a string.
//
// Output is a `pmsb.profile/1` JSON document (to_json), spliced verbatim
// into run manifests (`RunManifest::set_profile_json`) and written
// standalone by `profile_json=` / PMSB_PROFILE_JSON. Keys are emitted in
// sorted order at every nesting level, so the document byte-stably
// round-trips through telemetry::json — the property the regression tests
// pin down.
//
// Schema (`pmsb.profile/1`):
//   {
//     "kernel": {
//       "dispatch_wall_ns": W, "dispatches": N,
//       "events_cancelled": N, "events_scheduled": N,
//       "max_heap_depth": N, "packet_ids_allocated": N,
//       "sim_delta_ns": {"buckets": [{"count": N, "le": bound|"inf"}, ...],
//                        "count": N, "sum": S}
//     },
//     "schema": "pmsb.profile/1",
//     "scopes": [ {"count": N, "name": "...", "self_wall_ns": S,
//                  "total_wall_ns": T}, ... ]   // sorted by name
//   }
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::telemetry {

class Profiler final : public sim::DispatchHook {
 public:
  /// Handle for an interned scope kind; hot paths pass these, never strings.
  using KindId = std::uint32_t;

  Profiler();
  ~Profiler() override;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Returns the id for `name`, creating it on first use. Call once per
  /// component at wiring time (set_profiler), not on the packet path.
  [[nodiscard]] KindId intern(const std::string& name);

  /// Installs this profiler as `simulator`'s dispatch hook and remembers the
  /// kernel for the heap-depth / packet-id snapshot in to_json(). Detaches
  /// automatically on destruction (the simulator must still be alive then —
  /// declare the profiler after the scenario that owns the kernel).
  void attach(sim::Simulator& simulator);
  void detach();

  // --- Scope timing (driven by ProfileScope) ---
  void scope_begin(KindId kind);
  void scope_end();

  // --- sim::DispatchHook ---
  void begin_dispatch(sim::TimeNs now, sim::TimeNs delta) override;
  void end_dispatch() override;
  void on_schedule() override { ++events_scheduled_; }
  void on_cancel() override { ++events_cancelled_; }

  // --- Introspection (tests / report glue) ---
  [[nodiscard]] std::uint64_t dispatches() const { return dispatches_; }
  [[nodiscard]] std::uint64_t dispatch_wall_ns() const { return dispatch_wall_ns_; }
  [[nodiscard]] std::uint64_t events_scheduled() const { return events_scheduled_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return events_cancelled_; }
  [[nodiscard]] const Histogram& sim_delta_ns() const { return sim_delta_ns_; }
  [[nodiscard]] std::size_t num_kinds() const { return kinds_.size(); }
  [[nodiscard]] std::uint64_t count(KindId kind) const { return kinds_.at(kind).count; }
  [[nodiscard]] std::uint64_t self_wall_ns(KindId kind) const {
    return kinds_.at(kind).self_wall_ns;
  }
  [[nodiscard]] std::uint64_t total_wall_ns(KindId kind) const {
    return kinds_.at(kind).total_wall_ns;
  }
  [[nodiscard]] const std::string& kind_name(KindId kind) const {
    return kinds_.at(kind).name;
  }

  /// Serializes the `pmsb.profile/1` document (see header comment).
  [[nodiscard]] std::string to_json() const;

 private:
  struct KindStats {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t self_wall_ns = 0;   ///< elapsed minus nested scopes
    std::uint64_t total_wall_ns = 0;  ///< elapsed including nested scopes
  };
  struct ScopeFrame {
    KindId kind = 0;
    std::int64_t start_ns = 0;
    std::uint64_t child_ns = 0;  ///< wall-ns consumed by nested scopes
  };

  sim::Simulator* sim_ = nullptr;
  std::vector<KindStats> kinds_;
  std::map<std::string, KindId> kind_index_;
  std::vector<ScopeFrame> stack_;
  std::uint64_t dispatches_ = 0;
  std::uint64_t dispatch_wall_ns_ = 0;
  std::int64_t dispatch_start_ns_ = 0;
  std::uint64_t events_scheduled_ = 0;
  std::uint64_t events_cancelled_ = 0;
  Histogram sim_delta_ns_;
};

/// RAII scope timer. No-op (a single branch) when `profiler` is null, so
/// instrumented hot paths keep the zero-cost-when-off contract.
class ProfileScope {
 public:
  ProfileScope(Profiler* profiler, Profiler::KindId kind) : profiler_(profiler) {
    if (profiler_ != nullptr) profiler_->scope_begin(kind);
  }
  ~ProfileScope() {
    if (profiler_ != nullptr) profiler_->scope_end();
  }
  ProfileScope(const ProfileScope&) = delete;
  ProfileScope& operator=(const ProfileScope&) = delete;

 private:
  Profiler* profiler_;
};

/// When the PMSB_PROFILE_JSON environment variable names a path, writes
/// profiler.to_json() there and returns true (the bench counterpart of
/// regress::maybe_write_bench_json). Returns false when unset or empty.
bool maybe_write_profile_json(const Profiler& profiler);

}  // namespace pmsb::telemetry
