#include "telemetry/process_stats.hpp"

#include <cstdlib>
#include <fstream>
#include <string>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace pmsb::telemetry {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    // "VmHWM:      123456 kB"
    if (line.rfind("VmHWM:", 0) == 0) {
      const std::uint64_t kb = std::strtoull(line.c_str() + 6, nullptr, 10);
      return kb * 1024;
    }
  }
#endif
  return 0;
}

ProcessUsage process_usage() {
  ProcessUsage usage;
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) == 0) {
    usage.utime_s = static_cast<double>(ru.ru_utime.tv_sec) +
                    static_cast<double>(ru.ru_utime.tv_usec) * 1e-6;
    usage.stime_s = static_cast<double>(ru.ru_stime.tv_sec) +
                    static_cast<double>(ru.ru_stime.tv_usec) * 1e-6;
    usage.major_page_faults = static_cast<std::uint64_t>(ru.ru_majflt);
  }
#endif
  return usage;
}

}  // namespace pmsb::telemetry
