#include "telemetry/process_stats.hpp"

#include <cstdlib>
#include <fstream>
#include <string>

namespace pmsb::telemetry {

std::uint64_t peak_rss_bytes() {
#if defined(__linux__)
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    // "VmHWM:      123456 kB"
    if (line.rfind("VmHWM:", 0) == 0) {
      const std::uint64_t kb = std::strtoull(line.c_str() + 6, nullptr, 10);
      return kb * 1024;
    }
  }
#endif
  return 0;
}

}  // namespace pmsb::telemetry
