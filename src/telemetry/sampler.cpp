#include "telemetry/sampler.hpp"

#include <fstream>
#include <memory>
#include <stdexcept>
#include <utility>

namespace pmsb::telemetry {

TimeSeriesSampler::TimeSeriesSampler(sim::Simulator& simulator, sim::TimeNs period)
    : sim_(simulator), period_(period) {
  if (period <= 0) {
    throw std::invalid_argument("TimeSeriesSampler: period must be positive");
  }
}

TimeSeriesSampler::~TimeSeriesSampler() = default;

void TimeSeriesSampler::add_probe(std::string name, std::function<double()> fn) {
  if (running_) throw std::logic_error("TimeSeriesSampler: add column after start()");
  Column c;
  c.name = std::move(name);
  c.probe = std::move(fn);
  cols_.push_back(std::move(c));
}

void TimeSeriesSampler::add_gauge(std::string name, const Gauge& gauge) {
  const Gauge* g = &gauge;
  add_probe(std::move(name), [g] { return g->value(); });
}

void TimeSeriesSampler::add_rate(std::string name, std::function<std::uint64_t()> fn) {
  if (running_) throw std::logic_error("TimeSeriesSampler: add column after start()");
  Column c;
  c.name = std::move(name);
  c.rate_source = std::move(fn);
  cols_.push_back(std::move(c));
}

void TimeSeriesSampler::add_counter_rate(std::string name, const Counter& counter) {
  const Counter* c = &counter;
  add_rate(std::move(name), [c] { return c->value(); });
}

void TimeSeriesSampler::start() {
  if (running_) return;
  running_ = true;
  for (Column& c : cols_) {
    if (c.rate_source) c.prev = c.rate_source();
  }
  // First row fires at the current time; scheduling (rather than sampling
  // inline) keeps every row inside an event so now() is always consistent.
  pending_ = sim_.schedule_in(0, [this] { sample(); });
}

void TimeSeriesSampler::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != sim::kInvalidEventId) sim_.cancel(pending_);
  pending_ = sim::kInvalidEventId;
}

void TimeSeriesSampler::stream_to(const std::string& path) {
  if (running_) throw std::logic_error("TimeSeriesSampler: stream_to after start()");
  auto out = std::make_unique<std::ofstream>(path);
  if (!*out) {
    throw std::runtime_error("TimeSeriesSampler::stream_to: cannot open " + path);
  }
  stream_ = std::move(out);
  stream_header_written_ = false;
}

void TimeSeriesSampler::sample() {
  if (!running_) return;
  times_us_.push_back(sim::to_microseconds(sim_.now()));
  const double period_s = static_cast<double>(period_) * 1e-9;
  for (Column& c : cols_) {
    double v = 0.0;
    if (c.probe) {
      v = c.probe();
    } else if (c.rate_source) {
      const std::uint64_t cur = c.rate_source();
      v = static_cast<double>(cur - c.prev) / period_s;
      c.prev = cur;
    }
    c.data.push_back(v);
  }
  if (stream_) {
    if (!stream_header_written_) {
      *stream_ << "time_us";
      for (const Column& c : cols_) *stream_ << ',' << c.name;
      *stream_ << '\n';
      stream_header_written_ = true;
    }
    *stream_ << times_us_.back();
    for (const Column& c : cols_) *stream_ << ',' << c.data.back();
    // Flush each row: a watchdog abort unwinds through the event loop and
    // must not take the tail of the series with it.
    *stream_ << '\n' << std::flush;
  }
  pending_ = sim_.schedule_in(period_, [this] { sample(); });
}

void TimeSeriesSampler::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("TimeSeriesSampler::write_csv: cannot open " + path);
  }
  out << "time_us";
  for (const Column& c : cols_) out << ',' << c.name;
  out << '\n';
  for (std::size_t row = 0; row < times_us_.size(); ++row) {
    out << times_us_[row];
    for (const Column& c : cols_) out << ',' << c.data[row];
    out << '\n';
  }
}

}  // namespace pmsb::telemetry
