// Periodic time-series snapshots of live simulation state.
//
// A TimeSeriesSampler registers a self-rescheduling simulator event and, at
// every period, evaluates its probe columns into columnar storage. This is
// what reproduces the paper's occupancy/marking-over-time figures (Figs.
// 4-12) natively: attach a probe per port occupancy and a rate column per
// mark counter, run, write_csv.
//
// Column kinds:
//  - probe:   any `double()` callback, sampled verbatim (gauges);
//  - rate:    a monotone `uint64()` callback, exported as the per-second
//             rate over the elapsed sampling interval (counters).
//
// Sampling happens inside simulator events, so rows align exactly with
// t_start + k * period and cost nothing between ticks. The sampler keeps
// rescheduling until stop(); a scenario that ends via Simulator::stop() or a
// run(until) cap simply leaves the next tick unfired.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "sim/time.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::telemetry {

class TimeSeriesSampler {
 public:
  TimeSeriesSampler(sim::Simulator& simulator, sim::TimeNs period);
  ~TimeSeriesSampler();  // out-of-line: stream_ needs the full ofstream type
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Adds a gauge-style column sampled as fn() each period.
  void add_probe(std::string name, std::function<double()> fn);
  /// Adds a gauge instrument as a column.
  void add_gauge(std::string name, const Gauge& gauge);
  /// Adds a counter-style column exported as events/second since the
  /// previous sample (first row reports the rate since start()).
  void add_rate(std::string name, std::function<std::uint64_t()> fn);
  /// Adds a counter instrument as a rate column.
  void add_counter_rate(std::string name, const Counter& counter);

  /// Takes the first sample at the current simulation time, then one every
  /// period until stop(). Columns must all be added before start().
  void start();
  void stop();
  [[nodiscard]] bool running() const { return running_; }

  [[nodiscard]] sim::TimeNs period() const { return period_; }
  [[nodiscard]] std::size_t rows() const { return times_us_.size(); }
  [[nodiscard]] std::size_t num_columns() const { return cols_.size(); }
  [[nodiscard]] const std::vector<double>& times_us() const { return times_us_; }
  [[nodiscard]] const std::string& column_name(std::size_t i) const {
    return cols_.at(i).name;
  }
  [[nodiscard]] const std::vector<double>& column(std::size_t i) const {
    return cols_.at(i).data;
  }

  /// Columnar CSV: `time_us,<col0>,<col1>,...` one row per sample.
  void write_csv(const std::string& path) const;

  /// Streams rows to `path` as they are sampled: the header goes out with
  /// the first row and every row is flushed immediately, so the CSV holds
  /// all completed samples even when the run is killed mid-flight by a
  /// watchdog/deadline abort (write_csv would lose the whole series to the
  /// exception unwind). Call before start(); in-memory columns still fill,
  /// so write_csv() to a different path remains valid.
  void stream_to(const std::string& path);
  [[nodiscard]] bool streaming() const { return stream_ != nullptr; }

 private:
  struct Column {
    std::string name;
    std::function<double()> probe;              // gauge columns
    std::function<std::uint64_t()> rate_source;  // counter/rate columns
    std::uint64_t prev = 0;
    std::vector<double> data;
  };

  void sample();

  sim::Simulator& sim_;
  sim::TimeNs period_;
  bool running_ = false;
  sim::EventId pending_ = sim::kInvalidEventId;
  std::vector<double> times_us_;
  std::vector<Column> cols_;
  std::unique_ptr<std::ofstream> stream_;  // non-null once stream_to() is set
  bool stream_header_written_ = false;
};

}  // namespace pmsb::telemetry
