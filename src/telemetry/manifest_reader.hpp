// Reader for pmsb.run_manifest/1 documents (see run_report.hpp for the
// writer and the schema).
//
// Resumable sweeps rehydrate completed cells from their per-run manifests
// instead of re-running them, so the reader recovers exactly the
// reproducible scalar payload: config echo, info facts, results, seed and
// simulated time. The metrics array is deliberately not parsed back into
// instruments — salvage only needs the record-level fields, and a registry
// cannot be reconstructed without the live components it was bound to.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace pmsb::telemetry {

struct ManifestData {
  std::string schema;
  std::string tool;
  std::uint64_t seed = 0;
  double wall_clock_s = 0.0;
  double sim_time_us = 0.0;
  double peak_rss_bytes = 0.0;  ///< 0 when the writer predates the field
  double utime_s = 0.0;         ///< user CPU seconds (0 = unknown/old writer)
  double stime_s = 0.0;         ///< system CPU seconds
  double major_page_faults = 0.0;
  std::map<std::string, std::string> config;
  std::map<std::string, std::string> info;
  std::map<std::string, double> results;

  /// Parses info[key] as a number; `fallback` when the key is absent or not
  /// numeric. Supervisor diagnostics (attempts, exit_signal, peak_rss_bytes)
  /// ride in the info map as strings — this is the read-side convenience.
  [[nodiscard]] double info_number(const std::string& key, double fallback) const;
};

/// Parses `text` as a run manifest. `origin` names the source in error
/// messages (a path, "<string>", ...). Throws std::runtime_error when the
/// JSON is malformed or the document shape is not a run manifest (no schema
/// string, non-string config/info entries, non-numeric results). The schema
/// *value* is returned, not enforced — callers decide which schemas they
/// accept.
[[nodiscard]] ManifestData parse_run_manifest(const std::string& text,
                                              const std::string& origin);

/// Reads and parses the manifest at `path`; throws std::runtime_error on
/// I/O failure or any parse_run_manifest() error.
[[nodiscard]] ManifestData read_run_manifest(const std::string& path);

}  // namespace pmsb::telemetry
