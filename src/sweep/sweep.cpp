#include "sweep/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>

#include <unistd.h>

#include <filesystem>

#include "faults/deadline.hpp"
#include "sweep/cell_supervisor.hpp"
#include "sweep/scenario_run.hpp"
#include "telemetry/manifest_reader.hpp"
#include "telemetry/run_report.hpp"

namespace pmsb::sweep {

namespace {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Full-precision double formatting: round-trips exactly, so signatures are
/// bit-faithful to the computed values.
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

std::vector<SweepPoint> expand_grid(const experiments::Options& base,
                                    const std::string& spec) {
  struct Dimension {
    std::string key;
    std::vector<std::string> values;
  };
  std::vector<Dimension> dims;
  std::set<std::string> seen;
  for (const std::string& dim_spec : split(spec, ';')) {
    if (dim_spec.empty()) continue;  // tolerate trailing ';'
    const std::size_t colon = dim_spec.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw std::invalid_argument("sweep spec: dimension '" + dim_spec +
                                  "' is not key:v1,v2,...");
    }
    Dimension d;
    d.key = dim_spec.substr(0, colon);
    if (!seen.insert(d.key).second) {
      throw std::invalid_argument("sweep spec: duplicate key '" + d.key + "'");
    }
    for (const std::string& v : split(dim_spec.substr(colon + 1), ',')) {
      if (v.empty()) {
        throw std::invalid_argument("sweep spec: empty value for key '" + d.key + "'");
      }
      d.values.push_back(v);
    }
    dims.push_back(std::move(d));
  }
  if (dims.empty()) {
    throw std::invalid_argument("sweep spec: no dimensions in '" + spec + "'");
  }

  std::size_t total = 1;
  for (const auto& d : dims) total *= d.values.size();

  std::vector<SweepPoint> points;
  points.reserve(total);
  for (std::size_t i = 0; i < total; ++i) {
    SweepPoint p;
    p.index = i;
    p.opts = base;
    // Mixed-radix decode, last dimension fastest.
    std::size_t rest = i;
    for (std::size_t d = dims.size(); d-- > 0;) {
      const auto& dim = dims[d];
      const std::string& value = dim.values[rest % dim.values.size()];
      rest /= dim.values.size();
      p.opts.set(dim.key, value);
    }
    for (const auto& dim : dims) {
      if (!p.label.empty()) p.label += ' ';
      p.label += dim.key + '=' + p.opts.get(dim.key);
    }
    points.push_back(std::move(p));
  }
  return points;
}

void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (jobs <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };
  std::vector<std::thread> workers;
  workers.reserve(std::min(jobs, n));
  for (std::size_t w = 0; w < std::min(jobs, n); ++w) workers.emplace_back(worker);
  for (auto& t : workers) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::string manifest_file_name(std::size_t index, std::size_t grid_size) {
  const std::size_t max_index = grid_size == 0 ? 0 : grid_size - 1;
  std::size_t digits = 1;
  for (std::size_t v = max_index; v >= 10; v /= 10) ++digits;
  const int width = static_cast<int>(std::max<std::size_t>(3, digits));
  char name[48];
  std::snprintf(name, sizeof(name), "run_%0*zu.json", width, index);
  return name;
}

namespace {

/// Applies the per-cell option transforms run_sweep makes before a cell
/// executes. Salvage validates manifests against the transformed options,
/// so the interrupted run and the resume must go through the same code.
void prepare_point(SweepPoint& point, const SweepConfig& config,
                   const std::string& manifest_path) {
  if (!manifest_path.empty()) point.opts.set("metrics_json", manifest_path);
  if (config.cell_timeout_s > 0.0) {
    point.opts.set("cell_timeout_s", format_double(config.cell_timeout_s));
  }
  if (config.cell_mem_mb > 0) {
    point.opts.set("cell_mem_mb", std::to_string(config.cell_mem_mb));
  }
  // Per-point file outputs other than the manifest would collide across
  // points (every point would write the same path); drop them.
  point.opts.erase("timeseries_csv");
  point.opts.erase("fct_csv");
  point.opts.erase("profile_json");
  point.opts.erase("spans_ndjson");
  point.opts.erase("trace_ndjson");
  point.opts.erase("trace_export");
}

/// Best-effort stub manifest for a failed cell: enough for a later resume
/// to see info.status=failed and re-run the cell rather than salvage it.
/// The record's supervisor diagnostics (attempts, exit class, child rusage)
/// ride along as info entries so a post-mortem of the directory alone tells
/// the whole story.
void write_failure_manifest(const std::string& path, const SweepPoint& point,
                            const RunRecord& rec) {
  telemetry::RunManifest manifest("pmsbsim-sweep");
  manifest.set_config(point.opts.values());
  manifest.set_seed(static_cast<std::uint64_t>(point.opts.get_int("seed", 0)));
  manifest.set_info("status", "failed");
  manifest.set_info("error", rec.error);
  manifest.set_info("attempts", std::to_string(rec.attempts));
  manifest.set_info("exit_class", rec.exit_class);
  if (rec.exit_signal != 0) {
    manifest.set_info("exit_signal", std::to_string(rec.exit_signal));
  }
  if (rec.exit_code != 0) {
    manifest.set_info("exit_code", std::to_string(rec.exit_code));
  }
  if (rec.peak_rss_bytes > 0.0) {
    manifest.set_info("peak_rss_bytes", format_double(rec.peak_rss_bytes));
  }
  try {
    manifest.write(path, nullptr);
  } catch (...) {
    // The failed record already carries the error; a missing stub only
    // means a resume re-runs the cell, which is the safe direction.
  }
}

/// Supervisor bookkeeping keys a manifest's info section may carry. They
/// describe how a past execution went, not what the cell computed, so
/// salvage strips them — a rehydrated record must stay bit-identical to a
/// freshly-run one.
constexpr const char* kSupervisorInfoKeys[] = {
    "status", "attempts", "exit_class", "exit_signal", "exit_code",
    "peak_rss_bytes"};

}  // namespace

SalvageOutcome try_salvage_cell(const std::string& manifest_path,
                                const SweepPoint& point) {
  SalvageOutcome out;
  telemetry::ManifestData manifest;
  try {
    manifest = telemetry::read_run_manifest(manifest_path);
  } catch (const std::exception& e) {
    out.reason = e.what();
    return out;
  }
  if (manifest.schema != "pmsb.run_manifest/1") {
    out.reason = "schema is '" + manifest.schema + "', not pmsb.run_manifest/1";
    return out;
  }
  const auto status = manifest.info.find("status");
  if (status == manifest.info.end() || status->second != "ok") {
    out.reason = "not a completed run (status=" +
                 (status == manifest.info.end() ? std::string("<missing>")
                                                : status->second) +
                 ")";
    return out;
  }
  if (manifest.results.empty()) {
    out.reason = "manifest carries no results";
    return out;
  }
  const auto& expected = point.opts.values();
  if (manifest.config != expected) {
    // Name one drifted key so the operator can see what changed.
    std::string detail = "config drift vs grid point";
    for (const auto& [k, v] : expected) {
      const auto it = manifest.config.find(k);
      if (it == manifest.config.end()) {
        detail += ": '" + k + "' missing from manifest";
        break;
      }
      if (it->second != v) {
        detail += ": '" + k + "' is '" + it->second + "', grid wants '" + v + "'";
        break;
      }
    }
    for (const auto& [k, v] : manifest.config) {
      (void)v;
      if (expected.count(k) == 0) {
        detail += ": '" + k + "' not in grid point";
        break;
      }
    }
    out.reason = detail;
    return out;
  }

  RunRecord rec;
  rec.index = point.index;
  rec.label = point.label;
  rec.ok = true;
  rec.config = manifest.config;
  rec.info = manifest.info;
  // Manifest-only execution markers, not part of the record.
  for (const char* key : kSupervisorInfoKeys) rec.info.erase(key);
  rec.results = manifest.results;
  rec.sim_time_us = manifest.sim_time_us;
  rec.manifest_path = manifest_path;
  rec.salvaged = true;
  out.record = std::move(rec);
  return out;
}

namespace {

/// In-process execution of one prepared cell: the original path. Crash
/// containment is limited to C++ exceptions — anything harder takes the
/// whole process down (that is what isolate=true is for).
RunRecord run_cell_in_process(const SweepPoint& point,
                              const std::string& manifest_path) {
  RunRecord rec;
  try {
    rec = run_scenario(point, /*quiet=*/true);
  } catch (const std::exception& e) {
    rec.index = point.index;
    rec.label = point.label;
    rec.ok = false;
    rec.error = e.what();
    rec.config = point.opts.values();
    rec.exit_class = "throw";
    if (dynamic_cast<const faults::DeadlineExceeded*>(&e) != nullptr) {
      rec.info["failed_phase"] = "run";
      rec.exit_class = "timeout";
    }
    if (!manifest_path.empty()) {
      write_failure_manifest(manifest_path, point, rec);
      rec.manifest_path = manifest_path;
    }
  }
  return rec;
}

/// Supervised execution of one prepared cell: fork, cap, classify, retry
/// crash classes with exponential backoff, quarantine what keeps failing.
RunRecord run_cell_supervised(const SweepPoint& point, const SweepConfig& config,
                              const std::string& manifest_path,
                              std::size_t grid_size) {
  CellLimits limits;
  limits.wall_s = config.cell_timeout_s;
  limits.mem_mb = config.cell_mem_mb;
  const std::size_t max_attempts = 1 + config.cell_retries;
  const auto repro_path =
      (std::filesystem::path(manifest_path).parent_path() /
       repro_file_name(point.index, grid_size))
          .string();

  CellOutcome outcome;
  std::size_t attempts = 0;
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
          config.retry_backoff_ms *
          static_cast<double>(1ull << (attempt - 2))));
      // A crashed child may have left a half-written manifest behind; the
      // retry must start from a clean slate so a success writes the one and
      // only manifest for this cell.
      std::error_code ec;
      std::filesystem::remove(manifest_path, ec);
    }
    attempts = attempt;
    outcome = run_cell_in_child(point, limits, static_cast<int>(attempt));
    if (outcome.exit_class == ExitClass::kOk ||
        !exit_class_retryable(outcome.exit_class)) {
      break;
    }
  }

  RunRecord rec;
  if (outcome.exit_class == ExitClass::kOk) {
    SalvageOutcome salvage = try_salvage_cell(manifest_path, point);
    if (salvage.record.has_value()) {
      rec = std::move(*salvage.record);
      rec.salvaged = false;  // the cell really executed — in a child
      // A bundle from an earlier, crashier pass over this cell is obsolete.
      std::error_code ec;
      std::filesystem::remove(repro_path, ec);
    } else {
      rec.index = point.index;
      rec.label = point.label;
      rec.ok = false;
      rec.config = point.opts.values();
      rec.exit_class = "throw";
      rec.error =
          "child exited cleanly but its manifest is unusable: " + salvage.reason;
    }
  } else {
    rec.index = point.index;
    rec.label = point.label;
    rec.ok = false;
    rec.config = point.opts.values();
    rec.error = outcome.error;
    rec.exit_class = exit_class_name(outcome.exit_class);
    rec.exit_signal = outcome.exit_signal;
    rec.exit_code = outcome.exit_code;
    if (outcome.exit_class == ExitClass::kTimeout) {
      rec.info["failed_phase"] = "run";
    }
  }
  rec.attempts = attempts;
  rec.peak_rss_bytes = outcome.peak_rss_bytes;
  if (!rec.ok) {
    // Graceful degradation: the cell is quarantined, the sweep completes.
    // The stub manifest makes a resume re-run it; the repro bundle makes
    // the failure reproducible solo (`pmsbsim repro=<file>`).
    rec.quarantined = true;
    write_failure_manifest(manifest_path, point, rec);
    rec.manifest_path = manifest_path;
    try {
      write_text_file(repro_path, repro_bundle_json(point, rec));
      rec.repro_path = repro_path;
    } catch (...) {
      // Quarantine holds without the bundle; the record has the diagnostic.
    }
  }
  return rec;
}

}  // namespace

std::vector<RunRecord> run_sweep(const std::vector<SweepPoint>& points,
                                 const SweepConfig& config) {
  SweepConfig cfg = config;
  if (cfg.isolate && cfg.manifest_dir.empty()) {
    // Isolated results travel through manifest files, so conjure a private
    // directory when the caller did not name one. Kept after the sweep:
    // quarantined cells' stubs and repro bundles live there.
    const std::string pattern =
        (std::filesystem::temp_directory_path() / "pmsb_sweep_XXXXXX").string();
    std::vector<char> tmpl(pattern.begin(), pattern.end());
    tmpl.push_back('\0');
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("run_sweep: cannot create a temp manifest dir");
    }
    cfg.manifest_dir.assign(tmpl.data());
  }

  std::vector<RunRecord> records(points.size());
  std::atomic<std::size_t> completed{0};
  std::mutex print_mutex;
  parallel_for(points.size(), cfg.jobs, [&](std::size_t i) {
    SweepPoint point = points[i];
    std::string manifest_path;
    if (!cfg.manifest_dir.empty()) {
      manifest_path =
          cfg.manifest_dir + "/" + manifest_file_name(point.index, points.size());
    }
    prepare_point(point, cfg, manifest_path);

    bool salvaged = false;
    std::string rerun_reason;
    if (cfg.resume && !manifest_path.empty()) {
      SalvageOutcome salvage = try_salvage_cell(manifest_path, point);
      if (salvage.record.has_value()) {
        records[i] = std::move(*salvage.record);
        salvaged = true;
      } else {
        rerun_reason = std::move(salvage.reason);
      }
    }

    if (!salvaged) {
      if (cfg.on_cell_run) cfg.on_cell_run(point.index);
      const auto t0 = std::chrono::steady_clock::now();
      RunRecord rec = cfg.isolate
                          ? run_cell_supervised(point, cfg, manifest_path,
                                                points.size())
                          : run_cell_in_process(point, manifest_path);
      rec.wall_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
      records[i] = std::move(rec);
    }

    const std::size_t done = completed.fetch_add(1, std::memory_order_relaxed) + 1;
    if (cfg.progress) {
      const std::lock_guard<std::mutex> lock(print_mutex);
      std::string status = records[i].salvaged ? "salvaged"
                           : records[i].ok    ? "ok"
                                              : "FAILED";
      if (records[i].quarantined) {
        status += " [quarantined: " + records[i].exit_class + "]";
      }
      std::printf("[%zu/%zu] %s: %s (%.0f ms)\n", done, points.size(),
                  points[i].label.c_str(), status.c_str(), records[i].wall_ms);
      if (cfg.resume && !records[i].salvaged && !rerun_reason.empty()) {
        std::printf("    re-run: %s\n", rerun_reason.c_str());
      }
      std::fflush(stdout);
    }
  });
  return records;
}

std::string deterministic_signature(const RunRecord& rec) {
  std::string s;
  s += "label " + rec.label + "\n";
  s += rec.ok ? "ok\n" : "error " + rec.error + "\n";
  for (const auto& [k, v] : rec.config) s += "config " + k + "=" + v + "\n";
  for (const auto& [k, v] : rec.info) s += "info " + k + "=" + v + "\n";
  for (const auto& [k, v] : rec.results) {
    s += "result " + k + "=" + format_double(v) + "\n";
  }
  s += "sim_time_us " + format_double(rec.sim_time_us) + "\n";
  return s;
}

std::string sweep_report_json(const std::vector<RunRecord>& records,
                              std::size_t jobs, double wall_s) {
  std::size_t failed = 0;
  std::size_t quarantined = 0;
  for (const auto& r : records) {
    if (!r.ok) ++failed;
    if (r.quarantined) ++quarantined;
  }
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmsb.sweep_report/1");
  w.key("git").value(telemetry::build_git_describe());
  w.key("jobs").value(static_cast<std::uint64_t>(jobs));
  w.key("points").value(static_cast<std::uint64_t>(records.size()));
  w.key("failed").value(static_cast<std::uint64_t>(failed));
  w.key("quarantined").value(static_cast<std::uint64_t>(quarantined));
  w.key("wall_s").value(wall_s);
  w.key("runs").begin_array();
  for (const auto& r : records) {
    w.begin_object();
    w.key("index").value(static_cast<std::uint64_t>(r.index));
    w.key("label").value(r.label);
    w.key("ok").value(r.ok);
    if (!r.ok) w.key("error").value(r.error);
    w.key("attempts").value(static_cast<std::uint64_t>(r.attempts));
    w.key("exit_class").value(r.exit_class);
    if (r.exit_signal != 0) {
      w.key("exit_signal").value(static_cast<std::int64_t>(r.exit_signal));
    }
    if (r.exit_code != 0) {
      w.key("exit_code").value(static_cast<std::int64_t>(r.exit_code));
    }
    if (r.peak_rss_bytes > 0.0) w.key("peak_rss_bytes").value(r.peak_rss_bytes);
    if (r.quarantined) w.key("quarantined").value(true);
    w.key("config").begin_object();
    for (const auto& [k, v] : r.config) w.key(k).value(v);
    w.end_object();
    w.key("info").begin_object();
    for (const auto& [k, v] : r.info) w.key(k).value(v);
    w.end_object();
    w.key("results").begin_object();
    for (const auto& [k, v] : r.results) w.key(k).value(v);
    w.end_object();
    w.key("sim_time_us").value(r.sim_time_us);
    w.key("wall_ms").value(r.wall_ms);
    if (!r.manifest_path.empty()) w.key("manifest").value(r.manifest_path);
    if (!r.repro_path.empty()) w.key("repro").value(r.repro_path);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str() + "\n";
}

std::string sweep_report_csv(const std::vector<RunRecord>& records) {
  std::set<std::string> result_keys;
  for (const auto& r : records) {
    for (const auto& [k, v] : r.results) {
      (void)v;
      result_keys.insert(k);
    }
  }
  const auto escape = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string quoted = "\"";
    for (char c : cell) {
      if (c == '"') quoted += '"';
      quoted += c;
    }
    quoted += '"';
    return quoted;
  };
  std::string out = "index,label,ok,attempts,exit_class,error,sim_time_us,wall_ms";
  for (const auto& k : result_keys) out += "," + escape(k);
  out += "\n";
  for (const auto& r : records) {
    out += std::to_string(r.index) + "," + escape(r.label) + "," +
           (r.ok ? "1" : "0") + "," + std::to_string(r.attempts) + "," +
           r.exit_class + "," + escape(r.error) + "," +
           format_double(r.sim_time_us) + "," + format_double(r.wall_ms);
    for (const auto& k : result_keys) {
      out += ",";
      const auto it = r.results.find(k);
      if (it != r.results.end()) out += format_double(it->second);
    }
    out += "\n";
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << content;
  if (!out) throw std::runtime_error("write to " + path + " failed");
}

}  // namespace pmsb::sweep
