// Executes one scenario described by an Options set (the same key=value
// vocabulary as tools/pmsbsim.cpp: topology=dumbbell|leafspine, scheme=,
// scheduler=, load=, seed=, ...).
//
// Every call builds a fresh scenario — its own Simulator (and with it the
// run's packet-id allocator), Rng, telemetry registry — so concurrent calls
// on different threads are independent and a given Options set always
// produces the same RunRecord. This is the unit of work the sweep runner
// fans out, and also what pmsbsim runs for a single (non-sweep) invocation.
#pragma once

#include "sweep/sweep.hpp"

namespace pmsb::sweep {

/// Runs the scenario `point.opts` describes and returns its record. With
/// quiet=false the run also prints the human-readable tables pmsbsim shows.
/// Honors `metrics_json=` (pmsb.run_manifest/1) and, when quiet, ignores
/// console-only keys. `cell_timeout_s=` arms a wall-clock faults::Deadline
/// on the run's simulator; expiry throws faults::DeadlineExceeded. Throws
/// std::invalid_argument on unknown topology / scheme / malformed options.
[[nodiscard]] RunRecord run_scenario(const SweepPoint& point, bool quiet);

}  // namespace pmsb::sweep
