// Executes one scenario described by an Options set (the same key=value
// vocabulary as tools/pmsbsim.cpp: topology=dumbbell|leafspine, scheme=,
// scheduler=, load=, seed=, ...).
//
// Every call builds a fresh scenario — its own Simulator (and with it the
// run's packet-id allocator), Rng, telemetry registry — so concurrent calls
// on different threads are independent and a given Options set always
// produces the same RunRecord. This is the unit of work the sweep runner
// fans out, and also what pmsbsim runs for a single (non-sweep) invocation.
#pragma once

#include "sweep/sweep.hpp"

namespace pmsb::regress {
class RunDigest;
}

namespace pmsb::sweep {

/// Runs the scenario `point.opts` describes and returns its record. With
/// quiet=false the run also prints the human-readable tables pmsbsim shows.
/// Honors `metrics_json=` (pmsb.run_manifest/1) and, when quiet, ignores
/// console-only keys. `cell_timeout_s=` arms a wall-clock faults::Deadline
/// on the run's simulator; expiry throws faults::DeadlineExceeded. Throws
/// std::invalid_argument on unknown topology / scheme / malformed options.
///
/// `digest=1` in the options computes a run digest internally and reports
/// it in info["digest"] / results["digest.events"].
[[nodiscard]] RunRecord run_scenario(const SweepPoint& point, bool quiet);

/// As above, but feeds the run's canonical events into an EXTERNAL `digest`
/// (which must be fresh — entities are registered per run). The regression
/// plane uses this form so it can inspect sub-digests, checkpoints, and the
/// windowed journal after the run. Pass nullptr for the plain behavior.
[[nodiscard]] RunRecord run_scenario(const SweepPoint& point, bool quiet,
                                     regress::RunDigest* digest);

}  // namespace pmsb::sweep
