#include "sweep/cell_supervisor.hpp"

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "faults/deadline.hpp"
#include "sweep/scenario_run.hpp"
#include "telemetry/json_reader.hpp"
#include "telemetry/run_report.hpp"

namespace pmsb::sweep {

namespace {

// Child exit-code protocol (see the header).
constexpr int kChildOk = 0;
constexpr int kChildThrow = 2;
constexpr int kChildOom = 3;
constexpr int kChildTimeout = 4;

/// Largest diagnostic the child ships back. Well under the kernel pipe
/// buffer, so the child's write never blocks against a parent that is only
/// waiting, and the parent's read is bounded.
constexpr std::size_t kMaxErrorBytes = 8192;

void write_all(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // best effort: the exit code still classifies the failure
    }
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

std::string read_pipe(int fd) {
  std::string out;
  char buf[4096];
  while (out.size() < kMaxErrorBytes) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

/// Everything the child does between fork() and _Exit(). Never returns.
/// fork() from a threaded sweep worker is glibc-supported (malloc locks are
/// reset by the fork handlers), but the child stays conservative anyway: it
/// runs one scenario, writes its files, and leaves via _Exit so inherited
/// stdio buffers are never double-flushed and no destructors of the
/// parent's state run here.
[[noreturn]] void child_main(const SweepPoint& point, const CellLimits& limits,
                             int attempt, int error_fd) {
  if (limits.mem_mb > 0) {
    rlimit as{};
    as.rlim_cur = as.rlim_max =
        static_cast<rlim_t>(limits.mem_mb) * 1024ull * 1024ull;
    (void)::setrlimit(RLIMIT_AS, &as);
  }
  rlimit core{};  // a crashing cell is diagnosed via its repro bundle,
  core.rlim_cur = core.rlim_max = 0;  // not via core dumps littering CI
  (void)::setrlimit(RLIMIT_CORE, &core);

  char attempt_buf[16];
  std::snprintf(attempt_buf, sizeof(attempt_buf), "%d", attempt);
  ::setenv("PMSB_CRASH_ATTEMPT", attempt_buf, 1);

  int code = kChildOk;
  std::string error;
  try {
    (void)run_scenario(point, /*quiet=*/true);
  } catch (const faults::DeadlineExceeded& e) {
    code = kChildTimeout;
    error = e.what();
  } catch (const std::bad_alloc&) {
    code = kChildOom;
    error = "[oom] std::bad_alloc";
    if (limits.mem_mb > 0) {
      error += " under cell_mem_mb=" + std::to_string(limits.mem_mb);
    }
  } catch (const std::exception& e) {
    code = kChildThrow;
    error = e.what();
  } catch (...) {
    code = kChildThrow;
    error = "non-std exception";
  }
  if (!error.empty()) {
    if (error.size() > kMaxErrorBytes) error.resize(kMaxErrorBytes);
    write_all(error_fd, error.data(), error.size());
  }
  ::close(error_fd);
  std::_Exit(code);
}

}  // namespace

const char* exit_class_name(ExitClass c) {
  switch (c) {
    case ExitClass::kOk: return "ok";
    case ExitClass::kThrow: return "throw";
    case ExitClass::kSignal: return "signal";
    case ExitClass::kTimeout: return "timeout";
    case ExitClass::kOom: return "oom";
  }
  return "unknown";
}

bool exit_class_retryable(ExitClass c) {
  return c == ExitClass::kSignal || c == ExitClass::kTimeout ||
         c == ExitClass::kOom;
}

std::string signal_name(int sig) {
  switch (sig) {
    case SIGSEGV: return "SIGSEGV";
    case SIGABRT: return "SIGABRT";
    case SIGBUS: return "SIGBUS";
    case SIGFPE: return "SIGFPE";
    case SIGILL: return "SIGILL";
    case SIGKILL: return "SIGKILL";
    case SIGTERM: return "SIGTERM";
    case SIGXCPU: return "SIGXCPU";
    default: return "signal " + std::to_string(sig);
  }
}

CellOutcome run_cell_in_child(const SweepPoint& point, const CellLimits& limits,
                              int attempt) {
  CellOutcome out;
  const auto t0 = std::chrono::steady_clock::now();

  int fds[2];
  if (::pipe(fds) != 0) {
    out.exit_class = ExitClass::kThrow;
    out.error = std::string("pipe failed: ") + std::strerror(errno);
    return out;
  }
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    out.exit_class = ExitClass::kThrow;
    out.error = std::string("fork failed: ") + std::strerror(errno);
    return out;
  }
  if (pid == 0) {
    ::close(fds[0]);
    child_main(point, limits, attempt, fds[1]);  // never returns
  }
  ::close(fds[1]);

  // Hard kill past the wall budget, with headroom so the in-child Deadline
  // (which produces the nicer, deterministic diagnostic) fires first when
  // the child is still dispatching events.
  const double hard_kill_s =
      limits.wall_s > 0.0 ? limits.wall_s * 1.25 + 0.5 : 0.0;
  int status = 0;
  rusage ru{};
  while (true) {
    const pid_t r = ::wait4(pid, &status, WNOHANG, &ru);
    if (r == pid) break;
    if (r < 0 && errno != EINTR) {
      out.exit_class = ExitClass::kThrow;
      out.error = std::string("wait4 failed: ") + std::strerror(errno);
      ::close(fds[0]);
      return out;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (hard_kill_s > 0.0 && elapsed >= hard_kill_s) {
      ::kill(pid, SIGKILL);
      out.hard_killed = true;
      while (::wait4(pid, &status, 0, &ru) < 0 && errno == EINTR) {
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  out.error = read_pipe(fds[0]);
  ::close(fds[0]);
  out.wall_ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  out.peak_rss_bytes = static_cast<double>(ru.ru_maxrss) * 1024.0;

  if (out.hard_killed) {
    out.exit_class = ExitClass::kTimeout;
    out.exit_signal = SIGKILL;
    std::ostringstream why;
    why << "[cell_timeout] hard kill: wall-clock limit " << limits.wall_s
        << "s exceeded and the cell never ran its deadline tick "
           "(wedged callback or event starvation); supervisor sent SIGKILL";
    out.error = why.str();
    return out;
  }
  if (WIFSIGNALED(status)) {
    const int sig = WTERMSIG(status);
    out.exit_signal = sig;
    // A SIGKILL the parent did not send, while an address-space cap was in
    // force and mostly consumed, is the kernel OOM killer.
    const double cap_bytes =
        static_cast<double>(limits.mem_mb) * 1024.0 * 1024.0;
    if (sig == SIGKILL && limits.mem_mb > 0 &&
        out.peak_rss_bytes >= 0.9 * cap_bytes) {
      out.exit_class = ExitClass::kOom;
      out.error = "[oom] child SIGKILLed near the cell_mem_mb=" +
                  std::to_string(limits.mem_mb) + " cap (peak rss " +
                  std::to_string(static_cast<long long>(out.peak_rss_bytes)) +
                  " bytes)";
    } else {
      out.exit_class = ExitClass::kSignal;
      out.error = "[signal] child terminated by " + signal_name(sig);
    }
    return out;
  }
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  out.exit_code = code;
  switch (code) {
    case kChildOk:
      out.exit_class = ExitClass::kOk;
      out.error.clear();
      break;
    case kChildThrow:
      out.exit_class = ExitClass::kThrow;
      if (out.error.empty()) out.error = "child exited with code 2 (no diagnostic)";
      break;
    case kChildOom:
      out.exit_class = ExitClass::kOom;
      if (out.error.empty()) out.error = "[oom] std::bad_alloc";
      break;
    case kChildTimeout:
      out.exit_class = ExitClass::kTimeout;
      if (out.error.empty()) out.error = "[cell_timeout] deadline exceeded";
      break;
    default:
      out.exit_class = ExitClass::kThrow;
      out.error = "child exited with unexpected code " + std::to_string(code) +
                  (out.error.empty() ? "" : ": " + out.error);
      break;
  }
  return out;
}

std::string repro_file_name(std::size_t index, std::size_t grid_size) {
  const std::string run = manifest_file_name(index, grid_size);
  // "run_<idx>.json" -> "repro_<idx>.json": same pad width, same ordering.
  return "repro_" + run.substr(4);
}

std::string repro_bundle_json(const SweepPoint& point, const RunRecord& rec) {
  telemetry::JsonWriter w;
  w.begin_object();
  w.key("schema").value("pmsb.repro/1");
  w.key("git").value(telemetry::build_git_describe());
  w.key("cell_index").value(static_cast<std::uint64_t>(point.index));
  w.key("label").value(point.label);
  w.key("exit_class").value(rec.exit_class);
  w.key("exit_signal").value(static_cast<std::int64_t>(rec.exit_signal));
  w.key("exit_code").value(static_cast<std::int64_t>(rec.exit_code));
  w.key("attempts").value(static_cast<std::uint64_t>(rec.attempts));
  w.key("error").value(rec.error);
  w.key("seed").value(
      static_cast<std::uint64_t>(point.opts.get_int("seed", 0)));
  // The exact Options echo — the faults timeline, the seed, the per-cell
  // caps — everything needed to re-run this cell byte-for-byte.
  w.key("config").begin_object();
  for (const auto& [k, v] : point.opts.values()) w.key(k).value(v);
  w.end_object();
  w.end_object();
  return w.str() + "\n";
}

ReproBundle load_repro_bundle(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("repro bundle " + path + ": cannot open");
  std::ostringstream buf;
  buf << in.rdbuf();
  telemetry::json::Value root;
  try {
    root = telemetry::json::parse(buf.str());
  } catch (const telemetry::json::ParseError& e) {
    throw std::runtime_error("repro bundle " + path + ": " + e.what());
  }
  if (!root.is_object()) {
    throw std::runtime_error("repro bundle " + path + ": not a JSON object");
  }
  const telemetry::json::Value* schema = root.find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "pmsb.repro/1") {
    throw std::runtime_error("repro bundle " + path +
                             ": schema is not pmsb.repro/1");
  }
  ReproBundle out;
  if (const auto* v = root.find("cell_index"); v != nullptr && v->is_number()) {
    out.cell_index = static_cast<std::size_t>(v->number);
  }
  if (const auto* v = root.find("label"); v != nullptr && v->is_string()) {
    out.label = v->string;
  }
  if (const auto* v = root.find("exit_class"); v != nullptr && v->is_string()) {
    out.exit_class = v->string;
  }
  if (const auto* v = root.find("error"); v != nullptr && v->is_string()) {
    out.error = v->string;
  }
  const telemetry::json::Value* config = root.find("config");
  if (config == nullptr || !config->is_object()) {
    throw std::runtime_error("repro bundle " + path + ": no config object");
  }
  for (const auto& [k, v] : config->object) {
    if (!v.is_string()) {
      throw std::runtime_error("repro bundle " + path + ": config." + k +
                               " is not a string");
    }
    out.opts.set(k, v.string);
  }
  return out;
}

}  // namespace pmsb::sweep
