#include "sweep/crash_inject.hpp"

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <stdexcept>
#include <string>
#include <vector>

namespace pmsb::sweep {

namespace {

[[noreturn]] void crash_segv() {
  // raise() rather than a null write: the delivered signal is identical but
  // the source stays free of undefined behavior.
  std::raise(SIGSEGV);
  std::abort();  // unreachable unless SIGSEGV is blocked
}

[[noreturn]] void crash_oom() {
  // Allocate and touch until the allocator gives up. Under the supervisor's
  // RLIMIT_AS cap this throws within a few iterations; the 8 GiB ceiling
  // keeps an uncapped invocation from taking down the host.
  constexpr std::size_t kChunk = 16ull << 20;
  constexpr std::size_t kCeiling = 8ull << 30;
  std::vector<std::unique_ptr<char[]>> hog;
  for (std::size_t total = 0; total < kCeiling; total += kChunk) {
    hog.push_back(std::make_unique<char[]>(kChunk));
    std::memset(hog.back().get(), 0x5a, kChunk);
  }
  throw std::bad_alloc();
}

[[noreturn]] void crash_hang() {
  // Never returns, never schedules, never yields — exactly the wedged-cell
  // shape the in-process Deadline cannot interrupt.
  volatile std::uint64_t spin = 0;
  for (;;) ++spin;
}

}  // namespace

void maybe_inject_crash(std::size_t cell_index) {
  const char* spec = std::getenv("PMSB_CRASH_AT");
  if (spec == nullptr || *spec == '\0') return;
  int attempt = 1;
  if (const char* a = std::getenv("PMSB_CRASH_ATTEMPT")) {
    attempt = std::atoi(a);
    if (attempt <= 0) attempt = 1;
  }

  const std::string all(spec);
  std::size_t start = 0;
  while (start <= all.size()) {
    const std::size_t comma = all.find(',', start);
    const std::string entry =
        all.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    start = comma == std::string::npos ? all.size() + 1 : comma + 1;
    if (entry.empty()) continue;

    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos) {
      throw std::invalid_argument("PMSB_CRASH_AT: entry '" + entry +
                                  "' is not <cell>:<mode>[@<attempt>]");
    }
    const std::size_t cell =
        static_cast<std::size_t>(std::strtoull(entry.c_str(), nullptr, 10));
    std::string mode = entry.substr(colon + 1);
    int only_attempt = 0;  // 0 = every attempt
    if (const std::size_t at = mode.find('@'); at != std::string::npos) {
      only_attempt = std::atoi(mode.c_str() + at + 1);
      mode.resize(at);
    }
    if (cell != cell_index) continue;
    if (only_attempt != 0 && only_attempt != attempt) continue;

    if (mode == "segv") crash_segv();
    if (mode == "oom") crash_oom();
    if (mode == "hang") crash_hang();
    if (mode == "throw") {
      throw std::runtime_error("[crash_at] injected throw (cell " +
                               std::to_string(cell_index) + ", attempt " +
                               std::to_string(attempt) + ")");
    }
    throw std::invalid_argument("PMSB_CRASH_AT: unknown mode '" + mode + "'");
  }
}

}  // namespace pmsb::sweep
