#include "sweep/scenario_run.hpp"

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/dumbbell.hpp"
#include "experiments/leafspine.hpp"
#include "experiments/presets.hpp"
#include "faults/deadline.hpp"
#include "faults/fault_plan.hpp"
#include "faults/invariants.hpp"
#include "faults/watchdog.hpp"
#include "regress/digest.hpp"
#include "sim/rng.hpp"
#include "stats/csv.hpp"
#include "sweep/crash_inject.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/process_stats.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/run_report.hpp"
#include "telemetry/sampler.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"
#include "analysis/oscillation.hpp"
#include "workload/coflow.hpp"
#include "workload/flow_trace.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::sweep {

namespace {

using namespace pmsb::experiments;

Scheme parse_scheme(const std::string& s) {
  if (s == "pmsb") return Scheme::kPmsb;
  if (s == "pmsbe" || s == "pmsb(e)") return Scheme::kPmsbE;
  if (s == "mq-ecn" || s == "mqecn") return Scheme::kMqEcn;
  if (s == "tcn") return Scheme::kTcn;
  if (s == "perport") return Scheme::kPerPort;
  if (s == "perqueue-std" || s == "perqueue") return Scheme::kPerQueueStd;
  if (s == "perqueue-frac") return Scheme::kPerQueueFrac;
  if (s == "none") return Scheme::kNone;
  throw std::invalid_argument("unknown scheme: " + s);
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t pos = text.find(',', start);
    if (pos == std::string::npos) {
      if (start < text.size()) out.push_back(text.substr(start));
      break;
    }
    if (pos > start) out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

/// Optional telemetry wiring shared by both topologies: a metrics registry +
/// run manifest when `metrics_json=` is given, a time-series sampler when
/// `timeseries_csv=` is given, a kernel/component profiler when `profile=1`
/// or `profile_json=` is given, and packet-lifecycle span capture when
/// `trace_flows=` is given. Constructing it starts the wall clock.
struct RunTelemetry {
  explicit RunTelemetry(const Options& opts, bool quiet_run)
      : metrics_path(opts.get("metrics_json")),
        ts_path(opts.get("timeseries_csv")),
        period(sim::microseconds_f(opts.get_double("sample_period_us", 100.0))),
        profile_path(opts.get("profile_json")),
        spans_path(opts.get("spans_ndjson")),
        trace_path(opts.get("trace_ndjson")),
        quiet(quiet_run) {
    manifest.set_config(opts.values());
    if (opts.get_bool("profile", false) || !profile_path.empty()) {
      profiler = std::make_unique<telemetry::Profiler>();
    }
    const std::string watch = opts.get("trace_flows");
    if (!watch.empty()) {
      spans = std::make_unique<trace::SpanTracer>();
      if (watch == "all") {
        spans->watch_all();
      } else {
        for (const std::string& tok : split_csv(watch)) {
          spans->watch_flow(static_cast<net::FlowId>(std::stoull(tok)));
        }
      }
    } else if (!spans_path.empty()) {
      throw std::invalid_argument(
          "spans_ndjson= needs trace_flows= (nothing would be captured)");
    }
  }

  /// Binds the scenario's instruments and starts the sampler. Call once the
  /// scenario has its flows (per-flow instruments bind at call time).
  template <typename Scenario>
  void attach(Scenario& sc) {
    if (!metrics_path.empty()) {
      telemetry::bind_simulator_metrics(registry, sc.simulator());
      registry.gauge_fn("process.peak_rss_bytes", {}, [] {
        return static_cast<double>(telemetry::peak_rss_bytes());
      }, "bytes");
      sc.bind_metrics(registry);
    }
    if (profiler) sc.install_profiler(*profiler);
    if (spans) sc.install_span_tracer(*spans);
    if (!trace_path.empty()) {
      // Post-mortems want the tail of the event stream, so ring mode.
      tracer = std::make_unique<trace::Tracer>(1'000'000,
                                               trace::OverflowPolicy::kRingBuffer);
      sc.trace_port().set_tracer(tracer.get());
    }
    if (!ts_path.empty()) {
      sampler = std::make_unique<telemetry::TimeSeriesSampler>(sc.simulator(), period);
      sc.add_sampler_columns(*sampler);
      sampler->add_probe("process.peak_rss_bytes", [] {
        return static_cast<double>(telemetry::peak_rss_bytes());
      });
      // Stream rows as they are sampled so a watchdog / deadline abort
      // leaves a usable CSV behind instead of an empty file.
      sampler->stream_to(ts_path);
      sampler->start();
    }
  }

  /// Folds profiler / span / trace output into the record and manifest.
  /// Call after the run, before the record results are mirrored into the
  /// manifest. Only deterministic scalars go into rec.results — wall-clock
  /// times would make sweep reports run-to-run unstable.
  void finalize_observability(RunRecord& rec) {
    if (profiler) {
      const std::string json = profiler->to_json();
      manifest.set_profile_json(json);
      if (!profile_path.empty()) {
        std::ofstream out(profile_path);
        if (!out) {
          throw std::runtime_error("cannot open profile_json path " + profile_path);
        }
        out << json << '\n';
        if (!quiet) std::printf("wrote %s\n", profile_path.c_str());
      }
      rec.results["profile.dispatches"] = static_cast<double>(profiler->dispatches());
      rec.results["profile.events_scheduled"] =
          static_cast<double>(profiler->events_scheduled());
    }
    if (spans && !spans_path.empty()) {
      spans->write_ndjson(spans_path);
      if (!quiet) {
        std::printf("wrote %s (%zu spans, %llu overflow)\n", spans_path.c_str(),
                    spans->size(), static_cast<unsigned long long>(spans->overflow()));
      }
    }
    if (tracer) {
      tracer->write_ndjson(trace_path);
      if (!quiet) {
        std::printf("wrote %s (%zu events)\n", trace_path.c_str(),
                    tracer->records().size());
      }
    }
  }

  void finish(double sim_time_us) {
    if (sampler) {
      // Streaming mode already wrote every row (and survives aborts);
      // rewriting would only repeat the work.
      if (!sampler->streaming()) sampler->write_csv(ts_path);
      if (!quiet) {
        std::printf("wrote %s (%zu samples x %zu columns)\n", ts_path.c_str(),
                    sampler->rows(), sampler->num_columns());
      }
    }
    if (!metrics_path.empty()) {
      manifest.set_sim_time_us(sim_time_us);
      // Only completed runs reach finish(); the marker is what lets a
      // resumed sweep tell a salvageable manifest from a failed cell's stub.
      manifest.set_info("status", "ok");
      manifest.write(metrics_path, &registry);
      if (!quiet) {
        std::printf("wrote %s (%zu instruments)\n", metrics_path.c_str(),
                    registry.size());
      }
    }
  }

  std::string metrics_path;
  std::string ts_path;
  sim::TimeNs period;
  std::string profile_path;
  std::string spans_path;
  std::string trace_path;
  bool quiet;
  telemetry::MetricsRegistry registry;
  telemetry::RunManifest manifest{"pmsbsim"};
  std::unique_ptr<telemetry::TimeSeriesSampler> sampler;
  std::unique_ptr<telemetry::Profiler> profiler;
  std::unique_ptr<trace::SpanTracer> spans;
  std::unique_ptr<trace::Tracer> tracer;
};

/// Robustness wiring shared by both topologies: a FaultPlan built from the
/// `faults=` grammar plus the sweep-friendly `bleach=` sugar (grid values
/// cannot contain ':' or ',', so the headline bleach sweep gets its own
/// scalar key), an InvariantChecker (on by default; `invariants=0` opts
/// out), and a Watchdog when a horizon or event budget is configured.
///
/// Declare AFTER the scenario so it is destroyed first: the checker and
/// watchdog hold the scenario's simulator by reference.
struct Robustness {
  faults::FaultPlan plan;
  std::unique_ptr<faults::InvariantChecker> checker;
  std::unique_ptr<faults::Watchdog> watchdog;
  std::unique_ptr<faults::Deadline> deadline;

  template <typename Scenario>
  void install(Scenario& sc, const Options& opts,
               const std::vector<std::string>& default_bleach_nodes,
               std::function<std::uint64_t()> progress, std::function<bool()> done,
               std::function<std::string()> forensics) {
    std::string spec = opts.get("faults");
    if (opts.get_double("bleach", 0.0) > 0.0) {
      std::vector<std::string> nodes = opts.has("bleach_at")
                                           ? split_csv(opts.get("bleach_at"))
                                           : default_bleach_nodes;
      for (const auto& node : nodes) {
        if (!spec.empty()) spec += ';';
        spec += "bleach:" + node + ":" + opts.get("bleach");
      }
    }
    if (!spec.empty()) {
      plan.add_spec_string(spec);
      // Decorrelate fault randomness from the workload stream.
      sc.install_faults(plan,
                        static_cast<std::uint64_t>(opts.get_int("seed", 1)) ^ 0xfa17);
    }

    if (opts.get_bool("invariants", true)) {
      checker = std::make_unique<faults::InvariantChecker>(sc.simulator());
      sc.install_invariants(*checker);
      if (opts.get("fault_test") == "break_invariant") {
        // Deliberately unbalance the conservation ledger so tests can prove
        // a violation is caught and reported, not silently absorbed.
        sc.ledger().skew_injected_for_test(1);
      }
      checker->start_periodic(
          sim::microseconds_f(opts.get_double("invariant_period_us", 100.0)));
    }

    if (opts.has("watchdog_horizon_ms") || opts.has("watchdog_events")) {
      faults::WatchdogConfig wcfg;
      wcfg.stall_horizon = sim::milliseconds(opts.get_int("watchdog_horizon_ms", 0));
      wcfg.max_events = static_cast<std::uint64_t>(opts.get_int("watchdog_events", 0));
      wcfg.period = sim::microseconds_f(opts.get_double("watchdog_period_us", 100.0));
      watchdog = std::make_unique<faults::Watchdog>(sc.simulator(), wcfg,
                                                    std::move(progress), std::move(done),
                                                    std::move(forensics));
      watchdog->start();
    }

    // Wall-clock budget: the watchdog bounds simulated time and events; the
    // deadline bounds host time. Expiry throws out of the event loop and
    // fails this cell alone.
    const double cell_timeout_s = opts.get_double("cell_timeout_s", 0.0);
    if (cell_timeout_s > 0.0) {
      deadline = std::make_unique<faults::Deadline>(
          sc.simulator(), cell_timeout_s,
          sim::microseconds_f(opts.get_double("cell_timeout_period_us", 500.0)));
      deadline->start();
    }

    if (opts.get("fault_test") == "wedge_callback") {
      // The cell_timeout_s blind spot made reproducible: the Deadline tick
      // is itself a sim event, so a callback that never returns starves the
      // event loop and the deadline can never fire (see
      // faults::Deadline::blind_spot_note()). Only the isolate=1
      // supervisor's parent-side hard kill recovers from this shape.
      sc.simulator().schedule_in(sim::milliseconds(1), [] {
        volatile std::uint64_t spin = 0;
        for (;;) ++spin;
      });
    }
  }

  void bind(telemetry::MetricsRegistry& registry) {
    plan.bind_metrics(registry);
    if (checker) checker->bind_metrics(registry);
    if (watchdog) watchdog->bind_metrics(registry);
    if (deadline) deadline->bind_metrics(registry);
  }

  /// Final validation after the run: one last invariant pass, per-cell
  /// fault/invariant counters into the record, and a throw (failing this
  /// cell in isolation) if the watchdog tripped or any invariant broke.
  void finalize(RunRecord& rec) {
    rec.results["faults.dropped"] = static_cast<double>(plan.dropped());
    rec.results["faults.bleached"] = static_cast<double>(plan.bleached());
    rec.results["faults.forwarded"] = static_cast<double>(plan.forwarded());
    if (checker) {
      checker->check_now();
      rec.results["invariants.evaluations"] = static_cast<double>(checker->evaluations());
      rec.results["invariants.violations"] =
          static_cast<double>(checker->total_violations());
    }
    if (watchdog) {
      rec.results["watchdog.tripped"] = watchdog->tripped() ? 1.0 : 0.0;
      if (watchdog->tripped()) throw std::runtime_error(watchdog->diagnostic());
    }
    if (checker && !checker->clean()) throw std::runtime_error(checker->summary());
  }
};

/// Offline stability analysis (`stability=1`): oscillation detection over
/// the run's sampled queue columns. Reuses the `timeseries_csv=` sampler
/// when one exists; otherwise runs a private in-memory sampler at
/// `sample_period_us` so the analysis needs no CSV side effect. Attach
/// before the run, finalize after — results land in `stability.*` columns.
struct StabilityPlane {
  bool enabled = false;
  telemetry::TimeSeriesSampler* sampler = nullptr;
  std::unique_ptr<telemetry::TimeSeriesSampler> own;

  template <typename Scenario>
  void attach(Scenario& sc, RunTelemetry& telemetry, const Options& opts) {
    enabled = opts.get_bool("stability", false);
    if (!enabled) return;
    if (telemetry.sampler != nullptr) {
      sampler = telemetry.sampler.get();
      return;
    }
    own = std::make_unique<telemetry::TimeSeriesSampler>(
        sc.simulator(), sim::microseconds_f(opts.get_double("sample_period_us", 100.0)));
    sc.add_sampler_columns(*own);
    own->start();
    sampler = own.get();
  }

  void finalize(const Options& opts, RunRecord& rec) const {
    if (!enabled) return;
    analysis::OscillationConfig cfg;
    cfg.window = static_cast<std::size_t>(opts.get_int("stability_window", 64));
    cfg.hop = std::max<std::size_t>(cfg.window / 2, 1);
    cfg.min_autocorr = opts.get_double("stability_min_autocorr", 0.5);
    cfg.min_amplitude = opts.get_double("stability_min_amp_bytes", 18000.0);
    cfg.min_windows = static_cast<std::size_t>(opts.get_int("stability_min_windows", 3));
    const analysis::StabilityReport report = analysis::analyze_sampler(*sampler, cfg);
    rec.results["stability.ports_analyzed"] =
        static_cast<double>(report.ports_analyzed);
    rec.results["stability.oscillating_ports"] =
        static_cast<double>(report.oscillating_ports);
    rec.results["stability.dominant_period_us"] = report.dominant_period_us;
    rec.results["stability.amplitude_bytes"] = report.amplitude_bytes;
    rec.results["stability.max_autocorr"] = report.max_autocorr;
  }
};

/// Parses the shared-buffer keys: `buffer_policy=` (static | equal | dt),
/// `dt_alpha=` (DT allowance factor), `buffer_bytes=` (shared pool size in
/// bytes; 0 = scenario default). Returns the policy config; the pool size
/// lands in *pool_bytes.
switchlib::BufferPolicyConfig parse_buffer_policy(const Options& opts,
                                                  std::uint64_t* pool_bytes) {
  switchlib::BufferPolicyConfig bp;
  bp.kind = switchlib::parse_buffer_policy_kind(opts.get("buffer_policy", "static"));
  bp.dt_alpha = opts.get_double("dt_alpha", 1.0);
  *pool_bytes = static_cast<std::uint64_t>(opts.get_int("buffer_bytes", 0));
  return bp;
}

/// Per-reason drop counters for one port into the record, prefixed
/// `drops.<reason>` — the sweep report's view of WHY a policy refused.
void record_drop_reasons(const switchlib::PortStats& stats, RunRecord& rec) {
  for (std::size_t r = 0; r < switchlib::kNumDropReasons; ++r) {
    rec.results[std::string("drops.") +
                switchlib::drop_reason_name(static_cast<switchlib::DropReason>(r))] =
        static_cast<double>(stats.dropped_by_reason[r]);
  }
}

/// Folds the digest results into the record + manifest. Call after the
/// scenario's finalize_digest(), before the results mirror loop.
void report_digest(const regress::RunDigest* digest, RunRecord& rec,
                   RunTelemetry& telemetry) {
  if (digest == nullptr) return;
  const std::string hex = digest->total().hex();
  rec.info["digest"] = hex;
  rec.results["digest.events"] = static_cast<double>(digest->count());
  telemetry.manifest.set_info("digest", hex);
}

void run_dumbbell(const Options& opts, bool quiet, regress::RunDigest* digest,
                  RunRecord& rec) {
  for (const char* key : {"trace_file", "trace_export", "pattern"}) {
    if (opts.has(key)) {
      throw std::invalid_argument(std::string(key) +
                                  "= requires topology=leafspine");
    }
  }
  DumbbellConfig cfg;
  cfg.queue = sim::parse_queue_backend(opts.get("sched_queue", "heap"));
  const auto queues = static_cast<std::size_t>(opts.get_int("queues", 2));
  cfg.scheduler.kind = sched::parse_scheduler_kind(opts.get("scheduler", "dwrr"));
  cfg.scheduler.num_queues = queues;
  cfg.scheduler.weights = opts.get_double_list("weights");
  if (cfg.scheduler.weights.empty()) cfg.scheduler.weights.assign(queues, 1.0);
  cfg.link_rate = sim::gbps(static_cast<std::uint64_t>(opts.get_int("link_gbps", 10)));
  cfg.link_delay = sim::microseconds_f(opts.get_double("link_delay_us", 2.0));
  cfg.buffer_policy = parse_buffer_policy(opts, &cfg.shared_pool_bytes);

  auto flows_per_queue = opts.get_double_list("flows_per_queue");
  if (flows_per_queue.empty()) flows_per_queue.assign(queues, 1.0);
  if (flows_per_queue.size() != queues) {
    throw std::invalid_argument("flows_per_queue must have one entry per queue");
  }
  std::size_t total_flows = 0;
  for (double f : flows_per_queue) total_flows += static_cast<std::size_t>(f);
  cfg.num_senders = total_flows;

  const Scheme scheme = parse_scheme(opts.get("scheme", "pmsb"));
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds_f(opts.get_double("rtt_us", 18.0));
  params.weights = cfg.scheduler.weights;
  params.point = opts.get("mark_point", "enqueue") == "dequeue"
                     ? ecn::MarkPoint::kDequeue
                     : ecn::MarkPoint::kEnqueue;
  cfg.marking = make_scheme_marking(scheme, params);

  cfg.transport.d2tcp_enabled = opts.get_bool("d2tcp", false);
  DumbbellScenario sc(cfg);
  apply_scheme_transport(scheme, params, sc.base_rtt(), cfg.transport);

  stats::Summary rtt;
  std::size_t sender = 0;
  for (std::size_t q = 0; q < queues; ++q) {
    for (std::size_t f = 0; f < static_cast<std::size_t>(flows_per_queue[q]); ++f) {
      const auto idx = sc.add_flow(
          {.sender = sender++, .service = static_cast<net::ServiceId>(q),
           .bytes = 0, .start = 0,
           .pmsbe = cfg.transport.pmsbe_enabled,
           .pmsbe_rtt_threshold = cfg.transport.pmsbe_rtt_threshold});
      sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
        if (sc.simulator().now() > sim::milliseconds(5)) {
          rtt.add(sim::to_microseconds(t));
        }
      });
    }
  }
  if (digest != nullptr) sc.install_digest(*digest);

  Robustness robust;
  robust.install(
      sc, opts, {"switch"}, [&sc] { return sc.total_bytes_acked(); },
      [&sc] { return sc.all_complete(); },
      [&sc] {
        return "bytes_acked=" + std::to_string(sc.total_bytes_acked()) +
               " bottleneck_backlog=" + std::to_string(sc.bottleneck().buffered_bytes()) +
               "B";
      });

  RunTelemetry telemetry(opts, quiet);
  telemetry.attach(sc);
  StabilityPlane stability;
  stability.attach(sc, telemetry, opts);
  if (!telemetry.metrics_path.empty()) robust.bind(telemetry.registry);
  telemetry.manifest.set_seed(static_cast<std::uint64_t>(opts.get_int("seed", 0)));
  telemetry.manifest.set_info("topology", "dumbbell");
  telemetry.manifest.set_info("scheme", scheme_name(scheme));
  telemetry.manifest.set_info("scheduler", sc.bottleneck().scheduler().name());
  telemetry.manifest.set_info(
      "buffer_policy", switchlib::buffer_policy_kind_name(cfg.buffer_policy.kind));

  const auto duration = sim::milliseconds(opts.get_int("duration_ms", 50));
  sc.run(sim::milliseconds(10));
  std::vector<std::uint64_t> start(queues);
  for (std::size_t q = 0; q < queues; ++q) start[q] = sc.served_bytes(q);
  sc.run(sim::milliseconds(10) + duration);

  const auto marks = sc.bottleneck().stats().marked_enqueue +
                     sc.bottleneck().stats().marked_dequeue;
  const auto drops = sc.bottleneck().stats().dropped_packets;
  if (!quiet) {
    std::printf("dumbbell: %s + %s, %zu queues, %zu flows\n",
                scheme_name(scheme).c_str(),
                sc.bottleneck().scheduler().name().c_str(), queues, total_flows);
  }
  stats::Table table({"queue", "flows", "tput(Gbps)"});
  for (std::size_t q = 0; q < queues; ++q) {
    const double gbps = static_cast<double>(sc.served_bytes(q) - start[q]) * 8.0 /
                        static_cast<double>(duration);
    table.add_row({std::to_string(q), stats::Table::num(flows_per_queue[q], 0),
                   stats::Table::num(gbps)});
    rec.results["throughput_gbps.q" + std::to_string(q)] = gbps;
  }
  if (!quiet) {
    table.print();
    std::printf("rtt avg/p99: %.1f / %.1f us; marks: %llu; drops: %llu\n", rtt.mean(),
                rtt.percentile(99), static_cast<unsigned long long>(marks),
                static_cast<unsigned long long>(drops));
  }

  rec.results["rtt_us.mean"] = rtt.mean();
  rec.results["rtt_us.p99"] = rtt.percentile(99);
  rec.results["marks"] = static_cast<double>(marks);
  rec.results["drops"] = static_cast<double>(drops);
  record_drop_reasons(sc.bottleneck().stats(), rec);
  if (sc.pool() != nullptr) {
    rec.results["buffer.pool_limit_bytes"] =
        static_cast<double>(sc.pool()->limit());
    rec.results["buffer.free_pool_bytes_final"] =
        static_cast<double>(sc.pool()->free_bytes());
  }
  rec.results["sim.events_executed"] =
      static_cast<double>(sc.simulator().executed_events());
  stability.finalize(opts, rec);
  robust.finalize(rec);
  sc.finalize_digest();
  report_digest(digest, rec, telemetry);
  rec.info["topology"] = "dumbbell";
  rec.info["scheme"] = scheme_name(scheme);
  rec.info["scheduler"] = sc.bottleneck().scheduler().name();
  rec.info["buffer_policy"] =
      switchlib::buffer_policy_kind_name(cfg.buffer_policy.kind);
  telemetry.finalize_observability(rec);
  rec.sim_time_us = sim::to_microseconds(sc.simulator().now());
  // Mirror every record result into the manifest so a resumed sweep can
  // rehydrate a bit-identical RunRecord from the file alone.
  for (const auto& [k, v] : rec.results) telemetry.manifest.set_result(k, v);
  telemetry.finish(rec.sim_time_us);
  rec.manifest_path = telemetry.metrics_path;
}

void run_leafspine(const Options& opts, bool quiet, regress::RunDigest* digest,
                   RunRecord& rec) {
  LeafSpineConfig cfg;
  cfg.queue = sim::parse_queue_backend(opts.get("sched_queue", "heap"));
  cfg.link_delay = sim::microseconds_f(opts.get_double("link_delay_us", 9.0));
  cfg.scheduler.kind = sched::parse_scheduler_kind(opts.get("scheduler", "dwrr"));
  const auto queues = static_cast<std::size_t>(opts.get_int("queues", 8));
  cfg.scheduler.num_queues = queues;
  cfg.scheduler.weights.assign(queues, 1.0);
  cfg.buffer_bytes = 2048ull * 1500ull;
  cfg.buffer_policy = parse_buffer_policy(opts, &cfg.shared_pool_bytes);

  const Scheme scheme = parse_scheme(opts.get("scheme", "pmsb"));
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds_f(opts.get_double("rtt_us", 85.2));
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);
  cfg.transport.init_cwnd_segments = 16;
  cfg.transport.d2tcp_enabled = opts.get_bool("d2tcp", false);
  const sim::TimeNs base_rtt =
      4 * sim::serialization_delay(sim::kDefaultMtuBytes, cfg.link_rate) +
      4 * sim::serialization_delay(net::kAckBytes, cfg.link_rate) +
      8 * cfg.link_delay;
  apply_scheme_transport(scheme, params, base_rtt, cfg.transport);

  LeafSpineScenario sc(cfg);
  workload::TrafficConfig tc;
  tc.num_hosts = sc.num_hosts();
  tc.load = opts.get_double("load", 0.5);
  tc.num_flows = static_cast<std::size_t>(opts.get_int("flows", 300));
  tc.num_services = static_cast<std::uint8_t>(queues);
  const auto dist =
      workload::FlowSizeDistribution::by_name(opts.get("workload", "paper-mix"));
  const auto seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  sim::Rng rng(seed);
  const std::string pattern = opts.get("pattern", "poisson");
  workload::Workload wl;
  if (opts.has("trace_file")) {
    // Replay mode: the trace IS the workload; generator keys are ignored.
    workload::FlowTrace trace = workload::read_flow_trace(opts.get("trace_file"));
    if (trace.num_hosts != sc.num_hosts()) {
      throw std::invalid_argument(
          "trace_file: trace has " + std::to_string(trace.num_hosts) +
          " hosts but the fabric has " + std::to_string(sc.num_hosts()));
    }
    wl.flows = std::move(trace.flows);
  } else if (pattern == "poisson") {
    wl.flows = workload::generate_poisson_traffic(tc, dist, rng);
  } else if (pattern == "coflow") {
    workload::CoflowConfig cc;
    cc.num_hosts = sc.num_hosts();
    cc.num_coflows = static_cast<std::size_t>(opts.get_int("coflows", 20));
    cc.num_mappers = static_cast<std::size_t>(opts.get_int("mappers", 4));
    cc.num_reducers = static_cast<std::size_t>(opts.get_int("reducers", 4));
    cc.num_stages = static_cast<std::uint16_t>(opts.get_int("stages", 1));
    cc.mean_interarrival_us = opts.get_double("coflow_gap_us", 1000.0);
    cc.num_services = static_cast<std::uint8_t>(queues);
    wl = workload::generate_coflows(cc, dist, rng);
  } else if (pattern == "rpc") {
    workload::RpcConfig rc;
    rc.num_hosts = sc.num_hosts();
    rc.num_rpcs = static_cast<std::size_t>(opts.get_int("rpcs", 50));
    rc.fanout = static_cast<std::size_t>(opts.get_int("fanout", 8));
    rc.response_bytes = static_cast<std::uint64_t>(opts.get_int("rpc_bytes", 20'000));
    rc.deadline = sim::microseconds_f(opts.get_double("rpc_deadline_us", 2000.0));
    rc.mean_interarrival_us = opts.get_double("rpc_gap_us", 500.0);
    rc.num_services = static_cast<std::uint8_t>(queues);
    wl = workload::generate_rpc_fanout(rc, rng);
  } else {
    throw std::invalid_argument("unknown pattern '" + pattern + "'");
  }
  sc.add_workload(wl);
  if (digest != nullptr) sc.install_digest(*digest);

  // Default bleach location: every spine — the classic "broken middlebox in
  // the core" failure the headline experiment studies.
  std::vector<std::string> spine_names;
  for (std::size_t s = 0; s < cfg.num_spines; ++s) {
    spine_names.push_back("spine" + std::to_string(s));
  }
  Robustness robust;
  robust.install(
      sc, opts, spine_names, [&sc] { return sc.total_bytes_acked(); },
      [&sc] { return sc.all_complete(); },
      [&sc] {
        return "flows_completed=" + std::to_string(sc.completed_flows()) + "/" +
               std::to_string(sc.total_flows()) +
               " bytes_acked=" + std::to_string(sc.total_bytes_acked());
      });

  RunTelemetry telemetry(opts, quiet);
  telemetry.attach(sc);
  StabilityPlane stability;
  stability.attach(sc, telemetry, opts);
  if (!telemetry.metrics_path.empty()) robust.bind(telemetry.registry);
  telemetry.manifest.set_seed(seed);
  telemetry.manifest.set_info("topology", "leafspine");
  telemetry.manifest.set_info("pattern",
                              opts.has("trace_file") ? "trace" : pattern);
  telemetry.manifest.set_info("scheme", scheme_name(scheme));
  telemetry.manifest.set_info("scheduler",
                              sched::scheduler_kind_name(cfg.scheduler.kind));
  telemetry.manifest.set_info("workload", opts.get("workload", "paper-mix"));
  telemetry.manifest.set_info(
      "buffer_policy", switchlib::buffer_policy_kind_name(cfg.buffer_policy.kind));

  const bool done = sc.run_until_complete(sim::seconds(opts.get_int("max_sim_s", 60)));
  if (!quiet) {
    std::printf("leafspine: %s + %s, load %.2f, %zu/%zu flows done%s\n",
                scheme_name(scheme).c_str(),
                sched::scheduler_kind_name(cfg.scheduler.kind).c_str(), tc.load,
                sc.completed_flows(), sc.total_flows(), done ? "" : " (TIME CAP HIT)");

    stats::Table table({"bin", "count", "avg(us)", "p95(us)", "p99(us)"});
    auto add = [&](const char* name, const stats::Summary& s) {
      table.add_row({name, std::to_string(s.count()), stats::Table::num(s.mean(), 0),
                     stats::Table::num(s.percentile(95), 0),
                     stats::Table::num(s.percentile(99), 0)});
    };
    add("small", sc.fct().fct_us(stats::SizeBin::kSmall));
    add("medium", sc.fct().fct_us(stats::SizeBin::kMedium));
    add("large", sc.fct().fct_us(stats::SizeBin::kLarge));
    add("overall", sc.fct().overall_fct_us());
    table.print();
  }

  if (opts.has("fct_csv")) {
    stats::write_fct_csv(opts.get("fct_csv"), sc.fct());
    if (!quiet) std::printf("wrote %s\n", opts.get("fct_csv").c_str());
  }

  if (opts.has("trace_export")) {
    // Realized starts (post-barrier), so a replay is timing-faithful — and
    // for static workloads, bit-identical by digest.
    workload::write_flow_trace(opts.get("trace_export"), sc.num_hosts(),
                               sc.realized_workload());
    if (!quiet) std::printf("wrote %s\n", opts.get("trace_export").c_str());
  }

  telemetry.manifest.set_info("all_flows_completed", done ? "true" : "false");
  rec.info["topology"] = "leafspine";
  rec.info["pattern"] = opts.has("trace_file") ? "trace" : pattern;
  rec.info["scheme"] = scheme_name(scheme);
  rec.info["scheduler"] = sched::scheduler_kind_name(cfg.scheduler.kind);
  rec.info["workload"] = opts.get("workload", "paper-mix");
  rec.info["all_flows_completed"] = done ? "true" : "false";
  rec.info["buffer_policy"] =
      switchlib::buffer_policy_kind_name(cfg.buffer_policy.kind);
  rec.results["flows_completed"] = static_cast<double>(sc.completed_flows());
  rec.results["flows_total"] = static_cast<double>(sc.total_flows());
  rec.results["drops"] = static_cast<double>(sc.total_drops());
  rec.results["marks"] = static_cast<double>(sc.total_marks());
  const auto by_reason = sc.total_drops_by_reason();
  for (std::size_t r = 0; r < by_reason.size(); ++r) {
    rec.results[std::string("drops.") +
                switchlib::drop_reason_name(static_cast<switchlib::DropReason>(r))] =
        static_cast<double>(by_reason[r]);
  }
  auto record_fct = [&](const std::string& bin, const stats::Summary& s) {
    rec.results["fct_us." + bin + ".mean"] = s.mean();
    rec.results["fct_us." + bin + ".p95"] = s.percentile(95);
    rec.results["fct_us." + bin + ".p99"] = s.percentile(99);
  };
  record_fct("small", sc.fct().fct_us(stats::SizeBin::kSmall));
  record_fct("medium", sc.fct().fct_us(stats::SizeBin::kMedium));
  record_fct("large", sc.fct().fct_us(stats::SizeBin::kLarge));
  record_fct("overall", sc.fct().overall_fct_us());
  // Grouped-workload results: coflow completion time as a first-class
  // metric next to FCT, and the deadline outcome for the RPC/D2TCP path.
  // Only emitted when the workload carries groups/deadlines so plain
  // Poisson cells keep their historical column set.
  const stats::Summary cct = sc.fct().group_ct_us();
  if (cct.count() > 0) {
    rec.results["coflow.cct_us.mean"] = cct.mean();
    rec.results["coflow.cct_us.p95"] = cct.percentile(95);
    rec.results["coflow.cct_us.p99"] = cct.percentile(99);
  }
  if (sc.group_tracker() != nullptr) {
    rec.results["coflow.groups"] =
        static_cast<double>(sc.group_tracker()->groups().size());
    rec.results["coflow.groups_completed"] =
        static_cast<double>(sc.group_tracker()->groups_completed());
  }
  const stats::DeadlineStats deadlines = sc.fct().deadline_stats();
  if (deadlines.total > 0) {
    rec.results["deadline.total"] = static_cast<double>(deadlines.total);
    rec.results["deadline.misses"] = static_cast<double>(deadlines.missed);
    rec.results["deadline.miss_fraction"] = deadlines.miss_fraction();
  }
  rec.results["sim.events_executed"] =
      static_cast<double>(sc.simulator().executed_events());
  stability.finalize(opts, rec);
  robust.finalize(rec);
  sc.finalize_digest();
  report_digest(digest, rec, telemetry);
  telemetry.finalize_observability(rec);
  for (const auto& [k, v] : rec.results) telemetry.manifest.set_result(k, v);
  telemetry.manifest.set_result("flows_completed",
                                static_cast<double>(sc.completed_flows()));
  rec.sim_time_us = sim::to_microseconds(sc.simulator().now());
  telemetry.finish(rec.sim_time_us);
  rec.manifest_path = telemetry.metrics_path;
}

}  // namespace

RunRecord run_scenario(const SweepPoint& point, bool quiet) {
  return run_scenario(point, quiet, nullptr);
}

RunRecord run_scenario(const SweepPoint& point, bool quiet,
                       regress::RunDigest* digest) {
  // Test-only deterministic crash hook (no-op unless PMSB_CRASH_AT is set):
  // lets the supervisor tests fault exactly one cell of a real sweep.
  maybe_inject_crash(point.index);
  RunRecord rec;
  rec.index = point.index;
  rec.label = point.label;
  rec.config = point.opts.values();
  // `digest=1` without an external digest: compute one internally just for
  // the info["digest"] / results["digest.events"] report.
  std::unique_ptr<regress::RunDigest> owned;
  if (digest == nullptr && point.opts.get_bool("digest", false)) {
    owned = std::make_unique<regress::RunDigest>();
    digest = owned.get();
  }
  const std::string topology = point.opts.get("topology", "dumbbell");
  if (topology == "dumbbell") {
    run_dumbbell(point.opts, quiet, digest, rec);
  } else if (topology == "leafspine") {
    run_leafspine(point.opts, quiet, digest, rec);
  } else {
    throw std::invalid_argument("unknown topology '" + topology + "'");
  }
  rec.ok = true;
  return rec;
}

}  // namespace pmsb::sweep
