// Deterministic crash injection for testing the sweep supervisor.
//
// The CellSupervisor exists to contain cells that die in ways a C++ catch
// block never sees — SIGSEGV, address-space exhaustion, a callback wedged in
// an infinite loop. Proving that containment works needs a way to produce
// exactly those deaths on demand, in a named cell, deterministically. This
// hook is that way, and it is TEST-ONLY: it does nothing unless the
// PMSB_CRASH_AT environment variable is set, which no production sweep sets.
//
//   PMSB_CRASH_AT=<cell>:<mode>[@<attempt>][,<cell>:<mode>[@<attempt>]...]
//
//   mode  := segv | oom | hang | throw
//     segv   raise(SIGSEGV) — the uncatchable crash class
//     oom    allocate-and-touch until std::bad_alloc (pair with the
//            supervisor's cell_mem_mb address-space cap)
//     hang   spin forever without yielding — the cell_timeout_s blind spot:
//            no event is ever dispatched again, so the in-process Deadline
//            tick can never fire; only the supervisor's hard kill helps
//     throw  throw std::runtime_error — the deterministic failure class the
//            retry policy must NOT retry
//
// The optional @<attempt> suffix restricts the crash to one attempt number
// (1-based), which is how tests build transient faults: "0:segv@1" crashes
// cell 0 on its first attempt and lets the retry succeed. The current
// attempt is read from PMSB_CRASH_ATTEMPT, which the supervisor exports in
// each forked child; outside the supervisor it defaults to 1.
#pragma once

#include <cstddef>

namespace pmsb::sweep {

/// Called at the top of run_scenario with the cell's grid index. No-op
/// unless PMSB_CRASH_AT names this cell (and, with @N, this attempt).
void maybe_inject_crash(std::size_t cell_index);

}  // namespace pmsb::sweep
