// Process-isolated execution of one sweep cell.
//
// run_scenario() contains a cell failure only when it is a C++ exception: a
// SIGSEGV, an OOM kill, a stack overflow, or a callback wedged in an
// infinite loop takes down the whole pmsbsim process and every in-flight
// cell with it. The CellSupervisor closes that gap: with `isolate=1` each
// cell runs in a forked child under resource caps (RLIMIT_AS from
// `cell_mem_mb=`, a hard wall-clock kill from `cell_timeout_s=` enforced by
// the PARENT, so it fires even when the child never dispatches another
// event), results come back through the cell's manifest file, and any
// abnormal exit is classified into a structured diagnostic instead of a
// dead sweep.
//
// Exit classes:
//   ok       the child completed and wrote a valid manifest
//   throw    a C++ exception — deterministic, never retried
//   signal   the child died on a signal (SIGSEGV, SIGABRT, ...)
//   timeout  the in-child Deadline fired (exit code 4) or the parent had to
//            hard-kill past the wall budget
//   oom      std::bad_alloc under the address-space cap (exit code 3), or a
//            SIGKILL with rusage evidence of hitting the cap
//
// signal/timeout/oom are the transient ("crash") classes the retry policy
// may re-attempt; `throw` is deterministic and quarantines immediately.
//
// Child exit-code protocol (chosen to dodge 0/1/2, which scenario code and
// shells already use): 0 ok, 2 throw, 3 oom, 4 timeout.
#pragma once

#include <cstddef>
#include <string>

#include "sweep/sweep.hpp"

namespace pmsb::sweep {

enum class ExitClass { kOk, kThrow, kSignal, kTimeout, kOom };

/// Stable lowercase name ("ok", "throw", "signal", "timeout", "oom") used in
/// reports, manifests, and repro bundles.
[[nodiscard]] const char* exit_class_name(ExitClass c);

/// True for the crash classes the retry policy may re-attempt (signal,
/// timeout, oom). `throw` is deterministic: re-running the same Options
/// reproduces it, so retrying only burns the budget.
[[nodiscard]] bool exit_class_retryable(ExitClass c);

/// Resource caps applied to the forked child. Zero disables a cap.
struct CellLimits {
  double wall_s = 0.0;      ///< hard wall-clock kill (cell_timeout_s)
  std::size_t mem_mb = 0;   ///< RLIMIT_AS in MiB (cell_mem_mb)
};

/// What happened to one child attempt.
struct CellOutcome {
  ExitClass exit_class = ExitClass::kOk;
  int exit_code = 0;      ///< child exit status (when it exited)
  int exit_signal = 0;    ///< terminating signal (when it was killed)
  bool hard_killed = false;  ///< the parent SIGKILLed past the wall budget
  double peak_rss_bytes = 0.0;  ///< child ru_maxrss
  double wall_ms = 0.0;
  std::string error;      ///< diagnostic; empty iff exit_class == kOk
};

/// Forks and runs run_scenario(point, quiet=true) in the child under
/// `limits`, then waits, classifies, and returns. The child's results come
/// back through the manifest at point.opts["metrics_json"] (the caller
/// salvages it on kOk); on a thrown exception the child ships e.what() back
/// over a pipe so the parent's diagnostic carries the exact message.
/// `attempt` (1-based) is exported to the child as PMSB_CRASH_ATTEMPT so the
/// crash-injection hook can build transient faults.
///
/// The hard kill triggers at wall_s * 1.25 + 0.5s: the in-child Deadline
/// gets first shot at a deterministic [cell_timeout] diagnostic, the parent
/// only steps in when the child is too wedged to run its own tick.
[[nodiscard]] CellOutcome run_cell_in_child(const SweepPoint& point,
                                            const CellLimits& limits,
                                            int attempt);

/// "SIGSEGV" / "SIGKILL" / ... for the common fatal signals, "signal <n>"
/// otherwise.
[[nodiscard]] std::string signal_name(int sig);

/// Per-cell repro bundle file name, padded like manifest_file_name:
/// "repro_<index>.json".
[[nodiscard]] std::string repro_file_name(std::size_t index,
                                          std::size_t grid_size);

/// Serializes a crash-repro bundle (`pmsb.repro/1`) for a quarantined cell:
/// the exact Options echo (seed and faults timeline included), the label,
/// and the failure diagnostic. `pmsbsim repro=<file>` re-runs it solo.
[[nodiscard]] std::string repro_bundle_json(const SweepPoint& point,
                                            const RunRecord& rec);

/// A parsed pmsb.repro/1 bundle.
struct ReproBundle {
  std::size_t cell_index = 0;
  std::string label;
  std::string exit_class;  ///< class recorded at quarantine time
  std::string error;       ///< original diagnostic
  experiments::Options opts;  ///< exact config echo of the failed cell
};

/// Parses the bundle at `path`; throws std::runtime_error when the file is
/// unreadable, not JSON, or not a pmsb.repro/1 document.
[[nodiscard]] ReproBundle load_repro_bundle(const std::string& path);

}  // namespace pmsb::sweep
