// Parallel deterministic sweep runner.
//
// The paper's evaluation is a grid of scenario runs (thresholds x schedulers
// x loads x workloads x seeds). Each simulator run stays single-threaded and
// deterministic — a run is fully determined by its Options — so a sweep is
// embarrassingly parallel: expand_grid() turns a base config plus a spec
// string into N SweepPoints, and run_sweep() fans them across a worker pool.
//
// Determinism contract: a run owns every piece of mutable state it touches
// (Simulator, packet-id allocator, Rng, telemetry registry), so the results
// of point i are bit-identical whether the sweep runs with jobs=1 or
// jobs=32, and whether the point runs first or last in the process.
// deterministic_signature() serializes exactly the reproducible part of a
// RunRecord (everything except wall-clock) so tests and CI can assert this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "experiments/options.hpp"

namespace pmsb::sweep {

/// One cell of the sweep grid: the base options with this point's overrides
/// applied. `label` names only the varied keys ("load=0.3 scheduler=wfq").
struct SweepPoint {
  std::size_t index = 0;
  std::string label;
  experiments::Options opts;
};

/// Expands `spec` against `base` into the cartesian product of its
/// dimensions. Spec grammar (CLI-friendly: no '=' or spaces needed):
///
///   spec      := dimension (';' dimension)*
///   dimension := key ':' value (',' value)*
///
/// e.g. "load:0.3,0.5,0.7;scheduler:dwrr,wfq" -> 6 points. Dimensions vary
/// in declaration order, last dimension fastest. Throws std::invalid_argument
/// on malformed specs (empty key, empty value list, duplicate key).
[[nodiscard]] std::vector<SweepPoint> expand_grid(const experiments::Options& base,
                                                  const std::string& spec);

/// Runs fn(0..n-1) across `jobs` worker threads (jobs <= 1 runs inline on
/// the calling thread). Indices are handed out by an atomic counter; call
/// order across threads is unspecified, so fn must only write state owned by
/// its index. The first exception thrown by any fn is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// Outcome of one sweep point. Everything except `wall_ms` is a pure
/// function of the point's options.
struct RunRecord {
  std::size_t index = 0;
  std::string label;
  bool ok = false;
  std::string error;                           ///< non-empty when !ok
  std::map<std::string, std::string> config;   ///< the point's full options
  std::map<std::string, std::string> info;     ///< string facts (topology, ...)
  std::map<std::string, double> results;       ///< scalar results
  double sim_time_us = 0.0;
  double wall_ms = 0.0;                        ///< nondeterministic; not in signatures
  std::string manifest_path;                   ///< "" when no manifest was written
};

struct SweepConfig {
  std::size_t jobs = 1;
  /// When non-empty, each run writes a pmsb.run_manifest/1 JSON at
  /// <manifest_dir>/run_<index>.json (the directory must exist).
  std::string manifest_dir;
  /// Print one progress line per completed run.
  bool progress = false;
};

/// Runs every point (isolated scenario per point; see scenario_run.hpp) and
/// returns records in point order. A point whose run throws yields a record
/// with ok=false and the exception message — the sweep itself never throws
/// on scenario errors.
[[nodiscard]] std::vector<RunRecord> run_sweep(const std::vector<SweepPoint>& points,
                                               const SweepConfig& config);

/// Canonical serialization of the reproducible part of a record (label,
/// config, info, results at full double precision, sim time). Two runs of
/// the same point are bit-identical iff their signatures compare equal.
[[nodiscard]] std::string deterministic_signature(const RunRecord& rec);

/// Aggregated sweep report, schema `pmsb.sweep_report/1`:
///   { "schema": "pmsb.sweep_report/1", "git": ..., "jobs": N,
///     "points": N, "failed": N, "wall_s": W,
///     "runs": [ {"index", "label", "ok", "error"?, "config", "info",
///                "results", "sim_time_us", "wall_ms", "manifest"?}, ...] }
[[nodiscard]] std::string sweep_report_json(const std::vector<RunRecord>& records,
                                            std::size_t jobs, double wall_s);

/// One row per run: index,label,ok,error,sim_time_us,wall_ms plus the sorted
/// union of every result key (blank cell where a run lacks the key).
[[nodiscard]] std::string sweep_report_csv(const std::vector<RunRecord>& records);

/// Writes `content` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace pmsb::sweep
