// Parallel deterministic sweep runner.
//
// The paper's evaluation is a grid of scenario runs (thresholds x schedulers
// x loads x workloads x seeds). Each simulator run stays single-threaded and
// deterministic — a run is fully determined by its Options — so a sweep is
// embarrassingly parallel: expand_grid() turns a base config plus a spec
// string into N SweepPoints, and run_sweep() fans them across a worker pool.
//
// Determinism contract: a run owns every piece of mutable state it touches
// (Simulator, packet-id allocator, Rng, telemetry registry), so the results
// of point i are bit-identical whether the sweep runs with jobs=1 or
// jobs=32, and whether the point runs first or last in the process.
// deterministic_signature() serializes exactly the reproducible part of a
// RunRecord (everything except wall-clock) so tests and CI can assert this.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "experiments/options.hpp"

namespace pmsb::sweep {

/// One cell of the sweep grid: the base options with this point's overrides
/// applied. `label` names only the varied keys ("load=0.3 scheduler=wfq").
struct SweepPoint {
  std::size_t index = 0;
  std::string label;
  experiments::Options opts;
};

/// Expands `spec` against `base` into the cartesian product of its
/// dimensions. Spec grammar (CLI-friendly: no '=' or spaces needed):
///
///   spec      := dimension (';' dimension)*
///   dimension := key ':' value (',' value)*
///
/// e.g. "load:0.3,0.5,0.7;scheduler:dwrr,wfq" -> 6 points. Dimensions vary
/// in declaration order, last dimension fastest. Throws std::invalid_argument
/// on malformed specs (empty key, empty value list, duplicate key).
[[nodiscard]] std::vector<SweepPoint> expand_grid(const experiments::Options& base,
                                                  const std::string& spec);

/// Runs fn(0..n-1) across `jobs` worker threads (jobs <= 1 runs inline on
/// the calling thread). Indices are handed out by an atomic counter; call
/// order across threads is unspecified, so fn must only write state owned by
/// its index. The first exception thrown by any fn is rethrown on the
/// calling thread after all workers join.
void parallel_for(std::size_t n, std::size_t jobs,
                  const std::function<void(std::size_t)>& fn);

/// Outcome of one sweep point. Everything except `wall_ms` and `salvaged`
/// is a pure function of the point's options.
struct RunRecord {
  std::size_t index = 0;
  std::string label;
  bool ok = false;
  std::string error;                           ///< non-empty when !ok
  std::map<std::string, std::string> config;   ///< the point's full options
  std::map<std::string, std::string> info;     ///< string facts (topology, ...)
  std::map<std::string, double> results;       ///< scalar results
  double sim_time_us = 0.0;
  double wall_ms = 0.0;                        ///< nondeterministic; not in signatures
  std::string manifest_path;                   ///< "" when no manifest was written
  /// True when the record was rehydrated from an existing manifest instead
  /// of re-running the cell. Process-local bookkeeping: excluded from both
  /// deterministic_signature() and the report JSON, so a resumed sweep's
  /// report is byte-identical to an uninterrupted run's.
  bool salvaged = false;

  // --- supervisor diagnostics (see cell_supervisor.hpp) ------------------
  // Live measurements of how the cell executed, not what it computed: like
  // wall_ms they are excluded from deterministic_signature(), and salvaged
  // records keep the defaults.
  std::size_t attempts = 1;    ///< executions incl. retries (salvaged: 1)
  std::string exit_class = "ok";  ///< ok | throw | signal | timeout | oom
  int exit_signal = 0;         ///< terminating signal when exit_class=signal
  int exit_code = 0;           ///< child exit code when it exited abnormally
  double peak_rss_bytes = 0.0;  ///< child ru_maxrss (isolated cells only)
  /// Failed terminally under isolation (retries exhausted or deterministic
  /// failure); the sweep completed around it and wrote a repro bundle.
  bool quarantined = false;
  std::string repro_path;      ///< crash-repro bundle ("" unless quarantined)
};

struct SweepConfig {
  std::size_t jobs = 1;
  /// When non-empty, each run writes a pmsb.run_manifest/1 JSON at
  /// <manifest_dir>/<manifest_file_name(index, grid)> (the directory must
  /// exist). Cells that fail write a stub manifest with info.status=failed
  /// so a later resume re-runs them instead of salvaging garbage.
  std::string manifest_dir;
  /// With manifest_dir set: before running a cell, try to rehydrate it from
  /// an existing manifest (see try_salvage_cell). Valid manifests are
  /// salvaged; missing, corrupt, config-drifted, or failed ones are re-run.
  bool resume = false;
  /// > 0: per-cell wall-clock budget in host seconds, enforced from inside
  /// each cell's event loop (faults::Deadline). An over-budget cell fails
  /// alone with a [cell_timeout] diagnostic; the rest of the grid proceeds.
  /// In-process (isolate=false) this is BEST-EFFORT: the deadline tick is a
  /// sim event, so a callback that never returns is never interrupted (see
  /// faults::Deadline::blind_spot_note()). With isolate=true the supervisor
  /// additionally hard-kills the child past the budget.
  double cell_timeout_s = 0.0;
  /// Run each cell in a forked child under the CellSupervisor: crashes
  /// (SIGSEGV, OOM kills, wedged callbacks) fail the cell — with a named
  /// exit class in the report — instead of the whole sweep. Results come
  /// back through the per-cell manifests; with an empty manifest_dir a
  /// private temp directory is created (and reported via manifest_path).
  bool isolate = false;
  /// With isolate: RLIMIT_AS cap per child, in MiB (0 = unlimited).
  /// Echoed into each cell's config as cell_mem_mb= so repro bundles and
  /// salvage validation carry it; inert in-process.
  std::size_t cell_mem_mb = 0;
  /// With isolate: extra attempts for cells that fail in a crash class
  /// (signal / timeout / oom). Deterministic failures (class throw) are
  /// never retried. A cell that exhausts its attempts is quarantined: the
  /// sweep completes, the record carries the diagnostic and a repro bundle.
  std::size_t cell_retries = 0;
  /// With isolate: backoff before retry k is retry_backoff_ms * 2^(k-1)
  /// milliseconds. Tests shrink it; the default absorbs transient host
  /// pressure (the usual cause of spurious OOM / timeout classes).
  double retry_backoff_ms = 250.0;
  /// Print one progress line per completed run.
  bool progress = false;
  /// Called (concurrently, from worker threads) once per cell that actually
  /// executes — salvaged cells skip it. Tests use it as a run counter to
  /// assert a resume re-runs only missing/invalid cells.
  std::function<void(std::size_t index)> on_cell_run;
};

/// Runs every point (isolated scenario per point; see scenario_run.hpp) and
/// returns records in point order. A point whose run throws yields a record
/// with ok=false and the exception message — the sweep itself never throws
/// on scenario errors.
[[nodiscard]] std::vector<RunRecord> run_sweep(const std::vector<SweepPoint>& points,
                                               const SweepConfig& config);

/// Per-cell manifest file name: "run_<index>.json", zero-padded to the
/// grid's width (min 3 digits, wider for grids >= 1000 cells) so every cell
/// gets a distinct, equal-length name and lexicographic order equals index
/// order.
[[nodiscard]] std::string manifest_file_name(std::size_t index,
                                             std::size_t grid_size);

/// Result of attempting to salvage one cell from its on-disk manifest.
struct SalvageOutcome {
  std::optional<RunRecord> record;  ///< set iff the manifest was valid
  std::string reason;               ///< why salvage was refused (diagnostic)
};

/// Validates the manifest at `manifest_path` against the grid point `point`
/// (whose options must already carry the transforms run_sweep applies:
/// metrics_json set to the manifest path, colliding per-run outputs erased)
/// and, when it checks out, rehydrates it into a RunRecord whose
/// deterministic_signature() matches what re-running the cell would have
/// produced. Salvage is refused — with the reason — when the file is
/// missing or unparseable, the schema string is wrong, the manifest is not
/// from a completed run (info.status != "ok"), it carries no results, or
/// its config echo drifted from the grid point.
[[nodiscard]] SalvageOutcome try_salvage_cell(const std::string& manifest_path,
                                              const SweepPoint& point);

/// Canonical serialization of the reproducible part of a record (label,
/// config, info, results at full double precision, sim time). Two runs of
/// the same point are bit-identical iff their signatures compare equal.
[[nodiscard]] std::string deterministic_signature(const RunRecord& rec);

/// Aggregated sweep report, schema `pmsb.sweep_report/1`:
///   { "schema": "pmsb.sweep_report/1", "git": ..., "jobs": N,
///     "points": N, "failed": N, "quarantined": N, "wall_s": W,
///     "runs": [ {"index", "label", "ok", "error"?, "attempts",
///                "exit_class", "exit_signal"?, "exit_code"?,
///                "peak_rss_bytes"?, "quarantined"?, "config", "info",
///                "results", "sim_time_us", "wall_ms", "manifest"?,
///                "repro"?}, ...] }
/// exit_signal / exit_code appear when non-zero, peak_rss_bytes when the
/// cell ran isolated, quarantined / repro only on quarantined cells.
[[nodiscard]] std::string sweep_report_json(const std::vector<RunRecord>& records,
                                            std::size_t jobs, double wall_s);

/// One row per run: index,label,ok,attempts,exit_class,error,sim_time_us,
/// wall_ms plus the sorted union of every result key (blank cell where a
/// run lacks the key).
[[nodiscard]] std::string sweep_report_csv(const std::vector<RunRecord>& records);

/// Writes `content` to `path`; throws std::runtime_error on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

}  // namespace pmsb::sweep
