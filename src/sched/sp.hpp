// Strict Priority: queue 0 is the highest priority; a lower-index queue is
// always served before any higher-index one.
#pragma once

#include "sched/scheduler.hpp"

namespace pmsb::sched {

class SpScheduler final : public Scheduler {
 public:
  explicit SpScheduler(std::size_t num_queues, std::vector<double> weights = {})
      : Scheduler(num_queues, std::move(weights)) {}

  [[nodiscard]] std::string name() const override { return "SP"; }

 protected:
  std::size_t select_queue(TimeNs) override {
    for (std::size_t q = 0; q < num_queues(); ++q) {
      if (backlogged(q)) return q;
    }
    throw std::logic_error("SpScheduler: select_queue on empty scheduler");
  }
};

}  // namespace pmsb::sched
