// Deficit Weighted Round Robin.
//
// Classic DWRR (Shreedhar & Varghese): each visit to a backlogged queue adds
// quantum_i = weight_i * quantum_base to its deficit counter; the queue is
// served while its head fits in the deficit. A queue that empties forfeits
// its deficit. One full pass over the queues is a "round"; completion is
// reported to the round observer so MQ-ECN can estimate T_round.
#pragma once

#include <cstdint>

#include "sched/scheduler.hpp"
#include "sim/units.hpp"

namespace pmsb::sched {

class DwrrScheduler final : public Scheduler {
 public:
  DwrrScheduler(std::size_t num_queues, std::vector<double> weights = {},
                std::uint32_t quantum_base = sim::kDefaultMtuBytes);

  [[nodiscard]] std::string name() const override { return "DWRR"; }
  [[nodiscard]] bool round_based() const override { return true; }

  /// quantum_i in bytes (needed by MQ-ECN's Eq. 3).
  [[nodiscard]] double quantum(std::size_t q) const {
    return weight(q) * quantum_base_;
  }

  [[nodiscard]] std::int64_t deficit(std::size_t q) const { return deficit_.at(q); }

 protected:
  std::size_t select_queue(TimeNs now) override;

 private:
  std::uint32_t quantum_base_;
  std::vector<std::int64_t> deficit_;
  std::size_t cursor_ = 0;
  bool quantum_added_this_visit_ = false;
};

}  // namespace pmsb::sched
