#include "sched/factory.hpp"

#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "sched/dwrr.hpp"
#include "sched/fifo.hpp"
#include "sched/hierarchical.hpp"
#include "sched/sp.hpp"
#include "sched/wfq.hpp"
#include "sched/wrr.hpp"

namespace pmsb::sched {

SchedulerKind parse_scheduler_kind(const std::string& name) {
  std::string up(name.size(), '\0');
  std::transform(name.begin(), name.end(), up.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (up == "FIFO") return SchedulerKind::kFifo;
  if (up == "SP") return SchedulerKind::kSp;
  if (up == "WRR") return SchedulerKind::kWrr;
  if (up == "DWRR" || up == "DRR") return SchedulerKind::kDwrr;
  if (up == "WFQ") return SchedulerKind::kWfq;
  if (up == "SP+WFQ" || up == "SPWFQ") return SchedulerKind::kSpWfq;
  throw std::invalid_argument("unknown scheduler: " + name);
}

std::string scheduler_kind_name(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "FIFO";
    case SchedulerKind::kSp: return "SP";
    case SchedulerKind::kWrr: return "WRR";
    case SchedulerKind::kDwrr: return "DWRR";
    case SchedulerKind::kWfq: return "WFQ";
    case SchedulerKind::kSpWfq: return "SP+WFQ";
  }
  return "?";
}

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& config) {
  switch (config.kind) {
    case SchedulerKind::kFifo:
      return std::make_unique<FifoScheduler>(config.num_queues, config.weights);
    case SchedulerKind::kSp:
      return std::make_unique<SpScheduler>(config.num_queues, config.weights);
    case SchedulerKind::kWrr:
      return std::make_unique<WrrScheduler>(config.num_queues, config.weights);
    case SchedulerKind::kDwrr:
      return std::make_unique<DwrrScheduler>(config.num_queues, config.weights,
                                             config.dwrr_quantum_base);
    case SchedulerKind::kWfq:
      return std::make_unique<WfqScheduler>(config.num_queues, config.weights);
    case SchedulerKind::kSpWfq: {
      auto group = config.priority_group;
      if (group.empty()) group.assign(config.num_queues, 0);
      return std::make_unique<SpWfqScheduler>(config.num_queues, std::move(group),
                                              config.weights);
    }
  }
  throw std::invalid_argument("make_scheduler: bad kind");
}

}  // namespace pmsb::sched
