#include "sched/hierarchical.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmsb::sched {

SpWfqScheduler::SpWfqScheduler(std::size_t num_queues, std::vector<std::size_t> group,
                               std::vector<double> weights)
    : Scheduler(num_queues, std::move(weights)),
      group_(std::move(group)),
      finish_tags_(num_queues),
      last_finish_(num_queues, 0.0) {
  if (group_.size() != num_queues) {
    throw std::invalid_argument("SpWfqScheduler: group count != queue count");
  }
  for (std::size_t g : group_) num_groups_ = std::max(num_groups_, g + 1);
  vtime_.assign(num_groups_, 0.0);
  group_backlog_.assign(num_groups_, 0);
}

void SpWfqScheduler::on_enqueue(std::size_t q, const Packet& pkt) {
  const std::size_t g = group_[q];
  const double start = std::max(vtime_[g], last_finish_[q]);
  const double finish = start + static_cast<double>(pkt.size_bytes) / weight(q);
  last_finish_[q] = finish;
  finish_tags_[q].push_back(finish);
  ++group_backlog_[g];
}

void SpWfqScheduler::on_dequeue(std::size_t q, const Packet&) {
  const std::size_t g = group_[q];
  vtime_[g] = finish_tags_[q].front();
  finish_tags_[q].pop_front();
  --group_backlog_[g];
  if (group_backlog_[g] == 0) {
    vtime_[g] = 0.0;
    for (std::size_t i = 0; i < num_queues(); ++i) {
      if (group_[i] == g) last_finish_[i] = 0.0;
    }
  }
}

std::size_t SpWfqScheduler::select_queue(TimeNs) {
  for (std::size_t g = 0; g < num_groups_; ++g) {
    if (group_backlog_[g] == 0) continue;
    std::size_t best = num_queues();
    double best_tag = 0.0;
    for (std::size_t q = 0; q < num_queues(); ++q) {
      if (group_[q] != g || !backlogged(q)) continue;
      const double tag = finish_tags_[q].front();
      if (best == num_queues() || tag < best_tag) {
        best = q;
        best_tag = tag;
      }
    }
    if (best != num_queues()) return best;
  }
  throw std::logic_error("SpWfqScheduler: empty");
}

}  // namespace pmsb::sched
