// Weighted Round Robin: serves up to round(w_i) packets from each backlogged
// queue per round. Reports round completion for MQ-ECN's T_round estimate.
#pragma once

#include <cmath>

#include "sched/scheduler.hpp"

namespace pmsb::sched {

class WrrScheduler final : public Scheduler {
 public:
  explicit WrrScheduler(std::size_t num_queues, std::vector<double> weights = {})
      : Scheduler(num_queues, std::move(weights)), credits_(num_queues, 0) {}

  [[nodiscard]] std::string name() const override { return "WRR"; }
  [[nodiscard]] bool round_based() const override { return true; }

 protected:
  std::size_t select_queue(TimeNs now) override;

 private:
  void start_round(TimeNs now);

  std::vector<int> credits_;
  std::size_t cursor_ = 0;
  bool in_round_ = false;
};

}  // namespace pmsb::sched
