// Scheduler factory: builds a scheduler from a declarative config so that
// experiment harnesses and benches can select disciplines by name.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"

namespace pmsb::sched {

enum class SchedulerKind { kFifo, kSp, kWrr, kDwrr, kWfq, kSpWfq };

struct SchedulerConfig {
  SchedulerKind kind = SchedulerKind::kDwrr;
  std::size_t num_queues = 1;
  std::vector<double> weights;             ///< empty = all 1.0
  std::vector<std::size_t> priority_group; ///< SP+WFQ only; empty = all group 0
  std::uint32_t dwrr_quantum_base = 1500;  ///< DWRR quantum per unit weight
};

/// Parses "FIFO" / "SP" / "WRR" / "DWRR" / "WFQ" / "SP+WFQ" (case-insensitive).
SchedulerKind parse_scheduler_kind(const std::string& name);

/// Human-readable name for a kind.
std::string scheduler_kind_name(SchedulerKind kind);

std::unique_ptr<Scheduler> make_scheduler(const SchedulerConfig& config);

}  // namespace pmsb::sched
