// Packet scheduler interface for multi-queue switch ports.
//
// A Scheduler owns the per-queue packet storage of one output port and
// decides dequeue order. The owning Port drives it: `enqueue(q, pkt)` on
// classification, `dequeue(now)` whenever the link goes idle.
//
// Round-based schedulers (WRR, DWRR) additionally report when a full
// scheduling round — one pass over all backlogged queues — completes; the
// MQ-ECN marking scheme consumes those events to estimate T_round (Eq. 3 of
// the PMSB paper). Schedulers without rounds (WFQ, SP) never emit them,
// which is exactly why MQ-ECN cannot run on them (paper Table I).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pmsb::sched {

using net::Packet;
using sim::TimeNs;

/// Result of a dequeue: the packet and the queue it came from.
struct Dequeued {
  Packet pkt;
  std::size_t queue = 0;
};

class Scheduler {
 public:
  /// Fired when a scheduling round completes (round-based schedulers only).
  using RoundObserver = std::function<void(TimeNs)>;

  Scheduler(std::size_t num_queues, std::vector<double> weights);
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Stores `pkt` in queue `q`.
  void enqueue(std::size_t q, Packet pkt);

  /// Removes and returns the next packet to transmit, or nullopt if idle.
  [[nodiscard]] std::optional<Dequeued> dequeue(TimeNs now);

  /// Human-readable scheduler name ("DWRR", "WFQ", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// True if the discipline serves queues in rounds (WRR/DWRR).
  [[nodiscard]] virtual bool round_based() const { return false; }

  // --- Introspection used by ECN marking schemes and tests ---
  [[nodiscard]] std::size_t num_queues() const { return queues_.size(); }
  [[nodiscard]] std::uint64_t queue_bytes(std::size_t q) const { return qbytes_.at(q); }
  [[nodiscard]] std::size_t queue_packets(std::size_t q) const { return queues_.at(q).size(); }
  [[nodiscard]] std::uint64_t total_bytes() const { return total_bytes_; }
  [[nodiscard]] std::size_t total_packets() const { return total_packets_; }
  [[nodiscard]] bool empty() const { return total_packets_ == 0; }
  [[nodiscard]] double weight(std::size_t q) const { return weights_.at(q); }
  [[nodiscard]] double weight_sum() const { return weight_sum_; }
  [[nodiscard]] const std::vector<double>& weights() const { return weights_; }

  /// Bytes `dequeue` has handed out per queue (for fairness tests).
  [[nodiscard]] std::uint64_t served_bytes(std::size_t q) const { return served_.at(q); }
  /// Packets `dequeue` has handed out per queue.
  [[nodiscard]] std::uint64_t served_packets(std::size_t q) const {
    return served_packets_.at(q);
  }

  void set_round_observer(RoundObserver obs) { round_observer_ = std::move(obs); }

 protected:
  /// Subclass hook: pick the queue to serve next. Called only when at least
  /// one queue is backlogged; must return a backlogged queue index.
  virtual std::size_t select_queue(TimeNs now) = 0;

  /// Subclass hook: observe an enqueue (for virtual-time bookkeeping).
  virtual void on_enqueue(std::size_t q, const Packet& pkt) {
    (void)q;
    (void)pkt;
  }

  /// Subclass hook: observe a completed dequeue.
  virtual void on_dequeue(std::size_t q, const Packet& pkt) {
    (void)q;
    (void)pkt;
  }

  [[nodiscard]] bool backlogged(std::size_t q) const { return !queues_[q].empty(); }
  [[nodiscard]] const Packet& head(std::size_t q) const { return queues_[q].front(); }

  void notify_round_complete(TimeNs now) {
    if (round_observer_) round_observer_(now);
  }

 private:
  std::vector<std::deque<Packet>> queues_;
  std::vector<std::uint64_t> qbytes_;
  std::vector<std::uint64_t> served_;
  std::vector<std::uint64_t> served_packets_;
  std::vector<double> weights_;
  double weight_sum_ = 0;
  std::uint64_t total_bytes_ = 0;
  std::size_t total_packets_ = 0;
  RoundObserver round_observer_;
};

}  // namespace pmsb::sched
