// Hierarchical SP + WFQ.
//
// Queues are partitioned into strict-priority groups (lower group id =
// higher priority). Within a group, SCFQ-style weighted fair queueing
// applies. This reproduces the paper's SP+WFQ configuration (Fig. 13):
// one strict-high queue over a WFQ pair. With every queue in its own group
// it degenerates to SP; with all queues in one group it degenerates to WFQ.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pmsb::sched {

class SpWfqScheduler final : public Scheduler {
 public:
  /// `group[q]` is the strict-priority group of queue q (0 = highest).
  SpWfqScheduler(std::size_t num_queues, std::vector<std::size_t> group,
                 std::vector<double> weights = {});

  [[nodiscard]] std::string name() const override { return "SP+WFQ"; }

  [[nodiscard]] std::size_t group_of(std::size_t q) const { return group_.at(q); }

 protected:
  void on_enqueue(std::size_t q, const Packet& pkt) override;
  void on_dequeue(std::size_t q, const Packet& pkt) override;
  std::size_t select_queue(TimeNs now) override;

 private:
  std::vector<std::size_t> group_;
  std::size_t num_groups_ = 0;
  std::vector<std::deque<double>> finish_tags_;   // per queue
  std::vector<double> last_finish_;               // per queue
  std::vector<double> vtime_;                     // per group
  std::vector<std::size_t> group_backlog_;        // packets per group
};

}  // namespace pmsb::sched
