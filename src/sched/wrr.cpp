#include "sched/wrr.hpp"

namespace pmsb::sched {

void WrrScheduler::start_round(TimeNs now) {
  if (in_round_) notify_round_complete(now);
  in_round_ = true;
  cursor_ = 0;
  for (std::size_t q = 0; q < num_queues(); ++q) {
    credits_[q] = std::max(1, static_cast<int>(std::lround(weight(q))));
  }
}

std::size_t WrrScheduler::select_queue(TimeNs now) {
  if (!in_round_) start_round(now);
  // Two sweeps are always enough: if the first sweep finds no queue with
  // both backlog and credit, a new round refreshes every credit and the
  // second sweep must succeed (the base class guarantees backlog exists).
  for (int sweep = 0; sweep < 2; ++sweep) {
    for (; cursor_ < num_queues(); ++cursor_) {
      if (backlogged(cursor_) && credits_[cursor_] > 0) {
        --credits_[cursor_];
        return cursor_;
      }
    }
    start_round(now);
  }
  throw std::logic_error("WrrScheduler: no eligible queue");
}

}  // namespace pmsb::sched
