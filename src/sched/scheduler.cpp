#include "sched/scheduler.hpp"

#include <cassert>
#include <numeric>
#include <utility>

namespace pmsb::sched {

Scheduler::Scheduler(std::size_t num_queues, std::vector<double> weights)
    : queues_(num_queues),
      qbytes_(num_queues, 0),
      served_(num_queues, 0),
      served_packets_(num_queues, 0),
      weights_(std::move(weights)) {
  if (num_queues == 0) throw std::invalid_argument("Scheduler: need >= 1 queue");
  if (weights_.empty()) weights_.assign(num_queues, 1.0);
  if (weights_.size() != num_queues) {
    throw std::invalid_argument("Scheduler: weight count != queue count");
  }
  for (double w : weights_) {
    if (w <= 0) throw std::invalid_argument("Scheduler: weights must be positive");
  }
  weight_sum_ = std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

void Scheduler::enqueue(std::size_t q, Packet pkt) {
  if (q >= queues_.size()) throw std::out_of_range("Scheduler::enqueue: bad queue");
  qbytes_[q] += pkt.size_bytes;
  total_bytes_ += pkt.size_bytes;
  ++total_packets_;
  on_enqueue(q, pkt);
  queues_[q].push_back(std::move(pkt));
}

std::optional<Dequeued> Scheduler::dequeue(TimeNs now) {
  if (total_packets_ == 0) return std::nullopt;
  const std::size_t q = select_queue(now);
  assert(q < queues_.size() && !queues_[q].empty());
  Packet pkt = std::move(queues_[q].front());
  queues_[q].pop_front();
  qbytes_[q] -= pkt.size_bytes;
  total_bytes_ -= pkt.size_bytes;
  --total_packets_;
  served_[q] += pkt.size_bytes;
  ++served_packets_[q];
  on_dequeue(q, pkt);
  return Dequeued{std::move(pkt), q};
}

}  // namespace pmsb::sched
