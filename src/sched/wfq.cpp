#include "sched/wfq.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmsb::sched {

void WfqScheduler::on_enqueue(std::size_t q, const Packet& pkt) {
  const double start = std::max(vtime_, last_finish_[q]);
  const double finish = start + static_cast<double>(pkt.size_bytes) / weight(q);
  last_finish_[q] = finish;
  finish_tags_[q].push_back(finish);
}

void WfqScheduler::on_dequeue(std::size_t q, const Packet&) {
  vtime_ = finish_tags_[q].front();
  finish_tags_[q].pop_front();
  if (total_packets() == 0) {
    // Idle port: rebase virtual time so tags do not grow without bound.
    vtime_ = 0.0;
    std::fill(last_finish_.begin(), last_finish_.end(), 0.0);
  }
}

std::size_t WfqScheduler::select_queue(TimeNs) {
  std::size_t best = num_queues();
  double best_tag = 0.0;
  for (std::size_t q = 0; q < num_queues(); ++q) {
    if (!backlogged(q)) continue;
    const double tag = finish_tags_[q].front();
    if (best == num_queues() || tag < best_tag) {
      best = q;
      best_tag = tag;
    }
  }
  if (best == num_queues()) throw std::logic_error("WfqScheduler: empty");
  return best;
}

}  // namespace pmsb::sched
