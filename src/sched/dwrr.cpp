#include "sched/dwrr.hpp"

#include <cmath>
#include <stdexcept>

namespace pmsb::sched {

DwrrScheduler::DwrrScheduler(std::size_t num_queues, std::vector<double> weights,
                             std::uint32_t quantum_base)
    : Scheduler(num_queues, std::move(weights)),
      quantum_base_(quantum_base),
      deficit_(num_queues, 0) {
  if (quantum_base_ == 0) throw std::invalid_argument("DWRR: quantum_base must be > 0");
}

std::size_t DwrrScheduler::select_queue(TimeNs now) {
  // With fractional weights a queue may need several rounds to accumulate a
  // packet's worth of deficit; bound the spin generously.
  const std::size_t max_visits = 64 * num_queues() + 64;
  for (std::size_t visits = 0; visits < max_visits; ++visits) {
    const std::size_t q = cursor_;
    if (!quantum_added_this_visit_ && backlogged(q)) {
      deficit_[q] += static_cast<std::int64_t>(std::llround(quantum(q)));
      quantum_added_this_visit_ = true;
    }
    if (backlogged(q) &&
        static_cast<std::int64_t>(head(q).size_bytes) <= deficit_[q]) {
      deficit_[q] -= head(q).size_bytes;
      return q;
    }
    if (!backlogged(q)) deficit_[q] = 0;  // forfeit on going idle
    quantum_added_this_visit_ = false;
    cursor_ = (cursor_ + 1) % num_queues();
    if (cursor_ == 0) notify_round_complete(now);
  }
  throw std::logic_error("DwrrScheduler: no eligible queue after bounded spin");
}

}  // namespace pmsb::sched
