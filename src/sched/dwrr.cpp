#include "sched/dwrr.hpp"

#include <cmath>
#include <stdexcept>

namespace pmsb::sched {

DwrrScheduler::DwrrScheduler(std::size_t num_queues, std::vector<double> weights,
                             std::uint32_t quantum_base)
    : Scheduler(num_queues, std::move(weights)),
      quantum_base_(quantum_base),
      deficit_(num_queues, 0) {
  if (quantum_base_ == 0) throw std::invalid_argument("DWRR: quantum_base must be > 0");
}

std::size_t DwrrScheduler::select_queue(TimeNs now) {
  // With fractional weights a queue may need several rounds to accumulate a
  // packet's worth of deficit; bound the spin generously.
  const std::size_t max_visits = 64 * num_queues() + 64;
  bool round_reported = false;
  for (std::size_t visits = 0; visits < max_visits; ++visits) {
    const std::size_t q = cursor_;
    if (!quantum_added_this_visit_ && backlogged(q)) {
      deficit_[q] += static_cast<std::int64_t>(std::llround(quantum(q)));
      quantum_added_this_visit_ = true;
    }
    if (backlogged(q) &&
        static_cast<std::int64_t>(head(q).size_bytes) <= deficit_[q]) {
      deficit_[q] -= head(q).size_bytes;
      return q;
    }
    if (!backlogged(q)) deficit_[q] = 0;  // forfeit on going idle
    quantum_added_this_visit_ = false;
    cursor_ = (cursor_ + 1) % num_queues();
    // A round in MQ-ECN's sense (Eq. 3) is the interval between consecutive
    // scheduling opportunities of a queue — it is observable only through
    // packet service. Extra cursor wraps inside one selection are deficit
    // accumulation for the SAME opportunity at the same instant; reporting
    // each wrap would feed zero-length T_round samples to the observer and
    // inflate every MQ-ECN threshold to the standard (non-adaptive) value.
    if (cursor_ == 0 && !round_reported) {
      notify_round_complete(now);
      round_reported = true;
    }
  }
  throw std::logic_error("DwrrScheduler: no eligible queue after bounded spin");
}

}  // namespace pmsb::sched
