// Weighted Fair Queueing, implemented as Self-Clocked Fair Queueing (SCFQ).
//
// Each packet gets a finish tag F = max(V, F_prev_of_queue) + size/weight at
// enqueue, where the virtual time V is the finish tag of the packet most
// recently dequeued. Dequeue picks the backlogged queue whose head has the
// smallest finish tag. SCFQ is the standard practical approximation of WFQ
// used by switching chips; crucially it has no notion of a "round", which is
// why MQ-ECN cannot drive it (paper Table I) but PMSB can.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pmsb::sched {

class WfqScheduler final : public Scheduler {
 public:
  explicit WfqScheduler(std::size_t num_queues, std::vector<double> weights = {})
      : Scheduler(num_queues, std::move(weights)),
        finish_tags_(num_queues),
        last_finish_(num_queues, 0.0) {}

  [[nodiscard]] std::string name() const override { return "WFQ"; }

  [[nodiscard]] double virtual_time() const { return vtime_; }

 protected:
  void on_enqueue(std::size_t q, const Packet& pkt) override;
  void on_dequeue(std::size_t q, const Packet& pkt) override;
  std::size_t select_queue(TimeNs now) override;

 private:
  std::vector<std::deque<double>> finish_tags_;
  std::vector<double> last_finish_;
  double vtime_ = 0.0;
};

}  // namespace pmsb::sched
