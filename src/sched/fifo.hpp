// Global-FIFO discipline: packets leave in arrival order regardless of which
// queue classified them. Used for single-queue ports and host-side baselines.
#pragma once

#include <deque>

#include "sched/scheduler.hpp"

namespace pmsb::sched {

class FifoScheduler final : public Scheduler {
 public:
  explicit FifoScheduler(std::size_t num_queues = 1,
                         std::vector<double> weights = {})
      : Scheduler(num_queues, std::move(weights)) {}

  [[nodiscard]] std::string name() const override { return "FIFO"; }

 protected:
  void on_enqueue(std::size_t q, const Packet&) override { arrival_order_.push_back(q); }

  std::size_t select_queue(TimeNs) override {
    const std::size_t q = arrival_order_.front();
    arrival_order_.pop_front();
    return q;
  }

 private:
  std::deque<std::size_t> arrival_order_;
};

}  // namespace pmsb::sched
