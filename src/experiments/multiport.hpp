// Multi-bottleneck scenario: N senders and M receivers around one switch,
// so several egress ports are simultaneously under study. Used to probe
// cross-port effects: the shared service pool (per-pool marking couples
// ports) and independent-port baselines.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ecn/factory.hpp"
#include "faults/fault_plan.hpp"
#include "faults/invariants.hpp"
#include "faults/standard_checks.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "switchlib/buffer_pool.hpp"
#include "switchlib/switch.hpp"
#include "transport/dctcp.hpp"

namespace pmsb::experiments {

struct MultiPortConfig {
  std::size_t num_senders = 2;
  std::size_t num_receivers = 2;
  sim::RateBps link_rate = sim::gbps(10);
  sim::TimeNs link_delay = sim::microseconds(2);
  sched::SchedulerConfig scheduler;                ///< every receiver port
  ecn::MarkingConfig marking;                      ///< every receiver port
  std::uint64_t buffer_bytes = 1024ull * 1500ull;  ///< per receiver port
  /// When non-zero, all receiver ports share one buffer pool of this size
  /// (enables per-service-pool marking semantics).
  std::uint64_t shared_pool_bytes = 0;
  /// Dynamic Threshold alpha for the pooled ports (0 = static budgets).
  /// Legacy sugar for `buffer_policy = {kDynamicThresholds, dt_alpha}`.
  double dt_alpha = 0.0;
  /// Shared-buffer admission policy for the receiver ports. Takes
  /// precedence over dt_alpha when set to a non-static kind.
  switchlib::BufferPolicyConfig buffer_policy;
  transport::DctcpConfig transport;
  /// Event-queue backend for the kernel (`sched_queue=` at the CLI). Either
  /// choice produces bit-identical runs; calendar is faster at scale.
  sim::QueueBackend queue = sim::QueueBackend::kHeap;
};

struct MultiPortFlowSpec {
  std::size_t sender = 0;
  std::size_t receiver = 0;
  net::ServiceId service = 0;
  std::uint64_t bytes = 0;  ///< 0 = long-lived
  sim::TimeNs start = 0;
  sim::RateBps max_rate = 0;
  bool pmsbe = false;
  sim::TimeNs pmsbe_rtt_threshold = 0;
};

class MultiPortScenario {
 public:
  explicit MultiPortScenario(const MultiPortConfig& config);
  ~MultiPortScenario();
  MultiPortScenario(const MultiPortScenario&) = delete;
  MultiPortScenario& operator=(const MultiPortScenario&) = delete;

  std::size_t add_flow(const MultiPortFlowSpec& spec);

  void run(sim::TimeNs until) { sim_.run(until); }

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] switchlib::Port& receiver_port(std::size_t r) {
    return switch_->port(receiver_ports_.at(r));
  }
  [[nodiscard]] switchlib::BufferPool* pool() { return pool_.get(); }
  [[nodiscard]] transport::Flow& flow(std::size_t idx) { return *flows_.at(idx); }

  /// Bytes served from queue q of receiver r's port (monotone).
  [[nodiscard]] std::uint64_t served_bytes(std::size_t r, std::size_t q) const {
    return switch_->port(receiver_ports_.at(r)).scheduler().served_bytes(q);
  }

  // --- Robustness plane ---
  /// Directed links named by endpoints ("sender0" -> "switch", ...).
  [[nodiscard]] const std::vector<faults::LinkRef>& link_refs() const {
    return link_refs_;
  }
  void install_faults(faults::FaultPlan& plan, std::uint64_t seed);
  /// Registers the standard fabric invariants; call after add_flow().
  void install_invariants(faults::InvariantChecker& checker);
  [[nodiscard]] faults::ConservationLedger& ledger() { return ledger_; }
  [[nodiscard]] std::uint64_t total_bytes_acked() const;

 private:
  MultiPortConfig cfg_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<net::Host>> senders_;
  std::vector<std::unique_ptr<net::Host>> receivers_;
  std::unique_ptr<switchlib::Switch> switch_;
  std::unique_ptr<switchlib::BufferPool> pool_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<faults::LinkRef> link_refs_;
  faults::ConservationLedger ledger_;
  faults::FaultPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<transport::Flow>> flows_;
  std::vector<std::size_t> receiver_ports_;
  net::FlowId next_flow_id_ = 1;
};

}  // namespace pmsb::experiments
