// Dumbbell scenario: N sender hosts and one receiver host around a single
// switch; the switch->receiver port is the bottleneck under study.
//
// This is the topology of every static-flow experiment in the paper
// (Figs. 1-15): senders are classified into the bottleneck port's queues by
// their flow's service tag, and the port runs the scheduler + marking scheme
// being evaluated. All other ports (ACK return paths) are plain FIFO with
// marking disabled.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "ecn/factory.hpp"
#include "faults/fault_plan.hpp"
#include "faults/invariants.hpp"
#include "faults/standard_checks.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "regress/digest.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "stats/summary.hpp"
#include "switchlib/switch.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sampler.hpp"
#include "trace/spans.hpp"
#include "transport/dctcp.hpp"

namespace pmsb::experiments {

struct DumbbellConfig {
  std::size_t num_senders = 2;
  sim::RateBps link_rate = sim::gbps(10);
  /// Rate of the sender->switch links; 0 means same as link_rate. Raising
  /// it makes the switch egress the unambiguous bottleneck even for a
  /// single flow (needed for the paper's Fig. 2 single-flow experiment).
  sim::RateBps sender_uplink_rate = 0;
  sim::TimeNs link_delay = sim::microseconds(2);  ///< one-way, per link
  sched::SchedulerConfig scheduler;               ///< bottleneck port
  ecn::MarkingConfig marking;                     ///< bottleneck port
  std::uint64_t buffer_bytes = 1024ull * 1500ull; ///< bottleneck port buffer
  /// Shared-buffer admission policy for every switch port (`buffer_policy=`
  /// at the CLI). The default static policy with no pool is digest-identical
  /// to the historical per-port drop-tail.
  switchlib::BufferPolicyConfig buffer_policy;
  /// Shared buffer pool across ALL switch ports, in bytes (`buffer_bytes=`
  /// at the CLI). 0 with a static policy means no pool (historical
  /// behavior); 0 with equal/dt defaults to buffer_bytes * num_ports so the
  /// pool matches the static budgets it replaces.
  std::uint64_t shared_pool_bytes = 0;
  transport::DctcpConfig transport;               ///< default per-flow config
  /// Event-queue backend for the kernel (`sched_queue=` at the CLI). Either
  /// choice produces bit-identical runs; calendar is faster at scale.
  sim::QueueBackend queue = sim::QueueBackend::kHeap;
};

struct DumbbellFlowSpec {
  std::size_t sender = 0;            ///< sender host index [0, num_senders)
  net::ServiceId service = 0;        ///< classifies into a bottleneck queue
  std::uint64_t bytes = 0;           ///< 0 = long-lived
  sim::TimeNs start = 0;
  sim::RateBps max_rate = 0;         ///< 0 = unlimited
  bool pmsbe = false;                ///< enable Algorithm 2 at this sender
  sim::TimeNs pmsbe_rtt_threshold = 0;
};

class DumbbellScenario {
 public:
  explicit DumbbellScenario(const DumbbellConfig& config);
  ~DumbbellScenario();
  DumbbellScenario(const DumbbellScenario&) = delete;
  DumbbellScenario& operator=(const DumbbellScenario&) = delete;

  /// Creates a DCTCP flow per the spec; returns its index.
  std::size_t add_flow(const DumbbellFlowSpec& spec);

  void run(sim::TimeNs until) { sim_.run(until); }

  // --- Access for measurements ---
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] switchlib::Port& bottleneck() { return switch_->port(bottleneck_port_); }
  [[nodiscard]] switchlib::Switch& fabric() { return *switch_; }
  /// The shared buffer pool, or nullptr when the run is pool-less.
  [[nodiscard]] switchlib::BufferPool* pool() { return pool_.get(); }
  [[nodiscard]] transport::Flow& flow(std::size_t idx) { return *flows_.at(idx); }
  [[nodiscard]] std::size_t num_flows() const { return flows_.size(); }
  [[nodiscard]] net::Host& sender(std::size_t idx) { return *senders_.at(idx); }
  [[nodiscard]] net::Host& receiver() { return *receiver_; }

  /// Registers the bottleneck port's instruments (label `port=bottleneck`)
  /// and every flow's sender instruments (label `flow=<idx>`). Flows added
  /// after this call are not covered — bind after add_flow().
  void bind_metrics(telemetry::MetricsRegistry& registry);

  /// Adds bottleneck occupancy / per-queue backlog probes and a mark-rate
  /// column to `sampler`. Call before sampler.start().
  void add_sampler_columns(telemetry::TimeSeriesSampler& sampler);

  /// Monotone count of bytes the bottleneck has served from queue q.
  /// `run(until)` can be called repeatedly, so a rate over [t1, t2] is
  /// measured as: run(t1); s1 = served_bytes(q); run(t2); rate = delta/dt.
  [[nodiscard]] std::uint64_t served_bytes(std::size_t q) const {
    return switch_->port(bottleneck_port_).scheduler().served_bytes(q);
  }

  // --- Robustness plane ---
  /// Directed links named by endpoints ("sender0" -> "switch", "switch" ->
  /// "receiver", ...), for fault-plane matching.
  [[nodiscard]] const std::vector<faults::LinkRef>& link_refs() const {
    return link_refs_;
  }
  void install_faults(faults::FaultPlan& plan, std::uint64_t seed);
  /// Registers the standard fabric invariants on `checker`. Call at most
  /// once, after install_faults if a plan is in play and after add_flow so
  /// the liveness check sees every flow.
  void install_invariants(faults::InvariantChecker& checker);
  /// Test hook for the deliberate-violation fixture.
  [[nodiscard]] faults::ConservationLedger& ledger() { return ledger_; }
  /// Total bytes cumulatively acked — the watchdog's progress measure.
  [[nodiscard]] std::uint64_t total_bytes_acked() const;
  /// True when every flow has completed. A long-lived flow never completes,
  /// so with one present this stays false — flat progress then counts as a
  /// stall, which is what the watchdog wants for a duration-based run.
  [[nodiscard]] bool all_complete() const;

  // --- Regression plane ---
  /// Wires the bottleneck port, its link, and every flow's sender into
  /// `digest` (entities "port/bottleneck", "link/switch->receiver",
  /// "flow/<idx>"). Call after add_flow(); the digest must outlive the
  /// scenario. finalize_digest() folds the final per-entity stats — call it
  /// once, after the run.
  void install_digest(regress::RunDigest& digest);
  void finalize_digest();

  // --- Observability plane ---
  /// Attaches `profiler` to the kernel and to the instrumented components
  /// (bottleneck port + every flow's sender). Call after add_flow(); the
  /// profiler must outlive the scenario's last event (it detaches itself
  /// from the kernel on destruction).
  void install_profiler(telemetry::Profiler& profiler);
  /// Wires span capture for watched flows: kSend/kAck at the senders,
  /// kEnqueue/kDequeue/kMark/kDrop at the bottleneck port, kLinkTx/kRx on
  /// the bottleneck link. Call after add_flow(); `spans` must outlive the
  /// scenario.
  void install_span_tracer(trace::SpanTracer& spans);
  /// The port whose Tracer capture `trace_ndjson=` exports.
  [[nodiscard]] switchlib::Port& trace_port() { return bottleneck(); }

  /// The un-loaded round-trip time sender -> receiver -> sender.
  [[nodiscard]] sim::TimeNs base_rtt() const;

  [[nodiscard]] const DumbbellConfig& config() const { return cfg_; }

 private:
  DumbbellConfig cfg_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<net::Host>> senders_;
  std::unique_ptr<net::Host> receiver_;
  std::unique_ptr<switchlib::Switch> switch_;
  std::unique_ptr<switchlib::BufferPool> pool_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<faults::LinkRef> link_refs_;
  faults::ConservationLedger ledger_;
  faults::FaultPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<transport::Flow>> flows_;
  std::vector<std::size_t> flow_sender_idx_;  ///< flow idx -> sender host idx
  std::size_t bottleneck_port_ = 0;
  net::FlowId next_flow_id_ = 1;
  regress::RunDigest* digest_ = nullptr;
  regress::EntityId digest_port_ = 0;
  regress::EntityId digest_link_ = 0;
  std::vector<regress::EntityId> digest_flows_;
};

}  // namespace pmsb::experiments
