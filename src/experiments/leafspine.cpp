#include "experiments/leafspine.hpp"

#include <stdexcept>
#include <string>

namespace pmsb::experiments {

LeafSpineScenario::LeafSpineScenario(const LeafSpineConfig& config)
    : cfg_(config), sim_(cfg_.queue) {
  const std::size_t n_hosts = num_hosts();
  if (n_hosts < 2) throw std::invalid_argument("leafspine: need >= 2 hosts");

  for (std::size_t h = 0; h < n_hosts; ++h) {
    hosts_.push_back(std::make_unique<net::Host>(sim_, static_cast<net::HostId>(h),
                                                 "h" + std::to_string(h)));
  }
  for (std::size_t l = 0; l < cfg_.num_leaves; ++l) {
    leaves_.push_back(
        std::make_unique<switchlib::Switch>(sim_, "leaf" + std::to_string(l),
                                            /*ecmp_salt=*/0x1000 + l));
  }
  for (std::size_t s = 0; s < cfg_.num_spines; ++s) {
    spines_.push_back(
        std::make_unique<switchlib::Switch>(sim_, "spine" + std::to_string(s),
                                            /*ecmp_salt=*/0x2000 + s));
  }

  switchlib::PortConfig port_cfg;
  port_cfg.scheduler = cfg_.scheduler;
  port_cfg.marking = cfg_.marking;
  port_cfg.buffer_bytes = cfg_.buffer_bytes;
  port_cfg.buffer_policy = cfg_.buffer_policy;

  auto name_link = [this](const std::string& src, const std::string& dst) {
    link_refs_.push_back({src, dst, links_.back().get()});
  };

  // Host <-> leaf wiring.
  for (std::size_t h = 0; h < n_hosts; ++h) {
    const std::size_t l = leaf_of(h);
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 leaves_[l].get()));
    hosts_[h]->attach_uplink(links_.back().get());
    name_link(hosts_[h]->name(), leaves_[l]->name());
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 hosts_[h].get()));
    name_link(leaves_[l]->name(), hosts_[h]->name());
    const std::size_t port = leaves_[l]->add_port(links_.back().get(), port_cfg);
    leaves_[l]->routing().add_route(static_cast<net::HostId>(h), port);
  }

  // Leaf <-> spine wiring and routing.
  const sim::RateBps core_rate = cfg_.core_rate != 0 ? cfg_.core_rate : cfg_.link_rate;
  for (std::size_t l = 0; l < cfg_.num_leaves; ++l) {
    for (std::size_t s = 0; s < cfg_.num_spines; ++s) {
      // Uplink leaf -> spine.
      links_.push_back(std::make_unique<net::Link>(sim_, core_rate, cfg_.link_delay,
                                                   spines_[s].get()));
      name_link(leaves_[l]->name(), spines_[s]->name());
      const std::size_t up = leaves_[l]->add_port(links_.back().get(), port_cfg);
      // Downlink spine -> leaf.
      links_.push_back(std::make_unique<net::Link>(sim_, core_rate, cfg_.link_delay,
                                                   leaves_[l].get()));
      name_link(spines_[s]->name(), leaves_[l]->name());
      const std::size_t down = spines_[s]->add_port(links_.back().get(), port_cfg);

      for (std::size_t h = 0; h < n_hosts; ++h) {
        if (leaf_of(h) != l) {
          // Remote hosts reachable from leaf l via any spine (ECMP set).
          leaves_[l]->routing().add_route(static_cast<net::HostId>(h), up);
        } else {
          // Hosts under leaf l reachable from spine s via this downlink.
          spines_[s]->routing().add_route(static_cast<net::HostId>(h), down);
        }
      }
    }
  }

  // Shared-buffer pools: one per switch (the shared-memory-chip model), so
  // ports of the same chip compete for buffer while chips stay independent.
  // Attach after all add_port calls so every port registers a ledger slot.
  const bool pooled_policy =
      cfg_.buffer_policy.kind != switchlib::BufferPolicyKind::kStaticPerPort;
  if (cfg_.shared_pool_bytes > 0 || pooled_policy) {
    auto pool_switch = [this](switchlib::Switch& sw) {
      const std::uint64_t pool_bytes =
          cfg_.shared_pool_bytes > 0
              ? cfg_.shared_pool_bytes
              : cfg_.buffer_bytes * static_cast<std::uint64_t>(sw.num_ports());
      pools_.push_back(std::make_unique<switchlib::BufferPool>(pool_bytes));
      for (std::size_t p = 0; p < sw.num_ports(); ++p) {
        sw.port(p).attach_pool(pools_.back().get());
      }
    };
    for (auto& l : leaves_) pool_switch(*l);
    for (auto& s : spines_) pool_switch(*s);
  }
}

LeafSpineScenario::~LeafSpineScenario() = default;

void LeafSpineScenario::add_workload(const std::vector<workload::FlowSpec>& specs) {
  workload::Workload wl;
  wl.flows = specs;
  add_workload(wl);
}

void LeafSpineScenario::add_workload(const workload::Workload& wl) {
  if (!wl.groups.empty()) {
    if (!flows_.empty() || tracker_ != nullptr) {
      throw std::invalid_argument(
          "leafspine: a grouped workload must be the only workload added");
    }
    tracker_ = std::make_unique<workload::GroupTracker>(wl);
    tracked_flows_ = wl.flows.size();
  }
  const std::size_t base = flows_.size();
  for (std::size_t k = 0; k < wl.flows.size(); ++k) {
    const workload::FlowSpec& spec = wl.flows[k];
    const std::size_t idx = base + k;
    auto flow = std::make_unique<transport::Flow>(
        sim_, *hosts_.at(spec.src), *hosts_.at(spec.dst), next_flow_id_++, spec.service,
        spec.bytes, cfg_.transport);
    transport::DctcpSender& sender = flow->sender();
    if (spec.deadline > 0) sender.set_deadline(spec.deadline);
    sender.set_completion_callback([this, idx](sim::TimeNs fct) {
      const transport::DctcpSender& s = flows_[idx]->sender();
      const workload::FlowSpec& done = specs_[idx];
      fct_.record({s.flow_id(), done.bytes, s.start_time(), fct, done.service,
                   done.pattern, done.deadline,
                   done.deadline == 0 || sim_.now() <= done.deadline, done.group,
                   done.stage});
      ++completed_;
      if (tracker_ != nullptr && idx < tracked_flows_) {
        for (const std::size_t released : tracker_->on_flow_complete(idx, sim_.now())) {
          realized_start_[released] = sim_.now();
          flows_[released]->start(sim_.now());
        }
      }
      if (completed_ == flows_.size()) sim_.stop();
    });
    const bool deferred = tracker_ != nullptr && idx < tracked_flows_ &&
                          tracker_->deferred(idx);
    if (deferred) {
      realized_start_.push_back(sim::kTimeNever);
    } else {
      flow->start(spec.start);
      realized_start_.push_back(spec.start);
    }
    flows_.push_back(std::move(flow));
    flow_src_idx_.push_back(spec.src);
    specs_.push_back(spec);
  }
}

std::vector<workload::FlowSpec> LeafSpineScenario::realized_workload() const {
  std::vector<workload::FlowSpec> out;
  out.reserve(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (realized_start_.at(i) == sim::kTimeNever) continue;  // never released
    workload::FlowSpec spec = specs_[i];
    spec.start = realized_start_[i];
    out.push_back(spec);
  }
  return out;
}

bool LeafSpineScenario::run_until_complete(sim::TimeNs max_time) {
  sim_.run(max_time);
  return completed_ == flows_.size();
}

void LeafSpineScenario::bind_metrics(telemetry::MetricsRegistry& registry) {
  auto bind_switch = [&registry](switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      sw.port(p).bind_metrics(
          registry, {{"switch", sw.name()}, {"port", std::to_string(p)}});
    }
  };
  for (auto& l : leaves_) bind_switch(*l);
  for (auto& s : spines_) bind_switch(*s);
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    // pools_ is ordered leaves then spines, mirroring construction.
    const std::string& name = i < leaves_.size()
                                  ? leaves_[i]->name()
                                  : spines_[i - leaves_.size()]->name();
    pools_[i]->bind_metrics(registry, {{"switch", name}});
  }

  // Fabric-wide transport aggregates, summed over flows at collect time so
  // the instrument count stays independent of workload size.
  auto sum = [this](std::uint64_t transport::SenderStats::* cell) {
    return [this, cell]() -> std::uint64_t {
      std::uint64_t total = 0;
      for (const auto& f : flows_) total += f->sender().stats().*cell;
      return total;
    };
  };
  registry.counter_fn("transport.segments_sent", {},
                      sum(&transport::SenderStats::segments_sent), "segments");
  registry.counter_fn("transport.retransmits", {},
                      sum(&transport::SenderStats::retransmits), "segments");
  registry.counter_fn("transport.timeouts", {},
                      sum(&transport::SenderStats::timeouts), "events");
  registry.counter_fn("transport.ece_acks", {},
                      sum(&transport::SenderStats::ece_acks), "acks");
  registry.counter_fn("transport.ece_ignored", {},
                      sum(&transport::SenderStats::ece_ignored), "acks");
  registry.counter_fn("transport.window_cuts", {},
                      sum(&transport::SenderStats::window_cuts), "cuts");
  registry.counter_fn(
      "flows.completed", {},
      [this]() -> std::uint64_t { return completed_; }, "flows");
  registry.counter_fn(
      "flows.total", {},
      [this]() -> std::uint64_t { return flows_.size(); }, "flows");
}

void LeafSpineScenario::add_sampler_columns(telemetry::TimeSeriesSampler& sampler) {
  auto add_switch = [&sampler](switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      switchlib::Port& port = sw.port(p);
      const std::string prefix = sw.name() + ".p" + std::to_string(p);
      sampler.add_probe(prefix + ".occupancy_bytes", [&port] {
        return static_cast<double>(port.buffered_bytes());
      });
      sampler.add_rate(prefix + ".mark_rate_pps", [&port]() -> std::uint64_t {
        return port.stats().marked_enqueue + port.stats().marked_dequeue;
      });
    }
  };
  for (auto& l : leaves_) add_switch(*l);
  for (auto& s : spines_) add_switch(*s);
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    const std::string& name = i < leaves_.size()
                                  ? leaves_[i]->name()
                                  : spines_[i - leaves_.size()]->name();
    switchlib::BufferPool* pool = pools_[i].get();
    sampler.add_probe(name + ".free_pool_bytes", [pool] {
      return static_cast<double>(pool->free_bytes());
    });
  }
}

std::uint64_t LeafSpineScenario::total_marks() const {
  std::uint64_t marks = 0;
  auto add = [&marks](const switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      marks += sw.port(p).stats().marked_enqueue + sw.port(p).stats().marked_dequeue;
    }
  };
  for (const auto& l : leaves_) add(*l);
  for (const auto& s : spines_) add(*s);
  return marks;
}

std::array<std::uint64_t, switchlib::kNumDropReasons>
LeafSpineScenario::total_drops_by_reason() const {
  std::array<std::uint64_t, switchlib::kNumDropReasons> drops{};
  auto add = [&drops](const switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const auto& by_reason = sw.port(p).stats().dropped_by_reason;
      for (std::size_t r = 0; r < drops.size(); ++r) drops[r] += by_reason[r];
    }
  };
  for (const auto& l : leaves_) add(*l);
  for (const auto& s : spines_) add(*s);
  return drops;
}

std::uint64_t LeafSpineScenario::total_drops() const {
  std::uint64_t drops = 0;
  auto add = [&drops](const switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      drops += sw.port(p).stats().dropped_packets;
    }
  };
  for (const auto& l : leaves_) add(*l);
  for (const auto& s : spines_) add(*s);
  return drops;
}

void LeafSpineScenario::install_digest(regress::RunDigest& digest) {
  digest_ = &digest;
  digest_ports_.clear();
  auto wire_switch = [this, &digest](switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      const auto id =
          digest.register_entity("port/" + sw.name() + "/" + std::to_string(p));
      sw.port(p).set_digest(&digest, id);
      digest_ports_.emplace_back(&sw.port(p), id);
    }
  };
  for (auto& l : leaves_) wire_switch(*l);
  for (auto& s : spines_) wire_switch(*s);
  digest_flows_.clear();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto id = digest.register_entity("flow/" + std::to_string(i));
    digest_flows_.push_back(id);
    flows_[i]->sender().set_digest(&digest, id);
  }
}

void LeafSpineScenario::finalize_digest() {
  if (digest_ == nullptr) return;
  regress::RunDigest& d = *digest_;
  for (const auto& [port, id] : digest_ports_) {
    const switchlib::PortStats& ps = port->stats();
    d.stat(id, "enqueued_packets", ps.enqueued_packets);
    d.stat(id, "dequeued_packets", ps.dequeued_packets);
    d.stat(id, "dropped_packets", ps.dropped_packets);
    d.stat(id, "marked_enqueue", ps.marked_enqueue);
    d.stat(id, "marked_dequeue", ps.marked_dequeue);
  }
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const transport::DctcpSender& s = flows_[i]->sender();
    const regress::EntityId id = digest_flows_.at(i);
    const transport::SenderStats& st = s.stats();
    d.stat(id, "segments_sent", st.segments_sent);
    d.stat(id, "retransmits", st.retransmits);
    d.stat(id, "timeouts", st.timeouts);
    d.stat(id, "acks_received", st.acks_received);
    d.stat(id, "ece_acks", st.ece_acks);
    d.stat(id, "ece_ignored", st.ece_ignored);
    d.stat(id, "bytes_acked", s.bytes_acked());
    d.stat(id, "complete", s.complete() ? 1 : 0);
    d.stat(id, "completion_time",
           static_cast<std::uint64_t>(s.complete() ? s.completion_time() : 0));
  }
}

void LeafSpineScenario::install_profiler(telemetry::Profiler& profiler) {
  profiler.attach(sim_);
  auto wire_switch = [&profiler](switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) sw.port(p).set_profiler(&profiler);
  };
  for (auto& l : leaves_) wire_switch(*l);
  for (auto& s : spines_) wire_switch(*s);
  for (auto& flow : flows_) flow->sender().set_profiler(&profiler);
}

void LeafSpineScenario::install_span_tracer(trace::SpanTracer& spans) {
  auto wire_switch = [&spans](switchlib::Switch& sw) {
    for (std::size_t p = 0; p < sw.num_ports(); ++p) {
      sw.port(p).set_span_tracer(&spans, sw.name() + "/p" + std::to_string(p));
    }
  };
  for (auto& l : leaves_) wire_switch(*l);
  for (auto& s : spines_) wire_switch(*s);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->sender().set_span_tracer(&spans,
                                        hosts_[flow_src_idx_.at(i)]->name());
  }
  // kLinkTx/kRx on the last hop only (leaf -> destination host), so kRx
  // always means arrival at the receiver and the FCT decomposition stays
  // well-formed; mid-path hops show up as enqueue/dequeue pairs instead.
  // The constructor wires host links first, two per host, downlink second.
  for (std::size_t h = 0; h < num_hosts(); ++h) {
    const faults::LinkRef& ref = link_refs_.at(2 * h + 1);
    const trace::NodeId link_node = spans.intern_node(ref.src + "->" + ref.dst);
    ref.link->set_delivery_observer(
        [sp = &spans, link_node](const net::Packet& pkt, sim::TimeNs tx_done,
                                 sim::TimeNs rx_time) {
          if (!sp->wants(pkt.flow_id)) return;
          trace::SpanRecord span;
          span.packet = pkt.id;
          span.flow = pkt.flow_id;
          span.node = link_node;
          span.seq = pkt.seq;
          span.size_bytes = pkt.size_bytes;
          span.marked = pkt.ce;
          span.time = tx_done;
          span.phase = trace::SpanPhase::kLinkTx;
          sp->record(span);
          span.time = rx_time;
          span.phase = trace::SpanPhase::kRx;
          sp->record(span);
        });
  }
}

void LeafSpineScenario::install_faults(faults::FaultPlan& plan, std::uint64_t seed) {
  plan.install(sim_, link_refs_, seed);
  plan_ = &plan;
}

void LeafSpineScenario::install_invariants(faults::InvariantChecker& checker) {
  for (auto& l : leaves_) faults::add_switch_checks(checker, *l);
  for (auto& s : spines_) faults::add_switch_checks(checker, *s);
  for (const auto& h : hosts_) ledger_.add_host(h.get());
  for (const auto& l : leaves_) ledger_.add_switch(l.get());
  for (const auto& s : spines_) ledger_.add_switch(s.get());
  for (const auto& link : links_) ledger_.add_link(link.get());
  ledger_.set_fault_plan(plan_);
  ledger_.register_check(checker);
  faults::add_flow_liveness_check(checker, [this] {
    std::vector<const transport::DctcpSender*> senders;
    senders.reserve(flows_.size());
    for (const auto& f : flows_) senders.push_back(&f->sender());
    return senders;
  });
}

std::uint64_t LeafSpineScenario::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f->sender().bytes_acked();
  return total;
}

sim::TimeNs LeafSpineScenario::base_rtt_interrack() const {
  // Four links each way (host-leaf-spine-leaf-host); store-and-forward
  // serialization of the data packet at each of the four transmitters, ACK
  // serialization on the way back.
  const sim::TimeNs data_ser =
      sim::serialization_delay(sim::kDefaultMtuBytes, cfg_.link_rate);
  const sim::TimeNs ack_ser = sim::serialization_delay(net::kAckBytes, cfg_.link_rate);
  return 4 * data_ser + 4 * ack_ser + 8 * cfg_.link_delay;
}

}  // namespace pmsb::experiments
