// Leaf-spine fabric scenario for the large-scale FCT evaluation (§VI.B).
//
// Default shape matches the paper: 4 leaf and 4 spine switches, 12 hosts per
// leaf (48 hosts), all links 10 Gbps, non-blocking, per-flow ECMP across the
// spines. Every switch port runs the scheduler + marking scheme under test
// with 8 service queues of equal weight.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "ecn/factory.hpp"
#include "faults/fault_plan.hpp"
#include "faults/invariants.hpp"
#include "faults/standard_checks.hpp"
#include "net/host.hpp"
#include "net/link.hpp"
#include "regress/digest.hpp"
#include "sched/factory.hpp"
#include "sim/simulator.hpp"
#include "stats/fct.hpp"
#include "switchlib/switch.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/sampler.hpp"
#include "trace/spans.hpp"
#include "transport/dctcp.hpp"
#include "workload/coflow.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::experiments {

struct LeafSpineConfig {
  std::size_t num_leaves = 4;
  std::size_t num_spines = 4;
  std::size_t hosts_per_leaf = 12;
  sim::RateBps link_rate = sim::gbps(10);
  /// Leaf<->spine link rate; 0 = same as link_rate (non-blocking, the
  /// paper's fabric). Lower it for an oversubscribed core.
  sim::RateBps core_rate = 0;
  sim::TimeNs link_delay = sim::microseconds(2);  ///< one-way, per link
  sched::SchedulerConfig scheduler;               ///< all switch ports
  ecn::MarkingConfig marking;                     ///< all switch ports
  std::uint64_t buffer_bytes = 1024ull * 1500ull; ///< per port
  /// Shared-buffer admission policy for every switch port (`buffer_policy=`
  /// at the CLI). Default static + no pool = historical per-port drop-tail.
  switchlib::BufferPolicyConfig buffer_policy;
  /// Per-SWITCH shared buffer pool in bytes (`buffer_bytes=` at the CLI):
  /// each leaf and spine gets its own pool spanning all its ports, the
  /// shared-memory-chip model. 0 with a static policy means no pools; 0
  /// with equal/dt defaults to buffer_bytes * ports-of-that-switch.
  std::uint64_t shared_pool_bytes = 0;
  transport::DctcpConfig transport;
  /// Event-queue backend for the kernel (`sched_queue=` at the CLI). Either
  /// choice produces bit-identical runs; calendar is faster at scale.
  sim::QueueBackend queue = sim::QueueBackend::kHeap;
};

class LeafSpineScenario {
 public:
  explicit LeafSpineScenario(const LeafSpineConfig& config);
  ~LeafSpineScenario();
  LeafSpineScenario(const LeafSpineScenario&) = delete;
  LeafSpineScenario& operator=(const LeafSpineScenario&) = delete;

  [[nodiscard]] std::size_t num_hosts() const {
    return cfg_.num_leaves * cfg_.hosts_per_leaf;
  }

  /// Instantiates one DCTCP flow per spec; completions land in fct().
  void add_workload(const std::vector<workload::FlowSpec>& specs);

  /// Workload-v2 entry point: like the vector overload, but when the
  /// workload carries groups a GroupTracker enforces the coflow stage
  /// barriers (stage > 0 flows are created up front with their start
  /// deferred to the barrier crossing) and per-spec deadlines land on the
  /// senders for the D2TCP path. A grouped workload must be the first and
  /// only workload added.
  void add_workload(const workload::Workload& wl);

  /// Barrier bookkeeping for a grouped workload; nullptr for plain lists.
  [[nodiscard]] const workload::GroupTracker* group_tracker() const {
    return tracker_.get();
  }

  /// The workload as it actually ran: every started flow's spec with its
  /// *realized* start time (barrier-released flows start at the barrier, not
  /// their nominal group start). Flows still waiting behind an uncrossed
  /// barrier are omitted. This is what `trace_export=` serializes.
  [[nodiscard]] std::vector<workload::FlowSpec> realized_workload() const;

  /// Runs until every workload flow completes, or `max_time` if sooner.
  /// Returns true if all flows completed.
  bool run_until_complete(sim::TimeNs max_time);

  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] stats::FctCollector& fct() { return fct_; }
  [[nodiscard]] net::Host& host(std::size_t idx) { return *hosts_.at(idx); }
  [[nodiscard]] switchlib::Switch& leaf(std::size_t idx) { return *leaves_.at(idx); }
  [[nodiscard]] switchlib::Switch& spine(std::size_t idx) { return *spines_.at(idx); }
  /// Per-switch shared pools (leaves then spines); empty when pool-less.
  [[nodiscard]] const std::vector<std::unique_ptr<switchlib::BufferPool>>& pools()
      const {
    return pools_;
  }
  [[nodiscard]] std::size_t completed_flows() const { return completed_; }
  [[nodiscard]] std::size_t total_flows() const { return flows_.size(); }

  /// Registers every switch port's instruments (labels
  /// `switch=<leaf|spine name>, port=<idx>`) plus fabric-wide transport
  /// aggregates (timeouts, retransmits, ECE acks, flows completed) summed
  /// across flows at collect time.
  void bind_metrics(telemetry::MetricsRegistry& registry);

  /// Adds one occupancy-bytes probe and one mark-rate column per switch
  /// port to `sampler`. Call before sampler.start().
  void add_sampler_columns(telemetry::TimeSeriesSampler& sampler);

  // --- Robustness plane ---
  /// Every directed link of the fabric, named by endpoints ("h3" -> "leaf0",
  /// "leaf1" -> "spine2", ...), for fault-plane matching.
  [[nodiscard]] const std::vector<faults::LinkRef>& link_refs() const {
    return link_refs_;
  }
  /// Interposes the plan's injectors into this fabric and remembers the plan
  /// so the conservation ledger accounts for its drops and delay stage.
  void install_faults(faults::FaultPlan& plan, std::uint64_t seed);
  /// Registers the standard fabric invariants (port accounting, packet
  /// conservation, flow liveness) on `checker`. Call at most once, after
  /// install_faults if a plan is in play.
  void install_invariants(faults::InvariantChecker& checker);
  /// Test hook for the deliberate-violation fixture.
  [[nodiscard]] faults::ConservationLedger& ledger() { return ledger_; }
  /// Total bytes cumulatively acked across all flows — the watchdog's
  /// progress measure.
  [[nodiscard]] std::uint64_t total_bytes_acked() const;
  [[nodiscard]] bool all_complete() const { return completed_ == flows_.size(); }

  /// Aggregate CE marks applied across every switch port (both points).
  [[nodiscard]] std::uint64_t total_marks() const;
  /// Aggregate drop count across every switch port.
  [[nodiscard]] std::uint64_t total_drops() const;
  /// Aggregate drops across every switch port, split by admission refusal
  /// reason (indexed by switchlib::DropReason).
  [[nodiscard]] std::array<std::uint64_t, switchlib::kNumDropReasons>
  total_drops_by_reason() const;

  // --- Regression plane ---
  /// Wires every switch port ("port/<switch>/<idx>") and every flow's
  /// sender ("flow/<idx>") into `digest`. Call after add_workload(); the
  /// digest must outlive the scenario. finalize_digest() folds the final
  /// per-entity stats — call once, after the run.
  void install_digest(regress::RunDigest& digest);
  void finalize_digest();

  // --- Observability plane ---
  /// Attaches `profiler` to the kernel, every switch port, and every flow's
  /// sender. Call after add_workload(); the profiler must outlive the
  /// scenario's last event.
  void install_profiler(telemetry::Profiler& profiler);
  /// Wires span capture for watched flows: kSend/kAck at the source hosts
  /// and kEnqueue/kDequeue/kMark/kDrop at every switch port (labelled
  /// "<switch>/p<idx>"). Call after add_workload(); `spans` must outlive
  /// the scenario.
  void install_span_tracer(trace::SpanTracer& spans);
  /// The port whose Tracer capture `trace_ndjson=` exports: the first
  /// spine's first downlink — a core port every leaf's traffic crosses.
  [[nodiscard]] switchlib::Port& trace_port() { return spines_.at(0)->port(0); }

  /// The un-loaded RTT between two hosts under different leaves.
  [[nodiscard]] sim::TimeNs base_rtt_interrack() const;

 private:
  [[nodiscard]] std::size_t leaf_of(std::size_t host) const {
    return host / cfg_.hosts_per_leaf;
  }

  LeafSpineConfig cfg_;
  sim::Simulator sim_;
  std::vector<std::unique_ptr<net::Host>> hosts_;
  std::vector<std::unique_ptr<switchlib::Switch>> leaves_;
  std::vector<std::unique_ptr<switchlib::Switch>> spines_;
  std::vector<std::unique_ptr<switchlib::BufferPool>> pools_;
  std::vector<std::unique_ptr<net::Link>> links_;
  std::vector<faults::LinkRef> link_refs_;
  faults::ConservationLedger ledger_;
  faults::FaultPlan* plan_ = nullptr;
  std::vector<std::unique_ptr<transport::Flow>> flows_;
  std::vector<std::size_t> flow_src_idx_;  ///< flow idx -> source host idx
  std::vector<workload::FlowSpec> specs_;  ///< flow idx -> originating spec
  /// Flow idx -> time the flow actually started; kTimeNever = not started
  /// yet (waiting behind a stage barrier).
  std::vector<sim::TimeNs> realized_start_;
  std::unique_ptr<workload::GroupTracker> tracker_;
  std::size_t tracked_flows_ = 0;  ///< flows covered by tracker_'s indexing
  stats::FctCollector fct_;
  std::size_t completed_ = 0;
  net::FlowId next_flow_id_ = 1;
  regress::RunDigest* digest_ = nullptr;
  std::vector<std::pair<switchlib::Port*, regress::EntityId>> digest_ports_;
  std::vector<regress::EntityId> digest_flows_;
};

}  // namespace pmsb::experiments
