#include "experiments/dumbbell.hpp"

#include <stdexcept>
#include <string>

namespace pmsb::experiments {

DumbbellScenario::DumbbellScenario(const DumbbellConfig& config)
    : cfg_(config), sim_(cfg_.queue) {
  if (cfg_.num_senders == 0) throw std::invalid_argument("dumbbell: need senders");

  // Hosts: senders are 0..N-1, the receiver is host N.
  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    senders_.push_back(std::make_unique<net::Host>(
        sim_, static_cast<net::HostId>(i), "sender" + std::to_string(i)));
  }
  receiver_ = std::make_unique<net::Host>(
      sim_, static_cast<net::HostId>(cfg_.num_senders), "receiver");

  switch_ = std::make_unique<switchlib::Switch>(sim_, "switch");

  // ACK-return / sender-facing ports: FIFO, no marking, ample buffer.
  switchlib::PortConfig plain;
  plain.scheduler.kind = sched::SchedulerKind::kFifo;
  plain.scheduler.num_queues = 1;
  plain.marking.kind = ecn::MarkingKind::kNone;
  plain.buffer_bytes = 4096ull * 1500ull;
  plain.buffer_policy = cfg_.buffer_policy;

  // Bottleneck port: the scheduler + marking under study.
  switchlib::PortConfig bottleneck;
  bottleneck.scheduler = cfg_.scheduler;
  bottleneck.marking = cfg_.marking;
  bottleneck.buffer_bytes = cfg_.buffer_bytes;
  bottleneck.buffer_policy = cfg_.buffer_policy;

  // Shared buffer: requested explicitly, or implied by a pool-based policy
  // (equal division / DT are meaningless without one). All switch ports
  // join, so the reverse (ACK) paths feel the same buffer pressure.
  const bool pooled_policy =
      cfg_.buffer_policy.kind != switchlib::BufferPolicyKind::kStaticPerPort;
  if (cfg_.shared_pool_bytes > 0 || pooled_policy) {
    const std::size_t num_ports = cfg_.num_senders + 1;
    const std::uint64_t pool_bytes =
        cfg_.shared_pool_bytes > 0
            ? cfg_.shared_pool_bytes
            : cfg_.buffer_bytes * static_cast<std::uint64_t>(num_ports);
    pool_ = std::make_unique<switchlib::BufferPool>(pool_bytes);
  }

  const sim::RateBps uplink_rate =
      cfg_.sender_uplink_rate != 0 ? cfg_.sender_uplink_rate : cfg_.link_rate;
  auto name_link = [this](const std::string& src, const std::string& dst) {
    link_refs_.push_back({src, dst, links_.back().get()});
  };

  // Wire sender <-> switch links and sender-facing switch ports.
  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    links_.push_back(std::make_unique<net::Link>(sim_, uplink_rate, cfg_.link_delay,
                                                 switch_.get()));
    senders_[i]->attach_uplink(links_.back().get());
    name_link(senders_[i]->name(), switch_->name());
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 senders_[i].get()));
    name_link(switch_->name(), senders_[i]->name());
    const std::size_t port = switch_->add_port(links_.back().get(), plain);
    switch_->routing().add_route(static_cast<net::HostId>(i), port);
  }

  // Receiver <-> switch.
  links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                               switch_.get()));
  receiver_->attach_uplink(links_.back().get());
  name_link(receiver_->name(), switch_->name());
  links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                               receiver_.get()));
  name_link(switch_->name(), receiver_->name());
  bottleneck_port_ = switch_->add_port(links_.back().get(), bottleneck);
  switch_->routing().add_route(static_cast<net::HostId>(cfg_.num_senders),
                               bottleneck_port_);

  if (pool_) {
    for (std::size_t p = 0; p < switch_->num_ports(); ++p) {
      switch_->port(p).attach_pool(pool_.get());
    }
  }
}

DumbbellScenario::~DumbbellScenario() = default;

std::size_t DumbbellScenario::add_flow(const DumbbellFlowSpec& spec) {
  if (spec.sender >= cfg_.num_senders) throw std::out_of_range("dumbbell: bad sender");
  transport::DctcpConfig tc = cfg_.transport;
  tc.max_rate = spec.max_rate;
  if (spec.pmsbe) {
    tc.pmsbe_enabled = true;
    tc.pmsbe_rtt_threshold = spec.pmsbe_rtt_threshold;
  }
  auto flow = std::make_unique<transport::Flow>(sim_, *senders_[spec.sender], *receiver_,
                                                next_flow_id_++, spec.service,
                                                spec.bytes, tc);
  flow->start(spec.start);
  flows_.push_back(std::move(flow));
  flow_sender_idx_.push_back(spec.sender);
  return flows_.size() - 1;
}

void DumbbellScenario::bind_metrics(telemetry::MetricsRegistry& registry) {
  switch_->port(bottleneck_port_).bind_metrics(registry, {{"port", "bottleneck"}});
  if (pool_) pool_->bind_metrics(registry, {});
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->sender().bind_metrics(registry, {{"flow", std::to_string(i)}});
  }
}

void DumbbellScenario::add_sampler_columns(telemetry::TimeSeriesSampler& sampler) {
  switchlib::Port& port = switch_->port(bottleneck_port_);
  sampler.add_probe("bottleneck.occupancy_bytes", [&port] {
    return static_cast<double>(port.buffered_bytes());
  });
  const std::size_t num_queues = cfg_.scheduler.num_queues;
  for (std::size_t q = 0; q < num_queues; ++q) {
    sampler.add_probe("bottleneck.q" + std::to_string(q) + ".backlog_bytes",
                      [&port, q] { return static_cast<double>(port.queue_bytes(q)); });
  }
  sampler.add_rate("bottleneck.mark_rate_pps", [&port]() -> std::uint64_t {
    return port.stats().marked_enqueue + port.stats().marked_dequeue;
  });
  if (pool_) {
    sampler.add_probe("buffer.free_pool_bytes", [pool = pool_.get()] {
      return static_cast<double>(pool->free_bytes());
    });
    sampler.add_probe("bottleneck.admit_threshold_bytes", [&port] {
      return static_cast<double>(port.admission_threshold_bytes());
    });
  }
}

void DumbbellScenario::install_digest(regress::RunDigest& digest) {
  digest_ = &digest;
  digest_port_ = digest.register_entity("port/bottleneck");
  switch_->port(bottleneck_port_).set_digest(&digest, digest_port_);
  digest_link_ = digest.register_entity("link/switch->receiver");
  switch_->port(bottleneck_port_).link()->set_digest(&digest, digest_link_);
  digest_flows_.clear();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const auto id = digest.register_entity("flow/" + std::to_string(i));
    digest_flows_.push_back(id);
    flows_[i]->sender().set_digest(&digest, id);
  }
}

void DumbbellScenario::finalize_digest() {
  if (digest_ == nullptr) return;
  regress::RunDigest& d = *digest_;
  const switchlib::PortStats& ps = switch_->port(bottleneck_port_).stats();
  d.stat(digest_port_, "enqueued_packets", ps.enqueued_packets);
  d.stat(digest_port_, "dequeued_packets", ps.dequeued_packets);
  d.stat(digest_port_, "dropped_packets", ps.dropped_packets);
  d.stat(digest_port_, "dropped_bytes", ps.dropped_bytes);
  d.stat(digest_port_, "marked_enqueue", ps.marked_enqueue);
  d.stat(digest_port_, "marked_dequeue", ps.marked_dequeue);
  for (std::size_t q = 0; q < ps.marked_per_queue.size(); ++q) {
    d.stat(digest_port_, "marked.q" + std::to_string(q), ps.marked_per_queue[q]);
  }
  const net::Link* link = switch_->port(bottleneck_port_).link();
  d.stat(digest_link_, "bytes_sent", link->bytes_sent());
  d.stat(digest_link_, "packets_sent", link->packets_sent());
  d.stat(digest_link_, "packets_delivered", link->packets_delivered());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const transport::DctcpSender& s = flows_[i]->sender();
    const regress::EntityId id = digest_flows_.at(i);
    const transport::SenderStats& st = s.stats();
    d.stat(id, "segments_sent", st.segments_sent);
    d.stat(id, "retransmits", st.retransmits);
    d.stat(id, "timeouts", st.timeouts);
    d.stat(id, "acks_received", st.acks_received);
    d.stat(id, "ece_acks", st.ece_acks);
    d.stat(id, "ece_ignored", st.ece_ignored);
    d.stat(id, "window_cuts", st.window_cuts);
    d.stat(id, "bytes_acked", s.bytes_acked());
    d.stat(id, "complete", s.complete() ? 1 : 0);
    d.stat(id, "completion_time",
           static_cast<std::uint64_t>(s.complete() ? s.completion_time() : 0));
  }
}

void DumbbellScenario::install_profiler(telemetry::Profiler& profiler) {
  profiler.attach(sim_);
  switch_->port(bottleneck_port_).set_profiler(&profiler);
  for (auto& flow : flows_) flow->sender().set_profiler(&profiler);
}

void DumbbellScenario::install_span_tracer(trace::SpanTracer& spans) {
  switch_->port(bottleneck_port_).set_span_tracer(&spans, switch_->name());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    // Watched flows only record; unwatched ones pay a hash lookup at most.
    flows_[i]->sender().set_span_tracer(
        &spans, senders_[flow_sender_idx_.at(i)]->name());
  }
  // The bottleneck link reports when a packet's last bit left the wire
  // (kLinkTx) and when it reached the receiver (kRx). The link sits below
  // trace/ in the library stack, so the adaptation happens here.
  const trace::NodeId link_node = spans.intern_node("switch->receiver");
  switch_->port(bottleneck_port_).link()->set_delivery_observer(
      [sp = &spans, link_node](const net::Packet& pkt, sim::TimeNs tx_done,
                               sim::TimeNs rx_time) {
        if (!sp->wants(pkt.flow_id)) return;
        trace::SpanRecord span;
        span.packet = pkt.id;
        span.flow = pkt.flow_id;
        span.node = link_node;
        span.seq = pkt.seq;
        span.size_bytes = pkt.size_bytes;
        span.marked = pkt.ce;
        span.time = tx_done;
        span.phase = trace::SpanPhase::kLinkTx;
        sp->record(span);
        span.time = rx_time;
        span.phase = trace::SpanPhase::kRx;
        sp->record(span);
      });
}

void DumbbellScenario::install_faults(faults::FaultPlan& plan, std::uint64_t seed) {
  plan.install(sim_, link_refs_, seed);
  plan_ = &plan;
}

void DumbbellScenario::install_invariants(faults::InvariantChecker& checker) {
  faults::add_switch_checks(checker, *switch_);
  for (const auto& s : senders_) ledger_.add_host(s.get());
  ledger_.add_host(receiver_.get());
  ledger_.add_switch(switch_.get());
  for (const auto& link : links_) ledger_.add_link(link.get());
  ledger_.set_fault_plan(plan_);
  ledger_.register_check(checker);
  faults::add_flow_liveness_check(checker, [this] {
    std::vector<const transport::DctcpSender*> senders;
    senders.reserve(flows_.size());
    for (const auto& f : flows_) senders.push_back(&f->sender());
    return senders;
  });
}

std::uint64_t DumbbellScenario::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f->sender().bytes_acked();
  return total;
}

bool DumbbellScenario::all_complete() const {
  for (const auto& f : flows_) {
    if (!f->sender().complete()) return false;
  }
  return true;
}

sim::TimeNs DumbbellScenario::base_rtt() const {
  // Data: sender NIC serialize + 2 propagation hops + switch serialize;
  // ACK: the same with a 40 B packet.
  const sim::TimeNs data_ser =
      sim::serialization_delay(sim::kDefaultMtuBytes, cfg_.link_rate);
  const sim::TimeNs ack_ser = sim::serialization_delay(net::kAckBytes, cfg_.link_rate);
  return 2 * data_ser + 2 * ack_ser + 4 * cfg_.link_delay;
}

}  // namespace pmsb::experiments
