#include "experiments/dumbbell.hpp"

#include <stdexcept>
#include <string>

namespace pmsb::experiments {

DumbbellScenario::DumbbellScenario(const DumbbellConfig& config) : cfg_(config) {
  if (cfg_.num_senders == 0) throw std::invalid_argument("dumbbell: need senders");

  // Hosts: senders are 0..N-1, the receiver is host N.
  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    senders_.push_back(std::make_unique<net::Host>(
        sim_, static_cast<net::HostId>(i), "sender" + std::to_string(i)));
  }
  receiver_ = std::make_unique<net::Host>(
      sim_, static_cast<net::HostId>(cfg_.num_senders), "receiver");

  switch_ = std::make_unique<switchlib::Switch>(sim_, "switch");

  // ACK-return / sender-facing ports: FIFO, no marking, ample buffer.
  switchlib::PortConfig plain;
  plain.scheduler.kind = sched::SchedulerKind::kFifo;
  plain.scheduler.num_queues = 1;
  plain.marking.kind = ecn::MarkingKind::kNone;
  plain.buffer_bytes = 4096ull * 1500ull;

  // Bottleneck port: the scheduler + marking under study.
  switchlib::PortConfig bottleneck;
  bottleneck.scheduler = cfg_.scheduler;
  bottleneck.marking = cfg_.marking;
  bottleneck.buffer_bytes = cfg_.buffer_bytes;

  const sim::RateBps uplink_rate =
      cfg_.sender_uplink_rate != 0 ? cfg_.sender_uplink_rate : cfg_.link_rate;
  // Wire sender <-> switch links and sender-facing switch ports.
  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    links_.push_back(std::make_unique<net::Link>(sim_, uplink_rate, cfg_.link_delay,
                                                 switch_.get()));
    senders_[i]->attach_uplink(links_.back().get());
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 senders_[i].get()));
    const std::size_t port = switch_->add_port(links_.back().get(), plain);
    switch_->routing().add_route(static_cast<net::HostId>(i), port);
  }

  // Receiver <-> switch.
  links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                               switch_.get()));
  receiver_->attach_uplink(links_.back().get());
  links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                               receiver_.get()));
  bottleneck_port_ = switch_->add_port(links_.back().get(), bottleneck);
  switch_->routing().add_route(static_cast<net::HostId>(cfg_.num_senders),
                               bottleneck_port_);
}

DumbbellScenario::~DumbbellScenario() = default;

std::size_t DumbbellScenario::add_flow(const DumbbellFlowSpec& spec) {
  if (spec.sender >= cfg_.num_senders) throw std::out_of_range("dumbbell: bad sender");
  transport::DctcpConfig tc = cfg_.transport;
  tc.max_rate = spec.max_rate;
  if (spec.pmsbe) {
    tc.pmsbe_enabled = true;
    tc.pmsbe_rtt_threshold = spec.pmsbe_rtt_threshold;
  }
  auto flow = std::make_unique<transport::Flow>(sim_, *senders_[spec.sender], *receiver_,
                                                next_flow_id_++, spec.service,
                                                spec.bytes, tc);
  flow->start(spec.start);
  flows_.push_back(std::move(flow));
  return flows_.size() - 1;
}

void DumbbellScenario::bind_metrics(telemetry::MetricsRegistry& registry) {
  switch_->port(bottleneck_port_).bind_metrics(registry, {{"port", "bottleneck"}});
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    flows_[i]->sender().bind_metrics(registry, {{"flow", std::to_string(i)}});
  }
}

void DumbbellScenario::add_sampler_columns(telemetry::TimeSeriesSampler& sampler) {
  switchlib::Port& port = switch_->port(bottleneck_port_);
  sampler.add_probe("bottleneck.occupancy_bytes", [&port] {
    return static_cast<double>(port.buffered_bytes());
  });
  const std::size_t num_queues = cfg_.scheduler.num_queues;
  for (std::size_t q = 0; q < num_queues; ++q) {
    sampler.add_probe("bottleneck.q" + std::to_string(q) + ".backlog_bytes",
                      [&port, q] { return static_cast<double>(port.queue_bytes(q)); });
  }
  sampler.add_rate("bottleneck.mark_rate_pps", [&port]() -> std::uint64_t {
    return port.stats().marked_enqueue + port.stats().marked_dequeue;
  });
}

sim::TimeNs DumbbellScenario::base_rtt() const {
  // Data: sender NIC serialize + 2 propagation hops + switch serialize;
  // ACK: the same with a 40 B packet.
  const sim::TimeNs data_ser =
      sim::serialization_delay(sim::kDefaultMtuBytes, cfg_.link_rate);
  const sim::TimeNs ack_ser = sim::serialization_delay(net::kAckBytes, cfg_.link_rate);
  return 2 * data_ser + 2 * ack_ser + 4 * cfg_.link_delay;
}

}  // namespace pmsb::experiments
