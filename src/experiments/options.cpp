#include "experiments/options.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pmsb::experiments {

namespace {
std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

void parse_line(Options& opts, const std::string& raw, const std::string& where) {
  std::string line = raw;
  if (const auto hash = line.find('#'); hash != std::string::npos) {
    line = line.substr(0, hash);
  }
  line = trim(line);
  if (line.empty()) return;
  const auto eq = line.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("Options: malformed '" + raw + "' in " + where);
  }
  opts.set(trim(line.substr(0, eq)), trim(line.substr(eq + 1)));
}
}  // namespace

Options Options::from_args(int argc, const char* const* argv) {
  Options file_opts;
  Options cli_opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--config") {
      if (i + 1 >= argc) throw std::invalid_argument("--config needs a path");
      file_opts.merge_from(from_file(argv[++i]));
      continue;
    }
    parse_line(cli_opts, arg, "argv");
  }
  file_opts.merge_from(cli_opts);  // command line wins
  return file_opts;
}

Options Options::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("Options: cannot open " + path);
  Options opts;
  std::string line;
  while (std::getline(in, line)) parse_line(opts, line, path);
  return opts;
}

void Options::merge_from(const Options& other) {
  for (const auto& [k, v] : other.values_) values_[k] = v;
}

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const std::int64_t v = std::stoll(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("Options: '" + key + "' is not an integer");
  }
  return v;
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::size_t pos = 0;
  const double v = std::stod(it->second, &pos);
  if (pos != it->second.size()) {
    throw std::invalid_argument("Options: '" + key + "' is not a number");
  }
  return v;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  std::string v = it->second;
  std::transform(v.begin(), v.end(), v.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw std::invalid_argument("Options: '" + key + "' is not a boolean");
}

namespace {
std::size_t edit_distance(const std::string& a, const std::string& b) {
  // Classic two-row Levenshtein; option keys are short so O(|a|*|b|) is fine.
  std::vector<std::size_t> prev(b.size() + 1);
  std::vector<std::size_t> cur(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) prev[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    cur[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t sub = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[b.size()];
}
}  // namespace

std::string Options::closest_key(const std::string& key,
                                 const std::vector<std::string>& candidates,
                                 std::size_t max_distance) {
  std::string best;
  std::size_t best_dist = max_distance + 1;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(key, c);
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

void Options::validate_keys(const std::vector<std::string>& allowed) const {
  for (const auto& [key, value] : values_) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end()) continue;
    std::string msg = "unknown option '" + key + "'";
    const std::string suggestion = closest_key(key, allowed);
    if (!suggestion.empty()) msg += " (did you mean '" + suggestion + "'?)";
    msg += "; run with --help for the key list";
    throw std::invalid_argument(msg);
  }
}

std::vector<double> Options::get_double_list(const std::string& key) const {
  std::vector<double> out;
  const auto it = values_.find(key);
  if (it == values_.end()) return out;
  std::stringstream ss(it->second);
  std::string cell;
  while (std::getline(ss, cell, ',')) {
    if (!trim(cell).empty()) out.push_back(std::stod(trim(cell)));
  }
  return out;
}

}  // namespace pmsb::experiments
