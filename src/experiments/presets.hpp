// Scheme presets: one place that turns "(scheme, capacity, RTT, lambda)"
// into concrete marking + transport parameters, following §VI of the paper:
//
//  - per-queue standard / per-port / MQ-ECN:  K = C * RTT * lambda   (Eq. 1)
//  - TCN:                      T_k = RTT * lambda = K / C            (Eq. 4)
//  - PMSB / PMSB(e): port threshold from Theorem IV.1 — the sum of the
//    per-queue lower bounds, C * RTT / 7, rounded up to whole packets plus
//    one (reproduces the paper's "12 packets" for their C*RTT of ~71 pkts)
//  - PMSB(e) RTT threshold: base RTT plus the time the port threshold takes
//    to drain at line rate (reproduces the paper's 85.2 us = ~70.8 + 14.4)
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "ecn/factory.hpp"
#include "sim/units.hpp"
#include "transport/dctcp.hpp"

namespace pmsb::experiments {

enum class Scheme {
  kNone,
  kPerQueueStd,
  kPerQueueFrac,
  kPerPort,
  kMqEcn,
  kTcn,
  kPmsb,
  kPmsbE,
};

[[nodiscard]] inline std::string scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kNone: return "None";
    case Scheme::kPerQueueStd: return "PerQueue-Std";
    case Scheme::kPerQueueFrac: return "PerQueue-Frac";
    case Scheme::kPerPort: return "PerPort";
    case Scheme::kMqEcn: return "MQ-ECN";
    case Scheme::kTcn: return "TCN";
    case Scheme::kPmsb: return "PMSB";
    case Scheme::kPmsbE: return "PMSB(e)";
  }
  return "?";
}

struct SchemeParams {
  sim::RateBps capacity = sim::gbps(10);
  sim::TimeNs rtt = sim::microseconds(80);  ///< RTT used in threshold formulas
  double lambda = 1.0;
  std::vector<double> weights = {1.0};      ///< bottleneck queue weights
  ecn::MarkPoint point = ecn::MarkPoint::kEnqueue;
  double pmsb_filter_scale = 1.0;
};

/// K = C * RTT * lambda in bytes.
[[nodiscard]] inline std::uint64_t standard_k_bytes(const SchemeParams& p) {
  return static_cast<std::uint64_t>(std::llround(
      static_cast<double>(sim::bdp_bytes(p.capacity, p.rtt)) * p.lambda));
}

/// PMSB port threshold: ceil(C*RTT/7 in packets) + 1, in bytes.
[[nodiscard]] inline std::uint64_t pmsb_port_threshold_bytes(const SchemeParams& p) {
  const double bound_pkts = static_cast<double>(sim::bdp_bytes(p.capacity, p.rtt)) /
                            7.0 / sim::kDefaultMtuBytes;
  return (static_cast<std::uint64_t>(std::ceil(bound_pkts)) + 1) * sim::kDefaultMtuBytes;
}

/// PMSB(e) RTT threshold: base RTT + port-threshold drain time.
[[nodiscard]] inline sim::TimeNs pmsbe_rtt_threshold(const SchemeParams& p,
                                                     sim::TimeNs base_rtt) {
  return base_rtt + sim::serialization_delay(pmsb_port_threshold_bytes(p), p.capacity);
}

[[nodiscard]] inline ecn::MarkingConfig make_scheme_marking(Scheme s,
                                                            const SchemeParams& p) {
  ecn::MarkingConfig m;
  m.point = p.point;
  m.weights = p.weights;
  m.capacity = p.capacity;
  m.rtt = p.rtt;
  m.lambda = p.lambda;
  switch (s) {
    case Scheme::kNone:
      m.kind = ecn::MarkingKind::kNone;
      break;
    case Scheme::kPerQueueStd:
      m.kind = ecn::MarkingKind::kPerQueueStandard;
      m.threshold_bytes = standard_k_bytes(p);
      break;
    case Scheme::kPerQueueFrac:
      m.kind = ecn::MarkingKind::kPerQueueFractional;
      m.threshold_bytes = standard_k_bytes(p);
      break;
    case Scheme::kPerPort:
      m.kind = ecn::MarkingKind::kPerPort;
      m.threshold_bytes = standard_k_bytes(p);
      break;
    case Scheme::kMqEcn:
      m.kind = ecn::MarkingKind::kMqEcn;
      m.threshold_bytes = standard_k_bytes(p);
      break;
    case Scheme::kTcn:
      m.kind = ecn::MarkingKind::kTcn;
      m.sojourn_threshold = static_cast<sim::TimeNs>(
          std::llround(static_cast<double>(p.rtt) * p.lambda));
      break;
    case Scheme::kPmsb:
      m.kind = ecn::MarkingKind::kPmsb;
      m.threshold_bytes = pmsb_port_threshold_bytes(p);
      m.filter_scale = p.pmsb_filter_scale;
      break;
    case Scheme::kPmsbE:
      // Switch side of PMSB(e) is plain per-port marking with the same
      // (small) port threshold; the blindness runs at the sender.
      m.kind = ecn::MarkingKind::kPerPort;
      m.threshold_bytes = pmsb_port_threshold_bytes(p);
      break;
  }
  return m;
}

/// Applies scheme-specific sender settings (PMSB(e)'s Algorithm 2 knobs).
inline void apply_scheme_transport(Scheme s, const SchemeParams& p,
                                   sim::TimeNs base_rtt,
                                   transport::DctcpConfig& transport) {
  if (s == Scheme::kPmsbE) {
    transport.pmsbe_enabled = true;
    transport.pmsbe_rtt_threshold = pmsbe_rtt_threshold(p, base_rtt);
  } else {
    transport.pmsbe_enabled = false;
  }
}

}  // namespace pmsb::experiments
