// Tiny key=value option parser for the command-line tools.
//
// Accepts `key=value` tokens on the command line plus `--config FILE` where
// FILE holds one `key=value` per line ('#' comments allowed). Later values
// override earlier ones, and command-line tokens override the file.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace pmsb::experiments {

class Options {
 public:
  Options() = default;

  /// Parses argv tokens; throws std::invalid_argument on malformed input.
  static Options from_args(int argc, const char* const* argv);

  /// Parses a config file (one key=value per line, '#' comments).
  static Options from_file(const std::string& path);

  void set(const std::string& key, const std::string& value) { values_[key] = value; }
  void erase(const std::string& key) { values_.erase(key); }
  void merge_from(const Options& other);  ///< other's values win

  [[nodiscard]] bool has(const std::string& key) const {
    return values_.count(key) > 0;
  }

  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback = {}) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;
  /// Comma-separated list of doubles ("1,2.5,4").
  [[nodiscard]] std::vector<double> get_double_list(const std::string& key) const;

  [[nodiscard]] const std::map<std::string, std::string>& values() const {
    return values_;
  }

  /// Throws std::invalid_argument naming the first key not in `allowed`,
  /// with a "did you mean" suggestion when a near-miss exists. Tools call
  /// this after parsing so a typo (`trace_flow=3`) fails loudly instead of
  /// being silently ignored.
  void validate_keys(const std::vector<std::string>& allowed) const;

  /// The entry of `candidates` closest to `key` by edit distance, or ""
  /// when nothing is within `max_distance` edits.
  [[nodiscard]] static std::string closest_key(
      const std::string& key, const std::vector<std::string>& candidates,
      std::size_t max_distance = 3);

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace pmsb::experiments
