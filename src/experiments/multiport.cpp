#include "experiments/multiport.hpp"

#include <stdexcept>
#include <string>

namespace pmsb::experiments {

MultiPortScenario::MultiPortScenario(const MultiPortConfig& config)
    : cfg_(config), sim_(cfg_.queue) {
  if (cfg_.num_senders == 0 || cfg_.num_receivers == 0) {
    throw std::invalid_argument("multiport: need senders and receivers");
  }
  // Host ids: senders 0..S-1, receivers S..S+R-1.
  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    senders_.push_back(std::make_unique<net::Host>(
        sim_, static_cast<net::HostId>(i), "sender" + std::to_string(i)));
  }
  for (std::size_t r = 0; r < cfg_.num_receivers; ++r) {
    receivers_.push_back(std::make_unique<net::Host>(
        sim_, static_cast<net::HostId>(cfg_.num_senders + r),
        "receiver" + std::to_string(r)));
  }
  switch_ = std::make_unique<switchlib::Switch>(sim_, "switch");
  const bool pooled_policy =
      cfg_.buffer_policy.kind != switchlib::BufferPolicyKind::kStaticPerPort;
  if (cfg_.shared_pool_bytes > 0 || pooled_policy) {
    const std::uint64_t pool_bytes =
        cfg_.shared_pool_bytes > 0
            ? cfg_.shared_pool_bytes
            : cfg_.buffer_bytes * static_cast<std::uint64_t>(cfg_.num_receivers);
    pool_ = std::make_unique<switchlib::BufferPool>(pool_bytes);
  }

  switchlib::PortConfig plain;
  plain.scheduler.kind = sched::SchedulerKind::kFifo;
  plain.scheduler.num_queues = 1;
  plain.marking.kind = ecn::MarkingKind::kNone;
  plain.buffer_bytes = 4096ull * 1500ull;

  switchlib::PortConfig bottleneck;
  bottleneck.scheduler = cfg_.scheduler;
  bottleneck.marking = cfg_.marking;
  bottleneck.buffer_bytes = cfg_.buffer_bytes;
  bottleneck.dt_alpha = cfg_.dt_alpha;
  bottleneck.buffer_policy = cfg_.buffer_policy;

  auto name_link = [this](const std::string& src, const std::string& dst) {
    link_refs_.push_back({src, dst, links_.back().get()});
  };

  for (std::size_t i = 0; i < cfg_.num_senders; ++i) {
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 switch_.get()));
    senders_[i]->attach_uplink(links_.back().get());
    name_link(senders_[i]->name(), switch_->name());
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 senders_[i].get()));
    name_link(switch_->name(), senders_[i]->name());
    const std::size_t port = switch_->add_port(links_.back().get(), plain);
    switch_->routing().add_route(static_cast<net::HostId>(i), port);
  }
  for (std::size_t r = 0; r < cfg_.num_receivers; ++r) {
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 switch_.get()));
    receivers_[r]->attach_uplink(links_.back().get());
    name_link(receivers_[r]->name(), switch_->name());
    links_.push_back(std::make_unique<net::Link>(sim_, cfg_.link_rate, cfg_.link_delay,
                                                 receivers_[r].get()));
    name_link(switch_->name(), receivers_[r]->name());
    const std::size_t port = switch_->add_port(links_.back().get(), bottleneck);
    if (pool_) switch_->port(port).attach_pool(pool_.get());
    receiver_ports_.push_back(port);
    switch_->routing().add_route(static_cast<net::HostId>(cfg_.num_senders + r), port);
  }
}

MultiPortScenario::~MultiPortScenario() = default;

void MultiPortScenario::install_faults(faults::FaultPlan& plan, std::uint64_t seed) {
  plan.install(sim_, link_refs_, seed);
  plan_ = &plan;
}

void MultiPortScenario::install_invariants(faults::InvariantChecker& checker) {
  faults::add_switch_checks(checker, *switch_);
  for (const auto& s : senders_) ledger_.add_host(s.get());
  for (const auto& r : receivers_) ledger_.add_host(r.get());
  ledger_.add_switch(switch_.get());
  for (const auto& link : links_) ledger_.add_link(link.get());
  ledger_.set_fault_plan(plan_);
  ledger_.register_check(checker);
  faults::add_flow_liveness_check(checker, [this] {
    std::vector<const transport::DctcpSender*> senders;
    senders.reserve(flows_.size());
    for (const auto& f : flows_) senders.push_back(&f->sender());
    return senders;
  });
}

std::uint64_t MultiPortScenario::total_bytes_acked() const {
  std::uint64_t total = 0;
  for (const auto& f : flows_) total += f->sender().bytes_acked();
  return total;
}

std::size_t MultiPortScenario::add_flow(const MultiPortFlowSpec& spec) {
  if (spec.sender >= cfg_.num_senders) throw std::out_of_range("multiport: bad sender");
  if (spec.receiver >= cfg_.num_receivers) {
    throw std::out_of_range("multiport: bad receiver");
  }
  transport::DctcpConfig tc = cfg_.transport;
  tc.max_rate = spec.max_rate;
  if (spec.pmsbe) {
    tc.pmsbe_enabled = true;
    tc.pmsbe_rtt_threshold = spec.pmsbe_rtt_threshold;
  }
  auto flow = std::make_unique<transport::Flow>(sim_, *senders_[spec.sender],
                                                *receivers_[spec.receiver],
                                                next_flow_id_++, spec.service,
                                                spec.bytes, tc);
  flow->start(spec.start);
  flows_.push_back(std::move(flow));
  return flows_.size() - 1;
}

}  // namespace pmsb::experiments
