// Fault injection for tests and robustness experiments.
//
// A FaultInjector wraps any Node and perturbs the packet stream headed to
// it: link-down blackholing, probabilistic or counted drops, ECN bleaching
// (clearing CE marks in flight, the classic broken-middlebox failure), fixed
// extra delay, and random jitter (which reorders packets). Point a Link at
// the injector instead of the real node to create a faulty path segment.
// The fault plane (src/faults/) owns one injector per interposed link and
// drives these knobs from a scripted timeline; tests also use them directly.
//
// Lifetime: delayed deliveries are scheduled on the simulator and route back
// through the injector, guarded by a shared liveness token. Destroying the
// injector (or detach()ing the inner node) while deliveries are pending is
// safe — the orphaned events become no-ops instead of dereferencing a dead
// node.
#pragma once

#include <cstdint>
#include <memory>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::net {

class FaultInjector : public Node {
 public:
  /// Per-effect counters. `dropped()` below aggregates the drop cells; the
  /// individual cells back the telemetry instruments bind_metrics registers.
  struct Counters {
    std::uint64_t forwarded = 0;        ///< packets delivered to the inner node
    std::uint64_t dropped_counted = 0;  ///< drop_next() deterministic drops
    std::uint64_t dropped_loss = 0;     ///< probabilistic loss drops
    std::uint64_t dropped_down = 0;     ///< blackholed while down / detached
    std::uint64_t bleached = 0;         ///< CE marks cleared in flight
    std::uint64_t delayed_in_flight = 0;  ///< packets inside the delay stage
  };

  FaultInjector(sim::Simulator& simulator, Node* inner,
                std::uint64_t seed = 0x5eed, std::string name = "")
      : Node(name.empty()
                 ? "fault(" +
                       (inner != nullptr ? inner->name() : std::string("detached")) +
                       ")"
                 : std::move(name)),
        sim_(simulator), inner_(inner), rng_(seed),
        alive_(std::make_shared<char>(0)) {}

  /// Takes the link down (drop everything, counted) or back up.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const { return down_; }

  /// Drops each packet independently with probability `p`.
  void set_drop_rate(double p) { drop_rate_ = p; }

  /// Clears the CE mark of each CE-carrying packet with probability `p`
  /// (ECN bleaching). The packet itself is still delivered.
  void set_bleach_rate(double p) { bleach_rate_ = p; }

  /// Deterministically drops the next `n` packets (counted drops win over
  /// the probabilistic setting).
  void drop_next(std::uint64_t n) { drop_next_ += n; }

  /// Adds `fixed` delay plus uniform jitter in [0, jitter) to every packet.
  /// Jitter larger than a packet's serialization gap reorders the stream.
  void set_extra_delay(sim::TimeNs fixed, sim::TimeNs jitter = 0) {
    delay_fixed_ = fixed;
    delay_jitter_ = jitter;
  }

  /// Disconnects the inner node; subsequent deliveries are blackholed
  /// (counted as dropped_down). Call when the inner node's lifetime ends
  /// before the injector's.
  void detach() { inner_ = nullptr; }

  void receive(Packet pkt) override {
    if (down_ || inner_ == nullptr) {
      ++counters_.dropped_down;
      return;
    }
    if (drop_next_ > 0) {
      --drop_next_;
      ++counters_.dropped_counted;
      return;
    }
    if (drop_rate_ > 0.0 && rng_.uniform() < drop_rate_) {
      ++counters_.dropped_loss;
      return;
    }
    if (pkt.ce && bleach_rate_ > 0.0 && rng_.uniform() < bleach_rate_) {
      pkt.ce = false;
      ++counters_.bleached;
    }
    if (delay_fixed_ == 0 && delay_jitter_ == 0) {
      deliver(std::move(pkt));
      return;
    }
    sim::TimeNs delay = delay_fixed_;
    if (delay_jitter_ > 0) delay += rng_.uniform_int(0, delay_jitter_ - 1);
    ++counters_.delayed_in_flight;
    // The callback routes back through this injector, guarded by the
    // liveness token: if the injector is destroyed before the delay stage
    // drains, the event fires as a no-op instead of dereferencing inner_.
    sim_.schedule_in(delay, [w = std::weak_ptr<char>(alive_), this,
                             p = std::move(pkt)]() mutable {
      if (w.expired()) return;
      --counters_.delayed_in_flight;
      if (down_ || inner_ == nullptr) {
        ++counters_.dropped_down;
        return;
      }
      deliver(std::move(p));
    });
  }

  [[nodiscard]] const Counters& counters() const { return counters_; }
  /// Total packets dropped for any reason (legacy aggregate).
  [[nodiscard]] std::uint64_t dropped() const {
    return counters_.dropped_counted + counters_.dropped_loss +
           counters_.dropped_down;
  }
  [[nodiscard]] std::uint64_t forwarded() const { return counters_.forwarded; }
  [[nodiscard]] std::uint64_t bleached() const { return counters_.bleached; }
  /// Packets currently queued in the delay stage (in-flight for the purpose
  /// of conservation invariants).
  [[nodiscard]] std::uint64_t delayed_in_flight() const {
    return counters_.delayed_in_flight;
  }

  /// Registers every counter cell under `labels`; drops carry an extra
  /// `reason` label (counted | loss | link_down) so faulted runs are
  /// attributable in metrics_json output.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) {
    auto with_reason = [&labels](const char* reason) {
      telemetry::Labels l = labels;
      l.emplace_back("reason", reason);
      return l;
    };
    registry.bind_counter("faults.dropped", with_reason("counted"),
                          &counters_.dropped_counted, "packets");
    registry.bind_counter("faults.dropped", with_reason("loss"),
                          &counters_.dropped_loss, "packets");
    registry.bind_counter("faults.dropped", with_reason("link_down"),
                          &counters_.dropped_down, "packets");
    registry.bind_counter("faults.bleached", labels, &counters_.bleached, "packets");
    registry.bind_counter("faults.forwarded", labels, &counters_.forwarded,
                          "packets");
    registry.gauge_fn(
        "faults.delayed_in_flight", labels,
        [this] { return static_cast<double>(counters_.delayed_in_flight); },
        "packets");
  }

 private:
  void deliver(Packet pkt) {
    ++counters_.forwarded;
    inner_->receive(std::move(pkt));
  }

  sim::Simulator& sim_;
  Node* inner_;
  sim::Rng rng_;
  bool down_ = false;
  double drop_rate_ = 0.0;
  double bleach_rate_ = 0.0;
  std::uint64_t drop_next_ = 0;
  sim::TimeNs delay_fixed_ = 0;
  sim::TimeNs delay_jitter_ = 0;
  Counters counters_;
  std::shared_ptr<char> alive_;  ///< liveness token for delayed deliveries
};

}  // namespace pmsb::net
