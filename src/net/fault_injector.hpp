// Fault injection for tests and robustness experiments.
//
// A FaultInjector wraps any Node and perturbs the packet stream headed to
// it: probabilistic or counted drops, fixed extra delay, and random jitter
// (which reorders packets). Point a Link at the injector instead of the
// real node to create a lossy / reordering path segment.
#pragma once

#include <cstdint>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace pmsb::net {

class FaultInjector : public Node {
 public:
  FaultInjector(sim::Simulator& simulator, Node* inner,
                std::uint64_t seed = 0x5eed)
      : Node("fault(" + inner->name() + ")"), sim_(simulator), inner_(inner),
        rng_(seed) {}

  /// Drops each packet independently with probability `p`.
  void set_drop_rate(double p) { drop_rate_ = p; }

  /// Deterministically drops the next `n` packets (counted drops win over
  /// the probabilistic setting).
  void drop_next(std::uint64_t n) { drop_next_ += n; }

  /// Adds `fixed` delay plus uniform jitter in [0, jitter) to every packet.
  /// Jitter larger than a packet's serialization gap reorders the stream.
  void set_extra_delay(sim::TimeNs fixed, sim::TimeNs jitter = 0) {
    delay_fixed_ = fixed;
    delay_jitter_ = jitter;
  }

  void receive(Packet pkt) override {
    if (drop_next_ > 0) {
      --drop_next_;
      ++dropped_;
      return;
    }
    if (drop_rate_ > 0.0 && rng_.uniform() < drop_rate_) {
      ++dropped_;
      return;
    }
    ++forwarded_;
    if (delay_fixed_ == 0 && delay_jitter_ == 0) {
      inner_->receive(std::move(pkt));
      return;
    }
    sim::TimeNs delay = delay_fixed_;
    if (delay_jitter_ > 0) delay += rng_.uniform_int(0, delay_jitter_ - 1);
    Node* inner = inner_;
    sim_.schedule_in(delay,
                     [inner, p = std::move(pkt)]() mutable { inner->receive(std::move(p)); });
  }

  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }

 private:
  sim::Simulator& sim_;
  Node* inner_;
  sim::Rng rng_;
  double drop_rate_ = 0.0;
  std::uint64_t drop_next_ = 0;
  sim::TimeNs delay_fixed_ = 0;
  sim::TimeNs delay_jitter_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t forwarded_ = 0;
};

}  // namespace pmsb::net
