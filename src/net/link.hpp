// Unidirectional point-to-point link.
//
// The link models serialization (rate) and propagation (delay). The owning
// device drives transmission: it calls `transmit` only when the link is
// idle, and is told when serialization completes so it can dequeue the next
// packet. Store-and-forward: the destination sees the packet only after the
// last bit has been serialized and propagated.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "net/node.hpp"
#include "net/packet.hpp"
#include "regress/digest.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"

namespace pmsb::net {

class Link {
 public:
  Link(sim::Simulator& simulator, sim::RateBps rate, TimeNs propagation_delay,
       Node* destination)
      : sim_(simulator), rate_(rate), delay_(propagation_delay), dst_(destination) {}

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Starts serializing `pkt` now. Precondition: !busy(). Returns the time at
  /// which serialization completes (when the device may transmit again).
  TimeNs transmit(Packet pkt);

  /// Re-points the link at a different receiving node. The fault plane uses
  /// this to interpose an owned FaultInjector between the wire and the real
  /// device. Packets already in flight are delivered to the NEW destination
  /// (delivery resolves dst_ at arrival time).
  void set_destination(Node* destination) { dst_ = destination; }

  /// Feeds a kSend digest event per transmitted packet as `entity` (nullptr
  /// to detach). The digest must outlive the link.
  void set_digest(regress::RunDigest* digest, regress::EntityId entity) {
    digest_ = digest;
    digest_entity_ = entity;
  }

  /// Called at delivery with the packet, when its last bit left the wire
  /// (tx_done) and when it arrived (rx_time). A generic callback — not a
  /// SpanTracer — because net/ sits below trace/ in the library stack; the
  /// scenario wiring adapts it to kLinkTx/kRx span records. Empty = off
  /// (one branch per delivery, the usual contract).
  using DeliveryObserver =
      std::function<void(const Packet&, TimeNs tx_done, TimeNs rx_time)>;
  void set_delivery_observer(DeliveryObserver observer) {
    observer_ = std::move(observer);
  }

  [[nodiscard]] bool busy() const { return sim_.now() < busy_until_; }
  [[nodiscard]] sim::RateBps rate() const { return rate_; }
  [[nodiscard]] TimeNs propagation_delay() const { return delay_; }
  [[nodiscard]] Node* destination() const { return dst_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return packets_sent_; }
  [[nodiscard]] std::uint64_t packets_delivered() const { return packets_delivered_; }
  /// Packets serialized or serializing but not yet handed to the
  /// destination — the link's contribution to conservation invariants.
  [[nodiscard]] std::uint64_t packets_in_flight() const {
    return packets_sent_ - packets_delivered_;
  }

 private:
  void deliver(Packet pkt);

  sim::Simulator& sim_;
  sim::RateBps rate_;
  TimeNs delay_;
  Node* dst_;
  regress::RunDigest* digest_ = nullptr;
  regress::EntityId digest_entity_ = 0;
  DeliveryObserver observer_;
  TimeNs busy_until_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t packets_delivered_ = 0;
};

}  // namespace pmsb::net
