// End host: a NIC with a FIFO egress queue plus a demultiplexer that hands
// arriving packets to the transport endpoint registered for their flow.
//
// The NIC egress queue is effectively unbounded — end-host memory is not the
// bottleneck the paper studies — but its backlog is observable for tests.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "net/link.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "sim/simulator.hpp"

namespace pmsb::net {

class Host : public Node {
 public:
  using PacketHandler = std::function<void(Packet)>;

  Host(sim::Simulator& simulator, HostId id, std::string name)
      : Node(std::move(name)), sim_(simulator), id_(id) {}

  /// Connects the host's single uplink (host -> ToR direction).
  void attach_uplink(Link* link) { uplink_ = link; }

  [[nodiscard]] HostId id() const { return id_; }
  [[nodiscard]] Link* uplink() const { return uplink_; }

  /// Queues a packet on the NIC for transmission, stamping `sent_time`.
  void send(Packet pkt);

  /// Registers the transport endpoint that consumes packets of `flow_id`
  /// arriving at this host. Overwrites any previous registration.
  void register_flow(FlowId flow_id, PacketHandler handler) {
    handlers_[flow_id] = std::move(handler);
  }

  void unregister_flow(FlowId flow_id) { handlers_.erase(flow_id); }

  /// Called by the attached link when a packet arrives from the network.
  void receive(Packet pkt) override;

  [[nodiscard]] std::size_t nic_backlog_packets() const { return nic_queue_.size(); }
  [[nodiscard]] std::uint64_t nic_backlog_bytes() const { return nic_bytes_; }
  /// Packets handed to send() — where a packet enters the network for the
  /// purposes of conservation invariants.
  [[nodiscard]] std::uint64_t sent_packets() const { return sent_; }
  [[nodiscard]] std::uint64_t delivered_packets() const { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_no_handler() const { return no_handler_; }

 private:
  void try_transmit();

  sim::Simulator& sim_;
  HostId id_;
  Link* uplink_ = nullptr;
  std::deque<Packet> nic_queue_;
  std::uint64_t nic_bytes_ = 0;
  bool transmitting_ = false;
  std::unordered_map<FlowId, PacketHandler> handlers_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t no_handler_ = 0;
};

}  // namespace pmsb::net
