// Static destination-based routing with per-flow ECMP.
//
// Each switch holds a RoutingTable mapping destination host -> the set of
// candidate egress ports. When the set has more than one entry the port is
// picked by hashing the flow (src, dst, flow id), so all packets of a flow
// follow one path — the standard datacenter ECMP behaviour the paper's
// leaf-spine evaluation assumes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/packet.hpp"

namespace pmsb::net {

/// Deterministic flow hash used for ECMP path selection.
inline std::uint64_t flow_hash(HostId src, HostId dst, FlowId flow, std::uint64_t salt) {
  std::uint64_t h = salt ^ 0x9e3779b97f4a7c15ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    h ^= h >> 33;
  };
  mix(src);
  mix(dst);
  mix(flow);
  return h;
}

class RoutingTable {
 public:
  /// Adds `port` as a candidate egress for `dst`.
  void add_route(HostId dst, std::size_t port) {
    if (dst >= routes_.size()) routes_.resize(dst + 1);
    routes_[dst].push_back(port);
  }

  /// Selects the egress port for `pkt`; throws if no route exists.
  [[nodiscard]] std::size_t select_port(const Packet& pkt, std::uint64_t salt) const {
    if (pkt.dst >= routes_.size() || routes_[pkt.dst].empty()) {
      throw std::out_of_range("RoutingTable: no route to host " +
                              std::to_string(pkt.dst));
    }
    const auto& candidates = routes_[pkt.dst];
    if (candidates.size() == 1) return candidates[0];
    return candidates[flow_hash(pkt.src, pkt.dst, pkt.flow_id, salt) % candidates.size()];
  }

  [[nodiscard]] bool has_route(HostId dst) const {
    return dst < routes_.size() && !routes_[dst].empty();
  }

  [[nodiscard]] const std::vector<std::size_t>& candidates(HostId dst) const {
    return routes_.at(dst);
  }

 private:
  std::vector<std::vector<std::size_t>> routes_;
};

}  // namespace pmsb::net
