#include "net/host.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace pmsb::net {

void Host::send(Packet pkt) {
  if (uplink_ == nullptr) {
    throw std::logic_error("Host::send: no uplink attached to " + name());
  }
  pkt.sent_time = sim_.now();
  ++sent_;
  nic_bytes_ += pkt.size_bytes;
  nic_queue_.push_back(std::move(pkt));
  try_transmit();
}

void Host::try_transmit() {
  if (transmitting_ || nic_queue_.empty()) return;
  transmitting_ = true;
  Packet pkt = std::move(nic_queue_.front());
  nic_queue_.pop_front();
  nic_bytes_ -= pkt.size_bytes;
  const TimeNs tx_done = uplink_->transmit(std::move(pkt));
  sim_.schedule_at(tx_done, [this] {
    transmitting_ = false;
    try_transmit();
  });
}

void Host::receive(Packet pkt) {
  auto it = handlers_.find(pkt.flow_id);
  if (it == handlers_.end()) {
    ++no_handler_;
    return;
  }
  ++delivered_;
  // Copy the handler: the callback may unregister the flow (e.g. on FIN),
  // which would invalidate the iterator mid-call.
  PacketHandler handler = it->second;
  handler(std::move(pkt));
}

}  // namespace pmsb::net
