// Abstract network device. Hosts and switches implement `receive`, which a
// Link invokes when a packet finishes propagation.
#pragma once

#include <string>

#include "net/packet.hpp"

namespace pmsb::net {

class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  /// Delivers a packet that has fully arrived at this device.
  virtual void receive(Packet pkt) = 0;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  std::string name_;
};

}  // namespace pmsb::net
