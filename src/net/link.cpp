#include "net/link.hpp"

#include <cassert>
#include <utility>

namespace pmsb::net {

TimeNs Link::transmit(Packet pkt) {
  assert(!busy() && "Link::transmit called while a packet is serializing");
  const TimeNs tx_done = sim_.now() + sim::serialization_delay(pkt.size_bytes, rate_);
  busy_until_ = tx_done;
  bytes_sent_ += pkt.size_bytes;
  ++packets_sent_;
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, regress::EventKind::kSend,
                   static_cast<std::int64_t>(sim_.now()), pkt.id,
                   pkt.size_bytes | (static_cast<std::uint64_t>(pkt.ce) << 32) |
                       (static_cast<std::uint64_t>(pkt.ect) << 33));
  }
  sim_.schedule_at(tx_done + delay_,
                   [this, p = std::move(pkt)]() mutable { deliver(std::move(p)); });
  return tx_done;
}

void Link::deliver(Packet pkt) {
  ++packets_delivered_;
  // now == tx_done + delay_, so the serialization-complete instant is
  // recoverable without storing it alongside the packet.
  if (observer_) observer_(pkt, sim_.now() - delay_, sim_.now());
  dst_->receive(std::move(pkt));
}

}  // namespace pmsb::net
