// Packet model.
//
// One struct covers data segments and ACKs; packets are passed by value
// (they are small and trivially copyable) which keeps queue implementations
// simple and avoids per-packet heap allocation on the hot path.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace pmsb::net {

using HostId = std::uint16_t;
using FlowId = std::uint32_t;
using ServiceId = std::uint8_t;
using TimeNs = sim::TimeNs;

enum class PacketType : std::uint8_t {
  kData,  ///< TCP data segment
  kAck,   ///< pure acknowledgment
  kCnp,   ///< Congestion Notification Packet (DCQCN)
};

/// A single packet in flight. `size_bytes` is the on-the-wire size
/// (payload + 40B header for data, header only for ACKs).
struct Packet {
  std::uint64_t id = 0;          ///< globally unique per simulation run
  FlowId flow_id = 0;
  HostId src = 0;
  HostId dst = 0;
  ServiceId service = 0;         ///< DSCP-like tag; switches map it to a queue
  PacketType type = PacketType::kData;
  std::uint32_t size_bytes = sim::kDefaultMtuBytes;

  std::uint64_t seq = 0;         ///< first payload byte (data packets)
  std::uint64_t ack = 0;         ///< cumulative ACK (ACK packets)
  bool fin = false;              ///< last segment of the flow

  // --- ECN state (RFC 3168 semantics, simplified to per-packet echo) ---
  bool ect = true;               ///< sender is ECN-capable
  bool ce = false;               ///< Congestion Experienced, set by switches
  bool ece = false;              ///< ACK echoes the data packet's CE bit

  // --- Timestamps ---
  TimeNs sent_time = 0;          ///< stamped by the sender when transmitted
  TimeNs echo_time = 0;          ///< ACK echoes the data packet's sent_time
  TimeNs enqueue_time = 0;       ///< stamped at switch enqueue (TCN sojourn)

  [[nodiscard]] bool is_data() const { return type == PacketType::kData; }
  [[nodiscard]] bool is_ack() const { return type == PacketType::kAck; }

  /// Payload bytes carried (0 for ACKs).
  [[nodiscard]] std::uint32_t payload_bytes() const {
    return is_data() && size_bytes > sim::kHeaderBytes ? size_bytes - sim::kHeaderBytes
                                                       : 0;
  }
};

/// Wire size of a pure ACK.
inline constexpr std::uint32_t kAckBytes = sim::kHeaderBytes;

}  // namespace pmsb::net
