// Minimal leveled logging for simulator components.
//
// Logging is off by default (benchmarks and large runs must not pay for
// formatting); enable per-process with `set_log_level`. Messages carry the
// simulation timestamp supplied by the caller so traces line up with events.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

#include "sim/time.hpp"

namespace pmsb::sim {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, TimeNs t, const std::string& msg);
}

template <typename... Args>
void log(LogLevel level, TimeNs t, const char* fmt, Args&&... args) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  char buf[512];
  std::snprintf(buf, sizeof(buf), fmt, std::forward<Args>(args)...);
  detail::log_line(level, t, buf);
}

inline void log(LogLevel level, TimeNs t, const char* msg) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  detail::log_line(level, t, msg);
}

}  // namespace pmsb::sim
