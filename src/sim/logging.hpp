// Minimal leveled logging for simulator components.
//
// Logging is off by default (benchmarks and large runs must not pay for
// formatting); enable per-process with `set_log_level`. Messages carry the
// simulation timestamp supplied by the caller so traces line up with events.
#pragma once

#include <string>

#include "sim/time.hpp"

// Lets the compiler check log() call sites like printf: wrong conversion
// specifiers or argument counts become -Wformat diagnostics instead of
// runtime garbage/UB.
#if defined(__GNUC__) || defined(__clang__)
#define PMSB_PRINTF_LIKE(fmt_idx, va_idx) \
  __attribute__((format(printf, fmt_idx, va_idx)))
#else
#define PMSB_PRINTF_LIKE(fmt_idx, va_idx)
#endif

namespace pmsb::sim {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, TimeNs t, const std::string& msg);
}

/// printf-style leveled log line. Messages that do not fit the 512-byte
/// stack buffer are heap-formatted in full — never silently truncated.
void log(LogLevel level, TimeNs t, const char* fmt, ...) PMSB_PRINTF_LIKE(3, 4);

}  // namespace pmsb::sim
