#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <cassert>

namespace pmsb::sim {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CalendarQueue::CalendarQueue() {
  buckets_.resize(kMinBuckets);
  mask_ = kMinBuckets - 1;
}

void CalendarQueue::push(const QueueEntry& e) {
  // An insert behind the cursor's window would be skipped for a whole year
  // of scanning; an insert into an empty calendar has no cursor at all.
  // Both re-anchor the cursor at the new entry's window. (Anchoring at
  // e.time rather than min(e.time, cur) is safe: the cursor always trails
  // the true minimum or sits on it, and peek()'s fallback re-anchors.)
  if (size_ == 0 || e.time < cur_top_ - width()) {
    set_cursor(e.time);
  }
  auto& bucket = buckets_[bucket_of(e.time)];
  bucket.push_back(e);
  std::push_heap(bucket.begin(), bucket.end(), EntryLater{});
  ++size_;
  if (size_ > 2 * buckets_.size()) rebalance();
}

const QueueEntry* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  // Scan at most one full year of windows from the cursor. A bucket's front
  // qualifies only if it falls inside the current window — an entry a year
  // (or more) ahead hashes to the same bucket but must not jump the queue.
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const auto& bucket = buckets_[cur_];
    if (!bucket.empty() && bucket.front().time < cur_top_) {
      return &bucket.front();
    }
    cur_ = (cur_ + 1) & mask_;
    cur_top_ += width();
  }
  // Nothing within a year of the cursor: the population is sparse relative
  // to the calendar. Jump straight to the global minimum over bucket fronts.
  const QueueEntry* best = nullptr;
  for (const auto& bucket : buckets_) {
    if (bucket.empty()) continue;
    if (best == nullptr || EntryLater{}(*best, bucket.front())) {
      best = &bucket.front();
    }
  }
  assert(best != nullptr);
  set_cursor(best->time);
  return best;
}

QueueEntry CalendarQueue::pop() {
  [[maybe_unused]] const QueueEntry* top = peek();
  assert(top != nullptr);
  auto& bucket = buckets_[cur_];
  std::pop_heap(bucket.begin(), bucket.end(), EntryLater{});
  const QueueEntry e = bucket.back();
  bucket.pop_back();
  --size_;
  // Shrink lazily (at 1/8 occupancy, not 1/2): a draining queue crosses
  // every halving threshold on its way down, and an eager rebalance at each
  // one costs more in entry moves than the smaller calendar saves.
  if (size_ < buckets_.size() / 8 && buckets_.size() > kMinBuckets) {
    rebalance();
  }
  return e;
}

void CalendarQueue::rebalance() {
  std::vector<QueueEntry> all;
  all.reserve(size_);
  for (auto& bucket : buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }

  const std::size_t nbuckets =
      std::max(kMinBuckets, round_up_pow2(std::max<std::size_t>(size_, 1)));
  buckets_.resize(nbuckets);
  mask_ = nbuckets - 1;
  width_shift_ = estimate_width_shift(all);

  for (const auto& e : all) buckets_[bucket_of(e.time)].push_back(e);
  for (auto& bucket : buckets_) {
    std::make_heap(bucket.begin(), bucket.end(), EntryLater{});
  }
  if (size_ != 0) {
    // Re-anchor at the earliest pending entry.
    const QueueEntry* best = nullptr;
    for (const auto& bucket : buckets_) {
      if (!bucket.empty() &&
          (best == nullptr || EntryLater{}(*best, bucket.front()))) {
        best = &bucket.front();
      }
    }
    set_cursor(best->time);
  }
}

int CalendarQueue::estimate_width_shift(
    const std::vector<QueueEntry>& all) const {
  if (all.size() < 2) return width_shift_;
  // Strided sample of up to 64 timestamps, sorted; the doubled median of the
  // positive adjacent gaps is the window size. Median, not mean: one distant
  // watchdog/retransmit timer must not stretch every window.
  std::vector<TimeNs> sample;
  sample.reserve(64);
  const std::size_t stride = std::max<std::size_t>(1, all.size() / 64);
  for (std::size_t i = 0; i < all.size(); i += stride) {
    sample.push_back(all[i].time);
  }
  std::sort(sample.begin(), sample.end());
  std::vector<TimeNs> gaps;
  gaps.reserve(sample.size());
  for (std::size_t i = 1; i < sample.size(); ++i) {
    const TimeNs gap = sample[i] - sample[i - 1];
    if (gap > 0) gaps.push_back(gap);
  }
  if (gaps.empty()) return width_shift_;  // all sampled timestamps equal
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  const TimeNs target = 2 * gaps[gaps.size() / 2];
  int shift = 0;
  while ((TimeNs{1} << shift) < target && shift < 62) ++shift;
  return shift;
}

}  // namespace pmsb::sim
