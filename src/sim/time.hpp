// Time representation for the dcnsim discrete-event simulator.
//
// All simulation time is an integer count of nanoseconds (TimeNs). Using a
// 64-bit integer rather than floating point keeps event ordering exact and
// runs reproducible: two events scheduled for the same instant compare equal
// and are broken by insertion order, never by rounding noise.
#pragma once

#include <cstdint>

namespace pmsb::sim {

/// Simulation time in nanoseconds since the start of the run.
using TimeNs = std::int64_t;

/// Sentinel for "no deadline" / "never".
inline constexpr TimeNs kTimeNever = INT64_MAX;

inline constexpr TimeNs nanoseconds(std::int64_t v) { return v; }
inline constexpr TimeNs microseconds(std::int64_t v) { return v * 1'000; }
inline constexpr TimeNs milliseconds(std::int64_t v) { return v * 1'000'000; }
inline constexpr TimeNs seconds(std::int64_t v) { return v * 1'000'000'000; }

/// Converts a (possibly fractional) microsecond value to TimeNs.
inline constexpr TimeNs microseconds_f(double v) {
  return static_cast<TimeNs>(v * 1e3);
}

/// Converts a (possibly fractional) second value to TimeNs.
inline constexpr TimeNs seconds_f(double v) {
  return static_cast<TimeNs>(v * 1e9);
}

inline constexpr double to_seconds(TimeNs t) { return static_cast<double>(t) * 1e-9; }
inline constexpr double to_microseconds(TimeNs t) { return static_cast<double>(t) * 1e-3; }
inline constexpr double to_milliseconds(TimeNs t) { return static_cast<double>(t) * 1e-6; }

}  // namespace pmsb::sim
