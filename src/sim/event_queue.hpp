// Queue-backend vocabulary for the event kernel: the entry type both
// backends order, the (time, insertion-sequence) comparator that defines the
// kernel's deterministic tie order, the binary-heap backend, and the
// runtime-selection enum (`sched_queue=heap|calendar`).
//
// A QueueEntry is 24 bytes — timestamp, insertion sequence, and the index of
// the event's pool slot — so heap sifts move three words instead of the old
// 48+-byte Event carrying a std::function. The callback itself never moves
// after scheduling; it lives in the slot until dispatch.
//
// Both backends order entries identically (strict weak order on (time, seq))
// and both discard a cancelled entry at exactly the moment it would have
// been popped, so the dispatch sequence — and every digest derived from it —
// is bit-identical whichever backend runs a scenario.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace pmsb::sim {

/// Which priority-queue implementation orders the event kernel.
enum class QueueBackend {
  kHeap,      ///< binary heap — O(log n), distribution-agnostic (default)
  kCalendar,  ///< calendar queue — near-O(1) for dense, mostly-near-future
              ///< timestamp distributions (Brown 1988)
};

inline QueueBackend parse_queue_backend(const std::string& name) {
  if (name == "heap") return QueueBackend::kHeap;
  if (name == "calendar") return QueueBackend::kCalendar;
  throw std::invalid_argument("unknown sched_queue '" + name +
                              "' (want heap | calendar)");
}

inline const char* queue_backend_name(QueueBackend backend) {
  return backend == QueueBackend::kHeap ? "heap" : "calendar";
}

/// One scheduled event as the queue sees it. The callback stays in the pool
/// slot; only this 24-byte record moves through the queue.
struct QueueEntry {
  TimeNs time = 0;
  std::uint64_t seq = 0;   ///< insertion sequence — the deterministic tie-break
  std::uint32_t slot = 0;  ///< pool slot holding the callback
};

/// Min-order on (time, seq): earliest first, FIFO among equal timestamps.
/// Written as "later than" so it plugs into std::push_heap/pop_heap (which
/// build max-heaps) and yields the minimum at the top.
struct EntryLater {
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Heap backend: a flat 4-ary min-heap. 4-ary over binary because sifts on
/// a deep queue are cache-miss bound: half the levels, and a node's four
/// children sit in ~one cache line (4 x 24 bytes), so a sift-down touches
/// roughly half the lines a binary heap does. Pop order is identical to any
/// correct priority queue — (time, seq) is a total order, so the structure
/// of the heap can't show through.
class HeapEventQueue {
 public:
  void push(const QueueEntry& e) {
    v_.push_back(e);
    sift_up(v_.size() - 1);
  }

  /// The next entry in (time, seq) order, or nullptr when empty. The pointer
  /// is invalidated by any push/pop/compact.
  [[nodiscard]] const QueueEntry* peek() const {
    return v_.empty() ? nullptr : v_.data();
  }

  QueueEntry pop() {
    const QueueEntry top = v_.front();
    const QueueEntry last = v_.back();
    v_.pop_back();
    if (!v_.empty()) {
      v_.front() = last;
      sift_down(0);
    }
    return top;
  }

  [[nodiscard]] std::size_t size() const { return v_.size(); }

  /// Drops every entry for which `keep` returns false and restores the heap
  /// invariant — the tombstone purge behind Simulator::maybe_compact.
  template <typename Keep>
  void compact(Keep keep) {
    v_.erase(std::remove_if(v_.begin(), v_.end(),
                            [&](const QueueEntry& e) { return !keep(e); }),
             v_.end());
    heapify();
  }

 private:
  static bool earlier(const QueueEntry& a, const QueueEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) {
    const QueueEntry e = v_[i];
    while (i != 0) {
      const std::size_t parent = (i - 1) >> 2;
      if (!earlier(e, v_[parent])) break;
      v_[i] = v_[parent];
      i = parent;
    }
    v_[i] = e;
  }

  void sift_down(std::size_t i) {
    const QueueEntry e = v_[i];
    const std::size_t n = v_.size();
    for (;;) {
      const std::size_t first = (i << 2) + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t limit = std::min(first + 4, n);
      for (std::size_t c = first + 1; c < limit; ++c) {
        if (earlier(v_[c], v_[best])) best = c;
      }
      if (!earlier(v_[best], e)) break;
      v_[i] = v_[best];
      i = best;
    }
    v_[i] = e;
  }

  void heapify() {
    if (v_.size() < 2) return;
    for (std::size_t i = (v_.size() - 2) >> 2;; --i) {
      sift_down(i);
      if (i == 0) break;
    }
  }

  std::vector<QueueEntry> v_;
};

}  // namespace pmsb::sim
