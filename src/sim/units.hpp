// Bandwidth / size unit helpers shared across the simulator.
//
// Rates are plain bits-per-second integers so that serialization delays can
// be computed exactly in integer nanoseconds. Helper factories make call
// sites read like the paper ("10 Gbps links", "16 packet threshold").
#pragma once

#include <cstdint>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/time.hpp"

namespace pmsb::sim {

/// Link / drain rate in bits per second.
using RateBps = std::uint64_t;

inline constexpr RateBps kbps(std::uint64_t v) { return v * 1'000ull; }
inline constexpr RateBps mbps(std::uint64_t v) { return v * 1'000'000ull; }
inline constexpr RateBps gbps(std::uint64_t v) { return v * 1'000'000'000ull; }

/// Ethernet MTU used throughout the paper's experiments (bytes, on the wire).
inline constexpr std::uint32_t kDefaultMtuBytes = 1500;

/// TCP/IP header overhead assumed per segment (bytes).
inline constexpr std::uint32_t kHeaderBytes = 40;

/// Maximum segment payload for a default-MTU packet.
inline constexpr std::uint32_t kDefaultMssBytes = kDefaultMtuBytes - kHeaderBytes;

/// Time to serialize `bytes` onto a link of rate `rate` (rounded up so a
/// packet never finishes "early"; rounding down could let two back-to-back
/// packets overlap by a nanosecond).
inline constexpr TimeNs serialization_delay(std::uint64_t bytes, RateBps rate) {
  const std::uint64_t bits = bytes * 8ull;
  // ns = bits / (rate / 1e9) = bits * 1e9 / rate, rounded up.
  return static_cast<TimeNs>((bits * 1'000'000'000ull + rate - 1) / rate);
}

/// Bytes a link of rate `rate` drains in `t` nanoseconds (rounded down).
inline constexpr std::uint64_t bytes_drained(TimeNs t, RateBps rate) {
  if (t <= 0) return 0;
  return static_cast<std::uint64_t>(t) * rate / 8ull / 1'000'000'000ull;
}

/// The bandwidth-delay product C * RTT expressed in bytes.
inline constexpr std::uint64_t bdp_bytes(RateBps rate, TimeNs rtt) {
  return static_cast<std::uint64_t>(rtt) * rate / 8ull / 1'000'000'000ull;
}

/// Parses a human-readable duration into TimeNs: a (possibly fractional)
/// number followed by an optional unit suffix `ns`, `us`, `ms`, or `s`
/// (bare numbers are nanoseconds). Used by the fault-timeline grammar and
/// the experiment option parser. Throws std::invalid_argument on malformed
/// input ("", "10x", "ms").
inline TimeNs parse_duration_ns(const std::string& text) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double value = std::strtod(begin, &end);
  if (end == begin) {
    throw std::invalid_argument("parse_duration_ns: no number in '" + text + "'");
  }
  const std::string suffix(end);
  double scale = 1.0;
  if (suffix == "ns" || suffix.empty()) {
    scale = 1.0;
  } else if (suffix == "us") {
    scale = 1e3;
  } else if (suffix == "ms") {
    scale = 1e6;
  } else if (suffix == "s") {
    scale = 1e9;
  } else {
    throw std::invalid_argument("parse_duration_ns: bad unit '" + suffix + "' in '" +
                                text + "'");
  }
  return static_cast<TimeNs>(value * scale);
}

/// Converts a threshold given in packets (the paper's unit) to bytes.
inline constexpr std::uint64_t packets_to_bytes(double packets,
                                                std::uint32_t mtu = kDefaultMtuBytes) {
  return static_cast<std::uint64_t>(packets * mtu);
}

}  // namespace pmsb::sim
