#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>

#ifdef PMSB_PROFILE_DISPATCH
#include <chrono>
#endif

namespace pmsb::sim {

namespace {

// Balances hook_->begin_dispatch() even when the event callback throws —
// faults::Deadline legitimately throws DeadlineExceeded through dispatch,
// and an attached Profiler must not be left with an open scope.
class EndDispatchGuard {
 public:
  explicit EndDispatchGuard(DispatchHook* hook) : hook_(hook) {}
  EndDispatchGuard(const EndDispatchGuard&) = delete;
  EndDispatchGuard& operator=(const EndDispatchGuard&) = delete;
  ~EndDispatchGuard() { hook_->end_dispatch(); }

 private:
  DispatchHook* hook_;
};

#ifdef PMSB_PROFILE_DISPATCH
// Accumulates callback wall time on scope exit, including exceptional exit,
// so dispatch_wall_ns stays meaningful when a deadline aborts a run.
class DispatchTimer {
 public:
  explicit DispatchTimer(std::uint64_t& acc)
      : acc_(acc), t0_(std::chrono::steady_clock::now()) {}
  DispatchTimer(const DispatchTimer&) = delete;
  DispatchTimer& operator=(const DispatchTimer&) = delete;
  ~DispatchTimer() {
    acc_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0_)
            .count());
  }

 private:
  std::uint64_t& acc_;
  std::chrono::steady_clock::time_point t0_;
};
#endif

}  // namespace

bool Simulator::step(TimeNs until) {
  for (;;) {
    const QueueEntry* top = backend_ == QueueBackend::kHeap
                                ? heap_.peek()
                                : calendar_.peek();
    if (top == nullptr) return false;
    if (pool_.slot(top->slot).seq != top->seq) {
      // Tombstone: the event was cancelled (or its slot reused after a
      // purge race — impossible here, but the check subsumes it). Discard.
      if (backend_ == QueueBackend::kHeap) {
        heap_.pop();
      } else {
        calendar_.pop();
      }
      assert(stale_entries_ > 0);
      --stale_entries_;
      continue;
    }
    if (top->time > until) {
      now_ = std::max(now_, until);
      return false;
    }
    const QueueEntry e =
        backend_ == QueueBackend::kHeap ? heap_.pop() : calendar_.pop();
    // Move the callback out and release the slot BEFORE invoking, so
    // re-entrant schedules (which may reuse this very slot) and cancels of
    // this event's own handle from inside the callback are both safe.
    EventCallback fn = std::move(pool_.slot(e.slot).fn);
    pool_.release(e.slot);
    assert(live_events_ > 0);
    --live_events_;
    const TimeNs delta = e.time - now_;
    now_ = e.time;
    ++executed_events_;
    if (hook_ != nullptr) {
      hook_->begin_dispatch(now_, delta);
      EndDispatchGuard guard{hook_};
      fn();
      return true;
    }
#ifdef PMSB_PROFILE_DISPATCH
    {
      DispatchTimer timer{dispatch_wall_ns_};
      fn();
    }
#else
    fn();
#endif
    return true;
  }
}

void Simulator::run(TimeNs until) {
  stop_requested_ = false;
  while (!stop_requested_ && step(until)) {
  }
  // Drain exit also lands on the horizon: whether the queue emptied before
  // `until` or events remain past it, back-to-back run(t1); run(t2) callers
  // observe now() == t1 in between. stop() exits don't clamp — time stays
  // at the event that requested the stop.
  if (!stop_requested_ && until != kTimeNever && live_events_ == 0 &&
      now_ < until) {
    now_ = until;
  }
}

void Simulator::maybe_compact() {
  const std::size_t depth = queue_depth();
  if (depth < kCompactMinDepth || stale_entries_ * 2 <= depth) return;
  const auto keep = [this](const QueueEntry& e) {
    return pool_.slot(e.slot).seq == e.seq;
  };
  if (backend_ == QueueBackend::kHeap) {
    heap_.compact(keep);
  } else {
    calendar_.compact(keep);
  }
  stale_entries_ = 0;
  ++queue_compactions_;
}

}  // namespace pmsb::sim
