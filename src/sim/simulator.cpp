#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#ifdef PMSB_PROFILE_DISPATCH
#include <chrono>
#endif

namespace pmsb::sim {

EventId Simulator::schedule_at(TimeNs t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(fn)});
  pending_.insert(id);
  ++live_events_;
  max_heap_depth_ = std::max(max_heap_depth_, heap_.size());
  if (hook_ != nullptr) hook_->on_schedule();
  return id;
}

void Simulator::cancel(EventId id) {
  // Only ids that are still pending may be cancelled: an already-fired id
  // is no longer live (decrementing live_events_ would corrupt the count)
  // and will never be popped again (its cancelled_ tombstone would leak).
  const auto it = pending_.find(id);
  if (it == pending_.end()) return;
  pending_.erase(it);
  cancelled_.insert(id);
  assert(live_events_ > 0);
  --live_events_;
  ++cancelled_events_;
  if (hook_ != nullptr) hook_->on_cancel();
}

bool Simulator::step(TimeNs until) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    if (top.time > until) {
      now_ = std::max(now_, until);
      return false;
    }
    // Move the callback out before popping so re-entrant schedules are safe.
    Event ev = std::move(const_cast<Event&>(top));
    heap_.pop();
    pending_.erase(ev.id);
    assert(live_events_ > 0);
    --live_events_;
    const TimeNs delta = ev.time - now_;
    now_ = ev.time;
    ++executed_events_;
    if (hook_ != nullptr) {
      hook_->begin_dispatch(now_, delta);
      ev.fn();
      hook_->end_dispatch();
      return true;
    }
#ifdef PMSB_PROFILE_DISPATCH
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    dispatch_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
#else
    ev.fn();
#endif
    return true;
  }
  return false;
}

void Simulator::run(TimeNs until) {
  stop_requested_ = false;
  while (!stop_requested_ && step(until)) {
  }
}

}  // namespace pmsb::sim
