#include "sim/simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#ifdef PMSB_PROFILE_DISPATCH
#include <chrono>
#endif

namespace pmsb::sim {

EventId Simulator::schedule_at(TimeNs t, Callback fn) {
  if (t < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time is in the past");
  }
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(fn)});
  ++live_events_;
  max_heap_depth_ = std::max(max_heap_depth_, heap_.size());
  return id;
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId || id >= next_id_) return;
  if (cancelled_.insert(id).second && live_events_ > 0) {
    --live_events_;
    ++cancelled_events_;
  }
}

bool Simulator::step(TimeNs until) {
  while (!heap_.empty()) {
    const Event& top = heap_.top();
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      heap_.pop();
      continue;
    }
    if (top.time > until) {
      now_ = std::max(now_, until);
      return false;
    }
    // Move the callback out before popping so re-entrant schedules are safe.
    Event ev = std::move(const_cast<Event&>(top));
    heap_.pop();
    assert(live_events_ > 0);
    --live_events_;
    now_ = ev.time;
    ++executed_events_;
#ifdef PMSB_PROFILE_DISPATCH
    const auto t0 = std::chrono::steady_clock::now();
    ev.fn();
    dispatch_wall_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
#else
    ev.fn();
#endif
    return true;
  }
  return false;
}

void Simulator::run(TimeNs until) {
  stop_requested_ = false;
  while (!stop_requested_ && step(until)) {
  }
}

}  // namespace pmsb::sim
