// The dcnsim discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule callbacks with `schedule(t, fn)`; `run()` pops events in
// (time, insertion-sequence) order until the queue drains or a stop
// condition fires. Ties at the same timestamp execute in the order they
// were scheduled, which makes runs bit-for-bit reproducible.
//
// The kernel is deliberately single-threaded: datacenter-scale packet
// simulations are dominated by event dispatch, and determinism is worth
// more than parallelism for reproducing paper figures.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pmsb::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
using EventId = std::uint64_t;

/// Invalid/empty event handle.
inline constexpr EventId kInvalidEventId = 0;

/// Kernel observation interface for profilers. The simulator calls
/// begin_dispatch()/end_dispatch() around every event callback and
/// on_schedule()/on_cancel() per heap operation — but ONLY while a hook is
/// attached, so the un-instrumented cost is one null check per call site
/// (the same contract as Port::set_tracer). Declared here (not in
/// telemetry/) so the kernel stays free of upward dependencies; the concrete
/// implementation lives in telemetry::Profiler.
class DispatchHook {
 public:
  virtual ~DispatchHook() = default;
  /// About to run an event at simulation time `now`; `delta` is the
  /// sim-time advance since the previous event (0 for same-timestamp ties).
  virtual void begin_dispatch(TimeNs now, TimeNs delta) = 0;
  /// The event callback returned.
  virtual void end_dispatch() = 0;
  virtual void on_schedule() = 0;
  virtual void on_cancel() = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Valid inside and outside event callbacks.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (must be >= now()).
  /// Returns a handle that can be passed to `cancel`.
  EventId schedule_at(TimeNs t, Callback fn);

  /// Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_in(TimeNs delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a true no-op (the kernel tracks which ids are still
  /// pending, so stale handles cannot corrupt the live-event count or leak
  /// tombstones). Cancelled events stay in the heap but are skipped lazily.
  void cancel(EventId id);

  /// Runs until the event queue is empty or `until` is reached (events with
  /// timestamp strictly greater than `until` are left unfired and time is
  /// clamped to `until`).
  void run(TimeNs until = kTimeNever);

  /// Executes at most one pending event. Returns false if none remain or
  /// the next event is past `until`.
  bool step(TimeNs until = kTimeNever);

  /// Requests that `run()` return after the current event finishes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_events_; }
  [[nodiscard]] std::uint64_t cancelled_events() const { return cancelled_events_; }
  /// High-water mark of the event heap (including lazily-skipped cancelled
  /// entries) — the kernel's memory pressure signal.
  [[nodiscard]] std::size_t max_heap_depth() const { return max_heap_depth_; }

  /// True when the build carries per-event wall-clock dispatch profiling
  /// (configure with -DPMSB_PROFILE_DISPATCH=ON; off by default because the
  /// clock reads dominate small callbacks).
  [[nodiscard]] static constexpr bool dispatch_profiling_enabled() {
#ifdef PMSB_PROFILE_DISPATCH
    return true;
#else
    return false;
#endif
  }
  /// Total wall-clock nanoseconds spent inside event callbacks; 0 unless
  /// dispatch_profiling_enabled().
  [[nodiscard]] std::uint64_t dispatch_wall_ns() const { return dispatch_wall_ns_; }

  /// Attaches a dispatch hook (nullptr to detach). The hook must outlive
  /// its attachment; telemetry::Profiler detaches itself on destruction.
  void set_dispatch_hook(DispatchHook* hook) { hook_ = hook; }
  [[nodiscard]] DispatchHook* dispatch_hook() const { return hook_; }

  /// Allocates the next packet id for this run. Packet ids are kernel state
  /// (not process-global) so that every run numbers its packets from 1
  /// regardless of what ran earlier in the process — a prerequisite for
  /// bit-identical repeat runs and for running simulators on multiple
  /// threads.
  [[nodiscard]] std::uint64_t allocate_packet_id() { return ++last_packet_id_; }
  /// Packet ids handed out so far (equals the id of the newest packet).
  [[nodiscard]] std::uint64_t packet_ids_allocated() const { return last_packet_id_; }

 private:
  struct Event {
    TimeNs time = 0;
    EventId id = kInvalidEventId;  // also the insertion sequence number
    Callback fn;
  };

  // Min-heap ordering: earliest time first; FIFO among equal times.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.id > b.id;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  // Ids scheduled but not yet fired or cancelled. Membership here is what
  // makes `cancel` safe against already-fired ids; its size always equals
  // `live_events_`.
  std::unordered_set<EventId> pending_;
  std::unordered_set<EventId> cancelled_;
  TimeNs now_ = 0;
  EventId next_id_ = 1;
  std::uint64_t last_packet_id_ = 0;
  std::size_t live_events_ = 0;
  std::size_t max_heap_depth_ = 0;
  std::uint64_t executed_events_ = 0;
  std::uint64_t cancelled_events_ = 0;
  std::uint64_t dispatch_wall_ns_ = 0;
  DispatchHook* hook_ = nullptr;
  bool stop_requested_ = false;
};

}  // namespace pmsb::sim
