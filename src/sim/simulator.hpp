// The dcnsim discrete-event simulation kernel.
//
// A Simulator owns a priority queue of timestamped events. Components
// schedule callbacks with `schedule_at(t, fn)`; `run()` pops events in
// (time, insertion-sequence) order until the queue drains or a stop
// condition fires. Ties at the same timestamp execute in the order they
// were scheduled, which makes runs bit-for-bit reproducible.
//
// Hot-path design (ROADMAP item 1):
//  - a scheduled callback lives in a generation-tagged slot of a per-
//    Simulator EventPool (slab chunks, LIFO free list, no per-event malloc);
//    the callback type is a 48-byte small-buffer EventCallback, not
//    std::function (see event_callback.hpp);
//  - the queue orders 24-byte QueueEntry{time, seq, slot} records, so sifts
//    move three words and never touch the closure;
//  - schedule/cancel/fire are O(1) bookkeeping (plus the queue op): handle
//    validation is a generation compare against the slot, entry validation a
//    sequence compare — the old pending_/cancelled_ hash sets are gone;
//  - two queue backends are selectable at construction (`sched_queue=` at
//    the CLI): the default binary heap and a calendar queue. Both order
//    entries identically and discard a cancelled entry exactly when it
//    would have been popped, so runs are bit-identical across backends
//    (pmsbregress digests verify this).
//
// The kernel is deliberately single-threaded: datacenter-scale packet
// simulations are dominated by event dispatch, and determinism is worth
// more than parallelism for reproducing paper figures.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>

#include "sim/calendar_queue.hpp"
#include "sim/event_callback.hpp"
#include "sim/event_pool.hpp"
#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace pmsb::sim {

/// Opaque handle identifying a scheduled event, usable for cancellation.
/// Packs (slot generation << 32 | slot index + 1); never 0 for a real event.
using EventId = std::uint64_t;

/// Invalid/empty event handle.
inline constexpr EventId kInvalidEventId = 0;

/// Kernel observation interface for profilers. The simulator calls
/// begin_dispatch()/end_dispatch() around every event callback and
/// on_schedule()/on_cancel() per queue operation — but ONLY while a hook is
/// attached, so the un-instrumented cost is one null check per call site
/// (the same contract as Port::set_tracer). Declared here (not in
/// telemetry/) so the kernel stays free of upward dependencies; the concrete
/// implementation lives in telemetry::Profiler.
class DispatchHook {
 public:
  virtual ~DispatchHook() = default;
  /// About to run an event at simulation time `now`; `delta` is the
  /// sim-time advance since the previous event (0 for same-timestamp ties).
  virtual void begin_dispatch(TimeNs now, TimeNs delta) = 0;
  /// The event callback returned (called even if the callback threw, so
  /// begin/end stay balanced across exceptions).
  virtual void end_dispatch() = 0;
  virtual void on_schedule() = 0;
  virtual void on_cancel() = 0;
};

class Simulator {
 public:
  using Callback = EventCallback;

  explicit Simulator(QueueBackend backend = QueueBackend::kHeap)
      : backend_(backend) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulation time. Valid inside and outside event callbacks.
  [[nodiscard]] TimeNs now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (must be >= now()).
  /// Returns a handle that can be passed to `cancel`. Accepts any callable
  /// `void()`; captures up to EventCallback::kInlineBytes stay inline.
  template <typename F>
  EventId schedule_at(TimeNs t, F&& fn) {
    if (t < now_) {
      throw std::invalid_argument(
          "Simulator::schedule_at: time is in the past");
    }
    const std::uint64_t seq = next_seq_++;
    const std::uint32_t idx = pool_.acquire(seq, std::forward<F>(fn));
    const QueueEntry entry{t, seq, idx};
    if (backend_ == QueueBackend::kHeap) {
      heap_.push(entry);
    } else {
      calendar_.push(entry);
    }
    ++live_events_;
    max_heap_depth_ = std::max(max_heap_depth_, queue_depth());
    if (hook_ != nullptr) hook_->on_schedule();
    return (static_cast<EventId>(pool_.generation(idx)) << 32) |
           (static_cast<EventId>(idx) + 1);
  }

  /// Schedules `fn` to run `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_in(TimeNs delay, F&& fn) {
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired, already-cancelled,
  /// or invalid handle is a true no-op: the handle's generation can only
  /// match a slot whose occupancy it was issued for, so stale handles cannot
  /// corrupt the live-event count or release someone else's event. The
  /// closure is destroyed immediately (captures released now, not at pop);
  /// the queue entry becomes a tombstone that is skipped when popped, and
  /// bulk-purged when tombstones exceed half the queue (see queue_compactions).
  void cancel(EventId id) {
    const auto low = static_cast<std::uint32_t>(id);
    if (low == 0) return;
    const std::uint32_t idx = low - 1;
    if (idx >= pool_.size()) return;
    if (pool_.generation(idx) != static_cast<std::uint32_t>(id >> 32) ||
        pool_.slot(idx).seq == 0) {
      return;
    }
    pool_.release(idx);
    --live_events_;
    ++cancelled_events_;
    ++stale_entries_;
    if (hook_ != nullptr) hook_->on_cancel();
    maybe_compact();
  }

  /// Runs until the event queue is empty or `until` is reached. Events with
  /// timestamp strictly greater than `until` are left unfired. On return,
  /// when `until` is finite, `now()` equals `until` whether the queue
  /// drained first or events remain past the horizon — back-to-back
  /// `run(t1); run(t2)` always observes `now() == t1` between the calls.
  /// (A `stop()` exit leaves `now()` at the last executed event.)
  void run(TimeNs until = kTimeNever);

  /// Executes at most one pending event. Returns false if none remain or
  /// the next event is past `until` (in which case time advances to `until`).
  bool step(TimeNs until = kTimeNever);

  /// Requests that `run()` return after the current event finishes.
  void stop() { stop_requested_ = true; }

  [[nodiscard]] bool empty() const { return live_events_ == 0; }
  [[nodiscard]] std::size_t pending_events() const { return live_events_; }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_events_; }
  [[nodiscard]] std::uint64_t cancelled_events() const { return cancelled_events_; }
  /// High-water mark of the event queue (including not-yet-purged cancelled
  /// tombstones) — the kernel's memory pressure signal.
  [[nodiscard]] std::size_t max_heap_depth() const { return max_heap_depth_; }
  /// Current queue depth, live events plus pending tombstones.
  [[nodiscard]] std::size_t queue_depth() const {
    return backend_ == QueueBackend::kHeap ? heap_.size() : calendar_.size();
  }

  /// Which queue backend this simulator was constructed with.
  [[nodiscard]] QueueBackend queue_backend() const { return backend_; }
  /// Times the tombstone purge ran (cancelled entries exceeded half the
  /// queue). Identical across backends for the same schedule/cancel trace.
  [[nodiscard]] std::uint64_t queue_compactions() const {
    return queue_compactions_;
  }

  /// True when the build carries per-event wall-clock dispatch profiling
  /// (configure with -DPMSB_PROFILE_DISPATCH=ON; off by default because the
  /// clock reads dominate small callbacks).
  [[nodiscard]] static constexpr bool dispatch_profiling_enabled() {
#ifdef PMSB_PROFILE_DISPATCH
    return true;
#else
    return false;
#endif
  }
  /// Total wall-clock nanoseconds spent inside event callbacks; 0 unless
  /// dispatch_profiling_enabled().
  [[nodiscard]] std::uint64_t dispatch_wall_ns() const { return dispatch_wall_ns_; }

  /// Attaches a dispatch hook (nullptr to detach). The hook must outlive
  /// its attachment; telemetry::Profiler detaches itself on destruction.
  void set_dispatch_hook(DispatchHook* hook) { hook_ = hook; }
  [[nodiscard]] DispatchHook* dispatch_hook() const { return hook_; }

  /// Allocates the next packet id for this run. Packet ids are kernel state
  /// (not process-global) so that every run numbers its packets from 1
  /// regardless of what ran earlier in the process — a prerequisite for
  /// bit-identical repeat runs and for running simulators on multiple
  /// threads.
  [[nodiscard]] std::uint64_t allocate_packet_id() { return ++last_packet_id_; }
  /// Packet ids handed out so far (equals the id of the newest packet).
  [[nodiscard]] std::uint64_t packet_ids_allocated() const { return last_packet_id_; }

 private:
  /// Don't bother purging tombstones out of a tiny queue.
  static constexpr std::size_t kCompactMinDepth = 64;

  /// Purges cancelled tombstones when they exceed half the queue. Cold path;
  /// the trigger depends only on the schedule/cancel trace, so both backends
  /// compact at identical points and depth metrics stay comparable.
  void maybe_compact();

  EventPool pool_;
  HeapEventQueue heap_;
  CalendarQueue calendar_;
  const QueueBackend backend_;
  TimeNs now_ = 0;
  std::uint64_t next_seq_ = 1;  // 0 is the pool's "slot free" sentinel
  std::uint64_t last_packet_id_ = 0;
  std::size_t live_events_ = 0;
  std::size_t stale_entries_ = 0;  ///< cancelled entries still in the queue
  std::size_t max_heap_depth_ = 0;
  std::uint64_t executed_events_ = 0;
  std::uint64_t cancelled_events_ = 0;
  std::uint64_t queue_compactions_ = 0;
  std::uint64_t dispatch_wall_ns_ = 0;
  DispatchHook* hook_ = nullptr;
  bool stop_requested_ = false;
};

}  // namespace pmsb::sim
