#include "sim/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace pmsb::sim {

namespace {
// Atomic because the sweep runner's worker threads consult the level
// concurrently; it is set once at startup, so relaxed ordering suffices.
std::atomic<LogLevel> g_level{LogLevel::kNone};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kNone: break;
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

void log(LogLevel level, TimeNs t, const char* fmt, ...) {
  if (static_cast<int>(level) > static_cast<int>(log_level())) return;
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  char buf[512];
  const int needed = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    detail::log_line(LogLevel::kError, t, std::string("[log format error] ") + fmt);
    return;
  }
  if (static_cast<std::size_t>(needed) >= sizeof(buf)) {
    // Reformat into an exact-size heap buffer instead of cutting the tail.
    std::string big(static_cast<std::size_t>(needed) + 1, '\0');
    std::vsnprintf(big.data(), big.size(), fmt, args_copy);
    big.resize(static_cast<std::size_t>(needed));
    va_end(args_copy);
    detail::log_line(level, t, big);
    return;
  }
  va_end(args_copy);
  detail::log_line(level, t, std::string(buf, static_cast<std::size_t>(needed)));
}

namespace detail {
void log_line(LogLevel level, TimeNs t, const std::string& msg) {
  std::fprintf(stderr, "[%10.3fus %-5s] %s\n", to_microseconds(t), level_name(level),
               msg.c_str());
}
}  // namespace detail

}  // namespace pmsb::sim
