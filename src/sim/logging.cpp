#include "sim/logging.hpp"

#include <cstdio>

namespace pmsb::sim {

namespace {
LogLevel g_level = LogLevel::kNone;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kNone: break;
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

namespace detail {
void log_line(LogLevel level, TimeNs t, const std::string& msg) {
  std::fprintf(stderr, "[%10.3fus %-5s] %s\n", to_microseconds(t), level_name(level),
               msg.c_str());
}
}  // namespace detail

}  // namespace pmsb::sim
