// Per-Simulator slab allocator for event slots.
//
// Every scheduled event occupies one generation-tagged slot carved from
// chunked storage owned by its Simulator: no per-event malloc, stable
// addresses (chunks never move), and O(1) acquire/release through a LIFO
// free list. The generation tag is what makes EventId handles safe without
// the hash sets the old kernel consulted on every operation:
//
//  - acquire() stamps the slot with the event's insertion sequence number
//    (`seq`, globally monotone, never 0 while live);
//  - release() destroys the callback, zeroes `seq`, and bumps `generation`.
//
// A handle packs (generation, slot); a queue entry packs (time, seq, slot).
// `cancel` validates its handle against the slot's current generation, and
// the scheduler validates a popped queue entry against the slot's current
// `seq` — both a single indexed load, no hashing, and both immune to slot
// reuse because neither a released nor a re-acquired slot can match.
//
// The free list is LIFO and the pool is single-threaded (one per Simulator),
// so slot assignment — and with it every EventId a run hands out — is fully
// deterministic.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/event_callback.hpp"

namespace pmsb::sim {

struct EventSlot {
  std::uint64_t seq = 0;         ///< insertion sequence; 0 while the slot is free
  std::uint32_t generation = 0;  ///< bumped on every release
  EventCallback fn;
};

class EventPool {
 public:
  static constexpr std::size_t kChunkShift = 9;  // 512 slots per chunk
  static constexpr std::size_t kChunkSlots = std::size_t{1} << kChunkShift;

  EventPool() = default;
  EventPool(const EventPool&) = delete;
  EventPool& operator=(const EventPool&) = delete;

  /// Takes a free slot (reusing the most recently released one first),
  /// stamps it with `seq`, and stores `fn` in place. Returns the slot index.
  template <typename F>
  std::uint32_t acquire(std::uint64_t seq, F&& fn) {
    std::uint32_t idx;
    if (!free_.empty()) {
      idx = free_.back();
      free_.pop_back();
    } else {
      if ((size_ & (kChunkSlots - 1)) == 0) {
        chunks_.push_back(std::make_unique<EventSlot[]>(kChunkSlots));
      }
      idx = static_cast<std::uint32_t>(size_++);
    }
    EventSlot& s = slot(idx);
    s.seq = seq;
    s.fn.emplace(std::forward<F>(fn));
    return idx;
  }

  /// Destroys the slot's callback (releasing its captures immediately),
  /// invalidates outstanding handles and queue entries for it, and returns
  /// it to the free list.
  void release(std::uint32_t idx) {
    EventSlot& s = slot(idx);
    s.fn.reset();
    s.seq = 0;
    ++s.generation;
    free_.push_back(idx);
  }

  [[nodiscard]] EventSlot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }
  [[nodiscard]] const EventSlot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSlots - 1)];
  }

  [[nodiscard]] std::uint32_t generation(std::uint32_t idx) const {
    return slot(idx).generation;
  }

  /// Slots ever carved (the valid index range), not the live count.
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  std::vector<std::unique_ptr<EventSlot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::size_t size_ = 0;
};

}  // namespace pmsb::sim
