// Calendar-queue backend for the event kernel (Brown, CACM 1988).
//
// A calendar queue hashes events into `nbuckets` time windows of `width`
// nanoseconds each ("days" of a repeating "year" of nbuckets*width ns). A
// discrete-event simulator's timestamp distribution is dense and mostly
// near-future, so the bucket holding the next event is almost always the
// current one and enqueue/dequeue approach O(1) — against O(log n) for a
// binary heap over the same distribution.
//
// Determinism contract (the property pmsbregress digests pin down): each
// bucket is kept as a min-heap on (time, seq), and the cursor only yields an
// entry whose timestamp falls inside the current window. Two events with
// equal timestamps always land in the same bucket, so the global pop order
// is the exact (time, insertion-sequence) order the heap backend produces.
//
// Departures from the classic formulation, chosen for robustness over peak
// throughput:
//  - buckets are min-heaps rather than sorted linked lists, so a degenerate
//    width (every event in one bucket) decays to binary-heap behavior
//    instead of O(n) scans;
//  - width is re-estimated at every resize from the median inter-event gap
//    of a strided sample, which keeps one far-future outlier (a watchdog
//    tick, a retransmission timer) from blowing up the window size the way
//    a mean-based estimate would.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace pmsb::sim {

class CalendarQueue {
 public:
  CalendarQueue();
  CalendarQueue(const CalendarQueue&) = delete;
  CalendarQueue& operator=(const CalendarQueue&) = delete;

  void push(const QueueEntry& e);

  /// The next entry in (time, seq) order, or nullptr when empty. Advances
  /// the bucket cursor as a side effect; the pointer is invalidated by any
  /// push/pop/compact.
  [[nodiscard]] const QueueEntry* peek();

  /// Removes and returns the entry peek() reports. Undefined when empty.
  QueueEntry pop();

  [[nodiscard]] std::size_t size() const { return size_; }

  /// Drops every entry for which `keep` returns false, re-heapifies each
  /// bucket, and rebalances the calendar to the surviving population.
  template <typename Keep>
  void compact(Keep keep) {
    for (auto& bucket : buckets_) {
      bucket.erase(std::remove_if(bucket.begin(), bucket.end(),
                                  [&](const QueueEntry& e) { return !keep(e); }),
                   bucket.end());
      std::make_heap(bucket.begin(), bucket.end(), EntryLater{});
    }
    size_ = 0;
    for (const auto& bucket : buckets_) size_ += bucket.size();
    rebalance();
  }

  // --- Introspection (tests / tuning) ---
  [[nodiscard]] std::size_t num_buckets() const { return buckets_.size(); }
  [[nodiscard]] TimeNs bucket_width() const { return width(); }

 private:
  static constexpr std::size_t kMinBuckets = 16;  // power of two

  [[nodiscard]] std::size_t bucket_of(TimeNs t) const {
    return static_cast<std::size_t>(t >> width_shift_) & mask_;
  }

  /// Points the cursor at the window containing time `t`. Computed in
  /// unsigned arithmetic: for t near kTimeNever the window top wraps
  /// negative, which only degrades peek() to its global-scan fallback —
  /// signed overflow would be UB.
  void set_cursor(TimeNs t) {
    cur_ = bucket_of(t);
    cur_top_ = static_cast<TimeNs>(
        ((static_cast<std::uint64_t>(t) >> width_shift_) + 1)
        << width_shift_);
  }

  /// Rebuilds the calendar with a bucket count fitted to `size_` and a
  /// fresh width estimate. Also what grow/shrink resizing funnels through.
  void rebalance();

  /// Median positive inter-event gap of a strided sample, doubled and
  /// rounded up to a power of two (so bucket_of is a shift, not a 64-bit
  /// divide) — a window size that keeps a handful of events per bucket for
  /// the observed spacing. Returns the log2 of the width. Falls back to the
  /// previous width when there is nothing to sample (fewer than two
  /// distinct timestamps).
  [[nodiscard]] int estimate_width_shift(
      const std::vector<QueueEntry>& all) const;

  [[nodiscard]] TimeNs width() const { return TimeNs{1} << width_shift_; }

  std::vector<std::vector<QueueEntry>> buckets_;
  std::size_t mask_ = 0;       ///< buckets_.size() - 1 (power of two)
  int width_shift_ = 10;       ///< log2 of ns per bucket window
  std::size_t size_ = 0;
  std::size_t cur_ = 0;        ///< cursor: bucket being drained
  TimeNs cur_top_ = 0;         ///< exclusive upper time bound of cur_'s window
};

}  // namespace pmsb::sim
