// Typed, small-buffer-optimized event callback for the kernel hot path.
//
// The kernel used to store `std::function<void()>` per event, which heap-
// allocates for any capture larger than the (implementation-defined) SBO and
// costs a type-erased copy per heap sift. EventCallback replaces it with a
// fixed 48-byte inline buffer sized for every scheduling call site in the
// tree (the common captures are `this` plus a couple of scalars); a callable
// that does not fit — or whose move constructor may throw — is boxed on the
// heap, so nothing is ever rejected, only de-optimized. Move/invoke/destroy
// go through a per-type static vtable (three function pointers), and moves
// of an inline callable relocate at most kInlineBytes.
//
// EventCallback is move-only: an event's closure has exactly one owner (its
// pool slot, then the dispatching stack frame), so copies would only hide
// accidental duplication of captured state.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace pmsb::sim {

class EventCallback {
 public:
  /// Inline capture budget. Sized so every scheduling call site in the tree
  /// (pointer + a few scalars, a std::function, a weak_ptr + small payload)
  /// stays allocation-free; bigger captures fall back to a heap box.
  static constexpr std::size_t kInlineBytes = 48;

  EventCallback() noexcept = default;

  template <typename F,
            std::enable_if_t<!std::is_same_v<std::decay_t<F>, EventCallback>,
                             int> = 0>
  EventCallback(F&& fn) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(fn));
  }

  EventCallback(EventCallback&& other) noexcept { move_from(other); }
  EventCallback& operator=(EventCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventCallback(const EventCallback&) = delete;
  EventCallback& operator=(const EventCallback&) = delete;
  ~EventCallback() { reset(); }

  /// Destroys the current callable (if any) and stores `fn` in place.
  template <typename F>
  void emplace(F&& fn) {
    reset();
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &kInlineVt<D>;
    } else {
      *reinterpret_cast<D**>(static_cast<void*>(buf_)) =
          new D(std::forward<F>(fn));
      vt_ = &kBoxedVt<D>;
    }
  }

  void operator()() { vt_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  /// Destroys the held callable (releasing everything it captured) and
  /// leaves the callback empty. Safe on an already-empty callback.
  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    /// Move-constructs dst's storage from src's and destroys src's.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr bool fits_inline() {
    return sizeof(D) <= kInlineBytes &&
           alignof(D) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<D>;
  }

  template <typename D>
  struct InlineOps {
    static void invoke(void* p) { (*static_cast<D*>(p))(); }
    static void relocate(void* dst, void* src) {
      D* s = static_cast<D*>(src);
      ::new (dst) D(std::move(*s));
      s->~D();
    }
    static void destroy(void* p) { static_cast<D*>(p)->~D(); }
  };

  template <typename D>
  struct BoxedOps {
    static void invoke(void* p) { (**static_cast<D**>(p))(); }
    static void relocate(void* dst, void* src) {
      std::memcpy(dst, src, sizeof(D*));
    }
    static void destroy(void* p) { delete *static_cast<D**>(p); }
  };

  template <typename D>
  static constexpr VTable kInlineVt{&InlineOps<D>::invoke,
                                    &InlineOps<D>::relocate,
                                    &InlineOps<D>::destroy};
  template <typename D>
  static constexpr VTable kBoxedVt{&BoxedOps<D>::invoke,
                                   &BoxedOps<D>::relocate,
                                   &BoxedOps<D>::destroy};

  void move_from(EventCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(buf_, other.buf_);
      other.vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
};

}  // namespace pmsb::sim
