// Deterministic random-number streams for reproducible simulation runs.
//
// Every stochastic component (workload generator, flow start jitter, ECMP
// tie-breaks) takes an explicit Rng so that a run is fully determined by its
// seed; splitting named sub-streams avoids cross-component coupling where
// adding a draw in one module would perturb another.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace pmsb::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 1) : engine_(seed), seed_(seed) {}

  /// Derives an independent named sub-stream from this generator's seed.
  /// The derivation depends only on the construction seed, not on how many
  /// draws have been made, so fork order is irrelevant.
  [[nodiscard]] Rng fork(std::string_view name) const {
    std::uint64_t h = seed_ ^ 0xcbf29ce484222325ull;
    for (char c : name) h = (h ^ static_cast<std::uint64_t>(c)) * 0x100000001b3ull;
    return Rng(h);
  }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential variate with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  [[nodiscard]] std::uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
};

}  // namespace pmsb::sim
