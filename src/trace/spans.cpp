#include "trace/spans.hpp"

#include <fstream>
#include <stdexcept>

#include "trace/json_escape.hpp"

namespace pmsb::trace {

NodeId SpanTracer::intern_node(const std::string& name) {
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i] == name) return i;
  }
  nodes_.push_back(name);
  return static_cast<NodeId>(nodes_.size() - 1);
}

void SpanTracer::write_ndjson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("SpanTracer::write_ndjson: cannot open " + path);
  for_each_chronological([&](const SpanRecord& s) {
    out << "{\"t_ns\":" << s.time << ",\"phase\":\"" << span_phase_name(s.phase)
        << "\",\"packet\":" << s.packet << ",\"flow\":" << s.flow
        << ",\"node\":\""
        << (s.node == kNoNode ? std::string() : json_escape(nodes_.at(s.node)))
        << "\",\"queue\":" << s.queue << ",\"seq\":" << s.seq
        << ",\"size_bytes\":" << s.size_bytes << ",\"marked\":"
        << (s.marked ? "true" : "false") << ",\"retransmit\":"
        << (s.retransmit ? "true" : "false") << "}\n";
  });
}

}  // namespace pmsb::trace
