// Causal packet-lifecycle spans for sampled flows.
//
// The port Tracer answers "what happened at this port"; a SpanTracer
// answers "what happened to THIS packet" across components: the sender
// stamps kSend, the switch port stamps kEnqueue/kMark/kDrop/kDequeue, the
// link stamps kLinkTx (serialization done) and kRx (delivery), and the
// sender's ack path stamps kAck. Ordering the spans of one flow by time
// and charging each gap to the phase that OPENED it decomposes the flow's
// FCT exactly into sender/queueing/serialization/propagation/receiver/
// loss-recovery time — the per-packet evidence trail behind the paper's
// marking-decision claims (see trace/analysis.hpp for the arithmetic).
//
// Capture is opt-in per flow (`trace_flows=` in pmsbsim → watch_flow()):
// components hold a SpanTracer* that is null when tracing is off, so the
// packet path pays one null check — the same zero-cost-when-off contract
// as Tracer/RunDigest/Profiler. Node names are interned once at wiring
// time; the hot path records integer ids only.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pmsb::trace {

enum class SpanPhase : std::uint8_t {
  kSend,     ///< transport handed the segment to its host link
  kEnqueue,  ///< switch port accepted the packet into a queue
  kDequeue,  ///< scheduler picked the packet; serialization starts
  kLinkTx,   ///< last bit left the link (serialization done)
  kRx,       ///< packet delivered to the destination
  kAck,      ///< sender processed the ack covering this packet
  kMark,     ///< ECN mark decision on the packet
  kDrop,     ///< packet dropped (buffer or fault)
};

inline constexpr std::size_t kNumSpanPhases = 8;

[[nodiscard]] inline const char* span_phase_name(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kSend: return "send";
    case SpanPhase::kEnqueue: return "enqueue";
    case SpanPhase::kDequeue: return "dequeue";
    case SpanPhase::kLinkTx: return "link_tx";
    case SpanPhase::kRx: return "rx";
    case SpanPhase::kAck: return "ack";
    case SpanPhase::kMark: return "mark";
    case SpanPhase::kDrop: return "drop";
  }
  return "?";
}

/// Interned node-name handle (SpanTracer::intern_node).
using NodeId = std::uint32_t;

inline constexpr NodeId kNoNode = 0xffffffff;

struct SpanRecord {
  sim::TimeNs time = 0;
  SpanPhase phase = SpanPhase::kSend;
  std::uint64_t packet = 0;
  net::FlowId flow = 0;
  NodeId node = kNoNode;      ///< where it happened (kNoNode = n/a)
  std::size_t queue = 0;      ///< service queue (ports only)
  std::uint64_t seq = 0;      ///< transport sequence / ack number
  std::uint32_t size_bytes = 0;
  bool marked = false;        ///< CE on the wire / ECE on the ack
  bool retransmit = false;    ///< kSend only: this is a retransmission
};

/// Bounded collector of SpanRecords with the Tracer's overflow semantics:
/// kDropNewest keeps the head and counts the rest, kRingBuffer keeps the
/// tail. Default capacity is generous because spans are per-sampled-flow,
/// not per-port.
class SpanTracer {
 public:
  /// What to do with a new span once `capacity` is reached.
  enum class OverflowPolicy : std::uint8_t { kDropNewest, kRingBuffer };

  explicit SpanTracer(std::size_t capacity = 1'000'000,
                      OverflowPolicy policy = OverflowPolicy::kDropNewest)
      : capacity_(capacity), policy_(policy) {}

  /// Adds `flow` to the sampled set. Only watched flows are recorded.
  void watch_flow(net::FlowId flow) { watched_.insert(flow); }
  /// Captures every flow (tests / tiny runs).
  void watch_all() { watch_all_ = true; }
  /// One hash lookup; instrumented components call this before building a
  /// record so unwatched flows pay nothing beyond the null check.
  [[nodiscard]] bool wants(net::FlowId flow) const {
    return watch_all_ || watched_.count(flow) != 0;
  }
  [[nodiscard]] std::size_t num_watched() const { return watched_.size(); }

  /// Interns `name` (wiring time, not packet path) and returns its id.
  [[nodiscard]] NodeId intern_node(const std::string& name);
  [[nodiscard]] const std::string& node_name(NodeId id) const {
    return nodes_.at(id);
  }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  void record(const SpanRecord& span) {
    if (!wants(span.flow)) return;
    if (records_.size() < capacity_) {
      records_.push_back(span);
      return;
    }
    if (policy_ == OverflowPolicy::kDropNewest || capacity_ == 0) {
      ++overflow_;
      return;
    }
    ++overflow_;
    records_[write_] = span;
    write_ = (write_ + 1) % capacity_;
  }

  /// Raw storage; NOT chronological after a ring wrap. Use
  /// for_each_chronological() or write_ndjson() for ordered access.
  [[nodiscard]] const std::vector<SpanRecord>& records() const { return records_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t size() const { return records_.size(); }

  void for_each_chronological(
      const std::function<void(const SpanRecord&)>& fn) const {
    for (std::size_t i = write_; i < records_.size(); ++i) fn(records_[i]);
    for (std::size_t i = 0; i < write_; ++i) fn(records_[i]);
  }

  /// NDJSON dump (chronological), one object per span with keys
  /// t_ns, phase, packet, flow, node (escaped name or ""), queue, seq,
  /// size_bytes, marked, retransmit. Read back by
  /// trace::read_spans_ndjson().
  void write_ndjson(const std::string& path) const;

 private:
  std::size_t capacity_;
  OverflowPolicy policy_;
  bool watch_all_ = false;
  std::unordered_set<net::FlowId> watched_;
  std::vector<std::string> nodes_;
  std::vector<SpanRecord> records_;
  std::size_t write_ = 0;  ///< ring mode: index of the oldest span
  std::uint64_t overflow_ = 0;
};

}  // namespace pmsb::trace
