#include "trace/analysis.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "telemetry/json_reader.hpp"

namespace pmsb::trace {

namespace json = telemetry::json;

namespace {

[[noreturn]] void fail(const std::string& origin, const std::string& what) {
  throw std::runtime_error(origin + ": " + what);
}

[[nodiscard]] std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) fail(path, "read failed");
  return buf.str();
}

[[nodiscard]] std::uint64_t as_u64(const json::Value& v) {
  if (!v.raw_number.empty()) return std::strtoull(v.raw_number.c_str(), nullptr, 10);
  return static_cast<std::uint64_t>(v.number);
}

[[nodiscard]] std::uint64_t u64_field(const json::Value& obj, const char* key,
                                      const std::string& origin) {
  const json::Value* v = obj.find(key);
  if (v == nullptr || !v->is_number()) {
    fail(origin, std::string("missing numeric field '") + key + "'");
  }
  return as_u64(*v);
}

[[nodiscard]] SpanPhase phase_from_name(const std::string& name,
                                        const std::string& origin) {
  for (std::size_t i = 0; i < kNumSpanPhases; ++i) {
    const auto phase = static_cast<SpanPhase>(i);
    if (name == span_phase_name(phase)) return phase;
  }
  fail(origin, "unknown span phase '" + name + "'");
}

/// Weighted percentile over (value, weight) samples: smallest value whose
/// cumulative weight reaches `q` of the total.
[[nodiscard]] double weighted_percentile(std::vector<std::pair<double, double>> samples,
                                         double q) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  double total = 0.0;
  for (const auto& [v, w] : samples) total += w;
  if (total <= 0.0) return samples.back().first;
  double cum = 0.0;
  for (const auto& [v, w] : samples) {
    cum += w;
    if (cum >= q * total) return v;
  }
  return samples.back().first;
}

[[nodiscard]] double plain_percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

std::vector<Span> parse_spans_ndjson(const std::string& text,
                                     const std::string& origin) {
  std::vector<Span> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = origin + ":" + std::to_string(lineno);
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const json::ParseError& e) {
      fail(where, e.what());
    }
    if (!v.is_object()) fail(where, "span line is not an object");
    Span s;
    s.time = static_cast<sim::TimeNs>(u64_field(v, "t_ns", where));
    const json::Value* phase = v.find("phase");
    if (phase == nullptr || !phase->is_string()) fail(where, "missing phase");
    s.phase = phase_from_name(phase->string, where);
    s.packet = u64_field(v, "packet", where);
    s.flow = u64_field(v, "flow", where);
    if (const json::Value* node = v.find("node"); node != nullptr && node->is_string()) {
      s.node = node->string;
    }
    s.queue = static_cast<std::size_t>(u64_field(v, "queue", where));
    s.seq = u64_field(v, "seq", where);
    s.size_bytes = static_cast<std::uint32_t>(u64_field(v, "size_bytes", where));
    if (const json::Value* m = v.find("marked"); m != nullptr && m->is_bool()) {
      s.marked = m->boolean;
    }
    if (const json::Value* r = v.find("retransmit"); r != nullptr && r->is_bool()) {
      s.retransmit = r->boolean;
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<Span> read_spans_ndjson(const std::string& path) {
  return parse_spans_ndjson(slurp(path), path);
}

const char* span_phase_component(SpanPhase phase) {
  switch (phase) {
    case SpanPhase::kSend:
    case SpanPhase::kAck: return "sender";
    case SpanPhase::kEnqueue:
    case SpanPhase::kMark: return "queueing";
    case SpanPhase::kDequeue: return "serialization";
    case SpanPhase::kLinkTx: return "propagation";
    case SpanPhase::kRx: return "receiver";
    case SpanPhase::kDrop: return "loss_recovery";
  }
  return "?";
}

FlowBreakdown analyze_flow(const std::vector<Span>& spans, net::FlowId flow) {
  FlowBreakdown out;
  out.flow = flow;
  for (const Span& s : spans) {
    if (s.flow == flow) out.timeline.push_back(s);
  }
  if (out.timeline.empty()) {
    throw std::runtime_error("analyze_flow: no spans for flow " +
                             std::to_string(flow));
  }
  // Stable: ties at one timestamp keep file (= record) order, so the
  // telescoping charge below follows causal order within a tick.
  std::stable_sort(out.timeline.begin(), out.timeline.end(),
                   [](const Span& a, const Span& b) { return a.time < b.time; });
  out.num_spans = out.timeline.size();
  out.start_ns = out.timeline.front().time;
  out.end_ns = out.timeline.back().time;
  std::unordered_set<std::uint64_t> packets;
  for (std::size_t i = 0; i < out.timeline.size(); ++i) {
    const Span& s = out.timeline[i];
    packets.insert(s.packet);
    if (s.phase == SpanPhase::kMark) ++out.marks;
    if (s.phase == SpanPhase::kDrop) ++out.drops;
    if (s.phase == SpanPhase::kSend && s.retransmit) ++out.retransmits;
    if (i + 1 < out.timeline.size()) {
      // Charge the interval to the phase that opened it.
      out.by_component[span_phase_component(s.phase)] +=
          out.timeline[i + 1].time - s.time;
    }
  }
  out.packets = packets.size();
  return out;
}

std::vector<net::FlowId> flows_in(const std::vector<Span>& spans) {
  std::vector<net::FlowId> out;
  for (const Span& s : spans) out.push_back(s.flow);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<PortEvent> parse_trace_ndjson(const std::string& text,
                                          const std::string& origin) {
  std::vector<PortEvent> out;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    const std::string where = origin + ":" + std::to_string(lineno);
    json::Value v;
    try {
      v = json::parse(line);
    } catch (const json::ParseError& e) {
      fail(where, e.what());
    }
    if (!v.is_object()) fail(where, "trace line is not an object");
    PortEvent e;
    const json::Value* t = v.find("t_us");
    if (t == nullptr || !t->is_number()) fail(where, "missing t_us");
    e.t_us = t->number;
    const json::Value* ev = v.find("event");
    if (ev == nullptr || !ev->is_string()) fail(where, "missing event");
    e.event = ev->string;
    e.packet = u64_field(v, "packet", where);
    e.flow = u64_field(v, "flow", where);
    e.queue = static_cast<std::size_t>(u64_field(v, "queue", where));
    e.port_bytes = u64_field(v, "port_bytes", where);
    out.push_back(std::move(e));
  }
  return out;
}

std::vector<PortEvent> read_trace_ndjson(const std::string& path) {
  return parse_trace_ndjson(slurp(path), path);
}

PortReport analyze_port(const std::vector<PortEvent>& events) {
  PortReport out;
  if (events.empty()) return out;
  out.duration_us = events.back().t_us - events.front().t_us;
  std::vector<std::pair<double, double>> occupancy;  // (bytes, held-for us)
  std::map<std::uint64_t, double> enqueue_at;        // packet -> enqueue t_us
  std::vector<double> mark_latencies;
  for (std::size_t i = 0; i < events.size(); ++i) {
    const PortEvent& e = events[i];
    ++out.event_counts[e.event];
    out.occupancy_max = std::max(out.occupancy_max, e.port_bytes);
    if (i + 1 < events.size()) {
      occupancy.emplace_back(static_cast<double>(e.port_bytes),
                             events[i + 1].t_us - e.t_us);
    }
    if (e.event == "enqueue") {
      enqueue_at[e.packet] = e.t_us;
    } else if (e.event == "mark") {
      // Enqueue-marked packets trace the mark before (or at the same tick
      // as) their enqueue: no earlier enqueue record means latency 0.
      const auto it = enqueue_at.find(e.packet);
      mark_latencies.push_back(it == enqueue_at.end() ? 0.0 : e.t_us - it->second);
    } else if (e.event == "dequeue" || e.event == "drop") {
      enqueue_at.erase(e.packet);
    }
  }
  out.occupancy_p50 = weighted_percentile(occupancy, 0.50);
  out.occupancy_p90 = weighted_percentile(occupancy, 0.90);
  out.occupancy_p99 = weighted_percentile(occupancy, 0.99);
  out.marked_packets = mark_latencies.size();
  out.mark_latency_p50_us = plain_percentile(mark_latencies, 0.50);
  out.mark_latency_p99_us = plain_percentile(mark_latencies, 0.99);
  if (!mark_latencies.empty()) {
    out.mark_latency_max_us =
        *std::max_element(mark_latencies.begin(), mark_latencies.end());
  }
  return out;
}

std::string port_heatmap_csv(const std::vector<PortEvent>& events,
                             double bucket_us) {
  if (bucket_us <= 0.0) {
    throw std::invalid_argument("port_heatmap_csv: bucket_us must be positive");
  }
  std::size_t num_queues = 0;
  double t0 = events.empty() ? 0.0 : events.front().t_us;
  for (const PortEvent& e : events) {
    num_queues = std::max(num_queues, e.queue + 1);
    t0 = std::min(t0, e.t_us);
  }
  // bucket -> per-queue enqueue counts
  std::map<std::size_t, std::vector<std::uint64_t>> grid;
  for (const PortEvent& e : events) {
    if (e.event != "enqueue") continue;
    const auto bucket = static_cast<std::size_t>((e.t_us - t0) / bucket_us);
    auto& row = grid[bucket];
    row.resize(num_queues, 0);
    ++row[e.queue];
  }
  std::ostringstream out;
  out << "time_us";
  for (std::size_t q = 0; q < num_queues; ++q) out << ",q" << q;
  out << '\n';
  for (const auto& [bucket, row] : grid) {
    out << (t0 + static_cast<double>(bucket) * bucket_us);
    for (std::size_t q = 0; q < num_queues; ++q) {
      out << ',' << (q < row.size() ? row[q] : 0);
    }
    out << '\n';
  }
  return out.str();
}

ProfileDoc parse_profile(const std::string& text, const std::string& origin) {
  json::Value root;
  try {
    root = json::parse(text);
  } catch (const json::ParseError& e) {
    fail(origin, e.what());
  }
  if (!root.is_object()) fail(origin, "document is not an object");
  const json::Value* doc = &root;
  const json::Value* schema = root.find("schema");
  if (schema != nullptr && schema->is_string() &&
      schema->string == "pmsb.run_manifest/1") {
    doc = root.find("profile");
    if (doc == nullptr) fail(origin, "run manifest has no profile section");
    schema = doc->find("schema");
  }
  if (schema == nullptr || !schema->is_string() ||
      schema->string != "pmsb.profile/1") {
    fail(origin, "not a pmsb.profile/1 document");
  }
  const json::Value* kernel = doc->find("kernel");
  if (kernel == nullptr || !kernel->is_object()) fail(origin, "missing kernel section");
  ProfileDoc out;
  out.dispatches = u64_field(*kernel, "dispatches", origin);
  out.dispatch_wall_ns = u64_field(*kernel, "dispatch_wall_ns", origin);
  out.events_scheduled = u64_field(*kernel, "events_scheduled", origin);
  out.events_cancelled = u64_field(*kernel, "events_cancelled", origin);
  out.max_heap_depth = u64_field(*kernel, "max_heap_depth", origin);
  out.packet_ids_allocated = u64_field(*kernel, "packet_ids_allocated", origin);
  // Backend fields arrived with the sched_queue knob; older documents lack
  // them, so both parse as optional.
  if (const json::Value* qb = kernel->find("queue_backend")) {
    if (!qb->is_string()) fail(origin, "queue_backend is not a string");
    out.queue_backend = qb->string;
  }
  if (kernel->find("queue_compactions") != nullptr) {
    out.queue_compactions = u64_field(*kernel, "queue_compactions", origin);
  }
  if (const json::Value* scopes = doc->find("scopes")) {
    if (!scopes->is_array()) fail(origin, "scopes is not an array");
    for (const json::Value& s : scopes->array) {
      if (!s.is_object()) fail(origin, "scope entry is not an object");
      ProfileScopeEntry e;
      const json::Value* name = s.find("name");
      if (name == nullptr || !name->is_string()) fail(origin, "scope without name");
      e.name = name->string;
      e.count = u64_field(s, "count", origin);
      e.self_wall_ns = u64_field(s, "self_wall_ns", origin);
      e.total_wall_ns = u64_field(s, "total_wall_ns", origin);
      out.scopes.push_back(std::move(e));
    }
  }
  return out;
}

ProfileDoc read_profile(const std::string& path) {
  return parse_profile(slurp(path), path);
}

std::vector<ProfileScopeEntry> top_hotspots(const ProfileDoc& doc, std::size_t n) {
  std::vector<ProfileScopeEntry> out = doc.scopes;
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileScopeEntry& a, const ProfileScopeEntry& b) {
                     return a.self_wall_ns > b.self_wall_ns;
                   });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<ProfileScopeDiff> diff_profiles(const ProfileDoc& a,
                                            const ProfileDoc& b) {
  std::map<std::string, ProfileScopeDiff> merged;
  for (const ProfileScopeEntry& e : a.scopes) {
    ProfileScopeDiff& d = merged[e.name];
    d.name = e.name;
    d.count_a = e.count;
    d.self_a = e.self_wall_ns;
  }
  for (const ProfileScopeEntry& e : b.scopes) {
    ProfileScopeDiff& d = merged[e.name];
    d.name = e.name;
    d.count_b = e.count;
    d.self_b = e.self_wall_ns;
  }
  std::vector<ProfileScopeDiff> out;
  out.reserve(merged.size());
  for (auto& [name, d] : merged) out.push_back(std::move(d));
  std::stable_sort(out.begin(), out.end(),
                   [](const ProfileScopeDiff& x, const ProfileScopeDiff& y) {
                     const auto dx = x.self_b > x.self_a ? x.self_b - x.self_a
                                                        : x.self_a - x.self_b;
                     const auto dy = y.self_b > y.self_a ? y.self_b - y.self_a
                                                        : y.self_a - y.self_b;
                     return dx > dy;
                   });
  return out;
}

}  // namespace pmsb::trace
