// Offline analysis over the trace plane's artifacts: span NDJSON
// (SpanTracer::write_ndjson), port-event NDJSON (Tracer::write_ndjson) and
// pmsb.profile/1 JSON (telemetry::Profiler::to_json). tools/pmsbtrace is a
// thin CLI over these functions; tests drive them directly.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "trace/spans.hpp"

namespace pmsb::trace {

/// A span read back from NDJSON — SpanRecord with the node name resolved.
struct Span {
  sim::TimeNs time = 0;
  SpanPhase phase = SpanPhase::kSend;
  std::uint64_t packet = 0;
  net::FlowId flow = 0;
  std::string node;
  std::size_t queue = 0;
  std::uint64_t seq = 0;
  std::uint32_t size_bytes = 0;
  bool marked = false;
  bool retransmit = false;
};

/// Parses a SpanTracer NDJSON file. Throws std::runtime_error on I/O or
/// malformed lines (blank lines are skipped).
[[nodiscard]] std::vector<Span> read_spans_ndjson(const std::string& path);
/// Same, over an in-memory NDJSON text (tests).
[[nodiscard]] std::vector<Span> parse_spans_ndjson(const std::string& text,
                                                   const std::string& origin);

/// Maps a phase to the FCT component the interval it OPENS is charged to:
/// kSend/kAck -> "sender", kEnqueue/kMark -> "queueing",
/// kDequeue -> "serialization", kLinkTx -> "propagation", kRx -> "receiver",
/// kDrop -> "loss_recovery".
[[nodiscard]] const char* span_phase_component(SpanPhase phase);

/// One flow's FCT decomposed over its span timeline. Spans are sorted by
/// (time, file order); the gap between consecutive spans is charged to the
/// component of the EARLIER span (a telescoping sum), so
///   sum(by_component) == end_ns - start_ns
/// exactly — when the first span is the flow's initial kSend and the last
/// is its final kAck, that difference IS the flow completion time.
struct FlowBreakdown {
  net::FlowId flow = 0;
  std::size_t num_spans = 0;
  sim::TimeNs start_ns = 0;
  sim::TimeNs end_ns = 0;
  std::map<std::string, sim::TimeNs> by_component;
  std::size_t packets = 0;      ///< distinct packet ids seen
  std::size_t marks = 0;        ///< kMark spans
  std::size_t drops = 0;        ///< kDrop spans
  std::size_t retransmits = 0;  ///< kSend spans flagged retransmit
  std::vector<Span> timeline;   ///< the flow's spans, sorted
};

/// Decomposes `flow`'s spans (throws if the file holds none for it).
[[nodiscard]] FlowBreakdown analyze_flow(const std::vector<Span>& spans,
                                         net::FlowId flow);
/// Flow ids present in `spans`, ascending.
[[nodiscard]] std::vector<net::FlowId> flows_in(const std::vector<Span>& spans);

/// A port event read back from Tracer NDJSON (t_us, event, packet, flow,
/// queue, port_bytes).
struct PortEvent {
  double t_us = 0.0;
  std::string event;  ///< enqueue | dequeue | mark | drop
  std::uint64_t packet = 0;
  net::FlowId flow = 0;
  std::size_t queue = 0;
  std::uint64_t port_bytes = 0;
};

[[nodiscard]] std::vector<PortEvent> read_trace_ndjson(const std::string& path);
[[nodiscard]] std::vector<PortEvent> parse_trace_ndjson(const std::string& text,
                                                        const std::string& origin);

/// Port-level aggregates over a Tracer capture.
struct PortReport {
  double duration_us = 0.0;  ///< first event to last event
  std::map<std::string, std::size_t> event_counts;
  /// Time-weighted port occupancy (bytes): each event's port_bytes held
  /// until the next event.
  double occupancy_p50 = 0.0;
  double occupancy_p90 = 0.0;
  double occupancy_p99 = 0.0;
  std::uint64_t occupancy_max = 0;
  /// Mark latency (us): enqueue -> mark of the same packet id. Zero for
  /// enqueue-marked packets; the queueing delay for dequeue marking.
  std::size_t marked_packets = 0;
  double mark_latency_p50_us = 0.0;
  double mark_latency_p99_us = 0.0;
  double mark_latency_max_us = 0.0;
};

[[nodiscard]] PortReport analyze_port(const std::vector<PortEvent>& events);

/// Occupancy heatmap: one row per time bucket of `bucket_us`, one column
/// per queue, cell = enqueued bytes-events count in that bucket (enqueue
/// events charged to their queue). CSV header: time_us,q0,q1,...
[[nodiscard]] std::string port_heatmap_csv(const std::vector<PortEvent>& events,
                                           double bucket_us);

/// One scope row of a pmsb.profile/1 document.
struct ProfileScopeEntry {
  std::string name;
  std::uint64_t count = 0;
  std::uint64_t self_wall_ns = 0;
  std::uint64_t total_wall_ns = 0;
};

struct ProfileDoc {
  std::uint64_t dispatches = 0;
  std::uint64_t dispatch_wall_ns = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t events_cancelled = 0;
  std::uint64_t max_heap_depth = 0;
  std::uint64_t packet_ids_allocated = 0;
  /// Event-queue backend the run used ("heap" when absent — documents
  /// written before the backend knob existed predate the field).
  std::string queue_backend = "heap";
  std::uint64_t queue_compactions = 0;  ///< 0 when absent (older documents)
  std::vector<ProfileScopeEntry> scopes;  ///< file order (sorted by name)
};

/// Parses a pmsb.profile/1 document. Accepts either a standalone profile
/// or a pmsb.run_manifest/1 with an embedded "profile" section.
[[nodiscard]] ProfileDoc read_profile(const std::string& path);
[[nodiscard]] ProfileDoc parse_profile(const std::string& text,
                                       const std::string& origin);

/// Scopes sorted by self_wall_ns descending, truncated to `n`.
[[nodiscard]] std::vector<ProfileScopeEntry> top_hotspots(const ProfileDoc& doc,
                                                          std::size_t n);

/// Per-scope before/after comparison (union of scope names, sorted by
/// |self_b - self_a| descending). A scope absent on one side reads as zero.
struct ProfileScopeDiff {
  std::string name;
  std::uint64_t count_a = 0, count_b = 0;
  std::uint64_t self_a = 0, self_b = 0;
};

[[nodiscard]] std::vector<ProfileScopeDiff> diff_profiles(const ProfileDoc& a,
                                                          const ProfileDoc& b);

}  // namespace pmsb::trace
