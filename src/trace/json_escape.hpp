// JSON string escaping for the trace exporters' NDJSON writers.
//
// Same escape set as telemetry::JsonWriter (", \, \n, \r, \t, \u00XX for
// other control bytes) so every JSON-ish artifact the repo writes survives
// the same readers. Node names come from scenario code today, but the
// writers must not silently corrupt output the day someone names a host
// "rack\"3" or embeds a tab.
#pragma once

#include <cstdio>
#include <string>

namespace pmsb::trace {

[[nodiscard]] inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace pmsb::trace
