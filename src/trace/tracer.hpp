// Structured per-packet event tracing for switch ports.
//
// Attach a Tracer to a Port to capture enqueue / dequeue / mark / drop
// events with timestamps and buffer state. Intended for debugging marking
// behaviour and for fine-grained analysis (e.g. "which queue's packets were
// marked while the port was over threshold" — the victim question at the
// heart of the paper). Bounded capacity so a forgotten tracer cannot eat
// the heap; on overflow the tracer either drops new records (kDropNewest,
// the default) or overwrites the oldest (kRingBuffer — post-mortems want
// the tail, not the head). Either way `overflow()` counts what was lost.
//
// Event counts are maintained incrementally on record, so `count()` /
// `count_queue()` are O(1) regardless of capture size.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pmsb::trace {

enum class EventKind : std::uint8_t { kEnqueue, kDequeue, kMark, kDrop };

inline constexpr std::size_t kNumEventKinds = 4;

[[nodiscard]] inline const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kMark: return "mark";
    case EventKind::kDrop: return "drop";
  }
  return "?";
}

struct Record {
  sim::TimeNs time = 0;
  EventKind kind = EventKind::kEnqueue;
  std::uint64_t packet = 0;
  net::FlowId flow = 0;
  std::size_t queue = 0;
  std::uint64_t port_bytes = 0;  ///< port occupancy at the event
};

/// What to do with a new record once `capacity` is reached.
enum class OverflowPolicy : std::uint8_t {
  kDropNewest,  ///< keep the first N records, count the rest as overflow
  kRingBuffer,  ///< keep the LAST N records, overwriting the oldest
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1'000'000,
                  OverflowPolicy policy = OverflowPolicy::kDropNewest)
      : capacity_(capacity), policy_(policy) {}

  /// Restrict capture to one flow (0 = capture everything).
  void set_flow_filter(net::FlowId flow) { flow_filter_ = flow; }

  void record(const Record& rec) {
    if (flow_filter_ != 0 && rec.flow != flow_filter_) return;
    if (records_.size() < capacity_) {
      records_.push_back(rec);
      bump(rec, +1);
      return;
    }
    if (policy_ == OverflowPolicy::kDropNewest || capacity_ == 0) {
      ++overflow_;
      return;
    }
    // Ring mode: evict the oldest record in place.
    bump(records_[write_], -1);
    ++overflow_;
    records_[write_] = rec;
    bump(rec, +1);
    write_ = (write_ + 1) % capacity_;
  }

  /// Raw storage. In ring mode after wrap-around this is NOT chronological;
  /// use for_each_chronological() or the exporters for ordered access.
  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  /// Records lost (kDropNewest) or evicted (kRingBuffer).
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }

  /// Visits the retained records oldest-first.
  void for_each_chronological(const std::function<void(const Record&)>& fn) const {
    for (std::size_t i = write_; i < records_.size(); ++i) fn(records_[i]);
    for (std::size_t i = 0; i < write_; ++i) fn(records_[i]);
  }

  /// O(1): retained events of `kind` (maintained incrementally).
  [[nodiscard]] std::size_t count(EventKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

  /// O(1): retained events of `kind` charged to queue `q`.
  [[nodiscard]] std::size_t count_queue(EventKind kind, std::size_t q) const {
    if (q >= queue_counts_.size()) return 0;
    return queue_counts_[q][static_cast<std::size_t>(kind)];
  }

  void clear() {
    records_.clear();
    overflow_ = 0;
    write_ = 0;
    counts_.fill(0);
    queue_counts_.clear();
  }

  /// CSV dump (chronological): time_us, event, packet, flow, queue, port_bytes.
  void write_csv(const std::string& path) const;

  /// NDJSON dump (chronological): one JSON object per line with keys
  /// t_us, event, packet, flow, queue, port_bytes.
  void write_ndjson(const std::string& path) const;

 private:
  void bump(const Record& rec, int delta) {
    const auto k = static_cast<std::size_t>(rec.kind);
    counts_[k] += static_cast<std::size_t>(delta);
    if (rec.queue >= queue_counts_.size()) queue_counts_.resize(rec.queue + 1);
    queue_counts_[rec.queue][k] += static_cast<std::size_t>(delta);
  }

  std::size_t capacity_;
  OverflowPolicy policy_;
  net::FlowId flow_filter_ = 0;
  std::vector<Record> records_;
  std::size_t write_ = 0;  ///< ring mode: index of the oldest record
  std::uint64_t overflow_ = 0;
  std::array<std::size_t, kNumEventKinds> counts_{};
  std::vector<std::array<std::size_t, kNumEventKinds>> queue_counts_;
};

}  // namespace pmsb::trace
