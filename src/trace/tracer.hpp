// Structured per-packet event tracing for switch ports.
//
// Attach a Tracer to a Port to capture enqueue / dequeue / mark / drop
// events with timestamps and buffer state. Intended for debugging marking
// behaviour and for fine-grained analysis (e.g. "which queue's packets were
// marked while the port was over threshold" — the victim question at the
// heart of the paper). Bounded capacity so a forgotten tracer cannot eat
// the heap; overflow is counted, not silently ignored.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/packet.hpp"
#include "sim/time.hpp"

namespace pmsb::trace {

enum class EventKind : std::uint8_t { kEnqueue, kDequeue, kMark, kDrop };

[[nodiscard]] inline const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kEnqueue: return "enqueue";
    case EventKind::kDequeue: return "dequeue";
    case EventKind::kMark: return "mark";
    case EventKind::kDrop: return "drop";
  }
  return "?";
}

struct Record {
  sim::TimeNs time = 0;
  EventKind kind = EventKind::kEnqueue;
  std::uint64_t packet = 0;
  net::FlowId flow = 0;
  std::size_t queue = 0;
  std::uint64_t port_bytes = 0;  ///< port occupancy at the event
};

class Tracer {
 public:
  explicit Tracer(std::size_t capacity = 1'000'000) : capacity_(capacity) {}

  /// Restrict capture to one flow (0 = capture everything).
  void set_flow_filter(net::FlowId flow) { flow_filter_ = flow; }

  void record(const Record& rec) {
    if (flow_filter_ != 0 && rec.flow != flow_filter_) return;
    if (records_.size() >= capacity_) {
      ++overflow_;
      return;
    }
    records_.push_back(rec);
  }

  [[nodiscard]] const std::vector<Record>& records() const { return records_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }

  [[nodiscard]] std::size_t count(EventKind kind) const {
    std::size_t n = 0;
    for (const auto& r : records_) n += r.kind == kind ? 1 : 0;
    return n;
  }

  /// Events of `kind` charged to queue `q`.
  [[nodiscard]] std::size_t count_queue(EventKind kind, std::size_t q) const {
    std::size_t n = 0;
    for (const auto& r : records_) n += (r.kind == kind && r.queue == q) ? 1 : 0;
    return n;
  }

  void clear() {
    records_.clear();
    overflow_ = 0;
  }

  /// CSV dump: time_us, event, packet, flow, queue, port_bytes.
  void write_csv(const std::string& path) const;

 private:
  std::size_t capacity_;
  net::FlowId flow_filter_ = 0;
  std::vector<Record> records_;
  std::uint64_t overflow_ = 0;
};

}  // namespace pmsb::trace
