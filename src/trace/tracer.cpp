#include "trace/tracer.hpp"

#include <fstream>
#include <stdexcept>

namespace pmsb::trace {

void Tracer::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::write_csv: cannot open " + path);
  out << "time_us,event,packet,flow,queue,port_bytes\n";
  for (const auto& r : records_) {
    out << sim::to_microseconds(r.time) << ',' << event_kind_name(r.kind) << ','
        << r.packet << ',' << r.flow << ',' << r.queue << ',' << r.port_bytes << '\n';
  }
}

}  // namespace pmsb::trace
