#include "trace/tracer.hpp"

#include <fstream>
#include <stdexcept>

namespace pmsb::trace {

void Tracer::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::write_csv: cannot open " + path);
  out << "time_us,event,packet,flow,queue,port_bytes\n";
  for_each_chronological([&out](const Record& r) {
    out << sim::to_microseconds(r.time) << ',' << event_kind_name(r.kind) << ','
        << r.packet << ',' << r.flow << ',' << r.queue << ',' << r.port_bytes << '\n';
  });
}

void Tracer::write_ndjson(const std::string& path) const {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("Tracer::write_ndjson: cannot open " + path);
  for_each_chronological([&out](const Record& r) {
    out << "{\"t_us\":" << sim::to_microseconds(r.time) << ",\"event\":\""
        << event_kind_name(r.kind) << "\",\"packet\":" << r.packet
        << ",\"flow\":" << r.flow << ",\"queue\":" << r.queue
        << ",\"port_bytes\":" << r.port_bytes << "}\n";
  });
}

}  // namespace pmsb::trace
