// Analysis metrics used by benches and tests to quantify what the paper
// shows qualitatively: fairness of a share vector, link utilisation, and
// time-to-convergence of a time series.
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "sim/time.hpp"

namespace pmsb::analysis {

/// Jain's fairness index: (sum x)^2 / (n * sum x^2), in (0, 1], 1 = fair.
[[nodiscard]] inline double jain_index(const std::vector<double>& allocations) {
  if (allocations.empty()) throw std::invalid_argument("jain_index: empty");
  double sum = 0.0, sum_sq = 0.0;
  for (double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;  // all-zero allocation is (vacuously) fair
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

/// Weighted Jain index: normalises each allocation by its weight first, so
/// a perfectly weighted-fair share scores 1.
[[nodiscard]] inline double weighted_jain_index(const std::vector<double>& allocations,
                                                const std::vector<double>& weights) {
  if (allocations.size() != weights.size()) {
    throw std::invalid_argument("weighted_jain_index: size mismatch");
  }
  std::vector<double> normalised;
  normalised.reserve(allocations.size());
  for (std::size_t i = 0; i < allocations.size(); ++i) {
    if (weights[i] <= 0) throw std::invalid_argument("weights must be positive");
    normalised.push_back(allocations[i] / weights[i]);
  }
  return jain_index(normalised);
}

struct TimePoint {
  sim::TimeNs time = 0;
  double value = 0.0;
};

/// First time after which the series stays within `tolerance` of `target`
/// until the end. Returns kTimeNever if it never settles.
[[nodiscard]] inline sim::TimeNs convergence_time(const std::vector<TimePoint>& series,
                                                  double target, double tolerance) {
  sim::TimeNs settled = sim::kTimeNever;
  for (const auto& p : series) {
    const bool within = std::abs(p.value - target) <= tolerance;
    if (within && settled == sim::kTimeNever) {
      settled = p.time;
    } else if (!within) {
      settled = sim::kTimeNever;
    }
  }
  return settled;
}

/// Fraction of capacity used: bytes transferred over [t0, t1] at `rate_bps`.
[[nodiscard]] inline double utilization(std::uint64_t bytes, sim::TimeNs t0,
                                        sim::TimeNs t1, std::uint64_t rate_bps) {
  if (t1 <= t0) throw std::invalid_argument("utilization: bad interval");
  const double capacity_bytes =
      static_cast<double>(rate_bps) / 8.0 * sim::to_seconds(t1 - t0);
  return static_cast<double>(bytes) / capacity_bytes;
}

}  // namespace pmsb::analysis
