#include "analysis/oscillation.hpp"

#include <algorithm>
#include <cmath>

namespace pmsb::analysis {

namespace {

/// One window's worth of evidence.
struct WindowVerdict {
  bool oscillating = false;
  std::size_t period_samples = 0;
  double amplitude = 0.0;
  double peak_autocorr = 0.0;
};

WindowVerdict analyze_window(const double* w, std::size_t n,
                             const OscillationConfig& cfg) {
  WindowVerdict verdict;
  double mean = 0.0;
  for (std::size_t i = 0; i < n; ++i) mean += w[i];
  mean /= static_cast<double>(n);

  double denom = 0.0;
  double lo = w[0];
  double hi = w[0];
  for (std::size_t i = 0; i < n; ++i) {
    const double x = w[i] - mean;
    denom += x * x;
    lo = std::min(lo, w[i]);
    hi = std::max(hi, w[i]);
  }
  verdict.amplitude = hi - lo;
  if (denom <= 0.0) return verdict;  // flat window

  const std::size_t max_lag =
      cfg.max_period_samples > 0 ? std::min(cfg.max_period_samples, n / 2) : n / 2;
  if (cfg.min_period_samples > max_lag) return verdict;

  double best_r = 0.0;
  std::size_t best_lag = 0;
  double min_r = 1.0;  // over lags up to the best peak's lag
  double min_r_at_best = 1.0;
  for (std::size_t lag = cfg.min_period_samples; lag <= max_lag; ++lag) {
    double num = 0.0;
    for (std::size_t i = 0; i + lag < n; ++i) {
      num += (w[i] - mean) * (w[i + lag] - mean);
    }
    const double r = num / denom;
    min_r = std::min(min_r, r);
    if (r > best_r) {
      best_r = r;
      best_lag = lag;
      min_r_at_best = min_r;
    }
  }
  verdict.peak_autocorr = best_r;
  if (best_lag == 0) return verdict;

  // A real cycle of period P dips anti-phase (r < 0) somewhere before its
  // peak at P; trends and one-off bursts decay without ever going negative.
  const bool has_dip = min_r_at_best < 0.0;
  const bool strong = best_r >= cfg.min_autocorr;
  const bool big_abs = verdict.amplitude >= cfg.min_amplitude;
  const bool big_rel =
      mean <= 0.0 || verdict.amplitude >= cfg.min_relative_amplitude * mean;
  verdict.oscillating = strong && has_dip && big_abs && big_rel;
  verdict.period_samples = best_lag;
  return verdict;
}

}  // namespace

SeriesVerdict analyze_series(const std::string& name, const std::vector<double>& values,
                             double sample_period_us, const OscillationConfig& cfg) {
  SeriesVerdict out;
  out.name = name;
  if (cfg.window == 0 || cfg.hop == 0 || values.size() < cfg.window) return out;

  std::size_t run = 0;          // current consecutive oscillating streak
  std::size_t best_run = 0;
  double best_amplitude = -1.0;  // over oscillating windows
  for (std::size_t start = 0; start + cfg.window <= values.size(); start += cfg.hop) {
    const WindowVerdict w = analyze_window(values.data() + start, cfg.window, cfg);
    ++out.windows_analyzed;
    out.max_autocorr = std::max(out.max_autocorr, w.peak_autocorr);
    if (w.oscillating) {
      ++run;
      best_run = std::max(best_run, run);
      if (w.amplitude > best_amplitude) {
        best_amplitude = w.amplitude;
        out.dominant_period_us =
            static_cast<double>(w.period_samples) * sample_period_us;
        out.amplitude = w.amplitude;
      }
    } else {
      run = 0;
    }
  }
  out.oscillating_windows = best_run;
  out.oscillating = best_run >= cfg.min_windows;
  if (!out.oscillating) {
    // Only sustained cycles report a period/amplitude; keep transients out
    // of the headline columns.
    out.dominant_period_us = 0.0;
    out.amplitude = 0.0;
  }
  return out;
}

StabilityReport analyze_sampler(const telemetry::TimeSeriesSampler& sampler,
                                const OscillationConfig& cfg) {
  StabilityReport report;
  const double period_us = static_cast<double>(sampler.period()) / 1e3;
  for (std::size_t c = 0; c < sampler.num_columns(); ++c) {
    const std::string& name = sampler.column_name(c);
    const bool queue_column =
        name.size() >= 16 &&
        (name.rfind(".occupancy_bytes") == name.size() - 16 ||
         (name.size() >= 14 && name.rfind(".backlog_bytes") == name.size() - 14));
    if (!queue_column) continue;
    SeriesVerdict verdict = analyze_series(name, sampler.column(c), period_us, cfg);
    ++report.ports_analyzed;
    report.max_autocorr = std::max(report.max_autocorr, verdict.max_autocorr);
    if (verdict.oscillating) {
      ++report.oscillating_ports;
      if (verdict.amplitude > report.amplitude_bytes) {
        report.amplitude_bytes = verdict.amplitude;
        report.dominant_period_us = verdict.dominant_period_us;
      }
    }
    report.series.push_back(std::move(verdict));
  }
  return report;
}

}  // namespace pmsb::analysis
