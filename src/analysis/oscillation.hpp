// Offline oscillation (limit-cycle) detection over sampled queue series.
//
// The D2TCP-II instability literature shows that marking schemes can settle
// into sustained queue-length limit cycles that averaged FCT numbers hide
// completely. This detector consumes the TimeSeriesSampler's occupancy /
// backlog columns after a run and hunts for exactly that shape: a dominant
// period with substantial peak-to-trough amplitude, sustained across
// consecutive analysis windows.
//
// Method (deliberately FFT-free): over sliding windows, compute the
// mean-centered autocorrelation r(L) for candidate lags and take the
// strongest peak as the dominant period. A genuine cycle of period P also
// shows the anti-phase dip r(P/2) < 0; a monotone ramp or a one-off burst
// does not, which is what rejects transients and trends. A window counts as
// oscillating only when the peak is strong, the dip is present, and the
// peak-to-trough amplitude clears both an absolute floor and a fraction of
// the window mean; a series counts only when enough consecutive windows
// agree — DCTCP's benign sawtooth dies at the amplitude gates, a marking
// limit cycle does not.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "telemetry/sampler.hpp"

namespace pmsb::analysis {

struct OscillationConfig {
  std::size_t window = 64;             ///< samples per analysis window
  std::size_t hop = 32;                ///< window stride
  std::size_t min_period_samples = 4;  ///< shortest lag considered
  std::size_t max_period_samples = 0;  ///< 0 = window / 2
  double min_autocorr = 0.5;           ///< required ACF peak strength
  /// Peak-to-trough must exceed this multiple of the window mean: a real
  /// limit cycle swings the queue through most of its operating point; the
  /// benign DCTCP sawtooth rides a few packets around a full threshold.
  double min_relative_amplitude = 1.0;
  double min_amplitude = 18000.0;      ///< absolute floor (12 MTU in bytes)
  std::size_t min_windows = 3;         ///< consecutive oscillating windows
};

/// Verdict for one sampled series (one port column).
struct SeriesVerdict {
  std::string name;
  bool oscillating = false;
  double dominant_period_us = 0.0;  ///< of the strongest oscillating window
  double amplitude = 0.0;           ///< peak-to-trough, series units (bytes)
  double max_autocorr = 0.0;        ///< strongest ACF peak seen anywhere
  std::size_t windows_analyzed = 0;
  std::size_t oscillating_windows = 0;  ///< longest consecutive run
};

/// Analyzes one series sampled at `sample_period_us` per point.
[[nodiscard]] SeriesVerdict analyze_series(const std::string& name,
                                           const std::vector<double>& values,
                                           double sample_period_us,
                                           const OscillationConfig& cfg = {});

/// Aggregate view over every queue column of a run, as reported in
/// `stability.*` result columns.
struct StabilityReport {
  std::vector<SeriesVerdict> series;
  std::size_t ports_analyzed = 0;
  std::size_t oscillating_ports = 0;
  /// Of the oscillating port with the largest amplitude; 0 when none.
  double dominant_period_us = 0.0;
  double amplitude_bytes = 0.0;
  /// Strongest ACF peak across all ports, oscillating or not.
  double max_autocorr = 0.0;
};

/// Runs analyze_series() over every `*.occupancy_bytes` / `*.backlog_bytes`
/// column of a finished sampler.
[[nodiscard]] StabilityReport analyze_sampler(const telemetry::TimeSeriesSampler& sampler,
                                              const OscillationConfig& cfg = {});

}  // namespace pmsb::analysis
