#include "transport/dcqcn.hpp"

#include <algorithm>

namespace pmsb::transport {

// ---------------------------------------------------------------------------
// DcqcnSender
// ---------------------------------------------------------------------------

DcqcnSender::DcqcnSender(sim::Simulator& simulator, net::Host& local,
                         net::HostId remote, net::FlowId flow, net::ServiceId service,
                         std::uint64_t message_bytes, DcqcnConfig config)
    : sim_(simulator),
      local_(local),
      remote_(remote),
      flow_(flow),
      service_(service),
      message_bytes_(message_bytes),
      cfg_(config),
      rc_(static_cast<double>(config.line_rate)),
      rt_(static_cast<double>(config.line_rate)) {}

void DcqcnSender::start(sim::TimeNs at) {
  if (started_) return;
  started_ = true;
  sim_.schedule_at(at, [this] {
    schedule_alpha_timer();
    schedule_increase_timer();
    if (!send_loop_active_) {
      send_loop_active_ = true;
      send_next();
    }
  });
}

void DcqcnSender::send_next() {
  if (done_sending()) {
    send_loop_active_ = false;
    return;
  }
  const std::uint64_t remaining =
      message_bytes_ == 0 ? cfg_.mtu_payload : message_bytes_ - bytes_sent_;
  const auto payload =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cfg_.mtu_payload, remaining));
  net::Packet pkt;
  pkt.id = sim_.allocate_packet_id();
  pkt.flow_id = flow_;
  pkt.src = local_.id();
  pkt.dst = remote_;
  pkt.service = service_;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = payload + sim::kHeaderBytes;
  pkt.seq = seq_;
  pkt.ect = true;
  pkt.fin = message_bytes_ > 0 && bytes_sent_ + payload >= message_bytes_;
  seq_ += payload;
  bytes_sent_ += payload;
  ++stats_.packets_sent;
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, regress::EventKind::kSend,
                   static_cast<std::int64_t>(sim_.now()), pkt.id, pkt.seq);
  }
  const std::uint32_t wire = pkt.size_bytes;
  local_.send(std::move(pkt));
  // Pace the next packet at the current rate.
  const double rate = std::max(rc_, static_cast<double>(cfg_.min_rate));
  const auto gap = static_cast<sim::TimeNs>(static_cast<double>(wire) * 8.0 / rate * 1e9);
  sim_.schedule_in(std::max<sim::TimeNs>(gap, 1), [this] { send_next(); });
}

void DcqcnSender::on_cnp() {
  ++stats_.cnps_received;
  ++stats_.rate_cuts;
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, regress::EventKind::kAck,
                   static_cast<std::int64_t>(sim_.now()), stats_.cnps_received, 1);
  }
  rt_ = rc_;
  rc_ = std::max(rc_ * (1.0 - alpha_ / 2.0), static_cast<double>(cfg_.min_rate));
  alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g;
  cnp_since_alpha_timer_ = true;
  rounds_since_cut_ = 0;
}

void DcqcnSender::schedule_alpha_timer() {
  sim_.schedule_in(cfg_.alpha_timer, [this] {
    if (!cnp_since_alpha_timer_) alpha_ = (1.0 - cfg_.g) * alpha_;
    cnp_since_alpha_timer_ = false;
    if (!done_sending()) schedule_alpha_timer();
  });
}

void DcqcnSender::schedule_increase_timer() {
  sim_.schedule_in(cfg_.increase_timer, [this] {
    increase_round();
    if (!done_sending()) schedule_increase_timer();
  });
}

void DcqcnSender::increase_round() {
  ++stats_.increase_rounds;
  ++rounds_since_cut_;
  if (rounds_since_cut_ > cfg_.fast_recovery_rounds) {
    // Additive (then hyper) increase raises the target.
    const double bump = rounds_since_cut_ > 3 * cfg_.fast_recovery_rounds
                            ? static_cast<double>(cfg_.hyper_increase)
                            : static_cast<double>(cfg_.additive_increase);
    rt_ = std::min(rt_ + bump, static_cast<double>(cfg_.line_rate));
  }
  // Fast recovery: close half the gap to the target each round.
  rc_ = std::min((rt_ + rc_) / 2.0, static_cast<double>(cfg_.line_rate));
}

// ---------------------------------------------------------------------------
// DcqcnReceiver
// ---------------------------------------------------------------------------

DcqcnReceiver::DcqcnReceiver(sim::Simulator& simulator, net::Host& local,
                             net::HostId remote, net::FlowId flow,
                             net::ServiceId service, std::uint64_t message_bytes,
                             DcqcnConfig config)
    : sim_(simulator),
      local_(local),
      remote_(remote),
      flow_(flow),
      service_(service),
      message_bytes_(message_bytes),
      cfg_(config) {}

void DcqcnReceiver::on_data(const net::Packet& pkt) {
  bytes_received_ += pkt.payload_bytes();
  if (pkt.ce) {
    ++marked_packets_;
    // Notification point: at most one CNP per interval.
    if (last_cnp_ < 0 || sim_.now() - last_cnp_ >= cfg_.cnp_interval) {
      last_cnp_ = sim_.now();
      net::Packet cnp;
      cnp.id = sim_.allocate_packet_id();
      cnp.flow_id = flow_;
      cnp.src = local_.id();
      cnp.dst = remote_;
      cnp.service = service_;
      cnp.type = net::PacketType::kCnp;
      cnp.size_bytes = net::kAckBytes;
      cnp.ect = false;
      local_.send(std::move(cnp));
      ++cnps_sent_;
    }
  }
  if (!completed_ && message_bytes_ > 0 && bytes_received_ >= message_bytes_) {
    completed_ = true;
    if (on_complete_) on_complete_(sim_.now());
  }
}

// ---------------------------------------------------------------------------
// DcqcnFlow
// ---------------------------------------------------------------------------

DcqcnFlow::DcqcnFlow(sim::Simulator& simulator, net::Host& src, net::Host& dst,
                     net::FlowId flow, net::ServiceId service,
                     std::uint64_t message_bytes, DcqcnConfig config)
    : src_(src), dst_(dst), flow_(flow) {
  sender_ = std::make_unique<DcqcnSender>(simulator, src, dst.id(), flow, service,
                                          message_bytes, config);
  receiver_ = std::make_unique<DcqcnReceiver>(simulator, dst, src.id(), flow, service,
                                              message_bytes, config);
  src_.register_flow(flow_, [s = sender_.get()](net::Packet pkt) {
    if (pkt.type == net::PacketType::kCnp) s->on_cnp();
  });
  dst_.register_flow(flow_, [r = receiver_.get()](net::Packet pkt) {
    if (pkt.is_data()) r->on_data(pkt);
  });
}

DcqcnFlow::~DcqcnFlow() {
  src_.unregister_flow(flow_);
  dst_.unregister_flow(flow_);
}

}  // namespace pmsb::transport
