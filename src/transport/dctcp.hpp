// DCTCP transport endpoints (Alizadeh et al., SIGCOMM 2010), plus the
// PMSB(e) end-host rule (paper Algorithm 2).
//
// Model (the standard simulator simplification set):
//  - byte-stream flow of a fixed size (or long-lived when size == 0)
//  - one ACK per data segment, echoing the segment's CE bit exactly
//  - alpha update and multiplicative cut once per window of data
//  - NewReno-style fast retransmit on 3 dup ACKs, go-back-N on RTO
//  - optional token-bucket rate cap for the paper's "x Gbps TCP flow"s
//
// PMSB(e): when enabled, an ECE-carrying ACK is IGNORED (treated as
// unmarked) if the flow's latest RTT sample is below `pmsbe_rtt_threshold` —
// core::pmsbe_ignore_mark, Algorithm 2 verbatim.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <vector>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "regress/digest.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "trace/spans.hpp"
#include "transport/rtt_estimator.hpp"

namespace pmsb::transport {

using net::FlowId;
using net::Host;
using net::HostId;
using net::Packet;
using net::ServiceId;
using sim::TimeNs;

/// How the sender reacts to an accepted ECN mark.
enum class EcnReaction : std::uint8_t {
  kDctcp,       ///< proportional cut by alpha/2 (DCTCP)
  kClassicEcn,  ///< RFC 3168: halve the window once per RTT
};

struct DctcpConfig {
  std::uint32_t mss = sim::kDefaultMssBytes;  ///< payload bytes per segment
  EcnReaction reaction = EcnReaction::kDctcp;
  /// Send-buffer / receive-window cap on cwnd. Without it a flow on an
  /// un-congested path (no marks, no drops) would grow its window without
  /// bound and then dump megabytes into the first congestion event.
  /// Default: 256 segments (~374 kB), several times a 10G*100us BDP.
  std::uint64_t max_cwnd_bytes = 256ull * sim::kDefaultMssBytes;
  std::uint32_t init_cwnd_segments = 10;
  double g = 1.0 / 16.0;                      ///< DCTCP alpha gain
  /// Initial alpha. Standard implementations (Linux, NS-2/NS-3) start at 1
  /// so the first congestion signal halves the window; starting at 0 makes
  /// DCTCP nearly blind during slow start.
  double alpha_init = 1.0;
  bool ecn_enabled = true;                    ///< ECT on data packets
  TimeNs min_rto = sim::milliseconds(1);
  TimeNs initial_rto = sim::milliseconds(10);
  sim::RateBps max_rate = 0;                  ///< 0 = unlimited (no pacing cap)

  // --- PMSB(e), Algorithm 2 ---
  bool pmsbe_enabled = false;
  TimeNs pmsbe_rtt_threshold = 0;

  // --- D2TCP (Vamanan et al., SIGCOMM 2012) ---
  /// When true and `deadline` is set on the sender, the window cut uses the
  /// deadline-aware penalty p = alpha^d with d = Tc/D clamped to [0.5, 2]:
  /// near-deadline flows back off less, far-deadline flows more.
  bool d2tcp_enabled = false;

  // --- Receiver-side ACK policy ---
  /// 1 = one ACK per data packet (default). m > 1 = delayed ACKs with the
  /// DCTCP two-state ECE machine: an ACK goes out every m packets OR
  /// immediately when the arriving packet's CE differs from the run it
  /// closes, so the sender's marked-byte accounting stays exact.
  std::uint32_t delayed_ack_count = 1;
  TimeNs delayed_ack_timeout = sim::microseconds(200);
};

/// Sender-side statistics, exposed for tests / benches.
struct SenderStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t ece_acks = 0;          ///< ACKs that arrived with ECE set
  std::uint64_t ece_ignored = 0;       ///< of those, ignored by PMSB(e)
  std::uint64_t window_cuts = 0;
};

class DctcpReceiver;

/// One direction of a DCTCP connection. Create via Flow (below), which wires
/// both endpoints to their hosts.
class DctcpSender {
 public:
  using CompletionCallback = std::function<void(TimeNs fct)>;

  DctcpSender(sim::Simulator& simulator, Host& local, HostId remote, FlowId flow,
              ServiceId service, std::uint64_t flow_bytes, DctcpConfig config);
  ~DctcpSender();
  DctcpSender(const DctcpSender&) = delete;
  DctcpSender& operator=(const DctcpSender&) = delete;

  /// Begins transmission at simulation time `at` (>= now).
  void start(TimeNs at);

  /// Sets an absolute completion deadline (D2TCP). Only meaningful with
  /// cfg.d2tcp_enabled on a finite flow.
  void set_deadline(TimeNs deadline) { deadline_ = deadline; }
  [[nodiscard]] TimeNs deadline() const { return deadline_; }
  /// The deadline-aware cut exponent d used at the most recent cut (1.0
  /// when D2TCP is off) — exposed for tests.
  [[nodiscard]] double last_cut_exponent() const { return last_cut_exponent_; }

  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }
  /// Observer invoked per RTT sample (for the paper's RTT CDFs).
  void set_rtt_observer(std::function<void(TimeNs)> obs) { rtt_observer_ = std::move(obs); }

  /// Feeds kSend (per segment) and kAck (per processed ACK) digest events as
  /// `entity` (nullptr to detach). The digest must outlive the sender.
  void set_digest(regress::RunDigest* digest, regress::EntityId entity) {
    digest_ = digest;
    digest_entity_ = entity;
  }

  /// Registers this sender's instruments under `labels`: every SenderStats
  /// cell as a bound counter plus live cwnd / alpha probe gauges.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels);

  /// Attaches a profiler (nullptr to detach): segment transmission and ACK
  /// processing become "transport.send" / "transport.ack" scopes.
  void set_profiler(telemetry::Profiler* profiler);

  /// Attaches a span tracer recording kSend (with the retransmit flag) per
  /// segment and kAck per processed ACK as `node` when this flow is watched
  /// (nullptr to detach). Same cost contract as set_digest.
  void set_span_tracer(trace::SpanTracer* spans, const std::string& node);

  // --- Introspection ---
  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::uint64_t bytes_acked() const { return snd_una_; }
  [[nodiscard]] bool complete() const { return completed_; }
  [[nodiscard]] bool started() const { return started_; }
  /// Bytes sent but not yet cumulatively acked.
  [[nodiscard]] std::uint64_t bytes_inflight() const { return inflight(); }
  /// Whether the retransmission timer is armed. A started, incomplete flow
  /// with bytes in flight must have it armed — the flow-liveness invariant.
  [[nodiscard]] bool rto_armed() const { return rto_armed_; }
  [[nodiscard]] TimeNs start_time() const { return start_time_; }
  [[nodiscard]] TimeNs completion_time() const { return completion_time_; }
  [[nodiscard]] const SenderStats& stats() const { return stats_; }
  [[nodiscard]] const RttEstimator& rtt() const { return rtt_; }
  [[nodiscard]] FlowId flow_id() const { return flow_; }
  [[nodiscard]] std::uint64_t flow_bytes() const { return flow_bytes_; }
  [[nodiscard]] ServiceId service() const { return service_; }

  /// Processes an arriving ACK. Public so a Host handler can drive it.
  void on_ack(const Packet& ack);

 private:
  void send_available();
  void send_segment(std::uint64_t seq, bool is_retransmit);
  void enter_window_boundary();
  void maybe_cut_on_mark();
  [[nodiscard]] double cut_exponent() const;
  void on_rto();
  void arm_rto();
  [[nodiscard]] std::uint64_t inflight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] bool infinite() const { return flow_bytes_ == 0; }
  [[nodiscard]] std::uint64_t remaining_at(std::uint64_t seq) const;
  void finish();

  sim::Simulator& sim_;
  Host& local_;
  HostId remote_;
  FlowId flow_;
  ServiceId service_;
  std::uint64_t flow_bytes_;  ///< 0 = long-lived
  DctcpConfig cfg_;

  // --- TCP state (bytes) ---
  std::uint64_t snd_una_ = 0;
  std::uint64_t snd_nxt_ = 0;
  std::uint64_t snd_max_ = 0;  ///< highest byte ever sent; below = retransmit
  double cwnd_ = 0;
  double ssthresh_ = std::numeric_limits<double>::max();
  int dup_acks_ = 0;
  std::uint64_t recover_seq_ = 0;  ///< fast-recovery exit point
  bool in_recovery_ = false;

  // --- DCTCP state ---
  double alpha_ = 0.0;
  std::uint64_t window_end_seq_ = 0;  ///< boundary of the current observation window
  std::uint64_t window_acked_bytes_ = 0;
  std::uint64_t window_marked_bytes_ = 0;
  std::uint64_t cut_end_seq_ = 0;     ///< no further cut until acked past here

  // --- D2TCP state ---
  TimeNs deadline_ = 0;               ///< absolute; 0 = no deadline
  double last_cut_exponent_ = 1.0;

  // --- Pacing (token bucket for rate-capped flows) ---
  TimeNs next_send_allowed_ = 0;
  sim::EventId pacing_event_ = sim::kInvalidEventId;

  // --- Timers ---
  RttEstimator rtt_;
  bool rto_armed_ = false;
  std::int64_t rto_backoff_ = 1;
  TimeNs last_progress_ = 0;

  TimeNs start_time_ = 0;
  TimeNs completion_time_ = 0;
  bool started_ = false;
  bool completed_ = false;
  SenderStats stats_;
  CompletionCallback on_complete_;
  std::function<void(TimeNs)> rtt_observer_;
  regress::RunDigest* digest_ = nullptr;
  regress::EntityId digest_entity_ = 0;
  trace::SpanTracer* spans_ = nullptr;
  trace::NodeId span_node_ = trace::kNoNode;
  telemetry::Profiler* profiler_ = nullptr;
  telemetry::Profiler::KindId kind_send_ = 0;
  telemetry::Profiler::KindId kind_ack_ = 0;
};

/// Receiver: cumulative ACKs with out-of-order reassembly and exact ECN
/// echo. With delayed_ack_count > 1 it runs DCTCP's two-state ECE machine:
/// an ACK closes a run of same-CE packets either when the run reaches m
/// packets, when the CE state flips, when a FIN or out-of-order segment
/// arrives, or when the delayed-ACK timer fires.
class DctcpReceiver {
 public:
  DctcpReceiver(sim::Simulator& simulator, Host& local, HostId remote, FlowId flow,
                ServiceId service, const DctcpConfig& config);
  DctcpReceiver(const DctcpReceiver&) = delete;
  DctcpReceiver& operator=(const DctcpReceiver&) = delete;

  void on_data(const Packet& pkt);

  [[nodiscard]] std::uint64_t rcv_nxt() const { return rcv_nxt_; }
  [[nodiscard]] std::uint64_t ce_packets() const { return ce_packets_; }
  [[nodiscard]] std::uint64_t data_packets() const { return data_packets_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  void send_ack(bool ece, TimeNs echo_time);
  void flush_pending();
  void arm_delack_timer();

  sim::Simulator& sim_;
  Host& local_;
  HostId remote_;
  FlowId flow_;
  ServiceId service_;
  std::uint32_t delack_count_;
  TimeNs delack_timeout_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::uint64_t> out_of_order_;  ///< seq -> end
  std::uint64_t ce_packets_ = 0;
  std::uint64_t data_packets_ = 0;
  std::uint64_t acks_sent_ = 0;
  // Delayed-ACK run state.
  std::uint32_t pending_ = 0;
  bool run_ce_ = false;
  TimeNs pending_echo_time_ = 0;
  std::uint64_t delack_generation_ = 0;
};

/// A unidirectional DCTCP flow: sender at `src`, receiver at `dst`, with the
/// packet handlers registered on both hosts. Keep it alive for the flow's
/// lifetime.
class Flow {
 public:
  Flow(sim::Simulator& simulator, Host& src, Host& dst, FlowId flow, ServiceId service,
       std::uint64_t flow_bytes, DctcpConfig config);
  ~Flow();
  Flow(const Flow&) = delete;
  Flow& operator=(const Flow&) = delete;

  void start(TimeNs at) { sender_->start(at); }

  [[nodiscard]] DctcpSender& sender() { return *sender_; }
  [[nodiscard]] const DctcpSender& sender() const { return *sender_; }
  [[nodiscard]] DctcpReceiver& receiver() { return *receiver_; }
  [[nodiscard]] FlowId id() const { return flow_; }

 private:
  Host& src_;
  Host& dst_;
  FlowId flow_;
  std::unique_ptr<DctcpSender> sender_;
  std::unique_ptr<DctcpReceiver> receiver_;
};

}  // namespace pmsb::transport
