#include "transport/dctcp.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/pmsb_algorithm.hpp"

namespace pmsb::transport {

// ---------------------------------------------------------------------------
// DctcpSender
// ---------------------------------------------------------------------------

DctcpSender::DctcpSender(sim::Simulator& simulator, Host& local, HostId remote,
                         FlowId flow, ServiceId service, std::uint64_t flow_bytes,
                         DctcpConfig config)
    : sim_(simulator),
      local_(local),
      remote_(remote),
      flow_(flow),
      service_(service),
      flow_bytes_(flow_bytes),
      cfg_(config),
      rtt_(config.min_rto, config.initial_rto) {
  cwnd_ = static_cast<double>(cfg_.init_cwnd_segments) * cfg_.mss;
  alpha_ = cfg_.alpha_init;
}

DctcpSender::~DctcpSender() {
  // Pending simulator events may still reference this sender; marking the
  // flow complete makes their callbacks no-ops. Scenario code must keep
  // flows alive until the simulator drains (Flow enforces host handler
  // deregistration).
  completed_ = true;
}

void DctcpSender::bind_metrics(telemetry::MetricsRegistry& registry,
                               const telemetry::Labels& labels) {
  registry.bind_counter("transport.segments_sent", labels, &stats_.segments_sent,
                        "segments");
  registry.bind_counter("transport.retransmits", labels, &stats_.retransmits,
                        "segments");
  registry.bind_counter("transport.timeouts", labels, &stats_.timeouts, "timeouts");
  registry.bind_counter("transport.acks_received", labels, &stats_.acks_received,
                        "acks");
  registry.bind_counter("transport.ece_acks", labels, &stats_.ece_acks, "acks");
  registry.bind_counter("transport.ece_ignored", labels, &stats_.ece_ignored, "acks");
  registry.bind_counter("transport.window_cuts", labels, &stats_.window_cuts, "cuts");
  registry.gauge_fn("transport.cwnd_bytes", labels, [this] { return cwnd_; }, "bytes");
  registry.gauge_fn("transport.alpha", labels, [this] { return alpha_; }, "fraction");
}

void DctcpSender::set_profiler(telemetry::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ == nullptr) return;
  kind_send_ = profiler_->intern("transport.send");
  kind_ack_ = profiler_->intern("transport.ack");
}

void DctcpSender::set_span_tracer(trace::SpanTracer* spans, const std::string& node) {
  spans_ = spans;
  span_node_ = spans != nullptr ? spans->intern_node(node) : trace::kNoNode;
}

void DctcpSender::start(TimeNs at) {
  if (started_) return;
  started_ = true;
  sim_.schedule_at(at, [this] {
    start_time_ = sim_.now();
    window_end_seq_ = 0;
    send_available();
  });
}

std::uint64_t DctcpSender::remaining_at(std::uint64_t seq) const {
  return infinite() ? cfg_.mss : flow_bytes_ - std::min(flow_bytes_, seq);
}

void DctcpSender::send_segment(std::uint64_t seq, bool is_retransmit) {
  telemetry::ProfileScope profile(profiler_, kind_send_);
  const std::uint32_t payload =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(cfg_.mss, remaining_at(seq)));
  assert(payload > 0);
  Packet pkt;
  pkt.id = sim_.allocate_packet_id();
  pkt.flow_id = flow_;
  pkt.src = local_.id();
  pkt.dst = remote_;
  pkt.service = service_;
  pkt.type = net::PacketType::kData;
  pkt.size_bytes = payload + sim::kHeaderBytes;
  pkt.seq = seq;
  pkt.fin = !infinite() && seq + payload >= flow_bytes_;
  pkt.ect = cfg_.ecn_enabled;
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, regress::EventKind::kSend,
                   static_cast<std::int64_t>(sim_.now()), pkt.id, seq);
  }
  if (spans_ != nullptr && spans_->wants(flow_)) {
    trace::SpanRecord span;
    span.time = sim_.now();
    span.phase = trace::SpanPhase::kSend;
    span.packet = pkt.id;
    span.flow = flow_;
    span.node = span_node_;
    span.seq = seq;
    span.size_bytes = pkt.size_bytes;
    span.retransmit = is_retransmit || seq < snd_max_;
    spans_->record(span);
  }
  local_.send(std::move(pkt));
  ++stats_.segments_sent;
  // Go-back-N resends after an RTO arrive here through the normal send path
  // with is_retransmit=false; anything starting below snd_max_ has been on
  // the wire before, so count it too.
  if (is_retransmit || seq < snd_max_) ++stats_.retransmits;
  if (seq + payload > snd_max_) snd_max_ = seq + payload;
  last_progress_ = sim_.now();
}

void DctcpSender::send_available() {
  if (completed_) return;
  while (true) {
    if (!infinite() && snd_nxt_ >= flow_bytes_) break;
    if (in_recovery_) break;  // conservative: no new data during recovery
    const std::uint64_t payload = std::min<std::uint64_t>(cfg_.mss, remaining_at(snd_nxt_));
    if (static_cast<double>(inflight() + payload) > cwnd_) break;
    if (cfg_.max_rate > 0) {
      const TimeNs now = sim_.now();
      if (now < next_send_allowed_) {
        if (pacing_event_ == sim::kInvalidEventId) {
          pacing_event_ = sim_.schedule_at(next_send_allowed_, [this] {
            pacing_event_ = sim::kInvalidEventId;
            send_available();
          });
        }
        break;
      }
      next_send_allowed_ = std::max(next_send_allowed_, now) +
                           sim::serialization_delay(payload + sim::kHeaderBytes,
                                                    cfg_.max_rate);
    }
    send_segment(snd_nxt_, false);
    snd_nxt_ += payload;
  }
  if (inflight() > 0) arm_rto();
}

void DctcpSender::enter_window_boundary() {
  // Alpha updates once per window of data (DCTCP's estimation loop); the
  // multiplicative cut itself happens in on_ack at the FIRST marked ACK of
  // a window so congestion feedback acts immediately.
  if (window_acked_bytes_ > 0) {
    const double f = static_cast<double>(window_marked_bytes_) /
                     static_cast<double>(window_acked_bytes_);
    alpha_ = (1.0 - cfg_.g) * alpha_ + cfg_.g * f;
  }
  window_acked_bytes_ = 0;
  window_marked_bytes_ = 0;
  window_end_seq_ = snd_nxt_;
}

double DctcpSender::cut_exponent() const {
  if (!cfg_.d2tcp_enabled || deadline_ == 0 || infinite()) return 1.0;
  const TimeNs remaining_time = deadline_ - sim_.now();
  if (remaining_time <= 0) return 1.0;  // deadline missed: plain DCTCP
  const std::uint64_t remaining_bytes = flow_bytes_ - std::min(flow_bytes_, snd_una_);
  const TimeNs rtt = rtt_.valid() ? rtt_.srtt() : sim::microseconds(100);
  // Tc: time to finish at the current rate cwnd/RTT (3/4 factor per the
  // D2TCP paper's sawtooth average); d = Tc / D clamped to [0.5, 2].
  const double rate = cwnd_ * 0.75 / static_cast<double>(rtt);  // bytes per ns
  const double tc = static_cast<double>(remaining_bytes) / rate;
  return std::clamp(tc / static_cast<double>(remaining_time), 0.5, 2.0);
}

void DctcpSender::maybe_cut_on_mark() {
  if (snd_una_ < cut_end_seq_) return;  // already cut in this window
  double penalty = 1.0;  // classic ECN: full halving
  if (cfg_.reaction == EcnReaction::kDctcp) {
    const double d = cut_exponent();
    last_cut_exponent_ = d;
    penalty = d == 1.0 ? alpha_ : std::pow(alpha_, d);
  }
  cwnd_ = std::max(cwnd_ * (1.0 - penalty / 2.0), static_cast<double>(cfg_.mss));
  ssthresh_ = std::max(cwnd_, 2.0 * cfg_.mss);  // marks end slow start
  cut_end_seq_ = snd_nxt_;
  ++stats_.window_cuts;
}

void DctcpSender::on_ack(const Packet& ack) {
  if (completed_) return;
  telemetry::ProfileScope profile(profiler_, kind_ack_);
  if (spans_ != nullptr && spans_->wants(flow_)) {
    trace::SpanRecord span;
    span.time = sim_.now();
    span.phase = trace::SpanPhase::kAck;
    span.packet = ack.id;
    span.flow = flow_;
    span.node = span_node_;
    span.seq = ack.ack;
    span.size_bytes = ack.size_bytes;
    span.marked = ack.ece;
    spans_->record(span);
  }
  ++stats_.acks_received;
  {
    // Receivers echo the data packet's send timestamp in every ACK.
    const TimeNs sample = sim_.now() - ack.echo_time;
    rtt_.add_sample(sample);
    if (rtt_observer_) rtt_observer_(sample);
  }

  bool marked = ack.ece;
  if (marked) ++stats_.ece_acks;
  if (marked && cfg_.pmsbe_enabled &&
      core::pmsbe_ignore_mark(true, rtt_.last_sample(), cfg_.pmsbe_rtt_threshold)) {
    // Algorithm 2: the RTT proves our own queue is short, so the mark came
    // from other queues sharing the port — stay blind to it.
    marked = false;
    ++stats_.ece_ignored;
  }
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, regress::EventKind::kAck,
                   static_cast<std::int64_t>(sim_.now()), ack.ack,
                   (ack.ece ? 1u : 0u) | (marked ? 2u : 0u));
  }

  if (ack.ack > snd_una_) {
    const std::uint64_t delta = ack.ack - snd_una_;
    snd_una_ = ack.ack;
    dup_acks_ = 0;
    rto_backoff_ = 1;
    last_progress_ = sim_.now();
    window_acked_bytes_ += delta;
    if (marked) window_marked_bytes_ += delta;
    if (in_recovery_ && snd_una_ >= recover_seq_) in_recovery_ = false;
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += static_cast<double>(delta);  // slow start
      } else {
        cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(delta) / cwnd_;
      }
      if (cfg_.max_cwnd_bytes > 0) {
        cwnd_ = std::min(cwnd_, static_cast<double>(cfg_.max_cwnd_bytes));
      }
    }
    if (snd_una_ >= window_end_seq_) enter_window_boundary();
    if (marked) maybe_cut_on_mark();
    if (!infinite() && snd_una_ >= flow_bytes_) {
      finish();
      return;
    }
    send_available();
  } else {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      in_recovery_ = true;
      recover_seq_ = snd_nxt_;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * cfg_.mss);
      cwnd_ = ssthresh_;
      send_segment(snd_una_, /*is_retransmit=*/true);
      arm_rto();
    }
  }
}

void DctcpSender::arm_rto() {
  if (rto_armed_ || completed_) return;
  rto_armed_ = true;
  const TimeNs deadline = last_progress_ + rtt_.rto() * rto_backoff_;
  sim_.schedule_at(std::max(deadline, sim_.now()), [this] { on_rto(); });
}

void DctcpSender::on_rto() {
  rto_armed_ = false;
  if (completed_ || inflight() == 0) return;
  const TimeNs deadline = last_progress_ + rtt_.rto() * rto_backoff_;
  if (sim_.now() < deadline) {
    // Progress happened since this timer was armed; re-arm for the rest.
    arm_rto();
    return;
  }
  ++stats_.timeouts;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0 * cfg_.mss);
  cwnd_ = cfg_.mss;
  snd_nxt_ = snd_una_;  // go-back-N
  in_recovery_ = false;
  dup_acks_ = 0;
  rto_backoff_ = std::min<std::int64_t>(rto_backoff_ * 2, 64);
  window_acked_bytes_ = 0;
  window_marked_bytes_ = 0;
  window_end_seq_ = snd_una_;
  last_progress_ = sim_.now();
  send_available();
}

void DctcpSender::finish() {
  completed_ = true;
  completion_time_ = sim_.now();
  if (on_complete_) on_complete_(completion_time_ - start_time_);
}

// ---------------------------------------------------------------------------
// DctcpReceiver
// ---------------------------------------------------------------------------

DctcpReceiver::DctcpReceiver(sim::Simulator& simulator, Host& local, HostId remote,
                             FlowId flow, ServiceId service, const DctcpConfig& config)
    : sim_(simulator),
      local_(local),
      remote_(remote),
      flow_(flow),
      service_(service),
      delack_count_(std::max<std::uint32_t>(1, config.delayed_ack_count)),
      delack_timeout_(config.delayed_ack_timeout) {}

void DctcpReceiver::send_ack(bool ece, TimeNs echo_time) {
  Packet ack;
  ack.id = sim_.allocate_packet_id();
  ack.flow_id = flow_;
  ack.src = local_.id();
  ack.dst = remote_;
  ack.service = service_;
  ack.type = net::PacketType::kAck;
  ack.size_bytes = net::kAckBytes;
  ack.ack = rcv_nxt_;
  ack.ect = false;  // pure ACKs are not ECN-capable (RFC 3168)
  ack.ece = ece;
  ack.echo_time = echo_time;
  local_.send(std::move(ack));
  ++acks_sent_;
  pending_ = 0;
  ++delack_generation_;
}

void DctcpReceiver::flush_pending() {
  if (pending_ > 0) send_ack(run_ce_, pending_echo_time_);
}

void DctcpReceiver::arm_delack_timer() {
  const std::uint64_t gen = delack_generation_;
  sim_.schedule_in(delack_timeout_, [this, gen] {
    if (gen == delack_generation_) flush_pending();
  });
}

void DctcpReceiver::on_data(const Packet& pkt) {
  ++data_packets_;
  if (pkt.ce) ++ce_packets_;
  const std::uint64_t seg_end = pkt.seq + pkt.payload_bytes();
  const bool in_order = pkt.seq <= rcv_nxt_;
  if (in_order) {
    rcv_nxt_ = std::max(rcv_nxt_, seg_end);
    // Drain any buffered segments now contiguous.
    auto it = out_of_order_.begin();
    while (it != out_of_order_.end() && it->first <= rcv_nxt_) {
      rcv_nxt_ = std::max(rcv_nxt_, it->second);
      it = out_of_order_.erase(it);
    }
  } else {
    auto [it, inserted] = out_of_order_.try_emplace(pkt.seq, seg_end);
    if (!inserted) it->second = std::max(it->second, seg_end);
  }

  if (delack_count_ == 1) {
    // Per-packet ACK with exact echo.
    send_ack(pkt.ce, pkt.sent_time);
    return;
  }
  // DCTCP delayed-ACK ECE machine: close the previous run on a CE flip so
  // the echoed bit always describes every packet the ACK covers.
  if (pending_ > 0 && pkt.ce != run_ce_) flush_pending();
  run_ce_ = pkt.ce;
  pending_echo_time_ = pkt.sent_time;
  ++pending_;
  // Out-of-order and FIN segments demand immediate feedback (dup-ACKs for
  // fast retransmit; no dangling final ACK).
  if (pending_ >= delack_count_ || !in_order || pkt.fin) {
    send_ack(run_ce_, pending_echo_time_);
  } else if (pending_ == 1) {
    arm_delack_timer();
  }
}

// ---------------------------------------------------------------------------
// Flow
// ---------------------------------------------------------------------------

Flow::Flow(sim::Simulator& simulator, Host& src, Host& dst, FlowId flow,
           ServiceId service, std::uint64_t flow_bytes, DctcpConfig config)
    : src_(src), dst_(dst), flow_(flow) {
  sender_ = std::make_unique<DctcpSender>(simulator, src, dst.id(), flow, service,
                                          flow_bytes, config);
  receiver_ = std::make_unique<DctcpReceiver>(simulator, dst, src.id(), flow, service,
                                              config);
  src_.register_flow(flow_, [s = sender_.get()](Packet pkt) {
    if (pkt.is_ack()) s->on_ack(pkt);
  });
  dst_.register_flow(flow_, [r = receiver_.get()](Packet pkt) {
    if (pkt.is_data()) r->on_data(pkt);
  });
}

Flow::~Flow() {
  src_.unregister_flow(flow_);
  dst_.unregister_flow(flow_);
}

}  // namespace pmsb::transport
