// RFC 6298-style smoothed RTT / RTO estimation, with datacenter-scale floors.
#pragma once

#include <algorithm>
#include <cstdlib>

#include "sim/time.hpp"

namespace pmsb::transport {

using sim::TimeNs;

class RttEstimator {
 public:
  explicit RttEstimator(TimeNs min_rto = sim::milliseconds(1),
                        TimeNs initial_rto = sim::milliseconds(10))
      : min_rto_(min_rto), rto_(initial_rto) {}

  void add_sample(TimeNs rtt) {
    last_ = rtt;
    if (!valid_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      valid_ = true;
    } else {
      rttvar_ = (3 * rttvar_ + std::abs(srtt_ - rtt)) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    rto_ = std::max(min_rto_, srtt_ + 4 * rttvar_);
  }

  [[nodiscard]] bool valid() const { return valid_; }
  [[nodiscard]] TimeNs srtt() const { return srtt_; }
  [[nodiscard]] TimeNs rttvar() const { return rttvar_; }
  [[nodiscard]] TimeNs rto() const { return rto_; }
  /// Most recent raw sample — the "cur_rtt" input of PMSB(e)'s Algorithm 2.
  [[nodiscard]] TimeNs last_sample() const { return last_; }

 private:
  TimeNs min_rto_;
  TimeNs rto_;
  TimeNs srtt_ = 0;
  TimeNs rttvar_ = 0;
  TimeNs last_ = 0;
  bool valid_ = false;
};

}  // namespace pmsb::transport
