// DCQCN (Zhu et al., SIGCOMM 2015) — the rate-based congestion control for
// RDMA deployments, cited by the paper as the other major ECN consumer in
// datacenters.
//
// Simplified but structurally faithful model:
//  - the sender paces packets at a current rate Rc (no window, no ACK clock)
//  - the receiver (notification point) sends at most one CNP per
//    `cnp_interval` while marked packets keep arriving
//  - on CNP (reaction point): Rt <- Rc, Rc <- Rc*(1 - alpha/2),
//    alpha <- (1-g)*alpha + g
//  - alpha decays by (1-g) every `alpha_timer` without CNPs
//  - rate increase every `increase_timer`: fast recovery (Rc toward Rt) for
//    the first `fast_recovery_rounds`, then additive (Rt += Rai), then
//    hyper-additive (Rt += Rhai)
//
// Delivery is RDMA-like: no retransmission. Run it on marking-enabled
// fabrics where ECN keeps buffers shallow; the receiver tracks delivered
// bytes and fires completion when the message is fully received.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/host.hpp"
#include "net/packet.hpp"
#include "regress/digest.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "telemetry/metrics.hpp"

namespace pmsb::transport {

struct DcqcnConfig {
  std::uint32_t mtu_payload = sim::kDefaultMssBytes;
  sim::RateBps line_rate = sim::gbps(10);   ///< initial and maximum rate
  sim::RateBps min_rate = sim::mbps(10);
  double g = 1.0 / 256.0;                   ///< alpha gain
  sim::TimeNs cnp_interval = sim::microseconds(50);
  sim::TimeNs alpha_timer = sim::microseconds(55);
  sim::TimeNs increase_timer = sim::microseconds(55);
  std::uint32_t fast_recovery_rounds = 5;
  sim::RateBps additive_increase = sim::mbps(40);
  sim::RateBps hyper_increase = sim::mbps(400);
};

struct DcqcnSenderStats {
  std::uint64_t packets_sent = 0;
  std::uint64_t cnps_received = 0;
  std::uint64_t rate_cuts = 0;
  std::uint64_t increase_rounds = 0;
};

class DcqcnSender {
 public:
  DcqcnSender(sim::Simulator& simulator, net::Host& local, net::HostId remote,
              net::FlowId flow, net::ServiceId service, std::uint64_t message_bytes,
              DcqcnConfig config);

  /// Starts pacing packets at `at`; a message of 0 bytes runs forever.
  void start(sim::TimeNs at);

  /// Reaction-point input: a CNP arrived from the receiver.
  void on_cnp();

  /// Feeds kSend (per paced packet) and kAck (per CNP) digest events as
  /// `entity` (nullptr to detach). The digest must outlive the sender.
  void set_digest(regress::RunDigest* digest, regress::EntityId entity) {
    digest_ = digest;
    digest_entity_ = entity;
  }

  [[nodiscard]] double current_rate_bps() const { return rc_; }
  [[nodiscard]] double target_rate_bps() const { return rt_; }
  [[nodiscard]] double alpha() const { return alpha_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] bool done_sending() const {
    return message_bytes_ > 0 && bytes_sent_ >= message_bytes_;
  }
  [[nodiscard]] const DcqcnSenderStats& stats() const { return stats_; }
  [[nodiscard]] net::FlowId flow_id() const { return flow_; }

  /// Registers this reaction point's instruments under `labels`: the
  /// DcqcnSenderStats cells as bound counters plus live Rc / Rt / alpha
  /// probe gauges.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) {
    registry.bind_counter("dcqcn.packets_sent", labels, &stats_.packets_sent,
                          "packets");
    registry.bind_counter("dcqcn.cnps_received", labels, &stats_.cnps_received,
                          "cnps");
    registry.bind_counter("dcqcn.rate_cuts", labels, &stats_.rate_cuts, "cuts");
    registry.bind_counter("dcqcn.increase_rounds", labels, &stats_.increase_rounds,
                          "rounds");
    registry.gauge_fn("dcqcn.rate_bps", labels, [this] { return rc_; }, "bps");
    registry.gauge_fn("dcqcn.target_rate_bps", labels, [this] { return rt_; }, "bps");
    registry.gauge_fn("dcqcn.alpha", labels, [this] { return alpha_; }, "fraction");
  }

 private:
  void send_next();
  void schedule_alpha_timer();
  void schedule_increase_timer();
  void increase_round();

  sim::Simulator& sim_;
  net::Host& local_;
  net::HostId remote_;
  net::FlowId flow_;
  net::ServiceId service_;
  std::uint64_t message_bytes_;
  DcqcnConfig cfg_;

  double rc_;       ///< current rate (bps)
  double rt_;       ///< target rate (bps)
  double alpha_ = 1.0;
  bool cnp_since_alpha_timer_ = false;
  std::uint32_t rounds_since_cut_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t seq_ = 0;
  bool started_ = false;
  bool send_loop_active_ = false;
  DcqcnSenderStats stats_;
  regress::RunDigest* digest_ = nullptr;
  regress::EntityId digest_entity_ = 0;
};

class DcqcnReceiver {
 public:
  using CompletionCallback = std::function<void(sim::TimeNs now)>;

  DcqcnReceiver(sim::Simulator& simulator, net::Host& local, net::HostId remote,
                net::FlowId flow, net::ServiceId service, std::uint64_t message_bytes,
                DcqcnConfig config);

  void on_data(const net::Packet& pkt);
  void set_completion_callback(CompletionCallback cb) { on_complete_ = std::move(cb); }

  [[nodiscard]] std::uint64_t bytes_received() const { return bytes_received_; }
  [[nodiscard]] std::uint64_t marked_packets() const { return marked_packets_; }
  [[nodiscard]] std::uint64_t cnps_sent() const { return cnps_sent_; }
  [[nodiscard]] bool complete() const { return completed_; }

 private:
  sim::Simulator& sim_;
  net::Host& local_;
  net::HostId remote_;
  net::FlowId flow_;
  net::ServiceId service_;
  std::uint64_t message_bytes_;
  DcqcnConfig cfg_;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t marked_packets_ = 0;
  std::uint64_t cnps_sent_ = 0;
  sim::TimeNs last_cnp_ = -1;
  bool completed_ = false;
  CompletionCallback on_complete_;
};

/// A unidirectional DCQCN flow wiring both endpoints to their hosts.
class DcqcnFlow {
 public:
  DcqcnFlow(sim::Simulator& simulator, net::Host& src, net::Host& dst,
            net::FlowId flow, net::ServiceId service, std::uint64_t message_bytes,
            DcqcnConfig config);
  ~DcqcnFlow();
  DcqcnFlow(const DcqcnFlow&) = delete;
  DcqcnFlow& operator=(const DcqcnFlow&) = delete;

  void start(sim::TimeNs at) { sender_->start(at); }

  [[nodiscard]] DcqcnSender& sender() { return *sender_; }
  [[nodiscard]] DcqcnReceiver& receiver() { return *receiver_; }

 private:
  net::Host& src_;
  net::Host& dst_;
  net::FlowId flow_;
  std::unique_ptr<DcqcnSender> sender_;
  std::unique_ptr<DcqcnReceiver> receiver_;
};

}  // namespace pmsb::transport
