// Output port of a switch: classification, shared buffer admission, ECN
// marking (enqueue and/or dequeue side), a packet scheduler, and the
// transmit loop that drives the attached link.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "ecn/factory.hpp"
#include "ecn/marking.hpp"
#include "net/link.hpp"
#include "net/packet.hpp"
#include "regress/digest.hpp"
#include "sched/factory.hpp"
#include "sched/scheduler.hpp"
#include "sim/simulator.hpp"
#include "switchlib/buffer_policy.hpp"
#include "switchlib/buffer_pool.hpp"
#include "switchlib/occupancy.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/profiler.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"

namespace pmsb::switchlib {

using net::Packet;
using sim::TimeNs;

struct PortConfig {
  sched::SchedulerConfig scheduler;
  ecn::MarkingConfig marking;
  /// Shared per-port buffer (drop-tail beyond this), in bytes.
  std::uint64_t buffer_bytes = 512ull * 1500ull;
  /// Feed marking schemes EWMA-averaged occupancies (classic RED averaging)
  /// instead of instantaneous ones (paper §IV.C supports either).
  bool average_occupancy = false;
  double ewma_weight = 0.002;  ///< RED w_q when average_occupancy is set
  /// Shared-buffer admission policy (static per-port budgets, equal
  /// division, or Dynamic Thresholds — see buffer_policy.hpp). Drop
  /// decisions route through this; the default is digest-identical to the
  /// historical inline drop-tail.
  BufferPolicyConfig buffer_policy;
  /// Legacy Dynamic-Threshold knob (Choudhury & Hahne), kept as sugar: a
  /// non-zero value selects buffer_policy.kind = kDynamicThresholds with
  /// this alpha (unless buffer_policy already picked a non-static policy).
  /// 0 leaves the configured buffer_policy in charge. This is the scheme
  /// the micro-burst works the paper cites ([13], [14]) build on.
  double dt_alpha = 0.0;
};

/// Per-port counters exposed for tests and benches. These cells double as
/// the storage behind the registry instruments bind_metrics() registers, so
/// the legacy struct and the telemetry view can never disagree.
struct PortStats {
  std::uint64_t enqueued_packets = 0;
  std::uint64_t dequeued_packets = 0;
  std::uint64_t dropped_packets = 0;
  std::uint64_t dropped_bytes = 0;
  std::uint64_t marked_enqueue = 0;
  std::uint64_t marked_dequeue = 0;
  std::vector<std::uint64_t> marked_per_queue;  ///< CE marks by queue
  /// Drops broken down by admission-failure cause (sums to dropped_packets).
  std::array<std::uint64_t, kNumDropReasons> dropped_by_reason{};
};

class Port {
 public:
  /// `service_to_queue` maps a packet's service tag to a queue index; the
  /// default is `service % num_queues`.
  using Classifier = std::function<std::size_t(const Packet&)>;

  Port(sim::Simulator& simulator, net::Link* link, const PortConfig& config);

  /// Admits a packet: classify -> drop-tail check -> (enqueue marking) ->
  /// store -> kick the transmit loop.
  void handle(Packet pkt);

  void set_classifier(Classifier classifier) { classifier_ = std::move(classifier); }

  /// Joins a shared buffer pool: the port takes a ledger slot, admission
  /// charges it, and marking schemes see the pool occupancy in their
  /// snapshot. The pool must outlive the port.
  void attach_pool(BufferPool* pool) {
    pool_ = pool;
    if (pool_ != nullptr) pool_slot_ = pool_->register_slot();
  }
  [[nodiscard]] BufferPool* pool() const { return pool_; }
  [[nodiscard]] const BufferPolicy& buffer_policy() const { return *policy_; }
  /// The most bytes this port could hold right now under its policy.
  [[nodiscard]] std::uint64_t admission_threshold_bytes() const {
    return policy_->threshold_bytes(admission_request(0));
  }

  /// Attaches a structured event tracer (nullptr to detach). The tracer
  /// must outlive the port.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a profiler (nullptr to detach): handle() and the transmit
  /// loop become "port.handle"/"port.transmit" scopes, with nested
  /// "sched.<name>.enqueue/.dequeue" and "ecn.<scheme>.should_mark" scopes
  /// so scheduler and marking cost is attributed separately. Kind names are
  /// interned here; the packet path stays string-free.
  void set_profiler(telemetry::Profiler* profiler);

  /// Attaches a span tracer recording this port's lifecycle events
  /// (enqueue/dequeue/mark/drop) for watched flows as `node` (nullptr to
  /// detach). Same cost contract as set_tracer.
  void set_span_tracer(trace::SpanTracer* spans, const std::string& node);

  /// Feeds this port's canonical events (enqueue/dequeue/mark/drop) into a
  /// run digest as `entity` (nullptr to detach). Same cost contract as
  /// set_tracer: one null check on the packet path when off. The digest
  /// must outlive the port.
  void set_digest(regress::RunDigest* digest, regress::EntityId entity) {
    digest_ = digest;
    digest_entity_ = entity;
  }

  /// Registers this port's instruments in `registry` under `labels`
  /// (e.g. {{"switch","leaf0"},{"port","2"}}): every PortStats cell as a
  /// bound counter (drop reasons and per-queue marks included), live
  /// occupancy / per-queue backlog probe gauges, per-queue service counters
  /// from the scheduler, and whatever the marking scheme itself exposes.
  /// Pure registration — the packet path does not get any new work.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels);

  [[nodiscard]] const sched::Scheduler& scheduler() const { return *sched_; }
  [[nodiscard]] ecn::MarkingScheme& marking() { return *marking_; }
  [[nodiscard]] const PortStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t buffered_bytes() const { return sched_->total_bytes(); }
  [[nodiscard]] std::size_t buffered_packets() const { return sched_->total_packets(); }
  [[nodiscard]] std::uint64_t queue_bytes(std::size_t q) const {
    return sched_->queue_bytes(q);
  }
  [[nodiscard]] net::Link* link() const { return link_; }
  [[nodiscard]] ecn::MarkPoint mark_point() const { return mark_point_; }

 private:
  void try_transmit();
  void drop(const Packet& pkt, std::size_t queue, DropReason reason);
  [[nodiscard]] AdmissionRequest admission_request(std::uint64_t packet_bytes) const {
    return {.packet_bytes = packet_bytes,
            .port_bytes = sched_->total_bytes(),
            .port_budget = buffer_bytes_,
            .pool = pool_};
  }
  [[nodiscard]] ecn::PortSnapshot snapshot(std::size_t queue,
                                           std::uint64_t extra_port_bytes,
                                           std::uint64_t extra_queue_bytes,
                                           std::size_t extra_packets) const;

  sim::Simulator& sim_;
  net::Link* link_;
  std::unique_ptr<sched::Scheduler> sched_;
  std::unique_ptr<ecn::MarkingScheme> marking_;
  ecn::MarkPoint mark_point_;
  std::uint64_t buffer_bytes_;
  std::unique_ptr<BufferPolicy> policy_;
  Classifier classifier_;
  BufferPool* pool_ = nullptr;
  BufferPool::SlotId pool_slot_ = 0;
  trace::Tracer* tracer_ = nullptr;
  trace::SpanTracer* spans_ = nullptr;
  trace::NodeId span_node_ = trace::kNoNode;
  telemetry::Profiler* profiler_ = nullptr;
  telemetry::Profiler::KindId kind_handle_ = 0;
  telemetry::Profiler::KindId kind_transmit_ = 0;
  telemetry::Profiler::KindId kind_sched_enqueue_ = 0;
  telemetry::Profiler::KindId kind_sched_dequeue_ = 0;
  telemetry::Profiler::KindId kind_should_mark_ = 0;
  regress::RunDigest* digest_ = nullptr;
  regress::EntityId digest_entity_ = 0;
  bool transmitting_ = false;
  void trace_event(trace::EventKind kind, const Packet& pkt, std::size_t queue);
  PortStats stats_;
  // EWMA estimators (populated only when config.average_occupancy is set).
  std::vector<OccupancyEwma> queue_ewma_;
  std::vector<OccupancyEwma> port_ewma_;  ///< 0 or 1 element
  void update_ewma(std::size_t queue, std::uint64_t in_flight_bytes);
};

}  // namespace pmsb::switchlib
