// Pluggable shared-buffer admission policies (ROADMAP item 3).
//
// A Port asks its BufferPolicy whether an arriving packet may be buffered;
// the policy answers with a DropReason (refuse) or nullopt (admit). The
// policy only *decides* — the byte ledger itself lives in BufferPool and is
// charged/released by the port, so a policy can never unbalance accounting.
//
// Three policies model the admission schemes of commodity shared-memory
// switching chips:
//
//  - StaticPerPort      today's behavior and the default: drop-tail against
//                       the port's own static budget, then the pool overflow
//                       check. Digest-identical to the pre-policy code path.
//  - StaticEqualDivision the pool split evenly: each member port may hold at
//                       most limit / num_slots bytes (dpdk-switch's
//                       qlen_threshold_equal_division).
//  - DynamicThresholds  Choudhury & Hahne DT: a port's allowance is
//                       alpha * (free pool bytes), so thresholds adapt as
//                       the buffer fills (dpdk-switch's qlen_threshold_dt).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "switchlib/buffer_pool.hpp"

namespace pmsb::switchlib {

/// Why a packet was refused admission at a port.
enum class DropReason : std::uint8_t {
  kPortBudget = 0,        ///< drop-tail over the port's own buffer budget
  kDynamicThreshold = 1,  ///< DT allowance shrank below the arrival
  kPoolExhausted = 2,     ///< shared service pool had no room
  kEqualShare = 3,        ///< over the port's equal-division pool share
};

inline constexpr std::size_t kNumDropReasons = 4;

[[nodiscard]] inline const char* drop_reason_name(DropReason reason) {
  switch (reason) {
    case DropReason::kPortBudget: return "port_budget";
    case DropReason::kDynamicThreshold: return "dynamic_threshold";
    case DropReason::kPoolExhausted: return "pool_exhausted";
    case DropReason::kEqualShare: return "equal_share";
  }
  return "?";
}

enum class BufferPolicyKind : std::uint8_t {
  kStaticPerPort = 0,
  kStaticEqualDivision = 1,
  kDynamicThresholds = 2,
};

/// CLI name ("static" | "equal" | "dt") -> kind; throws std::invalid_argument.
[[nodiscard]] BufferPolicyKind parse_buffer_policy_kind(const std::string& name);
[[nodiscard]] const char* buffer_policy_kind_name(BufferPolicyKind kind);

struct BufferPolicyConfig {
  BufferPolicyKind kind = BufferPolicyKind::kStaticPerPort;
  /// DT allowance factor: a port may buffer up to dt_alpha * (free pool
  /// bytes). Only read by kDynamicThresholds.
  double dt_alpha = 1.0;
};

/// Everything a policy may look at for one admission decision. `port_bytes`
/// is the port occupancy BEFORE the arrival; the policy judges whether
/// `port_bytes + packet_bytes` still fits its allowance.
struct AdmissionRequest {
  std::uint64_t packet_bytes = 0;
  std::uint64_t port_bytes = 0;
  std::uint64_t port_budget = 0;        ///< static per-port cap
  const BufferPool* pool = nullptr;     ///< nullptr: no shared pool attached
};

class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  [[nodiscard]] virtual BufferPolicyKind kind() const = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Admission decision: nullopt admits, a DropReason refuses. Pure — the
  /// caller charges the pool ledger after a positive decision.
  [[nodiscard]] virtual std::optional<DropReason> admit(
      const AdmissionRequest& req) const = 0;

  /// The most bytes the port could hold right now under this policy
  /// (telemetry / tests; the admit() decision is the source of truth).
  [[nodiscard]] virtual std::uint64_t threshold_bytes(
      const AdmissionRequest& req) const = 0;
};

[[nodiscard]] std::unique_ptr<BufferPolicy> make_buffer_policy(
    const BufferPolicyConfig& config);

}  // namespace pmsb::switchlib
