// EWMA occupancy estimation for averaged ECN/RED marking.
//
// Classic RED smooths the instantaneous queue length with an exponential
// weighted moving average, avg <- (1-w)*avg + w*q, updated per arrival (and
// decayed across idle periods by the number of packets that *could* have
// been transmitted — the standard Floyd/Jacobson idle correction). The
// paper's §IV.C notes PMSB works against instantaneous or averaged lengths;
// this estimator provides the averaged mode for every scheme.
#pragma once

#include <cmath>
#include <cstdint>

#include "sim/time.hpp"
#include "sim/units.hpp"

namespace pmsb::switchlib {

class OccupancyEwma {
 public:
  /// `weight` is RED's w_q; `drain_rate` drives the idle-time decay.
  OccupancyEwma(double weight, sim::RateBps drain_rate,
                std::uint32_t mean_pkt_bytes = sim::kDefaultMtuBytes)
      : weight_(weight), drain_rate_(drain_rate), mean_pkt_bytes_(mean_pkt_bytes) {}

  /// Folds an observation of the instantaneous occupancy at time `now`.
  void observe(std::uint64_t bytes, sim::TimeNs now) {
    if (bytes == 0 && avg_ > 0.0) {
      // Idle decay: pretend the averager saw `m` empty-queue samples, one
      // per mean-packet transmission time since the queue went empty.
      const double m = static_cast<double>(sim::bytes_drained(now - last_, drain_rate_)) /
                       static_cast<double>(mean_pkt_bytes_);
      avg_ *= std::pow(1.0 - weight_, m);
    } else {
      avg_ = (1.0 - weight_) * avg_ + weight_ * static_cast<double>(bytes);
    }
    last_ = now;
  }

  [[nodiscard]] double average_bytes() const { return avg_; }
  [[nodiscard]] double weight() const { return weight_; }

 private:
  double weight_;
  sim::RateBps drain_rate_;
  std::uint32_t mean_pkt_bytes_;
  double avg_ = 0.0;
  sim::TimeNs last_ = 0;
};

}  // namespace pmsb::switchlib
