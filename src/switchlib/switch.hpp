// Output-queued switch: a routing table plus one Port per egress link.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/node.hpp"
#include "net/routing.hpp"
#include "switchlib/port.hpp"

namespace pmsb::switchlib {

class Switch : public net::Node {
 public:
  /// `ecmp_salt` decorrelates path choices across switches so two switches
  /// do not always pick the same uplink for the same flow.
  Switch(sim::Simulator& simulator, std::string name, std::uint64_t ecmp_salt = 0)
      : Node(std::move(name)), sim_(simulator), ecmp_salt_(ecmp_salt) {}

  /// Adds an egress port transmitting on `link`; returns its index.
  std::size_t add_port(net::Link* link, const PortConfig& config) {
    ports_.push_back(std::make_unique<Port>(sim_, link, config));
    return ports_.size() - 1;
  }

  [[nodiscard]] net::RoutingTable& routing() { return routing_; }
  [[nodiscard]] const net::RoutingTable& routing() const { return routing_; }

  [[nodiscard]] Port& port(std::size_t idx) { return *ports_.at(idx); }
  [[nodiscard]] const Port& port(std::size_t idx) const { return *ports_.at(idx); }
  [[nodiscard]] std::size_t num_ports() const { return ports_.size(); }

  void receive(net::Packet pkt) override {
    const std::size_t egress = routing_.select_port(pkt, ecmp_salt_);
    ports_[egress]->handle(std::move(pkt));
  }

 private:
  sim::Simulator& sim_;
  std::uint64_t ecmp_salt_;
  net::RoutingTable routing_;
  std::vector<std::unique_ptr<Port>> ports_;
};

}  // namespace pmsb::switchlib
