#include "switchlib/port.hpp"

#include <optional>
#include <utility>

namespace pmsb::switchlib {

Port::Port(sim::Simulator& simulator, net::Link* link, const PortConfig& config)
    : sim_(simulator),
      link_(link),
      sched_(sched::make_scheduler(config.scheduler)),
      marking_(ecn::make_marking(config.marking)),
      mark_point_(ecn::effective_mark_point(config.marking)),
      buffer_bytes_(config.buffer_bytes) {
  BufferPolicyConfig policy_cfg = config.buffer_policy;
  if (config.dt_alpha > 0.0 &&
      policy_cfg.kind == BufferPolicyKind::kStaticPerPort) {
    // Legacy sugar: dt_alpha alone selects Dynamic Thresholds.
    policy_cfg.kind = BufferPolicyKind::kDynamicThresholds;
    policy_cfg.dt_alpha = config.dt_alpha;
  }
  policy_ = make_buffer_policy(policy_cfg);
  stats_.marked_per_queue.assign(sched_->num_queues(), 0);
  if (config.average_occupancy) {
    const sim::RateBps rate = link_->rate();
    for (std::size_t q = 0; q < sched_->num_queues(); ++q) {
      queue_ewma_.emplace_back(config.ewma_weight, rate);
    }
    port_ewma_.emplace_back(config.ewma_weight, rate);
  }
  classifier_ = [n = sched_->num_queues()](const Packet& pkt) {
    return static_cast<std::size_t>(pkt.service) % n;
  };
  // Round-based schedulers feed the marking scheme's T_round estimator.
  sched_->set_round_observer(
      [this](TimeNs now) { marking_->on_round_complete(now); });
}

void Port::update_ewma(std::size_t queue, std::uint64_t in_flight_bytes) {
  if (port_ewma_.empty()) return;
  const TimeNs now = sim_.now();
  // Classic RED idle correction: a sample of zero decays the average by the
  // packets that could have drained since the last observation.
  if (sched_->total_bytes() == 0) port_ewma_[0].observe(0, now);
  if (sched_->queue_bytes(queue) == 0) queue_ewma_[queue].observe(0, now);
  port_ewma_[0].observe(sched_->total_bytes() + in_flight_bytes, now);
  queue_ewma_[queue].observe(sched_->queue_bytes(queue) + in_flight_bytes, now);
}

ecn::PortSnapshot Port::snapshot(std::size_t queue, std::uint64_t extra_port_bytes,
                                 std::uint64_t extra_queue_bytes,
                                 std::size_t extra_packets) const {
  ecn::PortSnapshot snap;
  if (!port_ewma_.empty()) {
    // Averaged mode: the EWMA already folds the packet under judgement in
    // (update_ewma runs after enqueue / before dequeue-removal).
    snap.port_bytes = static_cast<std::uint64_t>(port_ewma_[0].average_bytes());
    snap.queue_bytes = static_cast<std::uint64_t>(queue_ewma_[queue].average_bytes());
  } else {
    snap.port_bytes = sched_->total_bytes() + extra_port_bytes;
    snap.queue_bytes = sched_->queue_bytes(queue) + extra_queue_bytes;
  }
  snap.port_packets = sched_->total_packets() + extra_packets;
  snap.queue_packets = sched_->queue_packets(queue) + extra_packets;
  if (pool_ != nullptr) {
    snap.has_pool = true;
    // The pool charge for the packet under judgement is already reserved at
    // enqueue and not yet released at dequeue, so no extra adjustment.
    snap.pool_bytes = pool_->bytes();
  }
  snap.queue = queue;
  snap.weight = sched_->weight(queue);
  snap.weight_sum = sched_->weight_sum();
  snap.num_queues = sched_->num_queues();
  return snap;
}

void Port::bind_metrics(telemetry::MetricsRegistry& registry,
                        const telemetry::Labels& labels) {
  registry.bind_counter("port.enqueued_packets", labels, &stats_.enqueued_packets,
                        "packets");
  registry.bind_counter("port.dequeued_packets", labels, &stats_.dequeued_packets,
                        "packets");
  registry.bind_counter("port.dropped_packets", labels, &stats_.dropped_packets,
                        "packets");
  registry.bind_counter("port.dropped_bytes", labels, &stats_.dropped_bytes, "bytes");
  registry.bind_counter("port.marked_enqueue", labels, &stats_.marked_enqueue,
                        "packets");
  registry.bind_counter("port.marked_dequeue", labels, &stats_.marked_dequeue,
                        "packets");
  for (std::size_t r = 0; r < kNumDropReasons; ++r) {
    telemetry::Labels l = labels;
    l.emplace_back("reason", drop_reason_name(static_cast<DropReason>(r)));
    registry.bind_counter("port.drops", l, &stats_.dropped_by_reason[r], "packets");
  }
  registry.gauge_fn(
      "port.occupancy_bytes", labels,
      [this] { return static_cast<double>(sched_->total_bytes()); }, "bytes");
  registry.gauge_fn(
      "buffer.admit_threshold_bytes", labels,
      [this] { return static_cast<double>(admission_threshold_bytes()); },
      "bytes");
  registry.gauge_fn(
      "port.occupancy_packets", labels,
      [this] { return static_cast<double>(sched_->total_packets()); }, "packets");
  for (std::size_t q = 0; q < sched_->num_queues(); ++q) {
    telemetry::Labels l = labels;
    l.emplace_back("queue", std::to_string(q));
    registry.bind_counter("port.marks", l, &stats_.marked_per_queue[q], "packets");
    registry.gauge_fn(
        "queue.backlog_bytes", l,
        [this, q] { return static_cast<double>(sched_->queue_bytes(q)); }, "bytes");
    registry.counter_fn(
        "sched.served_bytes", l, [this, q] { return sched_->served_bytes(q); },
        "bytes");
    registry.counter_fn(
        "sched.dequeued_packets", l, [this, q] { return sched_->served_packets(q); },
        "packets");
  }
  marking_->bind_metrics(registry, labels);
}

void Port::set_profiler(telemetry::Profiler* profiler) {
  profiler_ = profiler;
  if (profiler_ == nullptr) return;
  kind_handle_ = profiler_->intern("port.handle");
  kind_transmit_ = profiler_->intern("port.transmit");
  kind_sched_enqueue_ = profiler_->intern("sched." + sched_->name() + ".enqueue");
  kind_sched_dequeue_ = profiler_->intern("sched." + sched_->name() + ".dequeue");
  kind_should_mark_ = profiler_->intern("ecn." + marking_->name() + ".should_mark");
}

void Port::set_span_tracer(trace::SpanTracer* spans, const std::string& node) {
  spans_ = spans;
  span_node_ = spans != nullptr ? spans->intern_node(node) : trace::kNoNode;
}

namespace {

regress::EventKind to_digest_kind(trace::EventKind kind) {
  switch (kind) {
    case trace::EventKind::kEnqueue: return regress::EventKind::kEnqueue;
    case trace::EventKind::kDequeue: return regress::EventKind::kDequeue;
    case trace::EventKind::kMark: return regress::EventKind::kMark;
    case trace::EventKind::kDrop: return regress::EventKind::kDrop;
  }
  return regress::EventKind::kEnqueue;
}

trace::SpanPhase to_span_phase(trace::EventKind kind) {
  switch (kind) {
    case trace::EventKind::kEnqueue: return trace::SpanPhase::kEnqueue;
    case trace::EventKind::kDequeue: return trace::SpanPhase::kDequeue;
    case trace::EventKind::kMark: return trace::SpanPhase::kMark;
    case trace::EventKind::kDrop: return trace::SpanPhase::kDrop;
  }
  return trace::SpanPhase::kEnqueue;
}

}  // namespace

void Port::trace_event(trace::EventKind kind, const Packet& pkt, std::size_t queue) {
  if (digest_ != nullptr) {
    digest_->event(digest_entity_, to_digest_kind(kind),
                   static_cast<std::int64_t>(sim_.now()), pkt.id,
                   (static_cast<std::uint64_t>(queue) << 48) | sched_->total_bytes());
  }
  if (tracer_ != nullptr) {
    tracer_->record({sim_.now(), kind, pkt.id, pkt.flow_id, queue,
                     sched_->total_bytes()});
  }
  if (spans_ != nullptr && spans_->wants(pkt.flow_id)) {
    trace::SpanRecord span;
    span.time = sim_.now();
    span.phase = to_span_phase(kind);
    span.packet = pkt.id;
    span.flow = pkt.flow_id;
    span.node = span_node_;
    span.queue = queue;
    span.seq = pkt.seq;
    span.size_bytes = pkt.size_bytes;
    span.marked = pkt.ce;
    spans_->record(span);
  }
}

void Port::drop(const Packet& pkt, std::size_t queue, DropReason reason) {
  ++stats_.dropped_packets;
  stats_.dropped_bytes += pkt.size_bytes;
  ++stats_.dropped_by_reason[static_cast<std::size_t>(reason)];
  trace_event(trace::EventKind::kDrop, pkt, queue);
}

void Port::handle(Packet pkt) {
  telemetry::ProfileScope profile(profiler_, kind_handle_);
  const std::size_t q = classifier_(pkt);
  if (const auto refusal = policy_->admit(admission_request(pkt.size_bytes))) {
    drop(pkt, q, *refusal);
    return;
  }
  if (pool_ != nullptr) pool_->charge(pool_slot_, pkt.size_bytes);
  const bool was_empty = sched_->empty();
  marking_->on_port_activity(sim_.now(), was_empty);

  pkt.enqueue_time = sim_.now();
  update_ewma(q, pkt.size_bytes);
  if (mark_point_ == ecn::MarkPoint::kEnqueue && pkt.ect && !pkt.ce) {
    // Snapshot includes the arriving packet (see marking.hpp convention).
    bool mark;
    {
      telemetry::ProfileScope ecn_scope(profiler_, kind_should_mark_);
      mark = marking_->should_mark(snapshot(q, pkt.size_bytes, pkt.size_bytes, 1),
                                   pkt, ecn::MarkPoint::kEnqueue, sim_.now());
    }
    if (mark) {
      pkt.ce = true;
      ++stats_.marked_enqueue;
      ++stats_.marked_per_queue[q];
      trace_event(trace::EventKind::kMark, pkt, q);
    }
  }
  trace_event(trace::EventKind::kEnqueue, pkt, q);
  {
    telemetry::ProfileScope sched_scope(profiler_, kind_sched_enqueue_);
    sched_->enqueue(q, std::move(pkt));
  }
  ++stats_.enqueued_packets;
  try_transmit();
}

void Port::try_transmit() {
  if (transmitting_ || sched_->empty()) return;
  telemetry::ProfileScope profile(profiler_, kind_transmit_);
  std::optional<sched::Dequeued> out;
  {
    telemetry::ProfileScope sched_scope(profiler_, kind_sched_dequeue_);
    out = sched_->dequeue(sim_.now());
  }
  if (!out) return;
  ++stats_.dequeued_packets;
  Packet pkt = std::move(out->pkt);
  update_ewma(out->queue, pkt.size_bytes);
  if (mark_point_ == ecn::MarkPoint::kDequeue && pkt.ect && !pkt.ce) {
    // Snapshot includes the departing packet (state before removal).
    bool mark;
    {
      telemetry::ProfileScope ecn_scope(profiler_, kind_should_mark_);
      mark = marking_->should_mark(
          snapshot(out->queue, pkt.size_bytes, pkt.size_bytes, 1), pkt,
          ecn::MarkPoint::kDequeue, sim_.now());
    }
    if (mark) {
      pkt.ce = true;
      ++stats_.marked_dequeue;
      ++stats_.marked_per_queue[out->queue];
      trace_event(trace::EventKind::kMark, pkt, out->queue);
    }
  }
  trace_event(trace::EventKind::kDequeue, pkt, out->queue);
  if (pool_ != nullptr) pool_->release(pool_slot_, pkt.size_bytes);
  transmitting_ = true;
  const TimeNs tx_done = link_->transmit(std::move(pkt));
  sim_.schedule_at(tx_done, [this] {
    transmitting_ = false;
    try_transmit();
  });
}

}  // namespace pmsb::switchlib
