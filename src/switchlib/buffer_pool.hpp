// Shared buffer pool across switch ports (the "service pool" of commodity
// switching chips, §II.B of the paper), kept as a byte ledger: every member
// port owns a slot, and each buffered byte is charged to exactly one slot
// (the dpdk-switch qlen_bytes_in/out accounting, without the wrap-around).
//
// Ledger invariants, enforced here and property-tested in
// tests/test_buffer_pool.cpp:
//   - sum over slots of slot_bytes() == bytes()        (conservation)
//   - bytes() <= limit(), so free_bytes() never wraps   (no overcommit)
//   - release() of bytes never charged throws           (no negative slots)
//
// Admission policy (who may charge how much) lives in buffer_policy.hpp;
// the pool only accounts. Per-service-pool ECN marking compares the POOL
// occupancy to a threshold, which couples queues on different ports — the
// isolation violation the paper predicts for this mode.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "telemetry/metrics.hpp"

namespace pmsb::switchlib {

class BufferPool {
 public:
  using SlotId = std::size_t;

  explicit BufferPool(std::uint64_t limit_bytes) : limit_(limit_bytes) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Adds a ledger slot (one per member port). Register every member before
  /// traffic starts: equal-division shares are limit() / num_slots().
  [[nodiscard]] SlotId register_slot() {
    slots_.push_back(0);
    return slots_.size() - 1;
  }

  /// Charges `bytes` to `slot`. The admission policy must have checked
  /// free_bytes() first; charging past the limit is a ledger bug.
  void charge(SlotId slot, std::uint64_t bytes) {
    if (bytes > free_bytes()) {
      throw std::logic_error("BufferPool: charge exceeds free pool (admission "
                             "must check free_bytes() first)");
    }
    slots_.at(slot) += bytes;
    bytes_ += bytes;
  }

  /// Returns `bytes` from `slot` to the free pool. Releasing bytes the slot
  /// never charged is a ledger bug, not a clamp.
  void release(SlotId slot, std::uint64_t bytes) {
    std::uint64_t& cell = slots_.at(slot);
    if (bytes > cell) {
      throw std::logic_error(
          "BufferPool: release of bytes never charged (slot underflow)");
    }
    cell -= bytes;
    bytes_ -= bytes;
  }

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }
  [[nodiscard]] std::uint64_t free_bytes() const { return limit_ - bytes_; }
  [[nodiscard]] std::size_t num_slots() const { return slots_.size(); }
  [[nodiscard]] std::uint64_t slot_bytes(SlotId slot) const {
    return slots_.at(slot);
  }

  /// Registers the pool's gauges under `labels`: `buffer.free_pool_bytes`
  /// (the DT control variable), `buffer.pool_occupancy_bytes`, and
  /// `buffer.pool_limit_bytes`. Pure registration — no packet-path cost.
  void bind_metrics(telemetry::MetricsRegistry& registry,
                    const telemetry::Labels& labels) {
    registry.gauge_fn(
        "buffer.free_pool_bytes", labels,
        [this] { return static_cast<double>(free_bytes()); }, "bytes");
    registry.gauge_fn(
        "buffer.pool_occupancy_bytes", labels,
        [this] { return static_cast<double>(bytes_); }, "bytes");
    registry.gauge_fn(
        "buffer.pool_limit_bytes", labels,
        [this] { return static_cast<double>(limit_); }, "bytes");
  }

 private:
  std::uint64_t limit_;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint64_t> slots_;  ///< per-member occupancy ledger
};

}  // namespace pmsb::switchlib
