// Shared buffer pool across switch ports (the "service pool" of commodity
// switching chips, §II.B of the paper).
//
// Ports that join a pool charge every buffered byte against it; admission
// fails when the pool is exhausted even if the port's own budget has room.
// Per-service-pool ECN marking compares the POOL occupancy to a threshold,
// which couples queues on different ports — the isolation violation the
// paper predicts for this mode.
#pragma once

#include <cstdint>

namespace pmsb::switchlib {

class BufferPool {
 public:
  explicit BufferPool(std::uint64_t limit_bytes) : limit_(limit_bytes) {}
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Tries to charge `bytes`; returns false (and charges nothing) if the
  /// pool would overflow.
  [[nodiscard]] bool try_reserve(std::uint64_t bytes) {
    if (bytes_ + bytes > limit_) return false;
    bytes_ += bytes;
    return true;
  }

  void release(std::uint64_t bytes) { bytes_ -= bytes > bytes_ ? bytes_ : bytes; }

  [[nodiscard]] std::uint64_t bytes() const { return bytes_; }
  [[nodiscard]] std::uint64_t limit() const { return limit_; }

 private:
  std::uint64_t limit_;
  std::uint64_t bytes_ = 0;
};

}  // namespace pmsb::switchlib
