#include "switchlib/buffer_policy.hpp"

#include <algorithm>
#include <stdexcept>

namespace pmsb::switchlib {

namespace {

/// Bytes the pool could still accept (0 without a pool — callers guard).
[[nodiscard]] std::uint64_t pool_free(const AdmissionRequest& req) {
  return req.pool != nullptr ? req.pool->free_bytes() : 0;
}

class StaticPerPortPolicy final : public BufferPolicy {
 public:
  [[nodiscard]] BufferPolicyKind kind() const override {
    return BufferPolicyKind::kStaticPerPort;
  }
  [[nodiscard]] const char* name() const override { return "static"; }

  [[nodiscard]] std::optional<DropReason> admit(
      const AdmissionRequest& req) const override {
    if (req.port_bytes + req.packet_bytes > req.port_budget) {
      return DropReason::kPortBudget;
    }
    if (req.pool != nullptr && req.packet_bytes > pool_free(req)) {
      return DropReason::kPoolExhausted;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t threshold_bytes(
      const AdmissionRequest& req) const override {
    if (req.pool == nullptr) return req.port_budget;
    return std::min(req.port_budget, req.port_bytes + pool_free(req));
  }
};

class StaticEqualDivisionPolicy final : public BufferPolicy {
 public:
  [[nodiscard]] BufferPolicyKind kind() const override {
    return BufferPolicyKind::kStaticEqualDivision;
  }
  [[nodiscard]] const char* name() const override { return "equal"; }

  [[nodiscard]] std::optional<DropReason> admit(
      const AdmissionRequest& req) const override {
    if (req.pool == nullptr || req.pool->num_slots() == 0) {
      // No pool to divide: behave as the static per-port budget.
      if (req.port_bytes + req.packet_bytes > req.port_budget) {
        return DropReason::kPortBudget;
      }
      return std::nullopt;
    }
    if (req.port_bytes + req.packet_bytes > share(*req.pool)) {
      return DropReason::kEqualShare;
    }
    // Shares sum to <= limit, but a port can also buffer bytes it admitted
    // before the pool filled through another path; keep the overflow check.
    if (req.packet_bytes > pool_free(req)) return DropReason::kPoolExhausted;
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t threshold_bytes(
      const AdmissionRequest& req) const override {
    if (req.pool == nullptr || req.pool->num_slots() == 0) return req.port_budget;
    return std::min(share(*req.pool), req.port_bytes + pool_free(req));
  }

 private:
  [[nodiscard]] static std::uint64_t share(const BufferPool& pool) {
    return pool.limit() / pool.num_slots();
  }
};

class DynamicThresholdsPolicy final : public BufferPolicy {
 public:
  explicit DynamicThresholdsPolicy(double alpha) : alpha_(alpha) {
    if (alpha_ <= 0.0) {
      throw std::invalid_argument("DynamicThresholds: dt_alpha must be > 0");
    }
  }

  [[nodiscard]] BufferPolicyKind kind() const override {
    return BufferPolicyKind::kDynamicThresholds;
  }
  [[nodiscard]] const char* name() const override { return "dt"; }

  [[nodiscard]] std::optional<DropReason> admit(
      const AdmissionRequest& req) const override {
    // Same decision order as the pre-policy inline code (port budget, DT,
    // pool overflow) so legacy dt_alpha runs stay digest-identical.
    if (req.port_bytes + req.packet_bytes > req.port_budget) {
      return DropReason::kPortBudget;
    }
    if (req.pool != nullptr) {
      const double free_pool = static_cast<double>(pool_free(req));
      if (static_cast<double>(req.port_bytes + req.packet_bytes) >
          alpha_ * free_pool) {
        return DropReason::kDynamicThreshold;
      }
      if (req.packet_bytes > pool_free(req)) return DropReason::kPoolExhausted;
    }
    return std::nullopt;
  }

  [[nodiscard]] std::uint64_t threshold_bytes(
      const AdmissionRequest& req) const override {
    if (req.pool == nullptr) return req.port_budget;
    const auto dt = static_cast<std::uint64_t>(
        alpha_ * static_cast<double>(pool_free(req)));
    return std::min({req.port_budget, dt, req.port_bytes + pool_free(req)});
  }

 private:
  double alpha_;
};

}  // namespace

BufferPolicyKind parse_buffer_policy_kind(const std::string& name) {
  if (name == "static" || name == "perport") {
    return BufferPolicyKind::kStaticPerPort;
  }
  if (name == "equal" || name == "equal-division") {
    return BufferPolicyKind::kStaticEqualDivision;
  }
  if (name == "dt" || name == "dynamic") {
    return BufferPolicyKind::kDynamicThresholds;
  }
  throw std::invalid_argument("unknown buffer_policy '" + name +
                              "' (static | equal | dt)");
}

const char* buffer_policy_kind_name(BufferPolicyKind kind) {
  switch (kind) {
    case BufferPolicyKind::kStaticPerPort: return "static";
    case BufferPolicyKind::kStaticEqualDivision: return "equal";
    case BufferPolicyKind::kDynamicThresholds: return "dt";
  }
  return "?";
}

std::unique_ptr<BufferPolicy> make_buffer_policy(const BufferPolicyConfig& config) {
  switch (config.kind) {
    case BufferPolicyKind::kStaticPerPort:
      return std::make_unique<StaticPerPortPolicy>();
    case BufferPolicyKind::kStaticEqualDivision:
      return std::make_unique<StaticEqualDivisionPolicy>();
    case BufferPolicyKind::kDynamicThresholds:
      return std::make_unique<DynamicThresholdsPolicy>(config.dt_alpha);
  }
  throw std::invalid_argument("unknown BufferPolicyKind");
}

}  // namespace pmsb::switchlib
