// Example: a configurable large-scale FCT experiment on the 48-host
// leaf-spine fabric — the command-line face of the paper's §VI.B study.
//
// Usage:
//   leaf_spine_fct [scheme] [scheduler] [load] [flows] [seed]
//     scheme     pmsb | pmsbe | mq-ecn | tcn | perport | perqueue (default pmsb)
//     scheduler  dwrr | wfq | wrr | sp (default dwrr)
//     load       offered load fraction (default 0.5)
//     flows      number of Poisson flows (default 200)
//     seed       workload RNG seed (default 1)
#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiments/leafspine.hpp"
#include "experiments/presets.hpp"
#include "sim/rng.hpp"
#include "stats/table.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
Scheme parse_scheme(const std::string& s) {
  if (s == "pmsb") return Scheme::kPmsb;
  if (s == "pmsbe") return Scheme::kPmsbE;
  if (s == "mq-ecn" || s == "mqecn") return Scheme::kMqEcn;
  if (s == "tcn") return Scheme::kTcn;
  if (s == "perport") return Scheme::kPerPort;
  if (s == "perqueue") return Scheme::kPerQueueStd;
  std::fprintf(stderr, "unknown scheme '%s'\n", s.c_str());
  std::exit(2);
}
}  // namespace

int main(int argc, char** argv) {
  const Scheme scheme = argc > 1 ? parse_scheme(argv[1]) : Scheme::kPmsb;
  const auto sched_kind =
      argc > 2 ? sched::parse_scheduler_kind(argv[2]) : sched::SchedulerKind::kDwrr;
  const double load = argc > 3 ? std::atof(argv[3]) : 0.5;
  const std::size_t flows = argc > 4 ? std::strtoul(argv[4], nullptr, 10) : 200;
  const std::uint64_t seed = argc > 5 ? std::strtoull(argv[5], nullptr, 10) : 1;

  LeafSpineConfig cfg;  // paper topology: 4 leaves x 4 spines x 12 hosts
  cfg.link_delay = sim::microseconds(9);
  cfg.scheduler.kind = sched_kind;
  cfg.scheduler.num_queues = 8;
  cfg.scheduler.weights.assign(8, 1.0);
  cfg.buffer_bytes = 2048ull * 1500ull;

  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds_f(85.2);
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);
  cfg.transport.init_cwnd_segments = 16;

  const sim::TimeNs base_rtt =
      4 * sim::serialization_delay(sim::kDefaultMtuBytes, cfg.link_rate) +
      4 * sim::serialization_delay(net::kAckBytes, cfg.link_rate) +
      8 * cfg.link_delay;
  apply_scheme_transport(scheme, params, base_rtt, cfg.transport);

  LeafSpineScenario sc(cfg);
  workload::TrafficConfig tc;
  tc.num_hosts = sc.num_hosts();
  tc.load = load;
  tc.num_flows = flows;
  tc.num_services = 8;
  auto dist = workload::FlowSizeDistribution::paper_mix();
  sim::Rng rng(seed);
  sc.add_workload(workload::generate_poisson_traffic(tc, dist, rng));

  std::printf("scheme=%s scheduler=%s load=%.2f flows=%zu seed=%llu\n",
              scheme_name(scheme).c_str(),
              sched::scheduler_kind_name(sched_kind).c_str(), load, flows,
              static_cast<unsigned long long>(seed));
  const bool done = sc.run_until_complete(sim::seconds(60));
  std::printf("completed %zu/%zu flows in %.1f ms simulated, %llu marks,"
              " %llu drops\n",
              sc.completed_flows(), sc.total_flows(),
              sim::to_milliseconds(sc.simulator().now()),
              static_cast<unsigned long long>(sc.total_marks()),
              static_cast<unsigned long long>(sc.total_drops()));
  if (!done) std::printf("WARNING: simulation hit the time cap\n");

  stats::Table table({"bin", "count", "avg(us)", "p50(us)", "p95(us)", "p99(us)"});
  auto add_bin = [&](const char* name, const stats::Summary& s) {
    table.add_row({name, std::to_string(s.count()), stats::Table::num(s.mean(), 0),
                   stats::Table::num(s.percentile(50), 0),
                   stats::Table::num(s.percentile(95), 0),
                   stats::Table::num(s.percentile(99), 0)});
  };
  add_bin("small(<100KB)", sc.fct().fct_us(stats::SizeBin::kSmall));
  add_bin("medium", sc.fct().fct_us(stats::SizeBin::kMedium));
  add_bin("large(>10MB)", sc.fct().fct_us(stats::SizeBin::kLarge));
  add_bin("overall", sc.fct().overall_fct_us());
  table.print();
  return 0;
}
