// Quickstart: the smallest end-to-end PMSB simulation.
//
// Two DCTCP flows share a 10 Gbps bottleneck through two DWRR queues with
// equal weights. The bottleneck port runs PMSB marking (Algorithm 1).
// Expected outcome: each queue gets ~5 Gbps, the port buffer hovers around
// the PMSB port threshold, and both flows see low RTTs.
#include <cstdio>

#include "experiments/dumbbell.hpp"
#include "experiments/presets.hpp"
#include "stats/table.hpp"

using namespace pmsb;

int main() {
  experiments::DumbbellConfig cfg;
  cfg.num_senders = 2;
  cfg.link_rate = sim::gbps(10);
  cfg.link_delay = sim::microseconds(2);
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};

  experiments::SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds(20);  // ~ this topology's loaded RTT
  params.weights = cfg.scheduler.weights;
  cfg.marking = experiments::make_scheme_marking(experiments::Scheme::kPmsb, params);

  experiments::DumbbellScenario scenario(cfg);
  std::printf("quickstart: base RTT %.1f us, PMSB port threshold %.0f packets\n",
              sim::to_microseconds(scenario.base_rtt()),
              static_cast<double>(cfg.marking.threshold_bytes) / sim::kDefaultMtuBytes);

  // One long-lived flow per queue (service tag selects the queue).
  scenario.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  scenario.add_flow({.sender = 1, .service = 1, .bytes = 0, .start = 0});

  // Measure queue throughput over [10ms, 50ms] (skip slow-start warmup).
  scenario.run(sim::milliseconds(10));
  const std::uint64_t q0_start = scenario.served_bytes(0);
  const std::uint64_t q1_start = scenario.served_bytes(1);
  scenario.run(sim::milliseconds(50));
  const double dt = sim::to_seconds(sim::milliseconds(40));
  const double q0_gbps =
      static_cast<double>(scenario.served_bytes(0) - q0_start) * 8 / dt / 1e9;
  const double q1_gbps =
      static_cast<double>(scenario.served_bytes(1) - q1_start) * 8 / dt / 1e9;

  stats::Table table({"queue", "throughput(Gbps)", "marks", "srtt(us)"});
  const auto& port = scenario.bottleneck();
  for (std::size_t q = 0; q < 2; ++q) {
    table.add_row({std::to_string(q), stats::Table::num(q == 0 ? q0_gbps : q1_gbps),
                   std::to_string(port.stats().marked_per_queue[q]),
                   stats::Table::num(sim::to_microseconds(
                       scenario.flow(q).sender().rtt().srtt()))});
  }
  table.print();

  std::printf("total: %.2f Gbps (link: 10), drops: %llu\n", q0_gbps + q1_gbps,
              static_cast<unsigned long long>(port.stats().dropped_packets));
  return 0;
}
