// Example: PMSB is scheduler-agnostic.
//
// The same PMSB-marked bottleneck is driven by five different scheduling
// disciplines; for each we check that the discipline's own service policy
// survives (shares for the weighted ones, priority order for SP) while the
// port stays fully utilised. MQ-ECN could only run on the first two rows.
#include <cstdio>

#include "experiments/dumbbell.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

// 3 queues with weights 1:2:1 (SP ignores weights; SP+WFQ puts queue 0
// strictly above a 2:1 WFQ pair). Each queue carries two greedy flows.
void run_discipline(sched::SchedulerKind kind, stats::Table& table) {
  DumbbellConfig cfg;
  cfg.num_senders = 6;
  cfg.scheduler.kind = kind;
  cfg.scheduler.num_queues = 3;
  cfg.scheduler.weights = {1.0, 2.0, 1.0};
  if (kind == sched::SchedulerKind::kSpWfq) cfg.scheduler.priority_group = {0, 1, 1};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);
  for (std::size_t i = 0; i < 6; ++i) {
    sc.add_flow({.sender = i, .service = static_cast<net::ServiceId>(i / 2),
                 .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(10));
  std::vector<std::uint64_t> s(3);
  for (std::size_t q = 0; q < 3; ++q) s[q] = sc.served_bytes(q);
  sc.run(sim::milliseconds(60));
  const double dt = static_cast<double>(sim::milliseconds(50));
  std::vector<std::string> row = {sched::scheduler_kind_name(kind)};
  double total = 0;
  for (std::size_t q = 0; q < 3; ++q) {
    const double gbps = static_cast<double>(sc.served_bytes(q) - s[q]) * 8.0 / dt;
    row.push_back(stats::Table::num(gbps));
    total += gbps;
  }
  row.push_back(stats::Table::num(total));
  table.add_row(std::move(row));
}

}  // namespace

int main() {
  std::printf("PMSB over five schedulers; 3 queues (weights 1:2:1), 2 greedy\n");
  std::printf("flows per queue, 10G bottleneck, port K = 12 packets.\n");
  std::printf("expected: WRR/DWRR/WFQ -> 2.5/5/2.5; SP -> 10/0/0 (strict);\n");
  std::printf("SP+WFQ -> queue0 takes all it wants, rest split 2:1.\n\n");

  stats::Table table({"scheduler", "q0(Gbps)", "q1(Gbps)", "q2(Gbps)", "total"});
  for (auto kind : {sched::SchedulerKind::kWrr, sched::SchedulerKind::kDwrr,
                    sched::SchedulerKind::kWfq, sched::SchedulerKind::kSp,
                    sched::SchedulerKind::kSpWfq}) {
    run_discipline(kind, table);
  }
  table.print();
  std::printf("\n(MQ-ECN would be valid only on the WRR and DWRR rows —\n"
              "PMSB needs no notion of rounds. Paper Table I / Figs. 13-15.)\n");
  return 0;
}
