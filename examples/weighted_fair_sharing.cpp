// Example: the victim-flow story of the paper, end to end.
//
// One flow in queue 1 competes with eight flows in queue 2 behind a 10G
// port with two equal-weight DWRR queues. We run the same scenario under
// four marking configurations and print who gets what:
//   1. per-port marking        -> queue 1 is the victim (paper Fig. 3)
//   2. PMSB (Algorithm 1)      -> fairness restored in the switch
//   3. PMSB(e) (Algorithm 2)   -> fairness restored at the end hosts
//   4. per-queue standard      -> fair but at twice the latency
#include <cstdio>

#include "experiments/dumbbell.hpp"
#include "experiments/presets.hpp"
#include "stats/summary.hpp"
#include "stats/table.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

struct Outcome {
  double q1_share_pct;
  double total_gbps;
  double rtt_avg_us;  // of the queue-2 (bursty service) flows
};

Outcome run(Scheme scheme) {
  DumbbellConfig cfg;
  cfg.num_senders = 9;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};

  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds(18);
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);

  DumbbellScenario sc(cfg);
  apply_scheme_transport(scheme, params, sc.base_rtt(), cfg.transport);

  const bool pmsbe = cfg.transport.pmsbe_enabled;
  const sim::TimeNs thr = cfg.transport.pmsbe_rtt_threshold;
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .pmsbe = pmsbe, .pmsbe_rtt_threshold = thr});
  stats::Summary rtt;
  for (std::size_t i = 1; i <= 8; ++i) {
    const auto idx = sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0,
                                  .pmsbe = pmsbe, .pmsbe_rtt_threshold = thr});
    sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
      if (sc.simulator().now() > sim::milliseconds(10)) {
        rtt.add(sim::to_microseconds(t));
      }
    });
  }

  sc.run(sim::milliseconds(10));
  const auto s0 = sc.served_bytes(0);
  const auto s1 = sc.served_bytes(1);
  sc.run(sim::milliseconds(60));
  const double d0 = static_cast<double>(sc.served_bytes(0) - s0);
  const double d1 = static_cast<double>(sc.served_bytes(1) - s1);
  return {d0 / (d0 + d1) * 100.0,
          (d0 + d1) * 8.0 / static_cast<double>(sim::milliseconds(50)), rtt.mean()};
}

}  // namespace

int main() {
  std::printf("Victim-flow demo: 1 flow (queue 1) vs 8 flows (queue 2),\n");
  std::printf("DWRR 1:1 on a 10G port. Fair outcome: 50%% / ~10G total.\n\n");

  stats::Table table({"marking", "q1_share(%)", "total(Gbps)", "rtt_avg(us)"}, 16);
  for (Scheme s : {Scheme::kPerPort, Scheme::kPmsb, Scheme::kPmsbE,
                   Scheme::kPerQueueStd}) {
    const auto o = run(s);
    table.add_row({scheme_name(s), stats::Table::num(o.q1_share_pct, 1),
                   stats::Table::num(o.total_gbps), stats::Table::num(o.rtt_avg_us, 1)});
  }
  table.print();
  std::printf(
      "\nper-port violates the 50%% share; PMSB and PMSB(e) restore it while\n"
      "keeping RTT well below the per-queue standard configuration.\n");
  return 0;
}
