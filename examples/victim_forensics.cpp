// Example: using the packet-event tracer to SEE the victim flow.
//
// The paper's argument starts from one observation: under per-port marking,
// "packets from one queue may get marked due to buffer occupancy of the
// other queues". This example attaches a Tracer to the bottleneck and
// counts, per queue, how many marks each queue's packets received and what
// the port looked like at those instants — first under per-port marking
// (queue 1's lone flow is marked constantly despite holding almost nothing),
// then under PMSB (queue 1's marks disappear; only the congested queue pays).
#include <cstdio>

#include "experiments/dumbbell.hpp"
#include "stats/table.hpp"
#include "trace/tracer.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

void run_case(ecn::MarkingKind kind, std::uint64_t threshold_pkts,
              stats::Table& table) {
  DumbbellConfig cfg;
  cfg.num_senders = 9;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = kind;
  cfg.marking.threshold_bytes = threshold_pkts * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);

  trace::Tracer tracer;
  sc.bottleneck().set_tracer(&tracer);

  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});  // the loner
  for (std::size_t i = 1; i <= 8; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(20));

  const auto enq0 = tracer.count_queue(trace::EventKind::kEnqueue, 0);
  const auto enq1 = tracer.count_queue(trace::EventKind::kEnqueue, 1);
  const auto mark0 = tracer.count_queue(trace::EventKind::kMark, 0);
  const auto mark1 = tracer.count_queue(trace::EventKind::kMark, 1);
  const char* name = kind == ecn::MarkingKind::kPerPort ? "PerPort" : "PMSB";
  table.add_row({std::string(name) + " q1(1 flow)", std::to_string(enq0),
                 std::to_string(mark0),
                 stats::Table::num(enq0 ? 100.0 * mark0 / enq0 : 0.0, 1)});
  table.add_row({std::string(name) + " q2(8 flows)", std::to_string(enq1),
                 std::to_string(mark1),
                 stats::Table::num(enq1 ? 100.0 * mark1 / enq1 : 0.0, 1)});
}

}  // namespace

int main() {
  std::printf("Victim forensics with the packet tracer\n");
  std::printf("1 flow (queue 1) vs 8 flows (queue 2), DWRR 1:1, 10G, 20 ms.\n");
  std::printf("Watch queue 1's mark RATIO: per-port punishes the innocent;\n");
  std::printf("PMSB's selective blindness does not.\n\n");
  stats::Table table({"queue", "packets", "marks", "mark_ratio(%)"}, 16);
  run_case(ecn::MarkingKind::kPerPort, 16, table);
  run_case(ecn::MarkingKind::kPmsb, 12, table);
  table.print();
  return 0;
}
