// Example: using the telemetry registry + sampler to SEE the victim flow.
//
// The paper's argument starts from one observation: under per-port marking,
// "packets from one queue may get marked due to buffer occupancy of the
// other queues". This example binds the bottleneck port's instruments into a
// MetricsRegistry and reads, per queue, how many marks each queue's packets
// received — first under per-port marking (queue 1's lone flow is marked
// constantly despite holding almost nothing), then under PMSB (queue 1's
// marks disappear; the `ecn.mark_suppressed_blindness` counter shows the
// selective-blindness filter doing exactly that work). A TimeSeriesSampler
// rides along to show the backlog asymmetry the mark ratios come from.
#include <cstdio>
#include <string>

#include "experiments/dumbbell.hpp"
#include "stats/table.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sampler.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

double column_mean(const telemetry::TimeSeriesSampler& sampler, std::size_t col) {
  const auto& data = sampler.column(col);
  if (data.empty()) return 0.0;
  double sum = 0.0;
  for (double v : data) sum += v;
  return sum / static_cast<double>(data.size());
}

void run_case(ecn::MarkingKind kind, std::uint64_t threshold_pkts,
              stats::Table& table) {
  DumbbellConfig cfg;
  cfg.num_senders = 9;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = kind;
  cfg.marking.threshold_bytes = threshold_pkts * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);

  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});  // the loner
  for (std::size_t i = 1; i <= 8; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }

  telemetry::MetricsRegistry registry;
  sc.bind_metrics(registry);

  telemetry::TimeSeriesSampler sampler(sc.simulator(), sim::microseconds(100));
  sc.add_sampler_columns(sampler);
  sampler.start();

  sc.run(sim::milliseconds(20));
  sampler.stop();

  const telemetry::Labels port{{"port", "bottleneck"}};
  auto per_queue = [&port](std::size_t q) {
    telemetry::Labels l = port;
    l.emplace_back("queue", std::to_string(q));
    return l;
  };

  const char* name = kind == ecn::MarkingKind::kPerPort ? "PerPort" : "PMSB";
  for (std::size_t q = 0; q < 2; ++q) {
    const double pkts = registry.value("sched.dequeued_packets", per_queue(q));
    const double marks = registry.value("port.marks", per_queue(q));
    // Columns 1..num_queues of the sampler are the per-queue backlog probes.
    const double backlog = column_mean(sampler, 1 + q);
    table.add_row({std::string(name) + (q == 0 ? " q1(1 flow)" : " q2(8 flows)"),
                   stats::Table::num(pkts, 0), stats::Table::num(marks, 0),
                   stats::Table::num(pkts > 0 ? 100.0 * marks / pkts : 0.0, 1),
                   stats::Table::num(backlog / 1500.0, 1)});
  }

  if (kind == ecn::MarkingKind::kPmsb) {
    std::printf(
        "PMSB forensics: %.0f threshold evaluations, %.0f times the port was over\n"
        "its threshold, %.0f marks suppressed by selective blindness.\n\n",
        registry.value("ecn.threshold_evals", port),
        registry.value("ecn.port_over_threshold", port),
        registry.value("ecn.mark_suppressed_blindness", port));
  }
}

}  // namespace

int main() {
  std::printf("Victim forensics with the telemetry registry\n");
  std::printf("1 flow (queue 1) vs 8 flows (queue 2), DWRR 1:1, 10G, 20 ms.\n");
  std::printf("Watch queue 1's mark RATIO: per-port punishes the innocent;\n");
  std::printf("PMSB's selective blindness does not.\n\n");
  stats::Table table(
      {"queue", "packets", "marks", "mark_ratio(%)", "avg_backlog(pkt)"}, 18);
  run_case(ecn::MarkingKind::kPerPort, 16, table);
  run_case(ecn::MarkingKind::kPmsb, 12, table);
  table.print();
  return 0;
}
