// pmsbsim — run PMSB experiments from the command line.
//
// Examples:
//   pmsbsim topology=dumbbell scheduler=dwrr queues=2 weights=1,1
//           scheme=pmsb flows_per_queue=1,8 duration_ms=50
//   pmsbsim topology=leafspine scheme=tcn scheduler=wfq load=0.6 flows=400
//           seed=3 fct_csv=/tmp/fct.csv
//   pmsbsim --config experiment.conf scheme=pmsbe   # file + overrides
//   pmsbsim topology=leafspine flows=300 jobs=8
//           sweep="load:0.3,0.5,0.7,0.9;scheme:pmsb,tcn"
//           sweep_json=/tmp/sweep.json sweep_csv=/tmp/sweep.csv
//
// Common keys:
//   topology   dumbbell | leafspine                (default dumbbell)
//   scheme     pmsb | pmsbe | mq-ecn | tcn | perport | perqueue-std |
//              perqueue-frac | red | none          (default pmsb)
//   scheduler  fifo | sp | wrr | dwrr | wfq | sp+wfq (default dwrr)
//   queues     number of service queues            (default 2 / 8)
//   weights    comma list, one per queue           (default all 1)
//   rtt_us     RTT used in the threshold formulas  (default 18 / 85.2)
//   mark_point enqueue | dequeue                   (default enqueue)
// Telemetry keys (both topologies):
//   metrics_json      path: write a pmsb.run_manifest/1 JSON (config echo,
//                     seed, git describe, FCT results, every instrument)
//   timeseries_csv    path: sample per-port occupancy / mark rate into a
//                     columnar CSV while the run executes
//   sample_period_us  sampling period for timeseries_csv (default 100)
//   digest            1: fold the run's canonical event stream into a
//                     deterministic 128-bit digest, reported as
//                     info["digest"] (and in the manifest). The regression
//                     gate (tools/pmsbregress) compares these digests
//                     against a recorded baseline.
// Sweep keys (fan a grid of runs across a worker pool; each run is an
// isolated single-threaded simulator, so per-run results are bit-identical
// to a serial jobs=1 sweep):
//   sweep              grid spec "key:v1,v2[;key2:w1,w2]" — cartesian
//                      product over the remaining (base) options
//   jobs               worker threads (default 1)
//   sweep_json         path: aggregated pmsb.sweep_report/1 JSON
//   sweep_csv          path: one CSV row per run (union of result keys)
//   sweep_manifest_dir existing dir: per-run pmsb.run_manifest/1 files
//                      (run_000.json, ..., padded to the grid's width).
//                      timeseries_csv / fct_csv are ignored inside sweeps
//                      (the paths would collide).
//   sweep_resume       1: salvage cells whose manifest in sweep_manifest_dir
//                      already holds a completed, config-matching run; only
//                      missing / corrupt / drifted / failed cells re-run.
//                      The final report is identical to an uninterrupted run.
//   cell_timeout_s     > 0: per-cell wall-clock budget, enforced from inside
//                      each cell's event loop. An over-budget cell fails
//                      alone with a [cell_timeout] diagnostic; the rest of
//                      the grid proceeds.
// Robustness keys (see docs/ROBUSTNESS.md):
//   faults             fault timeline, clauses joined by ';':
//                      link:A-B:down@T1..T2 | loss:A->B:P | delay:A->B:D[+J]
//                      | bleach:A:P  (durations take ns/us/ms/s suffixes)
//   bleach             scalar sugar for sweeps: bleach probability applied
//                      at every default marking node (dumbbell: the switch;
//                      leafspine: every spine). Grid values cannot contain
//                      ':' so the headline bleach sweep uses this key.
//   bleach_at          comma list of node names overriding the default
//                      bleach locations
//   invariants         0 disables runtime invariant checking (default 1)
//   invariant_period_us  checking cadence (default 100)
//   watchdog_horizon_ms  abort when no flow progress for this long
//   watchdog_events      abort when executed events exceed this budget
//   watchdog_period_us   watchdog sampling cadence (default 100)
//   A tripped watchdog or a failed invariant makes a single run exit 2 with
//   the diagnostic on stderr; inside a sweep only that cell fails (exit 1,
//   diagnostic in the sweep report).
// Dumbbell keys: flows_per_queue (e.g. "1,8"), duration_ms, link_gbps,
//                link_delay_us
// Leaf-spine keys: load, flows, seed, workload (paper-mix | web-search |
//                data-mining), fct_csv (path to dump per-flow records)
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "experiments/options.hpp"
#include "sweep/scenario_run.hpp"
#include "sweep/sweep.hpp"

using namespace pmsb;
using pmsb::experiments::Options;

namespace {

int run_sweep_cli(const Options& opts) {
  const std::string spec = opts.get("sweep");
  sweep::SweepConfig cfg;
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 1));
  cfg.manifest_dir = opts.get("sweep_manifest_dir");
  cfg.resume = opts.get_bool("sweep_resume", false);
  cfg.cell_timeout_s = opts.get_double("cell_timeout_s", 0.0);
  cfg.progress = true;
  if (cfg.resume && cfg.manifest_dir.empty()) {
    throw std::invalid_argument(
        "sweep_resume=1 requires sweep_manifest_dir= (there is nothing to "
        "salvage from)");
  }

  // The base config every point starts from: everything except the keys
  // that steer the sweep itself.
  Options base = opts;
  for (const char* key : {"sweep", "jobs", "sweep_json", "sweep_csv",
                          "sweep_manifest_dir", "sweep_resume",
                          "cell_timeout_s"}) {
    base.erase(key);
  }
  const auto points = sweep::expand_grid(base, spec);
  std::printf("sweep: %zu points x jobs=%zu\n", points.size(), cfg.jobs);

  const auto t0 = std::chrono::steady_clock::now();
  const auto records = sweep::run_sweep(points, cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::size_t failed = 0;
  std::size_t salvaged = 0;
  for (const auto& r : records) {
    if (r.salvaged) ++salvaged;
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED [%zu] %s: %s\n", r.index, r.label.c_str(),
                   r.error.c_str());
    }
  }
  std::printf("sweep done: %zu/%zu ok in %.2f s", records.size() - failed,
              records.size(), wall_s);
  if (cfg.resume) std::printf(" (%zu salvaged, %zu re-run)", salvaged,
                              records.size() - salvaged);
  std::printf("\n");

  if (opts.has("sweep_json")) {
    sweep::write_text_file(opts.get("sweep_json"),
                           sweep::sweep_report_json(records, cfg.jobs, wall_s));
    std::printf("wrote %s\n", opts.get("sweep_json").c_str());
  }
  if (opts.has("sweep_csv")) {
    sweep::write_text_file(opts.get("sweep_csv"), sweep::sweep_report_csv(records));
    std::printf("wrote %s\n", opts.get("sweep_csv").c_str());
  }
  return failed == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Options opts = Options::from_args(argc, argv);
    if (opts.has("sweep")) return run_sweep_cli(opts);
    sweep::SweepPoint point;
    point.opts = opts;
    (void)sweep::run_scenario(point, /*quiet=*/false);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmsbsim: %s\n", e.what());
    return 2;
  }
}
