// pmsbsim — run PMSB experiments from the command line.
//
// Examples:
//   pmsbsim topology=dumbbell scheduler=dwrr queues=2 weights=1,1
//           scheme=pmsb flows_per_queue=1,8 duration_ms=50
//   pmsbsim topology=leafspine scheme=tcn scheduler=wfq load=0.6 flows=400
//           seed=3 fct_csv=/tmp/fct.csv
//   pmsbsim --config experiment.conf scheme=pmsbe   # file + overrides
//   pmsbsim topology=leafspine flows=300 jobs=8
//           sweep="load:0.3,0.5,0.7,0.9;scheme:pmsb,tcn"
//           sweep_json=/tmp/sweep.json sweep_csv=/tmp/sweep.csv
//
// The accepted keys live in one place — the kKeys table below, which both
// generates `--help` and backs validate_keys(), so an unknown or misspelled
// key is rejected with a "did you mean" suggestion instead of being
// silently ignored. Behavioural details that don't fit a one-liner:
//
// - digest=1 digests are what tools/pmsbregress compares against baselines.
// - Sweeps fan the grid across a worker pool; each run is an isolated
//   single-threaded simulator, so per-run results are bit-identical to a
//   serial jobs=1 sweep. Per-run file outputs (timeseries_csv, fct_csv,
//   profile_json, spans_ndjson, trace_ndjson) are dropped inside sweeps —
//   the paths would collide — but profile=1 still lands pmsb.profile/1 in
//   each cell's manifest under sweep_manifest_dir.
// - sweep_resume=1 salvages cells whose manifest already holds a completed,
//   config-matching run; the final report matches an uninterrupted sweep.
// - A tripped watchdog or failed invariant makes a single run exit 2 with
//   the diagnostic on stderr; inside a sweep only that cell fails.
// - Observability outputs (profile_json / spans_ndjson / trace_ndjson) are
//   consumed offline by tools/pmsbtrace; see docs/OBSERVABILITY.md.
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/options.hpp"
#include "faults/deadline.hpp"
#include "sweep/cell_supervisor.hpp"
#include "sweep/scenario_run.hpp"
#include "sweep/sweep.hpp"

using namespace pmsb;
using pmsb::experiments::Options;

namespace {

/// Every key pmsbsim accepts, with one-line help. --help prints this table
/// and validate_keys() rejects anything not in it, so the two cannot drift:
/// adding a key here is what makes the tool accept it.
struct KeyHelp {
  const char* key;
  const char* help;
};

constexpr KeyHelp kKeys[] = {
    // Scenario shape.
    {"topology", "dumbbell | leafspine (default dumbbell)"},
    {"scheme", "pmsb | pmsbe | mq-ecn | tcn | perport | perqueue-std | "
               "perqueue-frac | none (default pmsb)"},
    {"scheduler", "fifo | sp | wrr | dwrr | wfq | sp+wfq (default dwrr)"},
    {"queues", "number of service queues (default 2 / 8)"},
    {"weights", "comma list, one per queue (default all 1)"},
    {"rtt_us", "RTT used in the threshold formulas (default 18 / 85.2)"},
    {"mark_point", "enqueue | dequeue (default enqueue)"},
    {"sched_queue", "event queue backend: heap | calendar (default heap)"},
    {"seed", "workload / fault RNG seed (default 1)"},
    // Shared-buffer management (docs/DESIGN.md "Buffer management").
    {"buffer_policy", "static | equal | dt: shared-buffer admission policy "
                      "(default static = per-port drop-tail)"},
    {"buffer_bytes", "shared pool size in bytes (0 = policy default: "
                     "per-port budget x ports of the switch)"},
    {"dt_alpha", "dt: allowance factor alpha in threshold = alpha * free "
                 "pool (default 1.0)"},
    // Dumbbell-only.
    {"flows_per_queue", "dumbbell: comma list, e.g. 1,8"},
    {"duration_ms", "dumbbell: measured run length (default 50)"},
    {"link_gbps", "dumbbell: link rate (default 10)"},
    {"link_delay_us", "one-way per-link delay (default 2 / 9)"},
    // Leaf-spine-only.
    {"load", "leafspine: offered load fraction (default 0.5)"},
    {"flows", "leafspine: number of flows (default 300)"},
    {"workload", "leafspine: paper-mix | web-search | data-mining"},
    {"max_sim_s", "leafspine: simulated-time cap (default 60)"},
    {"fct_csv", "leafspine: path for per-flow FCT records"},
    // Workload plane v2 (leafspine; docs/DESIGN.md "Workload plane").
    {"pattern", "leafspine workload family: poisson | coflow | rpc "
                "(default poisson)"},
    {"trace_file", "leafspine: replay a pmsb.flow_trace/1 NDJSON trace "
                   "(overrides pattern/load/flows/workload)"},
    {"trace_export", "leafspine: write the run's realized workload as a "
                     "replayable pmsb.flow_trace/1 trace"},
    {"coflows", "coflow: number of coflows (default 20)"},
    {"mappers", "coflow: mappers per stage (default 4)"},
    {"reducers", "coflow: reducers per stage (default 4)"},
    {"stages", "coflow: shuffle stages with barriers between (default 1)"},
    {"coflow_gap_us", "coflow: mean Poisson inter-arrival (default 1000)"},
    {"rpcs", "rpc: number of fan-out RPCs (default 50)"},
    {"fanout", "rpc: responders per RPC (default 8)"},
    {"rpc_bytes", "rpc: response shard size in bytes (default 20000)"},
    {"rpc_deadline_us", "rpc: completion deadline after RPC start; 0 "
                        "disables (default 2000)"},
    {"rpc_gap_us", "rpc: mean Poisson inter-arrival (default 500)"},
    {"d2tcp", "1: deadline-aware D2TCP window cuts on flows that carry "
              "deadlines (default 0)"},
    // Telemetry.
    {"metrics_json", "path: write a pmsb.run_manifest/1 JSON"},
    {"timeseries_csv", "path: stream per-port occupancy / mark-rate CSV"},
    {"sample_period_us", "timeseries sampling period (default 100)"},
    {"digest", "1: report the run's 128-bit event digest"},
    // Stability analysis (docs/DESIGN.md "Stability analysis").
    {"stability", "1: post-run oscillation detection over sampled queue "
                  "columns; emits stability.* results"},
    {"stability_window", "analysis window in samples (default 64)"},
    {"stability_min_autocorr", "required ACF peak strength (default 0.5)"},
    {"stability_min_amp_bytes", "peak-to-trough amplitude floor "
                                "(default 18000 = 12 MTU)"},
    {"stability_min_windows", "consecutive oscillating windows required "
                              "(default 3)"},
    // Observability (docs/OBSERVABILITY.md).
    {"profile", "1: per-event-kind kernel + component profiler; the "
                "pmsb.profile/1 JSON lands in the run manifest"},
    {"profile_json", "path: also write the pmsb.profile/1 JSON standalone "
                     "(implies profile=1)"},
    {"trace_flows", "comma list of transport flow ids as in fct_csv, "
                    "1-based (or 'all'): capture packet "
                    "lifecycle spans for these flows"},
    {"spans_ndjson", "path: write captured spans as NDJSON (needs "
                     "trace_flows=); feed to pmsbtrace flow"},
    {"trace_ndjson", "path: write the trace port's event stream as NDJSON; "
                     "feed to pmsbtrace port"},
    // Robustness (docs/ROBUSTNESS.md).
    {"faults", "fault timeline: link:A-B:down@T1..T2 | loss:A->B:P | "
               "delay:A->B:D[+J] | bleach:A:P, joined by ';'"},
    {"bleach", "scalar sugar: bleach probability at the default nodes"},
    {"bleach_at", "comma list of node names overriding bleach locations"},
    {"fault_test", "break_invariant: deliberately trip the ledger (tests)"},
    {"invariants", "0 disables runtime invariant checking (default 1)"},
    {"invariant_period_us", "invariant checking cadence (default 100)"},
    {"watchdog_horizon_ms", "abort when no flow progress for this long"},
    {"watchdog_events", "abort when executed events exceed this budget"},
    {"watchdog_period_us", "watchdog sampling cadence (default 100)"},
    {"cell_timeout_s", "> 0: per-run wall-clock budget (in-process this is "
                       "best-effort; see isolate=)"},
    {"cell_timeout_period_us", "deadline check cadence (default 500)"},
    // Sweeps.
    {"sweep", "grid spec \"key:v1,v2[;key2:w1,w2]\" — cartesian product"},
    {"jobs", "sweep worker threads (default 1)"},
    {"sweep_json", "path: aggregated pmsb.sweep_report/1 JSON"},
    {"sweep_csv", "path: one CSV row per run"},
    {"sweep_manifest_dir", "existing dir: per-run manifest files"},
    {"sweep_resume", "1: salvage completed cells from sweep_manifest_dir; "
                     "crashed / quarantined cells are re-run"},
    // Crash-proofing (docs/ROBUSTNESS.md).
    {"isolate", "1: run each sweep cell in a forked child; crashes / OOM "
                "kills / wedged cells quarantine with a repro bundle "
                "instead of killing the sweep"},
    {"cell_mem_mb", "isolate: RLIMIT_AS per child, MiB (0 = unlimited)"},
    {"cell_retries", "isolate: extra attempts for signal/timeout/oom cells "
                     "(throws are deterministic, never retried)"},
    {"retry_backoff_ms", "isolate: retry k backs off 2^(k-1) * this "
                         "(default 250)"},
    {"repro", "path to a pmsb.repro/1 bundle: re-run that quarantined cell "
              "solo (other keys override; isolate=0 to debug in-process)"},
};

void print_usage() {
  std::printf(
      "usage: pmsbsim [--config FILE] [key=value ...]\n"
      "\n"
      "Examples:\n"
      "  pmsbsim topology=dumbbell scheduler=dwrr queues=2 weights=1,1 \\\n"
      "          scheme=pmsb flows_per_queue=1,8 duration_ms=50\n"
      "  pmsbsim topology=leafspine scheme=tcn load=0.6 flows=400 seed=3\n"
      "  pmsbsim profile=1 trace_flows=1,2 spans_ndjson=/tmp/spans.ndjson\n"
      "  pmsbsim topology=leafspine sweep=\"load:0.3,0.5,0.7;scheme:pmsb,tcn\" \\\n"
      "          jobs=8 sweep_json=/tmp/sweep.json\n"
      "\n"
      "Keys:\n");
  for (const KeyHelp& k : kKeys) std::printf("  %-22s %s\n", k.key, k.help);
}

std::vector<std::string> allowed_keys() {
  std::vector<std::string> out;
  for (const KeyHelp& k : kKeys) out.emplace_back(k.key);
  return out;
}

int run_sweep_cli(const Options& opts) {
  const std::string spec = opts.get("sweep");
  sweep::SweepConfig cfg;
  cfg.jobs = static_cast<std::size_t>(opts.get_int("jobs", 1));
  cfg.manifest_dir = opts.get("sweep_manifest_dir");
  cfg.resume = opts.get_bool("sweep_resume", false);
  cfg.cell_timeout_s = opts.get_double("cell_timeout_s", 0.0);
  cfg.isolate = opts.get_bool("isolate", false);
  cfg.cell_mem_mb = static_cast<std::size_t>(opts.get_int("cell_mem_mb", 0));
  cfg.cell_retries = static_cast<std::size_t>(opts.get_int("cell_retries", 0));
  cfg.retry_backoff_ms = opts.get_double("retry_backoff_ms", 250.0);
  cfg.progress = true;
  if (cfg.resume && cfg.manifest_dir.empty()) {
    throw std::invalid_argument(
        "sweep_resume=1 requires sweep_manifest_dir= (there is nothing to "
        "salvage from)");
  }
  if (cfg.cell_timeout_s > 0.0 && !cfg.isolate) {
    std::printf("note: %s\n", faults::Deadline::blind_spot_note());
  }

  // The base config every point starts from: everything except the keys
  // that steer the sweep itself.
  Options base = opts;
  for (const char* key : {"sweep", "jobs", "sweep_json", "sweep_csv",
                          "sweep_manifest_dir", "sweep_resume",
                          "cell_timeout_s", "isolate", "cell_mem_mb",
                          "cell_retries", "retry_backoff_ms"}) {
    base.erase(key);
  }
  const auto points = sweep::expand_grid(base, spec);
  std::printf("sweep: %zu points x jobs=%zu%s\n", points.size(), cfg.jobs,
              cfg.isolate ? " (isolated cells)" : "");

  const auto t0 = std::chrono::steady_clock::now();
  const auto records = sweep::run_sweep(points, cfg);
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  std::size_t failed = 0;
  std::size_t salvaged = 0;
  std::size_t quarantined = 0;
  for (const auto& r : records) {
    if (r.salvaged) ++salvaged;
    if (r.quarantined) ++quarantined;
    if (!r.ok) {
      ++failed;
      std::fprintf(stderr, "FAILED [%zu] %s: %s\n", r.index, r.label.c_str(),
                   r.error.c_str());
      if (r.quarantined) {
        std::fprintf(stderr,
                     "    quarantined: class=%s attempts=%zu%s%s\n",
                     r.exit_class.c_str(), r.attempts,
                     r.repro_path.empty() ? "" : " repro=",
                     r.repro_path.c_str());
      }
    }
  }
  std::printf("sweep done: %zu/%zu ok in %.2f s", records.size() - failed,
              records.size(), wall_s);
  if (cfg.resume) std::printf(" (%zu salvaged, %zu re-run)", salvaged,
                              records.size() - salvaged);
  if (quarantined > 0) std::printf(" (%zu quarantined)", quarantined);
  std::printf("\n");

  if (opts.has("sweep_json")) {
    sweep::write_text_file(opts.get("sweep_json"),
                           sweep::sweep_report_json(records, cfg.jobs, wall_s));
    std::printf("wrote %s\n", opts.get("sweep_json").c_str());
  }
  if (opts.has("sweep_csv")) {
    sweep::write_text_file(opts.get("sweep_csv"), sweep::sweep_report_csv(records));
    std::printf("wrote %s\n", opts.get("sweep_csv").c_str());
  }
  return failed == 0 ? 0 : 1;
}

/// Re-runs the quarantined cell captured in a pmsb.repro/1 bundle, solo.
/// Exit 0 when the cell now completes, 2 when it fails again (so scripts
/// can tell "fixed" from "still broken"). By default the cell runs under
/// the supervisor — a reproduced hang or OOM stays bounded; `isolate=0`
/// runs it in-process for a debugger.
int run_repro_cli(const Options& opts) {
  const std::string path = opts.get("repro");
  const sweep::ReproBundle bundle = sweep::load_repro_bundle(path);
  std::printf("repro: cell %zu (%s), quarantined as '%s'\n  was: %s\n",
              bundle.cell_index, bundle.label.c_str(), bundle.exit_class.c_str(),
              bundle.error.c_str());

  sweep::SweepPoint point;
  point.index = bundle.cell_index;
  point.label = bundle.label;
  point.opts = bundle.opts;
  // CLI keys override the bundle's echo (loosen cell_timeout_s=, drop the
  // memory cap, isolate=0 for gdb, ...).
  for (const auto& [k, v] : opts.values()) {
    if (k != "repro") point.opts.set(k, v);
  }
  // The echo points metrics_json at the original sweep's manifest dir; a
  // solo re-run must not clobber that cell's stub.
  if (!opts.has("metrics_json")) point.opts.erase("metrics_json");

  const bool isolate = point.opts.get_bool("isolate", true);
  point.opts.erase("isolate");
  if (!isolate) {
    std::printf("repro: running in-process (crashes crash THIS process)\n");
    (void)sweep::run_scenario(point, /*quiet=*/false);
    std::printf("repro: cell completed ok\n");
    return 0;
  }

  sweep::CellLimits limits;
  limits.wall_s = point.opts.get_double("cell_timeout_s", 0.0);
  limits.mem_mb = static_cast<std::size_t>(point.opts.get_int("cell_mem_mb", 0));
  const sweep::CellOutcome outcome = sweep::run_cell_in_child(point, limits, 1);
  if (outcome.exit_class == sweep::ExitClass::kOk) {
    std::printf("repro: cell completed ok (%.0f ms, peak rss %.0f MiB)\n",
                outcome.wall_ms, outcome.peak_rss_bytes / (1024.0 * 1024.0));
    return 0;
  }
  std::fprintf(stderr, "repro: cell failed again: class=%s\n  %s\n",
               sweep::exit_class_name(outcome.exit_class), outcome.error.c_str());
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg == "help") {
      print_usage();
      return 0;
    }
  }
  try {
    const Options opts = Options::from_args(argc, argv);
    opts.validate_keys(allowed_keys());
    if (opts.has("repro")) return run_repro_cli(opts);
    if (opts.has("sweep")) return run_sweep_cli(opts);
    sweep::SweepPoint point;
    point.opts = opts;
    (void)sweep::run_scenario(point, /*quiet=*/false);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmsbsim: %s\n", e.what());
    return 2;
  }
}
