// pmsbregress — the regression gate for the PMSB simulator.
//
//   pmsbregress record baseline=FILE [cells=a,b] [warmup=1] [reps=3] [perf=1]
//   pmsbregress check  baseline=FILE [cells=a,b] [warmup=1] [reps=3] [perf=1]
//                      [tolerance=0.25] [mad_mult=4.0] [perturb=key=value]
//   pmsbregress diff   a=FILE b=FILE
//
// record  runs every cell of the pinned matrix (src/regress/matrix.cpp) with
//         the run digest armed, optionally times perf reps (digest OFF so the
//         hash cost never pollutes the sample), and writes a pmsb.baseline/1
//         JSON.
// check   re-runs the same cells against a recorded baseline. A digest
//         mismatch triggers the divergence finder: the cell is re-run once
//         with a windowed journal armed over the checkpoint bracket, and the
//         report names the first diverging event (time, entity, kind). A perf
//         regression beyond the noise-aware tolerance also fails the gate.
//         perturb= injects an extra option into every cell (e.g.
//         perturb=bleach=0.5) — used by CI to prove the gate actually trips.
// diff    compares two baseline files cell by cell without running anything.
//
// Exit codes: 0 ok, 1 digest mismatch / perf regression / baselines differ,
// 2 usage or I/O error.
#include <cstdio>
#include <cstring>
#include <exception>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/options.hpp"
#include "regress/baseline.hpp"
#include "regress/bench_runner.hpp"
#include "regress/digest.hpp"
#include "regress/divergence.hpp"
#include "regress/matrix.hpp"
#include "sweep/scenario_run.hpp"
#include "telemetry/run_report.hpp"

using namespace pmsb;
using pmsb::experiments::Options;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: pmsbregress record baseline=FILE [cells=a,b] [warmup=N] "
               "[reps=M] [perf=0|1]\n"
               "       pmsbregress check  baseline=FILE [cells=a,b] [warmup=N] "
               "[reps=M] [perf=0|1]\n"
               "                          [tolerance=0.25] [mad_mult=4.0] "
               "[perturb=key=value]\n"
               "       pmsbregress diff   a=FILE b=FILE\n");
  return 2;
}

/// Applies `perturb=key=value` (Options::from_args splits on the FIRST '=',
/// so the value still carries the inner "key=value") onto `opts`.
void apply_perturb(Options& opts, const std::string& perturb) {
  if (perturb.empty()) return;
  const auto eq = perturb.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw std::invalid_argument("perturb= wants key=value, got '" + perturb + "'");
  }
  opts.set(perturb.substr(0, eq), perturb.substr(eq + 1));
}

/// Runs one matrix cell with an external digest armed. `perturb` ("" = none)
/// is applied on top of the cell's pinned config.
void run_cell(const regress::RegressCell& cell, const std::string& perturb,
              regress::RunDigest& digest) {
  sweep::SweepPoint point;
  point.opts = cell.opts;
  apply_perturb(point.opts, perturb);
  const auto rec = sweep::run_scenario(point, /*quiet=*/true, &digest);
  if (!rec.ok) {
    throw std::runtime_error("cell '" + cell.name + "' failed: " + rec.error);
  }
}

/// The digest-derived part of a CellBaseline (name/config/perf left to the
/// caller).
void fill_from_digest(regress::CellBaseline& cb, const regress::RunDigest& d) {
  cb.digest = d.total().hex();
  cb.event_count = d.count();
  cb.sub_digests = d.sub_digest_hex();
  cb.checkpoint_interval = d.checkpoint_interval();
  cb.checkpoints.clear();
  for (const auto& cp : d.checkpoints()) {
    cb.checkpoints.emplace_back(cp.index, cp.hash.hex());
  }
}

int cmd_record(const Options& opts) {
  const std::string path = opts.get("baseline");
  if (path.empty()) {
    std::fprintf(stderr, "pmsbregress record: baseline= is required\n");
    return usage();
  }
  const auto cells = regress::select_cells(opts.get("cells"));
  const bool perf = opts.get_bool("perf", true);
  regress::BenchConfig bench;
  bench.warmup = static_cast<int>(opts.get_int("warmup", bench.warmup));
  bench.reps = static_cast<int>(opts.get_int("reps", bench.reps));

  regress::Baseline baseline;
  baseline.git = telemetry::build_git_describe();
  baseline.warmup = perf ? bench.warmup : 0;
  baseline.reps = perf ? bench.reps : 0;

  for (const auto& cell : cells) {
    regress::RunDigest digest;
    run_cell(cell, "", digest);
    regress::CellBaseline cb;
    cb.name = cell.name;
    cb.config = cell.opts.values();
    fill_from_digest(cb, digest);
    if (perf) {
      const auto m = regress::measure_scenario(cell.opts, bench);
      cb.perf = m.to_cell_perf();
      std::printf("recorded %-26s digest=%s events=%llu  %.3g ev/s\n",
                  cell.name.c_str(), cb.digest.c_str(),
                  static_cast<unsigned long long>(cb.event_count),
                  cb.perf.events_per_s_median);
    } else {
      std::printf("recorded %-26s digest=%s events=%llu\n", cell.name.c_str(),
                  cb.digest.c_str(),
                  static_cast<unsigned long long>(cb.event_count));
    }
    baseline.cells.push_back(std::move(cb));
  }

  regress::write_baseline(path, baseline);
  std::printf("wrote %s (%zu cells)\n", path.c_str(), baseline.cells.size());
  return 0;
}

int cmd_check(const Options& opts) {
  const std::string path = opts.get("baseline");
  if (path.empty()) {
    std::fprintf(stderr, "pmsbregress check: baseline= is required\n");
    return usage();
  }
  const auto baseline = regress::read_baseline(path);
  const auto cells = regress::select_cells(opts.get("cells"));
  const std::string perturb = opts.get("perturb");
  const bool perf = opts.get_bool("perf", true);
  const double tolerance = opts.get_double("tolerance", 0.25);
  const double mad_mult = opts.get_double("mad_mult", 4.0);
  regress::BenchConfig bench;
  bench.warmup = static_cast<int>(opts.get_int("warmup", bench.warmup));
  bench.reps = static_cast<int>(opts.get_int("reps", bench.reps));

  int failures = 0;
  std::size_t checked = 0;
  for (const auto& cell : cells) {
    const auto* base = baseline.find(cell.name);
    if (base == nullptr) {
      std::printf("SKIP %-26s not in baseline (record to pin it)\n",
                  cell.name.c_str());
      continue;
    }
    ++checked;

    regress::RunDigest digest;
    run_cell(cell, perturb, digest);

    if (digest.total().hex() != base->digest) {
      ++failures;
      const auto report = regress::find_divergence(
          *base, digest, [&](regress::RunDigest& replay) {
            run_cell(cell, perturb, replay);
          });
      std::printf("FAIL %-26s %s\n", cell.name.c_str(),
                  report.summary().c_str());
      continue;
    }

    if (perf && base->perf.reps > 0) {
      const auto m = regress::measure_scenario(cell.opts, bench);
      const auto verdict =
          regress::compare_perf(base->perf, m, tolerance, mad_mult);
      if (!verdict.ok) {
        ++failures;
        std::printf("FAIL %-26s perf: %s\n", cell.name.c_str(),
                    verdict.detail.c_str());
        continue;
      }
      std::printf("ok   %-26s digest match, perf %s\n", cell.name.c_str(),
                  verdict.detail.c_str());
    } else {
      std::printf("ok   %-26s digest match (%llu events)\n", cell.name.c_str(),
                  static_cast<unsigned long long>(digest.count()));
    }
  }

  std::printf("check: %zu cells, %d failure%s (baseline git %s)\n", checked,
              failures, failures == 1 ? "" : "s", baseline.git.c_str());
  return failures == 0 ? 0 : 1;
}

int cmd_diff(const Options& opts) {
  const std::string path_a = opts.get("a");
  const std::string path_b = opts.get("b");
  if (path_a.empty() || path_b.empty()) {
    std::fprintf(stderr, "pmsbregress diff: a= and b= are required\n");
    return usage();
  }
  const auto a = regress::read_baseline(path_a);
  const auto b = regress::read_baseline(path_b);

  std::set<std::string> names;
  for (const auto& c : a.cells) names.insert(c.name);
  for (const auto& c : b.cells) names.insert(c.name);

  int differing = 0;
  for (const auto& name : names) {
    const auto* ca = a.find(name);
    const auto* cb = b.find(name);
    if (ca == nullptr || cb == nullptr) {
      ++differing;
      std::printf("DIFF %-26s only in %s\n", name.c_str(),
                  ca != nullptr ? path_a.c_str() : path_b.c_str());
      continue;
    }
    if (ca->digest == cb->digest) {
      double ratio = 1.0;
      if (ca->perf.reps > 0 && cb->perf.reps > 0 &&
          ca->perf.events_per_s_median > 0.0) {
        ratio = cb->perf.events_per_s_median / ca->perf.events_per_s_median;
      }
      std::printf("same %-26s digest %s (perf ratio %.3f)\n", name.c_str(),
                  ca->digest.c_str(), ratio);
      continue;
    }
    ++differing;
    std::printf("DIFF %-26s digest %s -> %s, events %llu -> %llu\n",
                name.c_str(), ca->digest.c_str(), cb->digest.c_str(),
                static_cast<unsigned long long>(ca->event_count),
                static_cast<unsigned long long>(cb->event_count));
    // Name the entities whose sub-digests moved (or exist on one side only).
    std::set<std::string> entities;
    for (const auto& [ent, hex] : ca->sub_digests) {
      const auto it = cb->sub_digests.find(ent);
      if (it == cb->sub_digests.end() || it->second != hex) entities.insert(ent);
    }
    for (const auto& [ent, hex] : cb->sub_digests) {
      if (ca->sub_digests.count(ent) == 0) entities.insert(ent);
    }
    for (const auto& ent : entities) {
      std::printf("     entity %s\n", ent.c_str());
    }
  }

  std::printf("diff: %zu cells, %d differing (%s git %s, %s git %s)\n",
              names.size(), differing, path_a.c_str(), a.git.c_str(),
              path_b.c_str(), b.git.c_str());
  return differing == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const Options opts = Options::from_args(argc - 1, argv + 1);
    if (cmd == "record") return cmd_record(opts);
    if (cmd == "check") return cmd_check(opts);
    if (cmd == "diff") return cmd_diff(opts);
    std::fprintf(stderr, "pmsbregress: unknown command '%s'\n", cmd.c_str());
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmsbregress %s: %s\n", cmd.c_str(), e.what());
    return 2;
  }
}
