// pmsbtrace — offline analysis over pmsbsim's observability artifacts.
//
//   pmsbtrace flow    spans.ndjson  [flow=N] [timeline=K]
//   pmsbtrace port    trace.ndjson  [bucket_us=100] [heatmap_csv=PATH]
//   pmsbtrace profile profile.json  [top=10] [diff=B.json]
//
// `flow` decomposes a sampled flow's completion time into sender /
// queueing / serialization / propagation / receiver / loss-recovery
// segments from its packet-lifecycle spans (pmsbsim trace_flows= +
// spans_ndjson=). Without flow= it summarizes every flow in the file.
//
// `port` aggregates a Tracer capture (pmsbsim trace_ndjson=): event
// counts, time-weighted occupancy percentiles, enqueue->mark latency
// percentiles, and an optional per-queue enqueue heatmap CSV.
//
// `profile` ranks a pmsb.profile/1 document's scopes by self wall time
// (the input may also be a run manifest with an embedded profile); with
// diff= it compares two documents side by side — the profile-first
// optimisation workflow in docs/OBSERVABILITY.md.
#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/options.hpp"
#include "stats/table.hpp"
#include "trace/analysis.hpp"

using namespace pmsb;
using pmsb::experiments::Options;

namespace {

void print_usage() {
  std::printf(
      "usage: pmsbtrace <flow|port|profile> <file> [key=value ...]\n"
      "  flow    spans.ndjson   [flow=N] [timeline=K]\n"
      "          per-flow FCT delay breakdown; timeline=K prints the\n"
      "          first K spans of the flow's timeline\n"
      "  port    trace.ndjson   [bucket_us=100] [heatmap_csv=PATH]\n"
      "          occupancy + mark-latency percentiles; optional per-queue\n"
      "          enqueue heatmap CSV\n"
      "  profile profile.json   [top=10] [diff=B.json]\n"
      "          top-N hotspots by self wall time; diff= compares two\n"
      "          pmsb.profile/1 documents (run manifests also accepted)\n");
}

std::string fmt_ms(std::uint64_t ns) {
  return stats::Table::num(static_cast<double>(ns) * 1e-6, 3);
}

std::string fmt_us(sim::TimeNs ns) {
  return stats::Table::num(static_cast<double>(ns) * 1e-3, 2);
}

void print_breakdown(const trace::FlowBreakdown& b) {
  std::printf("flow %llu: %zu spans, %zu packets, %zu marks, %zu drops, "
              "%zu retransmits\n",
              static_cast<unsigned long long>(b.flow), b.num_spans, b.packets,
              b.marks, b.drops, b.retransmits);
  const sim::TimeNs fct = b.end_ns - b.start_ns;
  std::printf("span %s us -> %s us (%s us total)\n", fmt_us(b.start_ns).c_str(),
              fmt_us(b.end_ns).c_str(), fmt_us(fct).c_str());
  stats::Table table({"component", "time(us)", "share"});
  for (const auto& [component, ns] : b.by_component) {
    const double share =
        fct > 0 ? 100.0 * static_cast<double>(ns) / static_cast<double>(fct) : 0.0;
    table.add_row({component, fmt_us(ns), stats::Table::num(share, 1) + "%"});
  }
  table.print();
}

int cmd_flow(const std::string& path, const Options& opts) {
  opts.validate_keys({"flow", "timeline"});
  const auto spans = trace::read_spans_ndjson(path);
  if (spans.empty()) {
    std::fprintf(stderr, "pmsbtrace: %s holds no spans\n", path.c_str());
    return 1;
  }
  if (!opts.has("flow")) {
    // Summarize every flow so the user can pick one to drill into.
    stats::Table table({"flow", "spans", "fct(us)", "queueing(us)", "marks",
                        "retx"});
    for (const net::FlowId f : trace::flows_in(spans)) {
      const auto b = trace::analyze_flow(spans, f);
      const auto queueing = b.by_component.count("queueing")
                                ? b.by_component.at("queueing")
                                : 0;
      table.add_row({std::to_string(f), std::to_string(b.num_spans),
                     fmt_us(b.end_ns - b.start_ns), fmt_us(queueing),
                     std::to_string(b.marks), std::to_string(b.retransmits)});
    }
    table.print();
    std::printf("rerun with flow=N for a breakdown\n");
    return 0;
  }
  const auto flow = static_cast<net::FlowId>(opts.get_int("flow", 0));
  const auto b = trace::analyze_flow(spans, flow);
  print_breakdown(b);
  const auto limit = static_cast<std::size_t>(opts.get_int("timeline", 0));
  if (limit > 0) {
    stats::Table table({"t(us)", "phase", "node", "packet", "seq", "flags"});
    std::size_t shown = 0;
    for (const trace::Span& s : b.timeline) {
      if (shown++ == limit) break;
      std::string flags;
      if (s.marked) flags += "M";
      if (s.retransmit) flags += "R";
      table.add_row({fmt_us(s.time), trace::span_phase_name(s.phase), s.node,
                     std::to_string(s.packet), std::to_string(s.seq), flags});
    }
    table.print();
    if (b.timeline.size() > limit) {
      std::printf("... %zu more spans (raise timeline=)\n",
                  b.timeline.size() - limit);
    }
  }
  return 0;
}

int cmd_port(const std::string& path, const Options& opts) {
  opts.validate_keys({"bucket_us", "heatmap_csv"});
  const auto events = trace::read_trace_ndjson(path);
  if (events.empty()) {
    std::fprintf(stderr, "pmsbtrace: %s holds no events\n", path.c_str());
    return 1;
  }
  const trace::PortReport r = trace::analyze_port(events);
  std::printf("%zu events over %s us\n", events.size(),
              stats::Table::num(r.duration_us, 1).c_str());
  stats::Table counts({"event", "count"});
  for (const auto& [event, n] : r.event_counts) {
    counts.add_row({event, std::to_string(n)});
  }
  counts.print();
  stats::Table occ({"occupancy(B)", "p50", "p90", "p99", "max"});
  occ.add_row({"time-weighted", stats::Table::num(r.occupancy_p50, 0),
               stats::Table::num(r.occupancy_p90, 0),
               stats::Table::num(r.occupancy_p99, 0),
               std::to_string(r.occupancy_max)});
  occ.print();
  if (r.marked_packets > 0) {
    std::printf("mark latency over %zu marked packets: p50 %s us, p99 %s us, "
                "max %s us\n",
                r.marked_packets, stats::Table::num(r.mark_latency_p50_us, 2).c_str(),
                stats::Table::num(r.mark_latency_p99_us, 2).c_str(),
                stats::Table::num(r.mark_latency_max_us, 2).c_str());
  } else {
    std::printf("no marked packets in capture\n");
  }
  if (opts.has("heatmap_csv")) {
    const double bucket_us = opts.get_double("bucket_us", 100.0);
    const std::string csv = trace::port_heatmap_csv(events, bucket_us);
    std::ofstream out(opts.get("heatmap_csv"));
    if (!out) {
      throw std::runtime_error("cannot open " + opts.get("heatmap_csv"));
    }
    out << csv;
    std::printf("wrote %s (bucket %s us)\n", opts.get("heatmap_csv").c_str(),
                stats::Table::num(bucket_us, 1).c_str());
  }
  return 0;
}

int cmd_profile(const std::string& path, const Options& opts) {
  opts.validate_keys({"top", "diff"});
  const trace::ProfileDoc doc = trace::read_profile(path);
  const auto top = static_cast<std::size_t>(opts.get_int("top", 10));
  if (opts.has("diff")) {
    const trace::ProfileDoc after = trace::read_profile(opts.get("diff"));
    std::printf("dispatches: %llu -> %llu; dispatch wall: %s -> %s ms\n",
                static_cast<unsigned long long>(doc.dispatches),
                static_cast<unsigned long long>(after.dispatches),
                fmt_ms(doc.dispatch_wall_ns).c_str(),
                fmt_ms(after.dispatch_wall_ns).c_str());
    stats::Table table({"scope", "count a", "count b", "self a(ms)",
                        "self b(ms)", "delta(ms)"});
    std::size_t shown = 0;
    for (const trace::ProfileScopeDiff& d : trace::diff_profiles(doc, after)) {
      if (shown++ == top) break;
      const double delta = (static_cast<double>(d.self_b) -
                            static_cast<double>(d.self_a)) * 1e-6;
      table.add_row({d.name, std::to_string(d.count_a), std::to_string(d.count_b),
                     fmt_ms(d.self_a), fmt_ms(d.self_b),
                     stats::Table::num(delta, 3)});
    }
    table.print();
    return 0;
  }
  std::printf("kernel: %llu dispatches in %s ms wall; %llu scheduled, "
              "%llu cancelled, heap depth max %llu\n",
              static_cast<unsigned long long>(doc.dispatches),
              fmt_ms(doc.dispatch_wall_ns).c_str(),
              static_cast<unsigned long long>(doc.events_scheduled),
              static_cast<unsigned long long>(doc.events_cancelled),
              static_cast<unsigned long long>(doc.max_heap_depth));
  stats::Table table({"scope", "count", "self(ms)", "total(ms)", "self-share"});
  for (const trace::ProfileScopeEntry& s : trace::top_hotspots(doc, top)) {
    const double share =
        doc.dispatch_wall_ns > 0
            ? 100.0 * static_cast<double>(s.self_wall_ns) /
                  static_cast<double>(doc.dispatch_wall_ns)
            : 0.0;
    table.add_row({s.name, std::to_string(s.count), fmt_ms(s.self_wall_ns),
                   fmt_ms(s.total_wall_ns), stats::Table::num(share, 1) + "%"});
  }
  table.print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    print_usage();
    return argc == 2 && std::string(argv[1]) == "--help" ? 0 : 2;
  }
  const std::string cmd = argv[1];
  const std::string path = argv[2];
  try {
    // argv[2] is positional; key=value options start at argv[3].
    const Options opts = Options::from_args(argc - 2, argv + 2);
    if (cmd == "flow") return cmd_flow(path, opts);
    if (cmd == "port") return cmd_port(path, opts);
    if (cmd == "profile") return cmd_profile(path, opts);
    std::fprintf(stderr, "pmsbtrace: unknown subcommand '%s'\n", cmd.c_str());
    print_usage();
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pmsbtrace: %s\n", e.what());
    return 2;
  }
}
