// Figure 4: DCTCP buffer occupancy with enqueue vs dequeue marking.
//
// 4 flows into one queue at 1 Gbps, K = 16 packets. Marking at dequeue
// delivers the congestion signal before the marked packet's queueing delay,
// so the slow-start peak drops (paper: 87 pkts -> ~25% lower).
#include "bench_common.hpp"
#include "stats/queue_trace.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
struct TraceResult {
  double peak_pkts;
  double steady_mean_pkts;
};

TraceResult run_trace(ecn::MarkPoint point) {
  DumbbellConfig cfg;
  cfg.num_senders = 4;
  cfg.link_rate = sim::gbps(1);
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = ecn::MarkingKind::kPerQueueStandard;
  cfg.marking.threshold_bytes = 16 * 1500;
  cfg.marking.point = point;
  DumbbellScenario sc(cfg);
  stats::QueueTracer tracer(
      sc.simulator(), [&sc] { return sc.bottleneck().buffered_bytes(); },
      sim::microseconds(2));
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(bench::scaled(30, 100)));
  return {tracer.peak_bytes() / 1500.0,
          tracer.mean_bytes(sim::milliseconds(10), sim::kTimeNever) / 1500.0};
}
}  // namespace

int main() {
  bench::print_header(
      "Figure 4 — DCTCP enqueue vs dequeue marking, buffer occupancy",
      "4 flows, 1 queue, 1G, K=16 pkts",
      "dequeue marking lowers the slow-start peak by ~25%");

  const auto enq = run_trace(ecn::MarkPoint::kEnqueue);
  const auto deq = run_trace(ecn::MarkPoint::kDequeue);
  stats::Table table({"mark point", "peak(pkts)", "steady_mean(pkts)"});
  table.add_row({"enqueue", stats::Table::num(enq.peak_pkts, 1),
                 stats::Table::num(enq.steady_mean_pkts, 1)});
  table.add_row({"dequeue", stats::Table::num(deq.peak_pkts, 1),
                 stats::Table::num(deq.steady_mean_pkts, 1)});
  table.print();
  std::printf("peak reduction with dequeue marking: %.1f%%\n",
              (enq.peak_pkts - deq.peak_pkts) / enq.peak_pkts * 100.0);
  return 0;
}
