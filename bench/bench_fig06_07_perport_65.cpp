// Figures 6 & 7: raising the per-port threshold to 65 packets restores
// fairness for 1-vs-8 flows (few marks, victims back off rarely) — but the
// fix does not scale: at 1-vs-40 flows the stable buffer exceeds any fixed
// threshold and the violation returns.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
bench::QueueRates run_one_vs_n(std::size_t n, sim::TimeNs end) {
  DumbbellConfig cfg;
  cfg.num_senders = n + 1;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 65 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  cfg.buffer_bytes = 4096ull * 1500ull;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (std::size_t i = 1; i <= n; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }
  return bench::measure_queue_rates(sc, 2, sim::milliseconds(10), end);
}
}  // namespace

int main() {
  bench::print_header(
      "Figures 6 & 7 — per-port marking with K=65 pkts",
      "2 DWRR queues 1:1, 10G; 1 vs 8 flows, then 1 vs 40 flows",
      "1:8 recovers ~50/50; 1:40 violates fairness again");

  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  stats::Table table({"setup", "q1(Gbps)", "q2(Gbps)", "q1_share(%)"});
  const auto r8 = run_one_vs_n(8, end);
  table.add_row({"1 vs 8 (Fig. 6)", stats::Table::num(r8.gbps[0]),
                 stats::Table::num(r8.gbps[1]),
                 stats::Table::num(r8.gbps[0] / r8.total * 100.0, 1)});
  const auto r40 = run_one_vs_n(40, end);
  table.add_row({"1 vs 40 (Fig. 7)", stats::Table::num(r40.gbps[0]),
                 stats::Table::num(r40.gbps[1]),
                 stats::Table::num(r40.gbps[0] / r40.total * 100.0, 1)});
  table.print();
  return 0;
}
