// Figure 3: plain per-port marking violates weighted fair sharing.
//
// Two DWRR queues with equal weights; queue 1 carries one flow, queue 2
// carries eight. Per-port K=16 packets marks the lone flow because of the
// other queue's buffer, so it backs off far below its fair 5 Gbps
// (paper: ~2.49 vs ~7.51 Gbps).
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 3 — per-port marking (K=16 pkts), 1 flow vs 8 flows",
      "2 DWRR queues 1:1, 10G; queue1: 1 flow, queue2: 8 flows",
      "victim queue1 collapses to ~2.5G while queue2 takes ~7.5G");

  DumbbellConfig cfg;
  cfg.num_senders = 9;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 16 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (std::size_t i = 1; i <= 8; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }

  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  const auto rates = bench::measure_queue_rates(sc, 2, sim::milliseconds(10), end);

  stats::Table table({"queue", "flows", "tput(Gbps)", "fair_share(Gbps)"});
  table.add_row({"1", "1", stats::Table::num(rates.gbps[0]), "5.00"});
  table.add_row({"2", "8", stats::Table::num(rates.gbps[1]), "5.00"});
  table.print();
  std::printf("total: %.2f Gbps; queue1 share: %.1f%% (fair would be 50%%)\n",
              rates.total, rates.gbps[0] / rates.total * 100.0);
  return 0;
}
