// Extension bench: incast (partition-aggregate) behaviour per scheme.
//
// N synchronized senders each deliver a fixed-size response to one
// aggregator through a multi-queue port — the micro-burst regime the
// paper's related work ([13],[14]) targets. We sweep the fan-in and report
// the 99th-percentile request completion time and drops. PMSB's small port
// threshold keeps latency low, but very large fan-in stresses any fixed
// threshold.
#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
struct IncastResult {
  double p99_us;
  std::uint64_t drops;
  std::uint64_t timeouts;
};

IncastResult run_incast(Scheme scheme, std::size_t fan_in) {
  DumbbellConfig cfg;
  cfg.num_senders = fan_in;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 4;
  cfg.scheduler.weights.assign(4, 1.0);
  cfg.buffer_bytes = 256ull * 1500ull;  // realistic shallow port
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds(18);
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);
  DumbbellScenario sc(cfg);
  apply_scheme_transport(scheme, params, sc.base_rtt(), cfg.transport);

  stats::Summary fct;
  for (std::size_t i = 0; i < fan_in; ++i) {
    const auto idx = sc.add_flow(
        {.sender = i, .service = static_cast<net::ServiceId>(i % 4),
         .bytes = 64'000, .start = 0,
         .pmsbe = cfg.transport.pmsbe_enabled,
         .pmsbe_rtt_threshold = cfg.transport.pmsbe_rtt_threshold});
    sc.flow(idx).sender().set_completion_callback(
        [&fct](sim::TimeNs t) { fct.add(sim::to_microseconds(t)); });
  }
  sc.run(sim::seconds(2));
  std::uint64_t timeouts = 0;
  for (std::size_t f = 0; f < sc.num_flows(); ++f) {
    timeouts += sc.flow(f).sender().stats().timeouts;
  }
  return {fct.percentile(99), sc.bottleneck().stats().dropped_packets, timeouts};
}
}  // namespace

int main() {
  bench::print_header(
      "Extension — incast: N synchronized 64KB responses to one aggregator",
      "DWRR x4 queues, 10G, 256-pkt port buffer; fan-in swept",
      "ECN keeps the burst absorbed without drops until fan-in overwhelms"
      " the buffer; PMSB stays competitive with MQ-ECN/TCN");

  stats::Table table({"fan-in", "scheme", "fct_p99(us)", "drops", "timeouts"}, 12);
  for (std::size_t fan_in : {8u, 16u, 32u, 64u}) {
    for (Scheme scheme : {Scheme::kPmsb, Scheme::kPmsbE, Scheme::kMqEcn,
                          Scheme::kTcn}) {
      const auto r = run_incast(scheme, fan_in);
      table.add_row({std::to_string(fan_in), scheme_name(scheme),
                     stats::Table::num(r.p99_us, 0), std::to_string(r.drops),
                     std::to_string(r.timeouts)});
    }
  }
  table.print();
  return 0;
}
