// Figure 8: PMSB with DWRR, port threshold 12 packets, queue 1 carrying one
// flow against queue 2 carrying four. PMSB preserves the 1:1 weighted share
// at full link utilisation.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 8 — PMSB, DWRR, port K=12 pkts, 1 flow vs 4 flows",
      "2 DWRR queues 1:1, 10G",
      "both queues ~5 Gbps, sum ~10 Gbps (strict weighted fair sharing)");

  DumbbellConfig cfg;
  cfg.num_senders = 5;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (std::size_t i = 1; i <= 4; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }

  bench::BenchManifest manifest("bench_fig08_pmsb_dwrr_1v4");
  telemetry::MetricsRegistry registry;
  if (manifest.enabled()) sc.bind_metrics(registry);

  // Print a short throughput-vs-time series like the paper's figure, then
  // the long-run shares.
  stats::Table series({"t(ms)", "q1(Gbps)", "q2(Gbps)"});
  sim::TimeNs prev_t = 0;
  std::uint64_t prev0 = 0, prev1 = 0;
  const sim::TimeNs end = sim::milliseconds(bench::scaled(50, 250));
  for (sim::TimeNs t = sim::milliseconds(5); t <= end; t += sim::milliseconds(5)) {
    sc.run(t);
    const auto s0 = sc.served_bytes(0);
    const auto s1 = sc.served_bytes(1);
    const double dt = static_cast<double>(t - prev_t);
    series.add_row({stats::Table::num(sim::to_milliseconds(t), 0),
                    stats::Table::num(static_cast<double>(s0 - prev0) * 8.0 / dt),
                    stats::Table::num(static_cast<double>(s1 - prev1) * 8.0 / dt)});
    prev_t = t;
    prev0 = s0;
    prev1 = s1;
  }
  series.print();
  std::printf("drops: %llu, port marks: %llu\n",
              static_cast<unsigned long long>(sc.bottleneck().stats().dropped_packets),
              static_cast<unsigned long long>(sc.bottleneck().stats().marked_enqueue));

  // Whole-run average shares.
  const double dt_total = static_cast<double>(end);
  manifest.set_result("q1_gbps", static_cast<double>(sc.served_bytes(0)) * 8.0 / dt_total);
  manifest.set_result("q2_gbps", static_cast<double>(sc.served_bytes(1)) * 8.0 / dt_total);
  manifest.set_result(
      "drops", static_cast<double>(sc.bottleneck().stats().dropped_packets));
  manifest.set_result(
      "port_marks", static_cast<double>(sc.bottleneck().stats().marked_enqueue));
  manifest.write(manifest.enabled() ? &registry : nullptr);
  return 0;
}
