// Figure 13: PMSB over a hierarchical SP+WFQ scheduler.
//
// Three queues: queue 1 strict-high, queues 2 and 3 equal-weight WFQ below
// it. A rate-capped 5G flow feeds queue 1 from t=0; a greedy flow joins
// queue 2; later 4 greedy flows join queue 3. Expected convergence:
// 5 / 2.5 / 2.5 Gbps — PMSB must not disturb the policy.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 13 — PMSB over SP+WFQ (3 queues: strict-high + WFQ pair)",
      "q1: 5G-capped flow @0ms; q2: 1 flow @10ms; q3: 4 flows @30ms; 10G",
      "throughput converges to 5 / 2.5 / 2.5 Gbps");

  DumbbellConfig cfg;
  cfg.num_senders = 6;
  cfg.scheduler.kind = sched::SchedulerKind::kSpWfq;
  cfg.scheduler.num_queues = 3;
  cfg.scheduler.weights = {1.0, 1.0, 1.0};
  cfg.scheduler.priority_group = {0, 1, 1};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);

  const sim::TimeNs t2 = sim::milliseconds(10);
  const sim::TimeNs t3 = sim::milliseconds(30);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .max_rate = sim::gbps(5)});
  sc.add_flow({.sender = 1, .service = 1, .bytes = 0, .start = t2});
  for (std::size_t i = 2; i < 6; ++i) {
    sc.add_flow({.sender = i, .service = 2, .bytes = 0, .start = t3});
  }

  stats::Table series({"t(ms)", "q1(Gbps)", "q2(Gbps)", "q3(Gbps)"});
  sim::TimeNs prev_t = 0;
  std::vector<std::uint64_t> prev(3, 0);
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 200));
  for (sim::TimeNs t = sim::milliseconds(5); t <= end; t += sim::milliseconds(5)) {
    sc.run(t);
    std::vector<std::string> row = {stats::Table::num(sim::to_milliseconds(t), 0)};
    const double dt = static_cast<double>(t - prev_t);
    for (std::size_t q = 0; q < 3; ++q) {
      const auto s = sc.served_bytes(q);
      row.push_back(stats::Table::num(static_cast<double>(s - prev[q]) * 8.0 / dt));
      prev[q] = s;
    }
    prev_t = t;
    series.add_row(std::move(row));
  }
  series.print();
  return 0;
}
