// Microbenchmarks for the simulation substrate: event-queue throughput and
// scheduler enqueue/dequeue cost — the knobs that bound how large a paper
// reproduction run can be.
#include <benchmark/benchmark.h>

#include "sched/dwrr.hpp"
#include "sched/wfq.hpp"
#include "sim/simulator.hpp"

using namespace pmsb;

namespace {

void BM_EventScheduleAndRun(benchmark::State& state) {
  const std::int64_t batch = state.range(0);
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t fired = 0;
    for (std::int64_t i = 0; i < batch; ++i) {
      sim.schedule_at((i * 7919) % 100000, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_EventScheduleAndRun)->Arg(1000)->Arg(100000);

void BM_EventCascade(benchmark::State& state) {
  // Self-rescheduling chain — the transport timer pattern.
  for (auto _ : state) {
    sim::Simulator sim;
    std::int64_t depth = 0;
    std::function<void()> chain = [&] {
      if (++depth < 10000) sim.schedule_in(1, chain);
    };
    sim.schedule_at(0, chain);
    sim.run();
    benchmark::DoNotOptimize(depth);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_EventCascade);

sched::Packet make_pkt() {
  sched::Packet p;
  p.size_bytes = 1500;
  return p;
}

void BM_DwrrEnqueueDequeue(benchmark::State& state) {
  sched::DwrrScheduler s(8, std::vector<double>(8, 1.0));
  // Pre-fill so the scheduler stays busy.
  for (int q = 0; q < 8; ++q) {
    for (int i = 0; i < 16; ++i) s.enqueue(q, make_pkt());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = s.dequeue(static_cast<sim::TimeNs>(i++));
    s.enqueue(out->queue, make_pkt());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DwrrEnqueueDequeue);

void BM_WfqEnqueueDequeue(benchmark::State& state) {
  sched::WfqScheduler s(8, std::vector<double>(8, 1.0));
  for (int q = 0; q < 8; ++q) {
    for (int i = 0; i < 16; ++i) s.enqueue(q, make_pkt());
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto out = s.dequeue(static_cast<sim::TimeNs>(i++));
    s.enqueue(out->queue, make_pkt());
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WfqEnqueueDequeue);

}  // namespace

BENCHMARK_MAIN();
