// Microbenchmarks for the simulation substrate: event-queue throughput and
// scheduler enqueue/dequeue cost — the knobs that bound how large a paper
// reproduction run can be.
//
// Timing is hand-rolled (warmup + timed reps, median/MAD) rather than a
// benchmark framework so the numbers land in the same pmsb.bench/1 JSON the
// regression plane trends: set PMSB_BENCH_JSON=BENCH_engine.json to get the
// machine-readable report next to the printed table.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "regress/bench_json.hpp"
#include "sched/dwrr.hpp"
#include "sched/wfq.hpp"
#include "sim/simulator.hpp"
#include "switchlib/buffer_policy.hpp"
#include "switchlib/buffer_pool.hpp"
#include "telemetry/profiler.hpp"

using namespace pmsb;

namespace {

// Attached to every benched simulator ONLY when PMSB_PROFILE_JSON is set:
// the dispatch hook's two clock reads per event would skew the throughput
// numbers the regression plane trends, so baseline runs stay unhooked.
telemetry::Profiler* g_profiler = nullptr;

/// Runs `fn` (one rep = `events` work units) warmup + reps times and returns
/// the timed sample as a BenchRecord, printing one table row.
regress::BenchRecord time_bench(const std::string& name, std::uint64_t events,
                                const std::function<void()>& fn) {
  const int warmup = 1;
  const int reps = bench::full_scale() ? 9 : 5;
  // One profiler scope per bench kind (profiled runs only), so `pmsbtrace
  // profile` can rank the benches by count and self wall time.
  const telemetry::Profiler::KindId kind =
      g_profiler != nullptr ? g_profiler->intern("bench." + name) : 0;
  auto run_rep = [&] {
    telemetry::ProfileScope scope(g_profiler, kind);
    fn();
  };
  for (int i = 0; i < warmup; ++i) run_rep();
  std::vector<double> wall;
  wall.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    run_rep();
    wall.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
  }
  const auto rec = regress::make_bench_record(name, wall, events);
  std::printf("  %-28s %9.3f ms median  %11.4g ev/s (mad %.2g, %d reps)\n",
              name.c_str(), rec.wall_s_median * 1e3, rec.events_per_s_median,
              rec.events_per_s_mad, rec.reps);
  return rec;
}

volatile std::uint64_t g_sink = 0;  // keeps the measured loops observable

void event_schedule_and_run(sim::QueueBackend backend, std::int64_t batch) {
  sim::Simulator sim(backend);
  if (g_profiler != nullptr) g_profiler->attach(sim);
  std::int64_t fired = 0;
  for (std::int64_t i = 0; i < batch; ++i) {
    sim.schedule_at((i * 7919) % 100000, [&fired] { ++fired; });
  }
  sim.run();
  g_sink = static_cast<std::uint64_t>(fired);
  if (g_profiler != nullptr) g_profiler->detach();
}

void event_cascade(sim::QueueBackend backend, std::int64_t depth_target) {
  // Self-rescheduling chain — the transport timer pattern.
  sim::Simulator sim(backend);
  if (g_profiler != nullptr) g_profiler->attach(sim);
  std::int64_t depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < depth_target) sim.schedule_in(1, chain);
  };
  sim.schedule_at(0, chain);
  sim.run();
  g_sink = static_cast<std::uint64_t>(depth);
  if (g_profiler != nullptr) g_profiler->detach();
}

void timer_churn(sim::QueueBackend backend, std::int64_t batch) {
  // The retransmission-timer pattern: most timers are cancelled before they
  // fire. Exercises the O(1) generation-validated cancel and the tombstone
  // compactor (g_sink folds in queue_compactions so it can't be elided).
  sim::Simulator sim(backend);
  if (g_profiler != nullptr) g_profiler->attach(sim);
  std::vector<sim::EventId> ids;
  ids.reserve(static_cast<std::size_t>(batch));
  std::int64_t fired = 0;
  for (std::int64_t i = 0; i < batch; ++i) {
    ids.push_back(sim.schedule_at((i * 7919) % 100000, [&fired] { ++fired; }));
  }
  for (std::int64_t i = 0; i < batch; ++i) {
    if (i % 4 != 0) sim.cancel(ids[static_cast<std::size_t>(i)]);
  }
  sim.run();
  g_sink = static_cast<std::uint64_t>(fired) + sim.queue_compactions();
  if (g_profiler != nullptr) g_profiler->detach();
}

void buffer_admission_churn(const switchlib::BufferPolicyConfig& policy_cfg,
                            std::int64_t ops) {
  // The per-packet admission hot path a Port runs: policy->admit() against a
  // live ledger, charge on accept, release on the simulated departure. Eight
  // slots churn in round-robin with staggered packet sizes so occupancy (and
  // with it every policy's threshold math) keeps moving; refusals count into
  // g_sink so the decision branch can't be elided.
  constexpr std::size_t kPorts = 8;
  switchlib::BufferPool pool(96 * 1500);
  std::vector<switchlib::BufferPool::SlotId> slots;
  std::vector<std::uint64_t> port_bytes(kPorts, 0);
  for (std::size_t p = 0; p < kPorts; ++p) slots.push_back(pool.register_slot());
  const auto policy = switchlib::make_buffer_policy(policy_cfg);
  std::uint64_t refused = 0;
  // A sliding window of in-flight (slot, bytes) charges; departures lag
  // arrivals by kPorts * 4 packets, keeping the pool part-full.
  std::vector<std::pair<std::size_t, std::uint64_t>> in_flight;
  std::size_t drain = 0;
  for (std::int64_t i = 0; i < ops; ++i) {
    const std::size_t p = static_cast<std::size_t>(i) % kPorts;
    const std::uint64_t size = 64 + (static_cast<std::uint64_t>(i) * 577) % 1437;
    const switchlib::AdmissionRequest req{.packet_bytes = size,
                                          .port_bytes = port_bytes[p],
                                          .port_budget = 32 * 1500,
                                          .pool = &pool};
    if (policy->admit(req)) {
      ++refused;
    } else {
      pool.charge(slots[p], size);
      port_bytes[p] += size;
      in_flight.emplace_back(p, size);
    }
    while (in_flight.size() - drain > kPorts * 4) {
      const auto [dp, dsize] = in_flight[drain++];
      pool.release(slots[dp], dsize);
      port_bytes[dp] -= dsize;
    }
    if (drain > 4096) {  // compact the FIFO's consumed prefix
      in_flight.erase(in_flight.begin(),
                      in_flight.begin() + static_cast<std::ptrdiff_t>(drain));
      drain = 0;
    }
  }
  g_sink = refused + pool.bytes();
}

sched::Packet make_pkt() {
  sched::Packet p;
  p.size_bytes = 1500;
  return p;
}

template <typename Scheduler>
void scheduler_churn(std::int64_t ops) {
  Scheduler s(8, std::vector<double>(8, 1.0));
  // Pre-fill so the scheduler stays busy.
  for (int q = 0; q < 8; ++q) {
    for (int i = 0; i < 16; ++i) s.enqueue(static_cast<std::size_t>(q), make_pkt());
  }
  std::uint64_t touched = 0;
  for (std::int64_t i = 0; i < ops; ++i) {
    auto out = s.dequeue(static_cast<sim::TimeNs>(i));
    touched += out->queue;
    s.enqueue(out->queue, make_pkt());
  }
  g_sink = touched;
}

}  // namespace

int main() {
  bench::print_header(
      "Engine microbenchmarks — event queue and scheduler hot paths",
      "isolated simulator / scheduler loops, no network model",
      "throughput here bounds the reachable scale of every figure bench");

  const std::int64_t cascade_depth = 10000;
  const std::int64_t sched_ops =
      static_cast<std::int64_t>(bench::scaled(200000, 2000000));

  telemetry::Profiler profiler;
  const char* profile_path = std::getenv("PMSB_PROFILE_JSON");
  if (profile_path != nullptr && profile_path[0] != '\0') g_profiler = &profiler;

  regress::BenchReport report;
  report.tool = "bench_micro_engine";
  report.scale = bench::full_scale() ? "full" : "quick";
  // Event-kernel benches run once per queue backend. The unsuffixed names
  // are the binary heap (they predate the knob, so baselines keep trending);
  // "@cal" is the calendar queue on the identical workload.
  const struct {
    sim::QueueBackend backend;
    const char* suffix;
  } kBackends[] = {{sim::QueueBackend::kHeap, ""},
                   {sim::QueueBackend::kCalendar, "@cal"}};
  for (const auto& b : kBackends) {
    report.benchmarks.push_back(
        time_bench(std::string("event_schedule_and_run/1e3") + b.suffix, 1000,
                   [&] { event_schedule_and_run(b.backend, 1000); }));
    report.benchmarks.push_back(
        time_bench(std::string("event_schedule_and_run/1e5") + b.suffix,
                   100000, [&] { event_schedule_and_run(b.backend, 100000); }));
    report.benchmarks.push_back(time_bench(
        std::string("event_cascade/10k") + b.suffix,
        static_cast<std::uint64_t>(cascade_depth),
        [&] { event_cascade(b.backend, cascade_depth); }));
    report.benchmarks.push_back(
        time_bench(std::string("timer_churn/1e5") + b.suffix, 100000,
                   [&] { timer_churn(b.backend, 100000); }));
  }
  report.benchmarks.push_back(
      time_bench("dwrr_enqueue_dequeue", static_cast<std::uint64_t>(sched_ops),
                 [&] { scheduler_churn<sched::DwrrScheduler>(sched_ops); }));
  report.benchmarks.push_back(
      time_bench("wfq_enqueue_dequeue", static_cast<std::uint64_t>(sched_ops),
                 [&] { scheduler_churn<sched::WfqScheduler>(sched_ops); }));
  // Per-packet admission cost of each shared-buffer policy (admit + ledger
  // charge/release), the new branch on the Port::handle hot path.
  const struct {
    const char* name;
    switchlib::BufferPolicyConfig cfg;
  } kPolicies[] = {
      {"buffer_admit/static", {.kind = switchlib::BufferPolicyKind::kStaticPerPort}},
      {"buffer_admit/equal",
       {.kind = switchlib::BufferPolicyKind::kStaticEqualDivision}},
      {"buffer_admit/dt",
       {.kind = switchlib::BufferPolicyKind::kDynamicThresholds, .dt_alpha = 1.0}},
  };
  for (const auto& p : kPolicies) {
    report.benchmarks.push_back(
        time_bench(p.name, static_cast<std::uint64_t>(sched_ops),
                   [&] { buffer_admission_churn(p.cfg, sched_ops); }));
  }

  regress::maybe_write_bench_json(report);
  if (g_profiler != nullptr && telemetry::maybe_write_profile_json(*g_profiler)) {
    std::printf("wrote %s (pmsb.profile/1, %zu scopes)\n", profile_path,
                g_profiler->num_kinds());
  }
  return 0;
}
