// Figure 10: PMSB holds weighted fair sharing even under heavy traffic —
// queue 1 with a single flow against queue 2 with one hundred flows.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 10 — PMSB, DWRR, port K=12 pkts, 1 flow vs 100 flows",
      "2 DWRR queues 1:1, 10G, 101 senders",
      "both queues stay at ~5 Gbps despite the 1:100 flow imbalance");

  const std::size_t n = bench::scaled(100, 100);
  DumbbellConfig cfg;
  cfg.num_senders = n + 1;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  cfg.buffer_bytes = 4096ull * 1500ull;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (std::size_t i = 1; i <= n; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
  }

  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  const auto rates = bench::measure_queue_rates(sc, 2, sim::milliseconds(10), end);
  stats::Table table({"queue", "flows", "tput(Gbps)", "share(%)"});
  table.add_row({"1", "1", stats::Table::num(rates.gbps[0]),
                 stats::Table::num(rates.gbps[0] / rates.total * 100.0, 1)});
  table.add_row({"2", std::to_string(n), stats::Table::num(rates.gbps[1]),
                 stats::Table::num(rates.gbps[1] / rates.total * 100.0, 1)});
  table.print();
  std::printf("total: %.2f Gbps, drops: %llu\n", rates.total,
              static_cast<unsigned long long>(sc.bottleneck().stats().dropped_packets));
  return 0;
}
