// Figure 9: RTT distribution of the queue-2 flows in the 1-vs-4 setting
// under PMSB, PMSB(e), MQ-ECN, TCN and per-queue standard marking.
//
// Paper: PMSB achieves ~63% lower average/99th RTT than per-queue standard;
// PMSB(e) ~56% lower.
#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

stats::Summary run_scheme(Scheme scheme, sim::TimeNs end) {
  DumbbellConfig cfg;
  cfg.num_senders = 5;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds(18);  // loaded RTT of this topology
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);
  DumbbellScenario sc(cfg);
  apply_scheme_transport(scheme, params, sc.base_rtt(), cfg.transport);

  const bool pmsbe = cfg.transport.pmsbe_enabled;
  const sim::TimeNs thr = cfg.transport.pmsbe_rtt_threshold;
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .pmsbe = pmsbe, .pmsbe_rtt_threshold = thr});
  stats::Summary rtt;
  for (std::size_t i = 1; i <= 4; ++i) {
    const auto idx = sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0,
                                  .pmsbe = pmsbe, .pmsbe_rtt_threshold = thr});
    sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
      if (sc.simulator().now() > sim::milliseconds(5)) {
        rtt.add(sim::to_microseconds(t));
      }
    });
  }
  sc.run(end);
  return rtt;
}

}  // namespace

int main() {
  bench::print_header(
      "Figure 9 — RTT distribution of queue-2 flows (1 vs 4 setting)",
      "2 DWRR queues 1:1, 10G; PMSB/PMSB(e) port K=12 pkts, MQ-ECN std K,"
      " TCN T_k=RTT",
      "PMSB ~63% and PMSB(e) ~56% lower avg/p99 RTT than per-queue standard");

  const sim::TimeNs end = sim::milliseconds(bench::scaled(40, 200));
  stats::Table table({"scheme", "rtt_avg(us)", "rtt_p50(us)", "rtt_p99(us)"});
  double perqueue_avg = 0.0, perqueue_p99 = 0.0;
  struct Row {
    Scheme scheme;
    const char* label;
  };
  for (const auto& row : {Row{Scheme::kPerQueueStd, "PerQueue-Std"},
                          Row{Scheme::kMqEcn, "MQ-ECN"},
                          Row{Scheme::kTcn, "TCN"},
                          Row{Scheme::kPmsb, "PMSB"},
                          Row{Scheme::kPmsbE, "PMSB(e)"}}) {
    const auto rtt = run_scheme(row.scheme, end);
    if (row.scheme == Scheme::kPerQueueStd) {
      perqueue_avg = rtt.mean();
      perqueue_p99 = rtt.percentile(99);
    }
    table.add_row({row.label, stats::Table::num(rtt.mean()),
                   stats::Table::num(rtt.percentile(50)),
                   stats::Table::num(rtt.percentile(99))});
    if (row.scheme == Scheme::kPmsb || row.scheme == Scheme::kPmsbE) {
      std::printf("%s vs PerQueue-Std: avg -%.1f%%, p99 -%.1f%%\n", row.label,
                  (perqueue_avg - rtt.mean()) / perqueue_avg * 100.0,
                  (perqueue_p99 - rtt.percentile(99)) / perqueue_p99 * 100.0);
    }
  }
  table.print();
  return 0;
}
