// Figure 1: per-queue marking with the STANDARD threshold inflates RTT as
// the number of active queues grows.
//
// 8 DCTCP flows to one receiver; per-queue K = 16 packets; the flows are
// spread evenly over 1..8 queues. With q active queues the port holds about
// q*K, so RTT grows roughly linearly in q.
#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 1 — per-queue marking, standard threshold (K=16 pkts)",
      "8 flows -> 1 receiver, 10G, DWRR, queues swept 1..8",
      "RTT distribution shifts up rapidly with the number of queues");

  stats::Table table({"queues", "rtt_avg(us)", "rtt_p50(us)", "rtt_p95(us)",
                      "rtt_p99(us)", "tput(Gbps)"});
  const sim::TimeNs end = sim::milliseconds(bench::scaled(40, 200));

  for (std::size_t queues = 1; queues <= 8; ++queues) {
    DumbbellConfig cfg;
    cfg.num_senders = 8;
    cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
    cfg.scheduler.num_queues = queues;
    cfg.scheduler.weights.assign(queues, 1.0);
    cfg.marking.kind = ecn::MarkingKind::kPerQueueStandard;
    cfg.marking.threshold_bytes = 16 * 1500;
    cfg.marking.weights = cfg.scheduler.weights;
    DumbbellScenario sc(cfg);

    stats::Summary rtt;
    for (std::size_t i = 0; i < 8; ++i) {
      const auto idx = sc.add_flow({.sender = i,
                                    .service = static_cast<net::ServiceId>(i % queues),
                                    .bytes = 0,
                                    .start = 0});
      sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
        if (sc.simulator().now() > sim::milliseconds(5)) {
          rtt.add(sim::to_microseconds(t));
        }
      });
    }
    const auto rates = bench::measure_queue_rates(sc, queues, sim::milliseconds(5), end);
    table.add_row({std::to_string(queues), stats::Table::num(rtt.mean()),
                   stats::Table::num(rtt.percentile(50)),
                   stats::Table::num(rtt.percentile(95)),
                   stats::Table::num(rtt.percentile(99)),
                   stats::Table::num(rates.total)});
  }
  table.print();
  return 0;
}
