// Ablation: PMSB(e) sensitivity to the RTT threshold (§V's "main
// challenge" — how to pick the time threshold).
//
// 1-vs-8 flows under plain per-port marking with PMSB(e) senders; the RTT
// threshold is swept around the preset formula (base RTT + port-threshold
// drain time). Too low -> victims still back off (unfair); too high -> even
// genuinely congested flows ignore marks and latency grows.
#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Ablation — PMSB(e) RTT threshold sweep",
      "1 flow vs 8 flows, 2 DWRR queues 1:1, per-port K=12 pkts,"
      " rtt_threshold as multiple of the preset",
      "low thresholds leave the victim unprotected; around 1.0x restores"
      " fairness; very high thresholds inflate latency");

  SchemeParams params;
  params.capacity = sim::gbps(10);
  params.rtt = sim::microseconds(18);
  params.weights = {1.0, 1.0};

  stats::Table table({"threshold(x)", "thr(us)", "q1_share(%)", "rtt_p99(us)",
                      "tput(Gbps)", "ign_ratio(%)"});
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  for (double factor : {0.0, 0.5, 0.8, 1.0, 1.3, 2.0, 4.0}) {
    DumbbellConfig cfg;
    cfg.num_senders = 9;
    cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
    cfg.scheduler.num_queues = 2;
    cfg.scheduler.weights = {1.0, 1.0};
    cfg.marking = make_scheme_marking(Scheme::kPmsbE, params);
    cfg.buffer_bytes = 4096ull * 1500ull;
    DumbbellScenario sc(cfg);
    const auto thr = static_cast<sim::TimeNs>(
        factor * static_cast<double>(pmsbe_rtt_threshold(params, sc.base_rtt())));
    sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
                 .pmsbe = true, .pmsbe_rtt_threshold = thr});
    stats::Summary rtt;
    for (std::size_t i = 1; i <= 8; ++i) {
      const auto idx = sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0,
                                    .pmsbe = true, .pmsbe_rtt_threshold = thr});
      sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
        if (sc.simulator().now() > sim::milliseconds(10)) {
          rtt.add(sim::to_microseconds(t));
        }
      });
    }
    const auto rates = bench::measure_queue_rates(sc, 2, sim::milliseconds(10), end);
    std::uint64_t ece = 0, ign = 0;
    for (std::size_t f = 0; f < sc.num_flows(); ++f) {
      ece += sc.flow(f).sender().stats().ece_acks;
      ign += sc.flow(f).sender().stats().ece_ignored;
    }
    table.add_row({stats::Table::num(factor, 2),
                   stats::Table::num(sim::to_microseconds(thr), 1),
                   stats::Table::num(rates.gbps[0] / rates.total * 100.0, 1),
                   stats::Table::num(rtt.percentile(99), 1),
                   stats::Table::num(rates.total),
                   stats::Table::num(ece ? 100.0 * ign / ece : 0.0, 1)});
  }
  table.print();
  return 0;
}
