// Validation of the §IV.D steady-state model against simulation.
//
// n synchronized DCTCP flows share one queue with a per-queue threshold k.
// The model predicts the buffer sawtooth:
//   Q_max = k + n              (Eq. 8, in segments)
//   A     = sqrt(2n(CxRTT+k))/2  (Eq. 9)
//   Q_min = Q_max - A
// We trace the real queue and report predicted vs measured peak/trough for
// several (n, k) points. The model's worst case (Eq. 10/11) is what Theorem
// IV.1's bound is derived from, so agreement here grounds the theorem.
#include "bench_common.hpp"
#include "core/thresholds.hpp"
#include "stats/queue_trace.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Model validation — §IV.D steady-state sawtooth (Eqs. 8-10)",
      "n flows, 1 queue, 10G, per-queue K; predicted vs measured Q_max/Q_min",
      "measured peaks/troughs track the analytical sawtooth");

  stats::Table table({"n", "k(pkts)", "Qmax_pred", "Qmax_meas", "Qmin_pred",
                      "Qmin_meas"}, 11);
  const double mss = 1500.0;
  for (const auto& [n, k_pkts] : std::vector<std::pair<std::size_t, double>>{
           {2, 16}, {4, 16}, {8, 16}, {4, 30}, {8, 30}}) {
    DumbbellConfig cfg;
    cfg.num_senders = n;
    cfg.link_delay = sim::microseconds(5);  // sizeable BDP for a clean sawtooth
    cfg.scheduler.kind = sched::SchedulerKind::kFifo;
    cfg.scheduler.num_queues = 1;
    cfg.marking.kind = ecn::MarkingKind::kPerQueueStandard;
    cfg.marking.threshold_bytes = static_cast<std::uint64_t>(k_pkts * 1500);
    DumbbellScenario sc(cfg);
    for (std::size_t i = 0; i < n; ++i) {
      sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
    }
    // Steady state only: start tracing after convergence.
    sc.run(sim::milliseconds(20));
    stats::QueueTracer tracer(
        sc.simulator(), [&sc] { return sc.bottleneck().buffered_bytes(); },
        sim::microseconds(1));
    sc.run(sim::milliseconds(bench::scaled(60, 200)));

    std::uint64_t peak = 0, trough = UINT64_MAX;
    for (const auto& s : tracer.samples()) {
      peak = std::max(peak, s.bytes);
      trough = std::min(trough, s.bytes);
    }
    const sim::TimeNs rtt = sc.base_rtt();
    const double cxrtt = static_cast<double>(sim::bdp_bytes(cfg.link_rate, rtt));
    const double k_bytes = k_pkts * mss;
    const double qmax_pred = core::q_max_bytes(k_bytes, static_cast<double>(n), mss);
    const double qmin_pred = core::q_min_bytes(k_bytes, static_cast<double>(n), 1.0,
                                               cxrtt, mss);
    table.add_row({std::to_string(n), stats::Table::num(k_pkts, 0),
                   stats::Table::num(qmax_pred / mss, 1),
                   stats::Table::num(static_cast<double>(peak) / mss, 1),
                   stats::Table::num(std::max(qmin_pred, 0.0) / mss, 1),
                   stats::Table::num(static_cast<double>(trough) / mss, 1)});
  }
  table.print();
  std::printf("(predictions use the unloaded base RTT; the real operating RTT"
              " includes queueing, so cuts are a little deeper and measured"
              " troughs sit slightly below the model's)\n");
  return 0;
}
