// Figure 2: per-queue marking with a FRACTIONAL threshold loses throughput
// when few queues are active.
//
// A single flow through one of 8 queues. With the standard K=16 packets the
// flow reaches line rate; with the fractional share K=2 packets the window
// is cut so hard that the pipe cannot stay full (paper: ~6% loss).
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
double run_with_threshold(std::uint64_t k_packets, sim::TimeNs end) {
  DumbbellConfig cfg;
  cfg.num_senders = 1;
  // The paper's ~80 us operating RTT: underflow at K=2 needs the DCTCP
  // oscillation amplitude (~sqrt(2*BDP)/2 packets) to exceed K (§IV.D).
  cfg.link_delay = sim::microseconds(10);
  // Make the switch egress the bottleneck even for one flow (otherwise the
  // host NIC at the same rate absorbs the queue and ECN never engages).
  cfg.sender_uplink_rate = sim::gbps(40);
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 8;
  cfg.scheduler.weights.assign(8, 1.0);
  cfg.marking.kind = ecn::MarkingKind::kPerQueueStandard;  // uniform K per queue
  cfg.marking.threshold_bytes = k_packets * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  const auto rates =
      bench::measure_queue_rates(sc, 8, sim::milliseconds(5), end);
  return rates.total;
}
}  // namespace

int main() {
  bench::print_header(
      "Figure 2 — per-queue marking, fractional threshold",
      "1 flow, 8 queues, 10G; per-queue K = 2 pkts (fractional) vs 16 pkts",
      "K=16 reaches ~10G; K=2 loses several percent of throughput");

  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  stats::Table table({"threshold", "tput(Gbps)", "loss_vs_16pkt(%)"});
  const double full = run_with_threshold(16, end);
  const double frac = run_with_threshold(2, end);
  table.add_row({"16 pkts", stats::Table::num(full), "0.00"});
  table.add_row({"2 pkts", stats::Table::num(frac),
                 stats::Table::num((full - frac) / full * 100.0)});
  table.print();
  return 0;
}
