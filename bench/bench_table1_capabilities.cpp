// Table I: qualitative comparison of MQ-ECN, TCN, PMSB and PMSB(e),
// queried from the live scheme objects rather than hard-coded.
#include <memory>

#include "bench_common.hpp"
#include "ecn/mq_ecn.hpp"
#include "ecn/per_port.hpp"
#include "ecn/pmsb_marking.hpp"
#include "ecn/tcn.hpp"

using namespace pmsb;
using namespace pmsb::ecn;

namespace {
const char* yn(bool v) { return v ? "yes" : "no"; }
}  // namespace

int main() {
  bench::print_header("Table I — scheme capability comparison",
                      "capability flags reported by the scheme implementations",
                      "MQ-ECN: no generic schedulers; TCN: no early"
                      " notification; only PMSB(e) needs no switch changes");

  MqEcnConfig mc;
  mc.quantum_bytes = {1500.0};
  MqEcnMarking mqecn(std::move(mc));
  TcnMarking tcn(sim::microseconds(78));
  PmsbMarking pmsb(12 * 1500);
  // PMSB(e) runs plain per-port marking in the switch; the selective
  // blindness lives at end hosts, which is why no switch change is needed.
  PerPortMarking pmsbe_switch_side(12 * 1500);

  stats::Table table({"capability", "MQ-ECN", "TCN", "PMSB", "PMSB(e)"}, 22);
  table.add_row({"generic scheduler", yn(mqecn.supports_generic()),
                 yn(tcn.supports_generic()), yn(pmsb.supports_generic()),
                 yn(pmsbe_switch_side.supports_generic())});
  table.add_row({"round-based scheduler", yn(mqecn.supports_round_based()),
                 yn(tcn.supports_round_based()), yn(pmsb.supports_round_based()),
                 yn(pmsbe_switch_side.supports_round_based())});
  table.add_row({"early notification", yn(mqecn.early_notification()),
                 yn(tcn.early_notification()), yn(pmsb.early_notification()),
                 yn(pmsbe_switch_side.early_notification())});
  table.add_row({"no switch modification", yn(!mqecn.requires_switch_modification()),
                 yn(!tcn.requires_switch_modification()),
                 yn(!pmsb.requires_switch_modification()),
                 yn(!pmsbe_switch_side.requires_switch_modification())});
  table.print();
  return 0;
}
