// Figure 14: PMSB over Strict Priority.
//
// Queue 1 (highest) carries a 5G-capped flow, queue 2 a 3G-capped flow,
// queue 3 a greedy flow, started in stages. SP must deliver 5 / 3 / 2 Gbps
// and PMSB must not disturb it.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 14 — PMSB over SP (3 priority queues)",
      "q1: 5G-capped @0ms; q2: 3G-capped @10ms; q3: greedy @30ms; 10G",
      "throughput converges to 5 / 3 / 2 Gbps, higher priorities untouched");

  DumbbellConfig cfg;
  cfg.num_senders = 3;
  cfg.scheduler.kind = sched::SchedulerKind::kSp;
  cfg.scheduler.num_queues = 3;
  cfg.scheduler.weights = {1.0, 1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);

  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .max_rate = sim::gbps(5)});
  sc.add_flow({.sender = 1, .service = 1, .bytes = 0, .start = sim::milliseconds(10),
               .max_rate = sim::gbps(3)});
  sc.add_flow({.sender = 2, .service = 2, .bytes = 0, .start = sim::milliseconds(30)});

  stats::Table series({"t(ms)", "q1(Gbps)", "q2(Gbps)", "q3(Gbps)"});
  sim::TimeNs prev_t = 0;
  std::vector<std::uint64_t> prev(3, 0);
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 200));
  for (sim::TimeNs t = sim::milliseconds(5); t <= end; t += sim::milliseconds(5)) {
    sc.run(t);
    std::vector<std::string> row = {stats::Table::num(sim::to_milliseconds(t), 0)};
    const double dt = static_cast<double>(t - prev_t);
    for (std::size_t q = 0; q < 3; ++q) {
      const auto s = sc.served_bytes(q);
      row.push_back(stats::Table::num(static_cast<double>(s - prev[q]) * 8.0 / dt));
      prev[q] = s;
    }
    prev_t = t;
    series.add_row(std::move(row));
  }
  series.print();
  return 0;
}
