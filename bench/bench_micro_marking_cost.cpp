// Microbenchmark: per-packet cost of each marking decision (§IV.C's
// complexity claim — PMSB needs only two comparisons, like RED/ECN, while
// MQ-ECN keeps a moving-average register and TCN handles timestamps).
#include <benchmark/benchmark.h>

#include "core/pmsb_algorithm.hpp"
#include "ecn/mq_ecn.hpp"
#include "ecn/per_port.hpp"
#include "ecn/per_queue.hpp"
#include "ecn/pmsb_marking.hpp"
#include "ecn/tcn.hpp"

using namespace pmsb;
using namespace pmsb::ecn;

namespace {

PortSnapshot make_snapshot(std::uint64_t i) {
  PortSnapshot s;
  s.port_bytes = (i * 37) % 120'000;
  s.queue_bytes = (i * 17) % 60'000;
  s.queue = i % 2;
  s.weight = 1.0;
  s.weight_sum = 2.0;
  s.num_queues = 2;
  return s;
}

void BM_PerPort(benchmark::State& state) {
  PerPortMarking m(97'500);
  net::Packet pkt;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.should_mark(make_snapshot(++i), pkt, MarkPoint::kEnqueue, 0));
  }
}
BENCHMARK(BM_PerPort);

void BM_PerQueue(benchmark::State& state) {
  PerQueueMarking m({48'750, 48'750});
  net::Packet pkt;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.should_mark(make_snapshot(++i), pkt, MarkPoint::kEnqueue, 0));
  }
}
BENCHMARK(BM_PerQueue);

void BM_Pmsb(benchmark::State& state) {
  PmsbMarking m(18'000);
  net::Packet pkt;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.should_mark(make_snapshot(++i), pkt, MarkPoint::kEnqueue, 0));
  }
}
BENCHMARK(BM_Pmsb);

void BM_PmsbPureFunction(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    ++i;
    benchmark::DoNotOptimize(core::pmsb_should_mark((i * 37) % 120'000, 18'000,
                                                    (i * 17) % 60'000, 1.0, 2.0));
  }
}
BENCHMARK(BM_PmsbPureFunction);

void BM_MqEcn(benchmark::State& state) {
  MqEcnConfig cfg;
  cfg.quantum_bytes = {1500.0, 1500.0};
  MqEcnMarking m(std::move(cfg));
  // Give it a live round estimate so the dynamic path is exercised.
  for (int r = 0; r < 16; ++r) m.on_round_complete(r * 3000);
  net::Packet pkt;
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        m.should_mark(make_snapshot(++i), pkt, MarkPoint::kEnqueue, 0));
  }
}
BENCHMARK(BM_MqEcn);

void BM_Tcn(benchmark::State& state) {
  TcnMarking m(sim::microseconds(78));
  net::Packet pkt;
  std::uint64_t i = 0;
  for (auto _ : state) {
    pkt.enqueue_time = static_cast<sim::TimeNs>(i * 11 % 1'000'000);
    benchmark::DoNotOptimize(m.should_mark(make_snapshot(++i), pkt,
                                           MarkPoint::kDequeue,
                                           static_cast<sim::TimeNs>(i * 13)));
  }
}
BENCHMARK(BM_Tcn);

}  // namespace

BENCHMARK_MAIN();
