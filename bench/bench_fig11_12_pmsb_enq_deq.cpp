// Figures 11 & 12: PMSB and PMSB(e) deliver congestion information early.
//
// 4 flows into one queue at 10 Gbps, port threshold 12 packets. Marking at
// dequeue reduces the slow-start buffer peak by ~20% versus enqueue marking
// (paper: 82 pkts -> ~20% lower), for both the switch (PMSB) and end-host
// (PMSB(e)) variants.
#include "bench_common.hpp"
#include "stats/queue_trace.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
double run_peak(Scheme scheme, ecn::MarkPoint point) {
  DumbbellConfig cfg;
  cfg.num_senders = 4;
  // Base RTT ~10.5 us against a 12-packet port threshold whose drain time
  // is 14.4 us: the queueing delay dominates the control loop, which is the
  // regime where the mark point's feedback timing shows (as in the paper).
  cfg.link_delay = sim::microseconds(2);
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds_f(85.2);  // gives the paper's 12-pkt port K
  params.weights = {1.0};
  params.point = point;
  cfg.marking = make_scheme_marking(scheme, params);
  DumbbellScenario sc(cfg);
  apply_scheme_transport(scheme, params, sc.base_rtt(), cfg.transport);
  if (scheme == Scheme::kPmsbE) {
    // The paper's Fig. 12 uses an RTT threshold of 14.4 us — just the drain
    // time of the 12-packet port threshold, with no base-RTT allowance. All
    // four flows share the congested queue, so nobody needs protecting and
    // a tight threshold lets the dequeue-marking advantage show.
    cfg.transport.pmsbe_rtt_threshold =
        sim::serialization_delay(12 * 1500, cfg.link_rate);
  }
  stats::QueueTracer tracer(
      sc.simulator(), [&sc] { return sc.bottleneck().buffered_bytes(); },
      sim::microseconds(1));
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0,
                 .pmsbe = cfg.transport.pmsbe_enabled,
                 .pmsbe_rtt_threshold = cfg.transport.pmsbe_rtt_threshold});
  }
  sc.run(sim::milliseconds(bench::scaled(20, 100)));
  return tracer.peak_bytes() / 1500.0;
}
}  // namespace

int main() {
  bench::print_header(
      "Figures 11 & 12 — PMSB / PMSB(e) buffer occupancy, enqueue vs dequeue",
      "4 flows, 1 queue, 10G, port K=12 pkts",
      "dequeue marking lowers the slow-start peak by ~20% for both variants");

  stats::Table table({"scheme", "mark point", "peak(pkts)", "reduction(%)"});
  for (Scheme scheme : {Scheme::kPmsb, Scheme::kPmsbE}) {
    const double enq = run_peak(scheme, ecn::MarkPoint::kEnqueue);
    const double deq = run_peak(scheme, ecn::MarkPoint::kDequeue);
    const std::string name = scheme_name(scheme);
    table.add_row({name, "enqueue", stats::Table::num(enq, 1), "0.0"});
    table.add_row({name, "dequeue", stats::Table::num(deq, 1),
                   stats::Table::num((enq - deq) / enq * 100.0, 1)});
  }
  table.print();
  return 0;
}
