// Ablation: empirical check of Theorem IV.1.
//
// The theorem says a queue's marking threshold must exceed
// gamma * C * RTT / 7 or the queue underflows and throughput is lost. We
// sweep the threshold as a multiple of the bound with the worst-case flow
// count (Eq. 11) and measure link utilisation: below ~1x the utilisation
// drops, above it the link stays full.
#include "bench_common.hpp"
#include "core/thresholds.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Ablation — Theorem IV.1 threshold lower bound",
      "1 queue, per-queue marking, threshold swept around gamma*C*RTT/7,"
      " worst-case flow count from Eq. 11",
      "utilisation loss below the bound, full utilisation above it");

  DumbbellConfig base;
  base.num_senders = 1;  // overwritten below
  base.scheduler.kind = sched::SchedulerKind::kFifo;
  base.scheduler.num_queues = 1;

  // The steady-state model's RTT at the operating point (base RTT plus the
  // queueing delay of a threshold-deep buffer).
  DumbbellScenario probe(base);
  const sim::TimeNs rtt = probe.base_rtt() + sim::microseconds(8);
  const double bound =
      core::theorem41_min_queue_threshold_bytes(base.link_rate, rtt, 1.0, 1.0);

  stats::Table table({"k / bound", "k(pkts)", "flows(Eq.11)", "tput(Gbps)",
                      "utilisation(%)"});
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  for (double factor : {0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
    const auto k_bytes = static_cast<std::uint64_t>(bound * factor);
    const double cxrtt = static_cast<double>(sim::bdp_bytes(base.link_rate, rtt));
    const std::size_t flows = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               core::worst_case_flow_count(1.0, cxrtt, static_cast<double>(k_bytes),
                                           1500.0)));
    DumbbellConfig cfg = base;
    cfg.num_senders = flows;
    cfg.marking.kind = ecn::MarkingKind::kPerQueueStandard;
    cfg.marking.threshold_bytes = std::max<std::uint64_t>(k_bytes, 1);
    cfg.marking.weights = {1.0};
    DumbbellScenario sc(cfg);
    for (std::size_t i = 0; i < flows; ++i) {
      sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
    }
    const auto rates = bench::measure_queue_rates(sc, 1, sim::milliseconds(10), end);
    table.add_row({stats::Table::num(factor, 2),
                   stats::Table::num(static_cast<double>(k_bytes) / 1500.0, 1),
                   std::to_string(flows), stats::Table::num(rates.total),
                   stats::Table::num(rates.total / 10.0 * 100.0, 1)});
  }
  table.print();
  return 0;
}
