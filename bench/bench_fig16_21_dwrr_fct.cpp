// Figures 16-21: large-scale leaf-spine FCT with the DWRR scheduler.
//
// 48 hosts, 4x4 leaf-spine, DCTCP IW=16, Poisson arrivals of the paper-mix
// workload (60% small / 10% large), loads swept. Schemes: PMSB, PMSB(e),
// MQ-ECN, TCN. Six metrics per cell, matching the paper's six panels:
//   Fig 16: overall average   Fig 17: large avg    Fig 18: large 99th
//   Fig 19: small avg         Fig 20: small 95th   Fig 21: small 99th
//
// Paper headline (DWRR): PMSB reduces small-flow avg/99th FCT vs MQ-ECN by
// ~40%/41%; PMSB(e) by ~25%/26%; vs TCN by ~49-50%.
#include <map>

#include "fct_common.hpp"
#include "regress/bench_json.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figures 16-21 — large-scale FCT, DWRR scheduler",
      "48-host 4x4 leaf-spine, 10G, DCTCP IW=16, paper-mix Poisson workload",
      "PMSB/PMSB(e) cut small-flow tail FCT vs MQ-ECN and TCN; overall and"
      " large-flow FCT stay within a few percent");

  const std::vector<Scheme> schemes = {Scheme::kPmsb, Scheme::kPmsbE, Scheme::kMqEcn,
                                       Scheme::kTcn};
  const auto loads = bench::default_loads();
  const std::size_t flows = bench::scaled(300, 2000);

  // Build the full (load, scheme, seed) grid up front and fan it across the
  // sweep worker pool: each run is an isolated single-threaded simulator, and
  // results come back in input order, so the aggregated figures are
  // bit-identical for any PMSB_BENCH_JOBS.
  const auto seeds = bench::default_seeds();
  std::vector<bench::FctRunConfig> cells;
  for (double load : loads) {
    for (Scheme scheme : schemes) {
      for (std::uint64_t seed : seeds) {
        bench::FctRunConfig rc;
        rc.scheme = scheme;
        rc.scheduler = sched::SchedulerKind::kDwrr;
        rc.load = load;
        rc.num_flows = flows;
        rc.seed = seed;
        cells.push_back(rc);
      }
    }
  }
  const std::size_t jobs = bench::bench_jobs();
  bench::announce_grid(cells.size(), jobs);
  const auto runs = bench::run_fct_grid(cells, jobs);

  stats::Table table({"load", "scheme", "overall_avg", "large_avg", "large_p99",
                      "small_avg", "small_p95", "small_p99"},
                     12);
  std::map<std::pair<double, Scheme>, bench::FctResult> results;
  regress::BenchReport bench_report;
  bench_report.tool = "bench_fig16_21_dwrr_fct";
  bench_report.scale = bench::full_scale() ? "full" : "quick";
  std::size_t next = 0;
  for (double load : loads) {
    for (Scheme scheme : schemes) {
      const std::vector<bench::FctResult> cell(runs.begin() + next,
                                               runs.begin() + next + seeds.size());
      next += seeds.size();
      const auto r = bench::aggregate_fct_cell(cell);
      results[{load, scheme}] = r;
      // One pmsb.bench/1 record per (load, scheme) cell: the seed runs are
      // the timed reps, events is the per-rep mean (seeds only perturb it
      // slightly).
      {
        std::vector<double> wall;
        std::uint64_t events_sum = 0;
        for (const auto& run : cell) {
          wall.push_back(run.wall_s);
          events_sum += run.events;
        }
        char name[64];
        std::snprintf(name, sizeof(name), "fct_dwrr/%s/load=%.1f",
                      scheme_name(scheme).c_str(), load);
        bench_report.benchmarks.push_back(regress::make_bench_record(
            name, wall, events_sum / cell.size()));
      }
      table.add_row({stats::Table::num(load, 1), scheme_name(scheme),
                     stats::Table::num(r.overall_avg, 0),
                     stats::Table::num(r.large_avg, 0),
                     stats::Table::num(r.large_p99, 0),
                     stats::Table::num(r.small_avg, 0),
                     stats::Table::num(r.small_p95, 0),
                     stats::Table::num(r.small_p99, 0)});
    }
  }
  std::printf("(all FCTs in microseconds)\n");
  table.print();

  // Headline reductions for small flows, averaged over loads.
  auto reduction = [&](Scheme ours, Scheme base, double bench::FctResult::*field) {
    double sum = 0;
    for (double load : loads) {
      const double b = results[{load, base}].*field;
      const double o = results[{load, ours}].*field;
      sum += (b - o) / b * 100.0;
    }
    return sum / static_cast<double>(loads.size());
  };
  std::printf("\nsmall-flow FCT reductions (mean over loads):\n");
  std::printf("  PMSB    vs TCN   : avg %.1f%%, p99 %.1f%%\n",
              reduction(Scheme::kPmsb, Scheme::kTcn, &bench::FctResult::small_avg),
              reduction(Scheme::kPmsb, Scheme::kTcn, &bench::FctResult::small_p99));
  std::printf("  PMSB    vs MQ-ECN: avg %.1f%%, p99 %.1f%%\n",
              reduction(Scheme::kPmsb, Scheme::kMqEcn, &bench::FctResult::small_avg),
              reduction(Scheme::kPmsb, Scheme::kMqEcn, &bench::FctResult::small_p99));
  std::printf("  PMSB(e) vs MQ-ECN: avg %.1f%%, p99 %.1f%%\n",
              reduction(Scheme::kPmsbE, Scheme::kMqEcn, &bench::FctResult::small_avg),
              reduction(Scheme::kPmsbE, Scheme::kMqEcn, &bench::FctResult::small_p99));
  std::printf("  (paper: PMSB vs MQ-ECN 40.0%%/41.2%%; PMSB(e) vs MQ-ECN"
              " 25.0%%/25.8%%)\n");
  regress::maybe_write_bench_json(bench_report);
  return 0;
}
