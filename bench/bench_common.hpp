// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints a header naming the paper figure it regenerates,
// the paper's qualitative expectation, and then the measured rows. Set
// PMSB_BENCH_SCALE=full for paper-scale runs (default "quick" keeps each
// binary in the seconds-to-a-minute range).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/dumbbell.hpp"
#include "experiments/presets.hpp"
#include "sim/units.hpp"
#include "stats/table.hpp"

namespace pmsb::bench {

inline bool full_scale() {
  const char* v = std::getenv("PMSB_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

/// Picks a size parameter by scale mode.
inline std::size_t scaled(std::size_t quick, std::size_t full) {
  return full_scale() ? full : quick;
}

inline void print_header(const char* figure, const char* setup,
                         const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("  setup:  %s\n", setup);
  std::printf("  paper:  %s\n", expectation);
  std::printf("  scale:  %s\n", full_scale() ? "full" : "quick");
  std::printf("==============================================================\n");
}

/// Measures per-queue service rates over [warmup, end] on a dumbbell.
struct QueueRates {
  std::vector<double> gbps;
  double total = 0.0;
};

inline QueueRates measure_queue_rates(experiments::DumbbellScenario& sc,
                                      std::size_t num_queues, sim::TimeNs warmup,
                                      sim::TimeNs end) {
  sc.run(warmup);
  std::vector<std::uint64_t> start(num_queues);
  for (std::size_t q = 0; q < num_queues; ++q) start[q] = sc.served_bytes(q);
  sc.run(end);
  QueueRates out;
  const double dt = static_cast<double>(end - warmup);
  for (std::size_t q = 0; q < num_queues; ++q) {
    const double gbps = static_cast<double>(sc.served_bytes(q) - start[q]) * 8.0 / dt;
    out.gbps.push_back(gbps);
    out.total += gbps;
  }
  return out;
}

}  // namespace pmsb::bench
