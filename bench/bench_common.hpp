// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints a header naming the paper figure it regenerates,
// the paper's qualitative expectation, and then the measured rows. Set
// PMSB_BENCH_SCALE=full for paper-scale runs (default "quick" keeps each
// binary in the seconds-to-a-minute range).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "experiments/dumbbell.hpp"
#include "experiments/presets.hpp"
#include "sim/units.hpp"
#include "stats/table.hpp"
#include "telemetry/run_report.hpp"

namespace pmsb::bench {

inline bool full_scale() {
  const char* v = std::getenv("PMSB_BENCH_SCALE");
  return v != nullptr && std::strcmp(v, "full") == 0;
}

/// Picks a size parameter by scale mode.
inline std::size_t scaled(std::size_t quick, std::size_t full) {
  return full_scale() ? full : quick;
}

inline void print_header(const char* figure, const char* setup,
                         const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("  setup:  %s\n", setup);
  std::printf("  paper:  %s\n", expectation);
  std::printf("  scale:  %s\n", full_scale() ? "full" : "quick");
  std::printf("==============================================================\n");
}

/// Optional machine-readable bench output: when PMSB_BENCH_MANIFEST_DIR is
/// set, write() drops a pmsb.run_manifest/1 JSON at <dir>/<name>.json with
/// whatever scalar results the bench recorded; otherwise everything is a
/// no-op and the bench stays print-only.
class BenchManifest {
 public:
  explicit BenchManifest(std::string name) : name_(std::move(name)), manifest_(name_) {
    const char* dir = std::getenv("PMSB_BENCH_MANIFEST_DIR");
    if (dir != nullptr) dir_ = dir;
    manifest_.set_info("scale", full_scale() ? "full" : "quick");
  }

  [[nodiscard]] bool enabled() const { return !dir_.empty(); }
  void set_result(const std::string& key, double value) {
    manifest_.set_result(key, value);
  }
  void set_info(const std::string& key, const std::string& value) {
    manifest_.set_info(key, value);
  }

  /// Writes <dir>/<name>.json (optionally with a metrics section).
  void write(const telemetry::MetricsRegistry* registry = nullptr) {
    if (dir_.empty()) return;
    const std::string path = dir_ + "/" + name_ + ".json";
    manifest_.write(path, registry);
    std::printf("manifest: %s\n", path.c_str());
  }

 private:
  std::string name_;
  std::string dir_;
  telemetry::RunManifest manifest_;
};

/// Measures per-queue service rates over [warmup, end] on a dumbbell.
struct QueueRates {
  std::vector<double> gbps;
  double total = 0.0;
};

inline QueueRates measure_queue_rates(experiments::DumbbellScenario& sc,
                                      std::size_t num_queues, sim::TimeNs warmup,
                                      sim::TimeNs end) {
  sc.run(warmup);
  std::vector<std::uint64_t> start(num_queues);
  for (std::size_t q = 0; q < num_queues; ++q) start[q] = sc.served_bytes(q);
  sc.run(end);
  QueueRates out;
  const double dt = static_cast<double>(end - warmup);
  for (std::size_t q = 0; q < num_queues; ++q) {
    const double gbps = static_cast<double>(sc.served_bytes(q) - start[q]) * 8.0 / dt;
    out.gbps.push_back(gbps);
    out.total += gbps;
  }
  return out;
}

}  // namespace pmsb::bench
