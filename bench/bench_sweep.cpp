// Sweep runner benchmark: determinism + parallel speedup + salvage cost.
//
// Runs the same 16-point leaf-spine grid (4 loads x 4 schemes) twice — once
// serially (jobs=1) and once across the worker pool — and checks that every
// per-run deterministic_signature() is bit-identical between the two. On an
// 8-core host the parallel pass should land near-linear (>= 3x); on small
// hosts the determinism check is the point and the speedup line is
// informational. A third pass writes per-run manifests and a fourth resumes
// from them: the resume must salvage every cell (zero re-runs), reproduce
// every signature bit-for-bit, and cost a small fraction of a real sweep.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_common.hpp"
#include "fct_common.hpp"
#include "sweep/sweep.hpp"

using namespace pmsb;

namespace {

double timed_sweep(const std::vector<sweep::SweepPoint>& points,
                   const sweep::SweepConfig& cfg,
                   std::vector<sweep::RunRecord>& records) {
  const auto t0 = std::chrono::steady_clock::now();
  records = sweep::run_sweep(points, cfg);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Sweep runner — parallel fan-out of deterministic runs",
      "16-point leaf-spine grid (4 loads x 4 schemes), jobs=1 vs worker pool",
      "per-run results bit-identical across jobs; near-linear speedup on"
      " multi-core hosts");

  experiments::Options base;
  base.set("topology", "leafspine");
  base.set("flows", std::to_string(bench::scaled(120, 400)));
  base.set("seed", "42");
  const auto points = sweep::expand_grid(
      base, "load:0.3,0.5,0.7,0.9;scheme:pmsb,pmsbe,mq-ecn,tcn");

  const std::size_t jobs = bench::bench_jobs();
  std::vector<sweep::RunRecord> serial, parallel;
  sweep::SweepConfig serial_cfg;
  serial_cfg.jobs = 1;
  sweep::SweepConfig parallel_cfg;
  parallel_cfg.jobs = jobs;
  const double t_serial = timed_sweep(points, serial_cfg, serial);
  const double t_parallel = timed_sweep(points, parallel_cfg, parallel);

  std::size_t mismatches = 0, failures = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!serial[i].ok || !parallel[i].ok) ++failures;
    if (sweep::deterministic_signature(serial[i]) !=
        sweep::deterministic_signature(parallel[i])) {
      ++mismatches;
      std::printf("MISMATCH [%zu] %s\n", i, serial[i].label.c_str());
    }
  }

  // Salvage pass: write manifests, then resume from them. Every cell must
  // rehydrate (no re-runs), and every signature must match the live run.
  namespace fs = std::filesystem;
  const fs::path manifest_dir =
      fs::temp_directory_path() / "pmsb_bench_sweep_manifests";
  fs::remove_all(manifest_dir);
  fs::create_directories(manifest_dir);

  sweep::SweepConfig write_cfg;
  write_cfg.jobs = jobs;
  write_cfg.manifest_dir = manifest_dir.string();
  std::vector<sweep::RunRecord> written, resumed;
  const double t_write = timed_sweep(points, write_cfg, written);

  std::atomic<std::size_t> reruns{0};
  sweep::SweepConfig resume_cfg = write_cfg;
  resume_cfg.resume = true;
  resume_cfg.on_cell_run = [&](std::size_t) {
    reruns.fetch_add(1, std::memory_order_relaxed);
  };
  const double t_resume = timed_sweep(points, resume_cfg, resumed);

  std::size_t salvage_mismatches = 0, salvage_misses = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!resumed[i].salvaged) ++salvage_misses;
    if (sweep::deterministic_signature(written[i]) !=
        sweep::deterministic_signature(resumed[i])) {
      ++salvage_mismatches;
      std::printf("SALVAGE MISMATCH [%zu] %s\n", i, written[i].label.c_str());
    }
  }
  fs::remove_all(manifest_dir);

  std::printf("points=%zu  jobs=%zu\n", points.size(), jobs);
  std::printf("serial   : %.2f s\n", t_serial);
  std::printf("parallel : %.2f s  (speedup %.2fx)\n", t_parallel,
              t_parallel > 0 ? t_serial / t_parallel : 0.0);
  std::printf("manifests: %.2f s to write, %.2f s to salvage all %zu\n", t_write,
              t_resume, points.size());
  std::printf("signatures: %s (%zu mismatches, %zu failed runs)\n",
              mismatches == 0 && failures == 0 ? "IDENTICAL" : "DIFFER",
              mismatches, failures);
  std::printf("salvage   : %s (%zu re-runs, %zu missed, %zu mismatches)\n",
              reruns.load() == 0 && salvage_misses == 0 && salvage_mismatches == 0
                  ? "CLEAN"
                  : "DIRTY",
              reruns.load(), salvage_misses, salvage_mismatches);
  const bool ok = mismatches == 0 && failures == 0 && reruns.load() == 0 &&
                  salvage_misses == 0 && salvage_mismatches == 0;
  return ok ? 0 : 1;
}
