// Sweep runner benchmark: determinism + parallel speedup.
//
// Runs the same 16-point leaf-spine grid (4 loads x 4 schemes) twice — once
// serially (jobs=1) and once across the worker pool — and checks that every
// per-run deterministic_signature() is bit-identical between the two. On an
// 8-core host the parallel pass should land near-linear (>= 3x); on small
// hosts the determinism check is the point and the speedup line is
// informational.
#include <chrono>
#include <cstdio>

#include "bench_common.hpp"
#include "fct_common.hpp"
#include "sweep/sweep.hpp"

using namespace pmsb;

namespace {

double timed_sweep(const std::vector<sweep::SweepPoint>& points, std::size_t jobs,
                   std::vector<sweep::RunRecord>& records) {
  sweep::SweepConfig cfg;
  cfg.jobs = jobs;
  const auto t0 = std::chrono::steady_clock::now();
  records = sweep::run_sweep(points, cfg);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  bench::print_header(
      "Sweep runner — parallel fan-out of deterministic runs",
      "16-point leaf-spine grid (4 loads x 4 schemes), jobs=1 vs worker pool",
      "per-run results bit-identical across jobs; near-linear speedup on"
      " multi-core hosts");

  experiments::Options base;
  base.set("topology", "leafspine");
  base.set("flows", std::to_string(bench::scaled(120, 400)));
  base.set("seed", "42");
  const auto points = sweep::expand_grid(
      base, "load:0.3,0.5,0.7,0.9;scheme:pmsb,pmsbe,mq-ecn,tcn");

  const std::size_t jobs = bench::bench_jobs();
  std::vector<sweep::RunRecord> serial, parallel;
  const double t_serial = timed_sweep(points, 1, serial);
  const double t_parallel = timed_sweep(points, jobs, parallel);

  std::size_t mismatches = 0, failures = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!serial[i].ok || !parallel[i].ok) ++failures;
    if (sweep::deterministic_signature(serial[i]) !=
        sweep::deterministic_signature(parallel[i])) {
      ++mismatches;
      std::printf("MISMATCH [%zu] %s\n", i, serial[i].label.c_str());
    }
  }

  std::printf("points=%zu  jobs=%zu\n", points.size(), jobs);
  std::printf("serial   : %.2f s\n", t_serial);
  std::printf("parallel : %.2f s  (speedup %.2fx)\n", t_parallel,
              t_parallel > 0 ? t_serial / t_parallel : 0.0);
  std::printf("signatures: %s (%zu mismatches, %zu failed runs)\n",
              mismatches == 0 && failures == 0 ? "IDENTICAL" : "DIFFER",
              mismatches, failures);
  return (mismatches == 0 && failures == 0) ? 0 : 1;
}
