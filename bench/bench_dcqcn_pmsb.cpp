// Extension bench: PMSB with a rate-based transport (DCQCN, the paper's
// cited RDMA congestion control [18]).
//
// The victim experiment of Fig. 3, re-run with DCQCN senders instead of
// DCTCP: per-port marking starves the single-flow queue; PMSB's selective
// blindness restores the DWRR weighted share — showing the switch-side
// algorithm is transport-agnostic.
#include <memory>

#include "bench_common.hpp"
#include "transport/dcqcn.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
struct Shares {
  double q0_share;
  double total_gbps;
  std::uint64_t cnps;
};

Shares run(ecn::MarkingKind kind, std::uint64_t threshold_pkts, sim::TimeNs end) {
  DumbbellConfig cfg;
  cfg.num_senders = 9;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = kind;
  cfg.marking.threshold_bytes = threshold_pkts * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);
  transport::DcqcnConfig dc;
  std::vector<std::unique_ptr<transport::DcqcnFlow>> flows;
  flows.push_back(std::make_unique<transport::DcqcnFlow>(
      sc.simulator(), sc.sender(0), sc.receiver(), 700, 0, 0, dc));
  for (std::size_t i = 1; i <= 8; ++i) {
    flows.push_back(std::make_unique<transport::DcqcnFlow>(
        sc.simulator(), sc.sender(i), sc.receiver(),
        static_cast<net::FlowId>(700 + i), 1, 0, dc));
  }
  for (auto& f : flows) f->start(0);
  sc.run(sim::milliseconds(15));
  const auto s0 = sc.served_bytes(0);
  const auto s1 = sc.served_bytes(1);
  sc.run(end);
  const double d0 = static_cast<double>(sc.served_bytes(0) - s0);
  const double d1 = static_cast<double>(sc.served_bytes(1) - s1);
  std::uint64_t cnps = 0;
  for (auto& f : flows) cnps += f->receiver().cnps_sent();
  return {d0 / (d0 + d1), (d0 + d1) * 8.0 / static_cast<double>(end - sim::milliseconds(15)),
          cnps};
}
}  // namespace

int main() {
  bench::print_header(
      "Extension — PMSB with DCQCN (rate-based RDMA transport)",
      "1 DCQCN flow (queue 1) vs 8 DCQCN flows (queue 2), DWRR 1:1, 10G",
      "per-port marking starves the victim; PMSB restores the 50% share —"
      " selective blindness is transport-agnostic");

  const sim::TimeNs end = sim::milliseconds(bench::scaled(75, 300));
  stats::Table table({"marking", "q1_share(%)", "total(Gbps)", "CNPs"}, 16);
  const auto perport = run(ecn::MarkingKind::kPerPort, 16, end);
  table.add_row({"PerPort K=16pkt", stats::Table::num(perport.q0_share * 100, 1),
                 stats::Table::num(perport.total_gbps), std::to_string(perport.cnps)});
  const auto pmsb = run(ecn::MarkingKind::kPmsb, 12, end);
  table.add_row({"PMSB K=12pkt", stats::Table::num(pmsb.q0_share * 100, 1),
                 stats::Table::num(pmsb.total_gbps), std::to_string(pmsb.cnps)});
  table.print();
  return 0;
}
