// Figure 5: TCN cannot accelerate congestion feedback.
//
// Same setup as Figure 4 but with TCN's sojourn-time marking (T_k = the
// drain time of 16 packets). Because a packet must EXPERIENCE the sojourn
// before it can be marked, TCN's buffer peak matches DCTCP's enqueue
// marking — it cannot exploit dequeue marking the way PMSB does.
#include "bench_common.hpp"
#include "stats/queue_trace.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
double run_peak(ecn::MarkingConfig marking) {
  DumbbellConfig cfg;
  cfg.num_senders = 4;
  cfg.link_rate = sim::gbps(1);
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking = std::move(marking);
  DumbbellScenario sc(cfg);
  stats::QueueTracer tracer(
      sc.simulator(), [&sc] { return sc.bottleneck().buffered_bytes(); },
      sim::microseconds(2));
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(bench::scaled(30, 100)));
  return tracer.peak_bytes() / 1500.0;
}
}  // namespace

int main() {
  bench::print_header(
      "Figure 5 — TCN cannot deliver congestion information early",
      "4 flows, 1 queue, 1G; TCN T_k = drain(16 pkts) vs DCTCP K=16",
      "TCN's peak matches DCTCP-enqueue; only buffer-based dequeue marking"
      " lowers it");

  ecn::MarkingConfig dctcp_enq;
  dctcp_enq.kind = ecn::MarkingKind::kPerQueueStandard;
  dctcp_enq.threshold_bytes = 16 * 1500;
  dctcp_enq.point = ecn::MarkPoint::kEnqueue;
  dctcp_enq.weights = {1.0};

  ecn::MarkingConfig dctcp_deq = dctcp_enq;
  dctcp_deq.point = ecn::MarkPoint::kDequeue;

  ecn::MarkingConfig tcn;
  tcn.kind = ecn::MarkingKind::kTcn;
  tcn.sojourn_threshold = sim::serialization_delay(16 * 1500, sim::gbps(1));

  // CoDel: the other duration-based AQM (extension baseline) — also unable
  // to accelerate feedback, for the same reason as TCN.
  ecn::MarkingConfig codel;
  codel.kind = ecn::MarkingKind::kCodel;
  codel.sojourn_threshold = tcn.sojourn_threshold;
  codel.weights = {1.0};

  stats::Table table({"scheme", "peak(pkts)"}, 20);
  const double p_enq = run_peak(dctcp_enq);
  const double p_deq = run_peak(dctcp_deq);
  const double p_tcn = run_peak(tcn);
  const double p_codel = run_peak(codel);
  table.add_row({"DCTCP enqueue", stats::Table::num(p_enq, 1)});
  table.add_row({"DCTCP dequeue", stats::Table::num(p_deq, 1)});
  table.add_row({"TCN (dequeue-only)", stats::Table::num(p_tcn, 1)});
  table.add_row({"CoDel (dequeue-only)", stats::Table::num(p_codel, 1)});
  table.print();
  std::printf("TCN peak vs DCTCP-enqueue: %.1f%% (near 0%% = no acceleration); "
              "DCTCP-dequeue: -%.1f%%\n",
              (p_tcn - p_enq) / p_enq * 100.0, (p_enq - p_deq) / p_enq * 100.0);
  return 0;
}
