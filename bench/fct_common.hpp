// Shared driver for the large-scale leaf-spine FCT benches (Figs. 16-27).
//
// Topology and parameters follow §VI.B: 48 hosts in a 4x4 non-blocking
// leaf-spine, 10G links, ECMP, DCTCP with IW=16, 8 equal-weight service
// queues per port. Link propagation is chosen so the unloaded inter-rack
// RTT lands near the paper's ~78-85 us operating point, which makes the
// paper's absolute thresholds (K=65 pkts standard, PMSB port K=12 pkts,
// TCN T_k=78 us, PMSB(e) RTT threshold 85.2 us) drop out of the same
// formulas the paper uses.
#pragma once

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiments/leafspine.hpp"
#include "experiments/presets.hpp"
#include "sim/rng.hpp"
#include "sweep/sweep.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::bench {

struct FctResult {
  double overall_avg = 0;
  double large_avg = 0, large_p99 = 0;
  double small_avg = 0, small_p95 = 0, small_p99 = 0;
  std::size_t flows = 0;
  std::uint64_t drops = 0;
  bool completed = false;
};

struct FctRunConfig {
  experiments::Scheme scheme = experiments::Scheme::kPmsb;
  sched::SchedulerKind scheduler = sched::SchedulerKind::kDwrr;
  double load = 0.5;
  std::size_t num_flows = 300;
  std::uint64_t seed = 1;
};

inline FctResult run_fct_experiment(const FctRunConfig& rc) {
  experiments::LeafSpineConfig cfg;  // paper defaults: 4x4, 12 hosts/leaf, 10G
  cfg.link_delay = sim::microseconds(9);  // unloaded inter-rack RTT ~77 us
  cfg.scheduler.kind = rc.scheduler;
  cfg.scheduler.num_queues = 8;
  cfg.scheduler.weights.assign(8, 1.0);
  cfg.buffer_bytes = 2048ull * 1500ull;

  experiments::SchemeParams params;
  params.capacity = cfg.link_rate;
  params.weights = cfg.scheduler.weights;
  // Paper §VI.B: standard K = 65 pkts (RTT*lambda = 78 us) for MQ-ECN and
  // the TCN threshold; the PMSB port threshold uses the measured ~85.2 us.
  params.rtt = (rc.scheme == experiments::Scheme::kPmsb ||
                rc.scheme == experiments::Scheme::kPmsbE)
                   ? sim::microseconds_f(85.2)
                   : sim::microseconds(78);
  cfg.marking = experiments::make_scheme_marking(rc.scheme, params);

  cfg.transport.init_cwnd_segments = 16;  // paper: initial window 16 packets
  // Big-buffer hosts, as in the paper's NS-3 setup (its slow-start peaks
  // imply windows far beyond the default socket cap). The window a flow
  // reaches on an idle path before congestion sets the burst small flows
  // must queue behind — i.e. it is part of what the schemes are judged on.
  cfg.transport.max_cwnd_bytes = 2'000'000;
  // PMSB(e)'s RTT threshold is derived from the unloaded inter-rack RTT
  // (4 store-and-forward legs each way).
  const sim::TimeNs base_rtt =
      4 * sim::serialization_delay(sim::kDefaultMtuBytes, cfg.link_rate) +
      4 * sim::serialization_delay(net::kAckBytes, cfg.link_rate) +
      8 * cfg.link_delay;
  experiments::apply_scheme_transport(rc.scheme, params, base_rtt, cfg.transport);

  experiments::LeafSpineScenario scenario(cfg);
  workload::TrafficConfig tc;
  tc.num_hosts = scenario.num_hosts();
  tc.load = rc.load;
  tc.edge_rate = cfg.link_rate;
  tc.num_flows = rc.num_flows;
  tc.num_services = 8;
  auto dist = workload::FlowSizeDistribution::paper_mix();
  sim::Rng rng(rc.seed);
  scenario.add_workload(workload::generate_poisson_traffic(tc, dist, rng));
  const bool done = scenario.run_until_complete(sim::seconds(30));

  FctResult out;
  out.completed = done;
  out.flows = scenario.fct().count();
  out.drops = scenario.total_drops();
  out.overall_avg = scenario.fct().overall_fct_us().mean();
  const auto large = scenario.fct().fct_us(stats::SizeBin::kLarge);
  const auto small = scenario.fct().fct_us(stats::SizeBin::kSmall);
  out.large_avg = large.mean();
  out.large_p99 = large.percentile(99);
  out.small_avg = small.mean();
  out.small_p95 = small.percentile(95);
  out.small_p99 = small.percentile(99);
  return out;
}

inline std::vector<double> default_loads() {
  return full_scale() ? std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
                      : std::vector<double>{0.3, 0.5, 0.7, 0.9};
}

inline std::vector<std::uint64_t> default_seeds() {
  return full_scale() ? std::vector<std::uint64_t>{42, 43, 44, 45, 46}
                      : std::vector<std::uint64_t>{42, 43, 44};
}

/// Worker threads for the grid benches: PMSB_BENCH_JOBS overrides, default
/// is the hardware concurrency (at least 1).
inline std::size_t bench_jobs() {
  if (const char* v = std::getenv("PMSB_BENCH_JOBS")) {
    const long n = std::atol(v);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Runs every cell as an isolated single-threaded simulator across `jobs`
/// worker threads. Results land in input order, so any aggregation done on
/// them is bit-identical regardless of jobs.
inline std::vector<FctResult> run_fct_grid(const std::vector<FctRunConfig>& cells,
                                           std::size_t jobs) {
  std::vector<FctResult> out(cells.size());
  sweep::parallel_for(cells.size(), jobs,
                      [&](std::size_t i) { out[i] = run_fct_experiment(cells[i]); });
  return out;
}

/// Averages per-seed runs of one (scheme, scheduler, load) cell — tail
/// percentiles over a few hundred flows are noisy otherwise.
inline FctResult aggregate_fct_cell(const std::vector<FctResult>& runs) {
  FctResult acc;
  for (const FctResult& r : runs) {
    acc.overall_avg += r.overall_avg;
    acc.large_avg += r.large_avg;
    acc.large_p99 += r.large_p99;
    acc.small_avg += r.small_avg;
    acc.small_p95 += r.small_p95;
    acc.small_p99 += r.small_p99;
    acc.flows += r.flows;
    acc.drops += r.drops;
    acc.completed = acc.completed || r.completed;
  }
  const double n = static_cast<double>(runs.size());
  acc.overall_avg /= n;
  acc.large_avg /= n;
  acc.large_p99 /= n;
  acc.small_avg /= n;
  acc.small_p95 /= n;
  acc.small_p99 /= n;
  return acc;
}

/// Runs one (scheme, scheduler, load) cell once per seed (optionally in
/// parallel) and averages every metric.
inline FctResult run_fct_cell(FctRunConfig rc, const std::vector<std::uint64_t>& seeds,
                              std::size_t jobs = 1) {
  std::vector<FctRunConfig> cells;
  cells.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    rc.seed = seed;
    cells.push_back(rc);
  }
  return aggregate_fct_cell(run_fct_grid(cells, jobs));
}

}  // namespace pmsb::bench
