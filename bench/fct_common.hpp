// Shared driver for the large-scale leaf-spine FCT benches (Figs. 16-27).
//
// Topology and parameters follow §VI.B: 48 hosts in a 4x4 non-blocking
// leaf-spine, 10G links, ECMP, DCTCP with IW=16, 8 equal-weight service
// queues per port. Link propagation is chosen so the unloaded inter-rack
// RTT lands near the paper's ~78-85 us operating point, which makes the
// paper's absolute thresholds (K=65 pkts standard, PMSB port K=12 pkts,
// TCN T_k=78 us, PMSB(e) RTT threshold 85.2 us) drop out of the same
// formulas the paper uses.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "experiments/leafspine.hpp"
#include "experiments/presets.hpp"
#include "faults/deadline.hpp"
#include "sched/factory.hpp"
#include "sim/rng.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/manifest_reader.hpp"
#include "telemetry/run_report.hpp"
#include "workload/size_dist.hpp"
#include "workload/traffic_gen.hpp"

namespace pmsb::bench {

struct FctResult {
  double overall_avg = 0;
  double large_avg = 0, large_p99 = 0;
  double small_avg = 0, small_p95 = 0, small_p99 = 0;
  std::size_t flows = 0;
  std::uint64_t drops = 0;
  bool completed = false;
  // Perf facts for pmsb.bench/1 reports: wall-clock of the event loop and
  // kernel events it executed. A salvaged cell reports the original run's
  // timing.
  double wall_s = 0;
  std::uint64_t events = 0;
};

struct FctRunConfig {
  experiments::Scheme scheme = experiments::Scheme::kPmsb;
  sched::SchedulerKind scheduler = sched::SchedulerKind::kDwrr;
  double load = 0.5;
  std::size_t num_flows = 300;
  std::uint64_t seed = 1;
  /// > 0: wall-clock budget for this run, enforced from inside the event
  /// loop (faults::Deadline); expiry throws faults::DeadlineExceeded.
  double cell_timeout_s = 0.0;
};

inline FctResult run_fct_experiment(const FctRunConfig& rc) {
  experiments::LeafSpineConfig cfg;  // paper defaults: 4x4, 12 hosts/leaf, 10G
  cfg.link_delay = sim::microseconds(9);  // unloaded inter-rack RTT ~77 us
  cfg.scheduler.kind = rc.scheduler;
  cfg.scheduler.num_queues = 8;
  cfg.scheduler.weights.assign(8, 1.0);
  cfg.buffer_bytes = 2048ull * 1500ull;

  experiments::SchemeParams params;
  params.capacity = cfg.link_rate;
  params.weights = cfg.scheduler.weights;
  // Paper §VI.B: standard K = 65 pkts (RTT*lambda = 78 us) for MQ-ECN and
  // the TCN threshold; the PMSB port threshold uses the measured ~85.2 us.
  params.rtt = (rc.scheme == experiments::Scheme::kPmsb ||
                rc.scheme == experiments::Scheme::kPmsbE)
                   ? sim::microseconds_f(85.2)
                   : sim::microseconds(78);
  cfg.marking = experiments::make_scheme_marking(rc.scheme, params);

  cfg.transport.init_cwnd_segments = 16;  // paper: initial window 16 packets
  // Big-buffer hosts, as in the paper's NS-3 setup (its slow-start peaks
  // imply windows far beyond the default socket cap). The window a flow
  // reaches on an idle path before congestion sets the burst small flows
  // must queue behind — i.e. it is part of what the schemes are judged on.
  cfg.transport.max_cwnd_bytes = 2'000'000;
  // PMSB(e)'s RTT threshold is derived from the unloaded inter-rack RTT
  // (4 store-and-forward legs each way).
  const sim::TimeNs base_rtt =
      4 * sim::serialization_delay(sim::kDefaultMtuBytes, cfg.link_rate) +
      4 * sim::serialization_delay(net::kAckBytes, cfg.link_rate) +
      8 * cfg.link_delay;
  experiments::apply_scheme_transport(rc.scheme, params, base_rtt, cfg.transport);

  experiments::LeafSpineScenario scenario(cfg);
  workload::TrafficConfig tc;
  tc.num_hosts = scenario.num_hosts();
  tc.load = rc.load;
  tc.edge_rate = cfg.link_rate;
  tc.num_flows = rc.num_flows;
  tc.num_services = 8;
  auto dist = workload::FlowSizeDistribution::paper_mix();
  sim::Rng rng(rc.seed);
  scenario.add_workload(workload::generate_poisson_traffic(tc, dist, rng));
  std::unique_ptr<faults::Deadline> deadline;
  if (rc.cell_timeout_s > 0.0) {
    deadline = std::make_unique<faults::Deadline>(scenario.simulator(),
                                                  rc.cell_timeout_s);
    deadline->start();
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const bool done = scenario.run_until_complete(sim::seconds(30));
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start)
          .count();

  FctResult out;
  out.completed = done;
  out.wall_s = wall_s;
  out.events = scenario.simulator().executed_events();
  out.flows = scenario.fct().count();
  out.drops = scenario.total_drops();
  out.overall_avg = scenario.fct().overall_fct_us().mean();
  const auto large = scenario.fct().fct_us(stats::SizeBin::kLarge);
  const auto small = scenario.fct().fct_us(stats::SizeBin::kSmall);
  out.large_avg = large.mean();
  out.large_p99 = large.percentile(99);
  out.small_avg = small.mean();
  out.small_p95 = small.percentile(95);
  out.small_p99 = small.percentile(99);
  return out;
}

inline std::vector<double> default_loads() {
  return full_scale() ? std::vector<double>{0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
                      : std::vector<double>{0.3, 0.5, 0.7, 0.9};
}

inline std::vector<std::uint64_t> default_seeds() {
  return full_scale() ? std::vector<std::uint64_t>{42, 43, 44, 45, 46}
                      : std::vector<std::uint64_t>{42, 43, 44};
}

/// Worker threads for the grid benches: PMSB_BENCH_JOBS overrides, default
/// is the hardware concurrency (at least 1).
inline std::size_t bench_jobs() {
  if (const char* v = std::getenv("PMSB_BENCH_JOBS")) {
    const long n = std::atol(v);
    if (n >= 1) return static_cast<std::size_t>(n);
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : hc;
}

/// Checkpoint directory for the FCT grid benches: when
/// PMSB_BENCH_CHECKPOINT_DIR names an existing directory, every completed
/// cell writes a pmsb.run_manifest/1 there and a re-run salvages matching
/// cells instead of re-simulating them (kill the bench, re-run, keep the
/// finished cells). Empty when unset.
inline std::string bench_checkpoint_dir() {
  const char* v = std::getenv("PMSB_BENCH_CHECKPOINT_DIR");
  return v == nullptr ? std::string() : std::string(v);
}

/// Per-cell wall-clock budget for the FCT grid benches:
/// PMSB_BENCH_CELL_TIMEOUT_S > 0 arms a faults::Deadline in every cell so a
/// pathological cell fails alone instead of hanging the whole grid. 0 when
/// unset or unparseable.
inline double bench_cell_timeout_s() {
  const char* v = std::getenv("PMSB_BENCH_CELL_TIMEOUT_S");
  if (v == nullptr) return 0.0;
  const double s = std::atof(v);
  return s > 0.0 ? s : 0.0;
}

/// Config echo written into (and validated against) a cell's checkpoint
/// manifest. cell_timeout_s is deliberately excluded: the deadline never
/// alters a completed run's results, so checkpoints stay valid when the
/// budget changes between invocations.
inline std::map<std::string, std::string> fct_cell_config(const FctRunConfig& rc) {
  char load[40];
  std::snprintf(load, sizeof(load), "%.17g", rc.load);
  return {{"scheme", experiments::scheme_name(rc.scheme)},
          {"scheduler", sched::scheduler_kind_name(rc.scheduler)},
          {"load", load},
          {"flows", std::to_string(rc.num_flows)},
          {"seed", std::to_string(rc.seed)}};
}

/// Writes one completed cell's checkpoint manifest (best effort: a failed
/// write only costs the salvage on the next run).
inline void save_fct_checkpoint(const std::string& path, const FctRunConfig& rc,
                                const FctResult& r) {
  telemetry::RunManifest m("bench-fct");
  m.set_seed(rc.seed);
  m.set_config(fct_cell_config(rc));
  m.set_info("status", "ok");
  m.set_result("overall_avg", r.overall_avg);
  m.set_result("large_avg", r.large_avg);
  m.set_result("large_p99", r.large_p99);
  m.set_result("small_avg", r.small_avg);
  m.set_result("small_p95", r.small_p95);
  m.set_result("small_p99", r.small_p99);
  m.set_result("flows", static_cast<double>(r.flows));
  m.set_result("drops", static_cast<double>(r.drops));
  m.set_result("completed", r.completed ? 1.0 : 0.0);
  m.set_result("wall_s", r.wall_s);
  m.set_result("events", static_cast<double>(r.events));
  try {
    m.write(path, nullptr);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "checkpoint write failed (%s): %s\n", path.c_str(),
                 e.what());
  }
}

/// Tries to rehydrate one cell from its checkpoint manifest. Refuses —
/// and the cell re-runs — when the file is missing/corrupt, was written by
/// a different tool or schema, is not a completed run, or its config echo
/// does not match `rc` (e.g. the grid or scale mode changed).
inline std::optional<FctResult> load_fct_checkpoint(const std::string& path,
                                                    const FctRunConfig& rc) {
  telemetry::ManifestData m;
  try {
    m = telemetry::read_run_manifest(path);
  } catch (const std::exception&) {
    return std::nullopt;
  }
  if (m.schema != "pmsb.run_manifest/1" || m.tool != "bench-fct") return std::nullopt;
  const auto status = m.info.find("status");
  if (status == m.info.end() || status->second != "ok") return std::nullopt;
  if (m.config != fct_cell_config(rc)) return std::nullopt;
  const char* keys[] = {"overall_avg", "large_avg", "large_p99", "small_avg",
                        "small_p95",   "small_p99", "flows",     "drops",
                        "completed",   "wall_s",    "events"};
  for (const char* k : keys) {
    if (m.results.find(k) == m.results.end()) return std::nullopt;
  }
  FctResult r;
  r.overall_avg = m.results.at("overall_avg");
  r.large_avg = m.results.at("large_avg");
  r.large_p99 = m.results.at("large_p99");
  r.small_avg = m.results.at("small_avg");
  r.small_p95 = m.results.at("small_p95");
  r.small_p99 = m.results.at("small_p99");
  r.flows = static_cast<std::size_t>(m.results.at("flows"));
  r.drops = static_cast<std::uint64_t>(m.results.at("drops"));
  r.completed = m.results.at("completed") != 0.0;
  r.wall_s = m.results.at("wall_s");
  r.events = static_cast<std::uint64_t>(m.results.at("events"));
  return r;
}

/// Prints the grid banner plus any checkpoint / timeout wiring picked up
/// from the environment. Call before run_fct_grid.
inline void announce_grid(std::size_t cells, std::size_t jobs) {
  std::printf("(%zu runs x jobs=%zu)\n", cells, jobs);
  const std::string ckpt = bench_checkpoint_dir();
  if (!ckpt.empty()) {
    std::printf("(checkpointing to %s — completed cells salvage on re-run)\n",
                ckpt.c_str());
  }
  const double timeout = bench_cell_timeout_s();
  if (timeout > 0.0) {
    std::printf("(per-cell wall-clock budget %.3g s)\n", timeout);
  }
}

/// Runs every cell as an isolated single-threaded simulator across `jobs`
/// worker threads. Results land in input order, so any aggregation done on
/// them is bit-identical regardless of jobs. Honors the
/// PMSB_BENCH_CHECKPOINT_DIR / PMSB_BENCH_CELL_TIMEOUT_S environment wiring
/// (see bench_checkpoint_dir / bench_cell_timeout_s): completed cells are
/// checkpointed and salvaged on re-run; a cell that blows its wall-clock
/// budget yields a default FctResult (completed=false) with a diagnostic on
/// stderr while the rest of the grid proceeds, and is not checkpointed so a
/// re-run retries it.
inline std::vector<FctResult> run_fct_grid(
    std::vector<FctRunConfig> cells, std::size_t jobs,
    const std::string& checkpoint_dir = bench_checkpoint_dir()) {
  const std::string& ckpt = checkpoint_dir;
  const double timeout = bench_cell_timeout_s();
  if (timeout > 0.0) {
    for (FctRunConfig& c : cells) c.cell_timeout_s = timeout;
  }
  std::vector<FctResult> out(cells.size());
  std::atomic<std::size_t> salvaged{0};
  sweep::parallel_for(cells.size(), jobs, [&](std::size_t i) {
    const std::string path =
        ckpt.empty() ? std::string()
                     : ckpt + "/" + sweep::manifest_file_name(i, cells.size());
    if (!path.empty()) {
      if (auto r = load_fct_checkpoint(path, cells[i])) {
        out[i] = *r;
        salvaged.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    try {
      out[i] = run_fct_experiment(cells[i]);
    } catch (const faults::DeadlineExceeded& e) {
      out[i] = FctResult{};  // completed=false marks the cell as failed
      std::fprintf(stderr, "cell %zu timed out after %.2f s: %s\n", i,
                   e.elapsed_s, e.what());
      return;
    }
    if (!path.empty()) save_fct_checkpoint(path, cells[i], out[i]);
  });
  if (!ckpt.empty()) {
    std::printf("(salvaged %zu/%zu cells from %s)\n",
                salvaged.load(std::memory_order_relaxed), cells.size(),
                ckpt.c_str());
  }
  return out;
}

/// Averages per-seed runs of one (scheme, scheduler, load) cell — tail
/// percentiles over a few hundred flows are noisy otherwise.
inline FctResult aggregate_fct_cell(const std::vector<FctResult>& runs) {
  FctResult acc;
  for (const FctResult& r : runs) {
    acc.overall_avg += r.overall_avg;
    acc.large_avg += r.large_avg;
    acc.large_p99 += r.large_p99;
    acc.small_avg += r.small_avg;
    acc.small_p95 += r.small_p95;
    acc.small_p99 += r.small_p99;
    acc.flows += r.flows;
    acc.drops += r.drops;
    acc.completed = acc.completed || r.completed;
    acc.wall_s += r.wall_s;  // wall_s / events stay SUMS over the seed runs
    acc.events += r.events;
  }
  const double n = static_cast<double>(runs.size());
  acc.overall_avg /= n;
  acc.large_avg /= n;
  acc.large_p99 /= n;
  acc.small_avg /= n;
  acc.small_p95 /= n;
  acc.small_p99 /= n;
  return acc;
}

/// Runs one (scheme, scheduler, load) cell once per seed (optionally in
/// parallel) and averages every metric. Checkpointing is disabled here:
/// repeated calls would reuse grid indices 0..seeds-1 and collide in the
/// checkpoint directory — benches that want salvage build one flat grid
/// and call run_fct_grid directly.
inline FctResult run_fct_cell(FctRunConfig rc, const std::vector<std::uint64_t>& seeds,
                              std::size_t jobs = 1) {
  std::vector<FctRunConfig> cells;
  cells.reserve(seeds.size());
  for (std::uint64_t seed : seeds) {
    rc.seed = seed;
    cells.push_back(rc);
  }
  return aggregate_fct_cell(run_fct_grid(cells, jobs, std::string()));
}

}  // namespace pmsb::bench
