// Extension bench: PMSB's small-flow advantage across workload shapes.
//
// The paper evaluates one "realistic workload" mix; here the same DWRR
// leaf-spine experiment runs under the web-search and data-mining CDFs used
// throughout the DCTCP/MQ-ECN/TCN literature, confirming the ranking is not
// an artifact of the particular flow-size distribution.
#include "fct_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
bench::FctResult run_dist(Scheme scheme, const workload::FlowSizeDistribution& dist,
                          std::size_t flows) {
  LeafSpineConfig cfg;
  cfg.link_delay = sim::microseconds(9);
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 8;
  cfg.scheduler.weights.assign(8, 1.0);
  cfg.buffer_bytes = 2048ull * 1500ull;
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = scheme == Scheme::kPmsb || scheme == Scheme::kPmsbE
                   ? sim::microseconds_f(85.2)
                   : sim::microseconds(78);
  params.weights = cfg.scheduler.weights;
  cfg.marking = make_scheme_marking(scheme, params);
  cfg.transport.init_cwnd_segments = 16;
  const sim::TimeNs base_rtt =
      4 * sim::serialization_delay(sim::kDefaultMtuBytes, cfg.link_rate) +
      4 * sim::serialization_delay(net::kAckBytes, cfg.link_rate) +
      8 * cfg.link_delay;
  apply_scheme_transport(scheme, params, base_rtt, cfg.transport);

  LeafSpineScenario sc(cfg);
  workload::TrafficConfig tc;
  tc.num_hosts = sc.num_hosts();
  tc.load = 0.7;
  tc.num_flows = flows;
  tc.num_services = 8;
  sim::Rng rng(99);
  sc.add_workload(workload::generate_poisson_traffic(tc, dist, rng));
  sc.run_until_complete(sim::seconds(30));

  bench::FctResult out;
  out.flows = sc.fct().count();
  out.overall_avg = sc.fct().overall_fct_us().mean();
  const auto small = sc.fct().fct_us(stats::SizeBin::kSmall);
  out.small_avg = small.mean();
  out.small_p99 = small.percentile(99);
  return out;
}
}  // namespace

int main() {
  bench::print_header(
      "Extension — workload-shape robustness (DWRR, load 0.7)",
      "48-host leaf-spine; web-search and data-mining CDFs; PMSB vs MQ-ECN"
      " vs TCN",
      "PMSB's small-flow advantage holds on both distributions");

  const std::size_t flows = bench::scaled(250, 1500);
  stats::Table table({"workload", "scheme", "small_avg(us)", "small_p99(us)",
                      "overall_avg(us)"}, 15);
  for (const auto* name : {"web-search", "data-mining"}) {
    const auto dist = workload::FlowSizeDistribution::by_name(name);
    for (Scheme scheme : {Scheme::kPmsb, Scheme::kMqEcn, Scheme::kTcn}) {
      const auto r = run_dist(scheme, dist, flows);
      table.add_row({name, scheme_name(scheme), stats::Table::num(r.small_avg, 0),
                     stats::Table::num(r.small_p99, 0),
                     stats::Table::num(r.overall_avg, 0)});
    }
  }
  table.print();
  return 0;
}
