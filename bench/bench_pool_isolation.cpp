// Extension bench: per-service-pool marking violates isolation ACROSS
// ports (the paper's §II.B conjecture — "queues belonging to different
// ports may interfere with each other").
//
// Two independent 10G egress ports share one buffer pool. Port A carries 8
// greedy flows, port B one flow. Under per-pool marking, A's occupancy
// marks B's packets and B cannot hold its private line rate; switching the
// same ports to PMSB (per-port state only) restores B's full 10G.
#include "bench_common.hpp"
#include "experiments/multiport.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
struct Result {
  double port_a_gbps;
  double port_b_gbps;
  std::uint64_t marks_b;
};

Result run(ecn::MarkingKind kind, std::uint64_t threshold_pkts, sim::TimeNs end) {
  MultiPortConfig cfg;
  cfg.num_senders = 9;
  cfg.num_receivers = 2;
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = kind;
  cfg.marking.threshold_bytes = threshold_pkts * 1500;
  cfg.marking.weights = {1.0};
  cfg.shared_pool_bytes = 4096ull * 1500ull;
  MultiPortScenario sc(cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0, .bytes = 0, .start = 0});
  }
  sc.add_flow({.sender = 8, .receiver = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto a0 = sc.served_bytes(0, 0);
  const auto b0 = sc.served_bytes(1, 0);
  sc.run(end);
  const double dt = static_cast<double>(end - sim::milliseconds(10));
  return {static_cast<double>(sc.served_bytes(0, 0) - a0) * 8.0 / dt,
          static_cast<double>(sc.served_bytes(1, 0) - b0) * 8.0 / dt,
          sc.receiver_port(1).stats().marked_enqueue};
}
}  // namespace

int main() {
  bench::print_header(
      "Extension — per-service-pool marking vs cross-port isolation",
      "2 independent 10G ports sharing one buffer pool; port A: 8 flows,"
      " port B: 1 flow",
      "per-pool marking drags port B below line rate; PMSB keeps both ports"
      " independent (paper §II.B conjecture)");

  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  stats::Table table({"marking", "portA(Gbps)", "portB(Gbps)", "marks_on_B"}, 16);
  const auto pool = run(ecn::MarkingKind::kPerPool, 16, end);
  table.add_row({"PerPool K=16pkt", stats::Table::num(pool.port_a_gbps),
                 stats::Table::num(pool.port_b_gbps), std::to_string(pool.marks_b)});
  const auto pmsb = run(ecn::MarkingKind::kPmsb, 12, end);
  table.add_row({"PMSB K=12pkt", stats::Table::num(pmsb.port_a_gbps),
                 stats::Table::num(pmsb.port_b_gbps), std::to_string(pmsb.marks_b)});
  table.print();
  std::printf("port B loses %.1f%% of its private bandwidth under per-pool"
              " marking.\n",
              (pmsb.port_b_gbps - pool.port_b_gbps) / pmsb.port_b_gbps * 100.0);
  return 0;
}
