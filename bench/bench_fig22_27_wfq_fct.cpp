// Figures 22-27: large-scale leaf-spine FCT with the WFQ scheduler.
//
// Same setup as Figs. 16-21 but scheduling with WFQ — the generic scheduler
// MQ-ECN cannot drive, so the comparison is PMSB / PMSB(e) / TCN only
// (paper Table I and §VI.B).
//
// Paper headline (WFQ): PMSB reduces small-flow 95th/99th/avg FCT vs TCN by
// up to 67.6%/72.9%/64.5%; PMSB(e) by up to ~23-26%.
#include <map>

#include "fct_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figures 22-27 — large-scale FCT, WFQ scheduler",
      "48-host 4x4 leaf-spine, 10G, DCTCP IW=16, paper-mix Poisson workload;"
      " MQ-ECN excluded (no rounds on WFQ)",
      "PMSB/PMSB(e) cut small-flow tail FCT vs TCN; overall/large within ~2%");

  const std::vector<Scheme> schemes = {Scheme::kPmsb, Scheme::kPmsbE, Scheme::kTcn};
  const auto loads = bench::default_loads();
  const std::size_t flows = bench::scaled(300, 2000);

  // Same flat (load, scheme, seed) grid shape as Figs. 16-21: one
  // parallel_for over every run, results in input order, so the aggregated
  // figures are bit-identical for any PMSB_BENCH_JOBS — and the grid picks
  // up the shared checkpoint / per-cell timeout wiring.
  const auto seeds = bench::default_seeds();
  std::vector<bench::FctRunConfig> cells;
  for (double load : loads) {
    for (Scheme scheme : schemes) {
      for (std::uint64_t seed : seeds) {
        bench::FctRunConfig rc;
        rc.scheme = scheme;
        rc.scheduler = sched::SchedulerKind::kWfq;
        rc.load = load;
        rc.num_flows = flows;
        rc.seed = seed;
        cells.push_back(rc);
      }
    }
  }
  const std::size_t jobs = bench::bench_jobs();
  bench::announce_grid(cells.size(), jobs);
  const auto runs = bench::run_fct_grid(cells, jobs);

  stats::Table table({"load", "scheme", "overall_avg", "large_avg", "large_p99",
                      "small_avg", "small_p95", "small_p99"},
                     12);
  std::map<std::pair<double, Scheme>, bench::FctResult> results;
  std::size_t next = 0;
  for (double load : loads) {
    for (Scheme scheme : schemes) {
      const std::vector<bench::FctResult> cell(runs.begin() + next,
                                               runs.begin() + next + seeds.size());
      next += seeds.size();
      const auto r = bench::aggregate_fct_cell(cell);
      results[{load, scheme}] = r;
      table.add_row({stats::Table::num(load, 1), scheme_name(scheme),
                     stats::Table::num(r.overall_avg, 0),
                     stats::Table::num(r.large_avg, 0),
                     stats::Table::num(r.large_p99, 0),
                     stats::Table::num(r.small_avg, 0),
                     stats::Table::num(r.small_p95, 0),
                     stats::Table::num(r.small_p99, 0)});
    }
  }
  std::printf("(all FCTs in microseconds)\n");
  table.print();

  auto reduction = [&](Scheme ours, double bench::FctResult::*field) {
    double sum = 0;
    for (double load : loads) {
      const double b = results[{load, Scheme::kTcn}].*field;
      const double o = results[{load, ours}].*field;
      sum += (b - o) / b * 100.0;
    }
    return sum / static_cast<double>(loads.size());
  };
  std::printf("\nsmall-flow FCT reductions vs TCN (mean over loads):\n");
  std::printf("  PMSB   : avg %.1f%%, p95 %.1f%%, p99 %.1f%%\n",
              reduction(Scheme::kPmsb, &bench::FctResult::small_avg),
              reduction(Scheme::kPmsb, &bench::FctResult::small_p95),
              reduction(Scheme::kPmsb, &bench::FctResult::small_p99));
  std::printf("  PMSB(e): avg %.1f%%, p95 %.1f%%, p99 %.1f%%\n",
              reduction(Scheme::kPmsbE, &bench::FctResult::small_avg),
              reduction(Scheme::kPmsbE, &bench::FctResult::small_p95),
              reduction(Scheme::kPmsbE, &bench::FctResult::small_p99));
  std::printf("  (paper: PMSB up to 67.6%%/72.9%%/64.5%% at best load)\n");
  return 0;
}
