// Ablation: PMSB per-queue filter aggressiveness (§III's trade-off).
//
// filter_scale scales the Eq. 6 per-queue threshold. Small values accept
// more marks (false positives -> fairness erodes toward plain per-port);
// large values refuse more marks (false negatives -> the congested queue's
// latency grows). The paper argues scale 1.0 with a small-probability
// false positive is the right operating point.
#include "bench_common.hpp"
#include "stats/summary.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Ablation — PMSB filter threshold scale (false pos./neg. trade-off)",
      "1 flow vs 8 flows, 2 DWRR queues 1:1, port K=12 pkts, scale swept",
      "small scale -> fairness erodes; large scale -> congested-queue RTT"
      " grows; 1.0 balances both");

  stats::Table table({"filter_scale", "q1_share(%)", "q2_rtt_avg(us)",
                      "q2_rtt_p99(us)", "tput(Gbps)"});
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 300));
  for (double scale : {0.0, 0.25, 0.5, 1.0, 2.0, 4.0}) {
    DumbbellConfig cfg;
    cfg.num_senders = 9;
    cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
    cfg.scheduler.num_queues = 2;
    cfg.scheduler.weights = {1.0, 1.0};
    cfg.marking.kind = ecn::MarkingKind::kPmsb;
    cfg.marking.threshold_bytes = 12 * 1500;
    cfg.marking.weights = cfg.scheduler.weights;
    cfg.marking.filter_scale = scale;
    cfg.buffer_bytes = 4096ull * 1500ull;
    DumbbellScenario sc(cfg);
    sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
    stats::Summary rtt;
    for (std::size_t i = 1; i <= 8; ++i) {
      const auto idx = sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0});
      sc.flow(idx).sender().set_rtt_observer([&rtt, &sc](sim::TimeNs t) {
        if (sc.simulator().now() > sim::milliseconds(10)) {
          rtt.add(sim::to_microseconds(t));
        }
      });
    }
    const auto rates = bench::measure_queue_rates(sc, 2, sim::milliseconds(10), end);
    table.add_row({stats::Table::num(scale, 2),
                   stats::Table::num(rates.gbps[0] / rates.total * 100.0, 1),
                   stats::Table::num(rtt.mean(), 1),
                   stats::Table::num(rtt.percentile(99), 1),
                   stats::Table::num(rates.total)});
  }
  table.print();
  std::printf("scale 0.0 degenerates to plain per-port marking (Fig. 3's"
              " violation); very large scales approach no-marking latency.\n");
  return 0;
}
