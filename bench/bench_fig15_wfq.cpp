// Figure 15: PMSB over WFQ (the generic scheduler MQ-ECN cannot drive).
//
// Queue 1 starts with one greedy flow and owns the full 10G; when queue 2's
// four flows join, both queues must converge to 5 Gbps each.
#include "bench_common.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

int main() {
  bench::print_header(
      "Figure 15 — PMSB over WFQ (2 equal-weight queues)",
      "q1: 1 flow @0ms; q2: 4 flows @20ms; 10G, port K=12 pkts",
      "q1 holds 10G alone, then both queues converge to 5 Gbps");

  DumbbellConfig cfg;
  cfg.num_senders = 5;
  cfg.scheduler.kind = sched::SchedulerKind::kWfq;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  DumbbellScenario sc(cfg);

  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (std::size_t i = 1; i <= 4; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = sim::milliseconds(20)});
  }

  stats::Table series({"t(ms)", "q1(Gbps)", "q2(Gbps)"});
  sim::TimeNs prev_t = 0;
  std::vector<std::uint64_t> prev(2, 0);
  const sim::TimeNs end = sim::milliseconds(bench::scaled(60, 200));
  for (sim::TimeNs t = sim::milliseconds(5); t <= end; t += sim::milliseconds(5)) {
    sc.run(t);
    std::vector<std::string> row = {stats::Table::num(sim::to_milliseconds(t), 0)};
    const double dt = static_cast<double>(t - prev_t);
    for (std::size_t q = 0; q < 2; ++q) {
      const auto s = sc.served_bytes(q);
      row.push_back(stats::Table::num(static_cast<double>(s - prev[q]) * 8.0 / dt));
      prev[q] = s;
    }
    prev_t = t;
    series.add_row(std::move(row));
  }
  series.print();
  return 0;
}
