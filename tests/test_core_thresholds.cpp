// Tests for the threshold math of §II (Eq. 1-2) and the steady-state
// analysis of §IV.D (Eq. 7-12, Theorem IV.1).
#include <gtest/gtest.h>

#include "core/thresholds.hpp"

using namespace pmsb;
using namespace pmsb::core;

TEST(Thresholds, StandardEq1) {
  // 10 Gbps * 78 us * 1.0 = 97.5 kB = 65 packets — the paper's standard K.
  const auto k = standard_threshold_bytes(sim::gbps(10), sim::microseconds(78), 1.0);
  EXPECT_EQ(k, 97'500u);
  EXPECT_NEAR(static_cast<double>(k) / 1500.0, 65.0, 0.1);
}

TEST(Thresholds, StandardScalesWithLambda) {
  const auto k1 = standard_threshold_bytes(sim::gbps(10), sim::microseconds(80), 1.0);
  const auto k2 = standard_threshold_bytes(sim::gbps(10), sim::microseconds(80), 0.5);
  EXPECT_EQ(k1, 2 * k2);
}

TEST(Thresholds, FractionalEq2SumsToStandard) {
  const sim::RateBps c = sim::gbps(10);
  const sim::TimeNs rtt = sim::microseconds(80);
  const std::vector<double> w = {1.0, 2.0, 5.0};
  const double wsum = 8.0;
  std::uint64_t sum = 0;
  for (double wi : w) sum += fractional_threshold_bytes(c, rtt, 1.0, wi, wsum);
  EXPECT_NEAR(static_cast<double>(sum),
              static_cast<double>(standard_threshold_bytes(c, rtt, 1.0)), 2.0);
}

TEST(Thresholds, BandwidthShare) {
  EXPECT_DOUBLE_EQ(bandwidth_share(1.0, 4.0), 0.25);
  EXPECT_DOUBLE_EQ(bandwidth_share(3.0, 3.0), 1.0);
}

TEST(Theorem41, ReproducesPaperTwelvePackets) {
  // With the paper's large-scale parameters (10G, RTT such that C*RTT is
  // ~71 packets) the summed lower bound lands near 10 packets, and the
  // paper rounds its port threshold up to 12.
  const sim::RateBps c = sim::gbps(10);
  const sim::TimeNs rtt = sim::microseconds_f(85.2);
  const double port_bound = recommended_port_threshold_bytes(c, rtt);
  EXPECT_NEAR(port_bound / 1500.0, 10.1, 0.3);
}

TEST(Theorem41, BoundScalesWithWeightShare) {
  const sim::RateBps c = sim::gbps(10);
  const sim::TimeNs rtt = sim::microseconds(70);
  const double full = theorem41_min_queue_threshold_bytes(c, rtt, 1.0, 1.0);
  const double half = theorem41_min_queue_threshold_bytes(c, rtt, 1.0, 2.0);
  EXPECT_NEAR(half * 2.0, full, 1e-6);
  EXPECT_NEAR(full, static_cast<double>(sim::bdp_bytes(c, rtt)) / 7.0, 1e-6);
}

TEST(Theorem41, QueueBoundsSumToPortBound) {
  const sim::RateBps c = sim::gbps(10);
  const sim::TimeNs rtt = sim::microseconds(70);
  const std::vector<double> w = {1.0, 2.0, 3.0, 4.0};
  double sum = 0;
  for (double wi : w) sum += theorem41_min_queue_threshold_bytes(c, rtt, wi, 10.0);
  EXPECT_NEAR(sum, recommended_port_threshold_bytes(c, rtt), 1e-6);
}

TEST(SteadyState, QMaxEq8) {
  // Q_max = k + n segments.
  EXPECT_DOUBLE_EQ(q_max_bytes(15000.0, 10.0, 1500.0), 30000.0);
}

TEST(SteadyState, AmplitudeEq9) {
  // In segments: A = 0.5 * sqrt(2 * n * (gamma*CxRTT + k)).
  const double mss = 1500.0;
  const double amp = oscillation_amplitude_bytes(/*n=*/8, /*gamma=*/0.5,
                                                 /*cxrtt=*/60000.0, /*k=*/15000.0, mss);
  const double expected_seg = 0.5 * std::sqrt(2.0 * 8.0 * (0.5 * 40.0 + 10.0));
  EXPECT_NEAR(amp / mss, expected_seg, 1e-9);
}

TEST(SteadyState, QMinLowerBoundEq10AtWorstCaseN) {
  // At n_i from Eq. 11, Q_min equals the Eq. 10 closed form.
  const double mss = 1500.0;
  const double gamma = 0.5;
  const double cxrtt = 90000.0;
  const double k = 30000.0;
  const double n_star = worst_case_flow_count(gamma, cxrtt, k, mss);
  const double qmin = q_min_bytes(k, n_star, gamma, cxrtt, mss);
  const double bound = q_min_lower_bound_bytes(k, gamma, cxrtt);
  EXPECT_NEAR(qmin, bound, 1.0);
}

TEST(SteadyState, QMinIsMinimisedAtWorstCaseN) {
  const double mss = 1500.0;
  const double gamma = 1.0;
  const double cxrtt = 120000.0;
  const double k = 40000.0;
  const double n_star = worst_case_flow_count(gamma, cxrtt, k, mss);
  const double at_star = q_min_bytes(k, n_star, gamma, cxrtt, mss);
  for (double n : {n_star * 0.5, n_star * 0.8, n_star * 1.25, n_star * 2.0}) {
    EXPECT_GE(q_min_bytes(k, n, gamma, cxrtt, mss), at_star - 1.0) << "n=" << n;
  }
}

TEST(SteadyState, TheoremGuaranteesPositiveQMin) {
  // For k above the Theorem IV.1 bound, the worst-case Q_min must be > 0;
  // below the bound it must dip negative (underflow -> throughput loss).
  const double mss = 1500.0;
  const double gamma = 0.5;
  const sim::RateBps c = sim::gbps(10);
  const sim::TimeNs rtt = sim::microseconds(80);
  const double cxrtt = static_cast<double>(sim::bdp_bytes(c, rtt));
  const double bound = theorem41_min_queue_threshold_bytes(c, rtt, 1.0, 2.0);
  {
    const double k = bound * 1.15;
    const double n = worst_case_flow_count(gamma, cxrtt, k, mss);
    EXPECT_GT(q_min_bytes(k, n, gamma, cxrtt, mss), 0.0);
  }
  {
    const double k = bound * 0.80;
    const double n = worst_case_flow_count(gamma, cxrtt, k, mss);
    EXPECT_LT(q_min_bytes(k, n, gamma, cxrtt, mss), 0.0);
  }
}
