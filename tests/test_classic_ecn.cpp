// Tests for the classic RFC 3168 ECN reaction mode (halve once per window)
// and its contrast with DCTCP's proportional cut.
#include <gtest/gtest.h>

#include "experiments/dumbbell.hpp"
#include "stats/queue_trace.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
DumbbellConfig marked_config(transport::EcnReaction reaction) {
  DumbbellConfig cfg;
  cfg.num_senders = 4;
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 16 * 1500;
  cfg.transport.reaction = reaction;
  return cfg;
}
}  // namespace

TEST(ClassicEcn, StillSaturatesAndCompletes) {
  DumbbellScenario sc(marked_config(transport::EcnReaction::kClassicEcn));
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(10));
  std::uint64_t s = sc.served_bytes(0);
  sc.run(sim::milliseconds(40));
  const double gbps = static_cast<double>(sc.served_bytes(0) - s) * 8.0 /
                      static_cast<double>(sim::milliseconds(30));
  EXPECT_GT(gbps, 8.0);
  EXPECT_GT(sc.flow(0).sender().stats().window_cuts, 0u);
}

TEST(ClassicEcn, OscillatesMoreThanDctcp) {
  // The whole point of DCTCP: proportional cuts keep the queue tight, while
  // RFC 3168 halving swings it between near-empty and the threshold.
  auto amplitude = [](transport::EcnReaction reaction) {
    DumbbellScenario sc(marked_config(reaction));
    for (std::size_t i = 0; i < 4; ++i) {
      sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
    }
    sc.run(sim::milliseconds(20));  // converge first
    stats::QueueTracer tracer(
        sc.simulator(), [&sc] { return sc.bottleneck().buffered_bytes(); },
        sim::microseconds(2));
    sc.run(sim::milliseconds(60));
    std::uint64_t peak = 0, trough = UINT64_MAX;
    for (const auto& sample : tracer.samples()) {
      peak = std::max(peak, sample.bytes);
      trough = std::min(trough, sample.bytes);
    }
    return static_cast<double>(peak - trough);
  };
  const double dctcp_amp = amplitude(transport::EcnReaction::kDctcp);
  const double classic_amp = amplitude(transport::EcnReaction::kClassicEcn);
  EXPECT_GT(classic_amp, dctcp_amp * 1.2);
}

TEST(ClassicEcn, HalvesOncePerWindow) {
  // With a continuous stream of marks, classic ECN must not halve on every
  // ACK — once per window only, or cwnd collapses to 1 MSS permanently.
  DumbbellScenario sc(marked_config(transport::EcnReaction::kClassicEcn));
  for (std::size_t i = 0; i < 2; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(30));
  // cwnd must stay meaningfully above the 1-MSS floor on average.
  EXPECT_GT(sc.flow(0).sender().cwnd_bytes(), 2.0 * 1460);
}
