// Tests for the parallel sweep runner: grid expansion, the worker pool, and
// the determinism contract (per-run results are bit-identical whether a
// sweep runs serially or across threads, and whether a run is the first or
// the second in its process).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "experiments/dumbbell.hpp"
#include "experiments/options.hpp"
#include "sweep/scenario_run.hpp"
#include "sweep/sweep.hpp"
#include "trace/tracer.hpp"

using namespace pmsb;
using pmsb::experiments::Options;

namespace {

Options leafspine_base() {
  Options base;
  base.set("topology", "leafspine");
  base.set("flows", "40");
  base.set("seed", "11");
  return base;
}

}  // namespace

// --- expand_grid -------------------------------------------------------

TEST(ExpandGrid, CartesianProductLastDimensionFastest) {
  Options base;
  base.set("topology", "leafspine");
  const auto pts = sweep::expand_grid(base, "load:0.3,0.6;scheme:pmsb,tcn,mq-ecn");
  ASSERT_EQ(pts.size(), 6u);
  EXPECT_EQ(pts[0].label, "load=0.3 scheme=pmsb");
  EXPECT_EQ(pts[1].label, "load=0.3 scheme=tcn");
  EXPECT_EQ(pts[2].label, "load=0.3 scheme=mq-ecn");
  EXPECT_EQ(pts[3].label, "load=0.6 scheme=pmsb");
  EXPECT_EQ(pts[5].opts.get("scheme"), "mq-ecn");
  EXPECT_EQ(pts[5].opts.get("load"), "0.6");
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].index, i);
    // Base keys survive on every point.
    EXPECT_EQ(pts[i].opts.get("topology"), "leafspine");
  }
}

TEST(ExpandGrid, SingleDimension) {
  const auto pts = sweep::expand_grid(Options{}, "seed:1,2,3,4");
  ASSERT_EQ(pts.size(), 4u);
  EXPECT_EQ(pts[2].opts.get("seed"), "3");
  EXPECT_EQ(pts[2].label, "seed=3");
}

TEST(ExpandGrid, SweepValueOverridesBaseValue) {
  Options base;
  base.set("load", "0.9");
  const auto pts = sweep::expand_grid(base, "load:0.1,0.2");
  EXPECT_EQ(pts[0].opts.get("load"), "0.1");
  EXPECT_EQ(pts[1].opts.get("load"), "0.2");
}

TEST(ExpandGrid, RejectsMalformedSpecs) {
  const Options base;
  EXPECT_THROW(sweep::expand_grid(base, ""), std::invalid_argument);
  EXPECT_THROW(sweep::expand_grid(base, "load"), std::invalid_argument);
  EXPECT_THROW(sweep::expand_grid(base, ":0.1,0.2"), std::invalid_argument);
  EXPECT_THROW(sweep::expand_grid(base, "load:"), std::invalid_argument);
  EXPECT_THROW(sweep::expand_grid(base, "load:0.1;load:0.2"),
               std::invalid_argument);
}

// --- parallel_for ------------------------------------------------------

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (std::size_t jobs : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    std::vector<std::atomic<int>> hits(100);
    sweep::parallel_for(100, jobs, [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << "jobs=" << jobs;
  }
}

TEST(ParallelFor, MoreJobsThanWorkIsFine) {
  std::atomic<int> calls{0};
  sweep::parallel_for(3, 8, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, ZeroItemsIsNoop) {
  sweep::parallel_for(0, 4, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ParallelFor, PropagatesFirstException) {
  EXPECT_THROW(sweep::parallel_for(8, 4,
                                   [](std::size_t i) {
                                     if (i == 5) throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
}

// A worker that hits an exception records it and keeps draining the index
// range — one bad cell must not silently skip its siblings.
TEST(ParallelFor, ThrowDoesNotStopDraining) {
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(sweep::parallel_for(64, 4,
                                   [&](std::size_t i) {
                                     ++hits[i];
                                     if (i == 0) throw std::runtime_error("early");
                                   }),
               std::runtime_error);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Many concurrent throwers: exactly one of the thrown exceptions is
// rethrown (whichever was recorded first), every index is still attempted,
// and the pool joins cleanly instead of deadlocking.
TEST(ParallelFor, ManyConcurrentThrowersPropagateExactlyOne) {
  std::vector<std::atomic<int>> hits(32);
  std::string message;
  try {
    sweep::parallel_for(32, 8, [&](std::size_t i) {
      ++hits[i];
      throw std::runtime_error("thrower-" + std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    message = e.what();
  }
  EXPECT_EQ(message.rfind("thrower-", 0), 0u) << message;
  const std::size_t idx =
      static_cast<std::size_t>(std::stoul(message.substr(std::string("thrower-").size())));
  EXPECT_LT(idx, 32u);
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ThrowerWithFewerItemsThanJobs) {
  std::atomic<int> calls{0};
  EXPECT_THROW(sweep::parallel_for(2, 16,
                                   [&](std::size_t) {
                                     ++calls;
                                     throw std::runtime_error("boom");
                                   }),
               std::runtime_error);
  EXPECT_EQ(calls.load(), 2);
}

// jobs=0 and jobs=1 both run inline on the calling thread.
TEST(ParallelFor, JobsZeroAndOneRunInline) {
  const auto caller = std::this_thread::get_id();
  for (std::size_t jobs : {std::size_t{0}, std::size_t{1}}) {
    std::size_t calls = 0;
    sweep::parallel_for(5, jobs, [&](std::size_t) {
      EXPECT_EQ(std::this_thread::get_id(), caller);
      ++calls;
    });
    EXPECT_EQ(calls, 5u) << "jobs=" << jobs;
  }
}

// Inline execution propagates immediately: indices after the thrower never
// run (unlike the pooled path, which drains). Pinned so a change here is a
// deliberate decision, not an accident.
TEST(ParallelFor, InlineThrowStopsAtTheThrower) {
  std::vector<int> hits(4, 0);
  EXPECT_THROW(sweep::parallel_for(4, 1,
                                   [&](std::size_t i) {
                                     ++hits[i];
                                     if (i == 1) throw std::runtime_error("stop");
                                   }),
               std::runtime_error);
  EXPECT_EQ(hits[0], 1);
  EXPECT_EQ(hits[1], 1);
  EXPECT_EQ(hits[2], 0);
  EXPECT_EQ(hits[3], 0);
}

// --- manifest_file_name ------------------------------------------------

TEST(ManifestFileName, PadsToThreeDigitsForSmallGrids) {
  EXPECT_EQ(sweep::manifest_file_name(0, 16), "run_000.json");
  EXPECT_EQ(sweep::manifest_file_name(7, 100), "run_007.json");
  EXPECT_EQ(sweep::manifest_file_name(999, 1000), "run_999.json");
  // Degenerate grids still produce a sane name.
  EXPECT_EQ(sweep::manifest_file_name(0, 0), "run_000.json");
  EXPECT_EQ(sweep::manifest_file_name(0, 1), "run_000.json");
}

// Regression: the pad width used to be a fixed 3, so a >=1001-cell grid
// mixed "run_999.json" with "run_1000.json" — distinct but unequal-length
// names whose lexicographic order no longer matched index order.
TEST(ManifestFileName, WidensForLargeGrids) {
  EXPECT_EQ(sweep::manifest_file_name(0, 1001), "run_0000.json");
  EXPECT_EQ(sweep::manifest_file_name(7, 2000), "run_0007.json");
  EXPECT_EQ(sweep::manifest_file_name(1234, 2000), "run_1234.json");
  EXPECT_EQ(sweep::manifest_file_name(0, 100000), "run_00000.json");
}

TEST(ManifestFileName, LargeGridNamesAreDistinctAndOrdered) {
  const std::size_t grid = 1200;
  std::set<std::string> names;
  std::string prev;
  for (std::size_t i = 0; i < grid; ++i) {
    const std::string name = sweep::manifest_file_name(i, grid);
    EXPECT_EQ(name.size(), sweep::manifest_file_name(0, grid).size());
    if (i > 0) EXPECT_LT(prev, name) << "index " << i;
    names.insert(name);
    prev = name;
  }
  EXPECT_EQ(names.size(), grid);  // every cell gets its own file
}

// --- determinism contract ---------------------------------------------

TEST(Sweep, SerialAndParallelRunsAreBitIdentical) {
  const auto pts =
      sweep::expand_grid(leafspine_base(), "load:0.3,0.7;scheme:pmsb,tcn");
  sweep::SweepConfig serial_cfg;
  serial_cfg.jobs = 1;
  sweep::SweepConfig pool_cfg;
  pool_cfg.jobs = 4;
  const auto serial = sweep::run_sweep(pts, serial_cfg);
  const auto pooled = sweep::run_sweep(pts, pool_cfg);
  ASSERT_EQ(serial.size(), pts.size());
  ASSERT_EQ(pooled.size(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(serial[i].ok) << serial[i].error;
    EXPECT_EQ(sweep::deterministic_signature(serial[i]),
              sweep::deterministic_signature(pooled[i]))
        << pts[i].label;
  }
}

// Regression for the process-global packet-id counters: the second of two
// identical runs in one process used to continue the id sequence where the
// first stopped, so its packet trace differed. With per-simulator
// allocation the full event trace — ids included — must match.
TEST(Sweep, BackToBackIdenticalRunsProduceIdenticalTraces) {
  auto capture = [] {
    experiments::DumbbellConfig cfg;
    cfg.num_senders = 2;
    cfg.scheduler.num_queues = 2;
    cfg.scheduler.weights = {1.0, 1.0};
    experiments::DumbbellScenario sc(cfg);
    trace::Tracer tracer;
    sc.bottleneck().set_tracer(&tracer);
    for (std::size_t s = 0; s < 2; ++s) {
      experiments::DumbbellFlowSpec spec;
      spec.sender = s;
      spec.service = static_cast<net::ServiceId>(s);
      sc.add_flow(spec);
    }
    sc.run(sim::milliseconds(5));
    return tracer.records();
  };
  const auto first = capture();
  const auto second = capture();
  ASSERT_FALSE(first.empty());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].time, second[i].time) << "record " << i;
    EXPECT_EQ(first[i].kind, second[i].kind) << "record " << i;
    EXPECT_EQ(first[i].packet, second[i].packet) << "record " << i;
    EXPECT_EQ(first[i].flow, second[i].flow) << "record " << i;
    EXPECT_EQ(first[i].queue, second[i].queue) << "record " << i;
  }
}

TEST(Sweep, BackToBackScenarioRunsHaveEqualSignatures) {
  sweep::SweepPoint pt;
  pt.opts = leafspine_base();
  const auto a = sweep::run_scenario(pt, /*quiet=*/true);
  const auto b = sweep::run_scenario(pt, /*quiet=*/true);
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(sweep::deterministic_signature(a), sweep::deterministic_signature(b));
}

TEST(Sweep, SignatureSeparatesDifferentRuns) {
  sweep::SweepPoint a;
  a.opts = leafspine_base();
  sweep::SweepPoint b;
  b.opts = leafspine_base();
  b.opts.set("seed", "12");
  const auto ra = sweep::run_scenario(a, /*quiet=*/true);
  const auto rb = sweep::run_scenario(b, /*quiet=*/true);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_NE(sweep::deterministic_signature(ra),
            sweep::deterministic_signature(rb));
}

// --- error handling and reports ---------------------------------------

TEST(Sweep, ScenarioErrorIsRecordedNotThrown) {
  Options bad;
  bad.set("topology", "not-a-topology");
  const auto pts = sweep::expand_grid(bad, "seed:1,2");
  sweep::SweepConfig cfg;
  const auto recs = sweep::run_sweep(pts, cfg);
  ASSERT_EQ(recs.size(), 2u);
  for (const auto& r : recs) {
    EXPECT_FALSE(r.ok);
    EXPECT_FALSE(r.error.empty());
  }
}

TEST(Sweep, ReportsContainEveryRun) {
  const auto pts = sweep::expand_grid(leafspine_base(), "load:0.3,0.7");
  sweep::SweepConfig cfg;
  cfg.jobs = 2;
  const auto recs = sweep::run_sweep(pts, cfg);

  const std::string json = sweep::sweep_report_json(recs, cfg.jobs, 1.0);
  EXPECT_NE(json.find("\"schema\":\"pmsb.sweep_report/1\""), std::string::npos);
  EXPECT_NE(json.find("\"points\":2"), std::string::npos);
  EXPECT_NE(json.find("load=0.3"), std::string::npos);
  EXPECT_NE(json.find("load=0.7"), std::string::npos);

  const std::string csv = sweep::sweep_report_csv(recs);
  // Header + one row per run.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);
  EXPECT_NE(csv.find("index,label,ok"), std::string::npos);
  EXPECT_NE(csv.find("fct_us.small.mean"), std::string::npos);
}

TEST(Sweep, ManifestsWrittenPerRun) {
  const auto pts = sweep::expand_grid(leafspine_base(), "load:0.3,0.7");
  sweep::SweepConfig cfg;
  cfg.jobs = 2;
  cfg.manifest_dir = ::testing::TempDir();
  const auto recs = sweep::run_sweep(pts, cfg);
  std::set<std::string> paths;
  for (const auto& r : recs) {
    ASSERT_TRUE(r.ok) << r.error;
    ASSERT_FALSE(r.manifest_path.empty());
    paths.insert(r.manifest_path);
    std::FILE* f = std::fopen(r.manifest_path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << r.manifest_path;
    std::fclose(f);
  }
  EXPECT_EQ(paths.size(), recs.size());  // distinct file per run
}
