// Tests for Link (serialization + propagation) and Host (NIC FIFO, demux).
#include <gtest/gtest.h>

#include <vector>

#include "net/host.hpp"
#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulator.hpp"

using namespace pmsb;
using namespace pmsb::net;

namespace {

class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(Packet pkt) override {
    arrivals.push_back(pkt);
    times.push_back(last_now ? *last_now : -1);
  }
  std::vector<Packet> arrivals;
  std::vector<sim::TimeNs> times;
  const sim::TimeNs* last_now = nullptr;
};

Packet make_packet(std::uint32_t size = 1500) {
  Packet p;
  p.size_bytes = size;
  return p;
}

}  // namespace

TEST(Link, DeliversAfterSerializationPlusPropagation) {
  sim::Simulator sim;
  SinkNode sink("sink");
  Link link(sim, sim::gbps(10), sim::microseconds(5), &sink);
  sim::TimeNs arrival = -1;
  sim.schedule_at(0, [&] {
    const sim::TimeNs tx_done = link.transmit(make_packet(1500));
    EXPECT_EQ(tx_done, 1200);  // 1500B @ 10G
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  arrival = sim.now();
  EXPECT_EQ(arrival, 1200 + 5000);
}

TEST(Link, BusyDuringSerialization) {
  sim::Simulator sim;
  SinkNode sink("sink");
  Link link(sim, sim::gbps(10), 0, &sink);
  sim.schedule_at(0, [&] {
    link.transmit(make_packet(1500));
    EXPECT_TRUE(link.busy());
  });
  sim.schedule_at(1200, [&] { EXPECT_FALSE(link.busy()); });
  sim.run();
}

TEST(Link, CountsBytesAndPackets) {
  sim::Simulator sim;
  SinkNode sink("sink");
  Link link(sim, sim::gbps(10), 0, &sink);
  sim.schedule_at(0, [&] { link.transmit(make_packet(1000)); });
  sim.schedule_at(10000, [&] { link.transmit(make_packet(500)); });
  sim.run();
  EXPECT_EQ(link.bytes_sent(), 1500u);
  EXPECT_EQ(link.packets_sent(), 2u);
  EXPECT_EQ(sink.arrivals.size(), 2u);
}

TEST(Host, SendSerializesBackToBack) {
  sim::Simulator sim;
  SinkNode sink("sink");
  Link up(sim, sim::gbps(10), 0, &sink);
  Host host(sim, 0, "h0");
  host.attach_uplink(&up);
  std::vector<sim::TimeNs> arrival_times;
  // Wrap sink arrivals with timestamps by sampling in an event after run.
  sim.schedule_at(0, [&] {
    host.send(make_packet(1500));
    host.send(make_packet(1500));
    host.send(make_packet(1500));
    EXPECT_EQ(host.nic_backlog_packets(), 2u);  // first is on the wire
  });
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
  // Three packets serialized back to back: last bit at 3 * 1200 ns.
  EXPECT_EQ(sim.now(), 3600);
  EXPECT_EQ(host.nic_backlog_bytes(), 0u);
}

TEST(Host, StampsSentTime) {
  sim::Simulator sim;
  SinkNode sink("sink");
  Link up(sim, sim::gbps(10), 0, &sink);
  Host host(sim, 0, "h0");
  host.attach_uplink(&up);
  sim.schedule_at(777, [&] { host.send(make_packet()); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].sent_time, 777);
}

TEST(Host, SendWithoutUplinkThrows) {
  sim::Simulator sim;
  Host host(sim, 0, "h0");
  EXPECT_THROW(host.send(make_packet()), std::logic_error);
}

TEST(Host, DemuxesToRegisteredHandler) {
  sim::Simulator sim;
  Host host(sim, 0, "h0");
  int got_a = 0, got_b = 0;
  host.register_flow(1, [&](Packet) { ++got_a; });
  host.register_flow(2, [&](Packet) { ++got_b; });
  Packet p1 = make_packet();
  p1.flow_id = 1;
  Packet p2 = make_packet();
  p2.flow_id = 2;
  host.receive(p1);
  host.receive(p2);
  host.receive(p1);
  EXPECT_EQ(got_a, 2);
  EXPECT_EQ(got_b, 1);
  EXPECT_EQ(host.delivered_packets(), 3u);
}

TEST(Host, UnregisteredFlowCounted) {
  sim::Simulator sim;
  Host host(sim, 0, "h0");
  Packet p = make_packet();
  p.flow_id = 99;
  host.receive(p);
  EXPECT_EQ(host.dropped_no_handler(), 1u);
}

TEST(Host, HandlerMayUnregisterItself) {
  sim::Simulator sim;
  Host host(sim, 0, "h0");
  int calls = 0;
  host.register_flow(5, [&](Packet) {
    ++calls;
    host.unregister_flow(5);
  });
  Packet p = make_packet();
  p.flow_id = 5;
  host.receive(p);
  host.receive(p);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(host.dropped_no_handler(), 1u);
}
