// Tests for the stability-analysis plane: the FFT-free oscillation detector
// over synthetic series, sampler integration, and the acceptance criterion
// that a steady dumbbell run reports zero oscillating ports.
#include <gtest/gtest.h>

#include <vector>

#include "analysis/oscillation.hpp"
#include "sim/simulator.hpp"
#include "sim/units.hpp"
#include "sweep/scenario_run.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/sampler.hpp"

using namespace pmsb;
using namespace pmsb::analysis;

namespace {

/// n samples of a square wave alternating every period/2 samples.
std::vector<double> square_wave(std::size_t n, std::size_t period, double lo,
                                double hi) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = (i / (period / 2)) % 2 == 0 ? hi : lo;
  }
  return v;
}

}  // namespace

TEST(Oscillation, FlagsSquareWave) {
  const auto v = square_wave(256, 16, 0.0, 40'000.0);
  const SeriesVerdict verdict = analyze_series("sq", v, 100.0);
  EXPECT_TRUE(verdict.oscillating);
  EXPECT_DOUBLE_EQ(verdict.dominant_period_us, 1600.0);  // lag 16 x 100 us
  EXPECT_DOUBLE_EQ(verdict.amplitude, 40'000.0);
  EXPECT_GT(verdict.max_autocorr, 0.7);
  EXPECT_GE(verdict.oscillating_windows, 3u);
}

TEST(Oscillation, IgnoresFlatSeries) {
  const std::vector<double> flat(256, 30'000.0);
  const SeriesVerdict verdict = analyze_series("flat", flat, 100.0);
  EXPECT_FALSE(verdict.oscillating);
  EXPECT_EQ(verdict.dominant_period_us, 0.0);
  EXPECT_EQ(verdict.amplitude, 0.0);
}

TEST(Oscillation, IgnoresMonotoneRamp) {
  // Huge amplitude but no cycle: the anti-phase-dip requirement rejects it.
  std::vector<double> ramp(256);
  for (std::size_t i = 0; i < ramp.size(); ++i) {
    ramp[i] = static_cast<double>(i) * 1000.0;
  }
  EXPECT_FALSE(analyze_series("ramp", ramp, 100.0).oscillating);
}

TEST(Oscillation, IgnoresOneOffBurst) {
  std::vector<double> burst(256, 0.0);
  for (std::size_t i = 100; i < 110; ++i) burst[i] = 50'000.0;
  EXPECT_FALSE(analyze_series("burst", burst, 100.0).oscillating);
}

TEST(Oscillation, SmallSawtoothDiesAtAmplitudeGate) {
  // The benign DCTCP sawtooth shape: strongly periodic but only a few
  // packets of swing. Must not be reported as a limit cycle.
  const auto v = square_wave(256, 16, 20'000.0, 27'000.0);
  const SeriesVerdict verdict = analyze_series("sawtooth", v, 100.0);
  EXPECT_GT(verdict.max_autocorr, 0.5);  // the periodicity IS there...
  EXPECT_FALSE(verdict.oscillating);     // ...but 7 kB swing is benign
}

TEST(Oscillation, ShortSeriesAnalyzesNoWindows) {
  const auto v = square_wave(30, 8, 0.0, 40'000.0);  // < one 64-sample window
  const SeriesVerdict verdict = analyze_series("short", v, 100.0);
  EXPECT_EQ(verdict.windows_analyzed, 0u);
  EXPECT_FALSE(verdict.oscillating);
}

TEST(Oscillation, MustPersistAcrossConsecutiveWindows) {
  // One oscillating stretch shorter than min_windows * hop: not sustained.
  // Two periods of swing (samples 128..160) touch only two 64-sample
  // windows, below the three-consecutive-window requirement.
  std::vector<double> v(512, 25'000.0);
  for (std::size_t i = 128; i < 160; ++i) {
    v[i] = (i / 8) % 2 == 0 ? 50'000.0 : 0.0;
  }
  OscillationConfig cfg;
  cfg.min_windows = 3;
  EXPECT_FALSE(analyze_series("blip", v, 100.0, cfg).oscillating);
}

TEST(Oscillation, AnalyzesOnlyQueueColumnsOfSampler) {
  sim::Simulator sim;
  telemetry::TimeSeriesSampler sampler(sim, sim::microseconds(100));
  // One genuinely oscillating occupancy column (1.6 ms square wave)...
  sampler.add_probe("spine0/p0.occupancy_bytes", [&sim] {
    return (sim.now() / sim::microseconds(800)) % 2 == 0 ? 40'000.0 : 0.0;
  });
  // ...one steady backlog column, and one non-queue column to be skipped.
  sampler.add_probe("leaf0/p1.backlog_bytes", [] { return 12'000.0; });
  sampler.add_probe("flow/0.cwnd_bytes", [&sim] {
    return (sim.now() / sim::microseconds(800)) % 2 == 0 ? 90'000.0 : 0.0;
  });
  sampler.start();
  sim.run(sim::milliseconds(40));

  const StabilityReport report = analyze_sampler(sampler);
  EXPECT_EQ(report.ports_analyzed, 2u);
  ASSERT_EQ(report.series.size(), 2u);
  EXPECT_EQ(report.oscillating_ports, 1u);
  EXPECT_DOUBLE_EQ(report.dominant_period_us, 1600.0);
  EXPECT_DOUBLE_EQ(report.amplitude_bytes, 40'000.0);
  EXPECT_GT(report.max_autocorr, 0.7);
}

// Acceptance: the standard steady dumbbell run must report ZERO oscillating
// ports — the detector exists to catch pathologies, not DCTCP's sawtooth.
TEST(Oscillation, SteadyDumbbellReportsZeroOscillatingPorts) {
  sweep::SweepPoint pt;
  pt.opts.set("seed", "1");
  pt.opts.set("stability", "1");
  const auto rec = sweep::run_scenario(pt, /*quiet=*/true);
  ASSERT_TRUE(rec.ok) << rec.error;
  ASSERT_GT(rec.results.at("stability.ports_analyzed"), 0.0);
  EXPECT_EQ(rec.results.at("stability.oscillating_ports"), 0.0);
  EXPECT_EQ(rec.results.at("stability.dominant_period_us"), 0.0);
}

TEST(Oscillation, ThresholdKnobsFlowThroughOptions) {
  // A stability_window larger than the whole sampled series leaves no
  // windows to analyze, so max_autocorr collapses to 0 — proof the
  // stability_* keys actually reach the detector config.
  sweep::SweepPoint base;
  base.opts.set("seed", "1");
  base.opts.set("stability", "1");
  const auto normal = sweep::run_scenario(base, /*quiet=*/true);
  ASSERT_TRUE(normal.ok) << normal.error;
  EXPECT_GT(normal.results.at("stability.max_autocorr"), 0.0);

  sweep::SweepPoint huge = base;
  huge.opts.set("stability_window", "1000000");
  const auto rec = sweep::run_scenario(huge, /*quiet=*/true);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.results.at("stability.max_autocorr"), 0.0);
  EXPECT_EQ(rec.results.at("stability.ports_analyzed"),
            normal.results.at("stability.ports_analyzed"));
}
