// Tests for the regression plane: Hash128 / RunDigest semantics (order
// sensitivity, sub-digest localization, checkpoint compaction, journal
// windows), the baseline store round trip, the noise-aware perf comparison,
// and the end-to-end guarantees the gate rests on — byte-identical digests
// for repeated runs of one scenario, and a localized divergence report when
// a run is perturbed.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "experiments/options.hpp"
#include "regress/baseline.hpp"
#include "regress/bench_runner.hpp"
#include "regress/digest.hpp"
#include "regress/divergence.hpp"
#include "regress/matrix.hpp"
#include "sweep/scenario_run.hpp"

using namespace pmsb;
using namespace pmsb::regress;
using pmsb::experiments::Options;

// ---------------------------------------------------------------------------
// Hash128

TEST(Hash128, EmptyHashIsTheFnvOffsetBasis) {
  Hash128 h;
  EXPECT_EQ(h.hex(), "6c62272e07bb014262b821756295c58d");
  EXPECT_EQ(h.hi(), 0x6c62272e07bb0142ull);
  EXPECT_EQ(h.lo(), 0x62b821756295c58dull);
}

TEST(Hash128, SameInputSameHashDifferentInputDifferentHash) {
  Hash128 a, b, c;
  a.update_string("pmsb");
  b.update_string("pmsb");
  c.update_string("pmsc");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hex(), b.hex());
  EXPECT_EQ(a.hex().size(), 32u);
}

TEST(Hash128, IsOrderSensitive) {
  Hash128 ab, ba;
  ab.update_u64(1);
  ab.update_u64(2);
  ba.update_u64(2);
  ba.update_u64(1);
  EXPECT_NE(ab, ba);
}

TEST(Fnv1a64, MatchesKnownVectors) {
  // Standard FNV-1a 64 test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ull);
}

// ---------------------------------------------------------------------------
// RunDigest

namespace {

/// Feeds `n` deterministic events across `entities` ids.
void feed(RunDigest& d, std::uint64_t n, std::uint32_t entities) {
  for (std::uint64_t i = 0; i < n; ++i) {
    d.event(static_cast<EntityId>(i % entities),
            static_cast<EventKind>(i % 6), static_cast<std::int64_t>(i * 10),
            i, i * 3);
  }
}

}  // namespace

TEST(RunDigest, IdenticalStreamsProduceIdenticalTotals) {
  RunDigest a, b;
  const auto ea = a.register_entity("port/x");
  const auto eb = b.register_entity("port/x");
  ASSERT_EQ(ea, eb);
  feed(a, 500, 1);
  feed(b, 500, 1);
  EXPECT_EQ(a.total().hex(), b.total().hex());
  EXPECT_EQ(a.count(), 500u);
}

TEST(RunDigest, TotalIsOrderSensitive) {
  RunDigest a, b;
  a.register_entity("e");
  b.register_entity("e");
  a.event(0, EventKind::kEnqueue, 1, 7, 8);
  a.event(0, EventKind::kDequeue, 2, 7, 8);
  b.event(0, EventKind::kDequeue, 2, 7, 8);
  b.event(0, EventKind::kEnqueue, 1, 7, 8);
  EXPECT_NE(a.total().hex(), b.total().hex());
}

TEST(RunDigest, SubDigestsLocalizeThePerturbedEntity) {
  RunDigest a, b;
  for (const char* name : {"port/p", "flow/0", "flow/1"}) {
    a.register_entity(name);
    b.register_entity(name);
  }
  feed(a, 300, 3);
  feed(b, 300, 3);
  // Perturb one extra event on flow/1 only.
  b.event(2, EventKind::kMark, 999, 1, 2);
  EXPECT_NE(a.total().hex(), b.total().hex());
  const auto sa = a.sub_digest_hex();
  const auto sb = b.sub_digest_hex();
  EXPECT_EQ(sa.at("port/p"), sb.at("port/p"));
  EXPECT_EQ(sa.at("flow/0"), sb.at("flow/0"));
  EXPECT_NE(sa.at("flow/1"), sb.at("flow/1"));
}

TEST(RunDigest, DuplicateEntityRegistrationThrows) {
  RunDigest d;
  d.register_entity("port/x");
  EXPECT_THROW(d.register_entity("port/x"), std::invalid_argument);
}

TEST(RunDigest, CheckpointCompactionIsBoundedAndDeterministic) {
  RunDigest a(1), b(1);  // checkpoint every event: forces compaction
  a.register_entity("e");
  b.register_entity("e");
  feed(a, 20000, 1);
  feed(b, 20000, 1);
  EXPECT_LE(a.checkpoints().size(), 4096u);
  EXPECT_GT(a.checkpoint_interval(), 1u);  // interval doubled at least once
  ASSERT_EQ(a.checkpoints().size(), b.checkpoints().size());
  for (std::size_t i = 0; i < a.checkpoints().size(); ++i) {
    EXPECT_EQ(a.checkpoints()[i].index, b.checkpoints()[i].index);
    EXPECT_EQ(a.checkpoints()[i].hash.hex(), b.checkpoints()[i].hash.hex());
    // Surviving indices are multiples of the (doubled) interval.
    EXPECT_EQ(a.checkpoints()[i].index % a.checkpoint_interval(), 0u);
  }
}

TEST(RunDigest, JournalCapturesExactlyTheArmedWindow) {
  RunDigest d;
  d.register_entity("e");
  d.arm_journal(5, 8);
  feed(d, 20, 1);
  ASSERT_EQ(d.journal().size(), 3u);
  EXPECT_EQ(d.journal()[0].index, 5u);
  EXPECT_EQ(d.journal()[2].index, 7u);
  EXPECT_EQ(d.journal()[1].time, 60);  // feed(): time = i * 10
}

TEST(RunDigest, StatKeysAreDistinguished) {
  RunDigest a, b;
  a.register_entity("e");
  b.register_entity("e");
  a.stat(0, "drops", 1);
  b.stat(0, "marks", 1);
  EXPECT_NE(a.total().hex(), b.total().hex());
}

// ---------------------------------------------------------------------------
// Baseline store

TEST(Baseline, JsonRoundTripPreservesEveryField) {
  Baseline base;
  base.git = "abc123-dirty";
  base.warmup = 1;
  base.reps = 3;
  CellBaseline cell;
  cell.name = "cell-a";
  cell.config = {{"topology", "dumbbell"}, {"seed", "1"}};
  cell.digest = "0123456789abcdef0123456789abcdef";
  cell.event_count = 9223372036854775809ull;  // > 2^53: exercises raw_number
  cell.sub_digests = {{"flow/0", std::string(32, 'a')},
                      {"port/p", std::string(32, 'b')}};
  cell.checkpoint_interval = 2048;
  cell.checkpoints = {{2048, std::string(32, 'c')}, {4096, std::string(32, 'd')}};
  cell.perf.wall_s_median = 0.25;
  cell.perf.wall_s_mad = 0.01;
  cell.perf.events_per_s_median = 4.5e6;
  cell.perf.events_per_s_mad = 1e4;
  cell.perf.peak_rss_bytes = 123456789.0;
  cell.perf.events = 1234567;
  cell.perf.reps = 3;
  base.cells.push_back(cell);

  const auto parsed = parse_baseline(baseline_json(base), "<test>");
  EXPECT_EQ(parsed.git, "abc123-dirty");
  EXPECT_EQ(parsed.warmup, 1);
  EXPECT_EQ(parsed.reps, 3);
  ASSERT_EQ(parsed.cells.size(), 1u);
  const auto& c = parsed.cells[0];
  EXPECT_EQ(c.name, "cell-a");
  EXPECT_EQ(c.config, cell.config);
  EXPECT_EQ(c.digest, cell.digest);
  EXPECT_EQ(c.event_count, cell.event_count);
  EXPECT_EQ(c.sub_digests, cell.sub_digests);
  EXPECT_EQ(c.checkpoint_interval, 2048u);
  EXPECT_EQ(c.checkpoints, cell.checkpoints);
  EXPECT_DOUBLE_EQ(c.perf.wall_s_median, 0.25);
  EXPECT_DOUBLE_EQ(c.perf.events_per_s_median, 4.5e6);
  EXPECT_DOUBLE_EQ(c.perf.peak_rss_bytes, 123456789.0);
  EXPECT_EQ(c.perf.events, 1234567u);
  EXPECT_EQ(c.perf.reps, 3);
  EXPECT_NE(parsed.find("cell-a"), nullptr);
  EXPECT_EQ(parsed.find("missing"), nullptr);
}

TEST(Baseline, ParserRejectsWrongSchemaAndGarbage) {
  EXPECT_THROW(parse_baseline("not json", "<t>"), std::runtime_error);
  EXPECT_THROW(parse_baseline("{\"schema\":\"pmsb.run_manifest/1\"}", "<t>"),
               std::runtime_error);
  EXPECT_THROW(read_baseline("/nonexistent/baseline.json"), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Bench runner statistics

TEST(BenchRunner, MedianAndMadAreRobustToOutliers) {
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 100.0}), 2.5);
  EXPECT_DOUBLE_EQ(mad({1.0, 2.0, 3.0}, 2.0), 1.0);
  // One wild outlier barely moves median/MAD.
  EXPECT_DOUBLE_EQ(median({5.0, 5.0, 5.0, 5.0, 500.0}), 5.0);
  EXPECT_DOUBLE_EQ(mad({5.0, 5.0, 5.0, 5.0, 500.0}, 5.0), 0.0);
}

TEST(BenchRunner, ComparePerfFlagsOnlyRegressionsBeyondNoise) {
  CellPerf base;
  base.events_per_s_median = 1e6;
  base.events_per_s_mad = 1e4;
  base.reps = 3;

  Measurement same;
  same.events_per_s_median = 0.99e6;
  same.events_per_s_mad = 1e4;
  EXPECT_TRUE(compare_perf(base, same, 0.25, 4.0).ok);

  Measurement slow;
  slow.events_per_s_median = 0.5e6;  // 50% drop >> 25% tolerance
  slow.events_per_s_mad = 1e4;
  const auto verdict = compare_perf(base, slow, 0.25, 4.0);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NEAR(verdict.ratio, 0.5, 1e-9);
  EXPECT_NE(verdict.detail.find("REGRESSION"), std::string::npos);

  // Noisy baselines widen the allowance: the same 50% drop passes when the
  // combined MAD dwarfs it.
  base.events_per_s_mad = 2e5;
  slow.events_per_s_mad = 2e5;
  EXPECT_TRUE(compare_perf(base, slow, 0.25, 4.0).ok);

  // A baseline without perf (reps == 0) always compares ok.
  CellPerf unpinned;
  EXPECT_TRUE(compare_perf(unpinned, slow, 0.25, 4.0).ok);
}

// ---------------------------------------------------------------------------
// Matrix

TEST(Matrix, DefaultMatrixHasUniqueNamesAndSelectWorks) {
  const auto all = default_matrix();
  ASSERT_GE(all.size(), 4u);
  std::set<std::string> names;
  for (const auto& cell : all) names.insert(cell.name);
  EXPECT_EQ(names.size(), all.size());

  const auto picked = select_cells(all[0].name + "," + all[1].name);
  ASSERT_EQ(picked.size(), 2u);
  EXPECT_EQ(picked[0].name, all[0].name);
  EXPECT_EQ(select_cells("").size(), all.size());
  EXPECT_THROW(select_cells("no-such-cell"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// End-to-end: scenario runs feeding the digest

namespace {

Options small_dumbbell() {
  Options opts;
  opts.set("topology", "dumbbell");
  opts.set("scheme", "pmsb");
  opts.set("scheduler", "dwrr");
  opts.set("queues", "2");
  opts.set("flows_per_queue", "1,2");
  opts.set("duration_ms", "5");
  opts.set("seed", "7");
  return opts;
}

}  // namespace

TEST(RegressEndToEnd, BackToBackRunsProduceByteIdenticalDigests) {
  sweep::SweepPoint point;
  point.opts = small_dumbbell();
  RunDigest first, second;
  const auto r1 = sweep::run_scenario(point, true, &first);
  const auto r2 = sweep::run_scenario(point, true, &second);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_GT(first.count(), 0u);
  EXPECT_EQ(first.count(), second.count());
  EXPECT_EQ(first.total().hex(), second.total().hex());
  EXPECT_EQ(first.sub_digest_hex(), second.sub_digest_hex());
  // The record reports the digest too.
  EXPECT_EQ(r1.info.at("digest"), first.total().hex());
  EXPECT_EQ(r1.results.at("digest.events"),
            static_cast<double>(first.count()));
}

TEST(RegressEndToEnd, QueueBackendsProduceIdenticalDigests) {
  // The tentpole guarantee at scenario scale: `sched_queue=` is a pure
  // performance knob. A full dumbbell run — packet events, timer churn,
  // cancellations, tombstone compactions — must digest identically whether
  // the kernel orders events with the heap or the calendar backend.
  sweep::SweepPoint point;
  point.opts = small_dumbbell();
  RunDigest heap, calendar;
  point.opts.set("sched_queue", "heap");
  const auto r1 = sweep::run_scenario(point, true, &heap);
  point.opts.set("sched_queue", "calendar");
  const auto r2 = sweep::run_scenario(point, true, &calendar);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_GT(heap.count(), 0u);
  EXPECT_EQ(heap.count(), calendar.count());
  EXPECT_EQ(heap.total().hex(), calendar.total().hex());
  EXPECT_EQ(heap.sub_digest_hex(), calendar.sub_digest_hex());
}

TEST(RegressEndToEnd, DigestIsOffByDefault) {
  sweep::SweepPoint point;
  point.opts = small_dumbbell();
  const auto rec = sweep::run_scenario(point, true);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(rec.info.count("digest"), 0u);

  // digest=1 computes one internally and reports it.
  point.opts.set("digest", "1");
  const auto with = sweep::run_scenario(point, true);
  ASSERT_TRUE(with.ok) << with.error;
  EXPECT_EQ(with.info.count("digest"), 1u);
  EXPECT_EQ(with.info.at("digest").size(), 32u);
}

TEST(RegressEndToEnd, LeafspineDigestIsDeterministicToo) {
  Options opts;
  opts.set("topology", "leafspine");
  opts.set("scheme", "pmsb");
  opts.set("flows", "40");
  opts.set("load", "0.3");
  opts.set("seed", "5");
  sweep::SweepPoint point;
  point.opts = opts;
  RunDigest first, second;
  const auto r1 = sweep::run_scenario(point, true, &first);
  const auto r2 = sweep::run_scenario(point, true, &second);
  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(first.total().hex(), second.total().hex());
  EXPECT_GT(first.num_entities(), 2u);
}

TEST(RegressEndToEnd, StaticBufferPolicyIsDigestIdenticalAcrossTheMatrix) {
  // The buffer-policy refactor's compatibility guarantee: routing admission
  // through BufferPolicy with the explicit `buffer_policy=static` key is
  // bit-identical to the pre-refactor inline drop-tail (the default path)
  // on EVERY cell of the regression matrix — schemes, schedulers, mark
  // points, bleach faults, and both topologies.
  for (const auto& cell : default_matrix()) {
    sweep::SweepPoint base;
    base.opts = cell.opts;
    RunDigest before;
    const auto r1 = sweep::run_scenario(base, true, &before);
    ASSERT_TRUE(r1.ok) << cell.name << ": " << r1.error;

    sweep::SweepPoint pinned;
    pinned.opts = cell.opts;
    pinned.opts.set("buffer_policy", "static");
    RunDigest after;
    const auto r2 = sweep::run_scenario(pinned, true, &after);
    ASSERT_TRUE(r2.ok) << cell.name << ": " << r2.error;

    EXPECT_GT(before.count(), 0u) << cell.name;
    EXPECT_EQ(before.count(), after.count()) << cell.name;
    EXPECT_EQ(before.total().hex(), after.total().hex()) << cell.name;
    EXPECT_EQ(before.sub_digest_hex(), after.sub_digest_hex()) << cell.name;
  }
}

TEST(RegressEndToEnd, PooledPoliciesChangeBehaviorOnlyUnderPressure) {
  // equal / dt with a generous pool admit everything the static path admits
  // in a short run, but a tiny shared pool must actually bite: the digest
  // diverges and the policy-specific drop reasons show up in the record.
  sweep::SweepPoint roomy;
  roomy.opts = small_dumbbell();
  roomy.opts.set("buffer_policy", "dt");
  roomy.opts.set("dt_alpha", "1");
  RunDigest roomy_digest;
  const auto r1 = sweep::run_scenario(roomy, true, &roomy_digest);
  ASSERT_TRUE(r1.ok) << r1.error;
  EXPECT_EQ(r1.results.at("drops.dynamic_threshold"), 0.0);

  sweep::SweepPoint tiny = roomy;
  tiny.opts.set("buffer_bytes", std::to_string(16 * 1500));  // shared pool
  RunDigest tiny_digest;
  const auto r2 = sweep::run_scenario(tiny, true, &tiny_digest);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_GT(r2.results.at("drops.dynamic_threshold"), 0.0);
  EXPECT_NE(roomy_digest.total().hex(), tiny_digest.total().hex());
  EXPECT_EQ(r2.info.at("buffer_policy"), "dt");
}

TEST(RegressEndToEnd, PerturbationIsDetectedAndLocalized) {
  // Record the clean run as a baseline cell.
  sweep::SweepPoint clean;
  clean.opts = small_dumbbell();
  RunDigest recorded;
  ASSERT_TRUE(sweep::run_scenario(clean, true, &recorded).ok);

  CellBaseline base;
  base.name = "perturb-test";
  base.digest = recorded.total().hex();
  base.event_count = recorded.count();
  base.sub_digests = recorded.sub_digest_hex();
  base.checkpoint_interval = recorded.checkpoint_interval();
  for (const auto& cp : recorded.checkpoints()) {
    base.checkpoints.emplace_back(cp.index, cp.hash.hex());
  }

  // The "current" build bleaches half the CE marks — behaviorally divergent.
  sweep::SweepPoint perturbed = clean;
  perturbed.opts.set("bleach", "0.5");
  RunDigest current;
  ASSERT_TRUE(sweep::run_scenario(perturbed, true, &current).ok);
  EXPECT_NE(current.total().hex(), base.digest);

  const auto report = find_divergence(base, current, [&](RunDigest& replay) {
    ASSERT_TRUE(sweep::run_scenario(perturbed, true, &replay).ok);
  });
  EXPECT_TRUE(report.diverged);
  EXPECT_FALSE(report.entities.empty());
  EXPECT_TRUE(report.event_located);
  EXPECT_FALSE(report.first_entity_name.empty());
  EXPECT_NE(report.summary().find("first diverging event"), std::string::npos);
  EXPECT_LT(report.window_lo, report.window_hi);
}

TEST(RegressEndToEnd, MatchingRunYieldsNoDivergence) {
  sweep::SweepPoint point;
  point.opts = small_dumbbell();
  RunDigest recorded, again;
  ASSERT_TRUE(sweep::run_scenario(point, true, &recorded).ok);
  ASSERT_TRUE(sweep::run_scenario(point, true, &again).ok);

  CellBaseline base;
  base.name = "match-test";
  base.digest = recorded.total().hex();
  base.event_count = recorded.count();
  base.sub_digests = recorded.sub_digest_hex();
  base.checkpoint_interval = recorded.checkpoint_interval();
  for (const auto& cp : recorded.checkpoints()) {
    base.checkpoints.emplace_back(cp.index, cp.hash.hex());
  }

  bool reran = false;
  const auto report = find_divergence(base, again, [&](RunDigest&) { reran = true; });
  EXPECT_FALSE(report.diverged);
  EXPECT_FALSE(reran);  // no mismatch -> no replay
  EXPECT_EQ(report.summary(), "");
}
