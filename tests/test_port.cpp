// Tests for the switch output port: classification, drop-tail, marking at
// enqueue vs dequeue, transmit loop pacing.
#include <gtest/gtest.h>

#include <vector>

#include "net/node.hpp"
#include "switchlib/port.hpp"

using namespace pmsb;
using namespace pmsb::switchlib;

namespace {

class SinkNode : public net::Node {
 public:
  explicit SinkNode() : Node("sink") {}
  void receive(net::Packet pkt) override { arrivals.push_back(pkt); }
  std::vector<net::Packet> arrivals;
};

net::Packet data_pkt(net::ServiceId service, std::uint32_t size = 1500) {
  net::Packet p;
  p.service = service;
  p.size_bytes = size;
  p.ect = true;
  return p;
}

PortConfig two_queue_config() {
  PortConfig cfg;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  cfg.marking.kind = ecn::MarkingKind::kNone;
  cfg.buffer_bytes = 10 * 1500;
  return cfg;
}

}  // namespace

TEST(Port, ClassifiesByServiceModQueues) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  Port port(sim, &link, two_queue_config());
  sim.schedule_at(0, [&] {
    port.handle(data_pkt(0));
    port.handle(data_pkt(1));
    port.handle(data_pkt(3));  // 3 % 2 -> queue 1
    // First packet is already in flight; the other two are queued.
    EXPECT_EQ(port.queue_bytes(1), 2u * 1500u);
  });
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 3u);
}

TEST(Port, TransmitsBackToBackAtLineRate) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  Port port(sim, &link, two_queue_config());
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 5; ++i) port.handle(data_pkt(0));
  });
  sim.run();
  EXPECT_EQ(sink.arrivals.size(), 5u);
  EXPECT_EQ(sim.now(), 5 * 1200);
  EXPECT_EQ(port.stats().dequeued_packets, 5u);
}

TEST(Port, DropTailBeyondBufferLimit) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.buffer_bytes = 3 * 1500;
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    // First goes straight to the wire (leaves the buffer), then 3 fit, the
    // rest drop.
    for (int i = 0; i < 8; ++i) port.handle(data_pkt(0));
  });
  sim.run();
  EXPECT_EQ(port.stats().dropped_packets, 4u);
  EXPECT_EQ(sink.arrivals.size(), 4u);
}

TEST(Port, EnqueueMarkingSetsCe) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 2 * 1500;
  cfg.marking.point = ecn::MarkPoint::kEnqueue;
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 5; ++i) port.handle(data_pkt(0));
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 5u);
  // Packet 0 leaves immediately (port empty at decision: 1 pkt < 2); packet
  // 1 sees 1 buffered + itself = 2 -> marked, and so on.
  EXPECT_FALSE(sink.arrivals[0].ce);
  int marked = 0;
  for (const auto& p : sink.arrivals) marked += p.ce ? 1 : 0;
  EXPECT_EQ(marked, static_cast<int>(port.stats().marked_enqueue));
  EXPECT_GE(marked, 3);
}

TEST(Port, DequeueMarkingUsesStateBeforeRemoval) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 2 * 1500;
  cfg.marking.point = ecn::MarkPoint::kDequeue;
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 3; ++i) port.handle(data_pkt(0));
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  // Packet 0 departs with only itself in the buffer (1500 < 3000): clean.
  // Packet 1 departs while packet 2 is still queued (3000 >= 3000): marked.
  // Packet 2 departs alone: clean.
  EXPECT_FALSE(sink.arrivals[0].ce);
  EXPECT_TRUE(sink.arrivals[1].ce);
  EXPECT_FALSE(sink.arrivals[2].ce);
  EXPECT_EQ(port.stats().marked_dequeue, 1u);
  EXPECT_EQ(port.stats().marked_enqueue, 0u);
}

TEST(Port, NonEctPacketsNeverMarked) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 0;  // mark everything eligible
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    auto p = data_pkt(0);
    p.ect = false;
    port.handle(p);
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_FALSE(sink.arrivals[0].ce);
  EXPECT_EQ(port.stats().marked_enqueue, 0u);
}

TEST(Port, AlreadyMarkedPacketNotDoubleCounted) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 0;
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    auto p = data_pkt(0);
    p.ce = true;  // marked upstream
    port.handle(p);
  });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_TRUE(sink.arrivals[0].ce);
  EXPECT_EQ(port.stats().marked_enqueue, 0u);
}

TEST(Port, EnqueueTimestampStamped) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  Port port(sim, &link, two_queue_config());
  sim.schedule_at(4242, [&] { port.handle(data_pkt(0)); });
  sim.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].enqueue_time, 4242);
}

TEST(Port, CustomClassifier) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  Port port(sim, &link, two_queue_config());
  port.set_classifier([](const net::Packet&) { return std::size_t{1}; });
  sim.schedule_at(0, [&] {
    port.handle(data_pkt(0));
    port.handle(data_pkt(0));
    EXPECT_EQ(port.queue_bytes(1), 1500u);
    EXPECT_EQ(port.queue_bytes(0), 0u);
  });
  sim.run();
}

TEST(Port, MarkedPerQueueCountsByQueue) {
  sim::Simulator sim;
  SinkNode sink;
  net::Link link(sim, sim::gbps(10), 0, &sink);
  auto cfg = two_queue_config();
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 1500;
  Port port(sim, &link, cfg);
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 6; ++i) port.handle(data_pkt(i % 2));
  });
  sim.run();
  const auto& st = port.stats();
  EXPECT_EQ(st.marked_per_queue.size(), 2u);
  EXPECT_EQ(st.marked_per_queue[0] + st.marked_per_queue[1], st.marked_enqueue);
}
