// Truth-table tests of the paper's Algorithm 1 (PMSB) and Algorithm 2
// (PMSB(e)) pure functions.
#include <gtest/gtest.h>

#include "core/pmsb_algorithm.hpp"
#include "sim/time.hpp"
#include "sim/units.hpp"

using namespace pmsb;
using namespace pmsb::core;

// --- Algorithm 1 ---

TEST(Algorithm1, NoMarkBelowPortThreshold) {
  // Lines 1-3: port not congested -> never mark, regardless of queue state.
  EXPECT_FALSE(pmsb_should_mark(/*port*/ 999, /*portK*/ 1000, /*queue*/ 999, 1.0, 1.0));
  EXPECT_FALSE(pmsb_should_mark(0, 1000, 0, 1.0, 2.0));
}

TEST(Algorithm1, MarkWhenBothConditionsHold) {
  // Port at threshold and queue at its weight share.
  EXPECT_TRUE(pmsb_should_mark(1000, 1000, 500, 1.0, 2.0));
  EXPECT_TRUE(pmsb_should_mark(2000, 1000, 501, 1.0, 2.0));
}

TEST(Algorithm1, SelectiveBlindnessSparesShortQueue) {
  // Port qualifies but this queue is under its share: the victim case the
  // paper protects (lines 8-9).
  EXPECT_FALSE(pmsb_should_mark(1000, 1000, 499, 1.0, 2.0));
  EXPECT_FALSE(pmsb_should_mark(5000, 1000, 0, 1.0, 2.0));
}

TEST(Algorithm1, QueueThresholdExactBoundaryMarks) {
  // Line 5 uses >=: exactly at the queue threshold marks.
  EXPECT_TRUE(pmsb_should_mark(1000, 1000, 500, 1.0, 2.0));
}

TEST(Algorithm1, PortThresholdExactBoundaryMarks) {
  // Line 1 uses <: port_length == port_threshold proceeds to the filter.
  EXPECT_TRUE(pmsb_should_mark(1000, 1000, 1000, 1.0, 1.0));
}

TEST(Algorithm1, WeightShareScalesQueueThreshold) {
  // Heavier queue needs proportionally more backlog to be marked.
  const std::uint64_t port_k = 7000;
  // w=3 of 7 -> queue threshold 3000.
  EXPECT_FALSE(pmsb_should_mark(7000, port_k, 2999, 3.0, 7.0));
  EXPECT_TRUE(pmsb_should_mark(7000, port_k, 3000, 3.0, 7.0));
  // w=4 of 7 -> queue threshold 4000.
  EXPECT_FALSE(pmsb_should_mark(7000, port_k, 3999, 4.0, 7.0));
  EXPECT_TRUE(pmsb_should_mark(7000, port_k, 4000, 4.0, 7.0));
}

TEST(Algorithm1, FilterScaleMakesBlindnessConservative) {
  // filter_scale > 1: more blindness (fewer marks accepted).
  EXPECT_TRUE(pmsb_should_mark(1000, 1000, 500, 1.0, 2.0, 1.0));
  EXPECT_FALSE(pmsb_should_mark(1000, 1000, 500, 1.0, 2.0, 1.5));
  // filter_scale < 1: more aggressive marking.
  EXPECT_TRUE(pmsb_should_mark(1000, 1000, 300, 1.0, 2.0, 0.5));
}

TEST(Algorithm1, SingleQueuePortDegeneratesToPerPort) {
  // With one queue, queue length == port length, so Algorithm 1 reduces to
  // plain per-port marking.
  for (std::uint64_t len : {0ull, 500ull, 1000ull, 2000ull}) {
    EXPECT_EQ(pmsb_should_mark(len, 1000, len, 1.0, 1.0), len >= 1000);
  }
}

TEST(Algorithm1, QueueThresholdFormula) {
  EXPECT_DOUBLE_EQ(pmsb_queue_threshold(1.0, 2.0, 1000), 500.0);
  EXPECT_DOUBLE_EQ(pmsb_queue_threshold(3.0, 4.0, 2000), 1500.0);
  EXPECT_DOUBLE_EQ(pmsb_queue_threshold(1.0, 1.0, 1234), 1234.0);
  EXPECT_DOUBLE_EQ(pmsb_queue_threshold(1.0, 2.0, 1000, 0.5), 250.0);
}

TEST(Algorithm1, ExhaustiveTruthTable) {
  // Sweep a grid and check against the reference predicate.
  const std::uint64_t port_k = 1200;
  for (std::uint64_t port_len = 0; port_len <= 2400; port_len += 100) {
    for (std::uint64_t q_len = 0; q_len <= 1200; q_len += 50) {
      for (double w : {0.5, 1.0, 2.0}) {
        const double wsum = 3.5;
        const bool expected =
            port_len >= port_k &&
            static_cast<double>(q_len) >= w / wsum * static_cast<double>(port_k);
        EXPECT_EQ(pmsb_should_mark(port_len, port_k, q_len, w, wsum), expected)
            << "port=" << port_len << " queue=" << q_len << " w=" << w;
      }
    }
  }
}

// --- Algorithm 2 ---

TEST(Algorithm2, NoMarkAlwaysIgnored) {
  // Lines 1-3: nothing to react to.
  EXPECT_TRUE(pmsbe_ignore_mark(false, sim::microseconds(999), sim::microseconds(1)));
  EXPECT_TRUE(pmsbe_ignore_mark(false, 0, 0));
}

TEST(Algorithm2, SmallRttIgnoresMark) {
  // Lines 4-6: RTT below threshold -> victim of per-port marking -> blind.
  EXPECT_TRUE(
      pmsbe_ignore_mark(true, sim::microseconds(30), sim::microseconds(40)));
}

TEST(Algorithm2, LargeRttAcceptsMark) {
  // Lines 7-8.
  EXPECT_FALSE(
      pmsbe_ignore_mark(true, sim::microseconds(50), sim::microseconds(40)));
}

TEST(Algorithm2, ThresholdBoundaryAccepts) {
  // Line 4 uses <: cur_rtt == threshold accepts the mark.
  EXPECT_FALSE(
      pmsbe_ignore_mark(true, sim::microseconds(40), sim::microseconds(40)));
}

TEST(Algorithm2, ZeroThresholdNeverIgnoresRealMarks) {
  EXPECT_FALSE(pmsbe_ignore_mark(true, 1, 0));
  EXPECT_FALSE(pmsbe_ignore_mark(true, 0, 0));
}
