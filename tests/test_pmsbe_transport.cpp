// Tests for the PMSB(e) end-host rule wired into the DCTCP sender
// (Algorithm 2 in the transport): marks are ignored while the flow's RTT is
// below the threshold, accepted above it.
#include <gtest/gtest.h>

#include "experiments/dumbbell.hpp"
#include "experiments/presets.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {
DumbbellConfig perport_config(std::size_t senders, std::size_t queues) {
  DumbbellConfig cfg;
  cfg.num_senders = senders;
  cfg.link_rate = sim::gbps(10);
  cfg.link_delay = sim::microseconds(2);
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = queues;
  cfg.scheduler.weights.assign(queues, 1.0);
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = cfg.scheduler.weights;
  return cfg;
}
}  // namespace

TEST(PmsbeTransport, HugeThresholdIgnoresEveryMark) {
  // rtt_threshold far above any achievable RTT: every ECE must be ignored,
  // so the flow never cuts its window on ECN.
  auto cfg = perport_config(2, 1);
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .pmsbe = true, .pmsbe_rtt_threshold = sim::seconds(1)});
  sc.add_flow({.sender = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(15));
  const auto& st = sc.flow(0).sender().stats();
  EXPECT_GT(st.ece_acks, 0u);
  EXPECT_EQ(st.ece_ignored, st.ece_acks);
  EXPECT_EQ(st.window_cuts, 0u);
}

TEST(PmsbeTransport, ZeroThresholdAcceptsEveryMark) {
  auto cfg = perport_config(2, 1);
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .pmsbe = true, .pmsbe_rtt_threshold = 0});
  sc.add_flow({.sender = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(15));
  const auto& st = sc.flow(0).sender().stats();
  EXPECT_GT(st.ece_acks, 0u);
  EXPECT_EQ(st.ece_ignored, 0u);
  EXPECT_GT(st.window_cuts, 0u);
}

TEST(PmsbeTransport, VictimFlowProtectedFromPerPortMarking) {
  // The paper's Fig. 3 setup with PMSB(e): queue 0 has 1 flow, queue 1 has
  // 8 flows; per-port marking alone starves queue 0, but PMSB(e) senders
  // restore the 1:1 weighted share.
  auto cfg = perport_config(9, 2);
  DumbbellScenario sc(cfg);
  SchemeParams params;
  params.capacity = cfg.link_rate;
  params.rtt = sim::microseconds(18);
  const sim::TimeNs rtt_threshold =
      pmsbe_rtt_threshold(params, /*base_rtt=*/sim::microseconds(11));
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
               .pmsbe = true, .pmsbe_rtt_threshold = rtt_threshold});
  for (std::size_t i = 1; i < 9; ++i) {
    sc.add_flow({.sender = i, .service = 1, .bytes = 0, .start = 0,
                 .pmsbe = true, .pmsbe_rtt_threshold = rtt_threshold});
  }
  sc.run(sim::milliseconds(10));
  const auto q0 = sc.served_bytes(0);
  const auto q1 = sc.served_bytes(1);
  sc.run(sim::milliseconds(60));
  const double r0 = static_cast<double>(sc.served_bytes(0) - q0);
  const double r1 = static_cast<double>(sc.served_bytes(1) - q1);
  // Weighted fair sharing 1:1 within 20%.
  EXPECT_NEAR(r0 / (r0 + r1), 0.5, 0.1);
  // And the victim flow did ignore marks.
  EXPECT_GT(sc.flow(0).sender().stats().ece_ignored, 0u);
}

TEST(PmsbeTransport, DisabledFlowsNeverIgnore) {
  auto cfg = perport_config(2, 1);
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  sc.add_flow({.sender = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  EXPECT_EQ(sc.flow(0).sender().stats().ece_ignored, 0u);
}

TEST(PmsbeTransport, CoexistsWithPlainDctcp) {
  // §V: PMSB(e) "can coexist with other ECN-based transports like DCTCP".
  // Half the senders run PMSB(e), half plain DCTCP, all in one queue: the
  // link stays saturated, nobody collapses, and no drops occur.
  auto cfg = perport_config(4, 1);
  DumbbellScenario sc(cfg);
  for (std::size_t i = 0; i < 2; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0,
                 .pmsbe = true, .pmsbe_rtt_threshold = sim::microseconds(14)});
  }
  for (std::size_t i = 2; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(10));
  std::vector<std::uint64_t> acked(4);
  for (std::size_t f = 0; f < 4; ++f) acked[f] = sc.flow(f).sender().bytes_acked();
  sc.run(sim::milliseconds(60));
  double total = 0;
  for (std::size_t f = 0; f < 4; ++f) {
    const double got = static_cast<double>(sc.flow(f).sender().bytes_acked() - acked[f]);
    EXPECT_GT(got, 0.0) << "flow " << f << " starved";
    total += got;
  }
  const double gbps = total * 8.0 / static_cast<double>(sim::milliseconds(50));
  EXPECT_GT(gbps, 8.5);
  EXPECT_EQ(sc.bottleneck().stats().dropped_packets, 0u);
}

TEST(PmsbeTransport, PresetRttThresholdFormula) {
  // Threshold = base RTT + drain time of the port threshold.
  SchemeParams p;
  p.capacity = sim::gbps(10);
  p.rtt = sim::microseconds_f(85.2);
  // C*RTT = 71 pkts -> port threshold = ceil(10.15)+1 = 12 pkts = 14.4 us.
  EXPECT_EQ(pmsb_port_threshold_bytes(p), 12u * 1500u);
  const auto thr = pmsbe_rtt_threshold(p, sim::microseconds_f(70.8));
  EXPECT_NEAR(sim::to_microseconds(thr), 85.2, 0.5);
}
