// End-to-end DCTCP transport tests over the dumbbell scenario: completion,
// throughput, ECN reaction, loss recovery, pacing, RTT estimation.
#include <gtest/gtest.h>

#include "experiments/dumbbell.hpp"
#include "transport/rtt_estimator.hpp"

using namespace pmsb;
using namespace pmsb::experiments;

namespace {

DumbbellConfig base_config(std::size_t senders, std::size_t queues = 1) {
  DumbbellConfig cfg;
  cfg.num_senders = senders;
  cfg.link_rate = sim::gbps(10);
  cfg.link_delay = sim::microseconds(2);
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = queues;
  cfg.marking.kind = ecn::MarkingKind::kNone;
  return cfg;
}

}  // namespace

TEST(Dctcp, ShortFlowCompletes) {
  DumbbellScenario sc(base_config(1));
  const auto idx = sc.add_flow({.sender = 0, .service = 0, .bytes = 14600, .start = 0});
  sim::TimeNs fct = -1;
  sc.flow(idx).sender().set_completion_callback([&](sim::TimeNs t) { fct = t; });
  sc.run(sim::milliseconds(10));
  EXPECT_TRUE(sc.flow(idx).sender().complete());
  // 10 segments, initial window 10: one RTT-ish.
  EXPECT_GT(fct, 0);
  EXPECT_LT(fct, sim::microseconds(100));
}

TEST(Dctcp, CompletionDeliversExactBytes) {
  DumbbellScenario sc(base_config(1));
  const std::uint64_t bytes = 777'777;  // not a multiple of MSS
  const auto idx = sc.add_flow({.sender = 0, .service = 0, .bytes = bytes, .start = 0});
  sc.run(sim::milliseconds(50));
  ASSERT_TRUE(sc.flow(idx).sender().complete());
  EXPECT_EQ(sc.flow(idx).sender().bytes_acked(), bytes);
  EXPECT_EQ(sc.flow(idx).receiver().rcv_nxt(), bytes);
}

TEST(Dctcp, LongFlowSaturatesLink) {
  DumbbellScenario sc(base_config(1));
  const auto idx = sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(5));
  const auto s1 = sc.flow(idx).sender().bytes_acked();
  sc.run(sim::milliseconds(25));
  const auto s2 = sc.flow(idx).sender().bytes_acked();
  const double gbps = static_cast<double>(s2 - s1) * 8.0 /
                      static_cast<double>(sim::milliseconds(20));
  // Goodput ~ payload share of 10G (1460/1500 = 9.73) minus slack.
  EXPECT_GT(gbps, 9.0);
  EXPECT_LT(gbps, 10.0);
}

TEST(Dctcp, EcnMarkingKeepsBufferNearThreshold) {
  auto cfg = base_config(4);
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 16 * 1500;
  DumbbellScenario sc(cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  sc.run(sim::milliseconds(20));
  // After convergence the buffer should hover near K, far below the cap.
  const auto buffered = sc.bottleneck().buffered_bytes();
  EXPECT_LT(buffered, 60u * 1500u);
  EXPECT_GT(sc.bottleneck().stats().marked_enqueue, 100u);
  EXPECT_EQ(sc.bottleneck().stats().dropped_packets, 0u);
}

TEST(Dctcp, AlphaStaysInUnitInterval) {
  auto cfg = base_config(4);
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 8 * 1500;
  DumbbellScenario sc(cfg);
  for (std::size_t i = 0; i < 4; ++i) {
    sc.add_flow({.sender = i, .service = 0, .bytes = 0, .start = 0});
  }
  for (int ms = 1; ms <= 20; ++ms) {
    sc.run(sim::milliseconds(ms));
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_GE(sc.flow(i).sender().alpha(), 0.0);
      EXPECT_LE(sc.flow(i).sender().alpha(), 1.0);
      EXPECT_GE(sc.flow(i).sender().cwnd_bytes(), 1460.0);
    }
  }
}

TEST(Dctcp, MarksTriggerWindowCuts) {
  auto cfg = base_config(2);
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 8 * 1500;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  sc.add_flow({.sender = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(20));
  EXPECT_GT(sc.flow(0).sender().stats().ece_acks, 0u);
  EXPECT_GT(sc.flow(0).sender().stats().window_cuts, 0u);
}

TEST(Dctcp, RecoversFromDropsInTinyBuffer) {
  auto cfg = base_config(4);
  cfg.buffer_bytes = 8 * 1500;  // tiny: slow-start overshoot must drop
  cfg.transport.ecn_enabled = false;  // force loss-based behaviour
  DumbbellScenario sc(cfg);
  std::vector<std::size_t> flows;
  for (std::size_t i = 0; i < 4; ++i) {
    flows.push_back(
        sc.add_flow({.sender = i, .service = 0, .bytes = 500'000, .start = 0}));
  }
  sc.run(sim::seconds(2));
  std::uint64_t retx = 0;
  for (auto idx : flows) {
    EXPECT_TRUE(sc.flow(idx).sender().complete()) << "flow " << idx;
    retx += sc.flow(idx).sender().stats().retransmits;
  }
  EXPECT_GT(sc.bottleneck().stats().dropped_packets, 0u);
  EXPECT_GT(retx, 0u);
}

TEST(Dctcp, TwoFlowsShareFairly) {
  // DCTCP converges to fairness through its ECN feedback loop, so the
  // bottleneck needs a marking scheme (plain drop-tail TCP with a huge
  // buffer has no mechanism to equalise synchronized flows).
  auto cfg = base_config(2);
  cfg.marking.kind = ecn::MarkingKind::kPerPort;
  cfg.marking.threshold_bytes = 16 * 1500;
  DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  sc.add_flow({.sender = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto a1 = sc.flow(0).sender().bytes_acked();
  const auto b1 = sc.flow(1).sender().bytes_acked();
  sc.run(sim::milliseconds(60));
  const double a = static_cast<double>(sc.flow(0).sender().bytes_acked() - a1);
  const double b = static_cast<double>(sc.flow(1).sender().bytes_acked() - b1);
  EXPECT_NEAR(a / b, 1.0, 0.25);
}

TEST(Dctcp, RateCapHoldsThroughputAtCap) {
  DumbbellScenario sc(base_config(1));
  const auto idx =
      sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
                   .max_rate = sim::gbps(3)});
  sc.run(sim::milliseconds(5));
  const auto s1 = sc.flow(idx).sender().bytes_acked();
  sc.run(sim::milliseconds(25));
  const double gbps =
      static_cast<double>(sc.flow(idx).sender().bytes_acked() - s1) * 8.0 /
      static_cast<double>(sim::milliseconds(20));
  EXPECT_NEAR(gbps, 3.0 * 1460 / 1500, 0.15);  // goodput of a 3 Gbps wire cap
}

TEST(Dctcp, RttTracksBaseRttWhenUncongested) {
  DumbbellScenario sc(base_config(1));
  const auto idx = sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0,
                                .max_rate = sim::gbps(1)});
  sc.run(sim::milliseconds(10));
  const auto srtt = sc.flow(idx).sender().rtt().srtt();
  EXPECT_GT(srtt, sc.base_rtt() / 2);
  EXPECT_LT(srtt, 3 * sc.base_rtt());
}

TEST(Dctcp, StaggeredStartRespectsStartTime) {
  DumbbellScenario sc(base_config(1));
  const auto idx = sc.add_flow(
      {.sender = 0, .service = 0, .bytes = 14600, .start = sim::milliseconds(5)});
  sc.run(sim::milliseconds(4));
  EXPECT_EQ(sc.flow(idx).sender().bytes_acked(), 0u);
  sc.run(sim::milliseconds(10));
  EXPECT_TRUE(sc.flow(idx).sender().complete());
  EXPECT_GE(sc.flow(idx).sender().start_time(), sim::milliseconds(5));
}

TEST(Dctcp, CwndNeverExceedsSocketBufferCap) {
  auto cfg = base_config(1);
  cfg.transport.max_cwnd_bytes = 64 * 1460;
  DumbbellScenario sc(cfg);
  // No marking, no drops: only the cap can stop window growth.
  const auto idx = sc.add_flow({.sender = 0, .service = 0, .bytes = 0, .start = 0});
  for (int ms = 1; ms <= 20; ++ms) {
    sc.run(sim::milliseconds(ms));
    EXPECT_LE(sc.flow(idx).sender().cwnd_bytes(), 64.0 * 1460 + 1.0);
  }
  // The cap is generous vs the BDP, so throughput is still line rate.
  const auto s = sc.flow(idx).sender().bytes_acked();
  sc.run(sim::milliseconds(30));
  const double gbps = static_cast<double>(sc.flow(idx).sender().bytes_acked() - s) *
                      8.0 / static_cast<double>(sim::milliseconds(10));
  EXPECT_GT(gbps, 9.0);
}

TEST(RttEstimatorUnit, FirstSampleInitialises) {
  transport::RttEstimator est;
  EXPECT_FALSE(est.valid());
  est.add_sample(sim::microseconds(100));
  EXPECT_TRUE(est.valid());
  EXPECT_EQ(est.srtt(), sim::microseconds(100));
  EXPECT_EQ(est.last_sample(), sim::microseconds(100));
}

TEST(RttEstimatorUnit, SmoothsTowardSamples) {
  transport::RttEstimator est;
  est.add_sample(sim::microseconds(100));
  for (int i = 0; i < 50; ++i) est.add_sample(sim::microseconds(200));
  EXPECT_NEAR(static_cast<double>(est.srtt()),
              static_cast<double>(sim::microseconds(200)), 5e3);
}

TEST(RttEstimatorUnit, RtoRespectsFloor) {
  transport::RttEstimator est(sim::milliseconds(1));
  est.add_sample(sim::microseconds(10));
  EXPECT_GE(est.rto(), sim::milliseconds(1));
}
