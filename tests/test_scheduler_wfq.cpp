// Unit tests for WFQ (SCFQ) and the hierarchical SP+WFQ scheduler.
#include <gtest/gtest.h>

#include <map>

#include "sched/hierarchical.hpp"
#include "sched/wfq.hpp"

using namespace pmsb;
using namespace pmsb::sched;

namespace {
Packet pkt(std::uint32_t size = 1500) {
  Packet p;
  p.size_bytes = size;
  return p;
}
}  // namespace

TEST(Wfq, NotRoundBased) {
  WfqScheduler s(2);
  EXPECT_FALSE(s.round_based());
}

TEST(Wfq, EqualWeightsShareEvenly) {
  WfqScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 1000; ++i) {
    s.enqueue(0, pkt());
    s.enqueue(1, pkt());
  }
  for (int i = 0; i < 1000; ++i) (void)s.dequeue(0);
  EXPECT_NEAR(static_cast<double>(s.served_bytes(0)) / s.served_bytes(1), 1.0, 0.05);
}

TEST(Wfq, WeightedShare3To1) {
  WfqScheduler s(2, {3.0, 1.0});
  for (int i = 0; i < 2000; ++i) {
    s.enqueue(0, pkt());
    s.enqueue(1, pkt());
  }
  for (int i = 0; i < 1000; ++i) (void)s.dequeue(0);
  EXPECT_NEAR(static_cast<double>(s.served_bytes(0)) / s.served_bytes(1), 3.0, 0.3);
}

TEST(Wfq, ByteFairnessWithMixedPacketSizes) {
  WfqScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 3000; ++i) s.enqueue(0, pkt(500));
  for (int i = 0; i < 1000; ++i) s.enqueue(1, pkt(1500));
  for (int i = 0; i < 2000; ++i) (void)s.dequeue(0);
  EXPECT_NEAR(static_cast<double>(s.served_bytes(0)) / s.served_bytes(1), 1.0, 0.1);
}

TEST(Wfq, IdleQueueDoesNotAccumulateCredit) {
  // Queue 1 is idle while queue 0 is served; when queue 1 wakes it must not
  // monopolise the link to "catch up" (SCFQ start tag = max(V, F_prev)).
  WfqScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 100; ++i) s.enqueue(0, pkt());
  for (int i = 0; i < 50; ++i) (void)s.dequeue(0);
  // Now queue 1 arrives with a burst.
  for (int i = 0; i < 100; ++i) s.enqueue(1, pkt());
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 50; ++i) ++counts[s.dequeue(0)->queue];
  // Fair interleave from here on, not a queue-1 monopoly.
  EXPECT_NEAR(counts[0], 25, 3);
  EXPECT_NEAR(counts[1], 25, 3);
}

TEST(Wfq, VirtualTimeResetsWhenIdle) {
  WfqScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 10; ++i) s.enqueue(0, pkt());
  for (int i = 0; i < 10; ++i) (void)s.dequeue(0);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.virtual_time(), 0.0);
}

TEST(SpWfq, GroupSizeMismatchThrows) {
  EXPECT_THROW(SpWfqScheduler(3, {0, 0}, {}), std::invalid_argument);
}

TEST(SpWfq, StrictPriorityAcrossGroups) {
  // Queue 0 in group 0 (high), queues 1-2 in group 1.
  SpWfqScheduler s(3, {0, 1, 1}, {1.0, 1.0, 1.0});
  s.enqueue(1, pkt());
  s.enqueue(2, pkt());
  s.enqueue(0, pkt());
  EXPECT_EQ(s.dequeue(0)->queue, 0u);
}

TEST(SpWfq, FairWithinLowGroup) {
  SpWfqScheduler s(3, {0, 1, 1}, {1.0, 1.0, 1.0});
  for (int i = 0; i < 500; ++i) {
    s.enqueue(1, pkt());
    s.enqueue(2, pkt());
  }
  for (int i = 0; i < 500; ++i) (void)s.dequeue(0);
  EXPECT_NEAR(static_cast<double>(s.served_bytes(1)) / s.served_bytes(2), 1.0, 0.05);
}

TEST(SpWfq, HighGroupPreemptsBetweenPackets) {
  SpWfqScheduler s(3, {0, 1, 1}, {1.0, 1.0, 1.0});
  for (int i = 0; i < 10; ++i) s.enqueue(1, pkt());
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
  s.enqueue(0, pkt());  // high-priority packet arrives mid-backlog
  EXPECT_EQ(s.dequeue(0)->queue, 0u);
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
}

TEST(SpWfq, DegeneratesToSpWithSingletonGroups) {
  SpWfqScheduler s(3, {0, 1, 2}, {1.0, 1.0, 1.0});
  s.enqueue(2, pkt());
  s.enqueue(1, pkt());
  s.enqueue(0, pkt());
  EXPECT_EQ(s.dequeue(0)->queue, 0u);
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
  EXPECT_EQ(s.dequeue(0)->queue, 2u);
}

TEST(SpWfq, DegeneratesToWfqWithOneGroup) {
  SpWfqScheduler s(2, {0, 0}, {1.0, 3.0});
  for (int i = 0; i < 2000; ++i) {
    s.enqueue(0, pkt());
    s.enqueue(1, pkt());
  }
  for (int i = 0; i < 1000; ++i) (void)s.dequeue(0);
  EXPECT_NEAR(static_cast<double>(s.served_bytes(1)) / s.served_bytes(0), 3.0, 0.3);
}
