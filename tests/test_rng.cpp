// Tests for deterministic RNG streams.
#include <gtest/gtest.h>

#include "sim/rng.hpp"

using namespace pmsb::sim;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(7), b(7);
  Rng fa = a.fork("workload");
  Rng fb = b.fork("workload");
  for (int i = 0; i < 50; ++i) EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Rng, ForkIndependentOfDrawCount) {
  Rng a(7), b(7);
  (void)a.uniform();
  (void)a.uniform();
  Rng fa = a.fork("x");
  Rng fb = b.fork("x");
  EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Rng, NamedForksDiffer) {
  Rng a(7);
  Rng f1 = a.fork("one");
  Rng f2 = a.fork("two");
  EXPECT_NE(f1.uniform(), f2.uniform());
}

TEST(Rng, UniformRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(5.0, 10.0);
    EXPECT_GE(v, 5.0);
    EXPECT_LT(v, 10.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    saw_lo |= (v == 0);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanApproximates) {
  Rng rng(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 2.0);
}
