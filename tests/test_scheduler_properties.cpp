// Property-based tests that every scheduler implementation must satisfy,
// run via parameterized gtest across all disciplines and several weight
// vectors:
//   1. conservation  — every enqueued packet is dequeued exactly once
//   2. accounting    — byte/packet counters return to zero when drained
//   3. work conservation — dequeue never fails while backlog exists
//   4. FIFO-within-queue — packets of one queue leave in arrival order
//   5. weighted fairness — under continuous backlog, long-run service is
//      proportional to weights (for the weighted disciplines)
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "sched/factory.hpp"
#include "sim/rng.hpp"

using namespace pmsb;
using namespace pmsb::sched;

namespace {

struct Case {
  SchedulerKind kind;
  std::size_t num_queues;
  std::vector<double> weights;
  bool weighted_fair;  ///< property 5 applies
};

std::string case_name(const testing::TestParamInfo<Case>& info) {
  std::string n = scheduler_kind_name(info.param.kind);
  for (char& c : n) {
    if (c == '+') c = '_';
  }
  return n + "_q" + std::to_string(info.param.num_queues) + "_" +
         std::to_string(info.index);
}

Packet pkt(std::uint64_t id, std::uint32_t size) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  return p;
}

std::unique_ptr<Scheduler> make(const Case& c) {
  SchedulerConfig cfg;
  cfg.kind = c.kind;
  cfg.num_queues = c.num_queues;
  cfg.weights = c.weights;
  if (c.kind == SchedulerKind::kSpWfq) {
    cfg.priority_group.assign(c.num_queues, 0);
    if (c.num_queues > 1) cfg.priority_group[0] = 0;
  }
  return make_scheduler(cfg);
}

}  // namespace

class SchedulerProperty : public testing::TestWithParam<Case> {};

TEST_P(SchedulerProperty, ConservationAndOrder) {
  auto s = make(GetParam());
  sim::Rng rng(99);
  std::map<std::size_t, std::vector<std::uint64_t>> sent, got;
  std::uint64_t id = 0;
  // Random interleaving of enqueues and dequeues.
  for (int step = 0; step < 5000; ++step) {
    if (s->empty() || rng.uniform() < 0.55) {
      const auto q = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(s->num_queues()) - 1));
      const auto size = static_cast<std::uint32_t>(rng.uniform_int(64, 1500));
      sent[q].push_back(id);
      s->enqueue(q, pkt(id++, size));
    } else {
      auto out = s->dequeue(step);
      ASSERT_TRUE(out.has_value());  // work conservation
      got[out->queue].push_back(out->pkt.id);
    }
  }
  while (auto out = s->dequeue(10000)) got[out->queue].push_back(out->pkt.id);
  // Conservation + FIFO within queue.
  ASSERT_EQ(sent.size(), got.size());
  for (auto& [q, ids] : sent) EXPECT_EQ(got[q], ids) << "queue " << q;
  // Accounting drained.
  EXPECT_EQ(s->total_bytes(), 0u);
  EXPECT_EQ(s->total_packets(), 0u);
  for (std::size_t q = 0; q < s->num_queues(); ++q) {
    EXPECT_EQ(s->queue_bytes(q), 0u);
    EXPECT_EQ(s->queue_packets(q), 0u);
  }
}

TEST_P(SchedulerProperty, WeightedFairnessUnderSaturation) {
  const Case& c = GetParam();
  if (!c.weighted_fair) GTEST_SKIP() << "not a weighted-fair discipline";
  auto s = make(c);
  // Keep all queues continuously backlogged.
  std::uint64_t id = 0;
  for (std::size_t q = 0; q < c.num_queues; ++q) {
    for (int i = 0; i < 40; ++i) s->enqueue(q, pkt(id++, 1500));
  }
  const int serves = 4000;
  for (int i = 0; i < serves; ++i) {
    auto out = s->dequeue(i);
    ASSERT_TRUE(out.has_value());
    s->enqueue(out->queue, pkt(id++, 1500));  // refill
  }
  double wsum = 0;
  for (double w : s->weights()) wsum += w;
  std::uint64_t total = 0;
  for (std::size_t q = 0; q < c.num_queues; ++q) total += s->served_bytes(q);
  for (std::size_t q = 0; q < c.num_queues; ++q) {
    const double expected = s->weight(q) / wsum;
    const double actual = static_cast<double>(s->served_bytes(q)) / total;
    EXPECT_NEAR(actual, expected, 0.05)
        << scheduler_kind_name(c.kind) << " queue " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerProperty,
    testing::Values(
        Case{SchedulerKind::kFifo, 1, {}, false},
        Case{SchedulerKind::kFifo, 4, {}, false},
        Case{SchedulerKind::kSp, 3, {}, false},
        Case{SchedulerKind::kWrr, 2, {1.0, 1.0}, true},
        Case{SchedulerKind::kWrr, 3, {1.0, 2.0, 4.0}, true},
        Case{SchedulerKind::kDwrr, 2, {1.0, 1.0}, true},
        Case{SchedulerKind::kDwrr, 4, {1.0, 2.0, 3.0, 4.0}, true},
        Case{SchedulerKind::kDwrr, 8, std::vector<double>(8, 1.0), true},
        Case{SchedulerKind::kWfq, 2, {1.0, 1.0}, true},
        Case{SchedulerKind::kWfq, 4, {4.0, 3.0, 2.0, 1.0}, true},
        Case{SchedulerKind::kWfq, 8, std::vector<double>(8, 1.0), true},
        Case{SchedulerKind::kSpWfq, 3, {1.0, 1.0, 1.0}, true}),
    case_name);

TEST(SchedulerFactory, ParsesNames) {
  EXPECT_EQ(parse_scheduler_kind("dwrr"), SchedulerKind::kDwrr);
  EXPECT_EQ(parse_scheduler_kind("WFQ"), SchedulerKind::kWfq);
  EXPECT_EQ(parse_scheduler_kind("sp+wfq"), SchedulerKind::kSpWfq);
  EXPECT_THROW(parse_scheduler_kind("bogus"), std::invalid_argument);
}

TEST(SchedulerFactory, RoundTripNames) {
  for (auto kind : {SchedulerKind::kFifo, SchedulerKind::kSp, SchedulerKind::kWrr,
                    SchedulerKind::kDwrr, SchedulerKind::kWfq, SchedulerKind::kSpWfq}) {
    EXPECT_EQ(parse_scheduler_kind(scheduler_kind_name(kind)), kind);
  }
}
