// Span capture + offline analysis tests: watch filtering, ring-buffer wrap,
// NDJSON escaping round-trips, the FCT-decomposition identity on a real
// dumbbell run (the acceptance property: a sampled flow's completion time
// equals the sum of its span segments), port aggregates, the heatmap CSV,
// and pmsb.profile/1 hotspot ranking / diffing.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/dumbbell.hpp"
#include "telemetry/profiler.hpp"
#include "telemetry/run_report.hpp"
#include "trace/analysis.hpp"
#include "trace/spans.hpp"
#include "trace/tracer.hpp"

using namespace pmsb;
using trace::Span;
using trace::SpanPhase;
using trace::SpanRecord;
using trace::SpanTracer;

namespace {

SpanRecord make_span(sim::TimeNs t, SpanPhase phase, net::FlowId flow,
                     std::uint64_t packet = 1) {
  SpanRecord s;
  s.time = t;
  s.phase = phase;
  s.flow = flow;
  s.packet = packet;
  return s;
}

std::string dump_ndjson(const SpanTracer& spans) {
  const std::string path = ::testing::TempDir() + "/spans_tmp.ndjson";
  spans.write_ndjson(path);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

}  // namespace

TEST(SpanTracer, OnlyWatchedFlowsAreRecorded) {
  SpanTracer spans;
  spans.watch_flow(7);
  EXPECT_TRUE(spans.wants(7));
  EXPECT_FALSE(spans.wants(8));
  spans.record(make_span(10, SpanPhase::kSend, 7));
  spans.record(make_span(20, SpanPhase::kSend, 8));
  EXPECT_EQ(spans.size(), 1u);
  spans.watch_all();
  spans.record(make_span(30, SpanPhase::kSend, 8));
  EXPECT_EQ(spans.size(), 2u);
}

TEST(SpanTracer, RingWrapKeepsTheTailChronologically) {
  SpanTracer spans(3, SpanTracer::OverflowPolicy::kRingBuffer);
  spans.watch_all();
  for (sim::TimeNs t = 1; t <= 5; ++t) {
    spans.record(make_span(t, SpanPhase::kSend, 1, static_cast<std::uint64_t>(t)));
  }
  EXPECT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.overflow(), 2u);
  std::vector<sim::TimeNs> times;
  spans.for_each_chronological(
      [&times](const SpanRecord& s) { times.push_back(s.time); });
  EXPECT_EQ(times, (std::vector<sim::TimeNs>{3, 4, 5}));
  // The NDJSON export follows chronological order too, and parses back.
  const auto parsed = trace::parse_spans_ndjson(dump_ndjson(spans), "ring");
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed.front().time, 3);
  EXPECT_EQ(parsed.back().time, 5);
}

TEST(SpanTracer, DropNewestKeepsTheHead) {
  SpanTracer spans(2, SpanTracer::OverflowPolicy::kDropNewest);
  spans.watch_all();
  for (sim::TimeNs t = 1; t <= 4; ++t) {
    spans.record(make_span(t, SpanPhase::kSend, 1));
  }
  EXPECT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.overflow(), 2u);
  EXPECT_EQ(spans.records().front().time, 1);
  EXPECT_EQ(spans.records().back().time, 2);
}

TEST(SpanTracer, NdjsonEscapesHostileNodeNamesAndRoundTrips) {
  SpanTracer spans;
  spans.watch_all();
  // Names with every character class the escaper must handle.
  const std::string hostile = "sw\"itch\\one\n\ttab\x01";
  SpanRecord s = make_span(42, SpanPhase::kEnqueue, 3, 99);
  s.node = spans.intern_node(hostile);
  s.queue = 5;
  s.seq = 1460;
  s.size_bytes = 1500;
  s.marked = true;
  spans.record(s);
  const std::string text = dump_ndjson(spans);
  const auto parsed = trace::parse_spans_ndjson(text, "escape-test");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].node, hostile);
  EXPECT_EQ(parsed[0].phase, SpanPhase::kEnqueue);
  EXPECT_EQ(parsed[0].flow, 3u);
  EXPECT_EQ(parsed[0].packet, 99u);
  EXPECT_EQ(parsed[0].queue, 5u);
  EXPECT_EQ(parsed[0].seq, 1460u);
  EXPECT_EQ(parsed[0].size_bytes, 1500u);
  EXPECT_TRUE(parsed[0].marked);
  EXPECT_FALSE(parsed[0].retransmit);
}

TEST(Analysis, MalformedSpanLinesThrowWithLineNumber) {
  EXPECT_THROW(trace::parse_spans_ndjson("{\"t_ns\": }\n", "bad"),
               std::runtime_error);
  // Blank lines are tolerated (trailing newline from the writer).
  EXPECT_TRUE(trace::parse_spans_ndjson("\n\n", "blank").empty());
}

TEST(Analysis, FlowBreakdownTelescopesExactly) {
  // Hand-built lifecycle: send 0 -> enqueue 10 -> mark 10 -> dequeue 30 ->
  // link_tx 40 -> rx 45 -> ack 60. Each gap belongs to the phase opening it.
  std::vector<Span> spans;
  auto add = [&spans](sim::TimeNs t, SpanPhase ph) {
    Span s;
    s.time = t;
    s.phase = ph;
    s.flow = 1;
    s.packet = 1;
    spans.push_back(s);
  };
  add(0, SpanPhase::kSend);
  add(10, SpanPhase::kEnqueue);
  add(10, SpanPhase::kMark);
  add(30, SpanPhase::kDequeue);
  add(40, SpanPhase::kLinkTx);
  add(45, SpanPhase::kRx);
  add(60, SpanPhase::kAck);
  const auto b = trace::analyze_flow(spans, 1);
  EXPECT_EQ(b.start_ns, 0);
  EXPECT_EQ(b.end_ns, 60);
  EXPECT_EQ(b.by_component.at("sender"), 10);         // send 0 -> enqueue 10
  EXPECT_EQ(b.by_component.at("queueing"), 20);       // enqueue+mark -> dequeue
  EXPECT_EQ(b.by_component.at("serialization"), 10);  // dequeue -> link_tx
  EXPECT_EQ(b.by_component.at("propagation"), 5);     // link_tx -> rx
  EXPECT_EQ(b.by_component.at("receiver"), 15);       // rx -> ack
  EXPECT_EQ(b.marks, 1u);
  const sim::TimeNs total = std::accumulate(
      b.by_component.begin(), b.by_component.end(), sim::TimeNs{0},
      [](sim::TimeNs acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(total, b.end_ns - b.start_ns);
  EXPECT_THROW(trace::analyze_flow(spans, 99), std::runtime_error);
}

TEST(Analysis, DumbbellFlowFctEqualsSumOfSpanSegments) {
  // The acceptance property, end to end: run a real finite flow with span
  // capture and check its measured FCT decomposes exactly.
  experiments::DumbbellConfig cfg;
  cfg.num_senders = 2;
  cfg.scheduler.kind = sched::SchedulerKind::kDwrr;
  cfg.scheduler.num_queues = 2;
  cfg.scheduler.weights = {1.0, 1.0};
  experiments::DumbbellScenario sc(cfg);
  sc.add_flow({.sender = 0, .service = 0, .bytes = 300'000});
  sc.add_flow({.sender = 1, .service = 1, .bytes = 0});  // competing traffic
  SpanTracer spans;
  spans.watch_flow(1);
  sc.install_span_tracer(spans);
  sc.run(sim::milliseconds(100));
  ASSERT_TRUE(sc.flow(0).sender().complete());

  const std::string path = ::testing::TempDir() + "/dumbbell_spans.ndjson";
  spans.write_ndjson(path);
  const auto parsed = trace::read_spans_ndjson(path);
  std::remove(path.c_str());
  EXPECT_EQ(trace::flows_in(parsed), std::vector<net::FlowId>{1});

  const auto b = trace::analyze_flow(parsed, 1);
  const sim::TimeNs fct =
      sc.flow(0).sender().completion_time() - sc.flow(0).sender().start_time();
  // First span is the initial kSend at start_time, last is the final kAck at
  // completion_time, so the telescoped components must sum to the FCT.
  EXPECT_EQ(b.timeline.front().phase, SpanPhase::kSend);
  EXPECT_EQ(b.timeline.back().phase, SpanPhase::kAck);
  EXPECT_EQ(b.end_ns - b.start_ns, fct);
  const sim::TimeNs total = std::accumulate(
      b.by_component.begin(), b.by_component.end(), sim::TimeNs{0},
      [](sim::TimeNs acc, const auto& kv) { return acc + kv.second; });
  EXPECT_EQ(total, fct);
  // The run crosses a 10 Gbps bottleneck against competing traffic, so the
  // decomposition must show real queueing and serialization time.
  EXPECT_GT(b.by_component.at("queueing"), 0);
  EXPECT_GT(b.by_component.at("serialization"), 0);
  EXPECT_GT(b.by_component.at("propagation"), 0);
  EXPECT_GT(b.packets, 0u);
}

TEST(Analysis, PortReportAggregatesOccupancyAndMarkLatency) {
  // enqueue@0 (6000 B) -> mark@10 -> dequeue@10; enqueue@10 holds 3000 B for
  // 90 us of the 100 us window.
  const std::string text =
      "{\"t_us\": 0.0, \"event\": \"enqueue\", \"packet\": 1, \"flow\": 1, "
      "\"queue\": 0, \"port_bytes\": 6000}\n"
      "{\"t_us\": 10.0, \"event\": \"mark\", \"packet\": 1, \"flow\": 1, "
      "\"queue\": 0, \"port_bytes\": 6000}\n"
      "{\"t_us\": 10.0, \"event\": \"dequeue\", \"packet\": 1, \"flow\": 1, "
      "\"queue\": 0, \"port_bytes\": 3000}\n"
      "{\"t_us\": 10.0, \"event\": \"enqueue\", \"packet\": 2, \"flow\": 2, "
      "\"queue\": 1, \"port_bytes\": 3000}\n"
      "{\"t_us\": 100.0, \"event\": \"dequeue\", \"packet\": 2, \"flow\": 2, "
      "\"queue\": 1, \"port_bytes\": 0}\n";
  const auto events = trace::parse_trace_ndjson(text, "port-test");
  ASSERT_EQ(events.size(), 5u);
  const auto r = trace::analyze_port(events);
  EXPECT_DOUBLE_EQ(r.duration_us, 100.0);
  EXPECT_EQ(r.event_counts.at("enqueue"), 2u);
  EXPECT_EQ(r.event_counts.at("mark"), 1u);
  EXPECT_EQ(r.occupancy_max, 6000u);
  // 3000 B held for 90 of 100 us -> the median occupancy.
  EXPECT_DOUBLE_EQ(r.occupancy_p50, 3000.0);
  EXPECT_EQ(r.marked_packets, 1u);
  EXPECT_DOUBLE_EQ(r.mark_latency_max_us, 10.0);
}

TEST(Analysis, HeatmapBucketsEnqueuesPerQueue) {
  const std::string text =
      "{\"t_us\": 1.0, \"event\": \"enqueue\", \"packet\": 1, \"flow\": 1, "
      "\"queue\": 0, \"port_bytes\": 0}\n"
      "{\"t_us\": 2.0, \"event\": \"enqueue\", \"packet\": 2, \"flow\": 1, "
      "\"queue\": 1, \"port_bytes\": 0}\n"
      "{\"t_us\": 12.0, \"event\": \"enqueue\", \"packet\": 3, \"flow\": 1, "
      "\"queue\": 1, \"port_bytes\": 0}\n";
  const auto events = trace::parse_trace_ndjson(text, "heatmap-test");
  const std::string csv = trace::port_heatmap_csv(events, 10.0);
  std::stringstream ss(csv);
  std::string line;
  std::getline(ss, line);
  EXPECT_EQ(line, "time_us,q0,q1");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(line.find(',') + 1), "1,1");
  std::getline(ss, line);
  EXPECT_EQ(line.substr(line.find(',') + 1), "0,1");
}

TEST(Analysis, ProfileHotspotsRankBySelfTimeAndDiffsCompare) {
  telemetry::Profiler p;
  const auto hot = p.intern("hot");
  const auto cold = p.intern("cold");
  {
    telemetry::ProfileScope s(&p, hot);
    const auto end =
        std::chrono::steady_clock::now() + std::chrono::microseconds(300);
    while (std::chrono::steady_clock::now() < end) {
    }
  }
  {
    telemetry::ProfileScope s(&p, cold);
  }
  const auto doc = trace::parse_profile(p.to_json(), "profile-test");
  const auto top = trace::top_hotspots(doc, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].name, "hot");
  EXPECT_EQ(top[0].count, 1u);
  EXPECT_GT(top[0].self_wall_ns, 0u);

  // Diff against a doc where only "cold" exists: union of names, deltas.
  telemetry::Profiler q;
  {
    telemetry::ProfileScope s(&q, q.intern("cold"));
  }
  const auto after = trace::parse_profile(q.to_json(), "profile-test-b");
  const auto diff = trace::diff_profiles(doc, after);
  ASSERT_EQ(diff.size(), 2u);
  EXPECT_EQ(diff[0].name, "hot");  // biggest |self delta| first
  EXPECT_EQ(diff[0].self_b, 0u);
  EXPECT_EQ(diff[1].name, "cold");
  EXPECT_EQ(diff[1].count_a, 1u);
  EXPECT_EQ(diff[1].count_b, 1u);
}

TEST(Analysis, ParseProfileUnwrapsRunManifests) {
  telemetry::Profiler p;
  {
    telemetry::ProfileScope s(&p, p.intern("x"));
  }
  telemetry::RunManifest manifest("test");
  manifest.set_profile_json(p.to_json());
  const std::string path = ::testing::TempDir() + "/manifest_for_trace.json";
  manifest.write(path, nullptr);
  const auto doc = trace::read_profile(path);
  std::remove(path.c_str());
  ASSERT_EQ(doc.scopes.size(), 1u);
  EXPECT_EQ(doc.scopes[0].name, "x");
  EXPECT_EQ(doc.scopes[0].count, 1u);
}

TEST(Analysis, RejectsNonProfileDocuments) {
  EXPECT_THROW(trace::parse_profile("{\"schema\": \"pmsb.bench/1\"}", "wrong"),
               std::runtime_error);
}
