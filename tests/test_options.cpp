// Tests for the key=value Options parser used by the pmsbsim tool.
#include <gtest/gtest.h>

#include <fstream>

#include "experiments/options.hpp"

using namespace pmsb::experiments;

namespace {
Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::from_args(static_cast<int>(argv.size()), argv.data());
}

std::string write_temp_config(const std::string& body) {
  const std::string path = std::string(::testing::TempDir()) + "/opts.conf";
  std::ofstream out(path);
  out << body;
  return path;
}
}  // namespace

TEST(Options, ParsesKeyValues) {
  const auto o = parse({"scheme=pmsb", "load=0.7", "flows=42"});
  EXPECT_EQ(o.get("scheme"), "pmsb");
  EXPECT_DOUBLE_EQ(o.get_double("load", 0), 0.7);
  EXPECT_EQ(o.get_int("flows", 0), 42);
}

TEST(Options, FallbacksWhenAbsent) {
  const auto o = parse({});
  EXPECT_EQ(o.get("x", "def"), "def");
  EXPECT_EQ(o.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(o.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(o.get_bool("x", true));
  EXPECT_FALSE(o.has("x"));
}

TEST(Options, LaterTokensOverride) {
  const auto o = parse({"a=1", "a=2"});
  EXPECT_EQ(o.get_int("a", 0), 2);
}

TEST(Options, BooleanForms) {
  const auto o = parse({"t1=true", "t2=YES", "t3=1", "f1=off", "f2=0"});
  EXPECT_TRUE(o.get_bool("t1", false));
  EXPECT_TRUE(o.get_bool("t2", false));
  EXPECT_TRUE(o.get_bool("t3", false));
  EXPECT_FALSE(o.get_bool("f1", true));
  EXPECT_FALSE(o.get_bool("f2", true));
  EXPECT_THROW(parse({"b=maybe"}).get_bool("b", false), std::invalid_argument);
}

TEST(Options, DoubleList) {
  const auto o = parse({"weights=1,2.5, 4"});
  const auto v = o.get_double_list("weights");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 2.5);
  EXPECT_DOUBLE_EQ(v[2], 4.0);
  EXPECT_TRUE(o.get_double_list("missing").empty());
}

TEST(Options, MalformedTokensThrow) {
  EXPECT_THROW(parse({"novalue"}), std::invalid_argument);
  EXPECT_THROW(parse({"=x"}), std::invalid_argument);
  EXPECT_THROW(parse({"n=12x"}).get_int("n", 0), std::invalid_argument);
}

TEST(Options, ConfigFileWithCommentsAndOverride) {
  const auto path = write_temp_config(
      "# experiment\n"
      "scheme = tcn\n"
      "load=0.9   # high load\n"
      "\n"
      "flows=100\n");
  std::vector<const char*> argv = {"prog", "--config", path.c_str(), "scheme=pmsb"};
  const auto o = Options::from_args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(o.get("scheme"), "pmsb");  // CLI wins
  EXPECT_DOUBLE_EQ(o.get_double("load", 0), 0.9);
  EXPECT_EQ(o.get_int("flows", 0), 100);
}

TEST(Options, MissingConfigFileThrows) {
  std::vector<const char*> argv = {"prog", "--config", "/no/such/file"};
  EXPECT_THROW(Options::from_args(3, argv.data()), std::invalid_argument);
  std::vector<const char*> argv2 = {"prog", "--config"};
  EXPECT_THROW(Options::from_args(2, argv2.data()), std::invalid_argument);
}

TEST(Options, ValidateKeysAcceptsKnownKeys) {
  const auto o = parse({"scheme=pmsb", "load=0.9"});
  EXPECT_NO_THROW(o.validate_keys({"scheme", "load", "flows"}));
}

TEST(Options, ValidateKeysSuggestsNearMiss) {
  const auto o = parse({"trace_flow=1"});
  try {
    o.validate_keys({"trace_flows", "profile"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown option 'trace_flow'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("did you mean 'trace_flows'?"), std::string::npos) << msg;
  }
}

TEST(Options, ValidateKeysOmitsSuggestionWhenNothingIsClose) {
  const auto o = parse({"zzzzqqqq=1"});
  try {
    o.validate_keys({"scheme", "load"});
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("unknown option 'zzzzqqqq'"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("did you mean"), std::string::npos) << msg;
  }
}

TEST(Options, ClosestKeyRanksByEditDistance) {
  EXPECT_EQ(Options::closest_key("scheme", {"scheme", "schema"}), "scheme");
  EXPECT_EQ(Options::closest_key("sceme", {"scheme", "load"}), "scheme");
  EXPECT_EQ(Options::closest_key("xyzzy", {"scheme", "load"}), "");
}
