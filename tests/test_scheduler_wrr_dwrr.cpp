// Unit tests for WRR and DWRR, including round-completion reporting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sched/dwrr.hpp"
#include "sched/wrr.hpp"

using namespace pmsb;
using namespace pmsb::sched;

namespace {
Packet pkt(std::uint32_t size = 1500) {
  Packet p;
  p.size_bytes = size;
  return p;
}
}  // namespace

TEST(Wrr, RoundBasedFlag) {
  WrrScheduler s(2);
  EXPECT_TRUE(s.round_based());
}

TEST(Wrr, ServesPacketsProportionallyToWeights) {
  WrrScheduler s(2, {1.0, 3.0});
  for (int i = 0; i < 400; ++i) s.enqueue(i % 2, pkt());
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 200; ++i) ++counts[s.dequeue(0)->queue];
  // 1:3 service ratio.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.2);
}

TEST(Wrr, SkipsEmptyQueues) {
  WrrScheduler s(3, {1.0, 1.0, 1.0});
  s.enqueue(1, pkt());
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
}

TEST(Wrr, ReportsRounds) {
  WrrScheduler s(2, {1.0, 1.0});
  int rounds = 0;
  s.set_round_observer([&](sim::TimeNs) { ++rounds; });
  for (int i = 0; i < 20; ++i) s.enqueue(i % 2, pkt());
  for (int i = 0; i < 20; ++i) (void)s.dequeue(i);
  EXPECT_GE(rounds, 8);
}

TEST(Dwrr, RoundBasedFlag) {
  DwrrScheduler s(2);
  EXPECT_TRUE(s.round_based());
}

TEST(Dwrr, EqualWeightsAlternate) {
  DwrrScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 10; ++i) s.enqueue(i % 2, pkt());
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 10; ++i) ++counts[s.dequeue(0)->queue];
  EXPECT_EQ(counts[0], 5);
  EXPECT_EQ(counts[1], 5);
}

TEST(Dwrr, BytesServedProportionalToWeights) {
  DwrrScheduler s(2, {1.0, 2.0});
  for (int i = 0; i < 3000; ++i) s.enqueue(i % 2, pkt());
  for (int i = 0; i < 1500; ++i) (void)s.dequeue(0);
  const double ratio = static_cast<double>(s.served_bytes(1)) /
                       static_cast<double>(s.served_bytes(0));
  EXPECT_NEAR(ratio, 2.0, 0.1);
}

TEST(Dwrr, VariablePacketSizesStillFair) {
  // Queue 0 sends 500 B packets, queue 1 sends 1500 B packets; with equal
  // weights, BYTES served must be equal (packet counts must not be).
  DwrrScheduler s(2, {1.0, 1.0});
  for (int i = 0; i < 3000; ++i) s.enqueue(0, pkt(500));
  for (int i = 0; i < 1000; ++i) s.enqueue(1, pkt(1500));
  std::uint64_t served = 0;
  while (served < 2000) {
    (void)s.dequeue(0);
    ++served;
  }
  const double ratio = static_cast<double>(s.served_bytes(0)) /
                       static_cast<double>(s.served_bytes(1));
  EXPECT_NEAR(ratio, 1.0, 0.1);
}

TEST(Dwrr, EmptyQueueForfeitsDeficit) {
  DwrrScheduler s(2, {1.0, 1.0});
  s.enqueue(0, pkt());
  EXPECT_EQ(s.dequeue(0)->queue, 0u);
  // Queue 0 went idle; its deficit must be reset once passed over.
  s.enqueue(1, pkt());
  (void)s.dequeue(0);
  EXPECT_EQ(s.deficit(0), 0);
}

TEST(Dwrr, ReportsRoundsWhenCycling) {
  DwrrScheduler s(2, {1.0, 1.0});
  int rounds = 0;
  s.set_round_observer([&](sim::TimeNs) { ++rounds; });
  for (int i = 0; i < 40; ++i) s.enqueue(i % 2, pkt());
  for (int i = 0; i < 40; ++i) (void)s.dequeue(i);
  EXPECT_GE(rounds, 10);
}

TEST(Dwrr, FractionalWeightsAccumulate) {
  // Weight 0.4 -> quantum 600 B < packet size; needs multiple rounds per
  // packet but must not starve.
  DwrrScheduler s(2, {0.4, 1.0});
  for (int i = 0; i < 100; ++i) {
    s.enqueue(0, pkt());
    s.enqueue(1, pkt());
  }
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 100; ++i) ++counts[s.dequeue(0)->queue];
  EXPECT_GT(counts[0], 20);
  EXPECT_GT(counts[1], 60);
}

// Regression: with fractional weights one selection spins several cursor
// wraps to accumulate a packet's worth of deficit. Each wrap used to fire
// the round observer — flooding MQ-ECN's T_round EWMA with zero-length
// samples at the same timestamp — where the paper's Eq. 3 sees exactly one
// scheduling opportunity. A selection must report at most one round.
TEST(Dwrr, FractionalWeightsReportOneRoundPerDequeue) {
  DwrrScheduler s(2, {0.1, 0.1});  // quantum 150 B, far below 1500 B packets
  int rounds = 0;
  s.set_round_observer([&](sim::TimeNs) { ++rounds; });
  for (int i = 0; i < 5; ++i) s.enqueue(0, pkt());
  for (int i = 0; i < 5; ++i) {
    const int before = rounds;
    (void)s.dequeue(1000 * (i + 1));
    // ~10 cursor wraps happen inside this dequeue; exactly one is a round.
    EXPECT_EQ(rounds - before, 1);
  }
  EXPECT_EQ(rounds, 5);
}

// Consequence of the above: observed round-completion times are strictly
// increasing (duplicate timestamps were the zero-length samples).
TEST(Dwrr, RoundTimestampsStrictlyIncrease) {
  DwrrScheduler s(2, {0.5, 0.5});  // quantum 750 B: two visits per packet
  std::vector<sim::TimeNs> times;
  s.set_round_observer([&](sim::TimeNs t) { times.push_back(t); });
  for (int i = 0; i < 12; ++i) s.enqueue(i % 2, pkt());
  for (int i = 0; i < 12; ++i) (void)s.dequeue(100 * i);
  ASSERT_FALSE(times.empty());
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_GT(times[i], times[i - 1]);
  }
}

TEST(Dwrr, RejectsZeroQuantum) {
  EXPECT_THROW(DwrrScheduler(2, {1.0, 1.0}, 0), std::invalid_argument);
}

TEST(Dwrr, QuantumAccessor) {
  DwrrScheduler s(2, {1.0, 2.0}, 1500);
  EXPECT_DOUBLE_EQ(s.quantum(0), 1500.0);
  EXPECT_DOUBLE_EQ(s.quantum(1), 3000.0);
}
