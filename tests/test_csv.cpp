// Tests for CSV export.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "sim/simulator.hpp"
#include "stats/csv.hpp"

using namespace pmsb;
using namespace pmsb::stats;

namespace {
std::string read_all(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string temp_path(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}
}  // namespace

TEST(Csv, WritesRowsAndEscapes) {
  const auto path = temp_path("basic.csv");
  {
    CsvWriter csv(path);
    csv.row({"a", "b"});
    csv.row({"plain", "has,comma"});
    csv.row({"has\"quote", "multi\nline"});
  }
  const auto text = read_all(path);
  EXPECT_NE(text.find("a,b\n"), std::string::npos);
  EXPECT_NE(text.find("plain,\"has,comma\"\n"), std::string::npos);
  EXPECT_NE(text.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, ThrowsOnBadPath) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(Csv, FctExportRoundTrips) {
  FctCollector fct;
  fct.record({1, 50'000, sim::microseconds(10), sim::microseconds(100), 3});
  fct.record({2, 20'000'000, 0, sim::milliseconds(15), 5});
  const auto path = temp_path("fct.csv");
  write_fct_csv(path, fct);
  const auto text = read_all(path);
  EXPECT_NE(text.find("flow,bytes,bin,start_us,fct_us,service"), std::string::npos);
  EXPECT_NE(text.find("1,50000,small"), std::string::npos);
  EXPECT_NE(text.find("2,20000000,large"), std::string::npos);
  // Two data rows + header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
}

TEST(Csv, TraceExport) {
  sim::Simulator sim;
  std::uint64_t occ = 0;
  sim.schedule_at(sim::microseconds(25), [&] { occ = 4'500; });
  QueueTracer tracer(sim, [&] { return occ; }, sim::microseconds(10));
  sim.run(sim::microseconds(100));
  const auto path = temp_path("trace.csv");
  write_trace_csv(path, tracer);
  const auto text = read_all(path);
  EXPECT_NE(text.find("time_us,bytes"), std::string::npos);
  EXPECT_NE(text.find("4500"), std::string::npos);
}

TEST(Csv, ThroughputExport) {
  sim::Simulator sim;
  std::uint64_t bytes = 0;
  std::function<void()> feed = [&] {
    bytes += 1250;
    sim.schedule_in(sim::microseconds(1), feed);
  };
  sim.schedule_at(0, feed);
  ThroughputMeter meter(sim, [&] { return bytes; }, sim::microseconds(50));
  sim.run(sim::microseconds(500));
  const auto path = temp_path("tput.csv");
  write_throughput_csv(path, meter);
  const auto text = read_all(path);
  EXPECT_NE(text.find("time_us,gbps"), std::string::npos);
  EXPECT_GE(std::count(text.begin(), text.end(), '\n'), 5);
}
