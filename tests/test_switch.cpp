// Tests for the Switch: routing to ports, ECMP spread across uplinks.
#include <gtest/gtest.h>

#include <vector>

#include "net/node.hpp"
#include "switchlib/switch.hpp"

using namespace pmsb;
using namespace pmsb::switchlib;

namespace {

class SinkNode : public net::Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void receive(net::Packet pkt) override { arrivals.push_back(pkt); }
  std::vector<net::Packet> arrivals;
};

PortConfig fifo_config() {
  PortConfig cfg;
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = ecn::MarkingKind::kNone;
  return cfg;
}

net::Packet to(net::HostId dst, net::FlowId flow = 1) {
  net::Packet p;
  p.dst = dst;
  p.flow_id = flow;
  p.size_bytes = 1500;
  return p;
}

}  // namespace

TEST(Switch, RoutesToCorrectPort) {
  sim::Simulator sim;
  SinkNode a("a"), b("b");
  net::Link la(sim, sim::gbps(10), 0, &a);
  net::Link lb(sim, sim::gbps(10), 0, &b);
  Switch sw(sim, "sw");
  const auto pa = sw.add_port(&la, fifo_config());
  const auto pb = sw.add_port(&lb, fifo_config());
  sw.routing().add_route(0, pa);
  sw.routing().add_route(1, pb);
  sim.schedule_at(0, [&] {
    sw.receive(to(0));
    sw.receive(to(1));
    sw.receive(to(1));
  });
  sim.run();
  EXPECT_EQ(a.arrivals.size(), 1u);
  EXPECT_EQ(b.arrivals.size(), 2u);
}

TEST(Switch, NoRouteThrows) {
  sim::Simulator sim;
  Switch sw(sim, "sw");
  EXPECT_THROW(sw.receive(to(9)), std::out_of_range);
}

TEST(Switch, EcmpSpreadsFlowsAcrossUplinks) {
  sim::Simulator sim;
  SinkNode up0("u0"), up1("u1");
  net::Link l0(sim, sim::gbps(10), 0, &up0);
  net::Link l1(sim, sim::gbps(10), 0, &up1);
  Switch sw(sim, "sw", /*ecmp_salt=*/7);
  const auto p0 = sw.add_port(&l0, fifo_config());
  const auto p1 = sw.add_port(&l1, fifo_config());
  sw.routing().add_route(5, p0);
  sw.routing().add_route(5, p1);
  sim.schedule_at(0, [&] {
    for (net::FlowId f = 0; f < 200; ++f) sw.receive(to(5, f));
  });
  sim.run();
  // Rough balance between the two candidate ports.
  EXPECT_GT(up0.arrivals.size(), 60u);
  EXPECT_GT(up1.arrivals.size(), 60u);
  EXPECT_EQ(up0.arrivals.size() + up1.arrivals.size(), 200u);
}

TEST(Switch, SameFlowSticksToOnePath) {
  sim::Simulator sim;
  SinkNode up0("u0"), up1("u1");
  net::Link l0(sim, sim::gbps(10), 0, &up0);
  net::Link l1(sim, sim::gbps(10), 0, &up1);
  Switch sw(sim, "sw");
  sw.routing().add_route(5, sw.add_port(&l0, fifo_config()));
  sw.routing().add_route(5, sw.add_port(&l1, fifo_config()));
  sim.schedule_at(0, [&] {
    for (int i = 0; i < 50; ++i) sw.receive(to(5, 77));
  });
  sim.run();
  EXPECT_TRUE(up0.arrivals.empty() || up1.arrivals.empty());
  EXPECT_EQ(up0.arrivals.size() + up1.arrivals.size(), 50u);
}

TEST(Switch, PortAccessors) {
  sim::Simulator sim;
  SinkNode a("a");
  net::Link la(sim, sim::gbps(10), 0, &a);
  Switch sw(sim, "sw");
  sw.add_port(&la, fifo_config());
  EXPECT_EQ(sw.num_ports(), 1u);
  EXPECT_EQ(sw.port(0).link(), &la);
  EXPECT_EQ(sw.name(), "sw");
}
