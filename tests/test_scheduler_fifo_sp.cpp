// Unit tests for the FIFO and Strict Priority schedulers.
#include <gtest/gtest.h>

#include "sched/fifo.hpp"
#include "sched/sp.hpp"

using namespace pmsb;
using namespace pmsb::sched;

namespace {
Packet pkt(std::uint64_t id, std::uint32_t size = 1500) {
  Packet p;
  p.id = id;
  p.size_bytes = size;
  return p;
}
}  // namespace

TEST(Fifo, EmptyDequeueReturnsNullopt) {
  FifoScheduler s(2);
  EXPECT_FALSE(s.dequeue(0).has_value());
  EXPECT_TRUE(s.empty());
}

TEST(Fifo, GlobalArrivalOrderAcrossQueues) {
  FifoScheduler s(3);
  s.enqueue(2, pkt(1));
  s.enqueue(0, pkt(2));
  s.enqueue(1, pkt(3));
  EXPECT_EQ(s.dequeue(0)->pkt.id, 1u);
  EXPECT_EQ(s.dequeue(0)->pkt.id, 2u);
  EXPECT_EQ(s.dequeue(0)->pkt.id, 3u);
}

TEST(Fifo, ByteAndPacketAccounting) {
  FifoScheduler s(2);
  s.enqueue(0, pkt(1, 1000));
  s.enqueue(1, pkt(2, 500));
  EXPECT_EQ(s.total_bytes(), 1500u);
  EXPECT_EQ(s.queue_bytes(0), 1000u);
  EXPECT_EQ(s.queue_bytes(1), 500u);
  EXPECT_EQ(s.total_packets(), 2u);
  (void)s.dequeue(0);
  EXPECT_EQ(s.total_bytes(), 500u);
}

TEST(Fifo, BadQueueIndexThrows) {
  FifoScheduler s(2);
  EXPECT_THROW(s.enqueue(2, pkt(1)), std::out_of_range);
}

TEST(Fifo, ServedBytesTracksDequeues) {
  FifoScheduler s(2);
  s.enqueue(0, pkt(1, 100));
  s.enqueue(1, pkt(2, 200));
  (void)s.dequeue(0);
  (void)s.dequeue(0);
  EXPECT_EQ(s.served_bytes(0), 100u);
  EXPECT_EQ(s.served_bytes(1), 200u);
}

TEST(Sp, LowerIndexWins) {
  SpScheduler s(3);
  s.enqueue(2, pkt(1));
  s.enqueue(0, pkt(2));
  s.enqueue(1, pkt(3));
  EXPECT_EQ(s.dequeue(0)->queue, 0u);
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
  EXPECT_EQ(s.dequeue(0)->queue, 2u);
}

TEST(Sp, HighPriorityStarvesLow) {
  SpScheduler s(2);
  for (int i = 0; i < 5; ++i) s.enqueue(0, pkt(i));
  s.enqueue(1, pkt(100));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s.dequeue(0)->queue, 0u);
  EXPECT_EQ(s.dequeue(0)->queue, 1u);
}

TEST(Sp, FifoWithinQueue) {
  SpScheduler s(2);
  s.enqueue(0, pkt(1));
  s.enqueue(0, pkt(2));
  EXPECT_EQ(s.dequeue(0)->pkt.id, 1u);
  EXPECT_EQ(s.dequeue(0)->pkt.id, 2u);
}

TEST(Sp, NotRoundBased) {
  SpScheduler s(2);
  EXPECT_FALSE(s.round_based());
  bool fired = false;
  s.set_round_observer([&](sim::TimeNs) { fired = true; });
  for (int i = 0; i < 10; ++i) s.enqueue(i % 2, pkt(i));
  while (s.dequeue(0)) {
  }
  EXPECT_FALSE(fired);
}

TEST(SchedulerBase, RejectsZeroQueues) {
  EXPECT_THROW(FifoScheduler(0), std::invalid_argument);
}

TEST(SchedulerBase, RejectsBadWeights) {
  EXPECT_THROW(SpScheduler(2, {1.0}), std::invalid_argument);
  EXPECT_THROW(SpScheduler(2, {1.0, -1.0}), std::invalid_argument);
  EXPECT_THROW(SpScheduler(2, {1.0, 0.0}), std::invalid_argument);
}

TEST(SchedulerBase, DefaultWeightsAreUniform) {
  SpScheduler s(4);
  EXPECT_DOUBLE_EQ(s.weight(0), 1.0);
  EXPECT_DOUBLE_EQ(s.weight_sum(), 4.0);
}
