// Tests for the shared buffer pool byte ledger, the pluggable admission
// policies, per-service-pool marking, and the cross-port interference the
// paper predicts for the pool mode (§II.B).
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "ecn/per_pool.hpp"
#include "experiments/multiport.hpp"
#include "switchlib/buffer_policy.hpp"
#include "switchlib/buffer_pool.hpp"

using namespace pmsb;
using namespace pmsb::switchlib;

TEST(BufferPool, ChargeAndRelease) {
  BufferPool pool(10'000);
  const auto a = pool.register_slot();
  const auto b = pool.register_slot();
  pool.charge(a, 6'000);
  EXPECT_EQ(pool.bytes(), 6'000u);
  EXPECT_EQ(pool.free_bytes(), 4'000u);
  pool.charge(b, 4'000);
  EXPECT_EQ(pool.free_bytes(), 0u);
  pool.release(a, 6'000);
  pool.release(b, 4'000);
  EXPECT_EQ(pool.bytes(), 0u);
  EXPECT_EQ(pool.slot_bytes(a), 0u);
  EXPECT_EQ(pool.slot_bytes(b), 0u);
}

TEST(BufferPool, OverchargeThrows) {
  BufferPool pool(1'000);
  const auto s = pool.register_slot();
  pool.charge(s, 1'000);
  EXPECT_THROW(pool.charge(s, 1), std::logic_error);
  EXPECT_EQ(pool.bytes(), 1'000u);  // failed charge left the ledger intact
}

TEST(BufferPool, OverReleaseThrows) {
  BufferPool pool(10'000);
  const auto a = pool.register_slot();
  const auto b = pool.register_slot();
  pool.charge(a, 500);
  pool.charge(b, 500);
  // Slot b only holds 500 even though the pool holds 1000: releasing more
  // than the SLOT charged must throw (no cross-slot laundering).
  EXPECT_THROW(pool.release(b, 501), std::logic_error);
  EXPECT_EQ(pool.bytes(), 1'000u);
}

// Property test: a randomized admit/release/flap schedule against a model of
// per-slot outstanding chunks. After every operation the ledger invariants
// hold: byte conservation (sum of slot occupancies == pool occupancy ==
// limit - free), no overcommit, no negative occupancy.
TEST(BufferPoolProperty, RandomizedLedgerConservation) {
  std::mt19937_64 rng(0xb0ffe7);
  constexpr std::uint64_t kLimit = 64 * 1500;
  BufferPool pool(kLimit);
  constexpr std::size_t kSlots = 5;
  std::vector<BufferPool::SlotId> slots;
  std::vector<std::vector<std::uint64_t>> outstanding(kSlots);
  for (std::size_t s = 0; s < kSlots; ++s) slots.push_back(pool.register_slot());

  std::uniform_int_distribution<std::size_t> pick_slot(0, kSlots - 1);
  std::uniform_int_distribution<std::uint64_t> pick_size(1, 1500);
  std::uniform_int_distribution<int> pick_op(0, 2);

  auto check_invariants = [&] {
    std::uint64_t sum = 0;
    for (std::size_t s = 0; s < kSlots; ++s) {
      std::uint64_t model = 0;
      for (std::uint64_t c : outstanding[s]) model += c;
      ASSERT_EQ(pool.slot_bytes(slots[s]), model);
      sum += model;
    }
    ASSERT_EQ(pool.bytes(), sum);                    // conservation
    ASSERT_LE(pool.bytes(), pool.limit());           // no overcommit
    ASSERT_EQ(pool.free_bytes(), kLimit - sum);      // free never wraps
  };

  for (int step = 0; step < 20'000; ++step) {
    const std::size_t s = pick_slot(rng);
    const int op = pick_op(rng);
    if (op == 0) {  // admit: charge iff it fits, as a policy would decide
      const std::uint64_t size = pick_size(rng);
      if (size <= pool.free_bytes()) {
        pool.charge(slots[s], size);
        outstanding[s].push_back(size);
      }
    } else if (op == 1) {  // release one outstanding chunk
      if (!outstanding[s].empty()) {
        std::uniform_int_distribution<std::size_t> pick_chunk(
            0, outstanding[s].size() - 1);
        const std::size_t c = pick_chunk(rng);
        pool.release(slots[s], outstanding[s][c]);
        outstanding[s].erase(outstanding[s].begin() +
                             static_cast<std::ptrdiff_t>(c));
      }
    } else {  // flap: charge then immediately release (enqueue/dequeue churn)
      const std::uint64_t size = pick_size(rng);
      if (size <= pool.free_bytes()) {
        pool.charge(slots[s], size);
        pool.release(slots[s], size);
      }
    }
    check_invariants();
  }

  // Drain everything: the ledger must return exactly to empty.
  for (std::size_t s = 0; s < kSlots; ++s) {
    for (std::uint64_t c : outstanding[s]) pool.release(slots[s], c);
  }
  EXPECT_EQ(pool.bytes(), 0u);
  EXPECT_EQ(pool.free_bytes(), kLimit);
}

// --- Admission policy units -----------------------------------------------

namespace {

AdmissionRequest req(std::uint64_t pkt, std::uint64_t port_bytes,
                     std::uint64_t budget, const BufferPool* pool = nullptr) {
  return {.packet_bytes = pkt, .port_bytes = port_bytes, .port_budget = budget,
          .pool = pool};
}

}  // namespace

TEST(BufferPolicy, StaticPerPortMatchesLegacyDropTail) {
  auto policy = make_buffer_policy({.kind = BufferPolicyKind::kStaticPerPort});
  EXPECT_EQ(policy->admit(req(1500, 0, 3000)), std::nullopt);
  EXPECT_EQ(policy->admit(req(1500, 1500, 3000)), std::nullopt);  // exactly fits
  EXPECT_EQ(policy->admit(req(1500, 1501, 3000)), DropReason::kPortBudget);
  // With a pool attached, overflow is refused as kPoolExhausted.
  BufferPool pool(2000);
  const auto s = pool.register_slot();
  pool.charge(s, 1000);
  EXPECT_EQ(policy->admit(req(1000, 0, 1'000'000, &pool)), std::nullopt);
  EXPECT_EQ(policy->admit(req(1001, 0, 1'000'000, &pool)),
            DropReason::kPoolExhausted);
}

TEST(BufferPolicy, EqualDivisionSharesThePool) {
  auto policy =
      make_buffer_policy({.kind = BufferPolicyKind::kStaticEqualDivision});
  BufferPool pool(8'000);
  const auto a = pool.register_slot();
  [[maybe_unused]] const auto b = pool.register_slot();  // share = 4000 each
  EXPECT_EQ(policy->admit(req(4'000, 0, 1'000'000, &pool)), std::nullopt);
  EXPECT_EQ(policy->admit(req(1, 4'000, 1'000'000, &pool)),
            DropReason::kEqualShare);
  EXPECT_EQ(policy->threshold_bytes(req(0, 0, 1'000'000, &pool)), 4'000u);
  // Pool overflow trumps nothing here: the share binds first, but a pool
  // already filled by the OTHER slot refuses with kPoolExhausted.
  pool.charge(a, 7'000);
  EXPECT_EQ(policy->admit(req(2'000, 500, 1'000'000, &pool)),
            DropReason::kPoolExhausted);
  // Without a pool the policy degrades to the static budget check.
  EXPECT_EQ(policy->admit(req(1500, 0, 1000)), DropReason::kPortBudget);
}

TEST(BufferPolicy, DynamicThresholdTracksFreePool) {
  auto policy = make_buffer_policy(
      {.kind = BufferPolicyKind::kDynamicThresholds, .dt_alpha = 1.0});
  BufferPool pool(10'000);
  const auto other = pool.register_slot();
  // Empty pool: a 1500B arrival to an empty port is within alpha * 10000.
  EXPECT_EQ(policy->admit(req(1500, 0, 1'000'000, &pool)), std::nullopt);
  // Another port hogs the pool; free = 1000, so 1500 > 1.0 * 1000 refuses.
  pool.charge(other, 9'000);
  EXPECT_EQ(policy->admit(req(1500, 0, 1'000'000, &pool)),
            DropReason::kDynamicThreshold);
  EXPECT_EQ(policy->admit(req(1'000, 0, 1'000'000, &pool)), std::nullopt);
}

TEST(BufferPolicy, DtAlphaRejectsNonPositive) {
  EXPECT_THROW(make_buffer_policy({.kind = BufferPolicyKind::kDynamicThresholds,
                                   .dt_alpha = 0.0}),
               std::invalid_argument);
}

// DT monotonicity property: as the pool drains (occupancy grows), the DT
// allowance is nonincreasing — the self-regulating property that makes
// Choudhury-Hahne thresholds stable.
TEST(BufferPolicyProperty, DtThresholdMonotoneAsPoolFills) {
  for (double alpha : {0.25, 0.5, 1.0, 2.0, 8.0}) {
    auto policy = make_buffer_policy(
        {.kind = BufferPolicyKind::kDynamicThresholds, .dt_alpha = alpha});
    BufferPool pool(100 * 1500);
    const auto hog = pool.register_slot();
    std::uint64_t prev = policy->threshold_bytes(req(0, 0, 1ull << 40, &pool));
    std::mt19937_64 rng(42);
    std::uniform_int_distribution<std::uint64_t> step(1, 1500);
    while (pool.free_bytes() > 0) {
      pool.charge(hog, std::min<std::uint64_t>(step(rng), pool.free_bytes()));
      const std::uint64_t now =
          policy->threshold_bytes(req(0, 0, 1ull << 40, &pool));
      ASSERT_LE(now, prev) << "alpha=" << alpha;
      prev = now;
    }
    EXPECT_EQ(prev, 0u);  // exhausted pool -> zero allowance
  }
}

TEST(BufferPolicy, ParseNames) {
  EXPECT_EQ(parse_buffer_policy_kind("static"), BufferPolicyKind::kStaticPerPort);
  EXPECT_EQ(parse_buffer_policy_kind("equal"),
            BufferPolicyKind::kStaticEqualDivision);
  EXPECT_EQ(parse_buffer_policy_kind("dt"), BufferPolicyKind::kDynamicThresholds);
  EXPECT_THROW(parse_buffer_policy_kind("bogus"), std::invalid_argument);
}

TEST(PerPoolMarking, UsesPoolOccupancy) {
  ecn::PerPoolMarking m(5'000);
  ecn::PortSnapshot snap;
  snap.has_pool = true;
  snap.pool_bytes = 4'999;
  snap.port_bytes = 999'999;  // irrelevant when a pool exists
  EXPECT_FALSE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
  snap.pool_bytes = 5'000;
  EXPECT_TRUE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
}

TEST(PerPoolMarking, FallsBackToPortWithoutPool) {
  ecn::PerPoolMarking m(5'000);
  ecn::PortSnapshot snap;
  snap.has_pool = false;
  snap.port_bytes = 5'000;
  EXPECT_TRUE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
}

namespace {

experiments::MultiPortConfig pool_config(std::uint64_t pool_threshold_pkts) {
  experiments::MultiPortConfig cfg;
  cfg.num_senders = 9;
  cfg.num_receivers = 2;
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = ecn::MarkingKind::kPerPool;
  cfg.marking.threshold_bytes = pool_threshold_pkts * 1500;
  cfg.shared_pool_bytes = 4096ull * 1500ull;
  return cfg;
}

}  // namespace

TEST(PoolIsolation, CrossPortInterferenceUnderPerPoolMarking) {
  // Port A: 8 flows; port B: 1 flow. Both ports could run at 10G (separate
  // egress links!) but per-pool marking lets A's buffer occupancy mark B's
  // packets, so B loses throughput — the paper's §II.B conjecture.
  experiments::MultiPortScenario sc(pool_config(16));
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0, .bytes = 0, .start = 0});
  }
  sc.add_flow({.sender = 8, .receiver = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto b0 = sc.served_bytes(1, 0);
  sc.run(sim::milliseconds(50));
  const double gbps_b = static_cast<double>(sc.served_bytes(1, 0) - b0) * 8.0 /
                        static_cast<double>(sim::milliseconds(40));
  EXPECT_LT(gbps_b, 9.0);  // clearly below its private 10G
}

TEST(PoolIsolation, PmsbPerPortKeepsPortsIndependent) {
  // Same topology, but each port marks with PMSB against its own buffer:
  // port B's lone flow keeps (nearly) line rate.
  auto cfg = pool_config(16);
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = {1.0};
  experiments::MultiPortScenario sc(cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0, .bytes = 0, .start = 0});
  }
  sc.add_flow({.sender = 8, .receiver = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto b0 = sc.served_bytes(1, 0);
  sc.run(sim::milliseconds(50));
  const double gbps_b = static_cast<double>(sc.served_bytes(1, 0) - b0) * 8.0 /
                        static_cast<double>(sim::milliseconds(40));
  EXPECT_GT(gbps_b, 9.3);
}

TEST(PoolAdmission, PoolExhaustionDropsAcrossPorts) {
  // A pool smaller than one port's appetite forces drops even though the
  // per-port budgets are large.
  auto cfg = pool_config(1'000'000);  // marking effectively off
  cfg.shared_pool_bytes = 8 * 1500;
  cfg.transport.ecn_enabled = false;
  experiments::MultiPortScenario sc(cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0,
                 .bytes = 200'000, .start = 0});
  }
  sc.run(sim::seconds(2));
  EXPECT_GT(sc.receiver_port(0).stats().dropped_packets, 0u);
}
