// Tests for the shared buffer pool, per-service-pool marking, and the
// cross-port interference the paper predicts for it (§II.B).
#include <gtest/gtest.h>

#include "ecn/per_pool.hpp"
#include "experiments/multiport.hpp"
#include "switchlib/buffer_pool.hpp"

using namespace pmsb;
using namespace pmsb::switchlib;

TEST(BufferPool, ReserveAndRelease) {
  BufferPool pool(10'000);
  EXPECT_TRUE(pool.try_reserve(6'000));
  EXPECT_EQ(pool.bytes(), 6'000u);
  EXPECT_FALSE(pool.try_reserve(5'000));  // would overflow; charges nothing
  EXPECT_EQ(pool.bytes(), 6'000u);
  EXPECT_TRUE(pool.try_reserve(4'000));
  pool.release(10'000);
  EXPECT_EQ(pool.bytes(), 0u);
}

TEST(BufferPool, ReleaseClampsAtZero) {
  BufferPool pool(1'000);
  EXPECT_TRUE(pool.try_reserve(500));
  pool.release(9'999);
  EXPECT_EQ(pool.bytes(), 0u);
}

TEST(PerPoolMarking, UsesPoolOccupancy) {
  ecn::PerPoolMarking m(5'000);
  ecn::PortSnapshot snap;
  snap.has_pool = true;
  snap.pool_bytes = 4'999;
  snap.port_bytes = 999'999;  // irrelevant when a pool exists
  EXPECT_FALSE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
  snap.pool_bytes = 5'000;
  EXPECT_TRUE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
}

TEST(PerPoolMarking, FallsBackToPortWithoutPool) {
  ecn::PerPoolMarking m(5'000);
  ecn::PortSnapshot snap;
  snap.has_pool = false;
  snap.port_bytes = 5'000;
  EXPECT_TRUE(m.should_mark(snap, {}, ecn::MarkPoint::kEnqueue, 0));
}

namespace {

experiments::MultiPortConfig pool_config(std::uint64_t pool_threshold_pkts) {
  experiments::MultiPortConfig cfg;
  cfg.num_senders = 9;
  cfg.num_receivers = 2;
  cfg.scheduler.kind = sched::SchedulerKind::kFifo;
  cfg.scheduler.num_queues = 1;
  cfg.marking.kind = ecn::MarkingKind::kPerPool;
  cfg.marking.threshold_bytes = pool_threshold_pkts * 1500;
  cfg.shared_pool_bytes = 4096ull * 1500ull;
  return cfg;
}

}  // namespace

TEST(PoolIsolation, CrossPortInterferenceUnderPerPoolMarking) {
  // Port A: 8 flows; port B: 1 flow. Both ports could run at 10G (separate
  // egress links!) but per-pool marking lets A's buffer occupancy mark B's
  // packets, so B loses throughput — the paper's §II.B conjecture.
  experiments::MultiPortScenario sc(pool_config(16));
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0, .bytes = 0, .start = 0});
  }
  sc.add_flow({.sender = 8, .receiver = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto b0 = sc.served_bytes(1, 0);
  sc.run(sim::milliseconds(50));
  const double gbps_b = static_cast<double>(sc.served_bytes(1, 0) - b0) * 8.0 /
                        static_cast<double>(sim::milliseconds(40));
  EXPECT_LT(gbps_b, 9.0);  // clearly below its private 10G
}

TEST(PoolIsolation, PmsbPerPortKeepsPortsIndependent) {
  // Same topology, but each port marks with PMSB against its own buffer:
  // port B's lone flow keeps (nearly) line rate.
  auto cfg = pool_config(16);
  cfg.marking.kind = ecn::MarkingKind::kPmsb;
  cfg.marking.threshold_bytes = 12 * 1500;
  cfg.marking.weights = {1.0};
  experiments::MultiPortScenario sc(cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0, .bytes = 0, .start = 0});
  }
  sc.add_flow({.sender = 8, .receiver = 1, .service = 0, .bytes = 0, .start = 0});
  sc.run(sim::milliseconds(10));
  const auto b0 = sc.served_bytes(1, 0);
  sc.run(sim::milliseconds(50));
  const double gbps_b = static_cast<double>(sc.served_bytes(1, 0) - b0) * 8.0 /
                        static_cast<double>(sim::milliseconds(40));
  EXPECT_GT(gbps_b, 9.3);
}

TEST(PoolAdmission, PoolExhaustionDropsAcrossPorts) {
  // A pool smaller than one port's appetite forces drops even though the
  // per-port budgets are large.
  auto cfg = pool_config(1'000'000);  // marking effectively off
  cfg.shared_pool_bytes = 8 * 1500;
  cfg.transport.ecn_enabled = false;
  experiments::MultiPortScenario sc(cfg);
  for (std::size_t i = 0; i < 8; ++i) {
    sc.add_flow({.sender = i, .receiver = 0, .service = 0,
                 .bytes = 200'000, .start = 0});
  }
  sc.run(sim::seconds(2));
  EXPECT_GT(sc.receiver_port(0).stats().dropped_packets, 0u);
}
