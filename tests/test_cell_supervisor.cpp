// Tests for the CellSupervisor: process-isolated sweep cells, exit-class
// classification (segv / oom / hang / throw via the PMSB_CRASH_AT injection
// hook), the retry/quarantine policy, crash-repro bundles, and the
// acceptance property that healthy cells report bit-identically whether
// they ran isolated or in-process.
//
// Crash-class tests are skipped under ASan/TSan: ASan turns SIGSEGV into a
// plain exit(1) and its shadow allocator cannot live under RLIMIT_AS, so
// the classes those tests assert on do not exist in sanitized builds.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "experiments/options.hpp"
#include "sweep/cell_supervisor.hpp"
#include "sweep/sweep.hpp"
#include "telemetry/manifest_reader.hpp"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PMSB_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PMSB_SANITIZED 1
#endif
#endif
#ifndef PMSB_SANITIZED
#define PMSB_SANITIZED 0
#endif

using namespace pmsb;
using pmsb::experiments::Options;
namespace fs = std::filesystem;

namespace {

/// Sets an environment variable for the lifetime of the scope. The crash
/// hook reads PMSB_CRASH_AT at cell start, so scoping it keeps injections
/// from leaking into sibling tests.
struct ScopedEnv {
  ScopedEnv(const char* name, const std::string& value) : name_(name) {
    ::setenv(name, value.c_str(), 1);
  }
  ~ScopedEnv() { ::unsetenv(name_); }
  ScopedEnv(const ScopedEnv&) = delete;
  ScopedEnv& operator=(const ScopedEnv&) = delete;
  const char* name_;
};

/// Smallest real scenario: a 5 ms dumbbell run (~15 ms wall).
Options dumbbell_base() {
  Options base;
  base.set("topology", "dumbbell");
  base.set("duration_ms", "5");
  base.set("seed", "7");
  return base;
}

std::string fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

sweep::SweepPoint bare_point(std::size_t index = 0) {
  sweep::SweepPoint point;
  point.index = index;
  point.label = "cell";
  point.opts = dumbbell_base();
  return point;
}

}  // namespace

// --- classification units (no fork) ------------------------------------

TEST(ExitClass, NamesAreStable) {
  EXPECT_STREQ(sweep::exit_class_name(sweep::ExitClass::kOk), "ok");
  EXPECT_STREQ(sweep::exit_class_name(sweep::ExitClass::kThrow), "throw");
  EXPECT_STREQ(sweep::exit_class_name(sweep::ExitClass::kSignal), "signal");
  EXPECT_STREQ(sweep::exit_class_name(sweep::ExitClass::kTimeout), "timeout");
  EXPECT_STREQ(sweep::exit_class_name(sweep::ExitClass::kOom), "oom");
}

TEST(ExitClass, OnlyCrashClassesAreRetryable) {
  EXPECT_FALSE(sweep::exit_class_retryable(sweep::ExitClass::kOk));
  EXPECT_FALSE(sweep::exit_class_retryable(sweep::ExitClass::kThrow));
  EXPECT_TRUE(sweep::exit_class_retryable(sweep::ExitClass::kSignal));
  EXPECT_TRUE(sweep::exit_class_retryable(sweep::ExitClass::kTimeout));
  EXPECT_TRUE(sweep::exit_class_retryable(sweep::ExitClass::kOom));
}

TEST(ReproBundle, FileNamePadsLikeManifests) {
  EXPECT_EQ(sweep::repro_file_name(7, 10), "repro_007.json");
  EXPECT_EQ(sweep::repro_file_name(7, 2000), "repro_0007.json");
}

// --- one child, each failure shape -------------------------------------

TEST(RunCellInChild, HealthyCellCompletesOk) {
  const auto outcome = sweep::run_cell_in_child(bare_point(), {}, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kOk) << outcome.error;
  EXPECT_TRUE(outcome.error.empty());
  EXPECT_GT(outcome.peak_rss_bytes, 0.0);
  EXPECT_FALSE(outcome.hard_killed);
}

TEST(RunCellInChild, ThrowShipsTheExactMessageOverThePipe) {
  const ScopedEnv inject("PMSB_CRASH_AT", "0:throw");
  const auto outcome = sweep::run_cell_in_child(bare_point(), {}, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kThrow);
  EXPECT_EQ(outcome.exit_code, 2);
  EXPECT_EQ(outcome.error, "[crash_at] injected throw (cell 0, attempt 1)");
}

TEST(RunCellInChild, SegvClassifiedAsSignalWithName) {
  if (PMSB_SANITIZED) GTEST_SKIP() << "ASan converts SIGSEGV to exit(1)";
  const ScopedEnv inject("PMSB_CRASH_AT", "0:segv");
  const auto outcome = sweep::run_cell_in_child(bare_point(), {}, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kSignal);
  EXPECT_EQ(outcome.exit_signal, SIGSEGV);
  EXPECT_NE(outcome.error.find("SIGSEGV"), std::string::npos) << outcome.error;
}

TEST(RunCellInChild, OomUnderAddressSpaceCapClassified) {
  if (PMSB_SANITIZED) GTEST_SKIP() << "shadow memory cannot live under RLIMIT_AS";
  const ScopedEnv inject("PMSB_CRASH_AT", "0:oom");
  sweep::CellLimits limits;
  limits.mem_mb = 512;
  const auto outcome = sweep::run_cell_in_child(bare_point(), limits, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kOom);
  EXPECT_NE(outcome.error.find("[oom]"), std::string::npos) << outcome.error;
  EXPECT_NE(outcome.error.find("cell_mem_mb=512"), std::string::npos)
      << outcome.error;
}

TEST(RunCellInChild, HangIsHardKilledPastTheWallBudget) {
  const ScopedEnv inject("PMSB_CRASH_AT", "0:hang");
  sweep::CellLimits limits;
  limits.wall_s = 0.2;  // hard kill at 0.2 * 1.25 + 0.5 = 0.75 s
  const auto outcome = sweep::run_cell_in_child(bare_point(), limits, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kTimeout);
  EXPECT_TRUE(outcome.hard_killed);
  EXPECT_EQ(outcome.exit_signal, SIGKILL);
  EXPECT_NE(outcome.error.find("[cell_timeout] hard kill"), std::string::npos)
      << outcome.error;
}

// --- full sweeps under the supervisor ----------------------------------

namespace {

sweep::SweepConfig isolated_config(const std::string& dir) {
  sweep::SweepConfig cfg;
  cfg.jobs = 1;
  cfg.isolate = true;
  cfg.manifest_dir = dir;
  cfg.retry_backoff_ms = 5.0;  // tests should not sleep for real
  return cfg;
}

}  // namespace

TEST(IsolatedSweep, HealthyCellsBitIdenticalToInProcessRun) {
  // The acceptance property: same grid, same manifest dir (the manifest
  // path is part of the config echo), once in-process then once isolated —
  // every deterministic_signature must match exactly.
  const auto pts =
      sweep::expand_grid(dumbbell_base(), "scheme:pmsb,tcn;queues:2,4");
  ASSERT_EQ(pts.size(), 4u);
  const std::string dir = fresh_dir("iso_bit_identical");

  sweep::SweepConfig in_process;
  in_process.jobs = 1;
  in_process.manifest_dir = dir;
  const auto reference = sweep::run_sweep(pts, in_process);

  const auto isolated = sweep::run_sweep(pts, isolated_config(dir));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(reference[i].ok) << reference[i].error;
    ASSERT_TRUE(isolated[i].ok) << isolated[i].error;
    EXPECT_FALSE(isolated[i].salvaged);
    EXPECT_EQ(isolated[i].attempts, 1u);
    EXPECT_EQ(isolated[i].exit_class, "ok");
    EXPECT_GT(isolated[i].peak_rss_bytes, 0.0);
    EXPECT_EQ(sweep::deterministic_signature(reference[i]),
              sweep::deterministic_signature(isolated[i]))
        << pts[i].label;
  }
}

TEST(IsolatedSweep, EmptyManifestDirGetsAPrivateTempDir) {
  const auto pts = sweep::expand_grid(dumbbell_base(), "scheme:pmsb");
  sweep::SweepConfig cfg;
  cfg.jobs = 1;
  cfg.isolate = true;
  const auto recs = sweep::run_sweep(pts, cfg);
  ASSERT_TRUE(recs[0].ok) << recs[0].error;
  ASSERT_FALSE(recs[0].manifest_path.empty());
  EXPECT_TRUE(fs::exists(recs[0].manifest_path));
  fs::remove_all(fs::path(recs[0].manifest_path).parent_path());
}

TEST(IsolatedSweep, InjectedCrashQuarantinesOnlyThatCell) {
  if (PMSB_SANITIZED) GTEST_SKIP() << "ASan converts SIGSEGV to exit(1)";
  const ScopedEnv inject("PMSB_CRASH_AT", "1:segv");
  const auto pts = sweep::expand_grid(dumbbell_base(), "scheme:pmsb,tcn,none");
  const std::string dir = fresh_dir("iso_quarantine");
  const auto recs = sweep::run_sweep(pts, isolated_config(dir));

  EXPECT_TRUE(recs[0].ok) << recs[0].error;
  EXPECT_TRUE(recs[2].ok) << recs[2].error;
  ASSERT_FALSE(recs[1].ok);
  EXPECT_TRUE(recs[1].quarantined);
  EXPECT_EQ(recs[1].exit_class, "signal");
  EXPECT_EQ(recs[1].exit_signal, SIGSEGV);
  EXPECT_EQ(recs[1].attempts, 1u);
  // The quarantined cell leaves a failed-status stub carrying the
  // supervisor diagnostics, plus a loadable repro bundle.
  const auto stub = telemetry::read_run_manifest(recs[1].manifest_path);
  EXPECT_EQ(stub.info.at("status"), "failed");
  EXPECT_EQ(stub.info.at("exit_class"), "signal");
  EXPECT_EQ(stub.info_number("exit_signal", 0.0),
            static_cast<double>(SIGSEGV));
  EXPECT_GE(stub.info_number("attempts", 0.0), 1.0);
  ASSERT_FALSE(recs[1].repro_path.empty());
  const auto bundle = sweep::load_repro_bundle(recs[1].repro_path);
  EXPECT_EQ(bundle.cell_index, 1u);
  EXPECT_EQ(bundle.label, pts[1].label);
  EXPECT_EQ(bundle.exit_class, "signal");
  EXPECT_EQ(bundle.opts.get("scheme"), "tcn");
}

TEST(IsolatedSweep, TransientCrashRetriesAndConvergesWithoutDuplicates) {
  if (PMSB_SANITIZED) GTEST_SKIP() << "ASan converts SIGSEGV to exit(1)";
  // Crash only the first attempt of cell 0: the retry must succeed, and the
  // manifest dir must end up exactly as if nothing had ever crashed — one
  // valid manifest per cell, no stale stub, no repro bundle.
  const ScopedEnv inject("PMSB_CRASH_AT", "0:segv@1");
  const auto pts = sweep::expand_grid(dumbbell_base(), "scheme:pmsb,none");
  const std::string dir = fresh_dir("iso_retry");
  auto cfg = isolated_config(dir);
  cfg.cell_retries = 2;
  const auto recs = sweep::run_sweep(pts, cfg);

  ASSERT_TRUE(recs[0].ok) << recs[0].error;
  EXPECT_EQ(recs[0].attempts, 2u);
  EXPECT_FALSE(recs[0].quarantined);
  EXPECT_TRUE(recs[0].repro_path.empty());
  ASSERT_TRUE(recs[1].ok) << recs[1].error;
  EXPECT_EQ(recs[1].attempts, 1u);

  std::set<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    files.insert(entry.path().filename().string());
  }
  EXPECT_EQ(files, (std::set<std::string>{"run_000.json", "run_001.json"}));
  for (const auto& r : recs) {
    EXPECT_EQ(telemetry::read_run_manifest(r.manifest_path).info.at("status"),
              "ok");
  }
}

TEST(IsolatedSweep, DeterministicThrowQuarantinesWithoutRetry) {
  // `throw` is a deterministic class: even with retries budgeted, the cell
  // quarantines after one attempt.
  const ScopedEnv inject("PMSB_CRASH_AT", "0:throw");
  const auto pts = sweep::expand_grid(dumbbell_base(), "scheme:pmsb,none");
  const std::string dir = fresh_dir("iso_throw");
  auto cfg = isolated_config(dir);
  cfg.cell_retries = 3;
  const auto recs = sweep::run_sweep(pts, cfg);

  ASSERT_FALSE(recs[0].ok);
  EXPECT_TRUE(recs[0].quarantined);
  EXPECT_EQ(recs[0].exit_class, "throw");
  EXPECT_EQ(recs[0].attempts, 1u);
  EXPECT_EQ(recs[0].error, "[crash_at] injected throw (cell 0, attempt 1)");
  EXPECT_TRUE(recs[1].ok) << recs[1].error;

  // Report plumbing: the quarantine count and per-run fields land in the
  // pmsb.sweep_report/1 JSON.
  const std::string json = sweep::sweep_report_json(recs, 1, 0.0);
  EXPECT_NE(json.find("\"quarantined\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"exit_class\":\"throw\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"repro\":"), std::string::npos) << json;
  const std::string csv = sweep::sweep_report_csv(recs);
  EXPECT_NE(csv.find("index,label,ok,attempts,exit_class,error"),
            std::string::npos);
}

TEST(IsolatedSweep, ReproBundleReRunsTheExactCell) {
  const ScopedEnv inject("PMSB_CRASH_AT", "1:throw");
  const auto pts = sweep::expand_grid(dumbbell_base(), "scheme:pmsb,tcn");
  const std::string dir = fresh_dir("iso_repro_rerun");
  const auto recs = sweep::run_sweep(pts, isolated_config(dir));
  ASSERT_FALSE(recs[1].ok);
  ASSERT_FALSE(recs[1].repro_path.empty());

  // Loading the bundle recovers a runnable point; with the injection gone
  // (the bundle captures config, not environment) the cell completes.
  auto bundle = sweep::load_repro_bundle(recs[1].repro_path);
  ::unsetenv("PMSB_CRASH_AT");
  sweep::SweepPoint point;
  point.index = bundle.cell_index;
  point.label = bundle.label;
  point.opts = bundle.opts;
  point.opts.erase("metrics_json");
  const auto outcome = sweep::run_cell_in_child(point, {}, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kOk) << outcome.error;
}

TEST(IsolatedSweep, WedgedCallbackIsTheDeadlineBlindSpotAndGetsHardKilled) {
  // The satellite regression for the cell_timeout_s blind spot: a callback
  // that never returns starves the in-child Deadline (its tick is a sim
  // event), so only the supervisor's parent-side hard kill ends the cell.
  sweep::SweepPoint point = bare_point();
  point.opts.set("fault_test", "wedge_callback");
  point.opts.set("cell_timeout_s", "0.2");
  sweep::CellLimits limits;
  limits.wall_s = 0.2;
  const auto outcome = sweep::run_cell_in_child(point, limits, 1);
  EXPECT_EQ(outcome.exit_class, sweep::ExitClass::kTimeout);
  EXPECT_TRUE(outcome.hard_killed) << "Deadline cannot fire in a wedged cell";
  EXPECT_NE(outcome.error.find("never ran its deadline tick"), std::string::npos)
      << outcome.error;
}
